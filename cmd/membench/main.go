// Command membench probes the host memory hierarchy: a pointer-chase
// latency ladder over a working-set sweep, an optional TLB-stress sweep,
// and an optional knee-point fit that recovers cache level capacities
// and latencies from the measured ladder. With -model it instead (or
// additionally) evaluates a platform preset's analytic memory model and
// reports the fitted-vs-truth recovery, the standalone version of
// experiment M4. With -numa it runs the NUMA placement probe — pinned
// first-touch vs interleaved vs remote initialization on the host, or
// the modeled placement ladder and local/remote split recovery of a
// preset — the standalone version of experiments M5/M6.
//
// Usage:
//
//	membench                                # quick host ladder
//	membench -min 4K -max 256M -points 4 -fit
//	membench -tlb -tlbpages 65536
//	membench -model bgp-64n -mode paged
//	membench -numa -max 64M                 # host placement ladders + split fit
//	membench -model fat-1n -numa            # modeled placement table + split fit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/perfmodel"
	"repro/internal/report"
)

func main() {
	minFlag := flag.String("min", "4K", "smallest working set (bytes; K/M/G suffixes)")
	maxFlag := flag.String("max", "32M", "largest working set")
	points := flag.Int("points", 2, "sweep points per octave")
	stride := flag.Int("stride", 64, "bytes between chase slots")
	iters := flag.Int("iters", 1<<18, "dependent loads per timed trial")
	trials := flag.Int("trials", 3, "timed trials per point (best kept)")
	seed := flag.Uint64("seed", 1, "random-cycle seed")
	fit := flag.Bool("fit", false, "fit hierarchy levels to the measured ladder")
	maxLevels := flag.Int("levels", 3, "maximum cache levels the fit searches for")
	tlb := flag.Bool("tlb", false, "also run the TLB-stress sweep")
	tlbPages := flag.Int("tlbpages", 1<<14, "largest page count of the TLB sweep")
	pageBytes := flag.Int("page", 4096, "page size the TLB sweep strides by")
	modelName := flag.String("model", "", "evaluate a platform preset's memory model instead of the host (see -list)")
	modeFlag := flag.String("mode", "", "override the model's mapping mode: paged or bigmem")
	numa := flag.Bool("numa", false, "run the NUMA placement probe (host) or placement table (-model)")
	numaThreads := flag.Int("numa-threads", 0, "pinned team size for -numa (default: one worker per NUMA node)")
	list := flag.Bool("list", false, "list platform presets with memory models and exit")
	flag.Parse()

	if *list {
		presets := cluster.Presets()
		names := make([]string, 0, len(presets))
		for name := range presets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if m := presets[name].Mem; m != nil {
				locality := "UMA"
				if m.NUMA.Nodes > 1 {
					locality = fmt.Sprintf("%d NUMA nodes", m.NUMA.Nodes)
				}
				fmt.Printf("%-10s %s mode, %d levels, TLB reach %s, %s\n",
					name, m.Mode, len(m.Levels), report.Bytes(m.TLBReach()), locality)
			}
		}
		return
	}

	minBytes, err := parseSize(*minFlag)
	fail(err)
	maxBytes, err := parseSize(*maxFlag)
	fail(err)
	if maxBytes <= minBytes {
		fail(fmt.Errorf("-max %s not above -min %s", *maxFlag, *minFlag))
	}
	run(config{
		minBytes: minBytes, maxBytes: maxBytes, points: *points,
		stride: *stride, iters: *iters, trials: *trials, seed: *seed,
		fit: *fit, maxLevels: *maxLevels,
		tlb: *tlb, tlbPages: *tlbPages, pageBytes: *pageBytes,
		modelName: *modelName, mode: *modeFlag,
		numa: *numa, numaThreads: *numaThreads,
	})
}

type config struct {
	minBytes, maxBytes, points, stride, iters, trials int
	seed                                              uint64
	fit                                               bool
	maxLevels                                         int
	tlb                                               bool
	tlbPages, pageBytes                               int
	modelName, mode                                   string
	numa                                              bool
	numaThreads                                       int
}

func run(c config) {
	if c.modelName != "" {
		if c.numa {
			runModelNUMA(c)
			return
		}
		runModel(c)
		return
	}
	if c.numa {
		runHostNUMA(c)
		return
	}
	runHost(c)
}

// runHost measures the host: the ladder figure, the optional TLB sweep,
// and the optional hierarchy fit.
func runHost(c config) {
	samples, err := mem.Ladder(mem.LadderConfig{
		MinBytes: c.minBytes, MaxBytes: c.maxBytes, PointsPerOctave: c.points,
		Stride: c.stride, Iters: c.iters, Trials: c.trials, Seed: c.seed,
	})
	fail(err)
	fig := report.NewFigure("Pointer-chase latency ladder (host)", "working set (bytes)", "ns/access")
	s := fig.AddSeries("measured/host")
	for _, p := range samples {
		s.Add(float64(p.Bytes), p.Seconds*1e9)
	}
	fail(fig.Fprint(os.Stdout))

	if c.tlb {
		tl, err := mem.TLBStress(mem.TLBConfig{
			PageBytes: c.pageBytes, MinPages: 16, MaxPages: c.tlbPages,
			PointsPerOctave: c.points, Iters: c.iters, Trials: c.trials, Seed: c.seed,
		})
		fail(err)
		tfig := report.NewFigure("TLB stress (host)", "pages touched", "ns/access")
		ts := tfig.AddSeries(fmt.Sprintf("measured/%s-pages", report.Bytes(c.pageBytes)))
		for _, p := range tl {
			ts.Add(float64(p.Pages), p.Seconds*1e9)
		}
		fail(tfig.Fprint(os.Stdout))
	}

	if c.fit {
		h, err := perfmodel.FitHierarchy(samples, c.maxLevels)
		fail(err)
		t := report.NewTable("Fitted hierarchy (host)", "level", "capacity", "latency (ns)", "R2")
		for i, l := range h.Levels {
			t.AddRow(fmt.Sprintf("L%d", i+1), report.Bytes(l.Capacity), l.Latency*1e9, h.R2)
		}
		t.AddRow("memory", "-", h.MemLatency*1e9, h.R2)
		fail(t.Fprint(os.Stdout))
	}
}

// lookupModel resolves -model/-mode into a preset's memory model.
func lookupModel(c config) *mem.Model {
	preset, ok := cluster.Presets()[c.modelName]
	if !ok || preset.Mem == nil {
		fail(fmt.Errorf("unknown platform %q (use -list)", c.modelName))
	}
	m := preset.Mem
	switch c.mode {
	case "paged":
		m = m.WithMode(mem.Paged)
	case "bigmem":
		m = m.WithMode(mem.BigMemory)
	case "":
	default:
		fail(fmt.Errorf("unknown mode %q (want paged or bigmem)", c.mode))
	}
	return m
}

// runModel evaluates a preset's analytic model over the sweep, then
// fits it back and prints recovery error per level.
func runModel(c config) {
	m := lookupModel(c)

	samples := m.Ladder(c.minBytes, c.maxBytes, c.points)
	fig := report.NewFigure(
		fmt.Sprintf("Modeled latency ladder (%s, %s)", c.modelName, m.Mode),
		"working set (bytes)", "ns/access")
	s := fig.AddSeries("model/" + c.modelName)
	for _, p := range samples {
		s.Add(float64(p.Bytes), p.Seconds*1e9)
	}
	fail(fig.Fprint(os.Stdout))

	h, err := perfmodel.FitHierarchy(samples, len(m.Levels)+1)
	fail(err)
	if len(h.Levels) == 0 {
		fail(fmt.Errorf("no hierarchy levels recovered from [%s,%s]: widen the sweep past the model's knees",
			report.Bytes(c.minBytes), report.Bytes(c.maxBytes)))
	}
	t := report.NewTable("Fitted vs truth", "level", "true cap", "fit cap", "true ns", "fit ns", "R2")
	for _, truth := range m.Levels {
		var best perfmodel.FittedLevel
		bestErr := -1.0
		for _, f := range h.Levels {
			if e := perfmodel.RelErr(float64(f.Capacity), float64(truth.Capacity)); bestErr < 0 || e < bestErr {
				bestErr, best = e, f
			}
		}
		t.AddRow(truth.Name, report.Bytes(truth.Capacity), report.Bytes(best.Capacity),
			truth.Latency*1e9, best.Latency*1e9, h.R2)
	}
	t.AddRow("memory", "-", "-", m.MemLatency*1e9, h.MemLatency*1e9, h.R2)
	fail(t.Fprint(os.Stdout))
}

// runHostNUMA measures the host under the three placement policies —
// pages faulted in by a pinned team per policy, chased from one pinned
// worker — then recovers the local/remote split from the first-touch
// and remote ladders. On a UMA host the ladders coincide and the
// fitted ratio sits near 1.
func runHostNUMA(c config) {
	fig := report.NewFigure("NUMA placement latency ladder (host)",
		"working set (bytes)", "ns/access")
	ladders := map[mem.Placement][]mem.Sample{}
	for _, p := range mem.Placements {
		samples, err := mem.NUMALadder(mem.NUMALadderConfig{
			MinBytes: c.minBytes, MaxBytes: c.maxBytes, PointsPerOctave: c.points,
			Stride: c.stride, Iters: c.iters, Trials: c.trials, Seed: c.seed,
			Threads: c.numaThreads, Policy: p,
		})
		fail(err)
		ladders[p] = samples
		s := fig.AddSeries("measured/" + p.String())
		for _, pt := range samples {
			s.Add(float64(pt.Bytes), pt.Seconds*1e9)
		}
	}
	fail(fig.Fprint(os.Stdout))

	split, err := perfmodel.FitNUMASplit(ladders[mem.FirstTouch], ladders[mem.Remote], c.maxLevels)
	fail(err)
	t := report.NewTable("Fitted NUMA split (host)",
		"local (ns)", "remote (ns)", "ratio", "R2")
	t.AddRow(split.Local*1e9, split.Remote*1e9, split.Ratio, split.R2)
	fail(t.Fprint(os.Stdout))
}

// runModelNUMA prints a preset's modeled placement ladder and the
// local/remote split recovered from its own first-touch and remote
// ladders — the standalone version of experiment M5 for one platform.
func runModelNUMA(c config) {
	m := lookupModel(c)
	if m.NUMA.Nodes <= 1 {
		fail(fmt.Errorf("platform %q is UMA: no NUMA axis configured (try fat-1n or bgp-64n)", c.modelName))
	}

	t := report.NewTable(
		fmt.Sprintf("Modeled placement ladder (%s, %s)", c.modelName, m.Mode),
		"ws", "placement", "latency (ns)", "slowdown")
	for _, sz := range []int{1 << 20, 64 << 20, 1 << 30} {
		for _, p := range mem.Placements {
			t.AddRow(report.Bytes(sz), p.String(),
				m.Latency(sz, m.Mode, p)*1e9, m.PlacementSlowdown(sz, m.Mode, p))
		}
	}
	fail(t.Fprint(os.Stdout))

	split, err := perfmodel.FitNUMASplitFromModel(m, c.points)
	fail(err)
	ft := report.NewTable("Fitted NUMA split vs truth",
		"true local", "fit local", "true remote", "fit remote", "true ratio", "fit ratio", "R2")
	ft.AddRow(m.MemLatency*1e9, split.Local*1e9,
		m.NUMA.RemoteLatency*1e9, split.Remote*1e9,
		m.NUMA.RemoteLatency/m.MemLatency, split.Ratio, split.R2)
	fail(ft.Fprint(os.Stdout))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "membench: %v\n", err)
		os.Exit(1)
	}
}

// parseSize parses "4096", "4K", "32M", "1G" into bytes (binary units).
func parseSize(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := 1
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
	case 'M', 'm':
		mult = 1 << 20
	case 'G', 'g':
		mult = 1 << 30
	}
	if mult != 1 {
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
