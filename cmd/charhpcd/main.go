// Command charhpcd serves the characterization's experiment registry
// over HTTP: cached, content-negotiated results with ETags, filled by
// a parallel warm-up at startup (see internal/serve).
//
// Usage:
//
//	charhpcd                               # :8080, warm quick cache
//	charhpcd -addr :9090 -j 8              # custom port, 8 warm workers
//	charhpcd -warm=false -scale-limit full # cold start, allow full runs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "warm-up worker pool size")
	warm := flag.Bool("warm", true, "fill the quick-scale cache in the background at startup")
	scaleLimit := flag.String("scale-limit", "quick", "largest scale served: quick or full")
	flag.Parse()

	var limit core.Scale
	switch *scaleLimit {
	case "quick":
		limit = core.Quick
	case "full":
		limit = core.Full
	default:
		fmt.Fprintf(os.Stderr, "charhpcd: unknown scale limit %q (want quick or full)\n", *scaleLimit)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{ScaleLimit: limit})
	if *warm {
		go func() {
			t0 := time.Now()
			n := srv.Warm(nil, *workers)
			log.Printf("charhpcd: warmed %d quick-scale results in %s (%d workers)",
				n, time.Since(t0).Round(time.Millisecond), *workers)
		}()
	}

	// No WriteTimeout: a full-scale experiment legitimately holds a
	// response open for minutes. Header and idle timeouts are what
	// keep slow clients from pinning goroutines and fds forever.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("charhpcd: listening on %s (scale limit %s)", *addr, limit)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("charhpcd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("charhpcd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			log.Printf("charhpcd: shutdown: %v", err)
		}
	}
}
