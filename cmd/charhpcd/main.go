// Command charhpcd serves the characterization's experiment registry
// over HTTP: cached, content-negotiated results with ETags, filled by
// a parallel warm-up at startup (see internal/serve). With -cache-dir
// the results cache persists across restarts: filled entries are
// written through to disk, a restart warms from disk without
// re-running, and the store self-invalidates when the binary or the
// registry changes (see internal/diskcache). charhpc -cache-dir
// shares the same store.
//
// The platform is a request axis: GET /experiments/{id}?platform=NAME
// runs an experiment on one named preset (the listing advertises which
// presets each experiment accepts). Warm-up fills the default-platform
// quick cache; -warm-platforms extends it across named presets — the
// warm-up set is experiments × platforms, with incompatible pairs
// skipped.
//
// Usage:
//
//	charhpcd                               # :8080, warm quick cache
//	charhpcd -addr :9090 -j 8              # custom port, 8 warm workers
//	charhpcd -warm=false -scale-limit full # cold start, allow full runs
//	charhpcd -warm-platforms default,gige-8n,bgp-64n
//	charhpcd -cache-dir /var/cache/charhpc -cache-max-bytes 67108864
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "warm-up worker pool size")
	warm := flag.Bool("warm", true, "fill the quick-scale cache in the background at startup")
	warmPlatforms := flag.String("warm-platforms", "default",
		"comma-separated platform axis for the warm-up: 'default' is each experiment's canonical set, any other name is a preset")
	scaleLimit := flag.String("scale-limit", "quick", "largest scale served: quick or full")
	cacheDir := flag.String("cache-dir", "", "persist the results cache under this directory (empty = memory only)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries beyond this many bytes (0 = unbounded)")
	flag.Parse()

	var limit core.Scale
	switch *scaleLimit {
	case "quick":
		limit = core.Quick
	case "full":
		limit = core.Full
	default:
		fmt.Fprintf(os.Stderr, "charhpcd: unknown scale limit %q (want quick or full)\n", *scaleLimit)
		os.Exit(2)
	}

	// Resolve the warm-up platform axis up front so a typo fails the
	// start, not a background goroutine.
	var platforms []string
	for _, p := range strings.Split(*warmPlatforms, ",") {
		p = strings.TrimSpace(p)
		switch p {
		case "":
			continue
		case "default":
			platforms = append(platforms, "")
		default:
			if _, ok := cluster.Lookup(p); !ok {
				fmt.Fprintf(os.Stderr, "charhpcd: unknown warm-up platform %q (presets: %v)\n", p, cluster.Names())
				os.Exit(2)
			}
			platforms = append(platforms, p)
		}
	}

	var store *diskcache.Store
	if *cacheDir != "" {
		var err error
		store, err = diskcache.Open(*cacheDir, core.Fingerprint(), *cacheMax)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charhpcd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("charhpcd: results cache at %s (%d entries, fingerprint %.12s…)",
			store.Dir(), store.Len(), store.Fingerprint())
	}

	srv := serve.New(serve.Config{ScaleLimit: limit, Store: store})

	// The signal context is created before the warm-up starts so a
	// SIGINT mid-warm cancels pending jobs instead of letting the
	// pool run to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	warmDone := make(chan struct{})
	if *warm {
		go func() {
			defer close(warmDone)
			t0 := time.Now()
			n := srv.Warm(ctx, nil, platforms, *workers)
			st := srv.Stats()
			if ctx.Err() != nil {
				log.Printf("charhpcd: warm-up canceled after %d run(s)", n)
				return
			}
			log.Printf("charhpcd: warmed quick-scale cache in %s (%d run, %d loaded from disk, %d workers)",
				time.Since(t0).Round(time.Millisecond), n, st.DiskLoads, *workers)
		}()
	} else {
		close(warmDone)
	}

	// No WriteTimeout: a full-scale experiment legitimately holds a
	// response open for minutes. Header and idle timeouts are what
	// keep slow clients from pinning goroutines and fds forever.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("charhpcd: listening on %s (scale limit %s)", *addr, limit)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("charhpcd: %v", err)
		}
	case <-ctx.Done():
		// Restore default signal disposition right away: a second
		// SIGINT force-kills instead of being swallowed while the
		// graceful path waits out in-flight work.
		stop()
		log.Printf("charhpcd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			log.Printf("charhpcd: shutdown: %v", err)
		}
		// Wait for the warm-up to observe the cancellation: pending
		// jobs are skipped, so this blocks at most for the in-flight
		// runs — not the rest of the pool — and cache writes settle
		// before exit.
		<-warmDone
	}
}
