// Command charhpcd serves the characterization's experiment registry
// over HTTP: cached, content-negotiated results with ETags, filled by
// a parallel warm-up at startup (see internal/serve). With -cache-dir
// the results cache persists across restarts: filled entries are
// written through to disk, a restart warms from disk without
// re-running, and the store self-invalidates when the binary or the
// registry changes (see internal/diskcache). charhpc -cache-dir
// shares the same store.
//
// The platform is a request axis: GET /experiments/{id}?platform=NAME
// runs an experiment on one named preset (the listing advertises which
// presets each experiment accepts). Warm-up fills the default-platform
// quick cache; -warm-platforms extends it across named presets — the
// warm-up set is experiments × platforms, with incompatible pairs
// skipped.
//
// Usage:
//
//	charhpcd                               # :8080, warm quick cache
//	charhpcd -addr :9090 -j 8              # custom port, 8 warm workers
//	charhpcd -warm=false -scale-limit full # cold start, allow full runs
//	charhpcd -warm-platforms default,gige-8n,bgp-64n
//	charhpcd -cache-dir /var/cache/charhpc -cache-max-bytes 67108864
//	charhpcd -platform-dir /etc/charhpc/platforms   # preload custom machines
//	charhpcd -log-format json -pprof        # machine logs + profiling
//	charhpcd -jobs 4 -jobs-history 128      # async run capacity (POST /runs)
//
// Beyond the blocking GET, runs can be submitted asynchronously:
// POST /runs answers 202 with a job ID, GET /runs/{id}/events streams
// the run's progress as Server-Sent Events, and the terminal event
// hands the client off to the cached synchronous result (charhpc
// -submit drives this end to end). -jobs bounds concurrent job
// executions; -jobs-history bounds how many finished jobs stay
// inspectable via GET /runs.
//
// Observability: GET /metrics (Prometheus text; disable with
// -metrics=false), GET /debug/traces (recent run timing trees),
// /debug/pprof/ behind -pprof, per-request access logs with
// X-Request-ID propagation, and a final JSON summary line on
// SIGINT/SIGTERM. See internal/serve/README.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "warm-up worker pool size")
	warm := flag.Bool("warm", true, "fill the quick-scale cache in the background at startup")
	warmPlatforms := flag.String("warm-platforms", "default",
		"comma-separated platform axis for the warm-up: 'default' is each experiment's canonical set, any other name is a preset")
	scaleLimit := flag.String("scale-limit", "quick", "largest scale served: quick or full")
	cacheDir := flag.String("cache-dir", "", "persist the results cache under this directory (empty = memory only)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries beyond this many bytes (0 = unbounded)")
	migrateLegacy := flag.Bool("migrate-legacy", false,
		"migrate pre-versioning cache entries instead of purging them; set ONLY when this deploy changes no experiment, platform, or scale definition (legacy entries cannot prove which experiments an upgrade changed)")
	platformDir := flag.String("platform-dir", "", "preload custom platform specs (*.json) from this directory and persist POST /platforms registrations into it")
	customCacheMax := flag.Int64("custom-cache-max-bytes", 0, "byte budget for custom-platform entries in the disk cache (0 = inherit -cache-max-bytes; presets are never evicted by customs either way)")
	jobsFlag := flag.Int("jobs", serve.DefaultJobWorkers, "async run jobs (POST /runs) executing concurrently; further submissions queue")
	jobsHistory := flag.Int("jobs-history", serve.DefaultJobHistory, "finished async jobs retained for GET /runs inspection")
	metrics := flag.Bool("metrics", true, "serve the Prometheus exposition on GET /metrics")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default)")
	logFormat := flag.String("log-format", "text", "log line format: text or json")
	flag.Parse()

	if *logFormat != obs.FormatText && *logFormat != obs.FormatJSON {
		fmt.Fprintf(os.Stderr, "charhpcd: unknown log format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat)

	var limit core.Scale
	switch *scaleLimit {
	case "quick":
		limit = core.Quick
	case "full":
		limit = core.Full
	default:
		fmt.Fprintf(os.Stderr, "charhpcd: unknown scale limit %q (want quick or full)\n", *scaleLimit)
		os.Exit(2)
	}

	var store *diskcache.Store
	if *cacheDir != "" {
		var err error
		fps := diskcache.Fingerprints{
			Global:        core.Fingerprint(),
			PerID:         core.Fingerprints(),
			MigrateLegacy: *migrateLegacy,
		}
		store, err = diskcache.Open(*cacheDir, fps, *cacheMax)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charhpcd: %v\n", err)
			os.Exit(1)
		}
		store.SetCustomQuota(*customCacheMax)
		logger.Info("results cache open",
			"dir", store.Dir(), "entries", store.Len(),
			"stale_purged", store.StalePurged(), "migrated", store.Migrated(),
			"fingerprint", store.Fingerprint()[:12])
	}

	srv := serve.New(serve.Config{
		ScaleLimit:     limit,
		Store:          store,
		Jobs:           *jobsFlag,
		JobsHistory:    *jobsHistory,
		DisableMetrics: !*metrics,
		AccessLog:      logger,
		PlatformDir:    *platformDir,
	})
	if *pprofOn {
		srv.EnablePprof()
	}

	// Resolve the warm-up platform axis after serve.New so names
	// preloaded from -platform-dir resolve too; a typo still fails the
	// start, not a background goroutine.
	var platforms []string
	for _, p := range strings.Split(*warmPlatforms, ",") {
		p = strings.TrimSpace(p)
		switch p {
		case "":
			continue
		case "default":
			platforms = append(platforms, "")
		default:
			if _, ok := cluster.Lookup(p); !ok {
				fmt.Fprintf(os.Stderr, "charhpcd: unknown warm-up platform %q (platforms: %v)\n", p,
					append(cluster.Names(), cluster.CustomNames()...))
				os.Exit(2)
			}
			platforms = append(platforms, p)
		}
	}

	// The signal context is created before the warm-up starts so a
	// SIGINT mid-warm cancels pending jobs instead of letting the
	// pool run to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	warmDone := make(chan struct{})
	if *warm {
		go func() {
			defer close(warmDone)
			t0 := time.Now()
			n := srv.Warm(ctx, nil, platforms, *workers)
			st := srv.Stats()
			if ctx.Err() != nil {
				logger.Info("warm-up canceled", "runs", n)
				return
			}
			logger.Info("warm-up complete",
				"elapsed", time.Since(t0).Round(time.Millisecond).String(),
				"runs", n, "disk_loads", st.DiskLoads, "workers", *workers)
		}()
	} else {
		close(warmDone)
	}

	// No WriteTimeout: a full-scale experiment legitimately holds a
	// response open for minutes. Header and idle timeouts are what
	// keep slow clients from pinning goroutines and fds forever.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "scale_limit", limit.String())
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "error", err.Error())
			os.Exit(1)
		}
	case <-ctx.Done():
		// Restore default signal disposition right away: a second
		// SIGINT force-kills instead of being swallowed while the
		// graceful path waits out in-flight work.
		stop()
		logger.Info("shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			logger.Error("shutdown", "error", err.Error())
		}
		// Wait for the warm-up to observe the cancellation: pending
		// jobs are skipped, so this blocks at most for the in-flight
		// runs — not the rest of the pool — and cache writes settle
		// before exit.
		<-warmDone
		// Final summary: always one JSON line (even under -log-format
		// text) so a supervisor's log scraper gets the lifetime totals
		// without parsing the human format.
		st := srv.Stats()
		logger.JSONLine("info", "exit summary",
			"runs", st.Runs, "mem_hits", st.MemHits,
			"disk_loads", st.DiskLoads, "disk_errs", st.DiskErrs,
			"uptime_seconds", int(time.Since(start).Seconds()))
	}
}
