// Command osu runs the OSU-style point-to-point micro-benchmarks over a
// chosen fabric and platform model.
//
// Usage:
//
//	osu -bench latency -fabric sim -platform ib-8n -pair 0,63
//	osu -bench bw -fabric tcp -np 2
//	osu -bench multipair -pairs 4 -platform ib-8n
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mp"
	"repro/internal/osu"
	"repro/internal/report"
)

func main() {
	bench := flag.String("bench", "latency", "latency | bw | bibw | multipair")
	fabric := flag.String("fabric", "sim", "inproc | sim | tcp")
	platform := flag.String("platform", "ib-8n", "platform model (sim fabric)")
	np := flag.Int("np", 0, "ranks (0 = platform core count, or 2 for real fabrics)")
	pairSpec := flag.String("pair", "0,1", "measured rank pair a,b")
	pairs := flag.Int("pairs", 2, "pair count for -bench multipair")
	iters := flag.Int("iters", 100, "iterations per size")
	window := flag.Int("window", 64, "bandwidth window size")
	flag.Parse()

	cfg := mp.Config{}
	switch *fabric {
	case "inproc":
		cfg.Fabric = mp.InProc
	case "tcp":
		cfg.Fabric = mp.TCP
	case "sim":
		cfg.Fabric = mp.Sim
		m, ok := cluster.Presets()[*platform]
		if !ok {
			fail("unknown platform %q; presets: %v", *platform, presetNames())
		}
		cfg.Model = m
	default:
		fail("unknown fabric %q", *fabric)
	}

	n := *np
	if n == 0 {
		if cfg.Model != nil {
			n = cfg.Model.Topo.TotalCores()
		} else {
			n = 2
		}
	}

	a, b, err := parsePair(*pairSpec)
	if err != nil {
		fail("%v", err)
	}
	opts := osu.Options{Warmup: 10, Iters: *iters, Window: *window, PairA: a, PairB: b}

	var samples []osu.Sample
	runErr := mp.Run(n, cfg, func(c *mp.Comm) error {
		var s []osu.Sample
		var err error
		switch *bench {
		case "latency":
			s, err = osu.Latency(c, opts)
		case "bw":
			s, err = osu.Bandwidth(c, opts)
		case "bibw":
			s, err = osu.BiBandwidth(c, opts)
		case "multipair":
			s, err = osu.MultiPairBandwidth(c, *pairs, opts)
		default:
			return fmt.Errorf("unknown benchmark %q", *bench)
		}
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			samples = s
		}
		return nil
	})
	if runErr != nil {
		fail("%v", runErr)
	}

	unit, scale := "us", 1e6
	if *bench != "latency" {
		unit, scale = "MB/s", 1e-6
	}
	t := report.NewTable(fmt.Sprintf("osu_%s (%s, %d ranks)", *bench, *fabric, n),
		"bytes", unit)
	for _, s := range samples {
		t.AddRow(s.Size, s.Value*scale)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		fail("%v", err)
	}
}

func parsePair(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("pair must be a,b: %q", s)
	}
	a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func presetNames() []string {
	var names []string
	for n := range cluster.Presets() {
		names = append(names, n)
	}
	return names
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "osu: "+format+"\n", args...)
	os.Exit(1)
}
