// Command nas runs the NAS-style application kernels (EP, IS) on a
// chosen fabric and platform model.
//
// Usage:
//
//	nas -kernel ep -np 8 -pairs 1000000
//	nas -kernel is -np 8 -keys 100000 -maxkey 1048576 -fabric sim -platform ib-8n
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/mp"
	"repro/internal/nas"
)

func main() {
	kernel := flag.String("kernel", "ep", "ep | is")
	fabric := flag.String("fabric", "inproc", "inproc | sim | tcp")
	platform := flag.String("platform", "ib-8n", "platform model (sim fabric)")
	np := flag.Int("np", 4, "ranks")
	pairs := flag.Int("pairs", 1<<20, "EP pairs per rank")
	keys := flag.Int("keys", 1<<17, "IS keys per rank")
	maxKey := flag.Int("maxkey", 1<<20, "IS key range")
	check := flag.Bool("check", true, "verify results (IS)")
	flag.Parse()

	cfg := mp.Config{}
	switch *fabric {
	case "inproc":
		cfg.Fabric = mp.InProc
	case "tcp":
		cfg.Fabric = mp.TCP
	case "sim":
		cfg.Fabric = mp.Sim
		m, ok := cluster.Presets()[*platform]
		if !ok {
			fail("unknown platform %q", *platform)
		}
		cfg.Model = m
	default:
		fail("unknown fabric %q", *fabric)
	}
	var computeRate float64
	if cfg.Model != nil {
		computeRate = cfg.Model.FlopsPerCore / 50
	}

	err := mp.Run(*np, cfg, func(c *mp.Comm) error {
		switch *kernel {
		case "ep":
			res, err := nas.EP(c, nas.EPConfig{
				PairsPerRank: *pairs, Seed: 1, ComputeRate: computeRate,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				frac := float64(res.Accepted) / float64(res.Pairs)
				fmt.Printf("EP  pairs=%d accepted=%.4f  %.4f s  %.3f Mpairs/s\n",
					res.Pairs, frac, res.Seconds, res.MopsPerS)
				fmt.Printf("    ring counts: %v\n", res.Counts)
			}
		case "is":
			res, err := nas.IS(c, nas.ISConfig{
				KeysPerRank: *keys, MaxKey: *maxKey, Seed: 2, Verify: *check,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("IS  keys=%d  %.4f s  %.3f Mkeys/s  sorted=%v\n",
					res.TotalKeys, res.Seconds, res.MKeysPerS, res.SortedOK)
			}
		default:
			return fmt.Errorf("unknown kernel %q", *kernel)
		}
		return nil
	})
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nas: "+format+"\n", args...)
	os.Exit(1)
}
