// Command hpcc runs individual HPC Challenge kernels on a chosen fabric
// and platform model.
//
// Usage:
//
//	hpcc -kernel hpl -np 8 -n 512 -nb 32 -platform ib-8n
//	hpcc -kernel gups -np 8 -bits 16
//	hpcc -kernel ptrans -np 8 -n 512
//	hpcc -kernel fft -np 4 -n1 256 -n2 256
//	hpcc -kernel ring -np 16 -size 4096
//	hpcc -kernel dgemm -n 512 -threads 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/hpcc"
	"repro/internal/mp"
)

func main() {
	kernel := flag.String("kernel", "hpl", "hpl | gups | ptrans | fft | ring | dgemm")
	fabric := flag.String("fabric", "sim", "inproc | sim | tcp")
	platform := flag.String("platform", "ib-8n", "platform model (sim fabric)")
	np := flag.Int("np", 4, "ranks")
	n := flag.Int("n", 256, "problem order (hpl/ptrans/dgemm)")
	nb := flag.Int("nb", 32, "HPL block size")
	bits := flag.Int("bits", 14, "GUPS table bits")
	n1 := flag.Int("n1", 128, "FFT rows")
	n2 := flag.Int("n2", 128, "FFT cols")
	size := flag.Int("size", 4096, "ring message size")
	threads := flag.Int("threads", 0, "local threads (0 = GOMAXPROCS)")
	check := flag.Bool("check", true, "verify results")
	flag.Parse()

	if *threads == 0 {
		*threads = runtime.GOMAXPROCS(0)
	}

	cfg := mp.Config{}
	switch *fabric {
	case "inproc":
		cfg.Fabric = mp.InProc
	case "tcp":
		cfg.Fabric = mp.TCP
	case "sim":
		cfg.Fabric = mp.Sim
		m, ok := cluster.Presets()[*platform]
		if !ok {
			fail("unknown platform %q", *platform)
		}
		cfg.Model = m
	default:
		fail("unknown fabric %q", *fabric)
	}
	var computeRate float64
	if cfg.Model != nil {
		computeRate = cfg.Model.FlopsPerCore
	}

	if *kernel == "dgemm" {
		res, err := hpcc.DGEMM(hpcc.DGEMMConfig{N: *n, Threads: *threads, Reps: 3, Seed: 1})
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("DGEMM  N=%d threads=%d  %.4f s  %.3f GFLOP/s\n",
			res.N, res.Threads, res.Seconds, res.GFlops)
		return
	}

	err := mp.Run(*np, cfg, func(c *mp.Comm) error {
		switch *kernel {
		case "hpl":
			res, err := hpcc.HPL(c, hpcc.HPLConfig{
				N: *n, NB: *nb, Seed: 7, Threads: *threads,
				ComputeRate: computeRate, SkipCheck: !*check,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("HPL    N=%d NB=%d p=%d  %.4f s  %.3f GFLOP/s  residual=%.3g\n",
					res.N, res.NB, res.P, res.Seconds, res.GFlops, res.Residual)
			}
		case "gups":
			res, err := hpcc.RandomAccess(c, hpcc.GUPSConfig{
				TableBits: *bits, Verify: *check, Chunk: 4096, ComputeRate: computeRate / 50,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("GUPS   table=2^%d updates=%d  %.4f s  %.6f GUPS  errors=%d\n",
					*bits, res.Updates, res.Seconds, res.GUPS, res.Errors)
			}
		case "ptrans":
			res, err := hpcc.PTRANS(c, hpcc.PTRANSConfig{N: *n, Seed: 5, Verify: *check})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("PTRANS N=%d  %.4f s  %.3f GB/s  maxerr=%.3g\n",
					res.N, res.Seconds, res.GBps, res.MaxErr)
			}
		case "fft":
			res, err := hpcc.DistFFT(c, hpcc.FFTConfig{
				N1: *n1, N2: *n2, Seed: 3, Verify: *check, ComputeRate: computeRate / 4,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("FFT    N=%d  %.4f s  %.3f GFLOP/s  maxerr=%.3g\n",
					res.N, res.Seconds, res.GFlops, res.MaxErr)
			}
		case "ring":
			nat, err := hpcc.NaturalRing(c, *size, 5, 50)
			if err != nil {
				return err
			}
			rnd, err := hpcc.RandomRing(c, *size, 5, 50, 99)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("RING   size=%d  natural %.3f MB/s  random %.3f MB/s\n",
					*size, nat.Bandwidth/1e6, rnd.Bandwidth/1e6)
			}
		default:
			return fmt.Errorf("unknown kernel %q", *kernel)
		}
		return nil
	})
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hpcc: "+format+"\n", args...)
	os.Exit(1)
}
