// Command stream runs the STREAM memory-bandwidth benchmark on the host
// with the internal/par team runtime, printing the classic four-kernel
// table.
//
// Usage:
//
//	stream -n 8388608 -ntimes 10 -threads 8 -firsttouch
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/stream"
)

func main() {
	n := flag.Int("n", 1<<23, "array length (float64 elements)")
	ntimes := flag.Int("ntimes", 10, "timed trials per kernel")
	threads := flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	firstTouch := flag.Bool("firsttouch", true, "parallel first-touch initialization")
	flag.Parse()

	res, err := stream.Run(stream.Config{
		N: *n, NTimes: *ntimes, Threads: *threads, FirstTouch: *firstTouch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		os.Exit(1)
	}
	t := report.NewTable(
		fmt.Sprintf("STREAM (n=%d, %.1f MiB/array)", *n, float64(*n)*8/(1<<20)),
		"kernel", "best MB/s", "avg time", "min time", "max time")
	for _, r := range res {
		t.AddRow(r.Kernel.String(), r.MBps(), r.AvgTime, r.MinTime, r.MaxTime)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		os.Exit(1)
	}
}
