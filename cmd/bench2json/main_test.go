package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.20GHz
BenchmarkT1PlatformTable-8   	       1	  12345678 ns/op	  409600 B/op	    1234 allocs/op
BenchmarkM3PageSizeTable-8   	       1	   2345678 ns/op	   81920 B/op	     456 allocs/op
BenchmarkM4HierarchyFit      	       2	   1000000 ns/op
BenchmarkRouterScaling/shards=8-8	     500	    140000 ns/op	    7142 req/s
some benchmark log line that is not a result
BenchmarkBroken-8 this line does not parse
PASS
ok  	repro	12.345s
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.GOOS != "linux" || rec.GOARCH != "amd64" || rec.Pkg != "repro" {
		t.Errorf("header = %s/%s/%s", rec.GOOS, rec.GOARCH, rec.Pkg)
	}
	if !strings.Contains(rec.CPU, "Xeon") {
		t.Errorf("cpu = %q", rec.CPU)
	}
	if len(rec.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}

	b := rec.Benchmarks[0]
	if b.Name != "BenchmarkT1PlatformTable" || b.Procs != 8 || b.Iterations != 1 {
		t.Errorf("first bench identity: %+v", b)
	}
	if b.NsPerOp != 12345678 || b.BytesPerOp != 409600 || b.AllocsPerOp != 1234 {
		t.Errorf("first bench metrics: %+v", b)
	}

	// No -benchmem columns and no procs suffix still parse.
	b = rec.Benchmarks[2]
	if b.Name != "BenchmarkM4HierarchyFit" || b.Procs != 1 || b.Iterations != 2 || b.NsPerOp != 1e6 {
		t.Errorf("bare bench: %+v", b)
	}
	if b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("bare bench has phantom memstats: %+v", b)
	}
	if b.Extra != nil {
		t.Errorf("bare bench has phantom extra metrics: %+v", b)
	}

	// Custom ReportMetric units land in Extra keyed by unit.
	b = rec.Benchmarks[3]
	if b.Name != "BenchmarkRouterScaling/shards=8" || b.NsPerOp != 140000 {
		t.Errorf("custom-metric bench identity: %+v", b)
	}
	if got := b.Extra["req/s"]; got != 7142 {
		t.Errorf("req/s = %v, want 7142 (extra: %v)", got, b.Extra)
	}
}

func TestParseEmpty(t *testing.T) {
	rec, err := parse(strings.NewReader("PASS\nok\trepro\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from empty run", len(rec.Benchmarks))
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 1},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar", 1},
		{"BenchmarkSub/case-4", "BenchmarkSub/case", 4},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", c.in, name, procs, c.name, c.procs)
		}
	}
}
