// Command bench2json converts `go test -bench` text output on stdin
// into a JSON benchmark record on stdout — the format CI uploads as a
// BENCH_*.json artifact so per-PR timings accumulate into a perf
// trajectory.
//
//	go test -bench 'Benchmark(T1|M3|M4)' -benchtime=1x -benchmem -run '^$' . | bench2json > BENCH_pr.json
//
// Each benchmark line becomes {name, procs, iterations, ns_per_op,
// bytes_per_op, allocs_per_op}; the goos/goarch/pkg/cpu header lines
// are carried in the envelope. Non-benchmark lines (PASS, ok, logs)
// are ignored. Exits non-zero if no benchmark lines were found, so a
// silently empty artifact fails the job instead of uploading nothing.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. Custom metrics a
// benchmark reports via b.ReportMetric (req/s from the router load
// harness, ns/access from the pointer chase) land in Extra keyed by
// their unit, so throughput numbers reach the artifact alongside the
// standard columns.
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Record is the whole JSON document: the platform header go test
// prints plus every benchmark line.
type Record struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rec, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and collects the header fields
// and benchmark lines.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	return rec, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkT1PlatformTable-8  1  12345678 ns/op  4096 B/op  12 allocs/op
//
// Lines that start with "Benchmark" but don't parse (a benchmark's
// own log output, say) are skipped, not fatal.
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(f[0])
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	ok := false
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			ok = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[f[i+1]] = v
		}
	}
	return b, ok
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8). A name
// without the GOMAXPROCS suffix reports procs 1.
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n <= 0 {
		return s, 1
	}
	return s[:i], n
}
