// Command benchdiff compares two BENCH_*.json records (the format
// cmd/bench2json emits) and flags per-benchmark time regressions —
// the historical-tracking half of the bench trajectory: CI produces
// BENCH_pr.json, the repo carries BENCH_baseline.json, and this tool
// says whether the PR got slower.
//
//	benchdiff -baseline BENCH_baseline.json -pr BENCH_pr.json
//	benchdiff -threshold 0.50 -baseline old.json -pr new.json
//
// For every benchmark present in both records it prints the baseline
// and PR ns/op and the ratio; a ratio above 1+threshold (default
// 0.25, i.e. >25% slower) is flagged as a regression. Benchmarks only
// in one record are listed as added/removed, never flagged. Exit
// status: 0 when no regressions, 2 when at least one, 1 on bad input
// — so a CI step can surface regressions distinctly from tool errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Benchmark mirrors cmd/bench2json's per-line record; only the fields
// the comparison needs are decoded.
type Benchmark struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Record mirrors cmd/bench2json's envelope.
type Record struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Delta is one compared benchmark.
type Delta struct {
	Name       string
	BaseNs     float64
	PRNs       float64
	Ratio      float64 // PR / baseline
	Regression bool
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "baseline benchmark record")
	pr := flag.String("pr", "BENCH_pr.json", "candidate benchmark record to compare against the baseline")
	threshold := flag.Float64("threshold", 0.25, "flag ratios above 1+threshold as regressions (0.25 = 25% slower)")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	cand, err := load(*pr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	deltas, added, removed := compare(base, cand, *threshold)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no overlapping benchmarks between the two records")
		os.Exit(1)
	}

	fmt.Printf("%-32s %14s %14s %8s\n", "benchmark", "baseline ns/op", "pr ns/op", "ratio")
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-32s %14.0f %14.0f %8.3f%s\n", d.Name, d.BaseNs, d.PRNs, d.Ratio, mark)
	}
	for _, name := range added {
		fmt.Printf("%-32s %14s %14s %8s  (new, no baseline)\n", name, "-", "-", "-")
	}
	for _, name := range removed {
		fmt.Printf("%-32s %14s %14s %8s  (removed from pr)\n", name, "-", "-", "-")
	}
	if regressions > 0 {
		fmt.Printf("\n%s\n", regressionSummary(regressions, *threshold, *baseline, added, removed))
		os.Exit(2)
	}
	fmt.Printf("\nno regressions above %.0f%% (%d benchmarks compared)\n", *threshold*100, len(deltas))
}

// regressionSummary builds the exit-2 message. When the benchmark sets
// diverged, it names the added and removed benchmarks explicitly — a
// regression verdict over a shifted set is easy to misread in CI logs
// ("did the slow one get removed, or renamed?"), so the summary says
// exactly which names have no counterpart instead of leaving the
// reader to diff the table above by eye.
func regressionSummary(regressions int, threshold float64, baseline string, added, removed []string) string {
	s := fmt.Sprintf("%d benchmark(s) regressed more than %.0f%% vs %s",
		regressions, threshold*100, baseline)
	if len(added) > 0 {
		s += fmt.Sprintf("\nnot compared, added in pr (no baseline): %s", strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		s += fmt.Sprintf("\nnot compared, removed from pr: %s", strings.Join(removed, ", "))
	}
	return s
}

func load(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare pairs the two records by benchmark name and computes the
// PR/baseline time ratios, flagging those above 1+threshold. A
// baseline of 0 ns/op (a degenerate or truncated record) is skipped
// rather than dividing by zero. Names unique to one side are returned
// as added (pr-only) and removed (baseline-only), sorted.
func compare(base, pr *Record, threshold float64) (deltas []Delta, added, removed []string) {
	// First occurrence wins on both sides, so a concatenated record
	// dedups the same way whichever file it appears in.
	baseBy := map[string]float64{}
	for _, b := range base.Benchmarks {
		if _, ok := baseBy[b.Name]; !ok {
			baseBy[b.Name] = b.NsPerOp
		}
	}
	seen := map[string]bool{}
	for _, c := range pr.Benchmarks {
		if seen[c.Name] {
			continue
		}
		seen[c.Name] = true
		bn, ok := baseBy[c.Name]
		if !ok {
			added = append(added, c.Name)
			continue
		}
		if bn <= 0 {
			continue
		}
		ratio := c.NsPerOp / bn
		deltas = append(deltas, Delta{
			Name:       c.Name,
			BaseNs:     bn,
			PRNs:       c.NsPerOp,
			Ratio:      ratio,
			Regression: ratio > 1+threshold,
		})
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			removed = append(removed, b.Name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(added)
	sort.Strings(removed)
	return deltas, added, removed
}
