package main

import (
	"strings"
	"testing"
)

func rec(pairs ...any) *Record {
	r := &Record{}
	for i := 0; i+1 < len(pairs); i += 2 {
		r.Benchmarks = append(r.Benchmarks, Benchmark{
			Name: pairs[i].(string), NsPerOp: pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := rec("A", 100.0, "B", 100.0, "C", 100.0, "Gone", 50.0)
	pr := rec("A", 120.0, "B", 126.0, "C", 80.0, "New", 10.0)
	deltas, added, removed := compare(base, pr, 0.25)

	if len(deltas) != 3 {
		t.Fatalf("compared %d benchmarks, want 3", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	// 20% slower: under the 25% threshold.
	if byName["A"].Regression {
		t.Error("A (+20%) flagged as a regression at threshold 25%")
	}
	// 26% slower: over.
	if !byName["B"].Regression {
		t.Error("B (+26%) not flagged at threshold 25%")
	}
	// Faster is never a regression.
	if byName["C"].Regression {
		t.Error("C (-20%) flagged as a regression")
	}
	if byName["B"].Ratio < 1.25 || byName["B"].Ratio > 1.27 {
		t.Errorf("B ratio = %v, want ~1.26", byName["B"].Ratio)
	}
	if len(added) != 1 || added[0] != "New" {
		t.Errorf("added = %v, want [New]", added)
	}
	if len(removed) != 1 || removed[0] != "Gone" {
		t.Errorf("removed = %v, want [Gone]", removed)
	}
}

func TestCompareSkipsZeroBaseline(t *testing.T) {
	deltas, _, _ := compare(rec("Z", 0.0), rec("Z", 100.0), 0.25)
	if len(deltas) != 0 {
		t.Errorf("zero-baseline benchmark compared: %+v", deltas)
	}
}

func TestCompareExactThresholdNotFlagged(t *testing.T) {
	// Exactly 1+threshold is "no worse than", not a regression.
	deltas, _, _ := compare(rec("E", 100.0), rec("E", 125.0), 0.25)
	if len(deltas) != 1 || deltas[0].Regression {
		t.Errorf("ratio exactly at threshold flagged: %+v", deltas)
	}
}

func TestCompareDedupsPRNames(t *testing.T) {
	// A duplicated name in the PR record (merged files, say) is
	// compared once, not twice.
	deltas, _, _ := compare(rec("D", 100.0), rec("D", 110.0, "D", 500.0), 0.25)
	if len(deltas) != 1 {
		t.Fatalf("duplicate PR benchmark compared %d times", len(deltas))
	}
	if deltas[0].PRNs != 110.0 {
		t.Errorf("first occurrence should win, got %v", deltas[0].PRNs)
	}
}

func TestCompareDedupsBaselineNames(t *testing.T) {
	// Both sides apply the same first-occurrence rule.
	deltas, _, _ := compare(rec("D", 100.0, "D", 500.0), rec("D", 120.0), 0.25)
	if len(deltas) != 1 || deltas[0].BaseNs != 100.0 {
		t.Errorf("baseline dedup wrong: %+v", deltas)
	}
}

func TestRegressionSummaryNamesDivergedSets(t *testing.T) {
	cases := []struct {
		name           string
		added, removed []string
		wantContain    []string
		wantAbsent     []string
	}{
		{
			name:        "no divergence",
			wantContain: []string{"2 benchmark(s) regressed more than 25% vs base.json"},
			wantAbsent:  []string{"added", "removed"},
		},
		{
			name:        "added only",
			added:       []string{"BenchNew1", "BenchNew2"},
			wantContain: []string{"added in pr", "BenchNew1, BenchNew2"},
			wantAbsent:  []string{"removed from pr"},
		},
		{
			name:        "removed only",
			removed:     []string{"BenchGone"},
			wantContain: []string{"removed from pr: BenchGone"},
			wantAbsent:  []string{"added in pr"},
		},
		{
			// The case the old message got wrong: both sets diverged and
			// neither was named.
			name:    "added and removed",
			added:   []string{"BenchNew"},
			removed: []string{"BenchGoneA", "BenchGoneB"},
			wantContain: []string{
				"added in pr (no baseline): BenchNew",
				"removed from pr: BenchGoneA, BenchGoneB",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := regressionSummary(2, 0.25, "base.json", tc.added, tc.removed)
			for _, want := range tc.wantContain {
				if !strings.Contains(got, want) {
					t.Errorf("summary %q missing %q", got, want)
				}
			}
			for _, absent := range tc.wantAbsent {
				if strings.Contains(got, absent) {
					t.Errorf("summary %q should not mention %q", got, absent)
				}
			}
		})
	}
}
