// Command charhpc-router scales the results service horizontally: it
// fronts a pool of charhpcd workers behind the single-daemon API,
// consistent-hashing the platform-qualified cache key (id, scale,
// platform) so each shard's memory and disk cache stays hot for its
// own slice of the key space. Clients — charhpc included — point
// -addr at the router and cannot tell it from one daemon: blocking
// GETs, async jobs with their SSE event streams, and the /platforms
// resource all proxy through byte-for-byte (custom-platform
// registrations fan out to every shard).
//
// Shards are health-checked (periodic /healthz probes; a failed proxy
// hop marks a shard down immediately), and a request whose shard is
// unreachable re-routes to the next live ring successor — the same
// shard its keys would remap to if the owner left the pool, so
// failover traffic lands where the cache will be rebuilt anyway.
//
// Usage:
//
//	charhpc-router -shards http://10.0.0.1:8080,http://10.0.0.2:8080
//	charhpc-router -shards host1:8080,host2:8080 -addr :8079
//	charhpc-router -warm -j 8                # fan-out warm-up, partitioned by ring ownership
//	charhpc-router -warm-platforms default,gige-8n
//	charhpc-router -health-interval 1s -health-timeout 500ms
//	charhpc-router -scale-limit full         # match the shards' -scale-limit
//
// Run the shards with -warm=false when the router drives -warm: the
// router partitions the registry × platform plan by ring ownership so
// each shard fills exactly the keys it will serve.
//
// Observability: GET /healthz aggregates per-shard liveness on one
// line; GET /metrics exposes the router's own instruments
// (charhpc_router_shard_up, charhpc_router_routed_total,
// charhpc_router_failovers_total, charhpc_router_proxy_seconds) —
// scrape the shards' /metrics alongside for the cache tiers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8079", "listen address")
	shardsFlag := flag.String("shards", "", "comma-separated charhpcd base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
	vnodes := flag.Int("vnodes", shard.DefaultVNodes, "virtual nodes per shard on the hash ring")
	scaleLimit := flag.String("scale-limit", "quick", "largest scale routed: quick or full (match the shards' -scale-limit)")
	healthInterval := flag.Duration("health-interval", shard.DefaultHealthInterval, "time between shard /healthz probes")
	healthTimeout := flag.Duration("health-timeout", shard.DefaultHealthTimeout, "per-probe timeout")
	warm := flag.Bool("warm", false, "drive the fan-out warm-up at startup, partitioned by ring ownership (run the shards with -warm=false)")
	warmPlatforms := flag.String("warm-platforms", "default",
		"comma-separated platform axis for the warm-up: 'default' is each experiment's canonical set, any other name is a preset")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "warm-up worker pool size")
	logFormat := flag.String("log-format", "text", "log line format: text or json")
	flag.Parse()

	if *logFormat != obs.FormatText && *logFormat != obs.FormatJSON {
		fmt.Fprintf(os.Stderr, "charhpc-router: unknown log format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat)

	var limit core.Scale
	switch *scaleLimit {
	case "quick":
		limit = core.Quick
	case "full":
		limit = core.Full
	default:
		fmt.Fprintf(os.Stderr, "charhpc-router: unknown scale limit %q (want quick or full)\n", *scaleLimit)
		os.Exit(2)
	}

	var shards []string
	for _, s := range strings.Split(*shardsFlag, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "charhpc-router: -shards is required (comma-separated charhpcd base URLs)")
		os.Exit(2)
	}

	rt, err := shard.New(shard.Config{
		Shards:         shards,
		VNodes:         *vnodes,
		ScaleLimit:     limit,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		AccessLog:      logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "charhpc-router: %v\n", err)
		os.Exit(2)
	}
	defer rt.Close()

	var platforms []string
	for _, p := range strings.Split(*warmPlatforms, ",") {
		p = strings.TrimSpace(p)
		switch p {
		case "":
			continue
		case "default":
			platforms = append(platforms, "")
		default:
			if _, ok := cluster.Lookup(p); !ok {
				fmt.Fprintf(os.Stderr, "charhpc-router: unknown warm-up platform %q (platforms: %v)\n", p,
					append(cluster.Names(), cluster.CustomNames()...))
				os.Exit(2)
			}
			platforms = append(platforms, p)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	warmDone := make(chan struct{})
	if *warm {
		go func() {
			defer close(warmDone)
			t0 := time.Now()
			n := rt.Warm(ctx, nil, platforms, *workers)
			if ctx.Err() != nil {
				logger.Info("fan-out warm-up canceled", "warmed", n)
				return
			}
			logger.Info("fan-out warm-up complete",
				"elapsed", time.Since(t0).Round(time.Millisecond).String(),
				"warmed", n, "workers", *workers)
		}()
	} else {
		close(warmDone)
	}

	// Same timeout posture as charhpcd: no WriteTimeout (a routed
	// full-scale run or SSE stream legitimately holds a response open
	// for minutes); header and idle timeouts fence slow clients.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		logger.Info("routing", "addr", *addr, "shards", strings.Join(shards, ","), "scale_limit", limit.String())
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "error", err.Error())
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		logger.Info("shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			logger.Error("shutdown", "error", err.Error())
		}
		<-warmDone
		st := rt.Stats()
		logger.JSONLine("info", "exit summary",
			"shards_up", st.ShardsUp, "shards_total", st.ShardsTotal,
			"failovers", st.Failovers,
			"uptime_seconds", int(time.Since(start).Seconds()))
	}
}
