// Bounded retry for -submit's daemon calls: exponential backoff with
// full jitter on outcomes that are safe and useful to retry — dial
// errors (the request never left this process, so even POST /runs
// cannot double-submit) and 502/503 from a shard router (failover in
// progress or no live shard yet; see internal/shard). Off by default:
// -retries 0 preserves fail-fast, and any other transport error or
// HTTP status is final on the first attempt either way.
package main

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"time"
)

// Backoff shape: 100ms doubling per attempt, capped at 2s, with full
// jitter (a uniform draw from (0, delay]) so a burst of retrying
// clients spreads out instead of re-converging on the router.
const (
	retryBase = 100 * time.Millisecond
	retryCap  = 2 * time.Second
)

// retrier re-runs an HTTP call up to max extra times. sleep and
// jitter are injectable for tests.
type retrier struct {
	max    int
	sleep  func(time.Duration)
	jitter func() float64
}

func newRetrier(max int) *retrier {
	return &retrier{max: max, sleep: time.Sleep, jitter: rand.Float64}
}

// transientStatus reports whether a status code is worth retrying:
// 502 is the router's every-candidate-shard-failed answer and 503 its
// no-live-shard answer — both are pool states that a backoff can
// outwait, unlike any 4xx (the request itself is wrong) or 500 (the
// run failed and will fail again).
func transientStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable
}

// transientErr reports whether a transport error happened at dial
// time. Only dial failures are retried: the connection never opened,
// so the server cannot have seen the request — retrying cannot
// duplicate work, even on POST. An error after the dial (reset
// mid-response, say) may mean the server acted, so it is final.
func transientErr(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// do runs op until it yields a non-transient outcome or attempts run
// out, returning the last outcome either way. A transient response's
// body is drained and closed before the retry; the returned
// response's body is the caller's to close.
func (rt *retrier) do(op func() (*http.Response, error)) (*http.Response, error) {
	delay := retryBase
	for attempt := 0; ; attempt++ {
		resp, err := op()
		transient := false
		if err != nil {
			transient = transientErr(err)
		} else {
			transient = transientStatus(resp.StatusCode)
		}
		if !transient || attempt >= rt.max {
			return resp, err
		}
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		rt.sleep(time.Duration(rt.jitter() * float64(delay)))
		if delay *= 2; delay > retryCap {
			delay = retryCap
		}
	}
}
