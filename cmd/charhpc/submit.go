// The -submit client mode: drive a charhpcd daemon's async run API
// instead of executing locally. One POST /runs per selected
// experiment; with -follow the job's Server-Sent Events render as a
// live progress line and the terminal event hands off to the cached
// result, which is fetched and printed exactly as a local run's
// output block would be.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"repro/internal/core"
)

// submitResponse mirrors the serve package's 202 body for POST /runs.
type submitResponse struct {
	Job       string `json:"job"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// jobEvent mirrors one record of the job's event log (internal/jobs
// Event), as carried in each SSE data line.
type jobEvent struct {
	Seq  int               `json:"seq"`
	Type string            `json:"type"`
	Data map[string]string `json:"data"`
}

// terminal reports whether this event ends the stream.
func (e jobEvent) terminal() bool {
	switch e.Type {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// runSubmit is the -submit entry point: submits every selected
// experiment to the daemon at addr and, with follow, streams each
// job's progress and prints its result. A non-nil platformSpec (the
// canonical bytes behind -platform-file) is POSTed to /platforms
// first — content-hash naming guarantees the daemon resolves the
// request's custom-<hash> name to the identical machine. Returns the
// process exit code.
func runSubmit(addr string, ids []string, req core.Request, follow bool, platformSpec []byte, retries int) int {
	addr = strings.TrimRight(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	rt := newRetrier(retries)
	if platformSpec != nil {
		if err := registerPlatform(addr, platformSpec, rt); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: registering %s on %s: %v\n", req.Platform, addr, err)
			return 1
		}
	}
	failed := 0
	for _, id := range ids {
		if err := submitOne(addr, id, req, follow, rt); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %s: %v\n", id, err)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// registerPlatform POSTs one canonical platform spec to the daemon.
// 201 (first sighting) and 200 (already registered) both succeed —
// registration is idempotent by content hash.
func registerPlatform(addr string, spec []byte, rt *retrier) error {
	resp, err := rt.do(func() (*http.Response, error) {
		return http.Post(addr+"/platforms", "application/json", strings.NewReader(string(spec)))
	})
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// submitOne submits a single experiment and optionally follows it.
func submitOne(addr, id string, req core.Request, follow bool, rt *retrier) error {
	q := url.Values{"id": {id}, "scale": {req.Scale.String()}}
	if req.Platform != "" {
		q.Set("platform", req.Platform)
	}
	resp, err := rt.do(func() (*http.Response, error) {
		return http.Post(addr+"/runs?"+q.Encode(), "", nil)
	})
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		return fmt.Errorf("submit: bad response: %v", err)
	}
	if !follow {
		fmt.Printf("%s submitted: job %s  (%s%s)\n", id, sub.Job, addr, sub.EventsURL)
		return nil
	}
	return followJob(addr, id, sub, rt)
}

// followJob streams one job's SSE feed, rendering phase/section
// progress as a single live-updating line, then prints the result
// body the terminal event points at.
func followJob(addr, id string, sub submitResponse, rt *retrier) error {
	resp, err := rt.do(func() (*http.Response, error) {
		return http.Get(addr + sub.EventsURL)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: %s", resp.Status)
	}

	var last jobEvent
	sections := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev jobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("events: bad frame %q: %v", data, err)
		}
		switch {
		case ev.terminal():
			last = ev
		case ev.Type == "section":
			sections++
			fmt.Printf("\r\033[K%s: section %q done (%d so far)", id, ev.Data["title"], sections)
		case ev.Type == "phase" && ev.Data["state"] == "start":
			fmt.Printf("\r\033[K%s: %s ...", id, ev.Data["name"])
		case ev.Type == "state":
			fmt.Printf("\r\033[K%s: %s", id, ev.Data["state"])
		}
		if ev.terminal() {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("events: %w", err)
	}
	if last.Type == "" {
		return fmt.Errorf("events: stream ended without a terminal event")
	}
	fmt.Printf("\r\033[K%s: %s  [job %s, %ss, tier %s]\n",
		id, last.Type, sub.Job, last.Data["elapsed_seconds"], last.Data["tier"])
	if last.Type != "done" {
		if msg := last.Data["error"]; msg != "" {
			return fmt.Errorf("job %s: %s", last.Type, msg)
		}
		return fmt.Errorf("job %s", last.Type)
	}

	// Hand-off: the terminal event names the cached result.
	res, err := rt.do(func() (*http.Response, error) {
		return http.Get(addr + last.Data["url"])
	})
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("result: %s", res.Status)
	}
	if etag := res.Header.Get("ETag"); etag != last.Data["etag"] {
		fmt.Fprintf(os.Stderr, "charhpc: %s: result etag %s differs from job's %s (re-run since?)\n",
			id, etag, last.Data["etag"])
	}
	_, err = io.Copy(os.Stdout, res.Body)
	return err
}
