// Command charhpc runs the platform characterization: every table and
// figure of the reconstructed evaluation (see DESIGN.md), or a selected
// subset.
//
// Usage:
//
//	charhpc -list
//	charhpc -scale quick            # all experiments, reduced sweeps
//	charhpc -scale full -exp F1,T3  # selected experiments, paper scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "sweep scale: quick or full")
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	flag.Parse()

	if *listFlag {
		for _, e := range core.All() {
			fmt.Printf("%-4s %-7s %s\n", e.ID, e.Kind, e.Title)
		}
		return
	}

	var scale core.Scale
	switch *scaleFlag {
	case "quick":
		scale = core.Quick
	case "full":
		scale = core.Full
	default:
		fmt.Fprintf(os.Stderr, "charhpc: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(1)
		}
	}

	var selected []core.Experiment
	if *expFlag == "all" {
		selected = core.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := core.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "charhpc: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("\n### %s (%s): %s\n", e.ID, e.Kind, e.Title)
		w := io.Writer(os.Stdout)
		var f *os.File
		if *outDir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outDir, e.ID+".txt"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
				os.Exit(1)
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		err := e.Run(w, scale)
		if f != nil {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
