// Command charhpc runs the platform characterization: every table and
// figure of the reconstructed evaluation (see DESIGN.md), or a selected
// subset.
//
// Usage:
//
//	charhpc -list
//	charhpc -scale quick            # all experiments, reduced sweeps
//	charhpc -scale full -exp F1,T3  # selected experiments, paper scale
//	charhpc -j 4 -out results/      # 4-way parallel, one file per ID
//
// Experiments run on a core.RunParallel worker pool (-j, default 1);
// each writes to its own buffer, so per-experiment output — including
// the files under -out — is identical to a serial run's, and stdout
// stays in registry order. A failed experiment no longer aborts the
// run: the rest still execute, errors are collected, and the exit
// status is non-zero at the end.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "sweep scale: quick or full")
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	jFlag := flag.Int("j", 1, "worker pool size: run up to j experiments concurrently")
	flag.Parse()

	if *listFlag {
		for _, e := range core.All() {
			fmt.Printf("%-4s %-7s %s\n", e.ID, e.Kind, e.Title)
		}
		return
	}

	var scale core.Scale
	switch *scaleFlag {
	case "quick":
		scale = core.Quick
	case "full":
		scale = core.Full
	default:
		fmt.Fprintf(os.Stderr, "charhpc: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(1)
		}
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	} else {
		seen := map[string]bool{}
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := core.Get(id); !ok {
				fmt.Fprintf(os.Stderr, "charhpc: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}

	// Run on the worker pool, but print in registry order as results
	// land: slot i's channel is filled whenever experiment i finishes,
	// and the main goroutine drains the slots in order. Output is
	// buffered per experiment (the header carries its wall time), so
	// each block appears when that experiment completes, not live.
	slots := make([]chan core.Result, len(ids))
	for i := range slots {
		slots[i] = make(chan core.Result, 1)
	}
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	go func() {
		// IDs were validated above, so the pool cannot fail early.
		if err := core.RunParallelFunc(ids, scale, *jFlag, func(r core.Result) {
			slots[index[r.Experiment.ID]] <- r
		}); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(2)
		}
	}()

	var failed []string
	for i := range slots {
		r := <-slots[i]
		e := r.Experiment
		fmt.Printf("\n### %s (%s): %s  [%s]\n", e.ID, e.Kind, e.Title,
			r.Elapsed.Round(time.Millisecond))
		os.Stdout.Write(r.Rec.Bytes())
		bad := false
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: experiment %s: %v\n", e.ID, r.Err)
			bad = true
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, r.Rec.Bytes(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
				bad = true
			}
		}
		if bad {
			failed = append(failed, e.ID)
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "charhpc: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}
