// Command charhpc runs the platform characterization: every table and
// figure of the reconstructed evaluation (see DESIGN.md), or a selected
// subset, on the default platform set or one named preset.
//
// Usage:
//
//	charhpc -list
//	charhpc -platforms                  # list platform presets
//	charhpc -scale quick                # all experiments, reduced sweeps
//	charhpc -scale full -exp F1,T3      # selected experiments, paper scale
//	charhpc -platform gige-8n T1        # T1 on the GigE preset
//	charhpc -platform bgp-64n           # everything bgp-64n can answer
//	charhpc -platform-file mine.json M3 # M3 on a user-defined machine
//	charhpc -j 4 -out results/          # 4-way parallel, one file per ID
//	charhpc -trace T4                   # print the run's timing tree
//	charhpc -trace-json traces.jsonl T4 # span trees as JSON lines ('-' = stdout)
//	charhpc -submit :8080 T1            # run on a charhpcd daemon, follow live
//	charhpc -submit :8079 -retries 3 T1 # via charhpc-router; ride out a failover
//
// With -submit the selection is not executed locally: each experiment
// is submitted to the daemon's async run API (POST /runs), its
// progress events stream back as a live one-line status (-follow,
// default on; phases and sections as the run produces them), and the
// finished job hands off to the daemon's cached result, printed like a
// local run's output.
//
// Experiment IDs can be given as positional arguments or via -exp;
// "all" (the default) selects the whole registry. With -platform the
// experiments run on that preset instead of their canonical platform
// set; an unknown or incompatible preset for an explicitly selected
// experiment is an error, while an "all" selection narrows to the
// experiments the preset can answer.
//
// Experiments run on a core.RunParallel worker pool (-j, default 1);
// each writes to its own buffer, so per-experiment output — including
// the files under -out — is identical to a serial run's, and stdout
// stays in registry order. A failed experiment no longer aborts the
// run: the rest still execute, errors are collected, and the exit
// status is non-zero at the end.
//
// With -cache-dir, runs share the daemon's disk-persistent results
// cache: an experiment already in the store is replayed instead of
// re-executed (its header says "cached" and shows the original run's
// wall time), and fresh runs are written through for later CLI or
// charhpcd use. Cache keys carry the platform, so default and
// preset-qualified results never collide. The store self-invalidates
// when the binary, the experiment registry, or the preset registry
// changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/serve"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "sweep scale: quick or full")
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	platformFlag := flag.String("platform", "", "run on this platform preset instead of each experiment's default set (see -platforms)")
	platformFile := flag.String("platform-file", "", "run on the custom platform described by this JSON spec (see the README's bring-your-own-machine section)")
	listFlag := flag.Bool("list", false, "list experiments (with their valid platforms) and exit")
	platformsFlag := flag.Bool("platforms", false, "list platform presets and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	jFlag := flag.Int("j", 1, "worker pool size: run up to j experiments concurrently")
	cacheDir := flag.String("cache-dir", "", "share the disk-persistent results cache (see charhpcd)")
	migrateLegacy := flag.Bool("migrate-legacy", false,
		"migrate pre-versioning cache entries instead of purging them; set ONLY when the binary upgrade changes no experiment, platform, or scale definition")
	traceFlag := flag.Bool("trace", false, "print each run's timing tree (per-platform and per-phase spans) after its output")
	traceJSON := flag.String("trace-json", "", "append each run's span tree as one JSON line to this file ('-' = stdout)")
	submitFlag := flag.String("submit", "", "submit to a charhpcd daemon at this address (POST /runs) instead of running locally")
	followFlag := flag.Bool("follow", true, "with -submit: stream each job's events as live progress, then print its result")
	retriesFlag := flag.Int("retries", 0,
		"with -submit: retry each daemon call up to this many extra times, with exponential backoff and jitter, on dial errors and 502/503 (a shard router failing over)")
	flag.Parse()

	if *listFlag {
		for _, e := range core.All() {
			platforms := strings.Join(e.Platforms(), ",")
			if platforms == "" {
				platforms = "-"
			}
			fmt.Printf("%-4s %-7s %-55s [%s]\n", e.ID, e.Kind, e.Title, platforms)
		}
		return
	}
	if *platformsFlag {
		for _, name := range cluster.Names() {
			m, _ := cluster.Lookup(name)
			fmt.Printf("%-8s %-28s caps=%s\n", name, m.Topo.String(), m.Caps())
		}
		return
	}

	req := core.Request{Platform: *platformFlag}
	switch *scaleFlag {
	case "quick":
		req.Scale = core.Quick
	case "full":
		req.Scale = core.Full
	default:
		fmt.Fprintf(os.Stderr, "charhpc: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}
	// -platform-file registers a user-defined machine as data and runs
	// on it under its content-hash name — the CLI half of the service's
	// POST /platforms. The canonical bytes are kept so -submit can
	// register the same machine (same hash, same name) on the daemon.
	var customSpec []byte
	if *platformFile != "" {
		if req.Platform != "" {
			fmt.Fprintln(os.Stderr, "charhpc: -platform and -platform-file are mutually exclusive")
			os.Exit(2)
		}
		b, err := os.ReadFile(*platformFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(2)
		}
		spec, err := cluster.ParseSpec(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %s: %v\n", *platformFile, err)
			os.Exit(2)
		}
		name, _ := cluster.RegisterCustom(spec)
		fmt.Fprintf(os.Stderr, "charhpc: %s registered as %s\n", *platformFile, name)
		req.Platform = name
		customSpec = spec.Canonical()
	}
	if req.Platform != "" {
		if _, ok := cluster.Lookup(req.Platform); !ok {
			fmt.Fprintf(os.Stderr, "charhpc: unknown platform %q (use -platforms)\n", req.Platform)
			os.Exit(2)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(1)
		}
	}

	// Experiment selection: positional IDs win over -exp; "all" means
	// the whole registry, narrowed to compatible experiments when a
	// platform was named.
	sel := *expFlag
	if args := flag.Args(); len(args) > 0 {
		sel = strings.Join(args, ",")
	}
	var ids []string
	if sel == "all" {
		for _, e := range core.All() {
			if req.Platform != "" && e.CheckPlatform(req.Platform) != nil {
				continue
			}
			ids = append(ids, e.ID)
		}
	} else {
		seen := map[string]bool{}
		for _, id := range strings.Split(sel, ",") {
			id = strings.TrimSpace(id)
			e, ok := core.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "charhpc: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			if err := e.CheckPlatform(req.Platform); err != nil {
				fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
				os.Exit(2)
			}
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}

	// Client mode: hand the selection to a daemon's async run API and
	// render its progress; nothing executes in this process. A custom
	// platform is registered on the daemon first, so the submitted
	// custom-<hash> name resolves there too.
	if *submitFlag != "" {
		os.Exit(runSubmit(*submitFlag, ids, req, *followFlag, customSpec, *retriesFlag))
	}

	var store *diskcache.Store
	if *cacheDir != "" {
		var err error
		store, err = diskcache.Open(*cacheDir,
			diskcache.Fingerprints{
				Global:        core.Fingerprint(),
				PerID:         core.Fingerprints(),
				MigrateLegacy: *migrateLegacy,
			}, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(1)
		}
	}

	// -trace-json sink: one JSON line per executed run (cached replays
	// carry no span), appended as results print in registry order.
	var traceSink *os.File
	if *traceJSON != "" {
		if *traceJSON == "-" {
			traceSink = os.Stdout
		} else {
			f, err := os.OpenFile(*traceJSON, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			traceSink = f
		}
	}

	// Run on the worker pool, but print in registry order as results
	// land: slot i's channel is filled whenever experiment i finishes,
	// and the main goroutine drains the slots in order. Output is
	// buffered per experiment (the header carries its wall time), so
	// each block appears when that experiment completes, not live.
	slots := make([]chan core.Result, len(ids))
	for i := range slots {
		slots[i] = make(chan core.Result, 1)
	}
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}

	// With a store, cached experiments replay without running — their
	// slot is filled up front from disk — and only the misses go to
	// the pool, which writes fresh results through for next time.
	cached := make([]bool, len(ids))
	toRun := ids
	if store != nil {
		toRun = nil
		for i, id := range ids {
			e, _ := core.Get(id)
			if r, ok := serve.LoadResult(store, e, req); ok {
				cached[i] = true
				slots[i] <- r
				continue
			}
			toRun = append(toRun, id)
		}
	}
	go func() {
		if len(toRun) == 0 {
			return
		}
		// IDs and platform were validated above, so the pool cannot
		// fail early.
		if err := core.RunParallelFunc(toRun, req, *jFlag, func(r core.Result) {
			if store != nil && r.Err == nil {
				if err := serve.StoreResult(store, r); err != nil {
					fmt.Fprintf(os.Stderr, "charhpc: cache write %s: %v\n", r.Experiment.ID, err)
				}
			}
			slots[index[r.Experiment.ID]] <- r
		}); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(2)
		}
	}()

	var failed []string
	for i := range slots {
		r := <-slots[i]
		e := r.Experiment
		mark := ""
		if cached[i] {
			mark = ", cached"
		}
		if req.Platform != "" {
			mark += ", platform=" + req.Platform
		}
		fmt.Printf("\n### %s (%s): %s  [%s%s]\n", e.ID, e.Kind, e.Title,
			r.Elapsed.Round(time.Millisecond), mark)
		os.Stdout.Write(r.Rec.Bytes())
		if *traceFlag {
			// Cached replays carry no span: the tree records this run's
			// timing, and a replay did not run.
			if sp := r.Rec.Span(); sp != nil {
				fmt.Printf("--- trace %s ---\n", e.ID)
				sp.WriteTree(os.Stdout)
			}
		}
		if traceSink != nil {
			if sp := r.Rec.Span(); sp != nil {
				if b, err := json.Marshal(sp); err == nil {
					fmt.Fprintf(traceSink, "%s\n", b)
				} else {
					fmt.Fprintf(os.Stderr, "charhpc: trace-json %s: %v\n", e.ID, err)
				}
			}
		}
		bad := false
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: experiment %s: %v\n", e.ID, r.Err)
			bad = true
		}
		if *outDir != "" {
			name := e.ID
			if req.Platform != "" {
				name += "@" + req.Platform
			}
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, r.Rec.Bytes(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
				bad = true
			}
		}
		if bad {
			failed = append(failed, e.ID)
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "charhpc: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}
