// Command charhpc runs the platform characterization: every table and
// figure of the reconstructed evaluation (see DESIGN.md), or a selected
// subset.
//
// Usage:
//
//	charhpc -list
//	charhpc -scale quick            # all experiments, reduced sweeps
//	charhpc -scale full -exp F1,T3  # selected experiments, paper scale
//	charhpc -j 4 -out results/      # 4-way parallel, one file per ID
//
// Experiments run on a core.RunParallel worker pool (-j, default 1);
// each writes to its own buffer, so per-experiment output — including
// the files under -out — is identical to a serial run's, and stdout
// stays in registry order. A failed experiment no longer aborts the
// run: the rest still execute, errors are collected, and the exit
// status is non-zero at the end.
//
// With -cache-dir, runs share the daemon's disk-persistent results
// cache: an experiment already in the store is replayed instead of
// re-executed (its header says "cached" and shows the original run's
// wall time), and fresh runs are written through for later CLI or
// charhpcd use. The store self-invalidates when the binary or the
// registry changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/serve"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "sweep scale: quick or full")
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	jFlag := flag.Int("j", 1, "worker pool size: run up to j experiments concurrently")
	cacheDir := flag.String("cache-dir", "", "share the disk-persistent results cache (see charhpcd)")
	flag.Parse()

	if *listFlag {
		for _, e := range core.All() {
			fmt.Printf("%-4s %-7s %s\n", e.ID, e.Kind, e.Title)
		}
		return
	}

	var scale core.Scale
	switch *scaleFlag {
	case "quick":
		scale = core.Quick
	case "full":
		scale = core.Full
	default:
		fmt.Fprintf(os.Stderr, "charhpc: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(1)
		}
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	} else {
		seen := map[string]bool{}
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := core.Get(id); !ok {
				fmt.Fprintf(os.Stderr, "charhpc: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}

	var store *diskcache.Store
	if *cacheDir != "" {
		var err error
		store, err = diskcache.Open(*cacheDir, core.Fingerprint(), 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(1)
		}
	}

	// Run on the worker pool, but print in registry order as results
	// land: slot i's channel is filled whenever experiment i finishes,
	// and the main goroutine drains the slots in order. Output is
	// buffered per experiment (the header carries its wall time), so
	// each block appears when that experiment completes, not live.
	slots := make([]chan core.Result, len(ids))
	for i := range slots {
		slots[i] = make(chan core.Result, 1)
	}
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}

	// With a store, cached experiments replay without running — their
	// slot is filled up front from disk — and only the misses go to
	// the pool, which writes fresh results through for next time.
	cached := make([]bool, len(ids))
	toRun := ids
	if store != nil {
		toRun = nil
		for i, id := range ids {
			e, _ := core.Get(id)
			if r, ok := serve.LoadResult(store, e, scale); ok {
				cached[i] = true
				slots[i] <- r
				continue
			}
			toRun = append(toRun, id)
		}
	}
	go func() {
		if len(toRun) == 0 {
			return
		}
		// IDs were validated above, so the pool cannot fail early.
		if err := core.RunParallelFunc(toRun, scale, *jFlag, func(r core.Result) {
			if store != nil && r.Err == nil {
				if err := serve.StoreResult(store, r); err != nil {
					fmt.Fprintf(os.Stderr, "charhpc: cache write %s: %v\n", r.Experiment.ID, err)
				}
			}
			slots[index[r.Experiment.ID]] <- r
		}); err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
			os.Exit(2)
		}
	}()

	var failed []string
	for i := range slots {
		r := <-slots[i]
		e := r.Experiment
		mark := ""
		if cached[i] {
			mark = ", cached"
		}
		fmt.Printf("\n### %s (%s): %s  [%s%s]\n", e.ID, e.Kind, e.Title,
			r.Elapsed.Round(time.Millisecond), mark)
		os.Stdout.Write(r.Rec.Bytes())
		bad := false
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "charhpc: experiment %s: %v\n", e.ID, r.Err)
			bad = true
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, r.Rec.Bytes(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "charhpc: %v\n", err)
				bad = true
			}
		}
		if bad {
			failed = append(failed, e.ID)
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "charhpc: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}
