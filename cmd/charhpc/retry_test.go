package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func TestTransientStatus(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusBadGateway:          true,
		http.StatusServiceUnavailable:  true,
		http.StatusOK:                  false,
		http.StatusNotFound:            false,
		http.StatusInternalServerError: false, // run_failed will fail again
		http.StatusForbidden:           false,
	} {
		if got := transientStatus(code); got != want {
			t.Errorf("transientStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestTransientErr(t *testing.T) {
	dial := &url.Error{Op: "Post", Err: &net.OpError{Op: "dial", Err: fmt.Errorf("connection refused")}}
	if !transientErr(dial) {
		t.Error("dial error not classified transient")
	}
	read := &url.Error{Op: "Get", Err: &net.OpError{Op: "read", Err: fmt.Errorf("connection reset")}}
	if transientErr(read) {
		t.Error("post-dial transport error classified transient — retrying it can duplicate a submit")
	}
	if transientErr(fmt.Errorf("plain")) {
		t.Error("plain error classified transient")
	}
}

// fakeClock records sleeps without sleeping; jitter pinned to 1.0
// makes the backoff sequence deterministic.
type fakeClock struct{ slept []time.Duration }

func (c *fakeClock) retrier(max int) *retrier {
	return &retrier{
		max:    max,
		sleep:  func(d time.Duration) { c.slept = append(c.slept, d) },
		jitter: func() float64 { return 1.0 },
	}
}

// TestRetryOutwaitsTransientStatuses pins the happy retry path: 503s
// are drained and retried with exponentially growing backoff until a
// real answer arrives, which is returned with its body readable.
func TestRetryOutwaitsTransientStatuses(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "no live shard yet")
			return
		}
		io.WriteString(w, "payload")
	}))
	defer ts.Close()

	clock := &fakeClock{}
	resp, err := clock.retrier(5).do(func() (*http.Response, error) { return http.Get(ts.URL) })
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "payload" {
		t.Fatalf("final outcome %d %q, want 200 payload", resp.StatusCode, body)
	}
	if attempts != 4 {
		t.Errorf("server saw %d attempts, want 4", attempts)
	}
	want := []time.Duration{retryBase, 2 * retryBase, 4 * retryBase}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clock.slept, want)
	}
	for i, d := range want {
		if clock.slept[i] != d {
			t.Errorf("sleep %d = %v, want %v (exponential backoff)", i, clock.slept[i], d)
		}
	}
}

// TestRetryBackoffCap pins the cap: the delay doubles only up to
// retryCap.
func TestRetryBackoffCap(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer ts.Close()
	clock := &fakeClock{}
	resp, err := clock.retrier(8).do(func() (*http.Response, error) { return http.Get(ts.URL) })
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("exhausted retries must return the last outcome, got %d", resp.StatusCode)
	}
	if len(clock.slept) != 8 {
		t.Fatalf("slept %d times, want 8", len(clock.slept))
	}
	for _, d := range clock.slept {
		if d > retryCap {
			t.Errorf("backoff %v exceeds cap %v", d, retryCap)
		}
	}
	if clock.slept[7] != retryCap {
		t.Errorf("late backoff = %v, want the cap %v", clock.slept[7], retryCap)
	}
}

// TestRetryDialError pins that a refused connection is retried — and
// that the default -retries 0 keeps fail-fast semantics.
func TestRetryDialError(t *testing.T) {
	// A listener that is closed immediately: dialing its port refuses.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	clock := &fakeClock{}
	calls := 0
	_, err = clock.retrier(2).do(func() (*http.Response, error) {
		calls++
		return http.Get("http://" + addr)
	})
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3 (1 + 2 retries)", calls)
	}

	calls = 0
	_, err = clock.retrier(0).do(func() (*http.Response, error) {
		calls++
		return http.Get("http://" + addr)
	})
	if err == nil || calls != 1 {
		t.Errorf("-retries 0: op ran %d times (err %v), want exactly 1 fail-fast attempt", calls, err)
	}
}

// TestRetryNonTransientIsFinal pins that a 4xx never retries: the
// request itself is wrong, and backoff would just delay the error.
func TestRetryNonTransientIsFinal(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, "unknown experiment")
	}))
	defer ts.Close()
	clock := &fakeClock{}
	resp, err := clock.retrier(5).do(func() (*http.Response, error) { return http.Get(ts.URL) })
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if attempts != 1 || len(clock.slept) != 0 {
		t.Errorf("404 retried: %d attempts, %d sleeps", attempts, len(clock.slept))
	}
	if !strings.Contains(string(body), "unknown experiment") {
		t.Errorf("final body %q lost the error detail", body)
	}
}
