package repro_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// mdLink matches one inline Markdown link or image — [text](target),
// with or without a quoted title after the target. The target is the
// first whitespace-free run; anything after it (a title) is consumed
// so titled links cannot silently escape the check. Reference-style
// link definitions are not used in this repo's docs.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(\s*([^)\s]+)[^)]*\)`)

// docFiles returns the Markdown set the link check covers: the
// top-level docs plus every per-package README.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ROADMAP.md"}
	more, err := filepath.Glob(filepath.Join("internal", "*", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, more...)
}

// TestDocLinks is the docs CI gate: every relative link in the
// repository's Markdown must resolve to a file or directory that
// exists, so the architecture map in README.md cannot rot silently as
// packages move. External (scheme-qualified) links are out of scope —
// CI must not depend on third-party uptime.
func TestDocLinks(t *testing.T) {
	checked := 0
	for _, f := range docFiles(t) {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", f, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("link check matched no links — is the doc set empty?")
	}
	t.Logf("checked %d relative links", checked)
}

// famRange matches a family range like "T1–T4" or "M1–M6" (en dash)
// in the README's experiment index.
var famRange = regexp.MustCompile(`([A-Z])(\d+)–[A-Z]?(\d+)`)

// TestReadmeCoversRegistry keeps the top-level README honest about the
// experiment families and examples it advertises: every experiment in
// the live core registry must be covered, either named literally or
// inside a family range, so registering a new experiment (an M7)
// fails this test until the README's index grows with it.
func TestReadmeCoversRegistry(t *testing.T) {
	body, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)

	ranges := map[string][][2]int{}
	for _, m := range famRange.FindAllStringSubmatch(s, -1) {
		lo, _ := strconv.Atoi(m[2])
		hi, _ := strconv.Atoi(m[3])
		ranges[m[1]] = append(ranges[m[1]], [2]int{lo, hi})
	}
	for _, e := range core.All() {
		fam, num := splitExpID(e.ID)
		covered := strings.Contains(s, e.ID)
		for _, r := range ranges[fam] {
			if num >= r[0] && num <= r[1] {
				covered = true
			}
		}
		if !covered {
			t.Errorf("README.md experiment index does not cover %s", e.ID)
		}
	}

	for _, want := range []string{
		"charhpc", "charhpcd", "membench",
		"examples/numa-placement", "examples/mem-hierarchy",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("README.md does not mention %q", want)
		}
	}
	dirs, err := filepath.Glob(filepath.Join("examples", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !strings.Contains(s, filepath.ToSlash(d)) {
			t.Errorf("README.md does not link example %s", d)
		}
	}
}

// splitExpID splits an experiment ID like "F13" into family letter(s)
// and number, mirroring core's internal ID collation.
func splitExpID(id string) (string, int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	n, _ := strconv.Atoi(id[i:])
	return id[:i], n
}
