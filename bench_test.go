// Package repro_test holds the benchmark harness: one testing.B target
// per table and figure of the reconstructed evaluation (see DESIGN.md,
// per-experiment index), plus micro-benchmarks of the substrates. Each
// experiment bench regenerates its table/figure at Quick scale per
// iteration; run with
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hpcc"
	"repro/internal/linalg"
	"repro/internal/mem"
	"repro/internal/mp"
	"repro/internal/stream"
)

// benchExperiment runs one registered experiment per iteration on its
// default platform set.
func benchExperiment(b *testing.B, id string) {
	benchExperimentOn(b, id, "")
}

// benchExperimentOn runs one experiment per iteration on a named
// platform preset ("" = the default set) — the platform request axis
// the registry refactor added.
func benchExperimentOn(b *testing.B, id, platform string) {
	b.Helper()
	e, ok := core.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	req := core.Request{Scale: core.Quick, Platform: platform}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, req); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

func BenchmarkT1PlatformTable(b *testing.B)   { benchExperiment(b, "T1") }
func BenchmarkT2StreamTable(b *testing.B)     { benchExperiment(b, "T2") }
func BenchmarkT3HPCCTable(b *testing.B)       { benchExperiment(b, "T3") }
func BenchmarkT4PlatformCompare(b *testing.B) { benchExperiment(b, "T4") }

func BenchmarkF1P2PLatency(b *testing.B)       { benchExperiment(b, "F1") }
func BenchmarkF2P2PBandwidth(b *testing.B)     { benchExperiment(b, "F2") }
func BenchmarkF3BiBandwidth(b *testing.B)      { benchExperiment(b, "F3") }
func BenchmarkF4MultiPair(b *testing.B)        { benchExperiment(b, "F4") }
func BenchmarkF5Collectives(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkF6CollAlgos(b *testing.B)        { benchExperiment(b, "F6") }
func BenchmarkF7StreamScaling(b *testing.B)    { benchExperiment(b, "F7") }
func BenchmarkF8HPL(b *testing.B)              { benchExperiment(b, "F8") }
func BenchmarkF9GUPS(b *testing.B)             { benchExperiment(b, "F9") }
func BenchmarkF10PTRANS(b *testing.B)          { benchExperiment(b, "F10") }
func BenchmarkF11FFT(b *testing.B)             { benchExperiment(b, "F11") }
func BenchmarkF12EagerRendezvous(b *testing.B) { benchExperiment(b, "F12") }
func BenchmarkF13LogGPFit(b *testing.B)        { benchExperiment(b, "F13") }
func BenchmarkF14Placement(b *testing.B)       { benchExperiment(b, "F14") }
func BenchmarkF15AppKernels(b *testing.B)      { benchExperiment(b, "F15") }
func BenchmarkF16HPLBlockSize(b *testing.B)    { benchExperiment(b, "F16") }

func BenchmarkM1LatencyLadder(b *testing.B)  { benchExperiment(b, "M1") }
func BenchmarkM2TLBStress(b *testing.B)      { benchExperiment(b, "M2") }
func BenchmarkM3PageSizeTable(b *testing.B)  { benchExperiment(b, "M3") }
func BenchmarkM4HierarchyFit(b *testing.B)   { benchExperiment(b, "M4") }
func BenchmarkM5NUMAPlacement(b *testing.B)  { benchExperiment(b, "M5") }
func BenchmarkM6PlacementCurve(b *testing.B) { benchExperiment(b, "M6") }

// Platform-qualified targets: the same experiments restricted to one
// preset via the request axis, so the per-platform cost is tracked in
// the bench trajectory alongside the default-set cost.
func BenchmarkT1OnGigE8n(b *testing.B) { benchExperimentOn(b, "T1", "gige-8n") }
func BenchmarkM3OnBGP64n(b *testing.B) { benchExperimentOn(b, "M3", "bgp-64n") }
func BenchmarkM5OnFat1n(b *testing.B)  { benchExperimentOn(b, "M5", "fat-1n") }

// --- substrate micro-benchmarks ---

// BenchmarkP2PPingPongInProc measures the runtime's real (wall-clock)
// small-message half round trip on the in-process fabric.
func BenchmarkP2PPingPongInProc(b *testing.B) {
	for _, size := range []int{8, 4096, 65536} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			err := mp.Run(2, mp.Config{Fabric: mp.InProc}, func(c *mp.Comm) error {
				buf := make([]byte, size)
				peer := 1 - c.Rank()
				for i := 0; i < b.N; i++ {
					if c.Rank() == 0 {
						if err := c.Send(peer, 1, buf); err != nil {
							return err
						}
						if _, err := c.Recv(peer, 1, buf); err != nil {
							return err
						}
					} else {
						if _, err := c.Recv(peer, 1, buf); err != nil {
							return err
						}
						if err := c.Send(peer, 1, buf); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllreduce measures the real cost of an 8-rank allreduce on
// the in-process fabric for each algorithm.
func BenchmarkAllreduce(b *testing.B) {
	algos := map[string]mp.AllreduceAlgo{
		"recdoubling":  mp.AllreduceRecursiveDoubling,
		"rabenseifner": mp.AllreduceRabenseifner,
		"ring":         mp.AllreduceRing,
	}
	for name, algo := range algos {
		b.Run(name, func(b *testing.B) {
			err := mp.Run(8, mp.Config{Fabric: mp.InProc, Allreduce: algo}, func(c *mp.Comm) error {
				in := make([]float64, 4096)
				out := make([]float64, 4096)
				for i := 0; i < b.N; i++ {
					if err := c.Allreduce(mp.OpSum, in, out); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkGemm measures the blocked DGEMM kernel.
func BenchmarkGemm(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := linalg.New(n, n)
			y := linalg.New(n, n)
			z := linalg.New(n, n)
			x.FillRandom(1)
			y.FillRandom(2)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := linalg.Gemm(1, x, y, 0, z, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLUBlockSize ablates the HPL panel width (the NB design
// choice called out in DESIGN.md).
func BenchmarkLUBlockSize(b *testing.B) {
	const n = 256
	for _, nb := range []int{8, 32, 64, 128} {
		b.Run(fmt.Sprintf("nb=%d", nb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := linalg.New(n, n)
				a.FillRandom(uint64(i))
				piv := make([]int, n)
				b.StartTimer()
				if err := linalg.Getrf(a, piv, nb, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamTriad measures the real host Triad bandwidth.
func BenchmarkStreamTriad(b *testing.B) {
	const n = 1 << 20
	res, err := stream.Run(stream.Config{N: n, NTimes: 3, Threads: 0, FirstTouch: true})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.SetBytes(24 * n)
	cfg := stream.Config{N: n, NTimes: 1, Threads: 0, FirstTouch: true}
	for i := 0; i < b.N; i++ {
		if _, err := stream.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointerChase measures the raw dependent-load latency kernel
// at an in-cache and an out-of-cache working set.
func BenchmarkPointerChase(b *testing.B) {
	for _, size := range []int{32 << 10, 8 << 20} {
		b.Run(fmt.Sprintf("ws=%d", size), func(b *testing.B) {
			res, err := mem.Chase(mem.ChaseConfig{Bytes: size, Iters: b.N, Trials: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Seconds*1e9, "ns/access")
		})
	}
}

// BenchmarkHPLSim measures a full simulated HPL factorization.
func BenchmarkHPLSim(b *testing.B) {
	m := cluster.IBCluster()
	for i := 0; i < b.N; i++ {
		err := mp.Run(4, mp.Config{Fabric: mp.Sim, Model: m}, func(c *mp.Comm) error {
			_, err := hpcc.HPL(c, hpcc.HPLConfig{
				N: 128, NB: 32, Seed: uint64(i), ComputeRate: m.FlopsPerCore, SkipCheck: true,
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
