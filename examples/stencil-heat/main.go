// stencil-heat runs the distributed 2-D Jacobi heat-diffusion kernel
// (halo exchange each sweep, periodic residual reductions) on the
// simulated InfiniBand cluster, then renders the converged temperature
// field as ASCII art — a small end-to-end demo of domain decomposition
// on the message-passing runtime.
//
//	go run ./examples/stencil-heat
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mp"
	"repro/internal/stencil"
)

func main() {
	const nx, ny = 32, 64
	const p = 8
	model := cluster.IBCluster()
	model.Placement = cluster.Cyclic

	err := mp.Run(p, mp.Config{Fabric: mp.Sim, Model: model}, func(c *mp.Comm) error {
		block, res, err := stencil.Jacobi(c, stencil.Config{
			NX: nx, NY: ny, Iters: 200000,
			CheckEvery: 100, Tol: 1e-6,
			ComputeRate: 1e9,
		})
		if err != nil {
			return err
		}
		full, err := stencil.Gather(c, block, nx, ny)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		fmt.Printf("Jacobi %dx%d on %d ranks: %d iterations, modeled %.2f ms, %.1f Mcells/s, converged=%v\n\n",
			nx, ny, p, res.Iters, res.Seconds*1e3, res.CellsPerS/1e6, res.Converged)
		shades := []byte(" .:-=+*#%@")
		for i := 0; i < nx; i += 2 { // halve vertical resolution for aspect
			row := make([]byte, ny)
			for j := 0; j < ny; j++ {
				v := full[i*ny+j]
				s := int(v * float64(len(shades)-1))
				if s < 0 {
					s = 0
				}
				if s >= len(shades) {
					s = len(shades) - 1
				}
				row[j] = shades[s]
			}
			fmt.Println(string(row))
		}
		fmt.Println("\n(top edge held at 1.0; heat diffuses toward the cold edges)")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
