// NUMA placement walkthrough: the memory model's locality axis end to
// end, the companion of examples/mem-hierarchy (which walks the cache
// and page-size axes).
//
// Step 1 takes the fat four-socket preset and prints what its NUMA
// model claims: node count, local vs remote latency, and what each
// placement policy (first-touch, interleave, remote) costs at growing
// working sets, in both mapping modes — placement composes with the
// paged/big-memory axis. Step 2 closes the loop the way experiment M5
// does: two ladders generated from the model under opposite placements
// are handed to perfmodel.FitNUMASplit, which recovers the local/remote
// split. Step 3 runs the measured counterpart on the real host — pages
// faulted in by a pinned worker team under each policy, chased from one
// pinned worker (mem.NUMAChase) — which is what cmd/membench -numa does
// at full scale. On a single-socket (UMA) host the three measured
// curves coincide; that is the degenerate case the model reproduces
// bit-for-bit.
//
//	go run ./examples/numa-placement
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/perfmodel"
	"repro/internal/report"
)

func main() {
	// --- Step 1: what the NUMA model claims --------------------------
	platform := cluster.FatNUMANode()
	m := platform.Mem
	fmt.Printf("platform %s: %d NUMA nodes, local %.0fns, remote %.0fns (ratio %.2f)\n\n",
		platform.Name, m.NUMA.Nodes,
		m.MemLatency*1e9, m.NUMA.RemoteLatency*1e9,
		m.NUMA.RemoteLatency/m.MemLatency)

	t := report.NewTable("Modeled latency by mapping mode and placement",
		"ws", "mode", "placement", "latency (ns)", "slowdown")
	for _, ws := range []int{256 << 10, 16 << 20, 1 << 30} {
		for _, mode := range []mem.Mode{mem.Paged, mem.BigMemory} {
			for _, p := range mem.Placements {
				t.AddRow(report.Bytes(ws), mode.String(), p.String(),
					m.Latency(ws, mode, p)*1e9,
					m.PlacementSlowdown(ws, mode, p))
			}
		}
	}
	check(t.Fprint(os.Stdout))
	fmt.Println()

	// --- Step 2: recover the split from the model's own ladders ------
	// Spelled out for the walkthrough; perfmodel.FitNUMASplitFromModel
	// packages exactly these steps, and is what M5 and membench use.
	big := m.WithMode(mem.BigMemory) // pure memory plateaus: no TLB term
	maxBytes := 8 * big.Levels[len(big.Levels)-1].Capacity
	local := big.WithPlacement(mem.FirstTouch).Ladder(4<<10, maxBytes, 4)
	remote := big.WithPlacement(mem.Remote).Ladder(4<<10, maxBytes, 4)
	split, err := perfmodel.FitNUMASplit(local, remote, len(big.Levels)+1)
	check(err)
	ft := report.NewTable("Split recovered from placement ladders",
		"", "true", "fitted")
	ft.AddRow("local (ns)", m.MemLatency*1e9, split.Local*1e9)
	ft.AddRow("remote (ns)", m.NUMA.RemoteLatency*1e9, split.Remote*1e9)
	ft.AddRow("ratio", m.NUMA.RemoteLatency/m.MemLatency, split.Ratio)
	check(ft.Fprint(os.Stdout))
	fmt.Printf("fit R2 = %.4f\n\n", split.R2)

	// --- Step 3: the measured probe on the real host -----------------
	// Small sweep: pages are placed by a pinned team under each policy,
	// then chased from worker 0. Expect a visible split only on a real
	// multi-socket NUMA machine.
	ht := report.NewTable("Host placement probe (measured)",
		"placement", "ws", "ns/access")
	for _, p := range mem.Placements {
		for _, ws := range []int{64 << 10, 4 << 20} {
			res, err := mem.NUMAChase(mem.NUMAChaseConfig{
				Bytes: ws, Iters: 1 << 16, Trials: 2, Policy: p,
			})
			check(err)
			ht.AddRow(p.String(), report.Bytes(res.Bytes), res.Seconds*1e9)
		}
	}
	check(ht.Fprint(os.Stdout))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
