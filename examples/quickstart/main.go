// Quickstart: the smallest complete program on the message-passing
// runtime — launch 4 ranks on the in-process fabric, exchange a
// point-to-point message, and run a collective.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/mp"
)

func main() {
	err := mp.Run(4, mp.Config{Fabric: mp.InProc}, func(c *mp.Comm) error {
		// Point-to-point: rank 0 sends a greeting to rank 1.
		const tag = 1
		if c.Rank() == 0 {
			if err := c.Send(1, tag, []byte("hello from rank 0")); err != nil {
				return err
			}
		}
		if c.Rank() == 1 {
			buf := make([]byte, 64)
			st, err := c.Recv(0, tag, buf)
			if err != nil {
				return err
			}
			fmt.Printf("rank 1 received %q (from %d, %d bytes)\n",
				buf[:st.Count], st.Source, st.Count)
		}

		// Collective: sum each rank's id across all ranks.
		sum, err := c.AllreduceScalar(mp.OpSum, float64(c.Rank()))
		if err != nil {
			return err
		}
		fmt.Printf("rank %d: allreduce sum of ranks = %.0f\n", c.Rank(), sum)
		return c.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
}
