// gups runs the HPCC RandomAccess benchmark end-to-end on the real
// in-process fabric with full verification: the update stream is
// re-applied (XOR is an involution), so a correct run restores the
// table exactly. This example exercises the real code path — LFSR
// stream, bucketed exchange, remote updates — not the simulator.
//
//	go run ./examples/gups
package main

import (
	"fmt"
	"log"

	"repro/internal/hpcc"
	"repro/internal/mp"
)

func main() {
	const ranks = 4
	const bits = 16 // 64 Ki words -> 256 Ki updates

	err := mp.Run(ranks, mp.Config{Fabric: mp.InProc}, func(c *mp.Comm) error {
		res, err := hpcc.RandomAccess(c, hpcc.GUPSConfig{
			TableBits: bits,
			Verify:    true,
			Chunk:     4096,
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("table        : 2^%d = %d words\n", bits, res.TableWords)
			fmt.Printf("updates      : %d\n", res.Updates)
			fmt.Printf("time         : %.4f s\n", res.Seconds)
			fmt.Printf("rate         : %.6f GUPS\n", res.GUPS)
			fmt.Printf("verify errors: %d\n", res.Errors)
			if res.Errors != 0 {
				return fmt.Errorf("verification failed")
			}
			fmt.Println("verification PASSED (second pass restored the table)")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
