// cg-solver runs a distributed conjugate-gradient solve (the NAS-CG
// communication pattern: row-partitioned sparse matvec with Allgatherv,
// dot products with Allreduce) on both modeled fabrics and reports how
// the fabric changes time-to-solution — the application-level payoff of
// the platform characterization.
//
//	go run ./examples/cg-solver
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/cluster"
	"repro/internal/mp"
	"repro/internal/sparse"
)

func main() {
	const n = 1024
	const nnzPerRow = 6
	const p = 8

	a, err := sparse.RandomSPD(n, nnzPerRow, 2024)
	if err != nil {
		log.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Cos(float64(i) / 7)
	}
	b := make([]float64, n)
	if err := a.MatVec(xTrue, b); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distributed CG: n=%d, %d nnz, p=%d ranks (one per node)\n\n", n, a.NNZ(), p)
	for _, mk := range []func() *cluster.Model{cluster.GigECluster, cluster.IBCluster} {
		model := mk()
		model.Placement = cluster.Cyclic
		var elapsed float64
		var iters int
		var maxErr float64
		err := mp.Run(p, mp.Config{Fabric: mp.Sim, Model: model}, func(c *mp.Comm) error {
			counts := make([]int, p)
			for i := range counts {
				counts[i] = n / p
			}
			lo := c.Rank() * (n / p)
			hi := lo + counts[c.Rank()]
			aLoc, err := a.RowSlice(lo, hi)
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			t0 := c.Time()
			xLoc, res, err := sparse.DistCG(c, aLoc, b[lo:hi], counts, 5*n, 1e-10)
			if err != nil {
				return err
			}
			dt := c.Time() - t0
			if !res.Converged {
				return fmt.Errorf("CG did not converge: %+v", res)
			}
			var worst float64
			for i := range xLoc {
				if e := math.Abs(xLoc[i] - xTrue[lo+i]); e > worst {
					worst = e
				}
			}
			werr, err := c.AllreduceScalar(mp.OpMax, worst)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				elapsed, iters, maxErr = dt, res.Iterations, werr
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s converged in %3d iterations, modeled time %8.3f ms, max err %.2e\n",
			model.Name, iters, elapsed*1e3, maxErr)
	}
	fmt.Println("\nCG iterations are allgather+allreduce bound: the GigE fabric's")
	fmt.Println("latency multiplies directly into time-to-solution.")
}
