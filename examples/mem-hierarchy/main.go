// Memory-hierarchy walkthrough: the internal/mem subsystem end to end.
//
// Step 1 takes a platform preset's analytic memory model and prints what
// it claims: cache levels, TLB reach in both mapping modes, and the
// modeled latency ladder. Step 2 hands that ladder to the perfmodel
// knee-point fit and prints recovered-vs-true levels — the loop that
// experiment M4 runs for every platform. Step 3 measures a small
// pointer-chase ladder on the real host and fits it the same way, which
// is what cmd/membench does at full scale.
//
// This walk-through covers the cache/TLB/page-size axes; its companion
// examples/numa-placement walks the model's NUMA placement axis the
// same way (modeled claims, split recovery, pinned host probe).
//
//	go run ./examples/mem-hierarchy
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/perfmodel"
	"repro/internal/report"
)

func main() {
	// --- Step 1: what the model claims -------------------------------
	platform := cluster.BGPRack()
	m := platform.Mem
	fmt.Printf("platform %s: %d cache levels, %s base pages, %s large pages\n",
		platform.Name, len(m.Levels), kib(m.PageBytes), kib(m.LargePageBytes))
	fmt.Printf("TLB: %d entries -> reach %s paged, %s big-memory\n\n",
		m.TLB.Entries,
		kib(m.WithMode(mem.Paged).TLBReach()),
		kib(m.WithMode(mem.BigMemory).TLBReach()))

	// The same working set costs very different latency in the two
	// modes once it outruns the paged TLB reach — the study's point.
	t := report.NewTable("Modeled latency by mapping mode",
		"working set", "paged (ns)", "bigmem (ns)", "paged/bigmem")
	for _, ws := range []int{64 << 10, 1 << 20, 64 << 20} {
		paged := m.WithMode(mem.Paged).LoadLatency(ws)
		big := m.WithMode(mem.BigMemory).LoadLatency(ws)
		t.AddRow(kib(ws), paged*1e9, big*1e9, paged/big)
	}
	check(t.Fprint(os.Stdout))

	// --- Step 2: recover the hierarchy from the model's own ladder ---
	big := m.WithMode(mem.BigMemory) // clean cache knees: TLB reach covers the sweep
	ladder := big.Ladder(4<<10, 64<<20, 4)
	fit, err := perfmodel.FitHierarchy(ladder, 3)
	check(err)
	fmt.Println()
	ft := report.NewTable("Knee-point fit vs configured truth",
		"level", "true capacity", "fitted capacity", "true ns", "fitted ns")
	for i, truth := range big.Levels {
		if i >= len(fit.Levels) {
			break
		}
		f := fit.Levels[i]
		ft.AddRow(truth.Name, kib(truth.Capacity), kib(f.Capacity),
			truth.Latency*1e9, f.Latency*1e9)
	}
	ft.AddRow("memory", "-", "-", big.MemLatency*1e9, fit.MemLatency*1e9)
	check(ft.Fprint(os.Stdout))
	fmt.Printf("fit R2 = %.4f\n\n", fit.R2)

	// --- Step 3: the same probe against the real host ----------------
	samples, err := mem.Ladder(mem.LadderConfig{
		MinBytes: 4 << 10, MaxBytes: 4 << 20,
		PointsPerOctave: 2, Iters: 1 << 16, Trials: 2,
	})
	check(err)
	host, err := perfmodel.FitHierarchy(samples, 3)
	check(err)
	ht := report.NewTable("Host hierarchy (measured pointer-chase fit)",
		"level", "capacity", "latency (ns)")
	for i, l := range host.Levels {
		ht.AddRow(fmt.Sprintf("L%d", i+1), kib(l.Capacity), l.Latency*1e9)
	}
	ht.AddRow("memory", "-", host.MemLatency*1e9)
	check(ht.Fprint(os.Stdout))
}

// kib renders a byte count compactly in binary units.
func kib(b int) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.4gGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.4gMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.4gKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
