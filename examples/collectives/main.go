// collectives demonstrates the collective algorithms and their
// trade-offs on a simulated 64-node InfiniBand cluster: it times
// broadcast under both algorithms at a small and a large message size,
// showing the binomial tree winning small messages and
// scatter-allgather winning large ones — the textbook crossover the F6
// experiment maps fully.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mp"
	"repro/internal/osu"
)

func main() {
	model := cluster.BigIBCluster()
	model.Placement = cluster.Cyclic // one rank per node
	const p = 32

	for _, size := range []int{64, 1 << 20} {
		fmt.Printf("broadcast of %d bytes across %d nodes:\n", size, p)
		for _, algo := range []struct {
			name string
			a    mp.BcastAlgo
		}{
			{"binomial tree     ", mp.BcastBinomial},
			{"scatter-allgather ", mp.BcastScatterAllgather},
		} {
			cfg := mp.Config{Fabric: mp.Sim, Model: model, Bcast: algo.a}
			var lat float64
			err := mp.Run(p, cfg, func(c *mp.Comm) error {
				buf := make([]byte, size)
				l, err := osu.CollectiveLatency(c, 3, 20, func() error {
					return c.Bcast(0, buf)
				})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					lat = l
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s %10.2f us\n", algo.name, lat*1e6)
		}
	}
	fmt.Println("\nsmall messages: the log2(p)-round tree wins;")
	fmt.Println("large messages: moving only 2x the data wins.")
}
