// platform-compare pits modeled fabrics against each other on
// latency- and bandwidth-sensitive workloads, one rank per node — a
// miniature of the T4 comparison table and the core question a
// platform characterization answers: which machine should this
// workload run on?
//
// The platforms come from internal/cluster's preset registry, so any
// multi-node preset can enter the comparison by name:
//
//	go run ./examples/platform-compare                 # gige-8n vs ib-8n
//	go run ./examples/platform-compare gige-8n bgp-64n # any presets
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/hpcc"
	"repro/internal/mp"
	"repro/internal/osu"
)

func main() {
	names := []string{"gige-8n", "ib-8n"}
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}
	models := make([]*cluster.Model, len(names))
	for i, name := range names {
		m, ok := cluster.Lookup(name)
		if !ok {
			log.Fatalf("unknown platform %q (presets: %v)", name, cluster.Names())
		}
		if !m.Has(cluster.CapMultiNode) {
			log.Fatalf("platform %q has no inter-node fabric to compare (multi-node presets: %v)",
				name, cluster.NamesWith(cluster.CapMultiNode))
		}
		m.Placement = cluster.Cyclic
		models[i] = m
	}

	const p = 8
	fmt.Printf("%-28s", "workload")
	for _, name := range names {
		fmt.Printf(" %14s", name)
	}
	fmt.Println()
	for _, metric := range []string{"8B latency (us)", "1MiB bandwidth (MB/s)", "RandomAccess (GUPS)"} {
		fmt.Printf("%-28s", metric)
		for _, m := range models {
			v, err := measure(m, p, metric)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %14.4f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nlatency-bound kernels (GUPS) track the fabric's small-message")
	fmt.Println("latency; bandwidth-bound transfers track its wire speed.")
}

func measure(m *cluster.Model, p int, metric string) (float64, error) {
	var out float64
	cfg := mp.Config{Fabric: mp.Sim, Model: m}
	err := mp.Run(p, cfg, func(c *mp.Comm) error {
		opts := osu.Options{Sizes: []int{8, 1 << 20}, Warmup: 5, Iters: 50, Window: 32,
			PairA: 0, PairB: p - 1}
		switch metric {
		case "8B latency (us)":
			s, err := osu.Latency(c, opts)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				out = s[0].Value * 1e6
			}
		case "1MiB bandwidth (MB/s)":
			s, err := osu.Bandwidth(c, opts)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				out = s[1].Value / 1e6
			}
		case "RandomAccess (GUPS)":
			r, err := hpcc.RandomAccess(c, hpcc.GUPSConfig{TableBits: 12, Chunk: 1024, ComputeRate: 2e8})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				out = r.GUPS
			}
		}
		return nil
	})
	return out, err
}
