// Results-service walk-through: start the HTTP results service
// in-process, then act as a client against it — list the registry,
// fetch one experiment in all three negotiated content types,
// revalidate with If-None-Match to get a 304 off the cache, scrape
// the Prometheus cache-tier counters and a run's timing tree off
// /metrics and /debug/traces, submit an async job and stream its
// progress events until the terminal ETag hands back to the cached
// synchronous result, and finally restart the service over a
// disk-persistent cache to show a warm start that serves without
// re-running a single experiment.
//
//	go run ./examples/results-service
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/serve"
)

func main() {
	// The service is just an http.Handler; production runs it via
	// cmd/charhpcd, the walk-through hosts it on a loopback listener.
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("results service up at %s\n", ts.URL)

	// Warm the cache for the experiment we are about to fetch, the
	// way charhpcd warms the whole registry at startup.
	n := srv.Warm(context.Background(), []string{"T1"}, nil, 2)
	fmt.Printf("warm-up ran %d experiment(s)\n\n", n)

	// 1. Liveness.
	body, _ := get(ts.URL+"/healthz", "")
	fmt.Printf("GET /healthz -> %s", body)

	// 2. The registry listing as JSON.
	body, _ = get(ts.URL+"/experiments", "application/json")
	var list []struct{ ID, Kind, Title string }
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		log.Fatalf("bad listing: %v", err)
	}
	fmt.Printf("\nGET /experiments (JSON) -> %d experiments, first three:\n", len(list))
	for _, e := range list[:3] {
		fmt.Printf("  %-4s %-6s %s\n", e.ID, e.Kind, e.Title)
	}

	// 3. One experiment, three representations of one cached run.
	fmt.Println("\nGET /experiments/T1 as text/plain:")
	body, _ = get(ts.URL+"/experiments/T1?scale=quick", "text/plain")
	fmt.Print(indent(firstLines(body, 5)))

	fmt.Println("\nGET /experiments/T1 as text/csv:")
	body, _ = get(ts.URL+"/experiments/T1?scale=quick", "text/csv")
	fmt.Print(indent(firstLines(body, 4)))

	fmt.Println("\nGET /experiments/T1 as application/json:")
	body, _ = get(ts.URL+"/experiments/T1?scale=quick", "application/json")
	var doc struct {
		ID             string  `json:"id"`
		Scale          string  `json:"scale"`
		ElapsedSeconds float64 `json:"elapsed_seconds"`
		Sections       []struct {
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"sections"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		log.Fatalf("bad result JSON: %v", err)
	}
	fmt.Printf("  id=%s scale=%s elapsed=%.3fs sections=%d\n",
		doc.ID, doc.Scale, doc.ElapsedSeconds, len(doc.Sections))
	fmt.Printf("  section %q: %d columns x %d rows\n",
		doc.Sections[0].Title, len(doc.Sections[0].Columns), len(doc.Sections[0].Rows))

	// 4. The platform axis: the same experiment on one named preset is
	// its own cached result with its own ETag; bad names are rejected
	// before anything runs.
	fmt.Println("\nGET /experiments/T1?platform=gige-8n (one preset only):")
	body, _ = get(ts.URL+"/experiments/T1?platform=gige-8n", "text/plain")
	fmt.Print(indent(firstLines(body, 5)))
	resp404, err := http.Get(ts.URL + "/experiments/T1?platform=cray-1")
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp404.Body)
	resp404.Body.Close()
	fmt.Printf("GET /experiments/T1?platform=cray-1 -> %s (unknown preset)\n", resp404.Status)

	// 5. Conditional revalidation: send the ETag back and get a 304
	// with no body — what a client-side cache does on refresh.
	req, _ := http.NewRequest("GET", ts.URL+"/experiments/T1?scale=quick", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	fmt.Printf("\nfirst GET: %s, ETag %s...\n", resp.Status, etag[:10])

	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("revalidating GET with If-None-Match: %s\n", resp.Status)

	// 6. Observability: the Prometheus scrape shows how each result so
	// far was produced (run vs memory hit), and /debug/traces returns
	// the timing tree of every recent run. T4 runs per-platform, so its
	// trace has one child span per preset.
	fmt.Println("\nGET /metrics (cache-tier counters):")
	body, _ = get(ts.URL+"/metrics", "")
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "charhpc_cache_requests_total") {
			fmt.Printf("  %s\n", line)
		}
	}

	get(ts.URL+"/experiments/T4", "text/plain")
	fmt.Println("\nGET /debug/traces (newest run's timing tree):")
	var spans []struct {
		Name     string  `json:"name"`
		Elapsed  float64 `json:"elapsed_seconds"`
		Children []struct {
			Name    string  `json:"name"`
			Elapsed float64 `json:"elapsed_seconds"`
		} `json:"children"`
	}
	body, _ = get(ts.URL+"/debug/traces?n=1", "")
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		log.Fatalf("bad traces JSON: %v", err)
	}
	for _, sp := range spans {
		fmt.Printf("  %s  %.1fms\n", sp.Name, sp.Elapsed*1e3)
		for _, c := range sp.Children {
			fmt.Printf("    %s  %.1fms\n", c.Name, c.Elapsed*1e3)
		}
	}

	// 7. Async jobs: submit a run instead of blocking on it, stream its
	// progress as Server-Sent Events (live phase/section events from
	// the run's own instrumentation), and hand off to the cached result
	// via the terminal event's ETag — byte-identical to a blocking GET.
	fmt.Println("\nPOST /runs?id=M1 (async submission):")
	presp, err := http.Post(ts.URL+"/runs?id=M1", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	var sub struct {
		Job       string `json:"job"`
		State     string `json:"state"`
		EventsURL string `json:"events_url"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&sub); err != nil {
		log.Fatalf("bad submit response: %v", err)
	}
	presp.Body.Close()
	fmt.Printf("  %s -> job %s (%s)\n", presp.Status, sub.Job, sub.State)

	fmt.Printf("GET %s (Server-Sent Events):\n", sub.EventsURL)
	eresp, err := http.Get(ts.URL + sub.EventsURL)
	if err != nil {
		log.Fatal(err)
	}
	var terminal struct {
		Type string            `json:"type"`
		Data map[string]string `json:"data"`
	}
	shown, total := 0, 0
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		total++
		var ev struct {
			Type string            `json:"type"`
			Data map[string]string `json:"data"`
		}
		json.Unmarshal([]byte(data), &ev)
		if shown < 4 {
			fmt.Printf("  event %-8s %v\n", ev.Type, ev.Data)
			shown++
		}
		if ev.Type == "done" || ev.Type == "failed" || ev.Type == "canceled" {
			terminal.Type, terminal.Data = ev.Type, ev.Data
			break
		}
	}
	eresp.Body.Close()
	fmt.Printf("  ... %d events total, terminal %q tier=%s\n",
		total, terminal.Type, terminal.Data["tier"])
	// The terminal event's ETag revalidates against the blocking GET:
	// the async job filled the very same cache entry.
	req, _ = http.NewRequest("GET", ts.URL+terminal.Data["url"], nil)
	req.Header.Set("If-None-Match", terminal.Data["etag"])
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, cresp.Body)
	cresp.Body.Close()
	fmt.Printf("  GET %s with the job's ETag -> %s\n", terminal.Data["url"], cresp.Status)

	// 8. Bring your own machine: register a user-defined platform as
	// data, run a mem-model experiment on it, and revalidate — a custom
	// is a first-class platform under its content-hash name, so
	// registration is idempotent and the result caches like a preset's.
	fmt.Println("\nPOST /platforms (a user-defined machine as JSON):")
	reg := postPlatform(ts.URL, customPlatformSpec)
	fmt.Printf("  201 -> name %s caps=%v\n", reg.Name, reg.Caps)
	again := postPlatform(ts.URL, customPlatformSpec)
	fmt.Printf("  re-POST -> existed=%v, same name: %v (content-hash identity)\n",
		again.Existed, again.Name == reg.Name)

	fmt.Printf("GET /experiments/M3?platform=%s:\n", reg.Name)
	req, _ = http.NewRequest("GET", ts.URL+"/experiments/M3?platform="+reg.Name, nil)
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	metag := mresp.Header.Get("ETag")
	fmt.Printf("  %s, ETag %s...\n", mresp.Status, metag[:10])
	req.Header.Set("If-None-Match", metag)
	mresp, err = http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	fmt.Printf("  revalidating GET on the custom platform: %s\n", mresp.Status)

	// 9. Disk persistence: the same service over a diskcache.Store
	// survives a restart — the second "process" warms entirely from
	// disk, runs nothing, and serves the same ETag.
	dir, err := os.MkdirTemp("", "charhpc-cache-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fps := diskcache.Fingerprints{Global: core.Fingerprint(), PerID: core.Fingerprints()}

	store, err := diskcache.Open(dir, fps, 0)
	if err != nil {
		log.Fatal(err)
	}
	first := serve.New(serve.Config{Store: store})
	first.Warm(context.Background(), []string{"T1"}, nil, 2)
	ts1 := httptest.NewServer(first)
	_, hdr := get(ts1.URL+"/experiments/T1?scale=quick", "application/json")
	etag1 := hdr.Get("ETag")
	ts1.Close()
	fmt.Printf("\nfirst daemon with -cache-dir: ran %d, persisted %d entries, ETag %s...\n",
		first.Stats().Runs, store.Len(), etag1[:10])

	// "Restart": a fresh store handle and server over the same dir.
	store2, err := diskcache.Open(dir, fps, 0)
	if err != nil {
		log.Fatal(err)
	}
	second := serve.New(serve.Config{Store: store2})
	second.Warm(context.Background(), []string{"T1"}, nil, 2)
	ts2 := httptest.NewServer(second)
	defer ts2.Close()
	_, hdr = get(ts2.URL+"/experiments/T1?scale=quick", "application/json")
	st := second.Stats()
	fmt.Printf("restarted daemon: runs=%d disk_loads=%d, ETag identical: %v\n",
		st.Runs, st.DiskLoads, hdr.Get("ETag") == etag1)
	body, _ = get(ts2.URL+"/healthz", "")
	fmt.Printf("GET /healthz -> %s", body)
}

// customPlatformSpec is the walk-through's user-defined machine: a
// 16-node cluster with a full memory hierarchy, so every platform-axis
// experiment family accepts it. examples/platforms/edr-16n.json is the
// same shape as a standalone file for charhpc -platform-file.
const customPlatformSpec = `{
  "label": "walk-through 16-node cluster",
  "topology": {"nodes": 16, "sockets_per_node": 2, "cores_per_socket": 8},
  "links": {
    "self":         {"latency_s": 8e-8, "overhead_s": 6e-8, "gap_s": 8e-9, "bandwidth_bytes_per_s": 16e9},
    "intra_socket": {"latency_s": 2.5e-7, "overhead_s": 1.5e-7, "gap_s": 1.5e-8, "bandwidth_bytes_per_s": 9e9},
    "intra_node":   {"latency_s": 5e-7, "overhead_s": 1.8e-7, "gap_s": 2.5e-8, "bandwidth_bytes_per_s": 6e9},
    "inter_node":   {"latency_s": 1.1e-6, "overhead_s": 4e-7, "gap_s": 9e-8, "bandwidth_bytes_per_s": 1.1e10}
  },
  "mem_bw_per_socket_bytes_per_s": 1.2e10,
  "mem_bw_per_core_bytes_per_s": 4e9,
  "flops_per_core": 3.2e10,
  "mem": {
    "name": "walkthrough-node",
    "levels": [
      {"name": "L1", "capacity_bytes": 32768, "latency_s": 1.0e-9},
      {"name": "L2", "capacity_bytes": 1048576, "latency_s": 3.5e-9},
      {"name": "L3", "capacity_bytes": 25165824, "latency_s": 1.2e-8}
    ],
    "mem_latency_s": 8.5e-8,
    "tlb": {"entries": 1536, "miss_cost_s": 1.8e-8},
    "page_bytes": 4096,
    "large_page_bytes": 2097152,
    "page_fault_cost_s": 1.2e-6,
    "numa": {"nodes": 2, "remote_latency_s": 1.4e-7, "remote_tlb_cost_s": 2.5e-8}
  }
}`

// registerResponse is the subset of the POST /platforms body the
// walk-through shows.
type registerResponse struct {
	Name    string   `json:"name"`
	Caps    []string `json:"caps"`
	Existed bool     `json:"existed"`
}

// postPlatform registers one spec, accepting both 201 (first sighting)
// and 200 (idempotent re-POST).
func postPlatform(base, spec string) registerResponse {
	resp, err := http.Post(base+"/platforms", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST /platforms: %s: %s", resp.Status, body)
	}
	var reg registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		log.Fatalf("bad register response: %v", err)
	}
	return reg
}

// get fetches a URL with an optional Accept header and returns the
// body, failing the walk-through on any non-2xx status.
func get(url, accept string) (string, http.Header) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		log.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body), resp.Header
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n") + "\n"
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}
