// stream-scaling reproduces the STREAM thread-scaling experiment (F7)
// standalone: it measures Triad bandwidth at increasing thread counts on
// the host, prints the curve, and fits Amdahl's law to the speedups —
// showing where the memory system, not the core count, becomes the
// limit.
//
//	go run ./examples/stream-scaling
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/stream"
)

func main() {
	maxT := runtime.GOMAXPROCS(0)
	var threads []int
	for t := 1; t <= maxT; t *= 2 {
		threads = append(threads, t)
	}

	table := report.NewTable("STREAM Triad scaling", "threads", "MB/s", "speedup")
	var procs, speedups []float64
	var base float64
	for _, t := range threads {
		res, err := stream.Run(stream.Config{
			N: 1 << 21, NTimes: 5, Threads: t, FirstTouch: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		triad := res[3].MBps()
		if t == 1 {
			base = triad
		}
		sp := triad / base
		table.AddRow(t, triad, sp)
		procs = append(procs, float64(t))
		speedups = append(speedups, sp)
	}
	if err := table.Fprint(log.Writer()); err != nil {
		log.Fatal(err)
	}

	if len(procs) >= 2 {
		s, err := stats.AmdahlFit(procs, speedups)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Amdahl serial fraction of the Triad scaling curve: %.3f\n", s)
		fmt.Println("(a large value means bandwidth saturation, not serial code)")
	}
}
