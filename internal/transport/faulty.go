package transport

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error produced by a FaultyFabric when its failure
// schedule triggers.
var ErrInjected = errors.New("transport: injected fault")

// FaultyFabric wraps another fabric and injects deterministic send
// failures: the endpoint of FailRank starts failing every Send after it
// has issued FailAfter packets. The failure-injection tests use it to
// verify that the runtime surfaces transport errors as job failures
// instead of hangs or corruption.
type FaultyFabric struct {
	Inner interface {
		Endpoint(int) (Endpoint, error)
		Close() error
	}
	FailRank  int
	FailAfter int64
}

// Endpoint returns rank's endpoint, wrapped with the failure schedule
// if rank == FailRank.
func (f *FaultyFabric) Endpoint(rank int) (Endpoint, error) {
	ep, err := f.Inner.Endpoint(rank)
	if err != nil {
		return nil, err
	}
	if rank != f.FailRank {
		return ep, nil
	}
	return &faultyEP{Endpoint: ep, budget: f.FailAfter}, nil
}

// Close closes the wrapped fabric.
func (f *FaultyFabric) Close() error { return f.Inner.Close() }

type faultyEP struct {
	Endpoint
	budget int64
}

func (e *faultyEP) Send(dst int, pkt Packet) error {
	if atomic.AddInt64(&e.budget, -1) < 0 {
		return ErrInjected
	}
	return e.Endpoint.Send(dst, pkt)
}
