package transport

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
)

// SimFabric is the virtual-time fabric. Packets move through in-process
// mailboxes exactly as on InProcFabric, but every packet is stamped with
// a modeled arrival time derived from the platform's LogGP parameters,
// and each endpoint owns a virtual clock that the mp layer advances as
// messages complete. Benchmarks built on this fabric report virtual
// seconds, reproducing the latency/bandwidth structure of the modeled
// machine without any sleeping.
//
// Timing rules, for a packet of s payload bytes from rank a to rank b
// over the link class with parameters (L, o, g, G):
//
//	inject = max(clock_a + o, nicFree_a)    (NIC shared per node, inter-node only)
//	arrive = inject + s*G + L
//	nicFree_a = inject + max(g, s*G)
//	clock_a += o + s*G                       (sender busy for overhead+copy)
//	clock_b = max(clock_b, arrive) + o       (applied by mp on completion)
//
// The receiver-side o is carried in the packet (RecvO) because the
// receiving endpoint does not know the path class.
type SimFabric struct {
	model  *cluster.Model
	n      int
	boxes  []*mailbox
	clocks []simClock
	nics   []nic // one per node: egress serialization point
	paths  [][]cluster.LogGP
}

type simClock struct {
	mu sync.Mutex
	t  float64
}

type nic struct {
	mu   sync.Mutex
	free float64
}

// NewSim creates a virtual-time fabric for n ranks on the given platform
// model. n must not exceed the model's core count.
func NewSim(n int, model *cluster.Model) (*SimFabric, error) {
	if model == nil {
		return nil, fmt.Errorf("transport: Sim fabric requires a cluster model")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("transport: fabric size %d", n)
	}
	if n > model.Topo.TotalCores() {
		return nil, cluster.ErrTooManyRanks
	}
	f := &SimFabric{
		model:  model,
		n:      n,
		boxes:  make([]*mailbox, n),
		clocks: make([]simClock, n),
		nics:   make([]nic, model.Topo.Nodes),
		paths:  make([][]cluster.LogGP, n),
	}
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	// Precompute the path matrix so Send is just table lookups.
	for a := 0; a < n; a++ {
		f.paths[a] = make([]cluster.LogGP, n)
		for b := 0; b < n; b++ {
			p, _, err := model.PathBetween(a, b, n)
			if err != nil {
				return nil, err
			}
			f.paths[a][b] = p
		}
	}
	return f, nil
}

// Model returns the platform model behind the fabric.
func (f *SimFabric) Model() *cluster.Model { return f.model }

// Endpoint returns rank's endpoint.
func (f *SimFabric) Endpoint(rank int) (Endpoint, error) {
	if rank < 0 || rank >= f.n {
		return nil, ErrBadRank
	}
	return &simEP{f: f, rank: rank}, nil
}

// Close shuts down every mailbox.
func (f *SimFabric) Close() error {
	for _, b := range f.boxes {
		b.close()
	}
	return nil
}

func (f *SimFabric) nodeOf(rank int) int {
	loc, _ := f.model.Topo.Place(rank, f.n, f.model.Placement)
	return loc.Node
}

type simEP struct {
	f    *SimFabric
	rank int
}

func (e *simEP) Rank() int { return e.rank }
func (e *simEP) Size() int { return e.f.n }

func (e *simEP) Send(dst int, pkt Packet) error {
	if dst < 0 || dst >= e.f.n {
		return ErrBadRank
	}
	p := e.f.paths[e.rank][dst]
	s := float64(len(pkt.Data))

	clk := &e.f.clocks[e.rank]
	clk.mu.Lock()
	now := clk.t
	clk.mu.Unlock()

	inject := now + p.O
	srcNode, dstNode := e.f.nodeOf(e.rank), e.f.nodeOf(dst)
	if srcNode != dstNode {
		// Inter-node messages serialize through the node's NIC.
		n := &e.f.nics[srcNode]
		n.mu.Lock()
		if n.free > inject {
			inject = n.free
		}
		occupancy := s * p.GB
		if p.G > occupancy {
			occupancy = p.G
		}
		n.free = inject + occupancy
		n.mu.Unlock()
	}
	pkt.Arrival = inject + s*p.GB + p.L
	pkt.RecvO = p.O
	// Eager data lands in a bounce buffer and is copied out at match
	// time; rendezvous payloads (RndvData) go straight to the posted
	// buffer. The copy is charged at the node's memcpy bandwidth
	// (the Self link's per-byte cost). This asymmetry is what creates
	// the eager/rendezvous crossover (experiment F12).
	if pkt.Type == Data {
		pkt.RecvO += s * e.f.model.Links.Self.GB
	}
	pkt.Src = e.rank

	// Sender CPU is busy for overhead plus injection of the payload.
	clk.mu.Lock()
	t := now + p.O + s*p.GB
	if t > clk.t {
		clk.t = t
	}
	clk.mu.Unlock()

	if len(pkt.Data) > 0 {
		buf := make([]byte, len(pkt.Data))
		copy(buf, pkt.Data)
		pkt.Data = buf
	}
	if !e.f.boxes[dst].put(pkt) {
		return ErrClosed
	}
	return nil
}

func (e *simEP) Recv(block bool) (Packet, bool, error) {
	p, ok := e.f.boxes[e.rank].get(block)
	return p, ok, nil
}

func (e *simEP) Now() float64 {
	clk := &e.f.clocks[e.rank]
	clk.mu.Lock()
	defer clk.mu.Unlock()
	return clk.t
}

func (e *simEP) AdvanceTo(t float64) {
	clk := &e.f.clocks[e.rank]
	clk.mu.Lock()
	if t > clk.t {
		clk.t = t
	}
	clk.mu.Unlock()
}

func (e *simEP) AddDelay(dt float64) {
	if dt <= 0 {
		return
	}
	clk := &e.f.clocks[e.rank]
	clk.mu.Lock()
	clk.t += dt
	clk.mu.Unlock()
}

func (e *simEP) Close() error {
	e.f.boxes[e.rank].close()
	return nil
}
