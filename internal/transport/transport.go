// Package transport provides the byte-moving layer under the
// message-passing runtime (internal/mp). Three interchangeable fabrics
// are provided:
//
//   - InProc: ranks are goroutines in one process exchanging packets
//     through lock-protected mailboxes; timing is wall-clock. This is the
//     fast substrate for correctness tests and shared-memory runs.
//   - Sim: like InProc, but every packet is timestamped using a
//     cluster.Model (LogGP per path class, NIC egress contention) and
//     each endpoint carries a virtual clock. Benchmarks read virtual
//     time, so µs-scale fabric behaviour is reproduced without sleeping.
//   - TCP: ranks exchange length-prefixed frames over real loopback TCP
//     connections, exercising an actual kernel network stack.
//
// The mp layer sees only the Endpoint interface and is agnostic to which
// fabric is underneath.
package transport

import (
	"errors"
	"sync"
)

// PacketType discriminates wire-level packet kinds. The rendezvous
// protocol types mirror a real MPI implementation: large sends announce
// themselves (RTS), the receiver grants (CTS) once a matching receive is
// posted, and only then does the payload move (RndvData).
type PacketType uint8

const (
	// Data is an eager message carrying its full payload.
	Data PacketType = iota
	// RTS (request-to-send) announces a rendezvous message; no payload.
	RTS
	// CTS (clear-to-send) grants a rendezvous transfer; no payload.
	CTS
	// RndvData carries the payload of a granted rendezvous transfer.
	RndvData
)

// String implements fmt.Stringer.
func (t PacketType) String() string {
	switch t {
	case Data:
		return "DATA"
	case RTS:
		return "RTS"
	case CTS:
		return "CTS"
	case RndvData:
		return "RNDV"
	default:
		return "?"
	}
}

// Packet is one unit of delivery between endpoints. Data/RTS carry the
// sender's (Src, Tag); CTS/RndvData are matched by Seq alone. For the
// Sim fabric, Arrival is the virtual time (seconds) at which the packet
// reaches the receiver and RecvO the receiver-side CPU overhead to
// charge; both are zero on real-time fabrics.
type Packet struct {
	Type    PacketType
	Src     int
	Tag     int
	Ctx     uint64 // communicator context id (0 = world)
	Seq     uint64
	Size    int // payload size announced by RTS (Data/RndvData use len(Data))
	Data    []byte
	Arrival float64
	RecvO   float64
}

// Endpoint is one rank's attachment to a fabric.
type Endpoint interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks on the fabric.
	Size() int
	// Send delivers pkt to dst. The payload is owned by the transport
	// after the call returns (callers must not reuse pkt.Data unless
	// they passed a private copy). Send never blocks on the receiver;
	// mailboxes are unbounded.
	Send(dst int, pkt Packet) error
	// Recv returns the next incoming packet, blocking if block is
	// true. ok is false if no packet is available (non-blocking) or
	// the endpoint is closed.
	Recv(block bool) (pkt Packet, ok bool, err error)
	// Now returns this rank's current time in seconds: wall-clock time
	// for real fabrics, the rank's virtual clock for Sim.
	Now() float64
	// AdvanceTo moves the rank's virtual clock forward to t if t is
	// later than the current clock. No-op on real-time fabrics.
	AdvanceTo(t float64)
	// AddDelay charges dt seconds of local work to the rank's virtual
	// clock. No-op on real-time fabrics; benchmarks use it to model
	// compute phases.
	AddDelay(dt float64)
	// Close detaches the endpoint. Recv on a closed endpoint returns
	// ok=false.
	Close() error
}

// ErrClosed is returned by Send on a closed endpoint or fabric.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrBadRank is returned when a destination rank is out of range.
var ErrBadRank = errors.New("transport: rank out of range")

// mailbox is an unbounded FIFO of packets with blocking dequeue. It is
// unbounded on purpose: MPI eager sends must not block the sender on a
// slow receiver (flow control above would deadlock correct programs).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Packet
	head   int
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(p Packet) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	m.queue = append(m.queue, p)
	m.cond.Signal()
	m.mu.Unlock()
	return true
}

func (m *mailbox) get(block bool) (Packet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head >= len(m.queue) && !m.closed {
		if !block {
			return Packet{}, false
		}
		m.cond.Wait()
	}
	if m.head >= len(m.queue) {
		return Packet{}, false // closed and drained
	}
	p := m.queue[m.head]
	m.queue[m.head] = Packet{} // release payload reference
	m.head++
	// Compact occasionally so the slice doesn't grow without bound.
	if m.head > 64 && m.head*2 >= len(m.queue) {
		n := copy(m.queue, m.queue[m.head:])
		for i := n; i < len(m.queue); i++ {
			m.queue[i] = Packet{}
		}
		m.queue = m.queue[:n]
		m.head = 0
	}
	return p, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
