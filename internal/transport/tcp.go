package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPFabric connects n ranks (still goroutines in one process, like an
// MPI job on one node) through real loopback TCP connections, so the
// full kernel socket path — syscalls, copies, Nagle-off small writes —
// is exercised. Connections are unidirectional and established lazily:
// rank a's first send to b dials b's listener and that connection carries
// only a→b traffic, which keeps per-(src,dst) FIFO ordering trivially.
//
// Wire format, little-endian:
//
//	[1B type][4B src][8B tag][8B ctx][8B seq][4B announced size][4B payload len][payload]
type TCPFabric struct {
	n         int
	boxes     []*mailbox
	listeners []net.Listener
	addrs     []string
	start     time.Time

	mu     sync.Mutex
	closed bool
	conns  []net.Conn // all accepted/dialed conns, for Close
	wg     sync.WaitGroup
}

const tcpHeaderLen = 1 + 4 + 8 + 8 + 8 + 4 + 4

// NewTCP creates a loopback TCP fabric for n ranks.
func NewTCP(n int) (*TCPFabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: fabric size %d", n)
	}
	f := &TCPFabric{
		n:         n,
		boxes:     make([]*mailbox, n),
		listeners: make([]net.Listener, n),
		addrs:     make([]string, n),
		start:     time.Now(),
	}
	for i := 0; i < n; i++ {
		f.boxes[i] = newMailbox()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		f.listeners[i] = l
		f.addrs[i] = l.Addr().String()
		f.wg.Add(1)
		go f.acceptLoop(i, l)
	}
	return f, nil
}

func (f *TCPFabric) acceptLoop(rank int, l net.Listener) {
	defer f.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		f.track(conn)
		f.wg.Add(1)
		go f.readLoop(rank, conn)
	}
}

func (f *TCPFabric) track(c net.Conn) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		c.Close()
		return
	}
	f.conns = append(f.conns, c)
	f.mu.Unlock()
}

func (f *TCPFabric) readLoop(rank int, conn net.Conn) {
	defer f.wg.Done()
	r := bufio.NewReaderSize(conn, 1<<16)
	var hdr [tcpHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		pkt := Packet{
			Type: PacketType(hdr[0]),
			Src:  int(int32(binary.LittleEndian.Uint32(hdr[1:5]))),
			Tag:  int(int64(binary.LittleEndian.Uint64(hdr[5:13]))),
			Ctx:  binary.LittleEndian.Uint64(hdr[13:21]),
			Seq:  binary.LittleEndian.Uint64(hdr[21:29]),
			Size: int(int32(binary.LittleEndian.Uint32(hdr[29:33]))),
		}
		dataLen := int(binary.LittleEndian.Uint32(hdr[33:37]))
		if dataLen > 0 {
			pkt.Data = make([]byte, dataLen)
			if _, err := io.ReadFull(r, pkt.Data); err != nil {
				return
			}
		}
		if !f.boxes[rank].put(pkt) {
			return
		}
	}
}

// Endpoint returns rank's endpoint.
func (f *TCPFabric) Endpoint(rank int) (Endpoint, error) {
	if rank < 0 || rank >= f.n {
		return nil, ErrBadRank
	}
	return &tcpEP{
		f:     f,
		rank:  rank,
		peers: make([]*tcpPeer, f.n),
	}, nil
}

// Close shuts the whole fabric down: listeners, connections, mailboxes.
func (f *TCPFabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	conns := f.conns
	f.conns = nil
	f.mu.Unlock()

	for _, l := range f.listeners {
		if l != nil {
			l.Close()
		}
	}
	for _, c := range conns {
		c.Close()
	}
	for _, b := range f.boxes {
		b.close()
	}
	f.wg.Wait()
	return nil
}

type tcpPeer struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

type tcpEP struct {
	f     *TCPFabric
	rank  int
	mu    sync.Mutex // guards lazy peer creation
	peers []*tcpPeer
}

func (e *tcpEP) Rank() int { return e.rank }
func (e *tcpEP) Size() int { return e.f.n }

func (e *tcpEP) peer(dst int) (*tcpPeer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p := e.peers[dst]; p != nil {
		return p, nil
	}
	conn, err := net.Dial("tcp", e.f.addrs[dst])
	if err != nil {
		return nil, fmt.Errorf("transport: dial rank %d: %w", dst, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency benchmarks need Nagle off
	}
	e.f.track(conn)
	p := &tcpPeer{c: conn, w: bufio.NewWriterSize(conn, 1<<16)}
	e.peers[dst] = p
	return p, nil
}

func (e *tcpEP) Send(dst int, pkt Packet) error {
	if dst < 0 || dst >= e.f.n {
		return ErrBadRank
	}
	p, err := e.peer(dst)
	if err != nil {
		return err
	}
	var hdr [tcpHeaderLen]byte
	hdr[0] = byte(pkt.Type)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(int32(e.rank)))
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(int64(pkt.Tag)))
	binary.LittleEndian.PutUint64(hdr[13:21], pkt.Ctx)
	binary.LittleEndian.PutUint64(hdr[21:29], pkt.Seq)
	binary.LittleEndian.PutUint32(hdr[29:33], uint32(int32(pkt.Size)))
	binary.LittleEndian.PutUint32(hdr[33:37], uint32(len(pkt.Data)))

	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.w.Write(hdr[:]); err != nil {
		return e.sendErr(err)
	}
	if len(pkt.Data) > 0 {
		if _, err := p.w.Write(pkt.Data); err != nil {
			return e.sendErr(err)
		}
	}
	if err := p.w.Flush(); err != nil {
		return e.sendErr(err)
	}
	return nil
}

func (e *tcpEP) sendErr(err error) error {
	if errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

func (e *tcpEP) Recv(block bool) (Packet, bool, error) {
	p, ok := e.f.boxes[e.rank].get(block)
	return p, ok, nil
}

func (e *tcpEP) Now() float64      { return time.Since(e.f.start).Seconds() }
func (e *tcpEP) AdvanceTo(float64) {}
func (e *tcpEP) AddDelay(float64)  {}

func (e *tcpEP) Close() error {
	e.f.boxes[e.rank].close()
	return nil
}
