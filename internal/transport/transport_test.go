package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
)

// fabricUnderTest abstracts the three fabrics for shared conformance tests.
type fabricUnderTest struct {
	name string
	mk   func(n int) (interface {
		Endpoint(int) (Endpoint, error)
		Close() error
	}, error)
}

func fabrics() []fabricUnderTest {
	return []fabricUnderTest{
		{"inproc", func(n int) (interface {
			Endpoint(int) (Endpoint, error)
			Close() error
		}, error) {
			return NewInProc(n)
		}},
		{"sim", func(n int) (interface {
			Endpoint(int) (Endpoint, error)
			Close() error
		}, error) {
			return NewSim(n, cluster.IBCluster())
		}},
		{"tcp", func(n int) (interface {
			Endpoint(int) (Endpoint, error)
			Close() error
		}, error) {
			return NewTCP(n)
		}},
	}
}

func TestFabricBasicDelivery(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			fab, err := f.mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close()
			e0, err := fab.Endpoint(0)
			if err != nil {
				t.Fatal(err)
			}
			e1, err := fab.Endpoint(1)
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("hello fabric")
			if err := e0.Send(1, Packet{Type: Data, Tag: 7, Seq: 3, Data: payload}); err != nil {
				t.Fatal(err)
			}
			pkt, ok, err := e1.Recv(true)
			if err != nil || !ok {
				t.Fatalf("recv: ok=%v err=%v", ok, err)
			}
			if pkt.Type != Data || pkt.Src != 0 || pkt.Tag != 7 || pkt.Seq != 3 {
				t.Errorf("header mismatch: %+v", pkt)
			}
			if !bytes.Equal(pkt.Data, payload) {
				t.Errorf("payload = %q", pkt.Data)
			}
		})
	}
}

func TestFabricSenderBufferReuse(t *testing.T) {
	// After Send returns, mutating the sender's buffer must not corrupt
	// the delivered packet.
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			fab, err := f.mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close()
			e0, _ := fab.Endpoint(0)
			e1, _ := fab.Endpoint(1)
			buf := []byte{1, 2, 3, 4}
			if err := e0.Send(1, Packet{Type: Data, Data: buf}); err != nil {
				t.Fatal(err)
			}
			buf[0] = 99
			pkt, ok, _ := e1.Recv(true)
			if !ok {
				t.Fatal("no packet")
			}
			if pkt.Data[0] != 1 {
				t.Error("payload aliased the sender's buffer")
			}
		})
	}
}

func TestFabricOrderingPerPair(t *testing.T) {
	// FIFO per (src,dst) must hold on every fabric.
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			fab, err := f.mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close()
			e0, _ := fab.Endpoint(0)
			e1, _ := fab.Endpoint(1)
			const n = 500
			for i := 0; i < n; i++ {
				if err := e0.Send(1, Packet{Type: Data, Seq: uint64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				pkt, ok, _ := e1.Recv(true)
				if !ok {
					t.Fatal("closed early")
				}
				if pkt.Seq != uint64(i) {
					t.Fatalf("out of order: got seq %d at position %d", pkt.Seq, i)
				}
			}
		})
	}
}

func TestFabricManyToOne(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			const senders = 7
			const per = 100
			fab, err := f.mk(senders + 1)
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close()
			var wg sync.WaitGroup
			for s := 1; s <= senders; s++ {
				ep, err := fab.Endpoint(s)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(ep Endpoint, s int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						data := []byte(fmt.Sprintf("%d:%d", s, i))
						if err := ep.Send(0, Packet{Type: Data, Tag: s, Seq: uint64(i), Data: data}); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(ep, s)
			}
			e0, _ := fab.Endpoint(0)
			perSrcNext := make([]uint64, senders+1)
			for got := 0; got < senders*per; got++ {
				pkt, ok, _ := e0.Recv(true)
				if !ok {
					t.Fatal("closed early")
				}
				if pkt.Seq != perSrcNext[pkt.Src] {
					t.Fatalf("src %d: seq %d, want %d", pkt.Src, pkt.Seq, perSrcNext[pkt.Src])
				}
				perSrcNext[pkt.Src]++
			}
			wg.Wait()
		})
	}
}

func TestFabricBadRank(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			fab, err := f.mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close()
			e0, _ := fab.Endpoint(0)
			if err := e0.Send(5, Packet{}); err != ErrBadRank {
				t.Errorf("send to bad rank: %v", err)
			}
			if err := e0.Send(-1, Packet{}); err != ErrBadRank {
				t.Errorf("send to negative rank: %v", err)
			}
			if _, err := fab.Endpoint(99); err != ErrBadRank {
				t.Errorf("Endpoint(99): %v", err)
			}
		})
	}
}

func TestFabricNonBlockingRecv(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			fab, err := f.mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close()
			e0, _ := fab.Endpoint(0)
			if _, ok, _ := e0.Recv(false); ok {
				t.Error("non-blocking recv on empty mailbox returned a packet")
			}
		})
	}
}

func TestFabricCloseUnblocksRecv(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			fab, err := f.mk(2)
			if err != nil {
				t.Fatal(err)
			}
			e0, _ := fab.Endpoint(0)
			done := make(chan bool)
			go func() {
				_, ok, _ := e0.Recv(true)
				done <- ok
			}()
			fab.Close()
			if ok := <-done; ok {
				t.Error("recv returned a packet after close")
			}
		})
	}
}

func TestSimClockAdvancesOnSend(t *testing.T) {
	fab, err := NewSim(2, cluster.IBCluster())
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	e0, _ := fab.Endpoint(0)
	before := e0.Now()
	if before != 0 {
		t.Fatalf("initial clock = %v", before)
	}
	if err := e0.Send(1, Packet{Type: Data, Data: make([]byte, 1000)}); err != nil {
		t.Fatal(err)
	}
	if e0.Now() <= before {
		t.Error("sender clock did not advance")
	}
}

func TestSimArrivalIncludesLatency(t *testing.T) {
	m := cluster.IBCluster()
	n := m.Topo.TotalCores()
	fab, err := NewSim(n, m)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	// Rank 0 -> last rank is inter-node under block placement.
	e0, _ := fab.Endpoint(0)
	eN, _ := fab.Endpoint(n - 1)
	if err := e0.Send(n-1, Packet{Type: Data, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	pkt, ok, _ := eN.Recv(true)
	if !ok {
		t.Fatal("no packet")
	}
	lp, _, _ := m.PathBetween(0, n-1, n)
	if pkt.Arrival < lp.L {
		t.Errorf("arrival %v below wire latency %v", pkt.Arrival, lp.L)
	}
	// Eager Data carries the path overhead plus the bounce-buffer copy.
	if pkt.RecvO < lp.O {
		t.Errorf("RecvO = %v, want >= %v", pkt.RecvO, lp.O)
	}
}

func TestSimIntraVsInterNodeArrival(t *testing.T) {
	m := cluster.IBCluster()
	n := m.Topo.TotalCores()
	fab, _ := NewSim(n, m)
	defer fab.Close()
	e0, _ := fab.Endpoint(0)
	e1, _ := fab.Endpoint(1)
	eN, _ := fab.Endpoint(n - 1)

	if err := e0.Send(1, Packet{Type: Data, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	intra, _, _ := e1.Recv(true)
	// Reset-ish: clock0 advanced a little; send inter-node next.
	if err := e0.Send(n-1, Packet{Type: Data, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	inter, _, _ := eN.Recv(true)
	if inter.Arrival <= intra.Arrival {
		t.Errorf("inter-node arrival %v not after intra-node %v", inter.Arrival, intra.Arrival)
	}
}

func TestSimNICContentionSerializes(t *testing.T) {
	// Two back-to-back inter-node sends from the same node must have
	// arrivals separated by at least the occupancy of one message.
	m := cluster.IBCluster()
	n := m.Topo.TotalCores()
	fab, _ := NewSim(n, m)
	defer fab.Close()
	e0, _ := fab.Endpoint(0)
	eN, _ := fab.Endpoint(n - 1)
	const size = 100000
	e0.Send(n-1, Packet{Type: Data, Seq: 1, Data: make([]byte, size)})
	e0.Send(n-1, Packet{Type: Data, Seq: 2, Data: make([]byte, size)})
	p1, _, _ := eN.Recv(true)
	p2, _, _ := eN.Recv(true)
	lp, _, _ := m.PathBetween(0, n-1, n)
	gap := p2.Arrival - p1.Arrival
	if gap < float64(size)*lp.GB*0.99 {
		t.Errorf("NIC gap %v below single-message occupancy %v", gap, float64(size)*lp.GB)
	}
}

func TestSimAdvanceToAndAddDelay(t *testing.T) {
	fab, _ := NewSim(2, cluster.IBCluster())
	defer fab.Close()
	e0, _ := fab.Endpoint(0)
	e0.AdvanceTo(5)
	if e0.Now() != 5 {
		t.Errorf("AdvanceTo: now = %v", e0.Now())
	}
	e0.AdvanceTo(3) // backwards: no-op
	if e0.Now() != 5 {
		t.Errorf("AdvanceTo went backwards: %v", e0.Now())
	}
	e0.AddDelay(2)
	if e0.Now() != 7 {
		t.Errorf("AddDelay: now = %v", e0.Now())
	}
	e0.AddDelay(-1) // negative: no-op
	if e0.Now() != 7 {
		t.Errorf("negative AddDelay applied: %v", e0.Now())
	}
}

func TestSimRejectsBadConfig(t *testing.T) {
	if _, err := NewSim(2, nil); err == nil {
		t.Error("nil model accepted")
	}
	m := cluster.IBCluster()
	if _, err := NewSim(m.Topo.TotalCores()+1, m); err == nil {
		t.Error("overcommit accepted")
	}
	if _, err := NewSim(0, m); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestTCPLargePayload(t *testing.T) {
	fab, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	e0, _ := fab.Endpoint(0)
	e1, _ := fab.Endpoint(1)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := e0.Send(1, Packet{Type: RndvData, Seq: 9, Data: payload}); err != nil {
		t.Fatal(err)
	}
	pkt, ok, _ := e1.Recv(true)
	if !ok {
		t.Fatal("no packet")
	}
	if !bytes.Equal(pkt.Data, payload) {
		t.Error("1 MiB payload corrupted over TCP")
	}
}

func TestTCPNegativeTag(t *testing.T) {
	// Internal collective tags are negative and must round-trip the
	// wire encoding.
	fab, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	e0, _ := fab.Endpoint(0)
	e1, _ := fab.Endpoint(1)
	if err := e0.Send(1, Packet{Type: Data, Tag: -1048576}); err != nil {
		t.Fatal(err)
	}
	pkt, ok, _ := e1.Recv(true)
	if !ok || pkt.Tag != -1048576 {
		t.Errorf("negative tag round-trip: ok=%v tag=%d", ok, pkt.Tag)
	}
}

func TestPacketTypeString(t *testing.T) {
	for ty, want := range map[PacketType]string{Data: "DATA", RTS: "RTS", CTS: "CTS", RndvData: "RNDV", 99: "?"} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
}

func TestMailboxCompaction(t *testing.T) {
	m := newMailbox()
	// Interleave puts and gets past the compaction threshold.
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			m.put(Packet{Seq: uint64(round*100 + i)})
		}
		for i := 0; i < 100; i++ {
			p, ok := m.get(true)
			if !ok || p.Seq != uint64(round*100+i) {
				t.Fatalf("round %d i %d: ok=%v seq=%d", round, i, ok, p.Seq)
			}
		}
	}
	if len(m.queue) > 200 {
		t.Errorf("queue did not compact: len=%d", len(m.queue))
	}
}
