package transport

import (
	"fmt"
	"time"
)

// InProcFabric connects n ranks inside one process through shared
// mailboxes. Payloads are copied on Send so senders can immediately
// reuse their buffers (MPI buffered-send semantics for the eager path).
type InProcFabric struct {
	boxes []*mailbox
	start time.Time
}

// NewInProc creates a fabric for n ranks.
func NewInProc(n int) (*InProcFabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: fabric size %d", n)
	}
	f := &InProcFabric{boxes: make([]*mailbox, n), start: time.Now()}
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	return f, nil
}

// Endpoint returns rank's endpoint.
func (f *InProcFabric) Endpoint(rank int) (Endpoint, error) {
	if rank < 0 || rank >= len(f.boxes) {
		return nil, ErrBadRank
	}
	return &inprocEP{f: f, rank: rank}, nil
}

// Close shuts down every mailbox.
func (f *InProcFabric) Close() error {
	for _, b := range f.boxes {
		b.close()
	}
	return nil
}

type inprocEP struct {
	f    *InProcFabric
	rank int
}

func (e *inprocEP) Rank() int { return e.rank }
func (e *inprocEP) Size() int { return len(e.f.boxes) }

func (e *inprocEP) Send(dst int, pkt Packet) error {
	if dst < 0 || dst >= len(e.f.boxes) {
		return ErrBadRank
	}
	pkt.Src = e.rank
	if len(pkt.Data) > 0 {
		// Copy: the sender owns its buffer again once Send returns.
		buf := make([]byte, len(pkt.Data))
		copy(buf, pkt.Data)
		pkt.Data = buf
	}
	if !e.f.boxes[dst].put(pkt) {
		return ErrClosed
	}
	return nil
}

func (e *inprocEP) Recv(block bool) (Packet, bool, error) {
	p, ok := e.f.boxes[e.rank].get(block)
	return p, ok, nil
}

func (e *inprocEP) Now() float64 {
	return time.Since(e.f.start).Seconds()
}

func (e *inprocEP) AdvanceTo(float64) {}
func (e *inprocEP) AddDelay(float64)  {}

func (e *inprocEP) Close() error {
	e.f.boxes[e.rank].close()
	return nil
}
