// Package mem characterizes the memory hierarchy — the latency-bound
// complement to the bandwidth-bound STREAM suite (internal/stream). The
// source study examines "big memory": how cache capacities, TLB reach,
// and page size (statically mapped large pages vs a demand-paged small
// page address space) shape the memory access time an application
// actually sees.
//
// The package has two halves, mirroring the measured/modeled split used
// throughout the harness:
//
//   - Probe kernels that run on the host: a pointer-chase latency ladder
//     over working-set sweeps (Chase, Ladder), a TLB-stress pattern
//     that touches one cache line per page (TLBStress), and a NUMA
//     placement probe that faults the working set in from pinned worker
//     teams under a placement policy before chasing it (NUMAChase,
//     NUMALadder). The chase follows a random-cycle permutation, so
//     every load depends on the previous one and hardware prefetchers
//     see no usable stride.
//
//   - An analytic Model (model.go) attached to every platform preset in
//     internal/cluster, so that modeled platforms answer memory probes
//     just like their LogGP parameters answer network probes. The model
//     predicts per-access latency from cache level capacities, TLB
//     reach, and two orthogonal mapping axes: the page-size mode
//     (BigMemory vs Paged) and, on multi-node machines (NUMA), the page
//     Placement policy (FirstTouch, Interleave, Remote) — see
//     Model.Latency. A single-node model reproduces its pre-NUMA
//     latencies bit-for-bit under every policy.
//
// internal/perfmodel closes the loop: FitHierarchy recovers level
// capacities and latencies from a measured or modeled ladder by
// knee-point detection (experiment M4 compares the fit against the
// model's configured truth), and FitNUMASplit recovers the local/remote
// memory-latency split from a pair of placement-controlled ladders
// (experiment M5 does the same for the NUMA axis).
package mem

// Sample is one point of a latency ladder: the average time of a single
// dependent load when chasing pointers through a working set of the
// given size.
type Sample struct {
	Bytes   int     // working-set size in bytes
	Seconds float64 // per-access latency in seconds
}
