package mem

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// ChaseConfig configures one pointer-chase measurement.
type ChaseConfig struct {
	// Bytes is the working-set size. The chase touches Bytes/Stride
	// slots spread Stride bytes apart, so the footprint spans the whole
	// range even though only one word per slot is loaded.
	Bytes int
	// Stride is the distance between consecutive slots in bytes
	// (default 64, one cache line; must be a positive multiple of 4).
	Stride int
	// Iters is the number of dependent loads to time (default 1<<18).
	Iters int
	// Trials is how many times the timed loop runs; the best (minimum)
	// time is reported, as STREAM does (default 3).
	Trials int
	// Seed selects the random cycle (default 1).
	Seed uint64
}

func (c ChaseConfig) normalize() ChaseConfig {
	if c.Stride <= 0 {
		c.Stride = 64
	}
	if c.Iters <= 0 {
		c.Iters = 1 << 18
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c ChaseConfig) validate() error {
	if c.Stride%4 != 0 {
		return fmt.Errorf("mem: stride %d is not a multiple of 4", c.Stride)
	}
	if c.Bytes < 2*c.Stride {
		return fmt.Errorf("mem: working set %dB smaller than two strides (%dB)", c.Bytes, 2*c.Stride)
	}
	return nil
}

// ChaseResult holds one pointer-chase measurement.
type ChaseResult struct {
	Bytes    int     // working set actually touched (slots * stride)
	Slots    int     // number of chase slots in the cycle
	Seconds  float64 // per-access latency of the best trial
	Accesses int     // dependent loads per trial
	Checksum uint32  // final cursor; defeats dead-code elimination
}

// Sample converts the result to a ladder point.
func (r ChaseResult) Sample() Sample { return Sample{Bytes: r.Bytes, Seconds: r.Seconds} }

// Chase measures the average dependent-load latency over a working set:
// it lays out Bytes/Stride slots, links them into one random cycle
// (Sattolo's algorithm, so the cycle is a single orbit with no short
// loops), walks the cycle once to warm caches and TLB, then times Iters
// chained loads. Every load's address comes from the previous load, so
// the measurement exposes true load-to-use latency at this working-set
// size rather than throughput.
func Chase(cfg ChaseConfig) (ChaseResult, error) {
	cfg = cfg.normalize()
	if err := cfg.validate(); err != nil {
		return ChaseResult{}, err
	}
	nslots := cfg.Bytes / cfg.Stride
	buf, start := buildCycle(nslots, cfg.Stride/4, 0, cfg.Seed)

	// One full pass warms the cache hierarchy and faults in every page.
	p := walk(buf, start, nslots)

	best := 0.0
	for t := 0; t < cfg.Trials; t++ {
		t0 := time.Now()
		p = walk(buf, p, cfg.Iters)
		dt := time.Since(t0).Seconds()
		if t == 0 || dt < best {
			best = dt
		}
	}
	return ChaseResult{
		Bytes:    nslots * cfg.Stride,
		Slots:    nslots,
		Seconds:  best / float64(cfg.Iters),
		Accesses: cfg.Iters,
		Checksum: p,
	}, nil
}

// buildCycle allocates a buffer of nslots slots, spaceWords words apart,
// and links the slots into one random cycle. jitterWords, when non-zero,
// offsets slot i by (i*17 mod jitterWords/16)*16 words within its slot
// span — the TLB stress pattern uses it to spread lines across cache
// sets. It returns the buffer and the start index of the cycle.
func buildCycle(nslots, spaceWords, jitterWords int, seed uint64) ([]uint32, uint32) {
	buf := make([]uint32, nslots*spaceWords)
	return buf, linkCycle(buf, nslots, spaceWords, jitterWords, seed)
}

// linkCycle writes the random-cycle links into an existing buffer and
// returns the cycle's start index. It is split from buildCycle so the
// NUMA probe can fault the buffer's pages in under a placement policy
// first: linking only rewrites already-placed pages (see numa.go).
func linkCycle(buf []uint32, nslots, spaceWords, jitterWords int, seed uint64) uint32 {
	pos := func(slot int) uint32 {
		off := 0
		if jitterWords > 0 {
			off = (slot * 17 % (jitterWords / 16)) * 16
		}
		return uint32(slot*spaceWords + off)
	}

	// Random permutation of the slots = visit order around the cycle.
	order := make([]int32, nslots)
	for i := range order {
		order[i] = int32(i)
	}
	r := rng.NewSplitMix64(seed)
	// Sattolo's variant (swap with j < i strictly) yields a single
	// n-cycle, so the chase can never fall into a short sub-loop.
	for i := nslots - 1; i > 0; i-- {
		j := int(r.Uint64() % uint64(i))
		order[i], order[j] = order[j], order[i]
	}
	for i := 0; i < nslots; i++ {
		next := order[(i+1)%nslots]
		buf[pos(int(order[i]))] = pos(int(next))
	}
	return pos(int(order[0]))
}

// walk performs n dependent loads starting at cursor p. The body is
// unrolled so loop overhead stays small next to a cache hit.
func walk(buf []uint32, p uint32, n int) uint32 {
	i := 0
	for ; i+8 <= n; i += 8 {
		p = buf[p]
		p = buf[p]
		p = buf[p]
		p = buf[p]
		p = buf[p]
		p = buf[p]
		p = buf[p]
		p = buf[p]
	}
	for ; i < n; i++ {
		p = buf[p]
	}
	return p
}

// LadderConfig configures a working-set sweep of pointer-chase points.
type LadderConfig struct {
	// MinBytes and MaxBytes bound the sweep (defaults 4 KiB and 4 MiB).
	MinBytes, MaxBytes int
	// PointsPerOctave sets the sweep density: how many sizes per
	// doubling of the working set (default 2).
	PointsPerOctave int
	// Stride, Iters, Trials, Seed are passed through to each Chase.
	Stride, Iters, Trials int
	Seed                  uint64
}

func (c LadderConfig) normalize() LadderConfig {
	if c.MinBytes <= 0 {
		c.MinBytes = 4 << 10
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 4 << 20
	}
	if c.PointsPerOctave <= 0 {
		c.PointsPerOctave = 2
	}
	return c
}

// SweepSizes returns the geometric size schedule of a ladder sweep:
// PointsPerOctave sizes per doubling from MinBytes through MaxBytes
// inclusive, rounded to whole strides.
func SweepSizes(minBytes, maxBytes, pointsPerOctave, stride int) []int {
	if stride <= 0 {
		stride = 64
	}
	var sizes []int
	size := float64(minBytes)
	step := math.Pow(2, 1/float64(pointsPerOctave))
	last := -1
	for size <= float64(maxBytes)*1.0001 {
		s := int(size+0.5) / stride * stride
		if s >= 2*stride && s != last {
			sizes = append(sizes, s)
			last = s
		}
		size *= step
	}
	return sizes
}

// Ladder runs a full working-set sweep and returns one Sample per size,
// in ascending size order — the measured latency ladder.
func Ladder(cfg LadderConfig) ([]Sample, error) {
	cfg = cfg.normalize()
	sizes := SweepSizes(cfg.MinBytes, cfg.MaxBytes, cfg.PointsPerOctave, cfg.Stride)
	if len(sizes) == 0 {
		return nil, fmt.Errorf("mem: empty sweep [%d,%d]", cfg.MinBytes, cfg.MaxBytes)
	}
	out := make([]Sample, 0, len(sizes))
	for _, sz := range sizes {
		res, err := Chase(ChaseConfig{
			Bytes: sz, Stride: cfg.Stride, Iters: cfg.Iters,
			Trials: cfg.Trials, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res.Sample())
	}
	return out, nil
}
