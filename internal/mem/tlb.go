package mem

import (
	"fmt"
	"time"
)

// TLBConfig configures a TLB-stress sweep.
type TLBConfig struct {
	// PageBytes is the page granularity to stress (default 4096; must
	// be a positive multiple of 64).
	PageBytes int
	// MinPages and MaxPages bound the sweep in pages (defaults 8 and
	// 2048). The cache footprint is one line per page, so the sweep
	// isolates address-translation cost: latency stays flat while the
	// page count fits the TLB and climbs once it spills.
	MinPages, MaxPages int
	// PointsPerOctave sets sweep density (default 2).
	PointsPerOctave int
	// Iters, Trials, Seed follow ChaseConfig semantics.
	Iters, Trials int
	Seed          uint64
}

func (c TLBConfig) normalize() TLBConfig {
	if c.PageBytes <= 0 {
		c.PageBytes = 4096
	}
	if c.MinPages <= 0 {
		c.MinPages = 8
	}
	if c.MaxPages <= 0 {
		c.MaxPages = 2048
	}
	if c.PointsPerOctave <= 0 {
		c.PointsPerOctave = 2
	}
	if c.Iters <= 0 {
		c.Iters = 1 << 17
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TLBSample is one point of a TLB-stress sweep.
type TLBSample struct {
	Pages   int     // distinct pages touched per cycle
	Seconds float64 // per-access latency in seconds
}

// TLBStress measures dependent-load latency while touching exactly one
// cache line per page, in random cyclic order, for a sweep of page
// counts. The line offset within each page varies from page to page so
// consecutive pages do not collide in the same cache set (a stride equal
// to the page size would otherwise thrash a handful of sets and
// masquerade as TLB cost). The resulting curve is the classic TLB-reach
// probe: its knee sits at the TLB entry count, and its plateau height
// above the baseline is the page-walk cost.
func TLBStress(cfg TLBConfig) ([]TLBSample, error) {
	cfg = cfg.normalize()
	if cfg.PageBytes%64 != 0 {
		return nil, fmt.Errorf("mem: page size %d is not a multiple of 64", cfg.PageBytes)
	}
	counts := SweepSizes(cfg.MinPages, cfg.MaxPages, cfg.PointsPerOctave, 1)
	var out []TLBSample
	for _, pages := range counts {
		if pages < 2 {
			continue
		}
		pageWords := cfg.PageBytes / 4
		buf, start := buildCycle(pages, pageWords, pageWords, cfg.Seed)
		p := walk(buf, start, pages) // fault in and warm every page
		best := 0.0
		for t := 0; t < cfg.Trials; t++ {
			t0 := time.Now()
			p = walk(buf, p, cfg.Iters)
			dt := time.Since(t0).Seconds()
			if t == 0 || dt < best {
				best = dt
			}
		}
		out = append(out, TLBSample{Pages: pages, Seconds: best / float64(cfg.Iters)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mem: empty TLB sweep [%d,%d]", cfg.MinPages, cfg.MaxPages)
	}
	return out, nil
}
