package mem

import (
	"math"
	"testing"
)

func testModel() *Model {
	return &Model{
		Name: "test",
		Levels: []Level{
			{Name: "L1", Capacity: 32 << 10, Latency: 1.5e-9},
			{Name: "L2", Capacity: 6 << 20, Latency: 5.5e-9},
		},
		MemLatency:     90e-9,
		TLB:            TLB{Entries: 256, MissCost: 20e-9},
		PageBytes:      4 << 10,
		LargePageBytes: 2 << 20,
		PageFaultCost:  1.5e-6,
		Mode:           Paged,
	}
}

func TestChaseCycleIsSingleOrbit(t *testing.T) {
	for _, nslots := range []int{2, 3, 17, 256} {
		buf, start := buildCycle(nslots, 16, 0, 7)
		seen := map[uint32]bool{}
		p := start
		for i := 0; i < nslots; i++ {
			if seen[p] {
				t.Fatalf("nslots=%d: revisited slot %d after %d steps", nslots, p, i)
			}
			seen[p] = true
			p = buf[p]
		}
		if p != start {
			t.Errorf("nslots=%d: cycle did not close (ended at %d, want %d)", nslots, p, start)
		}
	}
}

func TestChaseRuns(t *testing.T) {
	res, err := Chase(ChaseConfig{Bytes: 64 << 10, Iters: 1 << 12, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Errorf("non-positive latency %g", res.Seconds)
	}
	if res.Slots != (64<<10)/64 {
		t.Errorf("slots = %d, want %d", res.Slots, (64<<10)/64)
	}
}

func TestChaseRejectsBadConfig(t *testing.T) {
	if _, err := Chase(ChaseConfig{Bytes: 64, Stride: 64}); err == nil {
		t.Error("working set below two strides accepted")
	}
	if _, err := Chase(ChaseConfig{Bytes: 4096, Stride: 30}); err == nil {
		t.Error("non-multiple-of-4 stride accepted")
	}
}

func TestSweepSizesGeometric(t *testing.T) {
	sizes := SweepSizes(4<<10, 64<<10, 2, 64)
	if len(sizes) == 0 {
		t.Fatal("empty sweep")
	}
	if sizes[0] != 4<<10 {
		t.Errorf("first size %d, want %d", sizes[0], 4<<10)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("sizes not ascending: %v", sizes)
		}
	}
	// 2 points/octave over 4 octaves inclusive: 9 points.
	if len(sizes) != 9 {
		t.Errorf("got %d points, want 9: %v", len(sizes), sizes)
	}
	last := sizes[len(sizes)-1]
	if last != 64<<10 {
		t.Errorf("last size %d, want %d", last, 64<<10)
	}
}

func TestLadderMeasured(t *testing.T) {
	samples, err := Ladder(LadderConfig{
		MinBytes: 4 << 10, MaxBytes: 64 << 10,
		PointsPerOctave: 1, Iters: 1 << 10, Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	for _, s := range samples {
		if s.Seconds <= 0 {
			t.Errorf("size %d: non-positive latency", s.Bytes)
		}
	}
}

func TestTLBStressRuns(t *testing.T) {
	samples, err := TLBStress(TLBConfig{
		MinPages: 8, MaxPages: 64, PointsPerOctave: 1, Iters: 1 << 10, Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 3 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if s.Seconds <= 0 {
			t.Errorf("pages %d: non-positive latency", s.Pages)
		}
	}
}

func TestModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := testModel()
	bad.Levels[1].Capacity = 16 << 10 // not ascending
	if err := bad.Validate(); err == nil {
		t.Error("non-ascending capacities accepted")
	}
	bad = testModel()
	bad.MemLatency = 1e-9 // below last level
	if err := bad.Validate(); err == nil {
		t.Error("memory faster than cache accepted")
	}
	bad = testModel()
	bad.LargePageBytes = 512 // below base page
	if err := bad.Validate(); err == nil {
		t.Error("large page smaller than base page accepted")
	}
	var nilModel *Model
	if err := nilModel.Validate(); err == nil {
		t.Error("nil model accepted")
	}
}

func TestModelLoadLatencyPlateaus(t *testing.T) {
	m := testModel().WithMode(BigMemory) // TLB reach covers the sweep
	// Deep inside L1 the latency is L1's.
	if got := m.LoadLatency(8 << 10); math.Abs(got-1.5e-9) > 0.1e-9 {
		t.Errorf("L1 plateau = %g, want ~1.5ns", got)
	}
	// Between L1 and L2 knees: L2 latency.
	if got := m.LoadLatency(1 << 20); math.Abs(got-5.5e-9) > 0.5e-9 {
		t.Errorf("L2 plateau = %g, want ~5.5ns", got)
	}
	// Far beyond L2: memory latency.
	if got := m.LoadLatency(256 << 20); math.Abs(got-90e-9) > 5e-9 {
		t.Errorf("memory plateau = %g, want ~90ns", got)
	}
	// Latency must be monotonically non-decreasing in working set.
	prev := 0.0
	for _, s := range m.Ladder(4<<10, 64<<20, 4) {
		if s.Seconds < prev-1e-15 {
			t.Fatalf("latency decreased at %dB: %g < %g", s.Bytes, s.Seconds, prev)
		}
		prev = s.Seconds
	}
}

func TestModelTLBCost(t *testing.T) {
	m := testModel() // Paged: reach = 256 * 4KiB = 1 MiB
	if m.TLBReach() != 1<<20 {
		t.Fatalf("paged reach = %d, want 1MiB", m.TLBReach())
	}
	big := m.WithMode(BigMemory) // reach = 256 * 2MiB = 512 MiB
	if big.TLBReach() != 512<<20 {
		t.Fatalf("bigmem reach = %d, want 512MiB", big.TLBReach())
	}
	// At a working set past paged reach but inside bigmem reach, the
	// paged mode pays the walk cost.
	ws := 32 << 20
	gap := m.LoadLatency(ws) - big.LoadLatency(ws)
	if math.Abs(gap-m.TLB.MissCost) > 2e-9 {
		t.Errorf("paged-bigmem gap = %g, want ~%g", gap, m.TLB.MissCost)
	}
}

func TestModelFirstTouchCost(t *testing.T) {
	m := testModel()
	ws := 1 << 20 // 256 base pages
	if got, want := m.FirstTouchCost(ws), 256*1.5e-6; math.Abs(got-want) > 1e-12 {
		t.Errorf("paged first touch = %g, want %g", got, want)
	}
	if got := m.WithMode(BigMemory).FirstTouchCost(ws); got != 0 {
		t.Errorf("bigmem first touch = %g, want 0", got)
	}
}
