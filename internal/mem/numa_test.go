package mem

import (
	"math"
	"testing"
	"unsafe"
)

func numaModel() *Model {
	m := testModel()
	m.NUMA = NUMA{Nodes: 4, RemoteLatency: 160e-9, RemoteTLBCost: 30e-9}
	return m
}

// TestPlacementDegeneratesOnUMA is the regression guard the NUMA axis
// promises: on a single-node model every placement policy reproduces
// the pre-NUMA latency bit-for-bit — not approximately, exactly.
func TestPlacementDegeneratesOnUMA(t *testing.T) {
	m := testModel() // zero-value NUMA: UMA
	for _, mode := range []Mode{Paged, BigMemory} {
		base := m.WithMode(mode)
		for _, s := range base.Ladder(4<<10, 64<<20, 4) {
			for _, p := range Placements {
				if got := m.Latency(s.Bytes, mode, p); got != s.Seconds {
					t.Fatalf("UMA %s/%s ws=%d: latency %g != pre-NUMA %g",
						mode, p, s.Bytes, got, s.Seconds)
				}
				if sd := m.PlacementSlowdown(s.Bytes, mode, p); sd != 1 {
					t.Fatalf("UMA %s/%s ws=%d: slowdown %g != 1", mode, p, s.Bytes, sd)
				}
			}
		}
	}
}

// A one-node NUMA struct (Nodes: 1) must behave identically to the
// zero value, whatever remote parameters ride along.
func TestPlacementSingleNodeExplicit(t *testing.T) {
	m := testModel()
	m.NUMA = NUMA{Nodes: 1, RemoteLatency: 999e-9, RemoteTLBCost: 999e-9}
	for _, p := range Placements {
		for _, ws := range []int{8 << 10, 1 << 20, 256 << 20} {
			if got, want := m.Latency(ws, BigMemory, p), testModel().Latency(ws, BigMemory, FirstTouch); got != want {
				t.Errorf("Nodes=1 %s ws=%d: latency %g != %g", p, ws, got, want)
			}
		}
	}
}

func TestPlacementOrdering(t *testing.T) {
	m := numaModel()
	ws := 256 << 20 // deep in memory
	local := m.Latency(ws, BigMemory, FirstTouch)
	inter := m.Latency(ws, BigMemory, Interleave)
	remote := m.Latency(ws, BigMemory, Remote)
	if !(local < inter && inter < remote) {
		t.Fatalf("placement ordering broken: local %g, interleave %g, remote %g", local, inter, remote)
	}
	// Plateau values follow the local-fraction mix exactly.
	if math.Abs(remote-160e-9) > 5e-9 {
		t.Errorf("remote plateau %g, want ~160ns", remote)
	}
	want := 0.25*90e-9 + 0.75*160e-9 // 4 nodes interleaved
	if math.Abs(inter-want) > 5e-9 {
		t.Errorf("interleave plateau %g, want ~%g", inter, want)
	}
	// Cache-resident working sets are placement-immune.
	for _, p := range Placements {
		if sd := m.PlacementSlowdown(8<<10, BigMemory, p); math.Abs(sd-1) > 1e-9 {
			t.Errorf("cache-resident slowdown under %s = %g, want 1", p, sd)
		}
	}
}

// Past paged TLB reach, remote placement pays the remote walk penalty
// on top of the base miss cost: the paged-over-bigmem gap grows from
// MissCost (local) to MissCost+RemoteTLBCost (remote).
func TestPlacementRemoteTLBCost(t *testing.T) {
	m := numaModel() // paged reach 1 MiB, bigmem reach 512 MiB
	ws := 32 << 20
	gapLocal := m.Latency(ws, Paged, FirstTouch) - m.Latency(ws, BigMemory, FirstTouch)
	gapRemote := m.Latency(ws, Paged, Remote) - m.Latency(ws, BigMemory, Remote)
	if math.Abs(gapLocal-m.TLB.MissCost) > 2e-9 {
		t.Errorf("local walk gap %g, want ~%g", gapLocal, m.TLB.MissCost)
	}
	want := m.TLB.MissCost + m.NUMA.RemoteTLBCost
	if math.Abs(gapRemote-want) > 2e-9 {
		t.Errorf("remote walk gap %g, want ~%g", gapRemote, want)
	}
}

func TestNUMAValidate(t *testing.T) {
	if err := numaModel().Validate(); err != nil {
		t.Errorf("valid NUMA model rejected: %v", err)
	}
	bad := numaModel()
	bad.NUMA.RemoteLatency = bad.MemLatency // not above local
	if err := bad.Validate(); err == nil {
		t.Error("remote latency not above local accepted")
	}
	bad = numaModel()
	bad.NUMA.RemoteTLBCost = -1e-9
	if err := bad.Validate(); err == nil {
		t.Error("negative remote TLB cost accepted")
	}
	bad = numaModel()
	bad.NUMA.Nodes = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative node count accepted")
	}
	// UMA models ignore the remote parameters entirely.
	ok := testModel()
	ok.NUMA = NUMA{Nodes: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("single-node NUMA rejected: %v", err)
	}
}

func TestPlacementStrings(t *testing.T) {
	want := map[Placement]string{FirstTouch: "first-touch", Interleave: "interleave", Remote: "remote"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Placement(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if len(Placements) != 3 || Placements[0] != FirstTouch {
		t.Errorf("Placements = %v, want first-touch first", Placements)
	}
}

func TestNUMAPageOwner(t *testing.T) {
	const team = 4
	seen := map[int]bool{}
	for pg := 0; pg < 64; pg++ {
		if w := numaPageOwner(pg, team, FirstTouch); w != 0 {
			t.Fatalf("first-touch page %d owned by %d, want 0", pg, w)
		}
		if w := numaPageOwner(pg, team, Remote); w == 0 || w >= team {
			t.Fatalf("remote page %d owned by %d, want 1..%d", pg, w, team-1)
		}
		w := numaPageOwner(pg, team, Interleave)
		if w < 0 || w >= team {
			t.Fatalf("interleave page %d owned by %d", pg, w)
		}
		seen[w] = true
	}
	if len(seen) != team {
		t.Errorf("interleave used %d workers, want %d", len(seen), team)
	}
}

func TestNUMAChaseRuns(t *testing.T) {
	for _, p := range Placements {
		res, err := NUMAChase(NUMAChaseConfig{
			Bytes: 64 << 10, Iters: 1 << 12, Trials: 1, Threads: 2, Policy: p,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Seconds <= 0 {
			t.Errorf("%s: non-positive latency %g", p, res.Seconds)
		}
		if res.Slots != (64<<10)/64 {
			t.Errorf("%s: slots = %d, want %d", p, res.Slots, (64<<10)/64)
		}
	}
}

func TestNUMAChaseRejectsBadConfig(t *testing.T) {
	if _, err := NUMAChase(NUMAChaseConfig{Bytes: 64, Stride: 64}); err == nil {
		t.Error("working set below two strides accepted")
	}
	if _, err := NUMAChase(NUMAChaseConfig{Bytes: 1 << 20, Stride: 96, PageBytes: 4096}); err == nil {
		t.Error("page size not a multiple of stride accepted")
	}
	if _, err := NUMAChase(NUMAChaseConfig{Bytes: 1 << 20, Stride: 64, PageBytes: 2048}); err == nil {
		t.Error("page size below the OS page accepted")
	}
}

// TestAllocPagesAligned asserts the probe buffer invariants both
// allocators promise: OS-page alignment (so placement pages are whole
// OS pages) and full writability of exactly the requested length.
func TestAllocPagesAligned(t *testing.T) {
	for _, alloc := range []func(int) ([]uint32, func()){allocPages, allocAligned} {
		for _, words := range []int{osPageWords / 2, osPageWords, 3*osPageWords + 5} {
			buf, free := alloc(words)
			if len(buf) != words {
				t.Fatalf("alloc(%d) returned %d words", words, len(buf))
			}
			if r := uintptr(unsafe.Pointer(&buf[0])) % uintptr(osPageBytes); r != 0 {
				t.Errorf("alloc(%d) not page-aligned (mod %d)", words, r)
			}
			for i := range buf {
				buf[i] = uint32(i)
			}
			if buf[words-1] != uint32(words-1) {
				t.Errorf("alloc(%d) buffer not writable to the end", words)
			}
			free()
		}
	}
}

func TestNUMALadderMeasured(t *testing.T) {
	for _, p := range Placements {
		samples, err := NUMALadder(NUMALadderConfig{
			MinBytes: 8 << 10, MaxBytes: 64 << 10,
			PointsPerOctave: 1, Iters: 1 << 10, Trials: 1, Threads: 2, Policy: p,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(samples) != 4 {
			t.Fatalf("%s: got %d samples, want 4", p, len(samples))
		}
		for _, s := range samples {
			if s.Seconds <= 0 {
				t.Errorf("%s size %d: non-positive latency", p, s.Bytes)
			}
		}
	}
}
