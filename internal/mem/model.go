package mem

import (
	"fmt"
	"math"
)

// Mode selects how the model's address space is mapped, the axis the
// source study compares.
type Mode int

const (
	// Paged is a demand-paged address space built from small (base)
	// pages: short TLB reach, and a per-page fault cost on first touch.
	Paged Mode = iota
	// BigMemory is a statically mapped address space built from large
	// pages: TLB reach typically covers all of memory, and there are no
	// demand-paging faults.
	BigMemory
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == BigMemory {
		return "bigmem"
	}
	return "paged"
}

// Placement selects where a working set's pages land relative to the
// executing core's NUMA node — the second mapping axis, orthogonal to
// Mode. On a single-node (UMA) model every policy is equivalent.
type Placement int

const (
	// FirstTouch binds every page to the node of the thread that
	// faults it in; a working set initialized by its consumer is
	// entirely local (the Linux default policy, and what the pinned
	// first-touch initialization in the measured probe reproduces).
	FirstTouch Placement = iota
	// Interleave round-robins pages across all nodes, so 1/Nodes of
	// accesses are local and the rest pay the remote latency.
	Interleave
	// Remote places every page on a node other than the executing
	// core's — the worst case, reached in practice when one thread
	// initializes memory that a thread on another node then consumes.
	Remote
)

// Placements lists the policies in model order: the local baseline
// first, then the mixed and fully remote cases.
var Placements = []Placement{FirstTouch, Interleave, Remote}

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case Interleave:
		return "interleave"
	case Remote:
		return "remote"
	default:
		return "first-touch"
	}
}

// NUMA describes the node-level locality structure of a modeled
// machine: how many NUMA nodes share the address space and what a
// remote access costs. The zero value (Nodes <= 1) is a UMA machine:
// every Placement is equivalent and the model reproduces its pre-NUMA
// latencies exactly.
type NUMA struct {
	// Nodes is the NUMA node count; 0 or 1 means UMA.
	Nodes int
	// RemoteLatency is the latency of a load served by another node's
	// memory, in seconds. It replaces MemLatency for the remote
	// fraction of accesses and must exceed it.
	RemoteLatency float64
	// RemoteTLBCost is the extra page-walk cost when the walk's
	// page-table accesses cross the node interconnect, in seconds,
	// added to TLB.MissCost for the remote fraction of accesses.
	RemoteTLBCost float64
}

// Level is one cache level of the modeled hierarchy.
type Level struct {
	Name     string
	Capacity int     // bytes
	Latency  float64 // load-to-use latency of a hit, in seconds
}

// TLB models the translation lookaside buffer.
type TLB struct {
	Entries  int     // entries (assumed shared across page sizes)
	MissCost float64 // page-walk cost added to a missing access, in seconds
}

// Model is the analytic memory-hierarchy model attached to a platform
// preset (cluster.Model.Mem). It answers the same question the probe
// kernels measure: the expected per-access latency of a random dependent
// chase over a given working set.
type Model struct {
	Name string
	// Levels are the cache levels in ascending capacity order.
	Levels []Level
	// MemLatency is the latency of a load served by main memory.
	MemLatency float64
	TLB        TLB
	// PageBytes is the base page size used in Paged mode;
	// LargePageBytes is the page size used in BigMemory mode.
	PageBytes      int
	LargePageBytes int
	// PageFaultCost is the demand-paging cost of first-touching one
	// base page (Paged mode only), in seconds.
	PageFaultCost float64
	// Mode is the platform's default mapping mode.
	Mode Mode
	// NUMA is the node-level locality structure; the zero value is a
	// UMA machine.
	NUMA NUMA
	// Placement is the platform's default page-placement policy. The
	// zero value, FirstTouch, keeps every access local, so UMA models
	// need not set it.
	Placement Placement
}

// Validate checks the model is internally consistent.
func (m *Model) Validate() error {
	if m == nil {
		return fmt.Errorf("mem: nil model")
	}
	if len(m.Levels) == 0 {
		return fmt.Errorf("mem: model %q has no cache levels", m.Name)
	}
	prevCap := 0
	prevLat := 0.0
	for _, l := range m.Levels {
		if l.Capacity <= prevCap {
			return fmt.Errorf("mem: model %q level %s capacity %d not ascending", m.Name, l.Name, l.Capacity)
		}
		if l.Latency <= prevLat {
			return fmt.Errorf("mem: model %q level %s latency %g not ascending", m.Name, l.Name, l.Latency)
		}
		prevCap, prevLat = l.Capacity, l.Latency
	}
	if m.MemLatency <= prevLat {
		return fmt.Errorf("mem: model %q memory latency %g not above last level", m.Name, m.MemLatency)
	}
	if m.TLB.Entries <= 0 || m.TLB.MissCost < 0 {
		return fmt.Errorf("mem: model %q invalid TLB %+v", m.Name, m.TLB)
	}
	if m.PageBytes <= 0 || m.LargePageBytes < m.PageBytes {
		return fmt.Errorf("mem: model %q invalid page sizes %d/%d", m.Name, m.PageBytes, m.LargePageBytes)
	}
	if m.PageFaultCost < 0 {
		return fmt.Errorf("mem: model %q negative page-fault cost", m.Name)
	}
	if m.NUMA.Nodes < 0 {
		return fmt.Errorf("mem: model %q negative NUMA node count %d", m.Name, m.NUMA.Nodes)
	}
	if m.NUMA.Nodes > 1 {
		if m.NUMA.RemoteLatency <= m.MemLatency {
			return fmt.Errorf("mem: model %q remote latency %g not above local %g",
				m.Name, m.NUMA.RemoteLatency, m.MemLatency)
		}
		if m.NUMA.RemoteTLBCost < 0 {
			return fmt.Errorf("mem: model %q negative remote TLB cost", m.Name)
		}
	}
	return nil
}

// WithMode returns a copy of the model switched to the given mode.
func (m *Model) WithMode(mode Mode) *Model {
	c := *m
	c.Mode = mode
	return &c
}

// WithPlacement returns a copy of the model switched to the given
// page-placement policy.
func (m *Model) WithPlacement(p Placement) *Model {
	c := *m
	c.Placement = p
	return &c
}

// localFraction is the modeled fraction of memory accesses served by
// the executing core's own node under the current placement policy. A
// UMA model (Nodes <= 1) is always fully local, whatever the policy.
func (m *Model) localFraction() float64 {
	if m.NUMA.Nodes <= 1 {
		return 1
	}
	switch m.Placement {
	case Interleave:
		return 1 / float64(m.NUMA.Nodes)
	case Remote:
		return 0
	default: // FirstTouch
		return 1
	}
}

// effMemLatency is the placement-weighted memory latency. The fully
// local case returns MemLatency itself (not a weighted sum), so UMA
// models and first-touch placement reproduce pre-NUMA latencies
// bit-for-bit.
func (m *Model) effMemLatency() float64 {
	f := m.localFraction()
	if f == 1 {
		return m.MemLatency
	}
	return f*m.MemLatency + (1-f)*m.NUMA.RemoteLatency
}

// effTLBMissCost is the placement-weighted page-walk cost: the walk's
// own memory accesses cross the interconnect for the remote fraction.
func (m *Model) effTLBMissCost() float64 {
	f := m.localFraction()
	if f == 1 {
		return m.TLB.MissCost
	}
	return m.TLB.MissCost + (1-f)*m.NUMA.RemoteTLBCost
}

// PageSize returns the page size of the current mode.
func (m *Model) PageSize() int {
	if m.Mode == BigMemory {
		return m.LargePageBytes
	}
	return m.PageBytes
}

// TLBReach returns the address range the TLB covers without misses under
// the current mode: entries times page size.
func (m *Model) TLBReach() int { return m.TLB.Entries * m.PageSize() }

// occupancy is the modeled fraction of accesses that hit within a
// capacity of c bytes when chasing uniformly over ws bytes. A sharp
// logistic in log-space stands in for the capacity-miss transition: 1/2
// exactly at ws == c, saturating within about a quarter octave either
// side. The sharpness keeps the ladder's plateaus flat enough for
// knee-point fitting while staying smooth and differentiable.
func occupancy(ws, c int) float64 {
	if ws <= 0 || c <= 0 {
		return 0
	}
	r := float64(ws) / float64(c)
	return 1 / (1 + math.Pow(r, 16))
}

// LoadLatency returns the expected per-access latency of a random
// dependent chase over a working set of ws bytes: the capacity-weighted
// mix of level latencies, plus the TLB page-walk cost for the fraction
// of accesses that fall outside TLB reach.
func (m *Model) LoadLatency(ws int) float64 {
	lat := 0.0
	covered := 0.0
	for _, l := range m.Levels {
		f := occupancy(ws, l.Capacity)
		if f > covered {
			lat += (f - covered) * l.Latency
			covered = f
		}
	}
	lat += (1 - covered) * m.effMemLatency()
	lat += (1 - occupancy(ws, m.TLBReach())) * m.effTLBMissCost()
	return lat
}

// Latency answers the full modeled question in one call: the expected
// per-access latency of a random dependent chase over ws bytes under
// the given mapping mode and page-placement policy. It is equivalent
// to m.WithMode(mode).WithPlacement(p).LoadLatency(ws); the receiver's
// own Mode and Placement are ignored.
func (m *Model) Latency(ws int, mode Mode, p Placement) float64 {
	c := *m
	c.Mode, c.Placement = mode, p
	return c.LoadLatency(ws)
}

// PlacementSlowdown returns the modeled cost of a placement policy at
// one working set: Latency under p divided by Latency under the
// all-local FirstTouch baseline, in the same mapping mode. It is
// exactly 1 on UMA models and for cache-resident working sets.
func (m *Model) PlacementSlowdown(ws int, mode Mode, p Placement) float64 {
	return m.Latency(ws, mode, p) / m.Latency(ws, mode, FirstTouch)
}

// FirstTouchCost returns the modeled one-time cost of faulting in a
// working set of ws bytes: pages times the per-fault cost in Paged mode,
// zero in BigMemory mode (the address space is mapped up front).
func (m *Model) FirstTouchCost(ws int) float64 {
	if m.Mode == BigMemory {
		return 0
	}
	pages := (ws + m.PageBytes - 1) / m.PageBytes
	return float64(pages) * m.PageFaultCost
}

// Ladder evaluates the model over the same geometric working-set
// schedule the measured sweep uses, returning the modeled latency
// ladder.
func (m *Model) Ladder(minBytes, maxBytes, pointsPerOctave int) []Sample {
	sizes := SweepSizes(minBytes, maxBytes, pointsPerOctave, 64)
	out := make([]Sample, 0, len(sizes))
	for _, sz := range sizes {
		out = append(out, Sample{Bytes: sz, Seconds: m.LoadLatency(sz)})
	}
	return out
}
