package mem

import (
	"fmt"
	"math"
)

// Mode selects how the model's address space is mapped, the axis the
// source study compares.
type Mode int

const (
	// Paged is a demand-paged address space built from small (base)
	// pages: short TLB reach, and a per-page fault cost on first touch.
	Paged Mode = iota
	// BigMemory is a statically mapped address space built from large
	// pages: TLB reach typically covers all of memory, and there are no
	// demand-paging faults.
	BigMemory
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == BigMemory {
		return "bigmem"
	}
	return "paged"
}

// Level is one cache level of the modeled hierarchy.
type Level struct {
	Name     string
	Capacity int     // bytes
	Latency  float64 // load-to-use latency of a hit, in seconds
}

// TLB models the translation lookaside buffer.
type TLB struct {
	Entries  int     // entries (assumed shared across page sizes)
	MissCost float64 // page-walk cost added to a missing access, in seconds
}

// Model is the analytic memory-hierarchy model attached to a platform
// preset (cluster.Model.Mem). It answers the same question the probe
// kernels measure: the expected per-access latency of a random dependent
// chase over a given working set.
type Model struct {
	Name string
	// Levels are the cache levels in ascending capacity order.
	Levels []Level
	// MemLatency is the latency of a load served by main memory.
	MemLatency float64
	TLB        TLB
	// PageBytes is the base page size used in Paged mode;
	// LargePageBytes is the page size used in BigMemory mode.
	PageBytes      int
	LargePageBytes int
	// PageFaultCost is the demand-paging cost of first-touching one
	// base page (Paged mode only), in seconds.
	PageFaultCost float64
	// Mode is the platform's default mapping mode.
	Mode Mode
}

// Validate checks the model is internally consistent.
func (m *Model) Validate() error {
	if m == nil {
		return fmt.Errorf("mem: nil model")
	}
	if len(m.Levels) == 0 {
		return fmt.Errorf("mem: model %q has no cache levels", m.Name)
	}
	prevCap := 0
	prevLat := 0.0
	for _, l := range m.Levels {
		if l.Capacity <= prevCap {
			return fmt.Errorf("mem: model %q level %s capacity %d not ascending", m.Name, l.Name, l.Capacity)
		}
		if l.Latency <= prevLat {
			return fmt.Errorf("mem: model %q level %s latency %g not ascending", m.Name, l.Name, l.Latency)
		}
		prevCap, prevLat = l.Capacity, l.Latency
	}
	if m.MemLatency <= prevLat {
		return fmt.Errorf("mem: model %q memory latency %g not above last level", m.Name, m.MemLatency)
	}
	if m.TLB.Entries <= 0 || m.TLB.MissCost < 0 {
		return fmt.Errorf("mem: model %q invalid TLB %+v", m.Name, m.TLB)
	}
	if m.PageBytes <= 0 || m.LargePageBytes < m.PageBytes {
		return fmt.Errorf("mem: model %q invalid page sizes %d/%d", m.Name, m.PageBytes, m.LargePageBytes)
	}
	if m.PageFaultCost < 0 {
		return fmt.Errorf("mem: model %q negative page-fault cost", m.Name)
	}
	return nil
}

// WithMode returns a copy of the model switched to the given mode.
func (m *Model) WithMode(mode Mode) *Model {
	c := *m
	c.Mode = mode
	return &c
}

// PageSize returns the page size of the current mode.
func (m *Model) PageSize() int {
	if m.Mode == BigMemory {
		return m.LargePageBytes
	}
	return m.PageBytes
}

// TLBReach returns the address range the TLB covers without misses under
// the current mode: entries times page size.
func (m *Model) TLBReach() int { return m.TLB.Entries * m.PageSize() }

// occupancy is the modeled fraction of accesses that hit within a
// capacity of c bytes when chasing uniformly over ws bytes. A sharp
// logistic in log-space stands in for the capacity-miss transition: 1/2
// exactly at ws == c, saturating within about a quarter octave either
// side. The sharpness keeps the ladder's plateaus flat enough for
// knee-point fitting while staying smooth and differentiable.
func occupancy(ws, c int) float64 {
	if ws <= 0 || c <= 0 {
		return 0
	}
	r := float64(ws) / float64(c)
	return 1 / (1 + math.Pow(r, 16))
}

// LoadLatency returns the expected per-access latency of a random
// dependent chase over a working set of ws bytes: the capacity-weighted
// mix of level latencies, plus the TLB page-walk cost for the fraction
// of accesses that fall outside TLB reach.
func (m *Model) LoadLatency(ws int) float64 {
	lat := 0.0
	covered := 0.0
	for _, l := range m.Levels {
		f := occupancy(ws, l.Capacity)
		if f > covered {
			lat += (f - covered) * l.Latency
			covered = f
		}
	}
	lat += (1 - covered) * m.MemLatency
	lat += (1 - occupancy(ws, m.TLBReach())) * m.TLB.MissCost
	return lat
}

// FirstTouchCost returns the modeled one-time cost of faulting in a
// working set of ws bytes: pages times the per-fault cost in Paged mode,
// zero in BigMemory mode (the address space is mapped up front).
func (m *Model) FirstTouchCost(ws int) float64 {
	if m.Mode == BigMemory {
		return 0
	}
	pages := (ws + m.PageBytes - 1) / m.PageBytes
	return float64(pages) * m.PageFaultCost
}

// Ladder evaluates the model over the same geometric working-set
// schedule the measured sweep uses, returning the modeled latency
// ladder.
func (m *Model) Ladder(minBytes, maxBytes, pointsPerOctave int) []Sample {
	sizes := SweepSizes(minBytes, maxBytes, pointsPerOctave, 64)
	out := make([]Sample, 0, len(sizes))
	for _, sz := range sizes {
		out = append(out, Sample{Bytes: sz, Seconds: m.LoadLatency(sz)})
	}
	return out
}
