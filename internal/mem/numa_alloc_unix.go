//go:build unix

package mem

import (
	"syscall"
	"unsafe"
)

// allocPages returns a page-aligned buffer of words uint32s whose
// pages have never been touched, plus the function that releases it.
// Fresh anonymous mmap is what makes the placement policies real: the
// kernel defers both the zero-fill and the node binding of each page
// to its first fault, so the policy-chosen worker that writes first
// genuinely decides where the page lives. A make()-backed buffer
// cannot promise that (the allocator zeroes reused spans on the
// allocating thread), hence the allocAligned fallback is only for
// platforms or failures where mmap is unavailable.
func allocPages(words int) ([]uint32, func()) {
	b, err := syscall.Mmap(-1, 0, words*4,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil || len(b) < words*4 {
		return allocAligned(words)
	}
	buf := unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), words)
	return buf, func() { syscall.Munmap(b) }
}
