package mem

import (
	"os"
	"unsafe"
)

// osPageBytes is the granularity placement faulting assumes — the
// host's real base page size, not an x86 assumption: on 16K/64K-page
// kernels (arm64 distros, ppc64le) a 4096-byte unit would stripe
// several "placement pages" into one real page, whose node binding
// would then go to whichever worker faulted it first.
var (
	osPageBytes = os.Getpagesize()
	osPageWords = osPageBytes / 4
)

// allocAligned is the portable probe-buffer allocator: a make()-backed
// slice re-sliced to start on an OS page boundary. Alignment is exact,
// but the Go allocator may hand back a reused span whose pages were
// already faulted in (and zeroed) by another thread, so page placement
// through this path is best-effort — the mmap path (numa_alloc_unix.go)
// is what guarantees untouched pages.
func allocAligned(words int) ([]uint32, func()) {
	raw := make([]uint32, words+osPageWords-1)
	off := 0
	if r := uintptr(unsafe.Pointer(&raw[0])) % uintptr(osPageBytes); r != 0 {
		off = int((uintptr(osPageBytes) - r) / 4)
	}
	return raw[off : off+words : off+words], func() {}
}
