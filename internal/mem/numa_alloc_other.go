//go:build !unix

package mem

// allocPages falls back to the aligned heap allocator where anonymous
// mmap is not portable; see allocAligned for the weaker guarantee.
func allocPages(words int) ([]uint32, func()) { return allocAligned(words) }
