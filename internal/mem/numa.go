package mem

import (
	"fmt"
	"time"

	"repro/internal/par"
)

// The NUMA-aware probe: the measured counterpart of the model's
// Placement axis, mirroring how experiment F7 ablates first-touch
// initialization on the STREAM (bandwidth) side, here on the latency
// side. The working set's pages are faulted in by workers of a pinned
// team (par.NewPinnedTeam) according to a Placement policy, then a
// single pinned worker chases through them. On a first-touch operating
// system the faulting thread's node is where a page lands, so the
// policy controls the chaser's local/remote mix:
//
//   - FirstTouch: the chasing worker faults every page — all local.
//   - Interleave: pages are striped round-robin across all workers.
//   - Remote: only the non-chasing workers fault pages.
//
// Pinned teams place worker w on NUMA node w mod par.NUMANodes() (on
// Linux, via sysfs topology + sched_setaffinity), and the probe's
// default team size is the node count — so by default there is exactly
// one worker per node, Remote pages are all genuinely remote to the
// chaser, and Interleave stripes across every node. On a single-node
// (UMA) host the three curves coincide, which is itself the measured
// analogue of the model's degenerate case.

// NUMAChaseConfig configures one placement-controlled pointer-chase
// measurement.
type NUMAChaseConfig struct {
	// Bytes, Stride, Iters, Trials, Seed follow ChaseConfig semantics.
	Bytes, Stride, Iters, Trials int
	Seed                         uint64
	// Threads is the pinned team size used for initialization. The
	// default is par.NUMANodes() (minimum 2, so Remote always has a
	// non-chasing worker to fault from): with one worker per node —
	// which pinned teams arrange on Linux, worker w landing on node
	// w mod nodes — the worker-indexed policies below are exactly
	// node placement. Oversized teams dilute Remote: workers beyond
	// the node count wrap back onto the chaser's node.
	Threads int
	// PageBytes is the placement granularity: pages are assigned to
	// workers in units of this size (default os.Getpagesize(); must be
	// a positive multiple of both Stride and the OS page size, so a
	// placement page is a whole number of real pages).
	PageBytes int
	// Policy selects which workers fault the pages in.
	Policy Placement
}

func (c NUMAChaseConfig) normalize() NUMAChaseConfig {
	if c.Stride <= 0 {
		c.Stride = 64
	}
	if c.Iters <= 0 {
		c.Iters = 1 << 18
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Threads <= 0 {
		c.Threads = par.NUMANodes()
	}
	if c.Threads < 2 {
		c.Threads = 2
	}
	if c.PageBytes <= 0 {
		c.PageBytes = osPageBytes
	}
	return c
}

func (c NUMAChaseConfig) validate() error {
	if err := (ChaseConfig{Bytes: c.Bytes, Stride: c.Stride}).validate(); err != nil {
		return err
	}
	if c.PageBytes%c.Stride != 0 {
		return fmt.Errorf("mem: page size %d is not a multiple of stride %d", c.PageBytes, c.Stride)
	}
	if c.PageBytes%osPageBytes != 0 {
		return fmt.Errorf("mem: page size %d is not a multiple of the %d-byte OS page", c.PageBytes, osPageBytes)
	}
	return nil
}

// NUMAChase measures dependent-load latency over a working set whose
// pages were faulted in under the given placement policy by a pinned
// worker team, then chased from the team's worker 0. It creates (and
// closes) its own team; NUMALadder amortizes one team over a sweep.
func NUMAChase(cfg NUMAChaseConfig) (ChaseResult, error) {
	cfg = cfg.normalize()
	if err := cfg.validate(); err != nil {
		return ChaseResult{}, err
	}
	team := par.NewPinnedTeam(cfg.Threads)
	defer team.Close()
	return numaChaseOn(team, cfg)
}

// numaChaseOn runs one placement-controlled chase on an existing
// pinned team. Worker 0 is always the chaser; the policy decides which
// workers fault the pages in before the links are written.
func numaChaseOn(team *par.Team, cfg NUMAChaseConfig) (ChaseResult, error) {
	nslots := cfg.Bytes / cfg.Stride
	spaceWords := cfg.Stride / 4
	words := nslots * spaceWords
	// A page-aligned, never-touched buffer (anonymous mmap where
	// available): the kernel binds each page to a node at its first
	// fault, so whoever writes a page first decides where it lives.
	buf, free := allocPages(words)
	defer free()

	// Fault every OS page from its placement page's policy-chosen
	// worker. This must happen before any other write to buf —
	// everything after (linking, walking) only rewrites placed pages.
	pageWords := cfg.PageBytes / 4
	npages := (words + pageWords - 1) / pageWords
	team.Run(func(w int) {
		for pg := 0; pg < npages; pg++ {
			if numaPageOwner(pg, team.Size(), cfg.Policy) != w {
				continue
			}
			hi := (pg + 1) * pageWords
			if hi > words {
				hi = words
			}
			for i := pg * pageWords; i < hi; i += osPageWords {
				buf[i] = 0
			}
		}
	})

	start := linkCycle(buf, nslots, spaceWords, 0, cfg.Seed)

	// Time the chase on worker 0, the thread the placement policy is
	// defined against. The warm-up pass loads caches and TLB but
	// cannot move pages — they are already placed.
	var res ChaseResult
	team.Run(func(w int) {
		if w != 0 {
			return
		}
		p := walk(buf, start, nslots)
		best := 0.0
		for t := 0; t < cfg.Trials; t++ {
			t0 := time.Now()
			p = walk(buf, p, cfg.Iters)
			dt := time.Since(t0).Seconds()
			if t == 0 || dt < best {
				best = dt
			}
		}
		res = ChaseResult{
			Bytes:    nslots * cfg.Stride,
			Slots:    nslots,
			Seconds:  best / float64(cfg.Iters),
			Accesses: cfg.Iters,
			Checksum: p,
		}
	})
	return res, nil
}

// numaPageOwner returns the team worker that first-touches page pg
// under a policy. Worker 0 is the chaser, so FirstTouch assigns every
// page to it, Remote to everyone but it, and Interleave stripes pages
// across the whole team.
func numaPageOwner(pg, teamSize int, policy Placement) int {
	switch policy {
	case Interleave:
		return pg % teamSize
	case Remote:
		return 1 + pg%(teamSize-1)
	default: // FirstTouch
		return 0
	}
}

// NUMALadderConfig configures a placement-controlled working-set sweep.
type NUMALadderConfig struct {
	// MinBytes, MaxBytes, PointsPerOctave follow LadderConfig
	// semantics (defaults 4 KiB, 4 MiB, 2).
	MinBytes, MaxBytes, PointsPerOctave int
	// Stride, Iters, Trials, Seed, Threads, PageBytes, Policy are
	// passed through to each NUMAChase.
	Stride, Iters, Trials int
	Seed                  uint64
	Threads, PageBytes    int
	Policy                Placement
}

func (c NUMALadderConfig) normalize() NUMALadderConfig {
	if c.MinBytes <= 0 {
		c.MinBytes = 4 << 10
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 4 << 20
	}
	if c.PointsPerOctave <= 0 {
		c.PointsPerOctave = 2
	}
	return c
}

// NUMALadder runs a full working-set sweep under one placement policy
// on a single pinned team, returning one Sample per size in ascending
// order — the placement-controlled latency ladder. Comparing the
// FirstTouch and Remote ladders of one machine is what recovers the
// local/remote split (perfmodel.FitNUMASplit).
func NUMALadder(cfg NUMALadderConfig) ([]Sample, error) {
	cfg = cfg.normalize()
	sizes := SweepSizes(cfg.MinBytes, cfg.MaxBytes, cfg.PointsPerOctave, cfg.Stride)
	if len(sizes) == 0 {
		return nil, fmt.Errorf("mem: empty sweep [%d,%d]", cfg.MinBytes, cfg.MaxBytes)
	}
	probe := NUMAChaseConfig{
		Stride: cfg.Stride, Iters: cfg.Iters, Trials: cfg.Trials, Seed: cfg.Seed,
		Threads: cfg.Threads, PageBytes: cfg.PageBytes, Policy: cfg.Policy,
	}.normalize()
	team := par.NewPinnedTeam(probe.Threads)
	defer team.Close()
	out := make([]Sample, 0, len(sizes))
	for _, sz := range sizes {
		probe.Bytes = sz
		if err := probe.validate(); err != nil {
			return nil, err
		}
		res, err := numaChaseOn(team, probe)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Sample())
	}
	return out, nil
}
