// Entry format v2 tests: per-experiment selective invalidation on
// Open, legacy-entry migration, and — extending the crash-scenario
// suite — every state a crash mid-migration can leave behind. The
// invariant under test throughout: a deploy invalidates exactly the
// delta, and nothing a crash leaves on disk is ever served stale or
// reported as corruption.
package diskcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// writeLegacyEntry plants a pre-versioning (format-absent) entry file
// as the old binary would have written it: whole-store fingerprint,
// no format field.
func writeLegacyEntry(t *testing.T, dir, storeFP string, k Key, body string) {
	t.Helper()
	e := testEntry(body)
	f := fileEntry{
		Fingerprint: storeFP,
		ID:          k.ID,
		Scale:       k.Scale,
		Platform:    k.Platform,
		ContentType: k.ContentType,
		ETag:        e.ETag,
		ElapsedNS:   int64(e.Elapsed),
		SHA256:      bodySum(e.Body),
		Body:        e.Body,
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, entryName(k)), append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeMarker plants the store's FINGERPRINT generation marker.
func writeMarker(t *testing.T, dir, fp string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, fpFile), []byte(fp), 0o644); err != nil {
		t.Fatal(err)
	}
}

func perIDFingerprints(global string, ids map[string]string) Fingerprints {
	return Fingerprints{Global: global, PerID: ids}
}

// migratingFPS is perIDFingerprints with the operator's registry-
// neutral-upgrade assertion set, which the legacy-migration tests
// need: without it legacy entries are purged, never rewritten.
func migratingFPS(global string, ids map[string]string) Fingerprints {
	return Fingerprints{Global: global, PerID: ids, MigrateLegacy: true}
}

// TestSelectiveInvalidationOnOpen is the tentpole behavior at the
// store level: a generation change purges exactly the experiments
// whose fingerprint moved, and the survivors still hit.
func TestSelectiveInvalidationOnOpen(t *testing.T) {
	dir := t.TempDir()
	keyA := Key{ID: "A", Scale: "quick", ContentType: "text/plain"}
	keyAjson := Key{ID: "A", Scale: "quick", ContentType: "application/json"}
	keyB := Key{ID: "B", Scale: "quick", ContentType: "text/plain"}

	st := mustOpenFPS(t, dir, perIDFingerprints("gen1", map[string]string{"A": "fpA1", "B": "fpB1"}), 0)
	for _, k := range []Key{keyA, keyAjson, keyB} {
		if err := st.Put(k, testEntry("body of "+k.ID+"/"+k.ContentType)); err != nil {
			t.Fatal(err)
		}
	}

	// Deploy: experiment A's dependencies changed, B's did not.
	st2 := mustOpenFPS(t, dir, perIDFingerprints("gen2", map[string]string{"A": "fpA2", "B": "fpB1"}), 0)
	if n := st2.StalePurged(); n != 2 {
		t.Errorf("StalePurged = %d, want 2 (both A representations)", n)
	}
	if _, ok := st2.Get(keyA); ok {
		t.Error("invalidated experiment A still served")
	}
	if _, ok := st2.Get(keyAjson); ok {
		t.Error("invalidated experiment A (json) still served")
	}
	if got, ok := st2.Get(keyB); !ok || string(got.Body) != "body of B/text/plain" {
		t.Errorf("unaffected experiment B lost: ok=%v body=%q", ok, got.Body)
	}
	if n := st2.Len(); n != 1 {
		t.Errorf("Len = %d after selective purge, want 1", n)
	}
}

// TestSameGenerationOpenPurgesNothing pins the fast path: matching
// Global marker means zero entry reads, zero purges.
func TestSameGenerationOpenPurgesNothing(t *testing.T) {
	dir := t.TempDir()
	fps := perIDFingerprints("gen1", map[string]string{"T1": "fpT1"})
	st := mustOpenFPS(t, dir, fps, 0)
	if err := st.Put(testKey, testEntry("stays")); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpenFPS(t, dir, fps, 0)
	if n := st2.StalePurged(); n != 0 {
		t.Errorf("StalePurged = %d on same-generation open, want 0", n)
	}
	if _, ok := st2.Get(testKey); !ok {
		t.Error("entry lost across same-generation reopen")
	}
}

// TestLegacyEntryMigratedOnOpen: with the operator's MigrateLegacy
// assertion, a pre-versioning entry matching the store's recorded old
// generation is rewritten in the current format under its
// experiment's fingerprint — and then HITS, where the old code would
// have purged the store.
func TestLegacyEntryMigratedOnOpen(t *testing.T) {
	dir := t.TempDir()
	writeLegacyEntry(t, dir, "legacy-gen", testKey, "v1 era result")
	writeMarker(t, dir, "legacy-gen")

	st := mustOpenFPS(t, dir, migratingFPS("gen2", map[string]string{"T1": "fpT1"}), 0)
	if n := st.Migrated(); n != 1 {
		t.Errorf("Migrated = %d, want 1", n)
	}
	if n := st.StalePurged(); n != 0 {
		t.Errorf("StalePurged = %d, want 0 (migration is not a purge)", n)
	}
	if got, ok := st.Get(testKey); !ok || string(got.Body) != "v1 era result" {
		t.Fatalf("migrated entry: ok=%v body=%q", ok, got.Body)
	}
	// The rewrite is durable: on disk, the entry now carries the
	// current format and the per-experiment fingerprint.
	b, err := os.ReadFile(filepath.Join(dir, entryName(testKey)))
	if err != nil {
		t.Fatal(err)
	}
	var f fileEntry
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatal(err)
	}
	if f.Format != entryFormat || f.Fingerprint != "fpT1" {
		t.Errorf("on-disk entry after migration: format=%d fp=%q, want format=%d fp=%q",
			f.Format, f.Fingerprint, entryFormat, "fpT1")
	}
}

// TestLegacyEntryPurgedWithoutOptIn pins the default migration
// policy: a legacy entry carries only the whole-store fingerprint,
// which cannot show whether THIS upgrade deploy changed its
// experiment, so without the operator's MigrateLegacy assertion it is
// purged as a format invalidation even when it matches the recorded
// old generation — a cold start, never a potentially stale result.
func TestLegacyEntryPurgedWithoutOptIn(t *testing.T) {
	dir := t.TempDir()
	writeLegacyEntry(t, dir, "legacy-gen", testKey, "cannot prove freshness")
	writeMarker(t, dir, "legacy-gen")

	st := mustOpenFPS(t, dir, perIDFingerprints("gen2", map[string]string{"T1": "fpT1"}), 0)
	if n := st.Migrated(); n != 0 {
		t.Errorf("Migrated = %d without opt-in, want 0", n)
	}
	if n := st.StalePurged(); n != 1 {
		t.Errorf("StalePurged = %d, want 1", n)
	}
	if _, ok := st.Get(testKey); ok {
		t.Error("un-migratable legacy entry served")
	}
}

// TestRemovedExperimentEntriesPurged: with a per-experiment map, an
// entry whose experiment is no longer registered must not survive the
// reconcile by falling back to the global fingerprint — it is purged
// as an experiment invalidation, whether current-format or legacy
// (even under MigrateLegacy, which has no fingerprint to stamp it
// with).
func TestRemovedExperimentEntriesPurged(t *testing.T) {
	dir := t.TempDir()
	keyDead := Key{ID: "GONE", Scale: "quick", ContentType: "text/plain"}
	keyDeadLegacy := Key{ID: "ALSOGONE", Scale: "quick", ContentType: "text/plain"}
	keyLive := Key{ID: "T1", Scale: "quick", ContentType: "text/plain"}
	writeCurrentEntry(t, dir, "fpGONE", keyDead, "experiment was removed")
	writeLegacyEntry(t, dir, "legacy-gen", keyDeadLegacy, "removed before versioning")
	writeCurrentEntry(t, dir, "fpT1", keyLive, "still registered")
	writeMarker(t, dir, "legacy-gen")

	st := mustOpenFPS(t, dir, migratingFPS("gen2", map[string]string{"T1": "fpT1"}), 0)
	if n := st.StalePurged(); n != 2 {
		t.Errorf("StalePurged = %d, want 2 (both dead-experiment entries)", n)
	}
	if _, ok := st.Get(keyDead); ok {
		t.Error("current-format entry for a removed experiment served")
	}
	if _, ok := st.Get(keyDeadLegacy); ok {
		t.Error("legacy entry for a removed experiment served")
	}
	if got, ok := st.Get(keyLive); !ok || string(got.Body) != "still registered" {
		t.Errorf("live experiment's entry: ok=%v body=%q", ok, got.Body)
	}
	// And Put refuses to write an entry it could never validate.
	if err := st.Put(keyDead, testEntry("no fingerprint")); err == nil {
		t.Error("Put for an unregistered experiment succeeded, want error")
	}
}

// TestLegacyEntryFromForeignGenerationPurged: a legacy entry whose
// embedded fingerprint does NOT match the recorded old generation
// cannot be trusted (legacy stores guaranteed entries matched their
// marker; a mismatch means a raced or corrupted history) and is
// removed as a format invalidation.
func TestLegacyEntryFromForeignGenerationPurged(t *testing.T) {
	dir := t.TempDir()
	writeLegacyEntry(t, dir, "some-other-gen", testKey, "untrusted")
	writeMarker(t, dir, "legacy-gen")

	st := mustOpenFPS(t, dir, migratingFPS("gen2", nil), 0)
	if n := st.StalePurged(); n != 1 {
		t.Errorf("StalePurged = %d, want 1", n)
	}
	if _, ok := st.Get(testKey); ok {
		t.Error("foreign-generation legacy entry served")
	}
}

// TestLegacyEntryWithoutMarkerPurged: with no recorded old generation
// (first versioned open of a marker-less directory) legacy entries
// have nothing to validate against and are purged, not migrated.
func TestLegacyEntryWithoutMarkerPurged(t *testing.T) {
	dir := t.TempDir()
	writeLegacyEntry(t, dir, "legacy-gen", testKey, "unverifiable")

	st := mustOpenFPS(t, dir, migratingFPS("gen2", nil), 0)
	if n := st.StalePurged(); n != 1 {
		t.Errorf("StalePurged = %d, want 1", n)
	}
	if _, ok := st.Get(testKey); ok {
		t.Error("unverifiable legacy entry served")
	}
}

// Crash-during-migration states. The migration writes the rewritten
// entry to a temp file, fsyncs, renames, and only after the whole
// reconcile writes the new FINGERPRINT marker — so a kill at any
// instant leaves one of three states, each of which the next open
// handles without serving stale bytes or reporting corruption.

// State 1: killed before the rename — orphan temp file, legacy entry
// intact, marker still old. The next open simply re-runs the
// migration; the entry comes back as a HIT.
func TestCrashBeforeMigrationRenameSelfHeals(t *testing.T) {
	dir := t.TempDir()
	writeLegacyEntry(t, dir, "legacy-gen", testKey, "survives the crash")
	writeMarker(t, dir, "legacy-gen")
	// The killed writer's half-written temp.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-killed"), []byte(`{"format":2,"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}

	st := mustOpenFPS(t, dir, migratingFPS("gen2", map[string]string{"T1": "fpT1"}), 0)
	if got, ok := st.Get(testKey); !ok || string(got.Body) != "survives the crash" {
		t.Errorf("re-migrated entry: ok=%v body=%q", ok, got.Body)
	}
	if n := st.Migrated(); n != 1 {
		t.Errorf("Migrated = %d, want 1", n)
	}
}

// State 2: killed after some renames but before the marker — a mix of
// migrated and legacy entries under the old marker. The next open
// keeps the already-migrated (their per-experiment fingerprint
// validates), migrates the rest, and ends fully consistent.
func TestCrashMidReconcileResumesIdempotently(t *testing.T) {
	dir := t.TempDir()
	fps := migratingFPS("gen2", map[string]string{"A": "fpA", "B": "fpB"})
	keyA := Key{ID: "A", Scale: "quick", ContentType: "text/plain"}
	keyB := Key{ID: "B", Scale: "quick", ContentType: "text/plain"}
	writeLegacyEntry(t, dir, "legacy-gen", keyB, "still legacy")
	writeMarker(t, dir, "legacy-gen")
	// A was already migrated before the kill: plant its current-format
	// entry directly.
	{
		e := testEntry("already migrated")
		f := fileEntry{Format: entryFormat, Fingerprint: "fpA", ID: keyA.ID, Scale: keyA.Scale,
			ContentType: keyA.ContentType, ETag: e.ETag, ElapsedNS: int64(e.Elapsed),
			SHA256: bodySum(e.Body), Body: e.Body}
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, entryName(keyA)), append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st := mustOpenFPS(t, dir, fps, 0)
	if got, ok := st.Get(keyA); !ok || string(got.Body) != "already migrated" {
		t.Errorf("pre-migrated entry: ok=%v body=%q", ok, got.Body)
	}
	if got, ok := st.Get(keyB); !ok || string(got.Body) != "still legacy" {
		t.Errorf("resumed-migration entry: ok=%v body=%q", ok, got.Body)
	}
	if n := st.StalePurged(); n != 0 {
		t.Errorf("StalePurged = %d, want 0", n)
	}
}

// State 3: the legacy entry itself is truncated (external corruption
// discovered during migration). The next open drops it as a checksum
// invalidation — a MISS, never a parse error surfaced to callers.
func TestCrashLeavesTruncatedLegacyEntryReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	writeLegacyEntry(t, dir, "legacy-gen", testKey, "about to be cut short")
	writeMarker(t, dir, "legacy-gen")
	path := filepath.Join(dir, entryName(testKey))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	st := mustOpenFPS(t, dir, migratingFPS("gen2", nil), 0)
	if _, ok := st.Get(testKey); ok {
		t.Error("truncated legacy entry served")
	}
	if n := st.StalePurged(); n != 1 {
		t.Errorf("StalePurged = %d, want 1 (checksum drop)", n)
	}
	// The slot healed: a fresh Put round-trips.
	if err := st.Put(testKey, testEntry("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(testKey); !ok || string(got.Body) != "fresh" {
		t.Errorf("healed slot: ok=%v body=%q", ok, got.Body)
	}
}

// TestFutureFormatEntryIsMissNotDelete: an entry from a format this
// binary doesn't know (a newer sibling's work in a shared directory)
// reads as a miss on Get but is never destroyed.
func TestFutureFormatEntryIsMissNotDelete(t *testing.T) {
	dir := t.TempDir()
	st := mustOpenFPS(t, dir, perIDFingerprints("gen1", nil), 0)
	e := testEntry("from the future")
	f := fileEntry{Format: entryFormat + 1, Fingerprint: "whatever", ID: testKey.ID,
		Scale: testKey.Scale, ContentType: testKey.ContentType, ETag: e.ETag,
		ElapsedNS: int64(e.Elapsed), SHA256: bodySum(e.Body), Body: e.Body}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, entryName(testKey))
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(testKey); ok {
		t.Error("future-format entry served")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("future-format entry deleted on Get: %v", err)
	}
}

// TestInvalidationMetricsFlushAfterOpen: reasons counted during Open's
// reconcile (which necessarily runs before SetMetrics can) land in the
// wired counters, so a post-startup scrape sees the purge.
func TestInvalidationMetricsFlushAfterOpen(t *testing.T) {
	dir := t.TempDir()
	keyA := Key{ID: "A", Scale: "quick", ContentType: "text/plain"}
	keyB := Key{ID: "B", Scale: "quick", ContentType: "text/plain"}
	st := mustOpenFPS(t, dir, perIDFingerprints("gen1", map[string]string{"A": "fpA1", "B": "fpB1"}), 0)
	for _, k := range []Key{keyA, keyB} {
		if err := st.Put(k, testEntry("gen1 "+k.ID)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt B so the reconcile counts one checksum drop alongside A's
	// experiment drop.
	if err := os.Truncate(filepath.Join(dir, entryName(keyB)), 10); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpenFPS(t, dir, perIDFingerprints("gen2", map[string]string{"A": "fpA2", "B": "fpB1"}), 0)
	reg := obs.NewRegistry()
	exp := reg.Counter("inval", "", obs.L("reason", ReasonExperiment))
	form := reg.Counter("inval", "", obs.L("reason", ReasonFormat))
	sum := reg.Counter("inval", "", obs.L("reason", ReasonChecksum))
	st2.SetMetrics(Metrics{
		InvalidatedExperiment: exp,
		InvalidatedFormat:     form,
		InvalidatedChecksum:   sum,
	})
	if got := exp.Value(); got != 1 {
		t.Errorf("experiment invalidations = %d, want 1", got)
	}
	if got := form.Value(); got != 0 {
		t.Errorf("format invalidations = %d, want 0", got)
	}
	if got := sum.Value(); got != 1 {
		t.Errorf("checksum invalidations = %d, want 1", got)
	}
	// Post-wire invalidations count directly: plant a stale-fp entry
	// and Get it.
	writeCurrentEntry(t, dir, "fpA-stale", keyA, "stale")
	if _, ok := st2.Get(keyA); ok {
		t.Fatal("stale entry served")
	}
	if got := exp.Value(); got != 2 {
		t.Errorf("experiment invalidations after stale Get = %d, want 2", got)
	}
}

// writeCurrentEntry plants a current-format entry with an arbitrary
// fingerprint, bypassing Put's stamping.
func writeCurrentEntry(t *testing.T, dir, fp string, k Key, body string) {
	t.Helper()
	e := testEntry(body)
	f := fileEntry{Format: entryFormat, Fingerprint: fp, ID: k.ID, Scale: k.Scale,
		Platform: k.Platform, ContentType: k.ContentType, ETag: e.ETag,
		ElapsedNS: int64(e.Elapsed), SHA256: bodySum(e.Body), Body: e.Body}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, entryName(k)), append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustOpenFPS(t *testing.T, dir string, fps Fingerprints, maxBytes int64) *Store {
	t.Helper()
	st, err := Open(dir, fps, maxBytes)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}
