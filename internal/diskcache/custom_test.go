package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sizeOfEntry measures one persisted entry file so eviction tests can
// set budgets in whole-entry units.
func sizeOfEntry(t *testing.T, k Key, body string) int64 {
	t.Helper()
	dir := t.TempDir()
	probe := mustOpen(t, dir, "fp1", 0)
	if err := probe.Put(k, testEntry(body)); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, entryName(k)))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func customKey(i int) Key {
	return Key{ID: "T1", Scale: "quick",
		Platform: fmt.Sprintf("custom-%012d", i), ContentType: "text/plain"}
}

func TestCustomChurnNeverEvictsPresets(t *testing.T) {
	// Custom entries inherit the main budget when no separate quota is
	// set — but as their own namespace: a preset result must survive
	// any amount of custom churn, because a hostile or throwaway
	// custom registration must never cost a preset its cache.
	body := strings.Repeat("x", 4096)
	entSize := sizeOfEntry(t, customKey(0), body)

	dir := t.TempDir()
	st := mustOpen(t, dir, "fp1", 2*entSize+entSize/2)
	preset := Key{ID: "T1", Scale: "quick", Platform: "gige-8n", ContentType: "text/plain"}
	if err := st.Put(preset, testEntry(body)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond) // distinct mtimes on coarse filesystems
		if err := st.Put(customKey(i), testEntry(body)); err != nil {
			t.Fatal(err)
		}
	}

	if _, ok := st.Get(preset); !ok {
		t.Error("custom churn evicted a preset entry")
	}
	// The custom namespace itself was held to its budget: the oldest
	// uploads are gone, the newest survives.
	if _, ok := st.Get(customKey(0)); ok {
		t.Error("oldest custom entry survived past the namespace budget")
	}
	if _, ok := st.Get(customKey(4)); !ok {
		t.Error("just-written custom entry evicted by its own Put")
	}
	survivors := 0
	for i := 0; i < 5; i++ {
		if _, ok := st.Get(customKey(i)); ok {
			survivors++
		}
	}
	if survivors > 2 {
		t.Errorf("%d custom entries fit a 2-entry budget", survivors)
	}
}

func TestCustomQuotaIndependentOfPresetBudget(t *testing.T) {
	// An explicit custom quota bounds customs while presets stay
	// unbounded — the daemon's -custom-cache-max-bytes shape.
	body := strings.Repeat("y", 4096)
	entSize := sizeOfEntry(t, customKey(0), body)

	dir := t.TempDir()
	st := mustOpen(t, dir, "fp1", 0) // presets unbounded
	st.SetCustomQuota(entSize + entSize/2)

	presets := make([]Key, 4)
	for i := range presets {
		presets[i] = Key{ID: fmt.Sprintf("E%d", i), Scale: "quick", ContentType: "text/plain"}
		if err := st.Put(presets[i], testEntry(body)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		time.Sleep(10 * time.Millisecond)
		if err := st.Put(customKey(i), testEntry(body)); err != nil {
			t.Fatal(err)
		}
	}

	for _, k := range presets {
		if _, ok := st.Get(k); !ok {
			t.Errorf("preset %s evicted despite an unbounded preset budget", k.ID)
		}
	}
	if _, ok := st.Get(customKey(0)); ok {
		t.Error("custom quota not enforced: oldest custom survived")
	}
	if _, ok := st.Get(customKey(2)); !ok {
		t.Error("newest custom evicted by its own Put")
	}
}

func TestCustomEntryNameClassification(t *testing.T) {
	cases := []struct {
		key  Key
		want bool
	}{
		{Key{ID: "T1", Scale: "quick", Platform: "custom-abcdef012345", ContentType: "text/plain"}, true},
		{Key{ID: "T1", Scale: "quick", Platform: "gige-8n", ContentType: "text/plain"}, false},
		{Key{ID: "T1", Scale: "quick", Platform: "", ContentType: "text/plain"}, false},
		// An experiment ID can't smuggle an entry into the custom
		// namespace: only the platform component is classified.
		{Key{ID: "custom-trick", Scale: "quick", Platform: "ib-8n", ContentType: "text/plain"}, false},
	}
	for _, c := range cases {
		if got := isCustomEntry(entryName(c.key)); got != c.want {
			t.Errorf("isCustomEntry(%q) = %v, want %v", entryName(c.key), got, c.want)
		}
	}
}
