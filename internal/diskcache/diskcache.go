// Package diskcache persists filled experiment results between
// process restarts — the disk layer under internal/serve's in-memory
// cache, shared by the charhpcd daemon and charhpc CLI runs.
//
// A Store is a flat directory of entry files, one per
// (experiment id, scale, platform, content type), each carrying the
// rendered body, its strong ETag, the run's wall time, and the
// fingerprint of the experiment that produced it. Correctness
// properties:
//
//   - Crash safety: entries are written to a temp file, fsynced, and
//     renamed into place, so readers only ever see whole entries.
//   - Corrupt-entry recovery: every body is checksummed at write time;
//     a truncated or bit-rotted file fails validation on Get, is
//     deleted, and reads as a miss (the caller re-runs and re-writes).
//   - Incremental self-invalidation: every entry embeds the
//     per-experiment fingerprint (Fingerprints.For) of the binary that
//     wrote it. When the store's recorded generation matches the
//     caller's global fingerprint, nothing changed and every entry is
//     kept; when it differs, Open walks the entries and removes ONLY
//     those whose experiment fingerprint no longer validates — a
//     deploy that changed one experiment cold-starts that experiment,
//     not the store. Get re-validates per entry, so stale results can
//     never be served even mid-race.
//   - Format migration: entry files carry a format version. Legacy
//     (pre-versioning) entries embedded the whole-store fingerprint,
//     which cannot show what the upgrading deploy itself changed, so
//     by default Open purges them (a one-time cold start). When the
//     operator asserts the upgrade is registry-neutral
//     (Fingerprints.MigrateLegacy), Open instead validates each
//     against the store's recorded legacy generation once and
//     rewrites it in the current format under its experiment's
//     fingerprint. The rewrite is atomic, so a crash mid-migration
//     leaves either the old valid file (re-migrated on the next Open)
//     or the new valid file — never corruption.
//   - Bounded size: with a positive maxBytes budget, Put evicts the
//     least-recently-used (id, scale, platform) groups (Get touches
//     the file's mtime; a group is as recent as its newest member)
//     until the directory fits. Whole groups, because callers read one
//     result's representations all-or-nothing — a partially evicted
//     set could never serve while still consuming budget.
//
// Multiple processes may share one directory: atomic renames make
// concurrent writers last-one-wins per key, and validation makes
// concurrent eviction or purging read as misses, never errors.
package diskcache

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

const (
	entryExt = ".entry"
	fpFile   = "FINGERPRINT"
)

// entryFormat is the current on-disk entry format version. Version 2
// introduced the per-experiment fingerprint; legacy entries (no format
// field) embedded the whole-store fingerprint and are migrated by
// Open. Entries from a FUTURE format are treated as misses but never
// deleted on Get — they may be a newer sibling binary's valid work.
const entryFormat = 2

// Fingerprints carries the caller's registry identity at both
// granularities: Global is the hash of the whole per-experiment map
// (the store's cheap "nothing changed" generation marker), and PerID
// maps each experiment to the fingerprint its entries must embed.
// With PerID nil the store degenerates to the legacy whole-store
// semantics — every entry validates against Global — which is what
// the simpler tests and tools want. With PerID set, an ID absent from
// it is an experiment this binary does not serve: its entries can
// never validate and are purged at the next reconcile.
type Fingerprints struct {
	Global string
	PerID  map[string]string

	// MigrateLegacy opts in to rewriting pre-versioning (v1) entries
	// in the current format instead of purging them. A v1 entry
	// embeds only the whole-store fingerprint, which proves it
	// matched the registry of the PREVIOUS deploy — it cannot show
	// which experiments the upgrade deploy itself changed. Setting
	// this is the operator's assertion that the upgrading deploy is
	// registry-neutral (no experiment, preset, or scale change rides
	// along), so the old entries are still valid under the new
	// per-experiment fingerprints. Unset (the default), legacy
	// entries are purged as format invalidations — a one-time cold
	// start, never a stale result.
	MigrateLegacy bool
}

// For returns the fingerprint entries for the given experiment must
// embed to validate. Empty — matching no entry — for an ID outside a
// non-nil PerID: an experiment this binary does not know cannot
// vouch for cached results.
func (f Fingerprints) For(id string) string {
	if f.PerID == nil {
		return f.Global
	}
	return f.PerID[id]
}

// Invalidation reasons, as counted by the store and exposed by serve
// as charhpc_cache_invalidated_total{reason=...}.
const (
	// ReasonExperiment: the entry's experiment fingerprint no longer
	// matches — its dependencies changed across a deploy.
	ReasonExperiment = "experiment"
	// ReasonFormat: the entry's format is not one this binary writes —
	// a legacy entry that could not be migrated, or an unknown version.
	ReasonFormat = "format"
	// ReasonChecksum: the entry failed integrity validation — corrupt,
	// truncated, misnamed, or unparseable.
	ReasonChecksum = "checksum"
)

// Key identifies one persisted representation: which experiment, at
// which scale, on which platform preset ("" is the experiment's
// default platform set), rendered as which media type (e.g.
// "text/plain").
type Key struct {
	ID          string
	Scale       string
	Platform    string
	ContentType string
}

// Entry is one persisted representation: the rendered body, the strong
// ETag of exactly those bytes, and the wall time of the execution that
// produced them. RunID is an opaque caller-chosen stamp shared by all
// entries of one execution; callers persisting several entries per
// logical result use it to reject mixed sets after concurrent
// last-writer-wins races (the store itself does not interpret it).
type Entry struct {
	ETag    string
	RunID   string
	Elapsed time.Duration
	Body    []byte
}

// fileEntry is the on-disk JSON form of an Entry plus everything
// needed to validate it independently of the caller: the format
// version (the entry header — absent means legacy v1), its own key
// (so a renamed file can't impersonate another), the writer's
// per-experiment fingerprint (whole-store fingerprint in legacy
// entries), and a body checksum.
type fileEntry struct {
	Format      int    `json:"format,omitempty"`
	Fingerprint string `json:"fingerprint"`
	ID          string `json:"id"`
	Scale       string `json:"scale"`
	Platform    string `json:"platform,omitempty"`
	ContentType string `json:"content_type"`
	ETag        string `json:"etag"`
	RunID       string `json:"run_id,omitempty"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	SHA256      string `json:"sha256"`
	Body        []byte `json:"body"`
}

// Store is a disk-backed entry cache rooted at one directory. Safe for
// concurrent use by multiple goroutines and, via atomic renames and
// per-entry validation, by multiple processes sharing the directory.
type Store struct {
	dir       string
	fps       Fingerprints
	maxBytes  int64
	customMax int64      // custom-platform namespace budget; 0 inherits maxBytes
	mu        sync.Mutex // serializes eviction scans and invalidation accounting
	met       Metrics    // optional telemetry sinks; zero value is all no-ops
	metSet    bool
	pending   map[string]int64 // invalidations counted before SetMetrics wired sinks

	stalePurged int64 // entries removed by Open's generation reconcile
	migrated    int64 // legacy entries rewritten in the current format by Open
}

// customPlatformPrefix mirrors cluster.CustomPrefix without importing
// the package: entry filenames whose platform component starts with it
// belong to the custom eviction namespace. The prefix's characters all
// survive escape() verbatim, so matching the escaped filename is exact.
const customPlatformPrefix = "custom-"

// SetCustomQuota bounds the custom-platform namespace to maxBytes of
// entries, independent of the preset budget. 0 (the default) makes
// customs inherit the store's main budget — still as their own
// namespace, so however hard custom traffic churns, preset entries are
// never its eviction victims. Call before the store is shared.
func (st *Store) SetCustomQuota(maxBytes int64) { st.customMax = maxBytes }

// isCustomEntry reports whether an entry filename's platform component
// (the third '@'-separated part) names a custom platform.
func isCustomEntry(name string) bool {
	parts := strings.SplitN(name, "@", 4)
	return len(parts) == 4 && strings.HasPrefix(parts[2], customPlatformPrefix)
}

// Metrics is the store's optional telemetry: set any subset of sinks
// with SetMetrics and the store reports operation latencies, body
// bytes moved, evictions, and per-reason invalidations into them.
// Unset (nil) instruments are no-ops — obs instruments are nil-safe —
// so partial wiring costs nothing.
type Metrics struct {
	GetSeconds *obs.Histogram // latency of every Get (hit or miss)
	PutSeconds *obs.Histogram // latency of every Put (write + eviction scan)
	GetBytes   *obs.Counter   // body bytes served from disk (hits only)
	PutBytes   *obs.Counter   // body bytes written to disk
	Evictions  *obs.Counter   // entry files removed by the LRU budget

	// Per-reason invalidation counters (ReasonExperiment, ReasonFormat,
	// ReasonChecksum). Invalidations that happened before SetMetrics —
	// Open's generation reconcile runs first — are flushed into the
	// counters when they are wired, so a scrape sees the startup purge.
	InvalidatedExperiment *obs.Counter
	InvalidatedFormat     *obs.Counter
	InvalidatedChecksum   *obs.Counter
}

// SetMetrics wires the store's telemetry sinks and flushes
// invalidations counted before wiring (Open runs before SetMetrics).
// Call once, before the store is shared across goroutines.
func (st *Store) SetMetrics(m Metrics) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.met = m
	st.metSet = true
	for reason, n := range st.pending {
		st.invalCounter(reason).Add(n)
	}
	st.pending = nil
}

// invalCounter maps a reason to its wired counter. Callers hold st.mu
// or run before the store is shared.
func (st *Store) invalCounter(reason string) *obs.Counter {
	switch reason {
	case ReasonExperiment:
		return st.met.InvalidatedExperiment
	case ReasonFormat:
		return st.met.InvalidatedFormat
	default:
		return st.met.InvalidatedChecksum
	}
}

// noteInvalidated counts one invalidated entry under its reason,
// buffering until SetMetrics wires real counters.
func (st *Store) noteInvalidated(reason string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.metSet {
		st.invalCounter(reason).Inc()
		return
	}
	if st.pending == nil {
		st.pending = map[string]int64{}
	}
	st.pending[reason]++
}

// Open roots a Store at dir (created if absent) for a binary with the
// given fingerprints. If the directory's recorded generation matches
// fps.Global, nothing changed and every entry is kept untouched (the
// fast path across a no-op restart). Otherwise Open reconciles the
// delta: entries whose per-experiment fingerprint still validates are
// kept, legacy-format entries that validate against the recorded old
// generation are migrated in place (only with fps.MigrateLegacy set —
// purged otherwise), and the rest are removed — StalePurged reports
// how many. A positive maxBytes bounds the total
// entry size via LRU eviction; 0 means unbounded.
func Open(dir string, fps Fingerprints, maxBytes int64) (*Store, error) {
	if fps.Global == "" {
		return nil, fmt.Errorf("diskcache: empty fingerprint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	st := &Store{dir: dir, fps: fps, maxBytes: maxBytes}
	st.sweepTemps()
	prev, err := os.ReadFile(filepath.Join(dir, fpFile))
	switch {
	case err == nil && string(prev) == fps.Global:
		// Same generation: every entry is still valid; keep them all.
	default:
		// New directory or a generation change: reconcile entry by
		// entry instead of purging the store, then record the new
		// generation. The marker is written LAST, so a crash mid-
		// reconcile re-runs it on the next Open — every step is
		// idempotent (validated entries validate again, migrated
		// entries are already current-format, removals are removals).
		old := ""
		if err == nil {
			old = string(prev)
		}
		if err := st.reconcile(old); err != nil {
			return nil, err
		}
		if err := st.writeFile(fpFile, []byte(fps.Global)); err != nil {
			return nil, err
		}
	}
	st.evict()
	return st, nil
}

// reconcile walks every entry after a generation change, keeping the
// still-valid, migrating the legacy-valid, and removing the rest:
//
//   - current-format entries whose embedded fingerprint equals the
//     caller's (non-empty) For(id) are untouched — the deploy didn't
//     change their experiment; an id with no fingerprint (removed
//     from the registry) can never validate and is purged;
//   - legacy (unversioned) entries are, when the operator opted in
//     via Fingerprints.MigrateLegacy, validated against the store's
//     recorded old generation marker once, then atomically rewritten
//     in the current format under their experiment's fingerprint;
//   - everything else — stale or removed experiments, unmigratable or
//     unknown formats, corrupt bodies — is removed and counted by
//     reason.
func (st *Store) reconcile(oldGeneration string) error {
	for _, de := range st.readDir() {
		name := de.Name()
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		path := filepath.Join(st.dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			continue // removed under us by a sibling process
		}
		var f fileEntry
		if err := json.Unmarshal(b, &f); err != nil {
			st.dropStale(path, ReasonChecksum)
			continue
		}
		if name != entryName(Key{f.ID, f.Scale, f.Platform, f.ContentType}) ||
			f.SHA256 != bodySum(f.Body) {
			st.dropStale(path, ReasonChecksum)
			continue
		}
		fp := st.fps.For(f.ID)
		switch {
		case f.Format == entryFormat:
			if fp == "" || f.Fingerprint != fp {
				st.dropStale(path, ReasonExperiment)
			}
		case f.Format == 0 && st.fps.MigrateLegacy && oldGeneration != "" &&
			f.Fingerprint == oldGeneration:
			// A legacy entry of the store's own previous generation,
			// with the operator asserting (MigrateLegacy) that this
			// upgrade deploy is registry-neutral: the entry matched its
			// whole-store marker when written and nothing it depends on
			// changed since, so re-stamp it under its experiment's
			// current fingerprint, atomically. An experiment no longer
			// in the registry has no fingerprint to migrate to.
			if fp == "" {
				st.dropStale(path, ReasonExperiment)
				continue
			}
			f.Format = entryFormat
			f.Fingerprint = fp
			nb, err := json.Marshal(f)
			if err != nil {
				return fmt.Errorf("diskcache: %w", err)
			}
			if err := st.writeFile(name, append(nb, '\n')); err != nil {
				return err
			}
			st.migrated++
		default:
			st.dropStale(path, ReasonFormat)
		}
	}
	return nil
}

// dropStale removes one entry during reconcile, counting it as both an
// invalidation (by reason) and a stale purge.
func (st *Store) dropStale(path, reason string) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return
	}
	st.stalePurged++
	st.noteInvalidated(reason)
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Fingerprint returns the global registry fingerprint the store uses
// as its generation marker.
func (st *Store) Fingerprint() string { return st.fps.Global }

// StalePurged reports how many entries Open's generation reconcile
// removed — the keys a deploy actually invalidated. Zero after a
// same-generation open. Served on /healthz as stale_purged=N.
func (st *Store) StalePurged() int64 { return st.stalePurged }

// Migrated reports how many legacy-format entries Open rewrote in the
// current format.
func (st *Store) Migrated() int64 { return st.migrated }

// Get loads the entry for k. Missing, corrupt (failed checksum or
// parse), mismatched-key, wrong-format, or stale-fingerprint files all
// read as a miss; corrupt files are deleted so the slot heals on the
// next Put. A hit refreshes the file's access time for LRU eviction.
func (st *Store) Get(k Key) (Entry, bool) {
	defer st.met.GetSeconds.ObserveSince(time.Now())
	path := filepath.Join(st.dir, entryName(k))
	b, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, false
	}
	var f fileEntry
	if err := json.Unmarshal(b, &f); err != nil {
		os.Remove(path)
		st.noteInvalidated(ReasonChecksum)
		return Entry{}, false
	}
	if f.Format != entryFormat {
		// A legacy or future-format entry: a miss, but NOT a delete —
		// in a shared directory it may be another generation's valid
		// work; Open's reconcile is where retired formats are migrated
		// or purged.
		st.noteInvalidated(ReasonFormat)
		return Entry{}, false
	}
	if fp := st.fps.For(f.ID); fp == "" || f.Fingerprint != fp {
		// Stale, or an experiment this binary doesn't know: a miss,
		// but NOT a delete — in a shared directory this may be
		// another (newer) binary's perfectly valid entry; destroying
		// it would discard that writer's completed runs. Stale files
		// of a retired generation are purged by the next Open.
		st.noteInvalidated(ReasonExperiment)
		return Entry{}, false
	}
	if f.ID != k.ID || f.Scale != k.Scale || f.Platform != k.Platform ||
		f.ContentType != k.ContentType || f.SHA256 != bodySum(f.Body) {
		// Corrupt or misnamed: valid for nobody, so deleting heals
		// the slot for every sharer.
		os.Remove(path)
		st.noteInvalidated(ReasonChecksum)
		return Entry{}, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort LRU touch
	st.met.GetBytes.Add(int64(len(f.Body)))
	return Entry{ETag: f.ETag, RunID: f.RunID, Elapsed: time.Duration(f.ElapsedNS), Body: f.Body}, true
}

// Put persists the entry for k atomically (temp file + fsync +
// rename), stamped with k's experiment fingerprint, then evicts
// least-recently-used entries if the directory exceeds the size
// budget. The just-written entry is never evicted by its own Put.
func (st *Store) Put(k Key, e Entry) error {
	defer st.met.PutSeconds.ObserveSince(time.Now())
	fp := st.fps.For(k.ID)
	if fp == "" {
		// An experiment outside PerID has no fingerprint to stamp; a
		// stampless entry could never validate, so refuse it rather
		// than persist dead bytes.
		return fmt.Errorf("diskcache: no fingerprint for experiment %q", k.ID)
	}
	f := fileEntry{
		Format:      entryFormat,
		Fingerprint: fp,
		ID:          k.ID,
		Scale:       k.Scale,
		Platform:    k.Platform,
		ContentType: k.ContentType,
		ETag:        e.ETag,
		RunID:       e.RunID,
		ElapsedNS:   int64(e.Elapsed),
		SHA256:      bodySum(e.Body),
		Body:        e.Body,
	}
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	name := entryName(k)
	if err := st.writeFile(name, append(b, '\n')); err != nil {
		return err
	}
	st.met.PutBytes.Add(int64(len(e.Body)))
	st.evictExcept(name)
	return nil
}

// Len counts the entries currently on disk (valid or not).
func (st *Store) Len() int {
	n := 0
	for _, de := range st.readDir() {
		if strings.HasSuffix(de.Name(), entryExt) {
			n++
		}
	}
	return n
}

// Purge deletes every entry, keeping the directory and its
// fingerprint marker.
func (st *Store) Purge() error {
	for _, de := range st.readDir() {
		if strings.HasSuffix(de.Name(), entryExt) {
			if err := os.Remove(filepath.Join(st.dir, de.Name())); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("diskcache: %w", err)
			}
		}
	}
	return nil
}

// writeFile writes name under the store dir via temp-file + fsync +
// rename, so concurrent readers never observe a partial file.
func (st *Store) writeFile(name string, b []byte) error {
	tmp, err := os.CreateTemp(st.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(st.dir, name)); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	return nil
}

// sweepTemps removes temp files orphaned by a writer that died
// between CreateTemp and Rename. They lack the entry extension, so
// nothing else (Len, Purge, eviction) would ever reclaim them. The
// age threshold keeps a live sibling writer's in-flight temp safe — a
// healthy write holds its temp for milliseconds, not an hour.
func (st *Store) sweepTemps() {
	cutoff := time.Now().Add(-time.Hour)
	for _, de := range st.readDir() {
		if !strings.HasPrefix(de.Name(), ".tmp-") {
			continue
		}
		if info, err := de.Info(); err == nil && info.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(st.dir, de.Name()))
		}
	}
}

func (st *Store) evict() { st.evictExcept("") }

// evictGroup is one eviction unit: all representations of one
// (id, scale, platform) result.
type evictGroup struct {
	names []string
	size  int64
	mtime time.Time // newest member
}

// evictExcept removes least-recently-used entries until each namespace
// fits its byte budget, never removing the named just-written file's
// group. Eviction operates on whole (id, scale, platform) groups — the
// filename's prefix before the content-type component — because
// callers that persist one result as several representations read
// them all-or-nothing: evicting a single file would orphan its
// siblings into budget-consuming entries that can never serve. A
// group's recency is its most recently used member (Get refreshes
// mtimes). Sizes and times are re-scanned on every call — entries
// number in the low hundreds at most, and a scan stays correct when
// other processes share the directory.
//
// Preset/default entries and custom-platform entries are separate
// namespaces with separate budgets: presets against maxBytes, customs
// against customMax (or maxBytes when unset). Each namespace's LRU
// only ever evicts its own entries, so arbitrarily churning custom
// uploads can exhaust only the custom budget — a preset's cached
// result is never the victim of someone else's machine.
func (st *Store) evictExcept(keep string) {
	customBudget := st.customMax
	if customBudget <= 0 {
		customBudget = st.maxBytes
	}
	if st.maxBytes <= 0 && customBudget <= 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	preset := map[string]*evictGroup{}
	custom := map[string]*evictGroup{}
	var presetTotal, customTotal int64
	for _, de := range st.readDir() {
		if !strings.HasSuffix(de.Name(), entryExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // deleted under us by a sibling process
		}
		groups, total := preset, &presetTotal
		if isCustomEntry(de.Name()) {
			groups, total = custom, &customTotal
		}
		g := groups[groupOf(de.Name())]
		if g == nil {
			g = &evictGroup{}
			groups[groupOf(de.Name())] = g
		}
		g.names = append(g.names, de.Name())
		g.size += info.Size()
		if info.ModTime().After(g.mtime) {
			g.mtime = info.ModTime()
		}
		*total += info.Size()
	}
	st.evictNamespace(preset, presetTotal, st.maxBytes, keep)
	st.evictNamespace(custom, customTotal, customBudget, keep)
}

// evictNamespace drops one namespace's least-recently-used groups
// until it fits its budget (0 = unbounded). Callers hold st.mu.
func (st *Store) evictNamespace(groups map[string]*evictGroup, total, budget int64, keep string) {
	if budget <= 0 {
		return
	}
	ordered := make([]*evictGroup, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].mtime.Before(ordered[j].mtime) })
	keepGroup := groupOf(keep)
	for _, g := range ordered {
		if total <= budget {
			return
		}
		if keep != "" && groupOf(g.names[0]) == keepGroup {
			continue
		}
		for _, name := range g.names {
			os.Remove(filepath.Join(st.dir, name))
			st.met.Evictions.Inc()
		}
		total -= g.size
	}
}

// groupOf maps an entry filename to its eviction group: everything up
// to the last '@' — i.e. the escaped (id, scale, platform) prefix,
// shared by all of one result's representations.
func groupOf(name string) string {
	if i := strings.LastIndexByte(name, '@'); i >= 0 {
		return name[:i]
	}
	return name
}

func (st *Store) readDir() []os.DirEntry {
	des, _ := os.ReadDir(st.dir)
	return des
}

// bodySum is the integrity checksum stored with each entry — hex
// SHA-256 of the body bytes, verified on every Get.
func bodySum(b []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// entryName maps a key to its filename: the four escaped components
// joined with '@' (never produced by the escape, so the mapping is
// injective) plus the entry extension. A default-platform key keeps
// an empty platform component — e.g. "T1@quick@@text%2Fplain.entry" —
// so default and platform-qualified entries can never collide.
func entryName(k Key) string {
	return escape(k.ID) + "@" + escape(k.Scale) + "@" + escape(k.Platform) + "@" + escape(k.ContentType) + entryExt
}

// escape keeps [A-Za-z0-9._-] and percent-encodes everything else, so
// any key component becomes a safe, unambiguous filename fragment.
func escape(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			sb.WriteByte(c)
		default:
			fmt.Fprintf(&sb, "%%%02X", c)
		}
	}
	return sb.String()
}
