package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var testKey = Key{ID: "T1", Scale: "quick", ContentType: "text/plain"}

func testEntry(body string) Entry {
	return Entry{ETag: `"etag-of-` + body + `"`, Elapsed: 42 * time.Millisecond, Body: []byte(body)}
}

func mustOpen(t *testing.T, dir, fp string, maxBytes int64) *Store {
	t.Helper()
	st, err := Open(dir, Fingerprints{Global: fp}, maxBytes)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

func TestPutGetRoundTrip(t *testing.T) {
	st := mustOpen(t, t.TempDir(), "fp1", 0)
	want := testEntry("hello table\n")
	if err := st.Put(testKey, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := st.Get(testKey)
	if !ok {
		t.Fatal("Get missed a just-put key")
	}
	if got.ETag != want.ETag || got.Elapsed != want.Elapsed || string(got.Body) != string(want.Body) {
		t.Errorf("round trip mangled entry: got %+v want %+v", got, want)
	}
	// Other keys stay cold.
	if _, ok := st.Get(Key{ID: "T2", Scale: "quick", ContentType: "text/plain"}); ok {
		t.Error("Get hit a never-put key")
	}
}

func TestReopenSameFingerprintKeepsEntries(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, "fp1", 0)
	if err := st.Put(testKey, testEntry("persisted")); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, "fp1", 0)
	if got, ok := st2.Get(testKey); !ok || string(got.Body) != "persisted" {
		t.Errorf("entry lost across reopen: ok=%v body=%q", ok, got.Body)
	}
}

func TestFingerprintChangePurgesStore(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, "fp1", 0)
	for i := 0; i < 3; i++ {
		k := Key{ID: fmt.Sprintf("T%d", i), Scale: "quick", ContentType: "text/plain"}
		if err := st.Put(k, testEntry("old generation")); err != nil {
			t.Fatal(err)
		}
	}
	st2 := mustOpen(t, dir, "fp2", 0)
	if n := st2.Len(); n != 0 {
		t.Errorf("fingerprint change left %d entries, want 0", n)
	}
	if _, ok := st2.Get(testKey); ok {
		t.Error("stale entry served after fingerprint change")
	}
	// The new generation works.
	if err := st2.Put(testKey, testEntry("new generation")); err != nil {
		t.Fatal(err)
	}
	if got, ok := st2.Get(testKey); !ok || string(got.Body) != "new generation" {
		t.Errorf("new-generation entry: ok=%v body=%q", ok, got.Body)
	}
}

func TestStaleEmbeddedFingerprintRejectedOnGet(t *testing.T) {
	// Two writers with different fingerprints sharing one directory:
	// even if the FINGERPRINT marker lags (the Open purge raced), the
	// per-entry embedded fingerprint rejects the other's entries.
	dir := t.TempDir()
	old := mustOpen(t, dir, "fp-old", 0)
	if err := old.Put(testKey, testEntry("old binary")); err != nil {
		t.Fatal(err)
	}
	// Simulate the race: a Store whose fingerprint differs from the
	// entry's, without going through Open's purge.
	racer := &Store{dir: dir, fps: Fingerprints{Global: "fp-new"}}
	if _, ok := racer.Get(testKey); ok {
		t.Error("entry with stale embedded fingerprint was served")
	}
	// The mismatch is a miss, not a delete — the entry may be a
	// different live binary's valid work, so the original writer must
	// still see it.
	if _, ok := old.Get(testKey); !ok {
		t.Error("fingerprint-mismatch Get destroyed another writer's entry")
	}
}

func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-orphan")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, past, past); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, ".tmp-live")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	mustOpen(t, dir, "fp1", 0)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived Open")
	}
	// A sibling writer's in-flight temp is not touched.
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file swept: %v", err)
	}
}

func TestTruncatedEntryReadsAsMissAndHeals(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, "fp1", 0)
	if err := st.Put(testKey, testEntry("whole entry body")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, entryName(testKey))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-write can't truncate (rename is atomic), but disk
	// corruption or an external truncation can.
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(testKey); ok {
		t.Fatal("truncated entry was served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("truncated entry not deleted on detection")
	}
	// The slot heals on the next Put.
	if err := st.Put(testKey, testEntry("rewritten")); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(testKey); !ok || string(got.Body) != "rewritten" {
		t.Errorf("healed slot: ok=%v body=%q", ok, got.Body)
	}
}

func TestCorruptBodyFailsChecksum(t *testing.T) {
	// Valid JSON, wrong bytes: flip the body while keeping the file
	// parseable — only the checksum can catch this.
	dir := t.TempDir()
	st := mustOpen(t, dir, "fp1", 0)
	if err := st.Put(testKey, testEntry("AAAA")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, entryName(testKey))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// "AAAA" is base64 "QUFBQQ=="; swap it for base64("BBBB").
	mut := strings.Replace(string(b), "QUFBQQ==", "QkJCQg==", 1)
	if mut == string(b) {
		t.Fatal("test setup: body encoding not found in file")
	}
	if err := os.WriteFile(path, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(testKey); ok {
		t.Error("entry with corrupt body served despite checksum")
	}
}

func TestRenamedEntryCannotImpersonate(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, "fp1", 0)
	if err := st.Put(testKey, testEntry("T1 output")); err != nil {
		t.Fatal(err)
	}
	other := Key{ID: "T2", Scale: "quick", ContentType: "text/plain"}
	if err := os.Rename(filepath.Join(dir, entryName(testKey)), filepath.Join(dir, entryName(other))); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(other); ok {
		t.Error("entry served under a key that doesn't match its embedded key")
	}
}

func TestLRUEvictionKeepsRecentlyRead(t *testing.T) {
	dir := t.TempDir()
	// Budget for roughly two entries: each file is the body plus a
	// few hundred bytes of JSON header.
	body := strings.Repeat("x", 4096)
	probe := mustOpen(t, dir, "fp1", 0)
	if err := probe.Put(testKey, testEntry(body)); err != nil {
		t.Fatal(err)
	}
	entSize := int64(0)
	if info, err := os.Stat(filepath.Join(dir, entryName(testKey))); err == nil {
		entSize = info.Size()
	}
	if err := probe.Purge(); err != nil {
		t.Fatal(err)
	}

	st := mustOpen(t, dir, "fp1", 2*entSize+entSize/2)
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = Key{ID: fmt.Sprintf("E%d", i), Scale: "quick", ContentType: "text/plain"}
	}
	if err := st.Put(keys[0], testEntry(body)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // distinct mtimes on coarse filesystems
	if err := st.Put(keys[1], testEntry(body)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	// Touch keys[0] so keys[1] is now the least recently used.
	if _, ok := st.Get(keys[0]); !ok {
		t.Fatal("keys[0] evicted below budget")
	}
	time.Sleep(10 * time.Millisecond)
	if err := st.Put(keys[2], testEntry(body)); err != nil {
		t.Fatal(err)
	}

	if _, ok := st.Get(keys[1]); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := st.Get(keys[0]); !ok {
		t.Error("recently read entry was evicted")
	}
	if _, ok := st.Get(keys[2]); !ok {
		t.Error("just-written entry was evicted by its own Put")
	}
}

func TestEvictionDropsWholeRepresentationSets(t *testing.T) {
	// A result persisted as several content types must be evicted as
	// a unit: readers load sets all-or-nothing, so a half-evicted set
	// would consume budget while never serving.
	dir := t.TempDir()
	body := strings.Repeat("y", 2048)
	cts := []string{"text/plain", "text/csv", "application/json"}

	probe := mustOpen(t, dir, "fp1", 0)
	if err := probe.Put(testKey, testEntry(body)); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, entryName(testKey)))
	if err != nil {
		t.Fatal(err)
	}
	setSize := 3 * info.Size()
	if err := probe.Purge(); err != nil {
		t.Fatal(err)
	}

	// Budget for one set plus change: writing a second set must evict
	// the first one entirely, not shave single files off both.
	st := mustOpen(t, dir, "fp1", setSize+setSize/2)
	putSet := func(id string) {
		t.Helper()
		for _, ct := range cts {
			if err := st.Put(Key{ID: id, Scale: "quick", ContentType: ct}, testEntry(body)); err != nil {
				t.Fatal(err)
			}
		}
	}
	putSet("A")
	time.Sleep(10 * time.Millisecond)
	putSet("B")

	for _, ct := range cts {
		if _, ok := st.Get(Key{ID: "A", Scale: "quick", ContentType: ct}); ok {
			t.Errorf("evicted set A still has its %s member", ct)
		}
		if _, ok := st.Get(Key{ID: "B", Scale: "quick", ContentType: ct}); !ok {
			t.Errorf("surviving set B lost its %s member", ct)
		}
	}
}

func TestConcurrentWritersSharingDirectory(t *testing.T) {
	// The daemon and CLI case: two Store handles (as two processes
	// would hold) over one directory, concurrently writing and
	// reading overlapping keys. Every Get must return either a miss
	// or a complete, self-consistent entry.
	dir := t.TempDir()
	daemon := mustOpen(t, dir, "fp1", 0)
	cli := mustOpen(t, dir, "fp1", 0)

	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = Key{ID: fmt.Sprintf("X%d", i), Scale: "quick", ContentType: "application/json"}
	}
	var wg sync.WaitGroup
	for w, st := range []*Store{daemon, cli} {
		wg.Add(1)
		go func(w int, st *Store) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				for i, k := range keys {
					body := fmt.Sprintf("writer%d round%d key%d", w, round, i)
					if err := st.Put(k, testEntry(body)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}
		}(w, st)
		wg.Add(1)
		go func(st *Store) {
			defer wg.Done()
			for round := 0; round < 40; round++ {
				for _, k := range keys {
					if e, ok := st.Get(k); ok {
						if want := `"etag-of-` + string(e.Body) + `"`; e.ETag != want {
							t.Errorf("torn entry: etag %q body %q", e.ETag, e.Body)
							return
						}
					}
				}
			}
		}(st)
	}
	wg.Wait()
	// Last writer wins per key; every key is present and valid.
	for _, k := range keys {
		if _, ok := daemon.Get(k); !ok {
			t.Errorf("key %v missing after concurrent writes", k)
		}
	}
}

func TestEntryNameEscaping(t *testing.T) {
	k := Key{ID: "weird/id", Scale: "quick", ContentType: "text/plain"}
	name := entryName(k)
	if strings.ContainsAny(name, "/") {
		t.Errorf("entry name %q contains a path separator", name)
	}
	// Distinct keys map to distinct names even when naive joins would
	// collide.
	k2 := Key{ID: "weird", Scale: "id@quick", ContentType: "text/plain"}
	if entryName(k2) == name {
		t.Errorf("distinct keys collide on %q", name)
	}
	st := mustOpen(t, t.TempDir(), "fp1", 0)
	if err := st.Put(k, testEntry("escaped")); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(k); !ok || string(got.Body) != "escaped" {
		t.Errorf("escaped key round trip: ok=%v body=%q", ok, got.Body)
	}
}

func TestOpenRejectsEmptyFingerprint(t *testing.T) {
	if _, err := Open(t.TempDir(), Fingerprints{}, 0); err == nil {
		t.Error("Open accepted an empty fingerprint")
	}
}

// TestPlatformQualifiedKeys pins the platform axis of the key space:
// a default-platform entry and a platform-qualified one for the same
// (id, scale, content type) live in distinct slots, each validates
// only under its own key, and a renamed file cannot cross the axis.
func TestPlatformQualifiedKeys(t *testing.T) {
	st := mustOpen(t, t.TempDir(), "fp1", 0)
	def := Key{ID: "T1", Scale: "quick", ContentType: "text/plain"}
	plat := Key{ID: "T1", Scale: "quick", Platform: "gige-8n", ContentType: "text/plain"}
	if entryName(def) == entryName(plat) {
		t.Fatalf("default and platform-qualified keys share a filename %q", entryName(def))
	}
	if err := st.Put(def, testEntry("default set")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(plat, testEntry("gige only")); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(def); !ok || string(got.Body) != "default set" {
		t.Errorf("default key: ok=%v body=%q", ok, got.Body)
	}
	if got, ok := st.Get(plat); !ok || string(got.Body) != "gige only" {
		t.Errorf("platform key: ok=%v body=%q", ok, got.Body)
	}
	// Same group prefix rules: the two keys must evict independently.
	if groupOf(entryName(def)) == groupOf(entryName(plat)) {
		t.Error("default and platform-qualified entries share an eviction group")
	}
}
