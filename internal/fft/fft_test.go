package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// dftNaive is the O(n^2) reference DFT.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func randVec(n int, seed uint64) []complex128 {
	s := rng.NewSplitMix64(seed)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(s.Sym(), s.Sym())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randVec(n, uint64(n))
		want := dftNaive(x)
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(x, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err != ErrNotPow2 {
		t.Errorf("err = %v, want ErrNotPow2", err)
	}
	if err := Forward(nil); err != nil {
		t.Errorf("empty input should be a no-op, got %v", err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 16, 1024} {
		x := randVec(n, 7)
		orig := append([]complex128(nil), x...)
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(x, orig); e > 1e-10*float64(n) {
			t.Errorf("n=%d: round-trip error %v", n, e)
		}
	}
}

func TestForwardDeltaIsConstant(t *testing.T) {
	// DFT of delta function is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v, want 1", i, v)
		}
	}
}

func TestForwardLinearityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		const n = 64
		a := randVec(n, uint64(seed))
		b := randVec(n, uint64(seed)+99)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		if Forward(a) != nil || Forward(b) != nil || Forward(sum) != nil {
			return false
		}
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/n) sum |X|^2.
	f := func(seed uint16) bool {
		const n = 128
		x := randVec(n, uint64(seed))
		var before float64
		for _, v := range x {
			before += real(v)*real(v) + imag(v)*imag(v)
		}
		if Forward(x) != nil {
			return false
		}
		var after float64
		for _, v := range x {
			after += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(before-after/float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTranspose(t *testing.T) {
	const n1, n2 = 3, 5
	src := make([]complex128, n1*n2)
	for i := range src {
		src[i] = complex(float64(i), 0)
	}
	dst := make([]complex128, n1*n2)
	if err := Transpose(dst, src, n1, n2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			if dst[j*n1+i] != src[i*n2+j] {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
	if err := Transpose(dst, src[:4], 2, 2); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestTransposeLargeBlocked(t *testing.T) {
	// Exercise the blocked path with dims spanning multiple tiles.
	const n1, n2 = 100, 67
	src := randVec(n1*n2, 3)
	dst := make([]complex128, n1*n2)
	back := make([]complex128, n1*n2)
	if err := Transpose(dst, src, n1, n2); err != nil {
		t.Fatal(err)
	}
	if err := Transpose(back, dst, n2, n1); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(back, src); e != 0 {
		t.Errorf("double transpose changed data: %v", e)
	}
}

func TestTwiddleValidation(t *testing.T) {
	if err := Twiddle(make([]complex128, 5), 2, 3, -1); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestSixStepMatchesForward(t *testing.T) {
	cases := []struct{ n1, n2 int }{{2, 2}, {4, 4}, {4, 8}, {8, 4}, {16, 16}, {2, 64}}
	for _, cs := range cases {
		n := cs.n1 * cs.n2
		x := randVec(n, uint64(n+cs.n1))
		want := append([]complex128(nil), x...)
		if err := Forward(want); err != nil {
			t.Fatal(err)
		}
		if err := SixStep(x, cs.n1, cs.n2); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(x, want); e > 1e-9*float64(n) {
			t.Errorf("n1=%d n2=%d: six-step vs direct max error %v", cs.n1, cs.n2, e)
		}
	}
}

func TestSixStepValidation(t *testing.T) {
	if err := SixStep(make([]complex128, 6), 2, 3); err != ErrNotPow2 {
		t.Errorf("non-pow2 n2: %v", err)
	}
	if err := SixStep(make([]complex128, 5), 2, 2); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestFlops(t *testing.T) {
	if got := Flops(8); got != 5*8*3 {
		t.Errorf("Flops(8) = %v", got)
	}
}

func TestIsPow2(t *testing.T) {
	for n, want := range map[int]bool{0: false, 1: true, 2: true, 3: false, 1024: true, -4: false} {
		if IsPow2(n) != want {
			t.Errorf("IsPow2(%d) = %v", n, !want)
		}
	}
}

func BenchmarkForward1K(b *testing.B) {
	x := randVec(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkSixStep4K(b *testing.B) {
	x := randVec(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SixStep(x, 64, 64)
	}
}
