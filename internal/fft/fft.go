// Package fft implements the Fourier transforms used by the HPCC FFT
// benchmark: an iterative radix-2 Cooley–Tukey transform for local work
// and the building blocks of the distributed six-step algorithm (column
// FFTs, twiddle scaling, transpose) that internal/hpcc assembles over the
// message-passing layer.
package fft

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrNotPow2 is returned when a transform length is not a power of two.
var ErrNotPow2 = errors.New("fft: length must be a power of two")

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of x (length must be a power
// of two): X[k] = sum_j x[j] * exp(-2πi jk/n).
func Forward(x []complex128) error { return transform(x, -1) }

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization, so Inverse(Forward(x)) == x.
func Inverse(x []complex128) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
	return nil
}

// transform is the iterative radix-2 Cooley–Tukey DIT FFT with
// bit-reversal permutation; sign is -1 for forward, +1 for inverse.
func transform(x []complex128, sign float64) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPow2(n) {
		return ErrNotPow2
	}
	bitReverse(x)
	for span := 2; span <= n; span <<= 1 {
		half := span >> 1
		// Principal root for this stage.
		ang := sign * 2 * math.Pi / float64(span)
		wStep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += span {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// bitReverse permutes x into bit-reversed order in place.
func bitReverse(x []complex128) {
	n := len(x)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// Twiddle multiplies element (r, c) of an n1 x n2 row-major matrix by
// exp(sign*2πi*r*c/(n1*n2)) — the inter-step scaling of the six-step
// algorithm. sign is -1 for forward transforms.
func Twiddle(x []complex128, n1, n2 int, sign float64) error {
	if len(x) != n1*n2 {
		return errors.New("fft: twiddle size mismatch")
	}
	nf := float64(n1 * n2)
	for r := 0; r < n1; r++ {
		base := sign * 2 * math.Pi * float64(r) / nf
		for c := 0; c < n2; c++ {
			w := cmplx.Exp(complex(0, base*float64(c)))
			x[r*n2+c] *= w
		}
	}
	return nil
}

// Transpose writes the transpose of the n1 x n2 row-major matrix src
// into dst (becoming n2 x n1). Cache-blocked.
func Transpose(dst, src []complex128, n1, n2 int) error {
	if len(src) != n1*n2 || len(dst) != n1*n2 {
		return errors.New("fft: transpose size mismatch")
	}
	const tb = 32
	for ii := 0; ii < n1; ii += tb {
		iHi := ii + tb
		if iHi > n1 {
			iHi = n1
		}
		for jj := 0; jj < n2; jj += tb {
			jHi := jj + tb
			if jHi > n2 {
				jHi = n2
			}
			for i := ii; i < iHi; i++ {
				for j := jj; j < jHi; j++ {
					dst[j*n1+i] = src[i*n2+j]
				}
			}
		}
	}
	return nil
}

// SixStep computes the forward DFT of x (length n = n1*n2, both powers
// of two) using the six-step algorithm on one process: transpose, n2
// FFTs of length n1, twiddle, transpose, n1 FFTs of length n2,
// transpose. It is the serial reference for the distributed version in
// internal/hpcc and validates against Forward.
func SixStep(x []complex128, n1, n2 int) error {
	n := n1 * n2
	if len(x) != n {
		return errors.New("fft: six-step size mismatch")
	}
	if !IsPow2(n1) || !IsPow2(n2) {
		return ErrNotPow2
	}
	// View x as n1 rows of n2. Step 1: transpose to n2 rows of n1.
	tmp := make([]complex128, n)
	if err := Transpose(tmp, x, n1, n2); err != nil {
		return err
	}
	// Step 2: n2 FFTs of length n1 (now contiguous rows of tmp).
	for r := 0; r < n2; r++ {
		if err := Forward(tmp[r*n1 : (r+1)*n1]); err != nil {
			return err
		}
	}
	// Step 3: twiddle, with tmp viewed as n2 x n1.
	if err := Twiddle(tmp, n2, n1, -1); err != nil {
		return err
	}
	// Step 4: transpose back to n1 rows of n2.
	if err := Transpose(x, tmp, n2, n1); err != nil {
		return err
	}
	// Step 5: n1 FFTs of length n2.
	for r := 0; r < n1; r++ {
		if err := Forward(x[r*n2 : (r+1)*n2]); err != nil {
			return err
		}
	}
	// Step 6: final transpose to natural order.
	if err := Transpose(tmp, x, n1, n2); err != nil {
		return err
	}
	copy(x, tmp)
	return nil
}

// Flops returns the nominal operation count HPCC uses for an n-point
// complex FFT: 5 n log2 n.
func Flops(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}
