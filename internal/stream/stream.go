// Package stream reimplements the STREAM memory-bandwidth benchmark
// (McCalpin): the Copy, Scale, Add and Triad kernels over large float64
// arrays, timed over repeated trials with best-rate reporting and the
// original validation pass. Threading uses the internal/par team runtime
// in place of OpenMP, with per-thread first-touch initialization
// controlled by the caller (experiment F7 ablates it).
package stream

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/par"
)

// Kernel identifies one of the four STREAM kernels.
type Kernel int

const (
	// Copy: c[i] = a[i]. 16 bytes/iteration, 0 flops.
	Copy Kernel = iota
	// Scale: b[i] = q*c[i]. 16 bytes/iteration, 1 flop.
	Scale
	// Add: c[i] = a[i] + b[i]. 24 bytes/iteration, 1 flop.
	Add
	// Triad: a[i] = b[i] + q*c[i]. 24 bytes/iteration, 2 flops.
	Triad
)

// Kernels lists all four in STREAM's canonical order.
var Kernels = []Kernel{Copy, Scale, Add, Triad}

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// BytesPerElem returns the bytes moved per array element per iteration,
// exactly as STREAM counts them.
func (k Kernel) BytesPerElem() int {
	switch k {
	case Copy, Scale:
		return 16
	default:
		return 24
	}
}

// scalar is STREAM's q.
const scalar = 3.0

// Config configures a STREAM run.
type Config struct {
	// N is the array length in elements; STREAM requires each array to
	// exceed the last-level cache by ~4x. Default 8 MiB worth (1<<20).
	N int
	// NTimes is the number of timed trials per kernel (default 10;
	// STREAM's minimum for publishable results).
	NTimes int
	// Threads is the worker count (default par.DefaultThreads()).
	Threads int
	// FirstTouch controls whether arrays are initialized by the same
	// static partition the kernels use (true, the OpenMP idiom that
	// spreads pages across NUMA domains) or serially by thread 0.
	FirstTouch bool
}

func (c Config) normalize() Config {
	if c.N <= 0 {
		c.N = 1 << 20
	}
	if c.NTimes <= 0 {
		c.NTimes = 10
	}
	if c.Threads <= 0 {
		c.Threads = par.DefaultThreads()
	}
	return c
}

// Result holds per-kernel measurements.
type Result struct {
	Kernel   Kernel
	BestRate float64 // bytes/s of the fastest trial
	AvgTime  float64 // seconds, mean over trials (excluding the first)
	MinTime  float64
	MaxTime  float64
}

// MBps returns the best rate in STREAM's traditional MB/s (1e6 bytes).
func (r Result) MBps() float64 { return r.BestRate / 1e6 }

// Run executes the four kernels under cfg and returns results in
// Kernels order, validating the final array contents like STREAM's
// check pass.
func Run(cfg Config) ([]Result, error) {
	cfg = cfg.normalize()
	n := cfg.N
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)

	team := par.NewTeam(cfg.Threads)
	defer team.Close()

	init := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = 1
			b[i] = 2
			c[i] = 0
		}
	}
	if cfg.FirstTouch {
		team.ForStatic(n, func(lo, hi, _ int) { init(lo, hi) })
	} else {
		init(0, n)
	}

	run := func(k Kernel) {
		team.ForStatic(n, func(lo, hi, _ int) {
			switch k {
			case Copy:
				copyKernel(c[lo:hi], a[lo:hi])
			case Scale:
				scaleKernel(b[lo:hi], c[lo:hi])
			case Add:
				addKernel(c[lo:hi], a[lo:hi], b[lo:hi])
			case Triad:
				triadKernel(a[lo:hi], b[lo:hi], c[lo:hi])
			}
		})
	}

	results := make([]Result, 0, len(Kernels))
	times := make([][]float64, len(Kernels))
	// STREAM interleaves kernels within each trial so all four see the
	// same cache/NUMA state progression.
	for trial := 0; trial < cfg.NTimes+1; trial++ {
		for ki, k := range Kernels {
			t0 := time.Now()
			run(k)
			dt := time.Since(t0).Seconds()
			if trial > 0 { // first trial is warmup, as in STREAM
				times[ki] = append(times[ki], dt)
			}
		}
	}
	for ki, k := range Kernels {
		ts := times[ki]
		minT, maxT, sum := math.Inf(1), 0.0, 0.0
		for _, t := range ts {
			if t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
			sum += t
		}
		bytes := float64(k.BytesPerElem()) * float64(n)
		results = append(results, Result{
			Kernel:   k,
			BestRate: bytes / minT,
			AvgTime:  sum / float64(len(ts)),
			MinTime:  minT,
			MaxTime:  maxT,
		})
	}
	if err := validate(a, b, c, n, cfg.NTimes+1); err != nil {
		return results, err
	}
	return results, nil
}

func copyKernel(dst, src []float64) {
	copy(dst, src)
}

func scaleKernel(dst, src []float64) {
	for i := range dst {
		dst[i] = scalar * src[i]
	}
}

func addKernel(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func triadKernel(dst, b, c []float64) {
	for i := range dst {
		dst[i] = b[i] + scalar*c[i]
	}
}

// validate replays the kernel sequence on scalars and compares against
// the arrays, as STREAM's checkSTREAMresults does.
func validate(a, b, c []float64, n, trials int) error {
	aj, bj, cj := 1.0, 2.0, 0.0
	for t := 0; t < trials; t++ {
		cj = aj
		bj = scalar * cj
		cj = aj + bj
		aj = bj + scalar*cj
	}
	var aerr, berr, cerr float64
	for i := 0; i < n; i++ {
		aerr += math.Abs(a[i] - aj)
		berr += math.Abs(b[i] - bj)
		cerr += math.Abs(c[i] - cj)
	}
	aerr /= float64(n)
	berr /= float64(n)
	cerr /= float64(n)
	const epsilon = 1e-13
	if aerr/math.Abs(aj) > epsilon || berr/math.Abs(bj) > epsilon || cerr/math.Abs(cj) > epsilon {
		return errors.New("stream: validation failed: arrays do not match scalar replay")
	}
	return nil
}

// ModelTriadRate returns the memory bandwidth (bytes/s) a platform model
// predicts for the Triad kernel at the given thread count under block
// placement: per-core bandwidth scales until the sockets hosting the
// threads saturate. The characterization harness plots this curve next
// to the measured one (experiment F7).
func ModelTriadRate(threads, coresPerSocket int, perCore, perSocket float64) float64 {
	if threads <= 0 {
		return 0
	}
	var total float64
	remaining := threads
	for remaining > 0 {
		onThisSocket := remaining
		if onThisSocket > coresPerSocket {
			onThisSocket = coresPerSocket
		}
		socketBW := float64(onThisSocket) * perCore
		if socketBW > perSocket {
			socketBW = perSocket
		}
		total += socketBW
		remaining -= onThisSocket
	}
	return total
}
