package stream

import (
	"testing"
)

func TestRunValidates(t *testing.T) {
	for _, ft := range []bool{true, false} {
		res, err := Run(Config{N: 50000, NTimes: 3, Threads: 2, FirstTouch: ft})
		if err != nil {
			t.Fatalf("firstTouch=%v: %v", ft, err)
		}
		if len(res) != 4 {
			t.Fatalf("got %d results", len(res))
		}
		for _, r := range res {
			if r.BestRate <= 0 || r.MinTime <= 0 {
				t.Errorf("%v: non-positive rate/time: %+v", r.Kernel, r)
			}
			if r.MinTime > r.MaxTime {
				t.Errorf("%v: min > max", r.Kernel)
			}
			if r.MBps() != r.BestRate/1e6 {
				t.Errorf("MBps inconsistent")
			}
		}
	}
}

func TestRunKernelOrder(t *testing.T) {
	res, err := Run(Config{N: 10000, NTimes: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range Kernels {
		if res[i].Kernel != k {
			t.Errorf("result %d kernel %v, want %v", i, res[i].Kernel, k)
		}
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	cfg := Config{}.normalize()
	if cfg.N <= 0 || cfg.NTimes <= 0 || cfg.Threads <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestKernelMetadata(t *testing.T) {
	if Copy.BytesPerElem() != 16 || Scale.BytesPerElem() != 16 {
		t.Error("copy/scale bytes wrong")
	}
	if Add.BytesPerElem() != 24 || Triad.BytesPerElem() != 24 {
		t.Error("add/triad bytes wrong")
	}
	names := map[Kernel]string{Copy: "Copy", Scale: "Scale", Add: "Add", Triad: "Triad"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestKernelsAgainstScalars(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	c := make([]float64, 3)
	copyKernel(c, a)
	if c[1] != 2 {
		t.Error("copy wrong")
	}
	scaleKernel(c, b)
	if c[0] != 12 {
		t.Error("scale wrong")
	}
	addKernel(c, a, b)
	if c[2] != 9 {
		t.Error("add wrong")
	}
	triadKernel(c, a, b)
	if c[0] != 1+3.0*4 {
		t.Error("triad wrong")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	// Correct replay for 1 trial.
	aj, bj, cj := 1.0, 2.0, 0.0
	cj = aj
	bj = scalar * cj
	cj = aj + bj
	aj = bj + scalar*cj
	for i := range a {
		a[i], b[i], c[i] = aj, bj, cj
	}
	if err := validate(a, b, c, n, 1); err != nil {
		t.Fatalf("correct arrays rejected: %v", err)
	}
	a[50] = 1e9
	if err := validate(a, b, c, n, 1); err == nil {
		t.Error("corrupted array accepted")
	}
}

func TestModelTriadRateShape(t *testing.T) {
	perCore, perSocket := 3.0, 6.4 // arbitrary units
	cps := 4
	r1 := ModelTriadRate(1, cps, perCore, perSocket)
	r2 := ModelTriadRate(2, cps, perCore, perSocket)
	r4 := ModelTriadRate(4, cps, perCore, perSocket)
	r8 := ModelTriadRate(8, cps, perCore, perSocket)
	if r1 != perCore {
		t.Errorf("1 thread = %v, want per-core %v", r1, perCore)
	}
	if r2 != 6 {
		t.Errorf("2 threads = %v, want 6", r2)
	}
	if r4 != perSocket {
		t.Errorf("4 threads = %v, want socket cap %v", r4, perSocket)
	}
	if r8 != 2*perSocket {
		t.Errorf("8 threads = %v, want 2 sockets %v", r8, 2*perSocket)
	}
	// The knee: scaling 1->2 is linear, 2->4 is sublinear.
	if (r2 - r1) <= (r4 - r2) {
		t.Error("no saturation knee in model curve")
	}
	if ModelTriadRate(0, cps, perCore, perSocket) != 0 {
		t.Error("zero threads should give zero")
	}
}
