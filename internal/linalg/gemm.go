package linalg

import (
	"errors"

	"repro/internal/par"
)

// Default cache-blocking factors for Gemm, sized for a 32 KiB L1 / 256
// KiB L2 with float64: the (mc x kc) A-panel and (kc x nb) B-panel fit in
// L2 while the micro-tile streams through L1.
const (
	gemmMC = 64
	gemmKC = 128
	gemmNC = 256
)

// Gemm computes C = alpha*A*B + beta*C using cache-blocked loops,
// parallelized over row panels with nthreads workers (<=0 means
// sequential). Dimensions: A is m x k, B is k x n, C is m x n.
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix, nthreads int) error {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		return errors.New("linalg: gemm dimension mismatch")
	}
	m := c.Rows

	scaleC := func(lo, hi int) {
		if beta == 1 {
			return
		}
		for i := lo; i < hi; i++ {
			row := c.Row(i)
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	body := func(lo, hi int) {
		scaleC(lo, hi)
		gemmBlocked(alpha, a, b, c, lo, hi)
	}

	if nthreads <= 1 || m < 2*gemmMC {
		body(0, m)
		return nil
	}
	par.ForOpt(m, par.Options{Threads: nthreads}, func(lo, hi, _ int) {
		body(lo, hi)
	})
	return nil
}

// gemmBlocked updates C rows [rlo, rhi) with alpha*A*B (C pre-scaled).
func gemmBlocked(alpha float64, a, b, c *Matrix, rlo, rhi int) {
	k, n := a.Cols, b.Cols
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			for ic := rlo; ic < rhi; ic += gemmMC {
				mc := min(gemmMC, rhi-ic)
				gemmKernel(alpha, a, b, c, ic, jc, pc, mc, nc, kc)
			}
		}
	}
}

// gemmKernel is the inner i-k-j loop over one cache tile: row-major
// friendly (unit-stride inner loop over both B's and C's rows), with the
// A element hoisted so the compiler keeps it in a register.
func gemmKernel(alpha float64, a, b, c *Matrix, ic, jc, pc, mc, nc, kc int) {
	for i := ic; i < ic+mc; i++ {
		crow := c.Data[i*c.Stride+jc : i*c.Stride+jc+nc]
		arow := a.Data[i*a.Stride+pc : i*a.Stride+pc+kc]
		for p := 0; p < kc; p++ {
			av := alpha * arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[(pc+p)*b.Stride+jc : (pc+p)*b.Stride+jc+nc]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmFlops returns the floating-point operation count of an m x k by
// k x n multiply (2mnk), used by the DGEMM benchmark to convert time to
// FLOP/s.
func GemmFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
