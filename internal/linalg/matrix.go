// Package linalg provides the dense linear-algebra kernels under the
// HPL and DGEMM benchmarks: a row-major matrix type, a blocked
// cache-aware GEMM with optional goroutine parallelism, triangular
// solves, and a blocked right-looking LU factorization with partial
// pivoting, plus the norms and residual checks HPL uses for validation.
// Everything is pure Go float64; no assembly and no external BLAS.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Matrix is a dense row-major matrix view. Stride is the distance in
// Data between vertically adjacent elements (>= Cols), allowing
// submatrix views without copying.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New allocates a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, len rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("linalg: data length %d != %d*%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: data}, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// View returns the submatrix [i0:i0+rows, j0:j0+cols) sharing storage.
func (m *Matrix) View(i0, j0, rows, cols int) *Matrix {
	if i0 < 0 || j0 < 0 || i0+rows > m.Rows || j0+cols > m.Cols {
		panic(fmt.Sprintf("linalg: view [%d:%d,%d:%d) out of %dx%d",
			i0, i0+rows, j0, j0+cols, m.Rows, m.Cols))
	}
	return &Matrix{
		Rows: rows, Cols: cols, Stride: m.Stride,
		Data: m.Data[i0*m.Stride+j0:],
	}
}

// Clone returns a deep copy with a compact stride.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// Equalish reports whether two matrices agree elementwise within tol.
func (m *Matrix) Equalish(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-other.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// FillRandom fills the matrix with uniform values in [-0.5, 0.5) from a
// deterministic stream, the HPL test-matrix distribution.
func (m *Matrix) FillRandom(seed uint64) {
	s := rng.NewSplitMix64(seed)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = s.Sym()
		}
	}
}

// FillIdentity writes the identity (rectangular: ones on the main
// diagonal).
func (m *Matrix) FillIdentity() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			if i == j {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
	}
}

// NormInf returns the infinity norm (max absolute row sum).
func (m *Matrix) NormInf() float64 {
	var best float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > best {
			best = s
		}
	}
	return best
}

// NormFro returns the Frobenius norm.
func (m *Matrix) NormFro() float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// VecNormInf returns max |x_i|.
func VecNormInf(x []float64) float64 {
	var best float64
	for _, v := range x {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// MatVec computes y = A*x.
func MatVec(a *Matrix, x, y []float64) error {
	if len(x) != a.Cols || len(y) != a.Rows {
		return errors.New("linalg: matvec dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return nil
}
