package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when LU factorization meets an (effectively)
// zero pivot.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// DefaultLUBlock is the panel width for the blocked LU; ablation benches
// in internal/hpcc sweep it.
const DefaultLUBlock = 64

// TrsmLowerUnitLeft solves L*X = B in place (X overwrites B), where L is
// lower triangular with unit diagonal (only the strict lower part of l
// is referenced). l is n x n, b is n x m.
func TrsmLowerUnitLeft(l, b *Matrix) error {
	if l.Rows != l.Cols || l.Rows != b.Rows {
		return errors.New("linalg: trsm dimension mismatch")
	}
	n, m := l.Rows, b.Cols
	for i := 1; i < n; i++ {
		bi := b.Data[i*b.Stride : i*b.Stride+m]
		li := l.Row(i)
		for k := 0; k < i; k++ {
			lik := li[k]
			if lik == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+m]
			for j := range bi {
				bi[j] -= lik * bk[j]
			}
		}
	}
	return nil
}

// TrsmUpperLeft solves U*X = B in place, where U is upper triangular
// (diagonal included). u is n x n, b is n x m.
func TrsmUpperLeft(u, b *Matrix) error {
	if u.Rows != u.Cols || u.Rows != b.Rows {
		return errors.New("linalg: trsm dimension mismatch")
	}
	n, m := u.Rows, b.Cols
	for i := n - 1; i >= 0; i-- {
		bi := b.Data[i*b.Stride : i*b.Stride+m]
		ui := u.Row(i)
		for k := i + 1; k < n; k++ {
			uik := ui[k]
			if uik == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+m]
			for j := range bi {
				bi[j] -= uik * bk[j]
			}
		}
		d := ui[i]
		if d == 0 {
			return ErrSingular
		}
		inv := 1 / d
		for j := range bi {
			bi[j] *= inv
		}
	}
	return nil
}

// getrfPanel factorizes the m x nb panel a in place with partial
// pivoting (unblocked right-looking), recording pivot rows (absolute
// within the panel) into piv. Row swaps are applied only within the
// panel; the caller mirrors them across the rest of the matrix.
func getrfPanel(a *Matrix, piv []int) error {
	m, nb := a.Rows, a.Cols
	for j := 0; j < nb && j < m; j++ {
		// Pivot search in column j.
		p := j
		best := math.Abs(a.At(j, j))
		for i := j + 1; i < m; i++ {
			if v := math.Abs(a.At(i, j)); v > best {
				best, p = v, i
			}
		}
		piv[j] = p
		if best == 0 {
			return ErrSingular
		}
		if p != j {
			rj, rp := a.Row(j), a.Row(p)
			for k := range rj {
				rj[k], rp[k] = rp[k], rj[k]
			}
		}
		inv := 1 / a.At(j, j)
		for i := j + 1; i < m; i++ {
			lij := a.At(i, j) * inv
			a.Set(i, j, lij)
			if lij == 0 {
				continue
			}
			ri := a.Data[i*a.Stride : i*a.Stride+nb]
			rj := a.Data[j*a.Stride : j*a.Stride+nb]
			for k := j + 1; k < nb; k++ {
				ri[k] -= lij * rj[k]
			}
		}
	}
	return nil
}

// swapRows exchanges full rows i and p of a.
func swapRows(a *Matrix, i, p int) {
	if i == p {
		return
	}
	ri, rp := a.Row(i), a.Row(p)
	for k := range ri {
		ri[k], rp[k] = rp[k], ri[k]
	}
}

// Getrf computes the blocked right-looking LU factorization with partial
// pivoting, in place: A = P*L*U with L unit lower and U upper
// triangular, both stored in a. piv must have length min(rows, cols);
// piv[k] = r means row k was swapped with row r at step k. nb is the
// panel width (<=0 uses DefaultLUBlock); nthreads parallelizes the
// trailing GEMM update.
func Getrf(a *Matrix, piv []int, nb, nthreads int) error {
	n := min(a.Rows, a.Cols)
	if len(piv) != n {
		return fmt.Errorf("linalg: piv length %d, want %d", len(piv), n)
	}
	if nb <= 0 {
		nb = DefaultLUBlock
	}
	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		// Factor the current panel (rows j.., cols j..j+jb).
		panel := a.View(j, j, a.Rows-j, jb)
		panelPiv := make([]int, jb)
		if err := getrfPanel(panel, panelPiv); err != nil {
			return err
		}
		// Mirror the panel's row swaps across the rest of the matrix
		// and record absolute pivots.
		for k := 0; k < jb; k++ {
			p := panelPiv[k] + j // absolute row index
			piv[j+k] = p
			if p != j+k {
				// Left of the panel.
				if j > 0 {
					swapRows(a.View(0, 0, a.Rows, j), j+k, p)
				}
				// Right of the panel.
				if j+jb < a.Cols {
					swapRows(a.View(0, j+jb, a.Rows, a.Cols-j-jb), j+k, p)
				}
			}
		}
		if j+jb < a.Cols {
			// U12 := L11^-1 * A12
			l11 := a.View(j, j, jb, jb)
			a12 := a.View(j, j+jb, jb, a.Cols-j-jb)
			if err := TrsmLowerUnitLeft(l11, a12); err != nil {
				return err
			}
			// A22 -= L21 * U12 (the FLOP-dominant update).
			if j+jb < a.Rows {
				l21 := a.View(j+jb, j, a.Rows-j-jb, jb)
				a22 := a.View(j+jb, j+jb, a.Rows-j-jb, a.Cols-j-jb)
				if err := Gemm(-1, l21, a12, 1, a22, nthreads); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ApplyPiv applies the pivot sequence recorded by Getrf to a vector
// (forward order), i.e. computes P^T... the same permutation Getrf
// applied to the matrix rows.
func ApplyPiv(piv []int, x []float64) {
	for k, p := range piv {
		if p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
}

// Getrs solves A*x = b given the factorization computed by Getrf
// (lu holds L and U, piv the pivots). b is overwritten with the
// solution.
func Getrs(lu *Matrix, piv []int, b []float64) error {
	if lu.Rows != lu.Cols || len(b) != lu.Rows {
		return errors.New("linalg: getrs dimension mismatch")
	}
	ApplyPiv(piv, b)
	bm := &Matrix{Rows: len(b), Cols: 1, Stride: 1, Data: b}
	if err := TrsmLowerUnitLeft(lu, bm); err != nil {
		return err
	}
	return TrsmUpperLeft(lu, bm)
}

// LUFlops returns the canonical HPL operation count for factoring and
// solving an n x n system: 2n^3/3 + 3n^2/2.
func LUFlops(n int) float64 {
	nf := float64(n)
	return 2*nf*nf*nf/3 + 3*nf*nf/2
}

// HPLResidual computes the scaled residual HPL uses for validation:
//
//	||Ax - b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * n)
//
// A run passes when the value is O(1) (HPL's threshold is 16).
func HPLResidual(a *Matrix, x, b []float64) (float64, error) {
	n := a.Rows
	r := make([]float64, n)
	if err := MatVec(a, x, r); err != nil {
		return 0, err
	}
	for i := range r {
		r[i] -= b[i]
	}
	eps := math.Nextafter(1, 2) - 1
	denom := eps * (a.NormInf()*VecNormInf(x) + VecNormInf(b)) * float64(n)
	if denom == 0 {
		return 0, errors.New("linalg: degenerate residual denominator")
	}
	return VecNormInf(r) / denom, nil
}
