package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := New(3, 4)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Error("At/Set broken")
	}
	if len(m.Row(1)) != 4 || m.Row(1)[2] != 7.5 {
		t.Error("Row broken")
	}
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m, err := FromSlice(2, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 4 {
		t.Error("FromSlice layout wrong")
	}
	if _, err := FromSlice(2, 2, data); err == nil {
		t.Error("bad length accepted")
	}
	// Shares storage.
	data[0] = 42
	if m.At(0, 0) != 42 {
		t.Error("FromSlice copied")
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 1) != 9 {
		t.Error("view does not alias parent")
	}
	if v.Rows != 2 || v.Cols != 2 {
		t.Error("view shape wrong")
	}
}

func TestViewBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range view did not panic")
		}
	}()
	New(3, 3).View(1, 1, 3, 3)
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Error("clone aliases original")
	}
	if !m.Equalish(m.Clone(), 0) {
		t.Error("clone not equal")
	}
}

func TestNorms(t *testing.T) {
	m, _ := FromSlice(2, 2, []float64{1, -2, 3, 4})
	if m.NormInf() != 7 {
		t.Errorf("NormInf = %v, want 7", m.NormInf())
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if math.Abs(m.NormFro()-want) > 1e-12 {
		t.Errorf("NormFro = %v, want %v", m.NormFro(), want)
	}
	if VecNormInf([]float64{1, -5, 2}) != 5 {
		t.Error("VecNormInf wrong")
	}
}

func TestMatVec(t *testing.T) {
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 2)
	if err := MatVec(a, []float64{1, 1, 1}, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MatVec = %v", y)
	}
	if err := MatVec(a, []float64{1}, y); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// gemmNaive is the reference implementation tests compare against.
func gemmNaive(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	cases := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 4, 5}, {17, 23, 9}, {64, 64, 64}, {100, 37, 129}, {130, 257, 65},
	}
	for _, cs := range cases {
		for _, threads := range []int{1, 4} {
			a := New(cs.m, cs.k)
			b := New(cs.k, cs.n)
			a.FillRandom(1)
			b.FillRandom(2)
			c1 := New(cs.m, cs.n)
			c1.FillRandom(3)
			c2 := c1.Clone()
			gemmNaive(1.5, a, b, 0.5, c1)
			if err := Gemm(1.5, a, b, 0.5, c2, threads); err != nil {
				t.Fatal(err)
			}
			if !c1.Equalish(c2, 1e-9) {
				t.Errorf("%dx%dx%d threads=%d: blocked gemm disagrees with naive", cs.m, cs.k, cs.n, threads)
			}
		}
	}
}

func TestGemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta=0 must overwrite even NaN garbage in C (BLAS semantics).
	a := New(4, 4)
	b := New(4, 4)
	a.FillIdentity()
	b.FillRandom(5)
	c := New(4, 4)
	for i := range c.Data {
		c.Data[i] = math.NaN()
	}
	if err := Gemm(1, a, b, 0, c, 1); err != nil {
		t.Fatal(err)
	}
	if !c.Equalish(b, 1e-12) {
		t.Error("beta=0 did not overwrite NaN")
	}
}

func TestGemmDimensionMismatch(t *testing.T) {
	if err := Gemm(1, New(2, 3), New(4, 5), 0, New(2, 5), 1); err == nil {
		t.Error("mismatched inner dim accepted")
	}
	if err := Gemm(1, New(2, 3), New(3, 5), 0, New(3, 5), 1); err == nil {
		t.Error("mismatched output accepted")
	}
}

func TestGemmIdentityProperty(t *testing.T) {
	f := func(seed uint16, dim uint8) bool {
		n := int(dim)%20 + 1
		a := New(n, n)
		a.FillRandom(uint64(seed))
		id := New(n, n)
		id.FillIdentity()
		c := New(n, n)
		if err := Gemm(1, a, id, 0, c, 1); err != nil {
			return false
		}
		return c.Equalish(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGemmFlops(t *testing.T) {
	if GemmFlops(2, 3, 4) != 48 {
		t.Errorf("GemmFlops = %v", GemmFlops(2, 3, 4))
	}
}

func TestTrsmLowerUnit(t *testing.T) {
	// L = [1 0; 2 1], B = L*X0 with X0 known.
	l, _ := FromSlice(2, 2, []float64{1, 0, 2, 1})
	x0, _ := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := New(2, 2)
	gemmNaive(1, l, x0, 0, b)
	if err := TrsmLowerUnitLeft(l, b); err != nil {
		t.Fatal(err)
	}
	if !b.Equalish(x0, 1e-12) {
		t.Errorf("trsm lower: got %+v", b.Data)
	}
}

func TestTrsmUpper(t *testing.T) {
	u, _ := FromSlice(2, 2, []float64{2, 1, 0, 4})
	x0, _ := FromSlice(2, 2, []float64{1, -1, 0.5, 2})
	b := New(2, 2)
	gemmNaive(1, u, x0, 0, b)
	if err := TrsmUpperLeft(u, b); err != nil {
		t.Fatal(err)
	}
	if !b.Equalish(x0, 1e-12) {
		t.Errorf("trsm upper: got %+v", b.Data)
	}
}

func TestTrsmUpperSingular(t *testing.T) {
	u, _ := FromSlice(2, 2, []float64{1, 1, 0, 0})
	b := New(2, 1)
	if err := TrsmUpperLeft(u, b); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestGetrfReconstructs(t *testing.T) {
	// Verify P*A = L*U by reconstruction for several sizes and blocks.
	for _, n := range []int{1, 2, 5, 16, 33, 64, 100} {
		for _, nb := range []int{1, 4, 64} {
			a := New(n, n)
			a.FillRandom(uint64(n*1000 + nb))
			orig := a.Clone()
			piv := make([]int, n)
			if err := Getrf(a, piv, nb, 1); err != nil {
				t.Fatalf("n=%d nb=%d: %v", n, nb, err)
			}
			// Build L and U from the packed factor.
			l := New(n, n)
			u := New(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					switch {
					case i > j:
						l.Set(i, j, a.At(i, j))
					case i == j:
						l.Set(i, j, 1)
						u.Set(i, j, a.At(i, j))
					default:
						u.Set(i, j, a.At(i, j))
					}
				}
			}
			lu := New(n, n)
			gemmNaive(1, l, u, 0, lu)
			// Apply the pivots to the original (P*A).
			pa := orig.Clone()
			for k, p := range piv {
				swapRows(pa, k, p)
			}
			if !pa.Equalish(lu, 1e-8) {
				t.Fatalf("n=%d nb=%d: P*A != L*U", n, nb)
			}
		}
	}
}

func TestGetrfSingular(t *testing.T) {
	a := New(3, 3) // all zeros
	piv := make([]int, 3)
	if err := Getrf(a, piv, 0, 1); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestGetrfPivLenCheck(t *testing.T) {
	a := New(3, 3)
	if err := Getrf(a, make([]int, 2), 0, 1); err == nil {
		t.Error("short piv accepted")
	}
}

func TestGetrsSolves(t *testing.T) {
	for _, n := range []int{1, 3, 10, 50, 128} {
		a := New(n, n)
		a.FillRandom(uint64(n))
		orig := a.Clone()
		// b = A * xTrue
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = float64(i%7) - 3
		}
		b := make([]float64, n)
		if err := MatVec(a, xTrue, b); err != nil {
			t.Fatal(err)
		}
		piv := make([]int, n)
		if err := Getrf(a, piv, 32, 2); err != nil {
			t.Fatal(err)
		}
		if err := Getrs(a, piv, b); err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if math.Abs(b[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, b[i], xTrue[i])
			}
		}
		// HPL-style residual must be O(1).
		bb := make([]float64, n)
		if err := MatVec(orig, xTrue, bb); err != nil {
			t.Fatal(err)
		}
		res, err := HPLResidual(orig, b, bb)
		if err != nil {
			t.Fatal(err)
		}
		if res > 16 {
			t.Errorf("n=%d: HPL residual %v > 16", n, res)
		}
	}
}

func TestApplyPivRoundTrip(t *testing.T) {
	piv := []int{2, 2, 3, 3}
	x := []float64{0, 1, 2, 3}
	ApplyPiv(piv, x)
	// Forward application: step 0 swaps 0<->2, step 1 swaps 1<->2,
	// step 2 swaps 2<->3, step 3 no-op.
	want := []float64{2, 0, 3, 1}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("ApplyPiv = %v, want %v", x, want)
		}
	}
}

func TestLUFlops(t *testing.T) {
	got := LUFlops(10)
	want := 2*1000.0/3 + 150
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LUFlops(10) = %v, want %v", got, want)
	}
}

func TestHPLResidualDetectsWrongSolution(t *testing.T) {
	n := 20
	a := New(n, n)
	a.FillRandom(9)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	b := make([]float64, n)
	if err := MatVec(a, x, b); err != nil {
		t.Fatal(err)
	}
	good, err := HPLResidual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if good > 1 {
		t.Errorf("exact solution residual = %v", good)
	}
	x[0] += 1 // corrupt
	bad, err := HPLResidual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if bad < 100 {
		t.Errorf("corrupted solution residual = %v, want large", bad)
	}
}
