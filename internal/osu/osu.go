// Package osu reimplements the OSU micro-benchmark suite's measurement
// methodology on top of the internal/mp runtime: ping-pong latency,
// window-based streaming bandwidth, bidirectional bandwidth, multi-pair
// aggregates, and collective latency. The loop structure (warmup phase,
// timed phase, window acknowledgements, iteration scaling for large
// messages) follows the original benchmarks so the measured curves have
// the same shape and semantics.
//
// All benchmark functions are called from inside an mp.Run body; ranks
// not participating in a given measurement still enter the surrounding
// barriers.
package osu

import (
	"fmt"

	"repro/internal/mp"
)

// LargeThreshold is the message size above which iteration counts are
// scaled down, as in the OSU suite.
const LargeThreshold = 8192

// Options configures the point-to-point benchmarks.
type Options struct {
	// Sizes lists the message sizes in bytes; nil means DefaultSizes().
	Sizes []int
	// Warmup and Iters are the per-size loop counts (defaults 10/100;
	// both divided by 10 above LargeThreshold).
	Warmup, Iters int
	// Window is the number of in-flight messages per bandwidth
	// iteration (default 64, the OSU default).
	Window int
	// PairA and PairB are the ranks forming the measured pair
	// (default 0 and 1). Placement policy decides whether that pair is
	// intra-socket, intra-node or inter-node.
	PairA, PairB int
}

func (o Options) normalize(size int) Options {
	if o.Sizes == nil {
		o.Sizes = DefaultSizes()
	}
	if o.Warmup <= 0 {
		o.Warmup = 10
	}
	if o.Iters <= 0 {
		o.Iters = 100
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.PairB == 0 && o.PairA == 0 {
		o.PairB = 1
	}
	_ = size
	return o
}

// loops returns (warmup, iters) scaled for a message size.
func (o Options) loops(size int) (int, int) {
	if size > LargeThreshold {
		w, it := o.Warmup/10, o.Iters/10
		if w < 1 {
			w = 1
		}
		if it < 1 {
			it = 1
		}
		return w, it
	}
	return o.Warmup, o.Iters
}

// DefaultSizes returns the OSU size sweep: 0 plus powers of two from 1
// byte to 4 MiB.
func DefaultSizes() []int {
	sizes := []int{0}
	for s := 1; s <= 4<<20; s <<= 1 {
		sizes = append(sizes, s)
	}
	return sizes
}

// Sample is one point of a benchmark curve.
type Sample struct {
	Size  int     // message size in bytes
	Value float64 // seconds for latency curves, bytes/s for bandwidth
}

const benchTag = 7001

// Latency runs the OSU ping-pong latency benchmark between PairA and
// PairB, returning one sample per size: half round-trip time in
// seconds. Every rank must call it; non-pair ranks only synchronize.
func Latency(c *mp.Comm, opts Options) ([]Sample, error) {
	opts = opts.normalize(c.Size())
	if err := checkPair(c, opts); err != nil {
		return nil, err
	}
	var out []Sample
	for _, size := range opts.Sizes {
		warm, iters := opts.loops(size)
		buf := make([]byte, size)
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		me, peer := pairRole(c, opts)
		if me == 0 || me == 1 {
			var t0 float64
			for i := 0; i < warm+iters; i++ {
				if i == warm {
					t0 = c.Time()
				}
				if me == 0 {
					if err := c.Send(peer, benchTag, buf); err != nil {
						return nil, err
					}
					if _, err := c.Recv(peer, benchTag, buf); err != nil {
						return nil, err
					}
				} else {
					if _, err := c.Recv(peer, benchTag, buf); err != nil {
						return nil, err
					}
					if err := c.Send(peer, benchTag, buf); err != nil {
						return nil, err
					}
				}
			}
			elapsed := c.Time() - t0
			if me == 0 {
				out = append(out, Sample{Size: size, Value: elapsed / float64(2*iters)})
			}
		}
	}
	// Share the curve so every rank returns the same data.
	return shareCurve(c, opts.PairA, out, len(opts.Sizes))
}

// Bandwidth runs the OSU streaming bandwidth benchmark: PairA posts a
// window of nonblocking sends, PairB a window of receives followed by a
// 4-byte acknowledgement. Returns bytes/s per size.
func Bandwidth(c *mp.Comm, opts Options) ([]Sample, error) {
	opts = opts.normalize(c.Size())
	if err := checkPair(c, opts); err != nil {
		return nil, err
	}
	var out []Sample
	ack := make([]byte, 4)
	for _, size := range opts.Sizes {
		if size == 0 {
			continue // bandwidth of empty messages is undefined
		}
		warm, iters := opts.loops(size)
		buf := make([]byte, size)
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		me, peer := pairRole(c, opts)
		if me == 0 || me == 1 {
			var t0 float64
			reqs := make([]*mp.Request, opts.Window)
			for i := 0; i < warm+iters; i++ {
				if i == warm {
					t0 = c.Time()
				}
				if me == 0 {
					for w := 0; w < opts.Window; w++ {
						r, err := c.Isend(peer, benchTag, buf)
						if err != nil {
							return nil, err
						}
						reqs[w] = r
					}
					if err := c.WaitAll(reqs...); err != nil {
						return nil, err
					}
					if _, err := c.Recv(peer, benchTag+1, ack); err != nil {
						return nil, err
					}
				} else {
					for w := 0; w < opts.Window; w++ {
						r, err := c.Irecv(peer, benchTag, buf)
						if err != nil {
							return nil, err
						}
						reqs[w] = r
					}
					if err := c.WaitAll(reqs...); err != nil {
						return nil, err
					}
					if err := c.Send(peer, benchTag+1, ack); err != nil {
						return nil, err
					}
				}
			}
			elapsed := c.Time() - t0
			if me == 0 {
				moved := float64(size) * float64(opts.Window) * float64(iters)
				out = append(out, Sample{Size: size, Value: moved / elapsed})
			}
		}
	}
	want := 0
	for _, s := range opts.Sizes {
		if s != 0 {
			want++
		}
	}
	return shareCurve(c, opts.PairA, out, want)
}

// BiBandwidth measures bidirectional bandwidth: both ends stream a
// window concurrently; the reported value counts traffic in both
// directions, as osu_bibw does.
func BiBandwidth(c *mp.Comm, opts Options) ([]Sample, error) {
	opts = opts.normalize(c.Size())
	if err := checkPair(c, opts); err != nil {
		return nil, err
	}
	var out []Sample
	for _, size := range opts.Sizes {
		if size == 0 {
			continue
		}
		warm, iters := opts.loops(size)
		sbuf := make([]byte, size)
		rbuf := make([]byte, size)
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		me, peer := pairRole(c, opts)
		if me == 0 || me == 1 {
			var t0 float64
			sreqs := make([]*mp.Request, opts.Window)
			rreqs := make([]*mp.Request, opts.Window)
			for i := 0; i < warm+iters; i++ {
				if i == warm {
					t0 = c.Time()
				}
				for w := 0; w < opts.Window; w++ {
					r, err := c.Irecv(peer, benchTag, rbuf)
					if err != nil {
						return nil, err
					}
					rreqs[w] = r
				}
				for w := 0; w < opts.Window; w++ {
					r, err := c.Isend(peer, benchTag, sbuf)
					if err != nil {
						return nil, err
					}
					sreqs[w] = r
				}
				if err := c.WaitAll(sreqs...); err != nil {
					return nil, err
				}
				if err := c.WaitAll(rreqs...); err != nil {
					return nil, err
				}
			}
			elapsed := c.Time() - t0
			if me == 0 {
				moved := 2 * float64(size) * float64(opts.Window) * float64(iters)
				out = append(out, Sample{Size: size, Value: moved / elapsed})
			}
		}
	}
	want := 0
	for _, s := range opts.Sizes {
		if s != 0 {
			want++
		}
	}
	return shareCurve(c, opts.PairA, out, want)
}

// MultiPairBandwidth measures aggregate bandwidth over `pairs`
// concurrent (sender, receiver) pairs: sender i is rank i, receiver i is
// rank i+pairs. Returns aggregate bytes/s per size. All ranks call it;
// requires size >= 2*pairs.
func MultiPairBandwidth(c *mp.Comm, pairs int, opts Options) ([]Sample, error) {
	opts = opts.normalize(c.Size())
	if pairs < 1 || 2*pairs > c.Size() {
		return nil, fmt.Errorf("osu: %d pairs need %d ranks, have %d", pairs, 2*pairs, c.Size())
	}
	var out []Sample
	ack := make([]byte, 4)
	for _, size := range opts.Sizes {
		if size == 0 {
			continue
		}
		warm, iters := opts.loops(size)
		buf := make([]byte, size)
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		sender := c.Rank() < pairs
		receiver := c.Rank() >= pairs && c.Rank() < 2*pairs
		var peer int
		if sender {
			peer = c.Rank() + pairs
		} else if receiver {
			peer = c.Rank() - pairs
		}
		var t0 float64
		reqs := make([]*mp.Request, opts.Window)
		if sender || receiver {
			for i := 0; i < warm+iters; i++ {
				if i == warm {
					t0 = c.Time()
				}
				if sender {
					for w := 0; w < opts.Window; w++ {
						r, err := c.Isend(peer, benchTag, buf)
						if err != nil {
							return nil, err
						}
						reqs[w] = r
					}
					if err := c.WaitAll(reqs...); err != nil {
						return nil, err
					}
					if _, err := c.Recv(peer, benchTag+1, ack); err != nil {
						return nil, err
					}
				} else {
					for w := 0; w < opts.Window; w++ {
						r, err := c.Irecv(peer, benchTag, buf)
						if err != nil {
							return nil, err
						}
						reqs[w] = r
					}
					if err := c.WaitAll(reqs...); err != nil {
						return nil, err
					}
					if err := c.Send(peer, benchTag+1, ack); err != nil {
						return nil, err
					}
				}
			}
		}
		elapsed := c.Time() - t0
		// Aggregate: sum of per-sender rates. Senders contribute their
		// rate; everyone else contributes 0.
		var rate float64
		if sender && elapsed > 0 {
			rate = float64(size) * float64(opts.Window) * float64(iters) / elapsed
		}
		total, err := c.AllreduceScalar(mp.OpSum, rate)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{Size: size, Value: total})
	}
	return out, nil
}

// CollectiveLatency times `iters` invocations of coll (after `warmup`)
// across all ranks and returns the maximum per-iteration time over
// ranks, the metric the OSU collective benchmarks report.
func CollectiveLatency(c *mp.Comm, warmup, iters int, coll func() error) (float64, error) {
	if iters < 1 {
		return 0, fmt.Errorf("osu: iters must be >= 1")
	}
	for i := 0; i < warmup; i++ {
		if err := coll(); err != nil {
			return 0, err
		}
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	t0 := c.Time()
	for i := 0; i < iters; i++ {
		if err := coll(); err != nil {
			return 0, err
		}
	}
	local := (c.Time() - t0) / float64(iters)
	return c.AllreduceScalar(mp.OpMax, local)
}

// --- helpers ---

func checkPair(c *mp.Comm, opts Options) error {
	if opts.PairA == opts.PairB {
		return fmt.Errorf("osu: pair ranks must differ")
	}
	if opts.PairA < 0 || opts.PairA >= c.Size() || opts.PairB < 0 || opts.PairB >= c.Size() {
		return fmt.Errorf("osu: pair (%d,%d) out of range for %d ranks", opts.PairA, opts.PairB, c.Size())
	}
	return nil
}

// pairRole returns (0, peer) on PairA, (1, peer) on PairB and (-1, -1)
// elsewhere.
func pairRole(c *mp.Comm, opts Options) (int, int) {
	switch c.Rank() {
	case opts.PairA:
		return 0, opts.PairB
	case opts.PairB:
		return 1, opts.PairA
	default:
		return -1, -1
	}
}

// shareCurve broadcasts the measuring rank's samples so every rank
// returns the same curve.
func shareCurve(c *mp.Comm, root int, samples []Sample, n int) ([]Sample, error) {
	flat := make([]float64, 2*n)
	if c.Rank() == root {
		if len(samples) != n {
			return nil, fmt.Errorf("osu: internal: %d samples, want %d", len(samples), n)
		}
		for i, s := range samples {
			flat[2*i] = float64(s.Size)
			flat[2*i+1] = s.Value
		}
	}
	// Bcast over the float64 view.
	if err := c.Bcast(root, f64ToBytes(flat)); err != nil {
		return nil, err
	}
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{Size: int(flat[2*i]), Value: flat[2*i+1]}
	}
	return out, nil
}
