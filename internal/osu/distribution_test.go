package osu

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mp"
)

func TestLatencyDistributionBasic(t *testing.T) {
	err := mp.Run(2, simCfg(), func(c *mp.Comm) error {
		opts := Options{Sizes: []int{8, 4096}, Warmup: 2, Iters: 20}
		dist, err := LatencyDistribution(c, opts)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if dist != nil {
				return fmt.Errorf("non-measuring rank got data")
			}
			return nil
		}
		if len(dist) != 2 {
			return fmt.Errorf("got %d samples", len(dist))
		}
		for _, d := range dist {
			s := d.Summary
			if s.N != 20 {
				return fmt.Errorf("size %d: n = %d, want 20", d.Size, s.N)
			}
			if !(s.Min <= s.Median && s.Median <= s.Max) {
				return fmt.Errorf("size %d: ordering broken: %+v", d.Size, s)
			}
			if s.Min <= 0 {
				return fmt.Errorf("size %d: non-positive latency %v", d.Size, s.Min)
			}
		}
		// Larger messages take longer across the whole distribution.
		if dist[1].Summary.Median <= dist[0].Summary.Median {
			return fmt.Errorf("median did not grow with size: %v vs %v",
				dist[1].Summary.Median, dist[0].Summary.Median)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLatencyDistributionDeterministicOnSim(t *testing.T) {
	// The Sim fabric is deterministic: two runs must agree exactly.
	run := func() (float64, error) {
		var med float64
		err := mp.Run(2, mp.Config{Fabric: mp.Sim, Model: cluster.IBCluster()}, func(c *mp.Comm) error {
			dist, err := LatencyDistribution(c, Options{Sizes: []int{1024}, Warmup: 2, Iters: 10})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				med = dist[0].Summary.Median
			}
			return nil
		})
		return med, err
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("sim distribution not deterministic: %v vs %v", a, b)
	}
}

func TestLatencyDistributionValidation(t *testing.T) {
	err := mp.Run(2, simCfg(), func(c *mp.Comm) error {
		bad := Options{Sizes: []int{8}, PairA: 0, PairB: 5}
		if _, err := LatencyDistribution(c, bad); err == nil {
			return fmt.Errorf("bad pair accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
