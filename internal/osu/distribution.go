package osu

import (
	"repro/internal/mp"
	"repro/internal/stats"
)

// DistSample is one size point of a latency sweep with the full
// per-iteration distribution, as measurement studies report
// (min/avg/median/p95/max rather than a single mean).
type DistSample struct {
	Size    int
	Summary stats.Summary // of per-iteration half-RTT seconds
}

// LatencyDistribution runs the ping-pong like Latency but records every
// iteration's individual half round-trip, returning distribution
// summaries. On the deterministic Sim fabric the spread is genuine
// protocol behaviour (e.g. rendezvous handshakes interleaving with
// unrelated traffic); on real fabrics it captures scheduler and stack
// jitter.
func LatencyDistribution(c *mp.Comm, opts Options) ([]DistSample, error) {
	opts = opts.normalize(c.Size())
	if err := checkPair(c, opts); err != nil {
		return nil, err
	}
	var out []DistSample
	for _, size := range opts.Sizes {
		warm, iters := opts.loops(size)
		buf := make([]byte, size)
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		me, peer := pairRole(c, opts)
		var series []float64
		if me == 0 || me == 1 {
			for i := 0; i < warm+iters; i++ {
				t0 := c.Time()
				if me == 0 {
					if err := c.Send(peer, benchTag, buf); err != nil {
						return nil, err
					}
					if _, err := c.Recv(peer, benchTag, buf); err != nil {
						return nil, err
					}
				} else {
					if _, err := c.Recv(peer, benchTag, buf); err != nil {
						return nil, err
					}
					if err := c.Send(peer, benchTag, buf); err != nil {
						return nil, err
					}
				}
				if i >= warm && me == 0 {
					series = append(series, (c.Time()-t0)/2)
				}
			}
		}
		if me == 0 {
			s, err := stats.Summarize(series)
			if err != nil {
				return nil, err
			}
			out = append(out, DistSample{Size: size, Summary: s})
		}
	}
	// Only the measuring rank returns data; other ranks return nil and
	// a successful status (they participated in the barriers).
	return out, nil
}
