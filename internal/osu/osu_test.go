package osu

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mp"
)

// simCfg runs benchmarks on the virtual-time fabric so results are
// deterministic and fast.
func simCfg() mp.Config {
	return mp.Config{Fabric: mp.Sim, Model: cluster.IBCluster()}
}

func smallOpts() Options {
	return Options{
		Sizes:  []int{0, 8, 1024, 65536},
		Warmup: 2,
		Iters:  10,
		Window: 8,
	}
}

func TestLatencyCurve(t *testing.T) {
	err := mp.Run(4, simCfg(), func(c *mp.Comm) error {
		samples, err := Latency(c, smallOpts())
		if err != nil {
			return err
		}
		if len(samples) != 4 {
			return fmt.Errorf("got %d samples", len(samples))
		}
		// Latency must be positive and non-decreasing in size beyond
		// the first points (LogGP model is affine in size).
		for i, s := range samples {
			if s.Value <= 0 {
				return fmt.Errorf("sample %d: latency %v", i, s.Value)
			}
		}
		if samples[3].Value <= samples[1].Value {
			return fmt.Errorf("64KiB latency %v not above 8B latency %v",
				samples[3].Value, samples[1].Value)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLatencyAllRanksGetCurve(t *testing.T) {
	// Non-pair ranks must receive the same curve as the measuring rank.
	err := mp.Run(4, simCfg(), func(c *mp.Comm) error {
		samples, err := Latency(c, smallOpts())
		if err != nil {
			return err
		}
		sum := 0.0
		for _, s := range samples {
			sum += s.Value
		}
		total, err := c.AllreduceScalar(mp.OpMax, sum)
		if err != nil {
			return err
		}
		if total != sum {
			return fmt.Errorf("rank %d curve differs: %v vs max %v", c.Rank(), sum, total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLatencyIntraVsInterNode(t *testing.T) {
	// The headline shape of experiment F1: inter-node latency must
	// exceed intra-node latency on the modeled cluster.
	m := cluster.IBCluster()
	n := m.Topo.TotalCores()
	cfg := mp.Config{Fabric: mp.Sim, Model: m}
	opts := smallOpts()
	var intra, inter float64
	err := mp.Run(n, cfg, func(c *mp.Comm) error {
		o1 := opts
		o1.PairA, o1.PairB = 0, 1 // same socket under block placement
		s1, err := Latency(c, o1)
		if err != nil {
			return err
		}
		o2 := opts
		o2.PairA, o2.PairB = 0, n-1 // different nodes
		s2, err := Latency(c, o2)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			intra, inter = s1[1].Value, s2[1].Value
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if inter < 3*intra {
		t.Errorf("inter-node latency %v not >> intra-node %v", inter, intra)
	}
}

func TestBandwidthCurve(t *testing.T) {
	err := mp.Run(2, simCfg(), func(c *mp.Comm) error {
		samples, err := Bandwidth(c, smallOpts())
		if err != nil {
			return err
		}
		if len(samples) != 3 { // size 0 dropped
			return fmt.Errorf("got %d samples", len(samples))
		}
		// Bandwidth grows with message size toward the link asymptote.
		if samples[2].Value <= samples[0].Value {
			return fmt.Errorf("bw not increasing: %v", samples)
		}
		// It must not exceed the modeled link bandwidth by more than
		// rounding (intra-socket path here).
		link := cluster.IBCluster().Links.IntraSocket.Bandwidth()
		if samples[2].Value > 1.05*link {
			return fmt.Errorf("bw %v exceeds modeled link %v", samples[2].Value, link)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBiBandwidthAtLeastUnidirectional(t *testing.T) {
	err := mp.Run(2, simCfg(), func(c *mp.Comm) error {
		opts := smallOpts()
		uni, err := Bandwidth(c, opts)
		if err != nil {
			return err
		}
		bi, err := BiBandwidth(c, opts)
		if err != nil {
			return err
		}
		// At the largest size, bidirectional traffic counts both
		// directions and should be >= the unidirectional rate.
		last := len(uni) - 1
		if bi[last].Value < uni[last].Value*0.9 {
			return fmt.Errorf("bibw %v below uni %v", bi[last].Value, uni[last].Value)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiPairAggregates(t *testing.T) {
	m := cluster.IBCluster()
	cfg := mp.Config{Fabric: mp.Sim, Model: m}
	opts := Options{Sizes: []int{4096}, Warmup: 1, Iters: 5, Window: 4}
	rates := map[int]float64{}
	n := 8
	err := mp.Run(n, cfg, func(c *mp.Comm) error {
		for _, pairs := range []int{1, 2, 4} {
			s, err := MultiPairBandwidth(c, pairs, opts)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				rates[pairs] = s[0].Value
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(rates[2] > rates[1]) {
		t.Errorf("2 pairs (%v) not above 1 pair (%v)", rates[2], rates[1])
	}
	if !(rates[4] > rates[2]*0.9) {
		t.Errorf("4 pairs (%v) collapsed below 2 pairs (%v)", rates[4], rates[2])
	}
}

func TestMultiPairValidation(t *testing.T) {
	err := mp.Run(2, simCfg(), func(c *mp.Comm) error {
		if _, err := MultiPairBandwidth(c, 2, smallOpts()); err == nil {
			return fmt.Errorf("2 pairs on 2 ranks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveLatency(t *testing.T) {
	err := mp.Run(4, simCfg(), func(c *mp.Comm) error {
		buf := make([]byte, 64)
		lat, err := CollectiveLatency(c, 2, 10, func() error {
			return c.Bcast(0, buf)
		})
		if err != nil {
			return err
		}
		if lat <= 0 {
			return fmt.Errorf("bcast latency %v", lat)
		}
		barLat, err := CollectiveLatency(c, 2, 10, func() error {
			return c.Barrier()
		})
		if err != nil {
			return err
		}
		if barLat <= 0 {
			return fmt.Errorf("barrier latency %v", barLat)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveLatencyValidation(t *testing.T) {
	err := mp.Run(2, simCfg(), func(c *mp.Comm) error {
		if _, err := CollectiveLatency(c, 0, 0, func() error { return nil }); err == nil {
			return fmt.Errorf("iters=0 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairValidation(t *testing.T) {
	err := mp.Run(2, simCfg(), func(c *mp.Comm) error {
		bad := smallOpts()
		bad.PairA, bad.PairB = 1, 1
		if _, err := Latency(c, bad); err == nil {
			return fmt.Errorf("identical pair accepted")
		}
		bad.PairA, bad.PairB = 0, 9
		if _, err := Latency(c, bad); err == nil {
			return fmt.Errorf("out-of-range pair accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSizes(t *testing.T) {
	sizes := DefaultSizes()
	if sizes[0] != 0 || sizes[1] != 1 {
		t.Error("sizes must start 0, 1")
	}
	if sizes[len(sizes)-1] != 4<<20 {
		t.Errorf("largest size = %d, want 4 MiB", sizes[len(sizes)-1])
	}
	for i := 2; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Error("sizes must double")
		}
	}
}

func TestLoopScaling(t *testing.T) {
	o := Options{Warmup: 10, Iters: 100}.normalize(2)
	w, it := o.loops(100)
	if w != 10 || it != 100 {
		t.Errorf("small loops = %d/%d", w, it)
	}
	w, it = o.loops(1 << 20)
	if w != 1 || it != 10 {
		t.Errorf("large loops = %d/%d", w, it)
	}
}
