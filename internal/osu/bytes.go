package osu

import "repro/internal/bytesview"

// f64ToBytes views a float64 slice as bytes for transport through the
// byte-oriented collectives.
func f64ToBytes(xs []float64) []byte { return bytesview.F64(xs) }
