// Package stencil implements a 2-D Jacobi heat-diffusion kernel with
// 1-D row-block domain decomposition and halo exchange — the canonical
// nearest-neighbour workload of platform characterizations (the
// communication pattern of NAS MG/BT-class codes). Each iteration every
// rank exchanges one grid row with each neighbour (SendRecv) and
// optionally joins a global residual reduction, so the kernel's fabric
// sensitivity sits between EP's (none) and CG's (collective-per-
// iteration).
package stencil

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bytesview"
	"repro/internal/mp"
)

// Config configures a Jacobi run.
type Config struct {
	// NX, NY are the global grid dimensions (rows x cols), boundary
	// included. NX must be divisible by the rank count.
	NX, NY int
	// Iters is the iteration count.
	Iters int
	// CheckEvery joins a global residual allreduce every k iterations
	// (0 disables convergence checking).
	CheckEvery int
	// Tol stops early when the global max update falls below it
	// (only checked on CheckEvery boundaries).
	Tol float64
	// ComputeRate, if positive, charges cells/ComputeRate seconds of
	// virtual time per sweep on the Sim fabric.
	ComputeRate float64
}

// Result reports a Jacobi run.
type Result struct {
	Iters     int // iterations actually executed
	Seconds   float64
	CellsPerS float64 // interior cell updates per second
	LastDelta float64 // last measured global max update (-1 if unchecked)
	Converged bool
	HaloBytes int64 // total halo traffic this rank sent
}

// boundary returns the fixed boundary value at global position (i, j):
// the top edge is held at 1, the other edges at 0 — an asymmetric
// steady state that catches indexing errors.
func boundary(i, j, nx, ny int) float64 {
	if i == 0 {
		return 1
	}
	return 0
}

// Serial runs the same Jacobi iteration on one grid, as the reference
// for verification. Returns the final grid in row-major order.
func Serial(nx, ny, iters int) []float64 {
	cur := make([]float64, nx*ny)
	next := make([]float64, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i == 0 || i == nx-1 || j == 0 || j == ny-1 {
				cur[i*ny+j] = boundary(i, j, nx, ny)
				next[i*ny+j] = cur[i*ny+j]
			}
		}
	}
	for it := 0; it < iters; it++ {
		for i := 1; i < nx-1; i++ {
			for j := 1; j < ny-1; j++ {
				next[i*ny+j] = 0.25 * (cur[(i-1)*ny+j] + cur[(i+1)*ny+j] +
					cur[i*ny+j-1] + cur[i*ny+j+1])
			}
		}
		cur, next = next, cur
	}
	return cur
}

// Jacobi runs the distributed kernel and returns this rank's block of
// the final grid (rows [rank*NX/p, (rank+1)*NX/p), all NY columns) plus
// the run metrics.
func Jacobi(c *mp.Comm, cfg Config) ([]float64, Result, error) {
	p := c.Size()
	nx, ny := cfg.NX, cfg.NY
	if nx < 2 || ny < 2 {
		return nil, Result{}, fmt.Errorf("stencil: grid %dx%d too small", nx, ny)
	}
	if nx%p != 0 {
		return nil, Result{}, fmt.Errorf("stencil: NX %d not divisible by %d ranks", nx, p)
	}
	if cfg.Iters < 0 {
		return nil, Result{}, errors.New("stencil: negative iteration count")
	}
	rows := nx / p
	r0 := c.Rank() * rows
	up := c.Rank() - 1   // owns rows above
	down := c.Rank() + 1 // owns rows below

	// Local storage with one ghost row on each side: rows+2 x ny.
	cur := make([]float64, (rows+2)*ny)
	next := make([]float64, (rows+2)*ny)
	idx := func(i, j int) int { return (i+1)*ny + j } // i in [-1, rows]
	for i := 0; i < rows; i++ {
		gi := r0 + i
		for j := 0; j < ny; j++ {
			if gi == 0 || gi == nx-1 || j == 0 || j == ny-1 {
				v := boundary(gi, j, nx, ny)
				cur[idx(i, j)] = v
				next[idx(i, j)] = v
			}
		}
	}

	const haloTag = 7400
	var haloBytes int64
	res := Result{LastDelta: -1}
	if err := c.Barrier(); err != nil {
		return nil, res, err
	}
	t0 := c.Time()

	iters := 0
	for it := 0; it < cfg.Iters; it++ {
		// Halo exchange: send my top row up / bottom row down, receive
		// the neighbours' adjacent rows into the ghost rows. Tags are
		// direction-tagged (haloTag = upward traffic, haloTag+1 =
		// downward), so rank r's up-exchange pairs with rank r-1's
		// down-exchange.
		if up >= 0 {
			sendRow := cur[idx(0, 0):idx(0, ny)]
			recvRow := cur[idx(-1, 0):idx(-1, ny)]
			if _, err := c.SendRecv(up, haloTag, bytesview.F64(sendRow), up, haloTag+1, bytesview.F64(recvRow)); err != nil {
				return nil, res, fmt.Errorf("stencil: halo up: %w", err)
			}
			haloBytes += int64(ny * 8)
		}
		if down < p {
			sendRow := cur[idx(rows-1, 0):idx(rows-1, ny)]
			recvRow := cur[idx(rows, 0):idx(rows, ny)]
			if _, err := c.SendRecv(down, haloTag+1, bytesview.F64(sendRow), down, haloTag, bytesview.F64(recvRow)); err != nil {
				return nil, res, fmt.Errorf("stencil: halo down: %w", err)
			}
			haloBytes += int64(ny * 8)
		}

		// Sweep the interior (skipping global boundary rows/cols).
		var delta float64
		for i := 0; i < rows; i++ {
			gi := r0 + i
			if gi == 0 || gi == nx-1 {
				continue
			}
			for j := 1; j < ny-1; j++ {
				v := 0.25 * (cur[idx(i-1, j)] + cur[idx(i+1, j)] +
					cur[idx(i, j-1)] + cur[idx(i, j+1)])
				if d := math.Abs(v - cur[idx(i, j)]); d > delta {
					delta = d
				}
				next[idx(i, j)] = v
			}
		}
		// Boundary columns/rows carry over.
		cur, next = next, cur
		if cfg.ComputeRate > 0 {
			c.Compute(float64(rows*ny) / cfg.ComputeRate)
		}
		iters++

		if cfg.CheckEvery > 0 && (it+1)%cfg.CheckEvery == 0 {
			global, err := c.AllreduceScalar(mp.OpMax, delta)
			if err != nil {
				return nil, res, err
			}
			res.LastDelta = global
			if cfg.Tol > 0 && global < cfg.Tol {
				res.Converged = true
				break
			}
		}
	}

	if err := c.Barrier(); err != nil {
		return nil, res, err
	}
	res.Iters = iters
	res.Seconds = c.Time() - t0
	res.HaloBytes = haloBytes
	if res.Seconds > 0 {
		res.CellsPerS = float64(iters) * float64(rows*ny) / res.Seconds
	}

	// Strip the ghost rows for the returned block.
	out := make([]float64, rows*ny)
	for i := 0; i < rows; i++ {
		copy(out[i*ny:(i+1)*ny], cur[idx(i, 0):idx(i, ny)])
	}
	return out, res, nil
}

// Gather assembles the distributed blocks on every rank (row blocks are
// contiguous, so a single allgather suffices). For testing and small
// demos only.
func Gather(c *mp.Comm, block []float64, nx, ny int) ([]float64, error) {
	full := make([]float64, nx*ny)
	if err := c.Allgather(bytesview.F64(block), bytesview.F64(full)); err != nil {
		return nil, err
	}
	return full, nil
}
