package stencil

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mp"
)

func TestSerialBoundaryAndSmoothing(t *testing.T) {
	g := Serial(8, 8, 50)
	// Top edge held at 1, bottom at 0.
	for j := 0; j < 8; j++ {
		if g[j] != 1 {
			t.Fatalf("top boundary moved: %v", g[j])
		}
		if g[7*8+j] != 0 {
			t.Fatalf("bottom boundary moved: %v", g[7*8+j])
		}
	}
	// Interior must have warmed above 0 near the top and stay within
	// the boundary envelope [0, 1].
	if g[1*8+4] <= 0 {
		t.Error("heat did not diffuse from the hot edge")
	}
	for i, v := range g {
		if v < 0 || v > 1 {
			t.Fatalf("cell %d = %v outside [0,1] (maximum principle)", i, v)
		}
	}
	// Monotone decay away from the hot edge along a column.
	if !(g[1*8+4] > g[3*8+4] && g[3*8+4] > g[6*8+4]) {
		t.Errorf("no monotone decay: %v %v %v", g[1*8+4], g[3*8+4], g[6*8+4])
	}
}

func TestJacobiMatchesSerial(t *testing.T) {
	const nx, ny, iters = 16, 12, 40
	want := Serial(nx, ny, iters)
	for _, p := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := mp.Run(p, mp.Config{}, func(c *mp.Comm) error {
				block, res, err := Jacobi(c, Config{NX: nx, NY: ny, Iters: iters})
				if err != nil {
					return err
				}
				if res.Iters != iters {
					return fmt.Errorf("ran %d iters, want %d", res.Iters, iters)
				}
				full, err := Gather(c, block, nx, ny)
				if err != nil {
					return err
				}
				for i := range full {
					if math.Abs(full[i]-want[i]) > 1e-12 {
						return fmt.Errorf("cell %d: %v vs serial %v", i, full[i], want[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestJacobiConvergence(t *testing.T) {
	err := mp.Run(2, mp.Config{}, func(c *mp.Comm) error {
		_, res, err := Jacobi(c, Config{
			NX: 16, NY: 16, Iters: 100000, CheckEvery: 50, Tol: 1e-8,
		})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("did not converge: %+v", res)
		}
		if res.Iters >= 100000 {
			return fmt.Errorf("convergence did not stop early")
		}
		if res.LastDelta >= 1e-8 {
			return fmt.Errorf("last delta %v above tol", res.LastDelta)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJacobiValidation(t *testing.T) {
	err := mp.Run(3, mp.Config{}, func(c *mp.Comm) error {
		if _, _, err := Jacobi(c, Config{NX: 16, NY: 16, Iters: 1}); err == nil {
			return fmt.Errorf("NX not divisible by p accepted")
		}
		if _, _, err := Jacobi(c, Config{NX: 3, NY: 1, Iters: 1}); err == nil {
			return fmt.Errorf("tiny grid accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJacobiHaloAccounting(t *testing.T) {
	err := mp.Run(4, mp.Config{}, func(c *mp.Comm) error {
		const nx, ny, iters = 16, 10, 7
		_, res, err := Jacobi(c, Config{NX: nx, NY: ny, Iters: iters})
		if err != nil {
			return err
		}
		neighbours := 2
		if c.Rank() == 0 || c.Rank() == 3 {
			neighbours = 1
		}
		want := int64(iters * neighbours * ny * 8)
		if res.HaloBytes != want {
			return fmt.Errorf("rank %d halo bytes %d, want %d", c.Rank(), res.HaloBytes, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJacobiOnSimFabricsOrdering(t *testing.T) {
	// Halo exchange is latency-sensitive at small NY: IB must beat
	// GigE in modeled cell-update rate.
	rate := map[string]float64{}
	for _, mk := range []func() *cluster.Model{cluster.GigECluster, cluster.IBCluster} {
		m := mk()
		m.Placement = cluster.Cyclic
		err := mp.Run(8, mp.Config{Fabric: mp.Sim, Model: m}, func(c *mp.Comm) error {
			_, res, err := Jacobi(c, Config{
				NX: 64, NY: 64, Iters: 30, ComputeRate: 1e9,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				rate[m.Name] = res.CellsPerS
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if rate["ib-8n"] <= rate["gige-8n"] {
		t.Errorf("IB stencil rate %v not above GigE %v", rate["ib-8n"], rate["gige-8n"])
	}
}
