package mp

import (
	"errors"
	"fmt"

	"repro/internal/transport"
)

// engine is the per-rank protocol state shared by every communicator
// derived from the same Run: the matching queues, the rendezvous
// tracking, and the fabric endpoint. It is confined to the rank's
// goroutine.
type engine struct {
	ep  transport.Endpoint
	cfg Config

	seq        uint64              // per-sender sequence for rendezvous
	unexpected []transport.Packet  // unmatched Data/RTS packets, arrival order
	posted     []*Request          // posted receives, post order
	pendSends  map[uint64]*Request // rendezvous sends awaiting CTS, by own seq
	rndvRecvs  map[rndvKey]*Request
	stats      OpStats
}

type rndvKey struct {
	src int // global rank
	seq uint64
}

// Comm is a communicator: a rank's membership in an ordered group, with
// point-to-point operations, collectives, and the clock. The world
// communicator is passed to Run's body; Split derives sub-communicators.
// A Comm is confined to the goroutine Run started it on.
type Comm struct {
	eng       *engine
	ctx       uint64 // context id separating communicators' traffic
	rank      int    // rank within this communicator
	ranks     []int  // global rank of each member; ranks[rank] == self
	collEpoch uint64 // collective invocation counter
	splitSeq  uint64 // Split invocation counter (for child ctx derivation)
}

func newComm(ep transport.Endpoint, cfg Config) *Comm {
	eng := &engine{
		ep:        ep,
		cfg:       cfg,
		pendSends: make(map[uint64]*Request),
		rndvRecvs: make(map[rndvKey]*Request),
	}
	ranks := make([]int, ep.Size())
	for i := range ranks {
		ranks[i] = i
	}
	return &Comm{eng: eng, ctx: 0, rank: ep.Rank(), ranks: ranks}
}

// Rank returns this rank's id within the communicator, in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// GlobalRank returns this rank's id in the world communicator.
func (c *Comm) GlobalRank() int { return c.eng.ep.Rank() }

// Time returns the rank's current time in seconds — wall-clock on real
// fabrics, virtual time on the Sim fabric. Benchmark loops difference it.
func (c *Comm) Time() float64 { return c.eng.ep.Now() }

// Compute charges dt seconds of local computation to the rank's virtual
// clock (no-op on real fabrics). Benchmarks use it to model compute
// phases between communication on the simulated platform.
func (c *Comm) Compute(dt float64) { c.eng.ep.AddDelay(dt) }

// global translates a communicator rank to a global rank.
func (c *Comm) global(r int) int { return c.ranks[r] }

// localOf translates a global rank to this communicator's rank, or -1.
func (c *Comm) localOf(g int) int {
	for i, r := range c.ranks {
		if r == g {
			return i
		}
	}
	return -1
}

// Status describes a completed receive (or a probe match).
type Status struct {
	Source int
	Tag    int
	Count  int // bytes delivered (for Probe: the message's full size)
}

// Request is a nonblocking operation handle.
type Request struct {
	c      *Comm
	done   bool
	err    error
	isSend bool
	ctx    uint64

	// Receive-side state. src is a communicator rank or AnySource; the
	// matching engine compares global ranks, so srcGlobal holds the
	// translated value (or AnySource).
	src, tag             int
	srcGlobal            int
	buf                  []byte
	n                    int
	actualSrc, actualTag int // actualSrc is a communicator rank

	// Send-side state.
	seq  uint64
	dst  int // global rank
	data []byte
}

// Done reports whether the operation has completed. It does not drive
// progress; use Test or Wait for that.
func (r *Request) Done() bool { return r.done }

// Wait drives progress until the operation completes, returning the
// receive status (zero for sends).
func (r *Request) Wait() (Status, error) {
	if err := r.c.waitFor(r); err != nil {
		return Status{}, err
	}
	return r.status(), r.err
}

// Test drives one non-blocking progress step and reports completion.
func (r *Request) Test() (bool, Status, error) {
	if !r.done {
		if err := r.c.progress(false); err != nil {
			return false, Status{}, err
		}
	}
	if !r.done {
		return false, Status{}, nil
	}
	return true, r.status(), r.err
}

func (r *Request) status() Status {
	if r.isSend {
		return Status{}
	}
	return Status{Source: r.actualSrc, Tag: r.actualTag, Count: r.n}
}

// ErrTruncated is returned when a message is longer than the posted
// receive buffer (the analogue of MPI_ERR_TRUNCATE).
var ErrTruncated = errors.New("mp: message truncated: receive buffer too small")

// ErrClosed is returned when the fabric shuts down under a blocked rank
// (typically because another rank failed).
var ErrClosed = errors.New("mp: fabric closed while waiting")

func (c *Comm) checkPeer(r int) error {
	if r < 0 || r >= c.Size() {
		return fmt.Errorf("mp: peer rank %d out of [0,%d)", r, c.Size())
	}
	return nil
}

func (c *Comm) checkUserTag(tag int) error {
	if tag < 0 {
		return fmt.Errorf("mp: user tag %d must be >= 0", tag)
	}
	return nil
}

// Send sends buf to rank dst with the given tag, blocking until the
// buffer may be reused (eager: immediately; rendezvous: after transfer).
func (c *Comm) Send(dst, tag int, buf []byte) error {
	if err := c.checkUserTag(tag); err != nil {
		return err
	}
	return c.sendInternal(dst, tag, buf)
}

// sendInternal is Send without the user-tag check; collectives use
// negative tags.
func (c *Comm) sendInternal(dst, tag int, buf []byte) error {
	req, err := c.isendInternal(dst, tag, buf)
	if err != nil {
		return err
	}
	return c.waitFor(req)
}

// Isend starts a nonblocking send. The caller must not modify buf until
// the returned request completes.
func (c *Comm) Isend(dst, tag int, buf []byte) (*Request, error) {
	if err := c.checkUserTag(tag); err != nil {
		return nil, err
	}
	return c.isendInternal(dst, tag, buf)
}

func (c *Comm) isendInternal(dst, tag int, buf []byte) (*Request, error) {
	if err := c.checkPeer(dst); err != nil {
		return nil, err
	}
	gdst := c.global(dst)
	eng := c.eng
	eager := eng.cfg.eager()
	if eager >= 0 && len(buf) <= eager {
		// Eager: the transport copies the payload; the send is
		// complete (buffered) as soon as the packet is queued.
		err := eng.ep.Send(gdst, transport.Packet{
			Type: transport.Data,
			Tag:  tag,
			Ctx:  c.ctx,
			Size: len(buf),
			Data: buf,
		})
		if err != nil {
			return nil, err
		}
		eng.stats.SendsEager++
		eng.stats.BytesSent += uint64(len(buf))
		return &Request{c: c, done: true, isSend: true, dst: gdst}, nil
	}
	// Rendezvous: announce with RTS; payload moves when CTS arrives.
	eng.seq++
	req := &Request{c: c, isSend: true, seq: eng.seq, dst: gdst, data: buf, ctx: c.ctx}
	eng.pendSends[eng.seq] = req
	err := eng.ep.Send(gdst, transport.Packet{
		Type: transport.RTS,
		Tag:  tag,
		Ctx:  c.ctx,
		Seq:  eng.seq,
		Size: len(buf),
	})
	if err != nil {
		delete(eng.pendSends, eng.seq)
		return nil, err
	}
	eng.stats.SendsRndv++
	eng.stats.BytesSent += uint64(len(buf))
	return req, nil
}

// Recv receives a message from src (or AnySource) with tag (or AnyTag)
// into buf, blocking until delivery.
func (c *Comm) Recv(src, tag int, buf []byte) (Status, error) {
	req, err := c.Irecv(src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(src, tag int, buf []byte) (*Request, error) {
	srcGlobal := AnySource
	if src != AnySource {
		if err := c.checkPeer(src); err != nil {
			return nil, err
		}
		srcGlobal = c.global(src)
	}
	req := &Request{c: c, src: src, srcGlobal: srcGlobal, tag: tag, buf: buf, ctx: c.ctx}
	c.postRecv(req)
	return req, nil
}

// Probe blocks until a message matching (src, tag) is available without
// consuming it, returning its envelope with Count set to the full
// message size.
func (c *Comm) Probe(src, tag int) (Status, error) {
	for {
		st, ok, err := c.Iprobe(src, tag)
		if err != nil {
			return Status{}, err
		}
		if ok {
			return st, nil
		}
		if err := c.progress(true); err != nil {
			return Status{}, err
		}
	}
}

// Iprobe checks without blocking whether a message matching (src, tag)
// is available; it drives one progress step if nothing matches
// immediately.
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	c.eng.stats.Probes++
	srcGlobal := AnySource
	if src != AnySource {
		if err := c.checkPeer(src); err != nil {
			return Status{}, false, err
		}
		srcGlobal = c.global(src)
	}
	match := func() (Status, bool) {
		for _, pkt := range c.eng.unexpected {
			if pkt.Ctx != c.ctx {
				continue
			}
			if srcGlobal != AnySource && srcGlobal != pkt.Src {
				continue
			}
			if tag != AnyTag && tag != pkt.Tag {
				continue
			}
			return Status{Source: c.localOf(pkt.Src), Tag: pkt.Tag, Count: pkt.Size}, true
		}
		return Status{}, false
	}
	if st, ok := match(); ok {
		return st, true, nil
	}
	if err := c.progress(false); err != nil {
		return Status{}, false, err
	}
	st, ok := match()
	return st, ok, nil
}

// SendRecv performs a combined send and receive, safe against the
// head-to-head deadlock that two blocking Sends would cause.
func (c *Comm) SendRecv(dst, sendTag int, sendBuf []byte, src, recvTag int, recvBuf []byte) (Status, error) {
	if err := c.checkUserTag(sendTag); err != nil {
		return Status{}, err
	}
	if err := c.checkUserTag(recvTag); err != nil {
		return Status{}, err
	}
	return c.sendRecvInternal(dst, sendTag, sendBuf, src, recvTag, recvBuf)
}

func (c *Comm) sendRecvInternal(dst, sendTag int, sendBuf []byte, src, recvTag int, recvBuf []byte) (Status, error) {
	rreq, err := c.Irecv(src, recvTag, recvBuf)
	if err != nil {
		return Status{}, err
	}
	sreq, err := c.isendInternal(dst, sendTag, sendBuf)
	if err != nil {
		return Status{}, err
	}
	if err := c.waitFor(sreq); err != nil {
		return Status{}, err
	}
	return rreq.Wait()
}

// --- matching and progress engine ---

// matches reports whether a posted receive req accepts a packet with the
// given envelope (global source rank, tag, context).
func (r *Request) matches(src, tag int, ctx uint64) bool {
	if r.ctx != ctx {
		return false
	}
	if r.srcGlobal != AnySource && r.srcGlobal != src {
		return false
	}
	if r.tag != AnyTag && r.tag != tag {
		return false
	}
	return true
}

// postRecv first searches the unexpected queue in arrival order, then
// appends the request to the posted list.
func (c *Comm) postRecv(req *Request) {
	eng := c.eng
	for i, pkt := range eng.unexpected {
		if !req.matches(pkt.Src, pkt.Tag, pkt.Ctx) {
			continue
		}
		eng.unexpected = append(eng.unexpected[:i], eng.unexpected[i+1:]...)
		eng.stats.MatchUnexp++
		switch pkt.Type {
		case transport.Data:
			c.deliver(req, pkt)
		case transport.RTS:
			c.grantRndv(req, pkt)
		}
		return
	}
	eng.posted = append(eng.posted, req)
}

// matchPosted removes and returns the first posted receive matching the
// envelope, or nil.
func (eng *engine) matchPosted(src, tag int, ctx uint64) *Request {
	for i, req := range eng.posted {
		if req.matches(src, tag, ctx) {
			eng.posted = append(eng.posted[:i], eng.posted[i+1:]...)
			return req
		}
	}
	return nil
}

// deliver copies a payload into the receive buffer and completes the
// request. The envelope is taken from the packet for eager data; for
// rendezvous payloads (whose packets carry no tag) it was already
// recorded from the RTS by grantRndv. Virtual time is charged here — at
// match time — not when the packet was pulled off the fabric: a packet
// sitting in the unexpected queue is NIC-buffered data the CPU has not
// touched yet, and charging its (possibly far-future) arrival early
// would teleport the rank's clock forward.
func (c *Comm) deliver(req *Request, pkt transport.Packet) {
	c.applyClock(pkt)
	req.n = copy(req.buf, pkt.Data)
	if len(pkt.Data) > len(req.buf) {
		req.err = ErrTruncated
	}
	if pkt.Type == transport.Data {
		req.actualSrc = req.c.localOf(pkt.Src)
		req.actualTag = pkt.Tag
	}
	req.done = true
	c.eng.stats.Recvs++
	c.eng.stats.BytesRecv += uint64(req.n)
}

// grantRndv answers a matched RTS with a CTS and parks the request until
// the payload arrives. As in deliver, the RTS's arrival time is charged
// now, at match time.
func (c *Comm) grantRndv(req *Request, pkt transport.Packet) {
	c.applyClock(pkt)
	req.actualSrc = req.c.localOf(pkt.Src)
	req.actualTag = pkt.Tag
	eng := c.eng
	eng.rndvRecvs[rndvKey{src: pkt.Src, seq: pkt.Seq}] = req
	if err := eng.ep.Send(pkt.Src, transport.Packet{Type: transport.CTS, Seq: pkt.Seq, Ctx: pkt.Ctx}); err != nil {
		req.err = err
		req.done = true
		delete(eng.rndvRecvs, rndvKey{src: pkt.Src, seq: pkt.Seq})
	}
}

// applyClock charges packet arrival and receive overhead to the rank's
// virtual clock (no-op on real fabrics, where both fields are zero).
func (c *Comm) applyClock(pkt transport.Packet) {
	if pkt.Arrival > 0 {
		c.eng.ep.AdvanceTo(pkt.Arrival)
	}
	if pkt.RecvO > 0 {
		c.eng.ep.AddDelay(pkt.RecvO)
	}
}

// handle dispatches one incoming packet through the protocol state
// machine.
func (c *Comm) handle(pkt transport.Packet) error {
	eng := c.eng
	switch pkt.Type {
	case transport.Data:
		if req := eng.matchPosted(pkt.Src, pkt.Tag, pkt.Ctx); req != nil {
			eng.stats.MatchPosted++
			req.c.deliver(req, pkt)
		} else {
			eng.unexpected = append(eng.unexpected, pkt)
		}
	case transport.RTS:
		if req := eng.matchPosted(pkt.Src, pkt.Tag, pkt.Ctx); req != nil {
			eng.stats.MatchPosted++
			req.c.grantRndv(req, pkt)
		} else {
			eng.unexpected = append(eng.unexpected, pkt)
		}
	case transport.CTS:
		c.applyClock(pkt) // the sender acts on the grant immediately
		req, ok := eng.pendSends[pkt.Seq]
		if !ok {
			return fmt.Errorf("mp: rank %d: CTS for unknown seq %d", c.GlobalRank(), pkt.Seq)
		}
		delete(eng.pendSends, pkt.Seq)
		err := eng.ep.Send(req.dst, transport.Packet{
			Type: transport.RndvData,
			Seq:  pkt.Seq,
			Ctx:  pkt.Ctx,
			Size: len(req.data),
			Data: req.data,
		})
		req.data = nil
		req.err = err
		req.done = true
	case transport.RndvData:
		key := rndvKey{src: pkt.Src, seq: pkt.Seq}
		req, ok := eng.rndvRecvs[key]
		if !ok {
			return fmt.Errorf("mp: rank %d: rendezvous data for unknown %v", c.GlobalRank(), key)
		}
		delete(eng.rndvRecvs, key)
		req.c.deliver(req, pkt)
	default:
		return fmt.Errorf("mp: rank %d: unknown packet type %v", c.GlobalRank(), pkt.Type)
	}
	return nil
}

// progress pulls at most one packet from the fabric and handles it.
func (c *Comm) progress(block bool) error {
	pkt, ok, err := c.eng.ep.Recv(block)
	if err != nil {
		return err
	}
	if !ok {
		if block {
			return ErrClosed
		}
		return nil
	}
	return c.handle(pkt)
}

// waitFor drives progress until req completes.
func (c *Comm) waitFor(req *Request) error {
	for !req.done {
		if err := c.progress(true); err != nil {
			return err
		}
	}
	return req.err
}

// WaitAll completes every request, returning the first error.
func (c *Comm) WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
