// Package mp is the message-passing runtime the benchmarks run on — the
// stand-in for MPI (see DESIGN.md). It provides:
//
//   - SPMD launch: Run spawns n ranks as goroutines over a chosen fabric
//     (in-process, virtual-time simulated, or loopback TCP).
//   - Point-to-point: blocking Send/Recv, nonblocking Isend/Irecv with
//     Requests, combined SendRecv, source/tag wildcards, and the MPI
//     matching rules (FIFO per (src,dst), first-match against posted
//     receives, unexpected-message queue).
//   - Protocols: messages at or below the eager threshold are sent
//     eagerly (buffered); larger messages use rendezvous (RTS/CTS),
//     exactly the protocol split whose crossover the characterization
//     measures (experiment F12).
//   - Collectives: barrier, bcast, gather(v-less), scatter, allgather,
//     alltoall over bytes, and reduce/allreduce/reduce-scatter/scan over
//     float64 with selectable classic algorithms (experiment F6).
//
// Progress is single-threaded per rank, as in most MPI implementations:
// a rank advances its pending operations only while it is inside an mp
// call. Programs that would deadlock under MPI's semantics (e.g. two
// ranks issuing large blocking sends to each other with no receives
// posted) deadlock here too — by design.
package mp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// Wildcards for Recv/Irecv/Probe.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any user tag.
	AnyTag = -1
)

// Internal collective tags live far below user tag space; user tags must
// be >= 0.
const collTagBase = -(1 << 20)

// DefaultEagerThreshold is the protocol switch point in bytes, matching
// the common MPI default for shared-memory BTLs.
const DefaultEagerThreshold = 8192

// Fabric selects the transport under the runtime.
type Fabric int

const (
	// InProc exchanges packets through in-process mailboxes (wall-clock
	// timing).
	InProc Fabric = iota
	// Sim exchanges packets in-process with virtual-time stamps from a
	// cluster.Model; Comm.Time returns virtual seconds.
	Sim
	// TCP exchanges packets over loopback TCP sockets.
	TCP
)

// String implements fmt.Stringer.
func (f Fabric) String() string {
	switch f {
	case InProc:
		return "inproc"
	case Sim:
		return "sim"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("Fabric(%d)", int(f))
	}
}

// BcastAlgo selects the broadcast algorithm.
type BcastAlgo int

const (
	// BcastAuto picks binomial for small messages and
	// scatter-allgather for large ones.
	BcastAuto BcastAlgo = iota
	// BcastBinomial uses a binomial tree: ceil(log2 p) rounds, each
	// carrying the full message. Best at small sizes.
	BcastBinomial
	// BcastScatterAllgather scatters 1/p of the message along a
	// binomial tree and reassembles with a ring allgather (van de
	// Geijn). Best at large sizes.
	BcastScatterAllgather
	// BcastPipelineRing streams fixed-size chunks down the rank ring;
	// with enough chunks the cost approaches one message transfer time
	// regardless of p, at the price of a (p-2)-chunk pipeline fill.
	BcastPipelineRing
)

// AllreduceAlgo selects the allreduce algorithm.
type AllreduceAlgo int

const (
	// AllreduceAuto picks recursive doubling for small vectors and
	// Rabenseifner for large ones.
	AllreduceAuto AllreduceAlgo = iota
	// AllreduceRecursiveDoubling exchanges and combines full vectors
	// in log2 p rounds.
	AllreduceRecursiveDoubling
	// AllreduceRabenseifner does a reduce-scatter (recursive halving)
	// followed by an allgather (recursive doubling), moving 2(p-1)/p
	// of the data instead of log2(p) copies.
	AllreduceRabenseifner
	// AllreduceRing is the bandwidth-optimal ring: p-1 reduce-scatter
	// steps plus p-1 allgather steps.
	AllreduceRing
)

// Config configures a Run.
type Config struct {
	// Fabric selects the transport; default InProc.
	Fabric Fabric
	// Model is the platform model; required for Sim, and also used by
	// InProc/TCP runs that want placement-aware experiments.
	Model *cluster.Model
	// EagerThreshold is the eager/rendezvous switch in bytes;
	// 0 means DefaultEagerThreshold, negative means "always rendezvous".
	EagerThreshold int
	// Bcast and Allreduce select collective algorithms.
	Bcast     BcastAlgo
	Allreduce AllreduceAlgo
	// Custom, if non-nil, overrides Fabric/Model with a caller-supplied
	// transport. Run closes it on completion.
	Custom FabricProvider
}

func (c Config) eager() int {
	switch {
	case c.EagerThreshold == 0:
		return DefaultEagerThreshold
	case c.EagerThreshold < 0:
		return -1 // every message takes the rendezvous path
	default:
		return c.EagerThreshold
	}
}

// ErrInvalidSize is returned by Run for a non-positive rank count.
var ErrInvalidSize = errors.New("mp: rank count must be >= 1")

// FabricProvider supplies endpoints for a custom transport; tests use
// it to inject fault-laden fabrics (see transport.FaultyFabric).
type FabricProvider interface {
	Endpoint(int) (transport.Endpoint, error)
	Close() error
}

func newFabric(n int, cfg Config) (FabricProvider, error) {
	if cfg.Custom != nil {
		return cfg.Custom, nil
	}
	switch cfg.Fabric {
	case InProc:
		return transport.NewInProc(n)
	case Sim:
		return transport.NewSim(n, cfg.Model)
	case TCP:
		return transport.NewTCP(n)
	default:
		return nil, fmt.Errorf("mp: unknown fabric %v", cfg.Fabric)
	}
}

// Run launches f on n ranks over the configured fabric and blocks until
// every rank returns. It returns the first non-nil error (a panic in a
// rank is converted to an error). The fabric is torn down before Run
// returns.
func Run(n int, cfg Config, f func(c *Comm) error) error {
	if n < 1 {
		return ErrInvalidSize
	}
	fab, err := newFabric(n, cfg)
	if err != nil {
		return err
	}
	defer fab.Close()

	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		ep, err := fab.Endpoint(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(r int, ep transport.Endpoint) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mp: rank %d panicked: %v", r, p)
				}
				// Abort-on-failure: a rank that exits with an error
				// tears the fabric down so peers blocked on it fail
				// with ErrClosed instead of hanging (the analogue of
				// MPI's job abort).
				if errs[r] != nil {
					fab.Close()
				}
			}()
			c := newComm(ep, cfg)
			errs[r] = f(c)
		}(r, ep)
	}
	wg.Wait()
	// Suppress the secondary ErrClosed failures caused by an abort so
	// the root cause is what callers see.
	var primary []error
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			primary = append(primary, err)
		}
	}
	if len(primary) > 0 {
		return errors.Join(primary...)
	}
	return errors.Join(errs...)
}
