package mp

import (
	"fmt"
	"testing"
)

func TestStatsCountP2P(t *testing.T) {
	err := Run(2, Config{EagerThreshold: 100}, func(c *Comm) error {
		c.ResetStats()
		small := make([]byte, 50)   // eager
		large := make([]byte, 5000) // rendezvous
		if c.Rank() == 0 {
			if err := c.Send(1, 1, small); err != nil {
				return err
			}
			if err := c.Send(1, 2, large); err != nil {
				return err
			}
			s := c.Stats()
			if s.SendsEager != 1 || s.SendsRndv != 1 {
				return fmt.Errorf("sender stats %+v", s)
			}
			if s.BytesSent != 5050 {
				return fmt.Errorf("bytes sent %d", s.BytesSent)
			}
			return nil
		}
		buf := make([]byte, 5000)
		if _, err := c.Recv(0, 1, buf); err != nil {
			return err
		}
		if _, err := c.Recv(0, 2, buf); err != nil {
			return err
		}
		s := c.Stats()
		if s.Recvs != 2 {
			return fmt.Errorf("recvs %d", s.Recvs)
		}
		if s.BytesRecv != 5050 {
			return fmt.Errorf("bytes recv %d", s.BytesRecv)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsMatchPaths(t *testing.T) {
	// First message arrives before the receive is posted (unexpected
	// hit); second is received after posting (posted hit).
	err := Run(2, Config{}, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte{1}); err != nil {
				return err
			}
			// Rank 1 signals readiness before our second send.
			if _, err := c.Recv(1, 2, make([]byte, 1)); err != nil {
				return err
			}
			return c.Send(1, 3, []byte{3})
		}
		c.ResetStats()
		// Let the tag-1 message land in the unexpected queue.
		for {
			st, ok, err := c.Iprobe(0, 1)
			if err != nil {
				return err
			}
			if ok && st.Count == 1 {
				break
			}
		}
		buf := make([]byte, 1)
		if _, err := c.Recv(0, 1, buf); err != nil {
			return err
		}
		s := c.Stats()
		if s.MatchUnexp != 1 {
			return fmt.Errorf("unexpected hits %d, want 1 (stats %+v)", s.MatchUnexp, s)
		}
		// Now post first, then trigger the send.
		req, err := c.Irecv(0, 3, buf)
		if err != nil {
			return err
		}
		if err := c.Send(0, 2, []byte{2}); err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		s = c.Stats()
		if s.MatchPosted < 1 {
			return fmt.Errorf("posted hits %d, want >= 1", s.MatchPosted)
		}
		if s.Probes == 0 {
			return fmt.Errorf("probes not counted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsBinomialBcastSendCount(t *testing.T) {
	// A binomial broadcast on p=8 issues exactly p-1 = 7 point-to-point
	// sends in total (each rank receives once); verify via summed
	// counters — the cost-model check the instrumentation exists for.
	const p = 8
	err := Run(p, Config{Bcast: BcastBinomial}, func(c *Comm) error {
		c.ResetStats()
		buf := make([]byte, 64)
		if err := c.Bcast(0, buf); err != nil {
			return err
		}
		sends := float64(c.Stats().SendsEager + c.Stats().SendsRndv)
		total, err := c.AllreduceScalar(OpSum, sends)
		if err != nil {
			return err
		}
		// The allreduce itself added sends AFTER the snapshot, so
		// total counts only bcast traffic.
		if int(total) != p-1 {
			return fmt.Errorf("binomial bcast sent %d messages, want %d", int(total), p-1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCollectivesCounted(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		c.ResetStats()
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := c.Bcast(0, make([]byte, 4)); err != nil {
			return err
		}
		if got := c.Stats().Collectives; got != 2 {
			return fmt.Errorf("collectives %d, want 2", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsSharedAcrossSplitComms(t *testing.T) {
	// Stats are per-rank (engine), not per-communicator.
	err := Run(2, Config{}, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		c.ResetStats()
		if c.Rank() == 0 {
			if err := sub.Send(1, 1, []byte{1}); err != nil {
				return err
			}
			if c.Stats().SendsEager != 1 {
				return fmt.Errorf("send through sub-comm not visible in stats")
			}
		} else {
			if _, err := sub.Recv(0, 1, make([]byte, 1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
