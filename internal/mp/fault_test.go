package mp

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
)

// faultyConfig builds a config whose rank `failRank` starts failing
// sends after `budget` packets.
func faultyConfig(n, failRank int, budget int64) (Config, error) {
	inner, err := transport.NewInProc(n)
	if err != nil {
		return Config{}, err
	}
	return Config{Custom: &transport.FaultyFabric{
		Inner: inner, FailRank: failRank, FailAfter: budget,
	}}, nil
}

// runWithTimeout fails the test if Run hangs: fault handling must abort
// the job, never deadlock it.
func runWithTimeout(t *testing.T, n int, cfg Config, f func(*Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- Run(n, cfg, f) }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after injected fault")
		return nil
	}
}

func TestFaultImmediateSendFails(t *testing.T) {
	cfg, err := faultyConfig(2, 0, 0) // rank 0 cannot send at all
	if err != nil {
		t.Fatal(err)
	}
	got := runWithTimeout(t, 2, cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte("x"))
		}
		_, err := c.Recv(0, 1, make([]byte, 1))
		return err
	})
	if !errors.Is(got, transport.ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", got)
	}
}

func TestFaultMidCollectiveAborts(t *testing.T) {
	// Rank 2's NIC dies partway through a barrier storm; every rank
	// must come back with an error, promptly.
	cfg, err := faultyConfig(4, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := runWithTimeout(t, 4, cfg, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if got == nil {
		t.Fatal("fault swallowed: Run returned nil")
	}
	if !errors.Is(got, transport.ErrInjected) {
		t.Errorf("root cause missing: %v", got)
	}
}

func TestFaultDuringRendezvous(t *testing.T) {
	// The sender's RTS goes out, then its data send fails at CTS time:
	// the blocked receiver must be released by the abort.
	inner, err := transport.NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		EagerThreshold: -1, // all rendezvous
		Custom:         &transport.FaultyFabric{Inner: inner, FailRank: 0, FailAfter: 1},
	}
	got := runWithTimeout(t, 2, cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			// Send 1: the RTS (allowed). Send 2 would be RndvData
			// (fails).
			return c.Send(1, 1, make([]byte, 1000))
		}
		_, err := c.Recv(0, 1, make([]byte, 1000))
		return err
	})
	if got == nil {
		t.Fatal("rendezvous fault swallowed")
	}
}

func TestFaultErrorIsPrimaryNotErrClosed(t *testing.T) {
	// The joined error must surface the injected fault, with the
	// secondary ErrClosed aborts suppressed.
	cfg, err := faultyConfig(3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := runWithTimeout(t, 3, cfg, func(c *Comm) error {
		return c.Barrier()
	})
	if got == nil {
		t.Fatal("no error")
	}
	if errors.Is(got, ErrClosed) {
		t.Errorf("secondary ErrClosed not suppressed: %v", got)
	}
}

func TestHealthyRunUnaffectedByAbortPath(t *testing.T) {
	// A run where one rank returns an application error (no transport
	// fault) must abort cleanly too.
	boom := errors.New("application failure")
	got := runWithTimeout(t, 3, Config{}, func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		// Ranks 0 and 2 wait on rank 1 forever; the abort must free
		// them.
		_, err := c.Recv(1, 1, make([]byte, 1))
		return err
	})
	if !errors.Is(got, boom) {
		t.Errorf("err = %v, want application failure", got)
	}
}

func TestFaultBudgetAllowsPrefix(t *testing.T) {
	// With a generous budget the job completes; the wrapper must be
	// transparent until the budget is exhausted.
	cfg, err := faultyConfig(2, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got := runWithTimeout(t, 2, cfg, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			if err := c.Barrier(); err != nil {
				return fmt.Errorf("iter %d: %w", i, err)
			}
		}
		return nil
	})
	if got != nil {
		t.Errorf("healthy-budget run failed: %v", got)
	}
}
