package mp

// OpStats counts the runtime's protocol activity for one rank (across
// all communicators sharing the engine). The characterization uses it
// to verify algorithm cost models — e.g. that a binomial broadcast on p
// ranks really issues the expected ceil(log2 p) sends per relay — and
// to report matching-engine behaviour (posted vs unexpected hit rates).
type OpStats struct {
	SendsEager  uint64 // eager-path sends issued
	SendsRndv   uint64 // rendezvous sends issued (RTS sent)
	Recvs       uint64 // receives completed
	BytesSent   uint64 // payload bytes passed to the fabric
	BytesRecv   uint64 // payload bytes delivered to receive buffers
	MatchPosted uint64 // incoming messages that matched a posted receive
	MatchUnexp  uint64 // receives satisfied from the unexpected queue
	Collectives uint64 // collective operations started
	Probes      uint64 // Probe/Iprobe calls
}

// Stats returns a snapshot of this rank's counters. Counters accumulate
// from Run start; ResetStats zeroes them.
func (c *Comm) Stats() OpStats { return c.eng.stats }

// ResetStats zeroes the rank's counters (e.g. after warmup).
func (c *Comm) ResetStats() { c.eng.stats = OpStats{} }
