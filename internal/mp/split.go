package mp

import (
	"fmt"
	"sort"
)

// Undefined, passed as a Split color, means this rank joins no group and
// receives a nil communicator (the analogue of MPI_UNDEFINED).
const Undefined = -1

// Split partitions the communicator: ranks passing the same color form a
// new communicator, ordered by (key, rank). It is a collective — every
// rank of c must call it. Ranks passing Undefined receive nil.
//
// Traffic on the new communicator is isolated from the parent's by a
// context id derived deterministically from (parent context, split
// sequence number, color), so point-to-point and collective operations
// on different communicators can interleave freely.
func (c *Comm) Split(color, key int) (*Comm, error) {
	if color < 0 && color != Undefined {
		return nil, fmt.Errorf("mp: split color %d must be >= 0 or Undefined", color)
	}
	c.splitSeq++

	// Allgather (color, key) so every rank can compute every group.
	pair := []float64{float64(color), float64(key)}
	all := make([]float64, 2*c.Size())
	if err := c.Allgather(f64bytes(pair), f64bytes(all)); err != nil {
		return nil, fmt.Errorf("mp: split allgather: %w", err)
	}
	if color == Undefined {
		return nil, nil
	}

	// Collect members of my color, ordered by (key, parent rank).
	type member struct {
		key        int
		parentRank int
	}
	var members []member
	for r := 0; r < c.Size(); r++ {
		if int(all[2*r]) == color {
			members = append(members, member{key: int(all[2*r+1]), parentRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].parentRank < members[j].parentRank
	})

	ranks := make([]int, len(members))
	myRank := -1
	for i, m := range members {
		ranks[i] = c.global(m.parentRank)
		if m.parentRank == c.rank {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("mp: split: rank %d missing from its own group", c.rank)
	}

	return &Comm{
		eng:   c.eng,
		ctx:   childCtx(c.ctx, c.splitSeq, color),
		rank:  myRank,
		ranks: ranks,
	}, nil
}

// Dup returns a duplicate of the communicator — same group and
// ordering, isolated traffic context. Collective; every rank must call
// it.
func (c *Comm) Dup() (*Comm, error) {
	dup, err := c.Split(0, c.rank)
	if err != nil {
		return nil, fmt.Errorf("mp: dup: %w", err)
	}
	return dup, nil
}

// childCtx derives a communicator context id. All members of a group
// compute the same value (same parent ctx, same split sequence, same
// color); distinct groups get distinct values with overwhelming
// probability (64-bit mix).
func childCtx(parent, splitSeq uint64, color int) uint64 {
	z := parent ^ (splitSeq * 0x9e3779b97f4a7c15) ^ (uint64(color)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // 0 is reserved for the world communicator
	}
	return z
}
