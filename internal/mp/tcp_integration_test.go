package mp

import (
	"fmt"
	"math"
	"testing"
)

// TestTCPFabricFullStack exercises the complete runtime over real
// loopback sockets: p2p across protocols, every collective family, and
// a sub-communicator, in one job. This is the closest thing to an
// end-to-end system test on a real network stack.
func TestTCPFabricFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration test skipped in -short mode")
	}
	const p = 6
	cfg := Config{Fabric: TCP, EagerThreshold: 1024}
	err := Run(p, cfg, func(c *Comm) error {
		// P2P ring with mixed protocol sizes.
		for _, size := range []int{16, 100000} {
			out := make([]byte, size)
			in := make([]byte, size)
			for i := range out {
				out[i] = byte(c.Rank() + i)
			}
			right := (c.Rank() + 1) % p
			left := (c.Rank() - 1 + p) % p
			if _, err := c.SendRecv(right, 1, out, left, 1, in); err != nil {
				return err
			}
			for i := range in {
				if in[i] != byte(left+i) {
					return fmt.Errorf("size %d: ring data corrupt at %d", size, i)
				}
			}
		}

		// Collectives.
		if err := c.Barrier(); err != nil {
			return err
		}
		buf := make([]byte, 4096)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i * 13)
			}
		}
		if err := c.Bcast(0, buf); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(i*13) {
				return fmt.Errorf("bcast corrupt at %d", i)
			}
		}
		sum, err := c.AllreduceScalar(OpSum, float64(c.Rank()+1))
		if err != nil {
			return err
		}
		if want := float64(p*(p+1)) / 2; sum != want {
			return fmt.Errorf("allreduce = %v, want %v", sum, want)
		}
		vec := make([]float64, 512)
		for i := range vec {
			vec[i] = float64(c.Rank())
		}
		out := make([]float64, 512)
		if err := c.Allreduce(OpMax, vec, out); err != nil {
			return err
		}
		if out[100] != float64(p-1) {
			return fmt.Errorf("allreduce max = %v", out[100])
		}

		// Alltoall.
		sb := make([]byte, p*8)
		rb := make([]byte, p*8)
		for d := 0; d < p; d++ {
			for j := 0; j < 8; j++ {
				sb[d*8+j] = byte(c.Rank()*16 + d)
			}
		}
		if err := c.Alltoall(sb, rb); err != nil {
			return err
		}
		for s := 0; s < p; s++ {
			if rb[s*8] != byte(s*16+c.Rank()) {
				return fmt.Errorf("alltoall from %d corrupt", s)
			}
		}

		// Sub-communicator traffic over the same sockets.
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		subSum, err := sub.AllreduceScalar(OpSum, 1)
		if err != nil {
			return err
		}
		if int(subSum) != sub.Size() {
			return fmt.Errorf("sub allreduce = %v", subSum)
		}

		// Scan as a final ordering-sensitive check.
		res := make([]float64, 1)
		if err := c.Scan(OpSum, []float64{1}, res); err != nil {
			return err
		}
		if math.Abs(res[0]-float64(c.Rank()+1)) > 1e-12 {
			return fmt.Errorf("scan = %v, want %d", res[0], c.Rank()+1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
