package mp

import "repro/internal/bytesview"

// f64bytes returns xs viewed as a byte slice sharing the same memory;
// see internal/bytesview for the rationale.
func f64bytes(xs []float64) []byte { return bytesview.F64(xs) }
