package mp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestSplitEvenOdd(t *testing.T) {
	err := Run(6, Config{}, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub == nil {
			return errors.New("got nil communicator")
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d, want 3", sub.Size())
		}
		// Rank within the sub-communicator follows parent order.
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("sub rank %d, want %d", sub.Rank(), wantRank)
		}
		if sub.GlobalRank() != c.Rank() {
			return fmt.Errorf("global rank %d, want %d", sub.GlobalRank(), c.Rank())
		}
		// A collective on the sub-communicator only sees its members.
		sum, err := sub.AllreduceScalar(OpSum, float64(c.Rank()))
		if err != nil {
			return err
		}
		want := 0.0 + 2 + 4 // evens
		if c.Rank()%2 == 1 {
			want = 1.0 + 3 + 5
		}
		if sum != want {
			return fmt.Errorf("sub allreduce = %v, want %v", sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyReordersRanks(t *testing.T) {
	err := Run(4, Config{}, func(c *Comm) error {
		// Reverse order via descending keys.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		want := 3 - c.Rank()
		if sub.Rank() != want {
			return fmt.Errorf("rank %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Bcast from sub-rank 0 (= parent rank 3) must deliver to all.
		buf := []byte{0}
		if sub.Rank() == 0 {
			buf[0] = 42
		}
		if err := sub.Bcast(0, buf); err != nil {
			return err
		}
		if buf[0] != 42 {
			return fmt.Errorf("bcast over reordered comm failed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefined(t *testing.T) {
	err := Run(4, Config{}, func(c *Comm) error {
		color := Undefined
		if c.Rank() < 2 {
			color = 0
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() < 2 {
			if sub == nil || sub.Size() != 2 {
				return fmt.Errorf("expected 2-rank comm, got %v", sub)
			}
		} else if sub != nil {
			return fmt.Errorf("Undefined color returned a communicator")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitInvalidColor(t *testing.T) {
	err := Run(1, Config{}, func(c *Comm) error {
		if _, err := c.Split(-5, 0); err == nil {
			return errors.New("negative color accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitTrafficIsolation(t *testing.T) {
	// P2P with the same (src, tag) on parent and child communicators
	// must not cross-match: context ids isolate them.
	err := Run(2, Config{}, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		const tag = 5
		if c.Rank() == 0 {
			if err := c.Send(1, tag, []byte("world")); err != nil {
				return err
			}
			return sub.Send(1, tag, []byte("child"))
		}
		// Receive from the child comm FIRST although the world message
		// arrived first.
		buf := make([]byte, 8)
		st, err := sub.Recv(0, tag, buf)
		if err != nil {
			return err
		}
		if string(buf[:st.Count]) != "child" {
			return fmt.Errorf("child comm got %q", buf[:st.Count])
		}
		st, err = c.Recv(0, tag, buf)
		if err != nil {
			return err
		}
		if string(buf[:st.Count]) != "world" {
			return fmt.Errorf("world comm got %q", buf[:st.Count])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNested(t *testing.T) {
	// Split a split: 8 ranks -> two halves -> quarters.
	err := Run(8, Config{}, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size %d", quarter.Size())
		}
		sum, err := quarter.AllreduceScalar(OpSum, 1)
		if err != nil {
			return err
		}
		if sum != 2 {
			return fmt.Errorf("quarter allreduce = %v", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRendezvousAcrossComms(t *testing.T) {
	// Large (rendezvous) messages must respect context isolation too.
	err := Run(2, Config{EagerThreshold: -1}, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{7}, 1<<15)
		if c.Rank() == 0 {
			sreq, err := c.Isend(1, 1, payload)
			if err != nil {
				return err
			}
			if err := sub.Send(1, 1, bytes.Repeat([]byte{9}, 1<<15)); err != nil {
				return err
			}
			return c.waitFor(sreq)
		}
		buf := make([]byte, 1<<15)
		if _, err := sub.Recv(0, 1, buf); err != nil {
			return err
		}
		if buf[0] != 9 {
			return fmt.Errorf("sub comm rendezvous got %d", buf[0])
		}
		if _, err := c.Recv(0, 1, buf); err != nil {
			return err
		}
		if buf[0] != 7 {
			return fmt.Errorf("world rendezvous got %d", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupPreservesGroup(t *testing.T) {
	err := Run(4, Config{}, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if dup.Rank() != c.Rank() || dup.Size() != c.Size() {
			return fmt.Errorf("dup rank/size %d/%d vs %d/%d",
				dup.Rank(), dup.Size(), c.Rank(), c.Size())
		}
		// Traffic isolation between original and duplicate.
		if c.Rank() == 0 {
			if err := dup.Send(1, 1, []byte("dup")); err != nil {
				return err
			}
			return c.Send(1, 1, []byte("org"))
		}
		if c.Rank() == 1 {
			buf := make([]byte, 3)
			if _, err := c.Recv(0, 1, buf); err != nil {
				return err
			}
			if string(buf) != "org" {
				return fmt.Errorf("original comm got %q", buf)
			}
			if _, err := dup.Recv(0, 1, buf); err != nil {
				return err
			}
			if string(buf) != "dup" {
				return fmt.Errorf("dup comm got %q", buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChildCtxDisjoint(t *testing.T) {
	seen := map[uint64]bool{0: true} // world ctx reserved
	for parent := uint64(0); parent < 3; parent++ {
		for seq := uint64(1); seq < 10; seq++ {
			for color := 0; color < 10; color++ {
				ctx := childCtx(parent, seq, color)
				if seen[ctx] {
					t.Fatalf("ctx collision at (%d,%d,%d)", parent, seq, color)
				}
				seen[ctx] = true
			}
		}
	}
}

func TestProbeAndIprobe(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 9, []byte("probe me"))
		}
		// Probe must report the envelope without consuming.
		st, err := c.Probe(0, 9)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 9 || st.Count != 8 {
			return fmt.Errorf("probe status %+v", st)
		}
		// Iprobe also sees it.
		st2, ok, err := c.Iprobe(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if !ok || st2.Count != 8 {
			return fmt.Errorf("iprobe = %v %+v", ok, st2)
		}
		// The message is still there for Recv.
		buf := make([]byte, st.Count)
		if _, err := c.Recv(0, 9, buf); err != nil {
			return err
		}
		if string(buf) != "probe me" {
			return fmt.Errorf("recv after probe got %q", buf)
		}
		// Nothing left.
		_, ok, err = c.Iprobe(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if ok {
			return errors.New("iprobe matched after message consumed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeRendezvousReportsFullSize(t *testing.T) {
	// Probing an RTS must report the announced payload size.
	err := Run(2, Config{EagerThreshold: 16}, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 3, make([]byte, 100000))
			if err != nil {
				return err
			}
			return c.waitFor(req)
		}
		st, err := c.Probe(0, 3)
		if err != nil {
			return err
		}
		if st.Count != 100000 {
			return fmt.Errorf("probe count %d, want 100000", st.Count)
		}
		buf := make([]byte, st.Count)
		_, err = c.Recv(0, 3, buf)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobeBadPeer(t *testing.T) {
	err := Run(1, Config{}, func(c *Comm) error {
		if _, _, err := c.Iprobe(5, 0); err == nil {
			return errors.New("bad peer accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
