package mp

import (
	"fmt"
	"testing"
)

// rampCounts gives rank r a contribution of r+1 bytes.
func rampCounts(p int) []int {
	counts := make([]int, p)
	for i := range counts {
		counts[i] = i + 1
	}
	return counts
}

// rampPayload is rank r's contribution: r+1 bytes of value r+10.
func rampPayload(r int) []byte {
	out := make([]byte, r+1)
	for i := range out {
		out[i] = byte(r + 10)
	}
	return out
}

// checkPacked verifies buf holds all contributions packed in rank order.
func checkPacked(buf []byte, p int) error {
	off := 0
	for r := 0; r < p; r++ {
		for i := 0; i < r+1; i++ {
			if buf[off] != byte(r+10) {
				return fmt.Errorf("rank %d byte %d = %d", r, i, buf[off])
			}
			off++
		}
	}
	return nil
}

func TestGathervAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := Run(p, Config{}, func(c *Comm) error {
				counts := rampCounts(c.Size())
				var recv []byte
				root := c.Size() - 1
				if c.Rank() == root {
					recv = make([]byte, c.Size()*(c.Size()+1)/2)
				}
				if err := c.Gatherv(root, rampPayload(c.Rank()), counts, recv); err != nil {
					return err
				}
				if c.Rank() == root {
					return checkPacked(recv, c.Size())
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGathervValidation(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		counts := []int{1, 2}
		if err := c.Gatherv(0, make([]byte, 5), counts, nil); err == nil {
			return fmt.Errorf("wrong sendBuf size accepted")
		}
		if err := c.Gatherv(0, make([]byte, counts[c.Rank()]), []int{1}, nil); err == nil {
			return fmt.Errorf("short counts accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScattervRoundTrip(t *testing.T) {
	for _, p := range []int{1, 3, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := Run(p, Config{}, func(c *Comm) error {
				counts := rampCounts(c.Size())
				var send []byte
				if c.Rank() == 0 {
					send = make([]byte, 0, c.Size()*(c.Size()+1)/2)
					for r := 0; r < c.Size(); r++ {
						send = append(send, rampPayload(r)...)
					}
				}
				recv := make([]byte, counts[c.Rank()])
				if err := c.Scatterv(0, send, counts, recv); err != nil {
					return err
				}
				for i, b := range recv {
					if b != byte(c.Rank()+10) {
						return fmt.Errorf("rank %d byte %d = %d", c.Rank(), i, b)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllgathervEveryRank(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := Run(p, Config{}, func(c *Comm) error {
				counts := rampCounts(c.Size())
				recv := make([]byte, c.Size()*(c.Size()+1)/2)
				if err := c.Allgatherv(rampPayload(c.Rank()), counts, recv); err != nil {
					return err
				}
				return checkPacked(recv, c.Size())
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoallvExchange(t *testing.T) {
	// Rank r sends (d+1) bytes of value r*16+d to each destination d.
	for _, p := range []int{1, 2, 4, 5} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := Run(p, Config{}, func(c *Comm) error {
				pp := c.Size()
				sendCounts := make([]int, pp)
				recvCounts := make([]int, pp)
				for d := 0; d < pp; d++ {
					sendCounts[d] = d + 1        // to rank d
					recvCounts[d] = c.Rank() + 1 // from rank d: my id + 1
				}
				var send []byte
				for d := 0; d < pp; d++ {
					for i := 0; i < d+1; i++ {
						send = append(send, byte(c.Rank()*16+d))
					}
				}
				recv := make([]byte, pp*(c.Rank()+1))
				if err := c.Alltoallv(send, sendCounts, recv, recvCounts); err != nil {
					return err
				}
				off := 0
				for src := 0; src < pp; src++ {
					for i := 0; i < c.Rank()+1; i++ {
						want := byte(src*16 + c.Rank())
						if recv[off] != want {
							return fmt.Errorf("from %d byte %d = %d, want %d", src, i, recv[off], want)
						}
						off++
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoallvValidation(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		if err := c.Alltoallv(nil, []int{0}, nil, []int{0, 0}); err == nil {
			return fmt.Errorf("short counts accepted")
		}
		if err := c.Alltoallv(make([]byte, 3), []int{1, 1}, nil, []int{0, 0}); err == nil {
			return fmt.Errorf("wrong buffer size accepted")
		}
		if err := c.Alltoallv(nil, []int{-1, 1}, nil, []int{0, 0}); err == nil {
			return fmt.Errorf("negative count accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVCollectivesOnSubComm(t *testing.T) {
	// v-collectives must work on a split communicator.
	err := Run(4, Config{}, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		counts := rampCounts(sub.Size())
		recv := make([]byte, 3) // 1+2
		if err := sub.Allgatherv(rampPayload(sub.Rank()), counts, recv); err != nil {
			return err
		}
		return checkPacked(recv, sub.Size())
	})
	if err != nil {
		t.Fatal(err)
	}
}
