package mp

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
)

// sizesUnderTest are rank counts exercising power-of-two and odd cases.
var sizesUnderTest = []int{1, 2, 3, 4, 5, 7, 8, 16}

func forEachSize(t *testing.T, f func(t *testing.T, p int, cfg Config)) {
	t.Helper()
	for _, p := range sizesUnderTest {
		for name, cfg := range map[string]Config{
			"inproc": {Fabric: InProc},
			"sim":    {Fabric: Sim, Model: cluster.BigIBCluster()},
		} {
			t.Run(fmt.Sprintf("p=%d/%s", p, name), func(t *testing.T) {
				f(t, p, cfg)
			})
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int, cfg Config) {
		err := Run(p, cfg, func(c *Comm) error {
			for i := 0; i < 5; i++ {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBcastAllAlgorithms(t *testing.T) {
	for _, algo := range []BcastAlgo{BcastAuto, BcastBinomial, BcastScatterAllgather, BcastPipelineRing} {
		for _, p := range sizesUnderTest {
			for _, n := range []int{0, 1, 13, 4096, 100000} {
				for root := 0; root < p; root += max(1, p-1) {
					name := fmt.Sprintf("algo=%d/p=%d/n=%d/root=%d", algo, p, n, root)
					t.Run(name, func(t *testing.T) {
						cfg := Config{Bcast: algo}
						err := Run(p, cfg, func(c *Comm) error {
							buf := make([]byte, n)
							if c.Rank() == root {
								for i := range buf {
									buf[i] = byte((i*7 + 3) % 256)
								}
							}
							if err := c.Bcast(root, buf); err != nil {
								return err
							}
							for i := range buf {
								if buf[i] != byte((i*7+3)%256) {
									return fmt.Errorf("rank %d byte %d = %d", c.Rank(), i, buf[i])
								}
							}
							return nil
						})
						if err != nil {
							t.Fatal(err)
						}
					})
				}
			}
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		if err := c.Bcast(5, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAllRoots(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int, cfg Config) {
		err := Run(p, cfg, func(c *Comm) error {
			for root := 0; root < c.Size(); root++ {
				send := bytes.Repeat([]byte{byte(c.Rank() + 1)}, 3)
				var recv []byte
				if c.Rank() == root {
					recv = make([]byte, 3*c.Size())
				}
				if err := c.Gather(root, send, recv); err != nil {
					return err
				}
				if c.Rank() == root {
					for r := 0; r < c.Size(); r++ {
						for j := 0; j < 3; j++ {
							if recv[r*3+j] != byte(r+1) {
								return fmt.Errorf("root %d block %d = %v", root, r, recv[r*3:r*3+3])
							}
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestGatherSizeMismatch(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		send := make([]byte, 4)
		if c.Rank() == 0 {
			err := c.Gather(0, send, make([]byte, 5)) // want 8
			if err == nil {
				return fmt.Errorf("bad recvBuf accepted")
			}
			// Unblock rank 1's send.
			buf := make([]byte, 4)
			_, err = c.Recv(1, AnyTag, buf)
			return err
		}
		return c.Gather(0, send, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int, cfg Config) {
		err := Run(p, cfg, func(c *Comm) error {
			const bs = 5
			var send []byte
			root := c.Size() - 1
			if c.Rank() == root {
				send = make([]byte, bs*c.Size())
				for r := 0; r < c.Size(); r++ {
					for j := 0; j < bs; j++ {
						send[r*bs+j] = byte(r * 2)
					}
				}
			}
			recv := make([]byte, bs)
			if err := c.Scatter(root, send, recv); err != nil {
				return err
			}
			for _, b := range recv {
				if b != byte(c.Rank()*2) {
					return fmt.Errorf("rank %d got %v", c.Rank(), recv)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllgather(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int, cfg Config) {
		for _, bs := range []int{1, 9, 1000} {
			err := Run(p, cfg, func(c *Comm) error {
				send := bytes.Repeat([]byte{byte(c.Rank() + 10)}, bs)
				recv := make([]byte, bs*c.Size())
				if err := c.Allgather(send, recv); err != nil {
					return err
				}
				for r := 0; r < c.Size(); r++ {
					for j := 0; j < bs; j++ {
						if recv[r*bs+j] != byte(r+10) {
							return fmt.Errorf("rank %d: block %d byte %d = %d", c.Rank(), r, j, recv[r*bs+j])
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("bs=%d: %v", bs, err)
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int, cfg Config) {
		const bs = 4
		err := Run(p, cfg, func(c *Comm) error {
			send := make([]byte, bs*c.Size())
			for r := 0; r < c.Size(); r++ {
				for j := 0; j < bs; j++ {
					send[r*bs+j] = byte(c.Rank()*16 + r) // unique per (sender, dest)
				}
			}
			recv := make([]byte, bs*c.Size())
			if err := c.Alltoall(send, recv); err != nil {
				return err
			}
			for r := 0; r < c.Size(); r++ {
				want := byte(r*16 + c.Rank())
				for j := 0; j < bs; j++ {
					if recv[r*bs+j] != want {
						return fmt.Errorf("rank %d: from %d got %d want %d", c.Rank(), r, recv[r*bs+j], want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAlltoallValidation(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		if err := c.Alltoall(make([]byte, 4), make([]byte, 6)); err == nil {
			return fmt.Errorf("length mismatch accepted")
		}
		if err := c.Alltoall(make([]byte, 3), make([]byte, 3)); err == nil {
			return fmt.Errorf("non-divisible buffer accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAllOpsAndRoots(t *testing.T) {
	ops := []Op{OpSum, OpProd, OpMax, OpMin}
	forEachSize(t, func(t *testing.T, p int, cfg Config) {
		err := Run(p, cfg, func(c *Comm) error {
			n := 17
			send := make([]float64, n)
			for i := range send {
				send[i] = float64(c.Rank()+1) + float64(i)*0.25
			}
			for _, op := range ops {
				root := (c.Size() - 1) / 2
				var recv []float64
				if c.Rank() == root {
					recv = make([]float64, n)
				}
				if err := c.Reduce(root, op, send, recv); err != nil {
					return err
				}
				if c.Rank() == root {
					for i := 0; i < n; i++ {
						want := expectedReduce(op, c.Size(), i)
						if math.Abs(recv[i]-want) > 1e-9*math.Max(1, math.Abs(want)) {
							return fmt.Errorf("op %v elem %d = %v, want %v", op, i, recv[i], want)
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// expectedReduce computes the serial reduction of the test pattern
// send[i] = (rank+1) + i*0.25 across p ranks.
func expectedReduce(op Op, p int, i int) float64 {
	acc := 1 + float64(i)*0.25 // rank 0
	for r := 1; r < p; r++ {
		v := float64(r+1) + float64(i)*0.25
		switch op {
		case OpSum:
			acc += v
		case OpProd:
			acc *= v
		case OpMax:
			acc = math.Max(acc, v)
		case OpMin:
			acc = math.Min(acc, v)
		}
	}
	return acc
}

func TestAllreduceAllAlgorithms(t *testing.T) {
	algos := []AllreduceAlgo{AllreduceAuto, AllreduceRecursiveDoubling, AllreduceRabenseifner, AllreduceRing}
	for _, algo := range algos {
		for _, p := range sizesUnderTest {
			for _, n := range []int{1, 16, 1000, 4099} {
				t.Run(fmt.Sprintf("algo=%d/p=%d/n=%d", algo, p, n), func(t *testing.T) {
					cfg := Config{Allreduce: algo}
					err := Run(p, cfg, func(c *Comm) error {
						send := make([]float64, n)
						for i := range send {
							send[i] = float64(c.Rank()+1) + float64(i)*0.25
						}
						recv := make([]float64, n)
						if err := c.Allreduce(OpSum, send, recv); err != nil {
							return err
						}
						for i := 0; i < n; i++ {
							want := expectedReduce(OpSum, c.Size(), i)
							if math.Abs(recv[i]-want) > 1e-9*math.Max(1, math.Abs(want)) {
								return fmt.Errorf("rank %d elem %d = %v, want %v", c.Rank(), i, recv[i], want)
							}
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

func TestAllreduceMaxWithNegatives(t *testing.T) {
	err := Run(4, Config{}, func(c *Comm) error {
		send := []float64{-float64(c.Rank()) - 1}
		recv := make([]float64, 1)
		if err := c.Allreduce(OpMax, send, recv); err != nil {
			return err
		}
		if recv[0] != -1 {
			return fmt.Errorf("max = %v, want -1", recv[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceScalar(t *testing.T) {
	err := Run(5, Config{}, func(c *Comm) error {
		got, err := c.AllreduceScalar(OpSum, float64(c.Rank()))
		if err != nil {
			return err
		}
		if got != 10 { // 0+1+2+3+4
			return fmt.Errorf("scalar sum = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterBlock(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int, cfg Config) {
		const bs = 6
		err := Run(p, cfg, func(c *Comm) error {
			send := make([]float64, bs*c.Size())
			for i := range send {
				send[i] = float64(c.Rank()+1) + float64(i)*0.25
			}
			recv := make([]float64, bs)
			if err := c.ReduceScatterBlock(OpSum, send, recv); err != nil {
				return err
			}
			for j := 0; j < bs; j++ {
				i := c.Rank()*bs + j
				want := expectedReduce(OpSum, c.Size(), i)
				if math.Abs(recv[j]-want) > 1e-9*math.Max(1, math.Abs(want)) {
					return fmt.Errorf("rank %d elem %d = %v, want %v", c.Rank(), j, recv[j], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestReduceScatterBlockValidation(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		if err := c.ReduceScatterBlock(OpSum, make([]float64, 3), make([]float64, 2)); err == nil {
			return fmt.Errorf("mismatched reduce-scatter accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanInclusive(t *testing.T) {
	forEachSize(t, func(t *testing.T, p int, cfg Config) {
		err := Run(p, cfg, func(c *Comm) error {
			send := []float64{float64(c.Rank() + 1), 1}
			recv := make([]float64, 2)
			if err := c.Scan(OpSum, send, recv); err != nil {
				return err
			}
			r := float64(c.Rank())
			wantA := (r + 1) * (r + 2) / 2 // 1+2+...+(rank+1)
			wantB := r + 1
			if math.Abs(recv[0]-wantA) > 1e-9 || math.Abs(recv[1]-wantB) > 1e-9 {
				return fmt.Errorf("rank %d scan = %v, want [%v %v]", c.Rank(), recv, wantA, wantB)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestCollectivesBackToBack(t *testing.T) {
	// Different collectives issued consecutively must not cross-match
	// (distinct epochs produce distinct tag spaces).
	err := Run(4, Config{}, func(c *Comm) error {
		buf := []byte{byte(c.Rank())}
		all := make([]byte, 4)
		for i := 0; i < 10; i++ {
			if err := c.Allgather(buf, all); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			s, err := c.AllreduceScalar(OpSum, 1)
			if err != nil {
				return err
			}
			if s != 4 {
				return fmt.Errorf("iter %d: sum = %v", i, s)
			}
			for r := 0; r < 4; r++ {
				if all[r] != byte(r) {
					return fmt.Errorf("iter %d: allgather[%d] = %d", i, r, all[r])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpSum: "sum", OpProd: "prod", OpMax: "max", OpMin: "min"} {
		if op.String() != want {
			t.Errorf("%v.String() = %q", int(op), op.String())
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
