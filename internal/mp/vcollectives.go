package mp

import "fmt"

// The v-variant collectives allow per-rank contribution sizes, as their
// MPI counterparts do. Counts are in bytes; displacements are implicit
// (contributions are packed contiguously in rank order).

// totalOf sums counts and validates non-negativity.
func totalOf(counts []int) (int, error) {
	total := 0
	for r, n := range counts {
		if n < 0 {
			return 0, fmt.Errorf("%w: negative count %d for rank %d", ErrMismatch, n, r)
		}
		total += n
	}
	return total, nil
}

// offsetOf returns the byte offset of rank r's block.
func offsetOf(counts []int, r int) int {
	off := 0
	for i := 0; i < r; i++ {
		off += counts[i]
	}
	return off
}

// Gatherv collects variable-size contributions on root: rank r sends
// sendBuf (len(sendBuf) must equal counts[r] on every rank), and root
// receives them packed in rank order into recvBuf (length sum(counts)).
// counts must be identical on all ranks.
func (c *Comm) Gatherv(root int, sendBuf []byte, counts []int, recvBuf []byte) error {
	if err := c.checkPeer(root); err != nil {
		return err
	}
	if len(counts) != c.Size() {
		return fmt.Errorf("%w: gatherv counts length %d, want %d", ErrMismatch, len(counts), c.Size())
	}
	if len(sendBuf) != counts[c.rank] {
		return fmt.Errorf("%w: gatherv sendBuf %d, counts[%d]=%d", ErrMismatch, len(sendBuf), c.rank, counts[c.rank])
	}
	tag := c.nextCollTag()
	if c.rank != root {
		return c.sendInternal(root, tag, sendBuf)
	}
	total, err := totalOf(counts)
	if err != nil {
		return err
	}
	if len(recvBuf) != total {
		return fmt.Errorf("%w: gatherv recvBuf %d, want %d", ErrMismatch, len(recvBuf), total)
	}
	reqs := make([]*Request, 0, c.Size()-1)
	off := 0
	for r := 0; r < c.Size(); r++ {
		blk := recvBuf[off : off+counts[r]]
		off += counts[r]
		if r == root {
			copy(blk, sendBuf)
			continue
		}
		req, err := c.Irecv(r, tag, blk)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.WaitAll(reqs...)
}

// Scatterv distributes variable-size blocks from root: root's sendBuf
// holds the blocks packed in rank order (length sum(counts)); rank r
// receives counts[r] bytes into recvBuf.
func (c *Comm) Scatterv(root int, sendBuf []byte, counts []int, recvBuf []byte) error {
	if err := c.checkPeer(root); err != nil {
		return err
	}
	if len(counts) != c.Size() {
		return fmt.Errorf("%w: scatterv counts length %d, want %d", ErrMismatch, len(counts), c.Size())
	}
	if len(recvBuf) != counts[c.rank] {
		return fmt.Errorf("%w: scatterv recvBuf %d, counts[%d]=%d", ErrMismatch, len(recvBuf), c.rank, counts[c.rank])
	}
	tag := c.nextCollTag()
	if c.rank != root {
		_, err := c.Recv(root, tag, recvBuf)
		return err
	}
	total, err := totalOf(counts)
	if err != nil {
		return err
	}
	if len(sendBuf) != total {
		return fmt.Errorf("%w: scatterv sendBuf %d, want %d", ErrMismatch, len(sendBuf), total)
	}
	off := 0
	for r := 0; r < c.Size(); r++ {
		blk := sendBuf[off : off+counts[r]]
		off += counts[r]
		if r == root {
			copy(recvBuf, blk)
			continue
		}
		if err := c.sendInternal(r, tag, blk); err != nil {
			return err
		}
	}
	return nil
}

// Allgatherv gathers variable-size contributions to every rank: ring
// algorithm over the packed layout. counts must be identical on all
// ranks; recvBuf is sum(counts) bytes.
func (c *Comm) Allgatherv(sendBuf []byte, counts []int, recvBuf []byte) error {
	if len(counts) != c.Size() {
		return fmt.Errorf("%w: allgatherv counts length %d, want %d", ErrMismatch, len(counts), c.Size())
	}
	if len(sendBuf) != counts[c.rank] {
		return fmt.Errorf("%w: allgatherv sendBuf %d, counts[%d]=%d", ErrMismatch, len(sendBuf), c.rank, counts[c.rank])
	}
	total, err := totalOf(counts)
	if err != nil {
		return err
	}
	if len(recvBuf) != total {
		return fmt.Errorf("%w: allgatherv recvBuf %d, want %d", ErrMismatch, len(recvBuf), total)
	}
	tag := c.nextCollTag()
	p := c.Size()
	copy(recvBuf[offsetOf(counts, c.rank):], sendBuf)
	if p == 1 {
		return nil
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for j := 0; j < p-1; j++ {
		sb := (c.rank - j + p) % p
		rb := (c.rank - j - 1 + 2*p) % p
		sOff := offsetOf(counts, sb)
		rOff := offsetOf(counts, rb)
		if _, err := c.sendRecvInternal(
			right, tag-j, recvBuf[sOff:sOff+counts[sb]],
			left, tag-j, recvBuf[rOff:rOff+counts[rb]]); err != nil {
			return fmt.Errorf("mp: allgatherv step %d: %w", j, err)
		}
	}
	return nil
}

// Alltoallv performs a complete exchange with per-pair sizes:
// sendCounts[r] bytes go to rank r (packed in rank order in sendBuf) and
// recvCounts[r] bytes arrive from rank r (packed into recvBuf). The
// count matrices must be consistent across ranks (my sendCounts[r] ==
// r's recvCounts[me]).
func (c *Comm) Alltoallv(sendBuf []byte, sendCounts []int, recvBuf []byte, recvCounts []int) error {
	p := c.Size()
	if len(sendCounts) != p || len(recvCounts) != p {
		return fmt.Errorf("%w: alltoallv counts length", ErrMismatch)
	}
	sTotal, err := totalOf(sendCounts)
	if err != nil {
		return err
	}
	rTotal, err := totalOf(recvCounts)
	if err != nil {
		return err
	}
	if len(sendBuf) != sTotal || len(recvBuf) != rTotal {
		return fmt.Errorf("%w: alltoallv buffers (%d,%d), want (%d,%d)",
			ErrMismatch, len(sendBuf), len(recvBuf), sTotal, rTotal)
	}
	tag := c.nextCollTag()
	copy(recvBuf[offsetOf(recvCounts, c.rank):offsetOf(recvCounts, c.rank)+recvCounts[c.rank]],
		sendBuf[offsetOf(sendCounts, c.rank):offsetOf(sendCounts, c.rank)+sendCounts[c.rank]])
	for i := 1; i < p; i++ {
		sendTo := (c.rank + i) % p
		recvFrom := (c.rank - i + p) % p
		sOff := offsetOf(sendCounts, sendTo)
		rOff := offsetOf(recvCounts, recvFrom)
		t := tag - (i % collTagStride)
		if _, err := c.sendRecvInternal(
			sendTo, t, sendBuf[sOff:sOff+sendCounts[sendTo]],
			recvFrom, t, recvBuf[rOff:rOff+recvCounts[recvFrom]]); err != nil {
			return fmt.Errorf("mp: alltoallv step %d: %w", i, err)
		}
	}
	return nil
}
