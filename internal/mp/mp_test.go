package mp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// configs returns the fabric configurations every semantic test runs
// under: correctness must be fabric-independent.
func configs() map[string]Config {
	return map[string]Config{
		"inproc":      {Fabric: InProc},
		"inproc-rndv": {Fabric: InProc, EagerThreshold: -1},
		"sim":         {Fabric: Sim, Model: cluster.BigIBCluster()},
		"tcp":         {Fabric: TCP},
	}
}

func TestRunInvalidSize(t *testing.T) {
	if err := Run(0, Config{}, func(*Comm) error { return nil }); err != ErrInvalidSize {
		t.Errorf("Run(0) = %v, want ErrInvalidSize", err)
	}
}

func TestRunSingleRank(t *testing.T) {
	err := Run(1, Config{}, func(c *Comm) error {
		if c.Rank() != 0 || c.Size() != 1 {
			return fmt.Errorf("rank/size = %d/%d", c.Rank(), c.Size())
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	err := Run(4, Config{}, func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapping boom", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("worker exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestSendRecvBasic(t *testing.T) {
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			err := Run(2, cfg, func(c *Comm) error {
				msg := []byte("the quick brown fox")
				if c.Rank() == 0 {
					return c.Send(1, 42, msg)
				}
				buf := make([]byte, len(msg))
				st, err := c.Recv(0, 42, buf)
				if err != nil {
					return err
				}
				if st.Source != 0 || st.Tag != 42 || st.Count != len(msg) {
					return fmt.Errorf("status %+v", st)
				}
				if !bytes.Equal(buf, msg) {
					return fmt.Errorf("payload %q", buf)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSendRecvSizesAcrossProtocols(t *testing.T) {
	// Sweep sizes across the eager threshold, including 0 and exactly
	// the threshold.
	cfg := Config{Fabric: InProc, EagerThreshold: 1024}
	sizes := []int{0, 1, 7, 1023, 1024, 1025, 10000, 1 << 18}
	err := Run(2, cfg, func(c *Comm) error {
		for _, n := range sizes {
			msg := make([]byte, n)
			for i := range msg {
				msg[i] = byte(i % 251)
			}
			if c.Rank() == 0 {
				if err := c.Send(1, 5, msg); err != nil {
					return fmt.Errorf("size %d: %w", n, err)
				}
			} else {
				buf := make([]byte, n)
				st, err := c.Recv(0, 5, buf)
				if err != nil {
					return fmt.Errorf("size %d: %w", n, err)
				}
				if st.Count != n || !bytes.Equal(buf, msg) {
					return fmt.Errorf("size %d corrupted (count %d)", n, st.Count)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingPreserved(t *testing.T) {
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			const n = 200
			err := Run(2, cfg, func(c *Comm) error {
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
							return err
						}
					}
					return nil
				}
				buf := make([]byte, 1)
				for i := 0; i < n; i++ {
					if _, err := c.Recv(0, 1, buf); err != nil {
						return err
					}
					if buf[0] != byte(i) {
						return fmt.Errorf("message %d out of order: got %d", i, buf[0])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags must match the right receives even
	// when posted out of arrival order.
	err := Run(2, Config{}, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 10, []byte("ten")); err != nil {
				return err
			}
			return c.Send(1, 20, []byte("twenty"))
		}
		// Receive tag 20 first although tag 10 arrived first.
		buf := make([]byte, 16)
		st, err := c.Recv(0, 20, buf)
		if err != nil {
			return err
		}
		if string(buf[:st.Count]) != "twenty" {
			return fmt.Errorf("tag 20 got %q", buf[:st.Count])
		}
		st, err = c.Recv(0, 10, buf)
		if err != nil {
			return err
		}
		if string(buf[:st.Count]) != "ten" {
			return fmt.Errorf("tag 10 got %q", buf[:st.Count])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcardSourceAndTag(t *testing.T) {
	err := Run(3, Config{}, func(c *Comm) error {
		switch c.Rank() {
		case 1, 2:
			return c.Send(0, c.Rank()*100, []byte{byte(c.Rank())})
		default:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 1)
				st, err := c.Recv(AnySource, AnyTag, buf)
				if err != nil {
					return err
				}
				if st.Tag != st.Source*100 || int(buf[0]) != st.Source {
					return fmt.Errorf("mismatched status %+v payload %d", st, buf[0])
				}
				got[st.Source] = true
			}
			if !got[1] || !got[2] {
				return fmt.Errorf("sources seen: %v", got)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTruncation(t *testing.T) {
	for _, thresh := range []int{0 /* default */, -1 /* rendezvous */} {
		cfg := Config{EagerThreshold: thresh}
		err := Run(2, cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 1, make([]byte, 100))
			}
			_, err := c.Recv(0, 1, make([]byte, 10))
			if !errors.Is(err, ErrTruncated) {
				return fmt.Errorf("thresh %d: err = %v, want ErrTruncated", thresh, err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	// Both ranks Isend then Irecv then wait — the nonblocking engine
	// must make progress on both directions.
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			err := Run(2, cfg, func(c *Comm) error {
				peer := 1 - c.Rank()
				out := bytes.Repeat([]byte{byte(c.Rank() + 1)}, 32768)
				in := make([]byte, len(out))
				sreq, err := c.Isend(peer, 9, out)
				if err != nil {
					return err
				}
				rreq, err := c.Irecv(peer, 9, in)
				if err != nil {
					return err
				}
				if err := c.WaitAll(sreq, rreq); err != nil {
					return err
				}
				for _, b := range in {
					if b != byte(peer+1) {
						return fmt.Errorf("corrupted exchange")
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSendRecvCombinedHeadToHead(t *testing.T) {
	// Head-to-head large exchange deadlocks with blocking Send;
	// SendRecv must not.
	cfg := Config{EagerThreshold: -1} // force rendezvous
	err := Run(2, cfg, func(c *Comm) error {
		peer := 1 - c.Rank()
		out := bytes.Repeat([]byte{byte(c.Rank())}, 1<<16)
		in := make([]byte, len(out))
		if _, err := c.SendRecv(peer, 3, out, peer, 3, in); err != nil {
			return err
		}
		if in[0] != byte(peer) {
			return fmt.Errorf("wrong data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestTest(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte("x"))
		}
		buf := make([]byte, 1)
		req, err := c.Irecv(0, 1, buf)
		if err != nil {
			return err
		}
		for {
			done, st, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				if st.Count != 1 {
					return fmt.Errorf("count %d", st.Count)
				}
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeerAndTagValidation(t *testing.T) {
	err := Run(2, Config{}, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("send to rank 5 accepted")
		}
		if err := c.Send(1, -3, nil); err == nil {
			return errors.New("negative user tag accepted")
		}
		if _, err := c.Irecv(7, 0, nil); err == nil {
			return errors.New("irecv from rank 7 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// A message that arrives before its receive is posted must be
	// buffered and matched later, in arrival order per envelope.
	err := Run(2, Config{}, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if err := c.Send(1, 7, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return c.Send(1, 8, []byte{99})
		}
		// Drain tag 8 first; the five tag-7 messages sit unexpected.
		buf := make([]byte, 1)
		if _, err := c.Recv(0, 8, buf); err != nil {
			return err
		}
		if buf[0] != 99 {
			return fmt.Errorf("tag 8 payload %d", buf[0])
		}
		for i := 0; i < 5; i++ {
			if _, err := c.Recv(0, 7, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("unexpected queue order: got %d want %d", buf[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimTimeAdvances(t *testing.T) {
	cfg := Config{Fabric: Sim, Model: cluster.IBCluster()}
	err := Run(2, cfg, func(c *Comm) error {
		t0 := c.Time()
		peer := 1 - c.Rank()
		buf := make([]byte, 8)
		for i := 0; i < 10; i++ {
			if c.Rank() == 0 {
				if err := c.Send(peer, 1, buf); err != nil {
					return err
				}
				if _, err := c.Recv(peer, 1, buf); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(peer, 1, buf); err != nil {
					return err
				}
				if err := c.Send(peer, 1, buf); err != nil {
					return err
				}
			}
		}
		if c.Time() <= t0 {
			return fmt.Errorf("virtual clock stuck at %v", c.Time())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimComputeAdvancesClock(t *testing.T) {
	cfg := Config{Fabric: Sim, Model: cluster.IBCluster()}
	err := Run(1, cfg, func(c *Comm) error {
		t0 := c.Time()
		c.Compute(1.5)
		if d := c.Time() - t0; d < 1.5 {
			return fmt.Errorf("Compute advanced %v, want >= 1.5", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFabricString(t *testing.T) {
	if InProc.String() != "inproc" || Sim.String() != "sim" || TCP.String() != "tcp" {
		t.Error("Fabric strings wrong")
	}
}
