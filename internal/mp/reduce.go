package mp

import (
	"fmt"
	"math"
)

// Op is a reduction operator over float64 vectors. All provided operators
// are associative and commutative, which the tree-shaped algorithms
// require.
type Op int

const (
	// OpSum adds elementwise.
	OpSum Op = iota
	// OpProd multiplies elementwise.
	OpProd
	// OpMax takes the elementwise maximum.
	OpMax
	// OpMin takes the elementwise minimum.
	OpMin
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// combine folds src into dst elementwise: dst = dst (op) src.
func (op Op) combine(dst, src []float64) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpProd:
		for i := range dst {
			dst[i] *= src[i]
		}
	case OpMax:
		for i := range dst {
			dst[i] = math.Max(dst[i], src[i])
		}
	case OpMin:
		for i := range dst {
			dst[i] = math.Min(dst[i], src[i])
		}
	default:
		panic(fmt.Sprintf("mp: unknown op %d", int(op)))
	}
}

// Reduce combines sendBuf across ranks with op; the result lands in
// recvBuf on root (recvBuf is ignored on other ranks). Uses a binomial
// tree: ceil(log2 p) rounds.
func (c *Comm) Reduce(root int, op Op, sendBuf, recvBuf []float64) error {
	if err := c.checkPeer(root); err != nil {
		return err
	}
	if c.rank == root && len(recvBuf) != len(sendBuf) {
		return fmt.Errorf("%w: reduce recvBuf %d, want %d", ErrMismatch, len(recvBuf), len(sendBuf))
	}
	tag := c.nextCollTag()
	n := len(sendBuf)

	// acc is this rank's running partial result.
	var acc []float64
	if c.rank == root {
		acc = recvBuf
		copy(acc, sendBuf)
	} else {
		acc = append([]float64(nil), sendBuf...)
	}
	tmp := make([]float64, n)

	vrank := (c.rank - root + c.Size()) % c.Size()
	round := 0
	for mask := 1; mask < c.Size(); mask <<= 1 {
		if vrank&mask == 0 {
			peerV := vrank | mask
			if peerV < c.Size() {
				src := (peerV + root) % c.Size()
				if _, err := c.Recv(src, tag-round, f64bytes(tmp)); err != nil {
					return fmt.Errorf("mp: reduce recv: %w", err)
				}
				op.combine(acc, tmp)
			}
		} else {
			dst := ((vrank &^ mask) + root) % c.Size()
			if err := c.sendInternal(dst, tag-round, f64bytes(acc)); err != nil {
				return fmt.Errorf("mp: reduce send: %w", err)
			}
			break // sent partial up the tree; this rank is done
		}
		round++
	}
	return nil
}

// Allreduce combines sendBuf across all ranks into every rank's recvBuf.
// The algorithm is selected by Config.Allreduce (recursive doubling,
// Rabenseifner, or ring; Auto switches on vector size).
func (c *Comm) Allreduce(op Op, sendBuf, recvBuf []float64) error {
	if len(recvBuf) != len(sendBuf) {
		return fmt.Errorf("%w: allreduce recvBuf %d, want %d", ErrMismatch, len(recvBuf), len(sendBuf))
	}
	copy(recvBuf, sendBuf)
	if c.Size() == 1 {
		return nil
	}
	tag := c.nextCollTag()
	algo := c.eng.cfg.Allreduce
	if algo == AllreduceAuto {
		if len(sendBuf) <= 2048 || c.Size() < 4 {
			algo = AllreduceRecursiveDoubling
		} else {
			algo = AllreduceRabenseifner
		}
	}
	switch algo {
	case AllreduceRecursiveDoubling:
		return c.allreduceRecDoubling(op, recvBuf, tag)
	case AllreduceRabenseifner:
		return c.allreduceRabenseifner(op, recvBuf, tag)
	case AllreduceRing:
		return c.allreduceRing(op, recvBuf, tag)
	default:
		return fmt.Errorf("mp: unknown allreduce algorithm %v", algo)
	}
}

// foldToPow2 reduces the participant set to the largest power of two
// r <= p using the standard MPICH pre-step: the first 2*(p-r) ranks pair
// up, evens ship their vector to odds and sit out. It returns the
// virtual rank of this process among the r participants, or -1 if this
// rank is idle, plus a mapping closure from virtual to real rank.
func (c *Comm) foldToPow2(op Op, acc []float64, tag int) (newRank, pow2 int, toReal func(int) int, err error) {
	p := c.Size()
	r := 1
	for r*2 <= p {
		r *= 2
	}
	rem := p - r
	tmp := make([]float64, len(acc))
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		if err := c.sendInternal(c.rank+1, tag, f64bytes(acc)); err != nil {
			return 0, 0, nil, err
		}
		newRank = -1
	case c.rank < 2*rem:
		if _, err := c.Recv(c.rank-1, tag, f64bytes(tmp)); err != nil {
			return 0, 0, nil, err
		}
		op.combine(acc, tmp)
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}
	toReal = func(v int) int {
		if v < rem {
			return v*2 + 1
		}
		return v + rem
	}
	return newRank, r, toReal, nil
}

// unfoldFromPow2 ships the final result back to the idle even ranks.
func (c *Comm) unfoldFromPow2(acc []float64, tag int) error {
	p := c.Size()
	r := 1
	for r*2 <= p {
		r *= 2
	}
	rem := p - r
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		_, err := c.Recv(c.rank+1, tag, f64bytes(acc))
		return err
	case c.rank < 2*rem && c.rank%2 == 1:
		return c.sendInternal(c.rank-1, tag, f64bytes(acc))
	}
	return nil
}

// allreduceRecDoubling exchanges full vectors with XOR partners in
// log2(r) rounds. Latency-optimal; moves the whole vector each round.
func (c *Comm) allreduceRecDoubling(op Op, acc []float64, tag int) error {
	newRank, r, toReal, err := c.foldToPow2(op, acc, tag)
	if err != nil {
		return fmt.Errorf("mp: allreduce fold: %w", err)
	}
	if newRank >= 0 {
		tmp := make([]float64, len(acc))
		round := 1
		for mask := 1; mask < r; mask <<= 1 {
			peer := toReal(newRank ^ mask)
			if _, err := c.sendRecvInternal(peer, tag-round, f64bytes(acc), peer, tag-round, f64bytes(tmp)); err != nil {
				return fmt.Errorf("mp: allreduce rd round %d: %w", round, err)
			}
			op.combine(acc, tmp)
			round++
		}
	}
	if err := c.unfoldFromPow2(acc, tag-collTagStride/2); err != nil {
		return fmt.Errorf("mp: allreduce unfold: %w", err)
	}
	return nil
}

// allreduceRabenseifner does a recursive-halving reduce-scatter followed
// by a recursive-doubling allgather: each rank moves ~2 vectors total
// instead of log2(p), which wins for large vectors.
func (c *Comm) allreduceRabenseifner(op Op, acc []float64, tag int) error {
	newRank, r, toReal, err := c.foldToPow2(op, acc, tag)
	if err != nil {
		return fmt.Errorf("mp: allreduce fold: %w", err)
	}
	if newRank >= 0 {
		n := len(acc)
		// Block b of the r blocks spans [cut(b), cut(b+1)).
		cut := func(b int) int { return b * n / r }
		tmp := make([]float64, n)

		// Reduce-scatter by recursive halving: at each round the
		// active window [lo, hi) of blocks halves; this rank keeps
		// the half containing its own block and combines what the
		// partner sends.
		lo, hi := 0, r
		round := 1
		for mask := r / 2; mask >= 1; mask >>= 1 {
			peer := toReal(newRank ^ mask)
			mid := (lo + hi) / 2
			var keepLo, keepHi, sendLo, sendHi int
			if newRank&mask == 0 {
				keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
			} else {
				keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
			}
			sl, sh := cut(sendLo), cut(sendHi)
			kl, kh := cut(keepLo), cut(keepHi)
			if _, err := c.sendRecvInternal(peer, tag-round, f64bytes(acc[sl:sh]), peer, tag-round, f64bytes(tmp[kl:kh])); err != nil {
				return fmt.Errorf("mp: allreduce rs round %d: %w", round, err)
			}
			op.combine(acc[kl:kh], tmp[kl:kh])
			lo, hi = keepLo, keepHi
			round++
		}

		// Allgather by recursive doubling: windows re-expand in the
		// reverse order.
		for mask := 1; mask < r; mask <<= 1 {
			peer := toReal(newRank ^ mask)
			// The window this rank currently owns.
			ownLo := newRank &^ (mask - 1)
			ownHi := ownLo + mask
			peerLo := (newRank ^ mask) &^ (mask - 1)
			peerHi := peerLo + mask
			ol, oh := cut(ownLo), cut(ownHi)
			pl, ph := cut(peerLo), cut(peerHi)
			if _, err := c.sendRecvInternal(peer, tag-round, f64bytes(acc[ol:oh]), peer, tag-round, f64bytes(acc[pl:ph])); err != nil {
				return fmt.Errorf("mp: allreduce ag round %d: %w", round, err)
			}
			round++
		}
	}
	if err := c.unfoldFromPow2(acc, tag-collTagStride/2); err != nil {
		return fmt.Errorf("mp: allreduce unfold: %w", err)
	}
	return nil
}

// allreduceRing is the bandwidth-optimal ring: p-1 reduce-scatter steps
// followed by p-1 allgather steps over 1/p-sized chunks. Works for any p.
func (c *Comm) allreduceRing(op Op, acc []float64, tag int) error {
	p := c.Size()
	n := len(acc)
	chunk := func(b int) (int, int) {
		b = ((b % p) + p) % p
		return b * n / p, (b + 1) * n / p
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	tmp := make([]float64, n/p+1)

	// Reduce-scatter phase: after p-1 steps, rank r owns the fully
	// reduced chunk (r+1) mod p.
	for step := 0; step < p-1; step++ {
		sLo, sHi := chunk(c.rank - step)
		rLo, rHi := chunk(c.rank - step - 1)
		rtmp := tmp[:rHi-rLo]
		if _, err := c.sendRecvInternal(right, tag-step, f64bytes(acc[sLo:sHi]), left, tag-step, f64bytes(rtmp)); err != nil {
			return fmt.Errorf("mp: allreduce ring rs step %d: %w", step, err)
		}
		op.combine(acc[rLo:rHi], rtmp)
	}
	// Allgather phase: circulate the reduced chunks.
	for step := 0; step < p-1; step++ {
		sLo, sHi := chunk(c.rank - step + 1)
		rLo, rHi := chunk(c.rank - step)
		if _, err := c.sendRecvInternal(right, tag-(p-1)-step, f64bytes(acc[sLo:sHi]), left, tag-(p-1)-step, f64bytes(acc[rLo:rHi])); err != nil {
			return fmt.Errorf("mp: allreduce ring ag step %d: %w", step, err)
		}
	}
	return nil
}

// ReduceScatterBlock reduces sendBuf (length size*blockLen) across ranks
// and scatters the result: rank r receives elements
// [r*blockLen, (r+1)*blockLen) into recvBuf (length blockLen). Uses the
// ring reduce-scatter, which works for any p.
func (c *Comm) ReduceScatterBlock(op Op, sendBuf, recvBuf []float64) error {
	p := c.Size()
	if len(sendBuf) != len(recvBuf)*p {
		return fmt.Errorf("%w: reduce-scatter send %d, want %d", ErrMismatch, len(sendBuf), len(recvBuf)*p)
	}
	if p == 1 {
		copy(recvBuf, sendBuf)
		return nil
	}
	tag := c.nextCollTag()
	bs := len(recvBuf)
	acc := append([]float64(nil), sendBuf...)
	tmp := make([]float64, bs)
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	// After p-1 ring steps, rank r holds the reduced block r... the
	// standard schedule leaves rank r with block (r+1) mod p, so run
	// the indices shifted by -1 to land each rank on its own block.
	blk := func(b int) (int, int) {
		b = ((b % p) + p) % p
		return b * bs, (b + 1) * bs
	}
	for step := 0; step < p-1; step++ {
		sLo, sHi := blk(c.rank - step - 1)
		rLo, rHi := blk(c.rank - step - 2)
		if _, err := c.sendRecvInternal(right, tag-step, f64bytes(acc[sLo:sHi]), left, tag-step, f64bytes(tmp)); err != nil {
			return fmt.Errorf("mp: reduce-scatter step %d: %w", step, err)
		}
		op.combine(acc[rLo:rHi], tmp)
	}
	lo, hi := blk(c.rank)
	copy(recvBuf, acc[lo:hi])
	return nil
}

// Scan computes an inclusive prefix reduction: rank r's recvBuf holds
// sendBuf(0) op ... op sendBuf(r). Hillis–Steele: ceil(log2 p) rounds.
func (c *Comm) Scan(op Op, sendBuf, recvBuf []float64) error {
	if len(recvBuf) != len(sendBuf) {
		return fmt.Errorf("%w: scan recvBuf %d, want %d", ErrMismatch, len(recvBuf), len(sendBuf))
	}
	copy(recvBuf, sendBuf)
	if c.Size() == 1 {
		return nil
	}
	tag := c.nextCollTag()
	n := len(sendBuf)
	tmp := make([]float64, n)
	snapshot := make([]float64, n)
	round := 0
	for mask := 1; mask < c.Size(); mask <<= 1 {
		copy(snapshot, recvBuf) // value to forward this round
		var sreq *Request
		var err error
		if c.rank+mask < c.Size() {
			sreq, err = c.isendInternal(c.rank+mask, tag-round, f64bytes(snapshot))
			if err != nil {
				return fmt.Errorf("mp: scan send: %w", err)
			}
		}
		if c.rank-mask >= 0 {
			if _, err := c.Recv(c.rank-mask, tag-round, f64bytes(tmp)); err != nil {
				return fmt.Errorf("mp: scan recv: %w", err)
			}
			op.combine(recvBuf, tmp)
		}
		if sreq != nil {
			if err := c.waitFor(sreq); err != nil {
				return fmt.Errorf("mp: scan send wait: %w", err)
			}
		}
		round++
	}
	return nil
}

// AllreduceScalar is a convenience wrapper reducing a single value.
func (c *Comm) AllreduceScalar(op Op, x float64) (float64, error) {
	in := [1]float64{x}
	var out [1]float64
	if err := c.Allreduce(op, in[:], out[:]); err != nil {
		return 0, err
	}
	return out[0], nil
}
