package mp

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// TestRandomTrafficStress drives the matching engine with a randomized
// all-pairs schedule: every rank sends K messages to every peer with
// random sizes spanning the eager/rendezvous boundary and random posting
// order on the receiver (half posted before arrival, half after). The
// payload encodes (src, seq) so misrouted or reordered deliveries are
// detected.
func TestRandomTrafficStress(t *testing.T) {
	const (
		ranks       = 5
		perPeer     = 20
		eagerThresh = 512
	)
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := Config{EagerThreshold: eagerThresh}
			err := Run(ranks, cfg, func(c *Comm) error {
				gen := rng.NewSplitMix64(seed) // same schedule on all ranks
				type msg struct{ size int }
				// schedule[src][dst][k] = message size; derived
				// identically on every rank from the shared stream.
				schedule := make([][][]int, ranks)
				for s := range schedule {
					schedule[s] = make([][]int, ranks)
					for d := range schedule[s] {
						if s == d {
							continue
						}
						sizes := make([]int, perPeer)
						for k := range sizes {
							sizes[k] = int(gen.Uint64() % (4 * eagerThresh))
						}
						schedule[s][d] = sizes
					}
				}

				me := c.Rank()
				// Pre-post half of the receives (even k) as Irecvs.
				type pending struct {
					req  *Request
					src  int
					k    int
					buf  []byte
					want int
				}
				var pre []pending
				for src := 0; src < ranks; src++ {
					if src == me {
						continue
					}
					for k := 0; k < perPeer; k += 2 {
						size := schedule[src][me][k]
						buf := make([]byte, size)
						req, err := c.Irecv(src, k, buf)
						if err != nil {
							return err
						}
						pre = append(pre, pending{req, src, k, buf, size})
					}
				}

				// Fire all sends (nonblocking): tag = message index.
				var sends []*Request
				for dst := 0; dst < ranks; dst++ {
					if dst == me {
						continue
					}
					for k := 0; k < perPeer; k++ {
						size := schedule[me][dst][k]
						payload := make([]byte, size)
						stamp(payload, me, k)
						req, err := c.Isend(dst, k, payload)
						if err != nil {
							return err
						}
						sends = append(sends, req)
					}
				}

				// Post the other half (odd k) late — these arrive
				// unexpected.
				for src := 0; src < ranks; src++ {
					if src == me {
						continue
					}
					for k := 1; k < perPeer; k += 2 {
						size := schedule[src][me][k]
						buf := make([]byte, size)
						st, err := c.Recv(src, k, buf)
						if err != nil {
							return err
						}
						if st.Count != size {
							return fmt.Errorf("src %d k %d: count %d want %d", src, k, st.Count, size)
						}
						if err := check(buf, src, k); err != nil {
							return err
						}
					}
				}
				for _, p := range pre {
					st, err := p.req.Wait()
					if err != nil {
						return err
					}
					if st.Count != p.want {
						return fmt.Errorf("pre src %d k %d: count %d want %d", p.src, p.k, st.Count, p.want)
					}
					if err := check(p.buf, p.src, p.k); err != nil {
						return err
					}
				}
				return c.WaitAll(sends...)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// stamp writes a (src, k)-derived pattern over the payload.
func stamp(buf []byte, src, k int) {
	for i := range buf {
		buf[i] = byte(src*31 + k*7 + i)
	}
}

// check verifies the pattern.
func check(buf []byte, src, k int) error {
	for i := range buf {
		if buf[i] != byte(src*31+k*7+i) {
			return fmt.Errorf("payload from %d tag %d corrupt at byte %d", src, k, i)
		}
	}
	return nil
}
