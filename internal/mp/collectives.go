package mp

import (
	"errors"
	"fmt"
)

// Collectives must be invoked by all ranks of the communicator in the
// same order (as in MPI). Each invocation consumes one collective epoch,
// which generates internal tags disjoint from user tag space; the round
// number is folded into the tag so that algorithm phases cannot match
// across rounds.

const collTagStride = 4096 // max p2p rounds distinguishable per collective

func (c *Comm) nextCollTag() int {
	c.eng.stats.Collectives++
	c.collEpoch++
	return collTagBase - int(c.collEpoch)*collTagStride
}

// ErrMismatch reports inconsistent buffer sizes across collective
// arguments.
var ErrMismatch = errors.New("mp: collective buffer size mismatch")

// Barrier blocks until every rank has entered it, using the
// dissemination algorithm (ceil(log2 p) zero-byte rounds).
func (c *Comm) Barrier() error {
	if c.Size() == 1 {
		return nil
	}
	tag := c.nextCollTag()
	round := 0
	for k := 1; k < c.Size(); k <<= 1 {
		dst := (c.rank + k) % c.Size()
		src := (c.rank - k + c.Size()) % c.Size()
		if _, err := c.sendRecvInternal(dst, tag-round, nil, src, tag-round, nil); err != nil {
			return fmt.Errorf("mp: barrier round %d: %w", round, err)
		}
		round++
	}
	return nil
}

// Bcast broadcasts root's buf to every rank (in-place on non-roots).
// All ranks must pass equal-length buffers.
func (c *Comm) Bcast(root int, buf []byte) error {
	if err := c.checkPeer(root); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	tag := c.nextCollTag()
	algo := c.eng.cfg.Bcast
	if algo == BcastAuto {
		if len(buf) <= 32*1024 || c.Size() < 4 {
			algo = BcastBinomial
		} else {
			algo = BcastScatterAllgather
		}
	}
	switch algo {
	case BcastBinomial:
		return c.bcastBinomial(root, buf, tag)
	case BcastScatterAllgather:
		return c.bcastScatterAllgather(root, buf, tag)
	case BcastPipelineRing:
		return c.bcastPipelineRing(root, buf, tag)
	default:
		return fmt.Errorf("mp: unknown bcast algorithm %v", algo)
	}
}

// bcastPipelineChunk is the pipeline depth unit for BcastPipelineRing.
const bcastPipelineChunk = 8 * 1024

// bcastPipelineRing streams the buffer down the ring in fixed chunks:
// each rank forwards chunk i while its predecessor is already sending
// chunk i+1, so steady-state cost is one chunk time per chunk plus a
// (p-2)-deep pipeline fill.
func (c *Comm) bcastPipelineRing(root int, buf []byte, tag int) error {
	p := c.Size()
	vrank := (c.rank - root + p) % p
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	nchunks := (len(buf) + bcastPipelineChunk - 1) / bcastPipelineChunk
	if len(buf) == 0 {
		nchunks = 1 // still run one empty round so ring ordering holds
	}
	var pendingSend *Request
	for i := 0; i < nchunks; i++ {
		lo := i * bcastPipelineChunk
		hi := lo + bcastPipelineChunk
		if hi > len(buf) {
			hi = len(buf)
		}
		chunk := buf[lo:hi]
		chunkTag := tag - (i % (collTagStride - 1))
		if vrank != 0 {
			if _, err := c.Recv(prev, chunkTag, chunk); err != nil {
				return fmt.Errorf("mp: bcast pipeline recv chunk %d: %w", i, err)
			}
		}
		if vrank != p-1 {
			// Overlap: wait for the previous forward only now, so the
			// next receive can progress while the send drains.
			if pendingSend != nil {
				if err := c.waitFor(pendingSend); err != nil {
					return fmt.Errorf("mp: bcast pipeline send wait: %w", err)
				}
			}
			req, err := c.isendInternal(next, chunkTag, chunk)
			if err != nil {
				return fmt.Errorf("mp: bcast pipeline send chunk %d: %w", i, err)
			}
			pendingSend = req
		}
	}
	if pendingSend != nil {
		if err := c.waitFor(pendingSend); err != nil {
			return fmt.Errorf("mp: bcast pipeline final wait: %w", err)
		}
	}
	return nil
}

// bcastBinomial relays the full message down a binomial tree rooted at
// root: ceil(log2 p) rounds, each moving the whole buffer.
func (c *Comm) bcastBinomial(root int, buf []byte, tag int) error {
	vrank := (c.rank - root + c.Size()) % c.Size()
	// Receive phase: find the bit at which this rank gets the message.
	mask := 1
	for mask < c.Size() {
		if vrank&mask != 0 {
			src := (c.rank - mask + c.Size()) % c.Size()
			if _, err := c.Recv(src, tag, buf); err != nil {
				return fmt.Errorf("mp: bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	// Relay phase: forward to children at decreasing masks.
	mask >>= 1
	for mask > 0 {
		if vrank+mask < c.Size() {
			dst := (c.rank + mask) % c.Size()
			if err := c.sendInternal(dst, tag, buf); err != nil {
				return fmt.Errorf("mp: bcast send: %w", err)
			}
		}
		mask >>= 1
	}
	return nil
}

// bcastScatterAllgather is the van de Geijn large-message broadcast: a
// binomial scatter of 1/p-sized blocks followed by a ring allgather.
// Bandwidth moved per rank is ~2 bytes/byte instead of log2(p).
func (c *Comm) bcastScatterAllgather(root int, buf []byte, tag int) error {
	n := len(buf)
	p := c.Size()
	ss := (n + p - 1) / p // scatter block stride
	vrank := (c.rank - root + p) % p

	blockLo := func(v int) int { return min(v*ss, n) }
	blockHi := func(v int) int { return min((v+1)*ss, n) }

	// Phase 1: binomial scatter in vrank space. After this phase, vrank
	// v holds bytes [v*ss, n) truncated at its current subtree extent;
	// precisely, v holds at least its own block [v*ss, min((v+1)ss, n)).
	curSize := 0
	if vrank == 0 {
		curSize = n
	}
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			src := (c.rank - mask + p) % p
			recvLo := blockLo(vrank)
			recvSize := n - recvLo
			if recvSize > 0 {
				st, err := c.Recv(src, tag, buf[recvLo:])
				if err != nil {
					return fmt.Errorf("mp: bcast scatter recv: %w", err)
				}
				curSize = st.Count
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			sendLo := blockLo(vrank + mask)
			sendSize := curSize - (sendLo - blockLo(vrank))
			if sendSize > 0 {
				dst := (c.rank + mask) % p
				if err := c.sendInternal(dst, tag, buf[sendLo:sendLo+sendSize]); err != nil {
					return fmt.Errorf("mp: bcast scatter send: %w", err)
				}
				curSize -= sendSize
			}
		}
		mask >>= 1
	}

	// Phase 2: ring allgather of the p blocks, in vrank space. At step
	// j, vrank v sends block (v-j) and receives block (v-j-1) from its
	// left neighbour.
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for j := 0; j < p-1; j++ {
		sb := (vrank - j + p) % p
		rb := (vrank - j - 1 + 2*p) % p
		sLo, sHi := blockLo(sb), blockHi(sb)
		rLo, rHi := blockLo(rb), blockHi(rb)
		if _, err := c.sendRecvInternal(right, tag-1-j, buf[sLo:sHi], left, tag-1-j, buf[rLo:rHi]); err != nil {
			return fmt.Errorf("mp: bcast allgather step %d: %w", j, err)
		}
	}
	return nil
}

// Gather collects sendBuf from every rank into recvBuf on root, rank
// order, each contribution len(sendBuf) bytes. recvBuf must be
// size*len(sendBuf) long on root and is ignored elsewhere.
func (c *Comm) Gather(root int, sendBuf, recvBuf []byte) error {
	if err := c.checkPeer(root); err != nil {
		return err
	}
	tag := c.nextCollTag()
	bs := len(sendBuf)
	if c.rank != root {
		return c.sendInternal(root, tag, sendBuf)
	}
	if len(recvBuf) != bs*c.Size() {
		return fmt.Errorf("%w: gather recvBuf %d, want %d", ErrMismatch, len(recvBuf), bs*c.Size())
	}
	// Post all receives up front, then satisfy them in any order.
	reqs := make([]*Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recvBuf[r*bs:(r+1)*bs], sendBuf)
			continue
		}
		req, err := c.Irecv(r, tag, recvBuf[r*bs:(r+1)*bs])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.WaitAll(reqs...)
}

// Scatter distributes root's sendBuf (size*blockLen bytes) to all ranks,
// rank r receiving block r into recvBuf.
func (c *Comm) Scatter(root int, sendBuf, recvBuf []byte) error {
	if err := c.checkPeer(root); err != nil {
		return err
	}
	tag := c.nextCollTag()
	bs := len(recvBuf)
	if c.rank != root {
		_, err := c.Recv(root, tag, recvBuf)
		return err
	}
	if len(sendBuf) != bs*c.Size() {
		return fmt.Errorf("%w: scatter sendBuf %d, want %d", ErrMismatch, len(sendBuf), bs*c.Size())
	}
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recvBuf, sendBuf[r*bs:(r+1)*bs])
			continue
		}
		if err := c.sendInternal(r, tag, sendBuf[r*bs:(r+1)*bs]); err != nil {
			return err
		}
	}
	return nil
}

// Allgather gathers every rank's sendBuf into every rank's recvBuf
// (size*len(sendBuf) bytes, rank order). The ring algorithm is used for
// general p, recursive doubling when p is a power of two.
func (c *Comm) Allgather(sendBuf, recvBuf []byte) error {
	bs := len(sendBuf)
	if len(recvBuf) != bs*c.Size() {
		return fmt.Errorf("%w: allgather recvBuf %d, want %d", ErrMismatch, len(recvBuf), bs*c.Size())
	}
	tag := c.nextCollTag()
	copy(recvBuf[c.rank*bs:(c.rank+1)*bs], sendBuf)
	if c.Size() == 1 {
		return nil
	}
	if isPow2(c.Size()) {
		return c.allgatherRecDoubling(recvBuf, bs, tag)
	}
	return c.allgatherRing(recvBuf, bs, tag)
}

func (c *Comm) allgatherRing(recvBuf []byte, bs, tag int) error {
	p := c.Size()
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for j := 0; j < p-1; j++ {
		sb := (c.rank - j + p) % p
		rb := (c.rank - j - 1 + 2*p) % p
		if _, err := c.sendRecvInternal(right, tag-j, recvBuf[sb*bs:(sb+1)*bs], left, tag-j, recvBuf[rb*bs:(rb+1)*bs]); err != nil {
			return fmt.Errorf("mp: allgather ring step %d: %w", j, err)
		}
	}
	return nil
}

// allgatherRecDoubling doubles the gathered extent each round: after
// round k, each rank holds the blocks of its 2^(k+1)-rank aligned group.
func (c *Comm) allgatherRecDoubling(recvBuf []byte, bs, tag int) error {
	p := c.Size()
	for mask, round := 1, 0; mask < p; mask, round = mask<<1, round+1 {
		peer := c.rank ^ mask
		// This rank currently holds blocks of its mask-aligned group.
		myLo := (c.rank &^ (mask - 1)) * bs
		peerLo := (peer &^ (mask - 1)) * bs
		ext := mask * bs
		if _, err := c.sendRecvInternal(peer, tag-round, recvBuf[myLo:myLo+ext], peer, tag-round, recvBuf[peerLo:peerLo+ext]); err != nil {
			return fmt.Errorf("mp: allgather rd round %d: %w", round, err)
		}
	}
	return nil
}

// Alltoall performs a complete exchange: block r of sendBuf goes to rank
// r, which stores it at block index c.rank of its recvBuf. Both buffers
// are size*blockLen bytes with equal blockLen across ranks.
func (c *Comm) Alltoall(sendBuf, recvBuf []byte) error {
	if len(sendBuf) != len(recvBuf) {
		return fmt.Errorf("%w: alltoall %d vs %d", ErrMismatch, len(sendBuf), len(recvBuf))
	}
	if len(sendBuf)%c.Size() != 0 {
		return fmt.Errorf("%w: alltoall buffer %d not divisible by %d ranks", ErrMismatch, len(sendBuf), c.Size())
	}
	tag := c.nextCollTag()
	bs := len(sendBuf) / c.Size()
	copy(recvBuf[c.rank*bs:(c.rank+1)*bs], sendBuf[c.rank*bs:(c.rank+1)*bs])
	p := c.Size()
	// Pairwise exchange: XOR schedule for power-of-two p (perfectly
	// paired, contention-free), rotation schedule otherwise.
	for i := 1; i < p; i++ {
		var sendTo, recvFrom int
		if isPow2(p) {
			sendTo = c.rank ^ i
			recvFrom = sendTo
		} else {
			sendTo = (c.rank + i) % p
			recvFrom = (c.rank - i + p) % p
		}
		if _, err := c.sendRecvInternal(
			sendTo, tag-(i%collTagStride), sendBuf[sendTo*bs:(sendTo+1)*bs],
			recvFrom, tag-(i%collTagStride), recvBuf[recvFrom*bs:(recvFrom+1)*bs]); err != nil {
			return fmt.Errorf("mp: alltoall step %d: %w", i, err)
		}
	}
	return nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
