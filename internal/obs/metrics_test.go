package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: bounds are
// inclusive upper limits, a value exactly on a bound lands in that
// bucket, and everything past the last bound lands in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 10, 100} {
		h.Observe(v)
	}
	want := []int64{2, 4, 6, 7} // cumulative per bucket incl. +Inf
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum != want[i] {
			t.Errorf("bucket %d: cumulative %d, want %d", i, cum, want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+1+5+10+100; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

// TestCounterMonotonicUnderConcurrentScrape hammers a counter and a
// histogram from many goroutines while scraping concurrently — run
// with -race, this is the data-race gate — and asserts the counter
// never moves backwards across scrapes and lands exactly on the total.
func TestCounterMonotonicUnderConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "operations", L("kind", "test"))
	h := r.Histogram("op_seconds", "latency", nil, L("kind", "test"))

	const workers, perWorker = 8, 1000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			v := c.Value()
			if v < last {
				t.Errorf("counter went backwards: %d < %d", v, last)
				return
			}
			last = v
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(0.001)
				// A negative delta must be ignored, not subtracted.
				c.Add(-5)
			}
		}()
	}
	writers.Wait()
	close(stop)
	scraper.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestPrometheusExpositionGolden pins the exact exposition bytes for a
// small fixed registry: HELP/TYPE lines, sorted families and series,
// label escaping, histogram bucket/sum/count suffixes.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_requests_total", "requests served", L("handler", "get"), L("code", "200")).Add(3)
	r.Counter("b_requests_total", "requests served", L("handler", "get"), L("code", "404")).Inc()
	r.Gauge("c_entries", "cache entries", L("tier", `we"ird`)).Set(7)
	r.GaugeFunc("d_uptime_seconds", "process uptime", func() float64 { return 1.5 })
	h := r.Histogram("a_seconds", "latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_seconds latency
# TYPE a_seconds histogram
a_seconds_bucket{le="0.01"} 1
a_seconds_bucket{le="0.1"} 2
a_seconds_bucket{le="+Inf"} 3
a_seconds_sum 5.055
a_seconds_count 3
# HELP b_requests_total requests served
# TYPE b_requests_total counter
b_requests_total{code="200",handler="get"} 3
b_requests_total{code="404",handler="get"} 1
# HELP c_entries cache entries
# TYPE c_entries gauge
c_entries{tier="we\"ird"} 7
# HELP d_uptime_seconds process uptime
# TYPE d_uptime_seconds gauge
d_uptime_seconds 1.5
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestSameInstrumentReturned checks the get-or-create contract: the
// same (name, labels) yields the same instrument, and label order
// does not matter.
func TestSameInstrumentReturned(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters diverged")
	}
}

// TestKindConflictPanics pins that reusing a family name as another
// metric kind fails loudly at registration, not silently at scrape.
func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge registration over a counter name did not panic")
		}
	}()
	r.Gauge("x_total", "")
}
