package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpanTreeOrdering pins the tree contract: children appear under
// their parent in creation order, attributes survive, and End fixes a
// positive elapsed time that only the first End sets.
func TestSpanTreeOrdering(t *testing.T) {
	root := StartSpan("M1")
	root.SetAttr("id", "M1")
	a := root.StartChild("measure/ladder")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.StartChild("model/smp-1n")
	c := b.StartChild("fit")
	c.End()
	b.End()
	root.End()
	first := root.Duration()
	root.End() // idempotent: must not stretch the span
	if root.Duration() != first {
		t.Errorf("second End changed duration: %v -> %v", first, root.Duration())
	}

	if len(root.Children) != 2 || root.Children[0] != a || root.Children[1] != b {
		t.Fatalf("children out of order: %+v", root.Children)
	}
	if len(b.Children) != 1 || b.Children[0] != c {
		t.Fatalf("grandchild missing: %+v", b.Children)
	}
	if a.Duration() <= 0 {
		t.Errorf("child elapsed not set: %v", a.Duration())
	}
	if root.Duration() < a.Duration() {
		t.Errorf("parent (%v) shorter than child (%v)", root.Duration(), a.Duration())
	}
	if root.Attrs["id"] != "M1" {
		t.Errorf("attr lost: %v", root.Attrs)
	}
}

// TestSpanJSONRoundTrip checks the tree marshals with the wire field
// names /debug/traces clients depend on.
func TestSpanJSONRoundTrip(t *testing.T) {
	root := StartSpan("T1")
	root.SetAttr("platform", "gige-8n")
	root.StartChild("phase").End()
	root.End()
	buf, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Name    string            `json:"name"`
		Attrs   map[string]string `json:"attrs"`
		Elapsed float64           `json:"elapsed_seconds"`
		Kids    []json.RawMessage `json:"children"`
	}
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "T1" || back.Attrs["platform"] != "gige-8n" || len(back.Kids) != 1 {
		t.Errorf("round trip lost fields: %s", buf)
	}
}

// TestSpanNilSafe pins the no-op contract instrumentation points rely
// on: every method on a nil *Span is safe.
func TestSpanNilSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.End()
	if c := s.StartChild("x"); c != nil {
		t.Errorf("nil span produced a child: %v", c)
	}
	if d := s.Duration(); d != 0 {
		t.Errorf("nil span has duration %v", d)
	}
	s.WriteTree(&strings.Builder{})
}

// TestWriteTreeIndentation pins the text rendering charhpc -trace
// emits: two-space indentation per depth, attrs in brackets.
func TestWriteTreeIndentation(t *testing.T) {
	root := StartSpan("M5")
	root.SetAttr("platform", "fat-1n")
	root.StartChild("model/fat-1n").End()
	root.End()
	var b strings.Builder
	root.WriteTree(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %q", b.String())
	}
	if !strings.HasPrefix(lines[0], "M5 [platform=fat-1n]") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  model/fat-1n") {
		t.Errorf("child line = %q", lines[1])
	}
}

// TestTraceBufferRing fills the ring past capacity and checks Recent
// returns the newest first, oldest evicted.
func TestTraceBufferRing(t *testing.T) {
	b := NewTraceBuffer(3)
	if got := b.Recent(0); len(got) != 0 {
		t.Fatalf("empty buffer returned %d traces", len(got))
	}
	var spans []*Span
	for i := 0; i < 5; i++ {
		s := StartSpan(strings.Repeat("x", i+1))
		s.End()
		spans = append(spans, s)
		b.Add(s)
	}
	got := b.Recent(0)
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	// Newest first: spans 4, 3, 2.
	for i, want := range []*Span{spans[4], spans[3], spans[2]} {
		if got[i] != want {
			t.Errorf("Recent[%d] = %q, want %q", i, got[i].Name, want.Name)
		}
	}
	if got := b.Recent(2); len(got) != 2 || got[0] != spans[4] {
		t.Errorf("Recent(2) wrong: %v", got)
	}
}

// TestNewRequestID sanity-checks uniqueness and shape.
func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Errorf("consecutive request IDs collided: %s", a)
	}
	if len(a) != 16 {
		t.Errorf("request ID %q has length %d, want 16", a, len(a))
	}
}

// TestTraceBufferConcurrentWrap hammers a ring smaller than the writer
// count so every Add races an eviction (run with -race in CI): the
// buffer must stay consistent — exactly capacity traces retained, all
// of them traces that were actually added, newest-first de-duplicated.
func TestTraceBufferConcurrentWrap(t *testing.T) {
	const writers, each, capacity = 8, 200, 3
	b := NewTraceBuffer(capacity)
	valid := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s := StartSpan(fmt.Sprintf("w%d/%d", w, i))
				s.End()
				mu.Lock()
				valid[s.Name] = true
				mu.Unlock()
				b.Add(s)
				// Readers race the wrap-around too.
				if got := b.Recent(0); len(got) > capacity {
					t.Errorf("Recent returned %d traces, capacity %d", len(got), capacity)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := b.Recent(0)
	if len(got) != capacity {
		t.Fatalf("retained %d traces after wrap, want %d", len(got), capacity)
	}
	seen := map[string]bool{}
	for _, s := range got {
		if s == nil || !valid[s.Name] {
			t.Fatalf("ring holds a trace that was never added: %+v", s)
		}
		if seen[s.Name] {
			t.Errorf("trace %q retained twice", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestSpanObserver pins the observer contract: children inherit the
// observer and fire Started on open; every observed span fires Ended
// exactly once (repeat Ends are swallowed with the duration); the
// root the observer was attached to fires Ended but not Started.
func TestSpanObserver(t *testing.T) {
	var started, ended []string
	root := StartSpan("run")
	root.Observe(ObserverFuncs{
		Started: func(s *Span) { started = append(started, s.Name) },
		Ended:   func(s *Span) { ended = append(ended, s.Name) },
	})
	a := root.StartChild("a")
	aa := a.StartChild("a/a")
	aa.End()
	aa.End() // second End: no duplicate callback
	a.End()
	b := root.StartChild("b")
	b.End()
	root.End()

	if want := "[a a/a b]"; fmt.Sprint(started) != want {
		t.Errorf("started = %v, want %v (root not included)", started, want)
	}
	if want := "[a/a a b run]"; fmt.Sprint(ended) != want {
		t.Errorf("ended = %v, want %v", ended, want)
	}
}

// TestSpanObserverNilSafe: attaching to a nil span, attaching nil, and
// zero ObserverFuncs are all inert.
func TestSpanObserverNilSafe(t *testing.T) {
	var nilSpan *Span
	nilSpan.Observe(ObserverFuncs{}) // no panic
	s := StartSpan("x")
	s.Observe(nil)
	s.StartChild("c").End()
	s.End()
	s2 := StartSpan("y")
	s2.Observe(ObserverFuncs{}) // nil fields skipped
	s2.StartChild("c").End()
	s2.End()
}

// TestSpanObserverConcurrentChildren: callbacks fire outside the
// span's lock, so concurrent children observing into a shared sink
// must not deadlock or race (run with -race in CI).
func TestSpanObserverConcurrentChildren(t *testing.T) {
	var events atomic.Int64
	root := StartSpan("run")
	root.Observe(ObserverFuncs{
		Started: func(s *Span) { events.Add(1) },
		Ended: func(s *Span) {
			// Re-entering the tree from a callback (as the SSE hook
			// layer does when it marshals the span) must be safe.
			_, _ = json.Marshal(s)
			events.Add(1)
		},
	})
	const workers, spansEach = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansEach; i++ {
				c := root.StartChild(fmt.Sprintf("w%d/%d", w, i))
				c.SetAttr("i", fmt.Sprint(i))
				c.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	// workers*spansEach starts + the same ends + the root's end.
	if want := int64(2*workers*spansEach + 1); events.Load() != want {
		t.Errorf("observer fired %d times, want %d", events.Load(), want)
	}
}
