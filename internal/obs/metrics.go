// Package obs is the repository's observability core: metrics,
// structured logs, and run-span traces, with zero dependencies beyond
// the standard library so every layer (serve, core, diskcache, par,
// the binaries) can instrument itself without import cycles or
// third-party clients.
//
// Three instruments live here:
//
//   - Metrics: a Registry of atomic Counters, Gauges, and fixed-bucket
//     Histograms, rendered in the Prometheus text exposition format
//     (WritePrometheus) — what GET /metrics serves.
//   - Logs: a line-oriented Logger emitting either human text or
//     structured JSON, one object per line, with ordered key/value
//     fields — what the daemon's access log and shutdown summary use.
//   - Traces: a Span tree per experiment run (child spans per platform
//     and probe phase) collected into a TraceBuffer ring — what
//     GET /debug/traces and charhpc -trace render.
//
// Everything is safe for concurrent use; instruments are lock-free
// atomics on the hot path and a scrape observes a consistent-enough
// snapshot (each sample individually atomic, the canonical Prometheus
// contract).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension: a key/value pair fixed at instrument
// creation. Keep label cardinality bounded (handler names, status
// codes, cache tiers) — every distinct label set is its own series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// DefBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond cache hits to multi-minute full-scale runs.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Counter is a monotonically increasing sample. Like every instrument
// here, a nil *Counter is a valid no-op — optional instrumentation
// (diskcache.Metrics, unwired hooks) calls through without guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n; negative deltas are ignored so the
// series stays monotonic no matter what a caller computes.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a sample that can go up and down. A nil *Gauge is a valid
// no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive
// upper limits in ascending order; an implicit +Inf bucket catches
// the rest. Observations accumulate a float64 sum (CAS loop) and
// per-bucket counts (atomic), so Observe is safe under full
// concurrency with scrapes. A nil *Histogram is a valid no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le is inclusive
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the one-liner
// request handlers and cache fills use.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metricKind tags a family's exposition TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instrument inside a family.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups all series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind
	by   map[string]*series // rendered label string → series
}

// Registry holds named metric families and renders them in the
// Prometheus text format. Instrument lookup is get-or-create: calling
// Counter twice with the same name and labels returns the same
// instrument, so callers need not cache handles (though hot paths
// should). The zero Registry is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns the series for (name, labels), creating family and
// series as needed. The caller must hold r.mu — instrument fields on
// the returned series may only be written under the same lock, or a
// concurrent get-or-create races the initialization. Registering one
// name as two different kinds is a programming error and panics at
// init/first-use time.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, by: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	ls := renderLabels(labels)
	s := f.by[ls]
	if s == nil {
		s = &series{labels: ls}
		f.by[ls] = s
	}
	return s
}

// Counter returns the counter named name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// uptime, cache entry counts, anything already tracked elsewhere.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindGauge, labels)
	s.fn = fn
}

// Histogram returns the histogram named name with the given bucket
// bounds (nil means DefBuckets) and labels. Bounds must be ascending;
// they are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
			}
		}
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		s.h = h
	}
	return s.h
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), families and series in
// sorted order so the output is deterministic for goldens and diffs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		// Snapshot and sort the series under the registry lock so a
		// concurrent lookup's map write cannot race the render.
		r.mu.Lock()
		keys := make([]string, 0, len(f.by))
		for k := range f.by {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ss := make([]*series, len(keys))
		for i, k := range keys {
			ss[i] = f.by[k]
		}
		r.mu.Unlock()

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch {
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatSample(s.fn()))
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case s.h != nil:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket
// samples per le bound, +Inf, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s.labels, formatSample(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatSample(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum)
}

// withLE splices the le label into an already-rendered label string.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// renderLabels renders a label set as {k="v",...}, keys sorted, values
// escaped — the canonical series identity inside a family.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatSample renders a float sample the way Prometheus clients do:
// shortest round-trip representation, integers without an exponent.
func formatSample(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
