package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Logger writes line-oriented structured logs in one of two formats:
//
//	text: 2026-01-02T15:04:05.000Z INFO msg key=value key=value
//	json: {"time":"...","level":"info","msg":"...","key":value,...}
//
// Fields are ordered key/value pairs and keep their call-site order in
// both formats (JSON is built by hand, not through a map, so lines are
// deterministic and greppable). A nil *Logger is a valid no-op sink —
// instrumentation points never need to guard against an unconfigured
// logger. Safe for concurrent use; each call emits exactly one line.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
	now  func() time.Time
}

// Log formats: the accepted values for NewLogger.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// NewLogger returns a Logger writing to w in the given format
// (FormatText or FormatJSON; anything else falls back to text).
func NewLogger(w io.Writer, format string) *Logger {
	return &Logger{w: w, json: format == FormatJSON, now: time.Now}
}

// Info emits one line at level info. kv is alternating key, value
// pairs; a trailing odd key gets a null/empty value.
func (l *Logger) Info(msg string, kv ...any) { l.emit("info", msg, false, kv) }

// Error emits one line at level error.
func (l *Logger) Error(msg string, kv ...any) { l.emit("error", msg, false, kv) }

// JSONLine emits one line at the given level in JSON regardless of the
// logger's configured format — for machine-consumed records (the
// daemon's shutdown summary) that must stay parseable even when the
// operator prefers text logs.
func (l *Logger) JSONLine(level, msg string, kv ...any) { l.emit(level, msg, true, kv) }

func (l *Logger) emit(level, msg string, forceJSON bool, kv []any) {
	if l == nil || l.w == nil {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var b strings.Builder
	if l.json || forceJSON {
		b.WriteString(`{"time":`)
		b.Write(jsonValue(ts))
		b.WriteString(`,"level":`)
		b.Write(jsonValue(level))
		b.WriteString(`,"msg":`)
		b.Write(jsonValue(msg))
		for i := 0; i < len(kv); i += 2 {
			key := fmt.Sprintf("%v", kv[i])
			var val any
			if i+1 < len(kv) {
				val = kv[i+1]
			}
			b.WriteByte(',')
			b.Write(jsonValue(key))
			b.WriteByte(':')
			b.Write(jsonValue(val))
		}
		b.WriteString("}\n")
	} else {
		b.WriteString(ts)
		b.WriteByte(' ')
		b.WriteString(strings.ToUpper(level))
		b.WriteByte(' ')
		b.WriteString(msg)
		for i := 0; i < len(kv); i += 2 {
			var val any
			if i+1 < len(kv) {
				val = kv[i+1]
			}
			fmt.Fprintf(&b, " %v=%v", kv[i], val)
		}
		b.WriteByte('\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// jsonValue marshals one field value, degrading to its %v rendering if
// the value does not marshal (a logger must never fail a log line).
func jsonValue(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	return b
}
