package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
}

// TestLoggerJSON pins the JSON line shape: one object per line,
// time/level/msg first, fields in call order.
func TestLoggerJSON(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatJSON)
	l.now = fixedClock
	l.Info("request", "method", "GET", "status", 200, "dur_ms", 1.5)
	line := b.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("not one line: %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("unparseable: %v in %q", err, line)
	}
	if m["level"] != "info" || m["msg"] != "request" || m["method"] != "GET" ||
		m["status"] != float64(200) || m["dur_ms"] != 1.5 {
		t.Errorf("fields wrong: %v", m)
	}
	if !strings.HasPrefix(line, `{"time":"2026-08-08T12:00:00Z","level":"info","msg":"request",`) {
		t.Errorf("field order not preserved: %q", line)
	}
}

// TestLoggerText pins the text shape: timestamp LEVEL msg k=v.
func TestLoggerText(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatText)
	l.now = fixedClock
	l.Error("boom", "cause", "disk")
	if got, want := b.String(), "2026-08-08T12:00:00Z ERROR boom cause=disk\n"; got != want {
		t.Errorf("text line = %q, want %q", got, want)
	}
}

// TestLoggerJSONLineForcesJSON: the shutdown summary stays machine
// readable even on a text-format logger.
func TestLoggerJSONLineForcesJSON(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatText)
	l.now = fixedClock
	l.JSONLine("info", "summary", "runs", 4)
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("summary not JSON: %v in %q", err, b.String())
	}
	if m["runs"] != float64(4) {
		t.Errorf("summary fields wrong: %v", m)
	}
}

// TestLoggerNilSafe: a nil logger is a valid sink.
func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored", "k", "v")
	l.Error("ignored")
	l.JSONLine("info", "ignored")
}
