package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed node of a run's trace tree: an experiment run at
// the root, platforms and probe phases as children. Spans are built
// live (StartSpan/StartChild/End) and then read as an immutable tree —
// JSON-marshalable for GET /debug/traces, text-renderable for
// charhpc -trace.
//
// Attrs carries small identifying strings (experiment ID, scale,
// platform). Children keep creation order, which for the serial
// per-platform loops inside an experiment is also chronological order.
type Span struct {
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Start    time.Time         `json:"start"`
	Elapsed  float64           `json:"elapsed_seconds"`
	Children []*Span           `json:"children,omitempty"`

	mu       sync.Mutex
	ended    bool
	observer SpanObserver
}

// SpanObserver receives live notifications as a span tree is built —
// the bridge between the tracer and anything that wants progress
// events while a run is still going (the async job event stream).
// Callbacks fire outside the span's lock, from the goroutine driving
// the span, and must be safe for concurrent use when the tree has
// concurrent children.
type SpanObserver interface {
	// SpanStarted fires when a child span is opened under an observed
	// span (not for the root the observer was attached to — the caller
	// already knows that one started).
	SpanStarted(*Span)
	// SpanEnded fires on the first End of any observed span, root
	// included.
	SpanEnded(*Span)
}

// ObserverFuncs adapts two optional funcs to SpanObserver; nil fields
// are skipped.
type ObserverFuncs struct {
	Started func(*Span)
	Ended   func(*Span)
}

// SpanStarted implements SpanObserver.
func (o ObserverFuncs) SpanStarted(s *Span) {
	if o.Started != nil {
		o.Started(s)
	}
}

// SpanEnded implements SpanObserver.
func (o ObserverFuncs) SpanEnded(s *Span) {
	if o.Ended != nil {
		o.Ended(s)
	}
}

// Observe attaches an observer to the span. Children opened after the
// call inherit it, so observing a run's root span streams the whole
// tree as it grows. Nil-safe on both sides.
func (s *Span) Observe(o SpanObserver) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.observer = o
	s.mu.Unlock()
}

// StartSpan opens a root span named name, started now.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild opens and returns a child span under s. Safe for
// concurrent children (the tree locks per node); a nil receiver
// returns nil, so call sites inside optional instrumentation need no
// guards — every Span method tolerates a nil receiver.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	c.observer = s.observer
	s.Children = append(s.Children, c)
	o := s.observer
	s.mu.Unlock()
	if o != nil {
		o.SpanStarted(c)
	}
	return c
}

// SetAttr records one identifying attribute on the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = map[string]string{}
	}
	s.Attrs[k] = v
	s.mu.Unlock()
}

// End closes the span, fixing its elapsed time. Idempotent: only the
// first End sets the duration, so a deferred End after an explicit one
// cannot stretch the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	var o SpanObserver
	if !s.ended {
		s.ended = true
		s.Elapsed = time.Since(s.Start).Seconds()
		o = s.observer
	}
	s.mu.Unlock()
	if o != nil {
		o.SpanEnded(s)
	}
}

// Duration returns the span's elapsed time (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.Elapsed * float64(time.Second))
}

// WriteTree renders the span tree as indented text, one line per span
// with its elapsed time — what charhpc -trace prints:
//
//	M1  12.3ms
//	  measure/ladder  8.1ms
//	  model/smp-1n  0.2ms
func (s *Span) WriteTree(w io.Writer) {
	if s == nil {
		return
	}
	s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) {
	s.mu.Lock()
	name, attrs := s.Name, s.Attrs
	elapsed := time.Duration(s.Elapsed * float64(time.Second))
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth), name)
	if len(attrs) > 0 {
		line += " " + renderAttrs(attrs)
	}
	fmt.Fprintf(w, "%s  %s\n", line, elapsed.Round(time.Microsecond))
	for _, c := range children {
		c.writeTree(w, depth+1)
	}
}

// renderAttrs renders attributes deterministically: the identity keys
// first, the rest sorted.
func renderAttrs(attrs map[string]string) string {
	keys := make([]string, 0, len(attrs))
	for _, k := range []string{"id", "scale", "platform"} {
		if _, ok := attrs[k]; ok {
			keys = append(keys, k)
		}
	}
	rest := make([]string, 0, len(attrs))
	for k := range attrs {
		if k != "id" && k != "scale" && k != "platform" {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	keys = append(keys, rest...)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// MarshalJSON locks the span while the default encoding runs, so a
// scrape racing a live child append reads a consistent node.
func (s *Span) MarshalJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type plain struct {
		Name     string            `json:"name"`
		Attrs    map[string]string `json:"attrs,omitempty"`
		Start    time.Time         `json:"start"`
		Elapsed  float64           `json:"elapsed_seconds"`
		Children []*Span           `json:"children,omitempty"`
	}
	return json.Marshal(plain{s.Name, s.Attrs, s.Start, s.Elapsed, s.Children})
}

// TraceBuffer retains the last N completed run traces — a fixed ring,
// newest first on read, so /debug/traces costs O(N) memory no matter
// how long the daemon runs.
type TraceBuffer struct {
	mu     sync.Mutex
	ring   []*Span
	next   int
	filled bool
}

// NewTraceBuffer returns a buffer retaining the last n traces
// (n < 1 is treated as 1).
func NewTraceBuffer(n int) *TraceBuffer {
	if n < 1 {
		n = 1
	}
	return &TraceBuffer{ring: make([]*Span, n)}
}

// Add records one completed trace, evicting the oldest when full.
func (b *TraceBuffer) Add(s *Span) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	b.ring[b.next] = s
	b.next++
	if b.next == len(b.ring) {
		b.next, b.filled = 0, true
	}
	b.mu.Unlock()
}

// Recent returns up to n retained traces, newest first (n <= 0 means
// all retained).
func (b *TraceBuffer) Recent(n int) []*Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	size := b.next
	if b.filled {
		size = len(b.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, b.ring[(b.next-i+len(b.ring))%len(b.ring)])
	}
	return out
}

// reqCounter distinguishes request IDs when the random source fails.
var reqCounter atomic.Int64

// NewRequestID returns a fresh 16-hex-char request ID — the value the
// serving layer stamps on X-Request-ID and threads through access
// logs. Random (crypto/rand) with a counter fallback, so IDs are
// unique per process even without entropy.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqCounter.Add(1))
	}
	return hex.EncodeToString(buf[:])
}
