package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	const n = 1000
	hit := make([]int32, n)
	For(n, func(i int) { atomic.AddInt32(&hit[i], 1) })
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestForOptSchedulesCoverExactly(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, threads := range []int{1, 2, 3, 7, 16} {
			for _, n := range []int{1, 2, 16, 97, 1000} {
				hit := make([]int32, n)
				ForOpt(n, Options{Threads: threads, Schedule: sched, Chunk: 3},
					func(lo, hi, w int) {
						if w < 0 || w >= threads {
							t.Errorf("worker id %d out of range", w)
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hit[i], 1)
						}
					})
				for i, h := range hit {
					if h != 1 {
						t.Fatalf("%v t=%d n=%d: index %d visited %d times",
							sched, threads, n, i, h)
					}
				}
			}
		}
	}
}

func TestForOptChunkRespected(t *testing.T) {
	// Dynamic with chunk=10 over n=100 must call the body in chunks of
	// exactly 10 (n divides evenly).
	var mu sync.Mutex
	var sizes []int
	ForOpt(100, Options{Threads: 4, Schedule: Dynamic, Chunk: 10},
		func(lo, hi, _ int) {
			mu.Lock()
			sizes = append(sizes, hi-lo)
			mu.Unlock()
		})
	if len(sizes) != 10 {
		t.Fatalf("expected 10 chunks, got %d", len(sizes))
	}
	for _, s := range sizes {
		if s != 10 {
			t.Errorf("chunk size %d, want 10", s)
		}
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	// With one worker, guided chunks must be non-increasing and the
	// first chunk must be ~n/threads... with threads=1 the first chunk
	// is the whole range; use 4 logical threads but a single-threaded
	// verification via Chunk accounting instead: run with Threads=2 and
	// just validate coverage plus that at least one chunk is bigger
	// than the minimum (i.e. guided actually hands out large chunks).
	var mu sync.Mutex
	var sizes []int
	ForOpt(1000, Options{Threads: 2, Schedule: Guided, Chunk: 4},
		func(lo, hi, _ int) {
			mu.Lock()
			sizes = append(sizes, hi-lo)
			mu.Unlock()
		})
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize <= 4 {
		t.Errorf("guided never produced a chunk larger than the minimum; sizes=%v", sizes)
	}
}

func TestForOptSingleThreadInline(t *testing.T) {
	// Threads=1 must execute inline as one chunk.
	calls := 0
	ForOpt(50, Options{Threads: 1}, func(lo, hi, w int) {
		calls++
		if lo != 0 || hi != 50 || w != 0 {
			t.Errorf("inline chunk = [%d,%d) w=%d", lo, hi, w)
		}
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestForOptThreadsClampedToN(t *testing.T) {
	// More threads than iterations: worker ids must stay < n.
	ForOpt(3, Options{Threads: 16}, func(lo, hi, w int) {
		if w >= 3 {
			t.Errorf("worker id %d not clamped", w)
		}
	})
}

func TestReduceFloat64Sum(t *testing.T) {
	got := Sum(1000, Options{Threads: 8}, func(i int) float64 { return float64(i) })
	want := 999.0 * 1000 / 2
	if got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestReduceFloat64Max(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	got := ReduceFloat64(len(xs), Options{Threads: 4}, xs[0],
		func(lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				if xs[i] > acc {
					acc = xs[i]
				}
			}
			return acc
		},
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	if got != 9 {
		t.Errorf("parallel max = %v, want 9", got)
	}
}

func TestReduceEmptyReturnsIdentity(t *testing.T) {
	got := ReduceFloat64(0, Options{}, -1,
		func(lo, hi int, acc float64) float64 { return 0 },
		func(a, b float64) float64 { return a + b })
	if got != -1 {
		t.Errorf("empty reduce = %v, want identity -1", got)
	}
}

func TestSumPropertyMatchesSerial(t *testing.T) {
	f := func(raw []int16, threads uint8) bool {
		n := len(raw)
		th := int(threads)%8 + 1
		var serial float64
		for _, v := range raw {
			serial += float64(v)
		}
		parallel := Sum(n, Options{Threads: th}, func(i int) float64 { return float64(raw[i]) })
		return parallel == serial || (n > 0 && abs(parallel-serial) < 1e-9*absMax(serial, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func absMax(a, b float64) float64 {
	a = abs(a)
	if a > b {
		return a
	}
	return b
}

func TestTeamRunAllWorkers(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	var hits [4]int32
	for rep := 0; rep < 10; rep++ {
		team.Run(func(w int) { atomic.AddInt32(&hits[w], 1) })
	}
	for w, h := range hits {
		if h != 10 {
			t.Errorf("worker %d ran %d times, want 10", w, h)
		}
	}
}

func TestTeamForStatic(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	const n = 100
	hit := make([]int32, n)
	team.ForStatic(n, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hit[i], 1)
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestTeamForStaticEmpty(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	team.ForStatic(0, func(lo, hi, w int) { t.Error("called on empty range") })
}

func TestTeamBarrierSynchronizes(t *testing.T) {
	const workers = 4
	team := NewTeam(workers)
	defer team.Close()
	var phase1 int32
	ok := int32(1)
	team.Run(func(w int) {
		atomic.AddInt32(&phase1, 1)
		team.Barrier().Wait()
		// After the barrier, every worker must observe all phase-1
		// increments.
		if atomic.LoadInt32(&phase1) != workers {
			atomic.StoreInt32(&ok, 0)
		}
	})
	if ok != 1 {
		t.Error("barrier did not synchronize phase transition")
	}
}

func TestTeamPanicPropagates(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	defer func() {
		if recover() == nil {
			t.Error("panic in worker body was swallowed")
		}
	}()
	team.Run(func(w int) {
		if w == 1 {
			panic("boom")
		}
	})
}

func TestTeamCloseIdempotent(t *testing.T) {
	team := NewTeam(2)
	team.Close()
	team.Close() // must not panic or deadlock
}

func TestBarrierReuse(t *testing.T) {
	const n = 3
	b := NewBarrier(n)
	var wg sync.WaitGroup
	var counter int64
	bad := int32(0)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 1; round <= 50; round++ {
				atomic.AddInt64(&counter, 1)
				b.Wait()
				if c := atomic.LoadInt64(&counter); c < int64(round*n) {
					atomic.StoreInt32(&bad, 1)
				}
				b.Wait() // second barrier so no round overlap
			}
		}()
	}
	wg.Wait()
	if bad != 0 {
		t.Error("barrier reuse violated round isolation")
	}
}

func TestNewBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) should panic")
		}
	}()
	NewBarrier(0)
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Error("Schedule.String wrong")
	}
	if Schedule(42).String() != "Schedule(42)" {
		t.Error("unknown schedule string wrong")
	}
}

// TestPinnedTeam asserts a pinned team behaves like a regular team —
// every worker runs, static loops cover the range — while reporting
// its pinning, which the NUMA probe in internal/mem relies on.
func TestPinnedTeam(t *testing.T) {
	team := NewPinnedTeam(3)
	defer team.Close()
	if !team.Pinned() {
		t.Error("NewPinnedTeam not pinned")
	}
	if team.Size() != 3 {
		t.Errorf("size = %d, want 3", team.Size())
	}
	var ran [3]int32
	team.Run(func(w int) { atomic.AddInt32(&ran[w], 1) })
	for w, n := range ran {
		if n != 1 {
			t.Errorf("worker %d ran %d times, want 1", w, n)
		}
	}
	var sum int64
	var mu sync.Mutex
	team.ForStatic(100, func(lo, hi, _ int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		mu.Lock()
		sum += local
		mu.Unlock()
	})
	if sum != 4950 {
		t.Errorf("pinned ForStatic sum = %d, want 4950", sum)
	}
	plain := NewTeam(2)
	defer plain.Close()
	if plain.Pinned() {
		t.Error("NewTeam reports pinned")
	}
}
