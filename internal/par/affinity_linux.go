//go:build linux

package par

import (
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"unsafe"
)

// cpuMaskWords covers 1024 CPUs, the kernel's conventional cpu_set_t;
// allowedCPUs grows its mask past this when the kernel asks for more.
const cpuMaskWords = 16

// nodeCPUs holds, per NUMA node that has any allowed CPU, the CPUs of
// that node this process may run on — read once from sysfs. A single
// entry (all allowed CPUs) means UMA or unreadable topology.
var (
	nodeOnce sync.Once
	nodeCPUs [][]int
)

// getAffinityMask reads the calling OS thread's scheduler affinity
// mask. The kernel rejects buffers smaller than its own CPU mask with
// EINVAL, so the buffer is doubled until it fits (glibc's approach) —
// without this, hosts with more than 1024 logical CPUs would silently
// lose affinity support. Returns nil on failure.
func getAffinityMask() []uint64 {
	for words := cpuMaskWords; words <= 1<<12; words *= 2 {
		mask := make([]uint64, words)
		_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
			0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
		if errno == syscall.EINVAL {
			continue
		}
		if errno != 0 {
			return nil
		}
		return mask
	}
	return nil
}

// allowedCPUs returns the CPUs the process may run on, in ascending
// order, from the scheduler's affinity mask.
func allowedCPUs() []int {
	mask := getAffinityMask()
	var cpus []int
	for i, m := range mask {
		for b := 0; b < 64; b++ {
			if m&(1<<b) != 0 {
				cpus = append(cpus, i*64+b)
			}
		}
	}
	return cpus
}

// parseCPUList parses the kernel's cpulist format ("0-3,8,10-11").
func parseCPUList(s string) []int {
	var cpus []int
	for _, part := range strings.Split(strings.TrimSpace(s), ",") {
		if part == "" {
			continue
		}
		lo, hi, ok := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil {
			continue
		}
		b := a
		if ok {
			if b, err = strconv.Atoi(hi); err != nil {
				continue
			}
		}
		for c := a; c <= b; c++ {
			cpus = append(cpus, c)
		}
	}
	return cpus
}

// initNodes builds nodeCPUs from /sys/devices/system/node: each
// node's cpulist intersected with the process's allowed CPUs. Node
// directories are enumerated (not counted up from zero) because node
// IDs may be sparse — offline or hot-removed nodes leave gaps.
// Memory-only nodes (empty cpulist) and nodes the process may not run
// on are skipped. Anything unreadable degrades to one flat group.
func initNodes() {
	allowed := allowedCPUs()
	allowedSet := make(map[int]bool, len(allowed))
	for _, c := range allowed {
		allowedSet[c] = true
	}
	const nodeRoot = "/sys/devices/system/node"
	var ids []int
	if entries, err := os.ReadDir(nodeRoot); err == nil {
		for _, e := range entries {
			if num, ok := strings.CutPrefix(e.Name(), "node"); ok {
				if id, err := strconv.Atoi(num); err == nil {
					ids = append(ids, id)
				}
			}
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		b, err := os.ReadFile(nodeRoot + "/node" + strconv.Itoa(id) + "/cpulist")
		if err != nil {
			continue
		}
		var cpus []int
		for _, c := range parseCPUList(string(b)) {
			if allowedSet[c] {
				cpus = append(cpus, c)
			}
		}
		if len(cpus) > 0 {
			nodeCPUs = append(nodeCPUs, cpus)
		}
	}
	if len(nodeCPUs) < 2 {
		nodeCPUs = nil
		if len(allowed) > 0 {
			nodeCPUs = [][]int{allowed}
		}
	}
}

// NUMANodes returns the number of NUMA nodes the process can execute
// on (1 on UMA machines, off Linux, or when sysfs is unreadable). The
// NUMA probe in internal/mem sizes its pinned teams with this so that
// "one worker per node" holds by default.
func NUMANodes() int {
	nodeOnce.Do(initNodes)
	if len(nodeCPUs) == 0 {
		return 1
	}
	return len(nodeCPUs)
}

// pinToCPU binds the calling OS thread to one CPU chosen so a pinned
// team spreads across the machine's NUMA nodes: worker w lands on node
// w mod nodes (distinct CPUs within a node for w beyond the node
// count), so a team sized NUMANodes() has exactly one worker per node
// and worker-indexed placement policies become node placement. On UMA
// (or unknown topology) workers take distinct allowed CPUs round-robin.
// Must be called from a LockOSThread'd goroutine; failures leave the
// thread's mask unchanged, degrading to plain LockOSThread behavior.
func pinToCPU(w int) {
	nodeOnce.Do(initNodes)
	if len(nodeCPUs) == 0 {
		return
	}
	node := nodeCPUs[w%len(nodeCPUs)]
	cpu := node[(w/len(nodeCPUs))%len(node)]
	// Sized to the target CPU: the kernel accepts set masks shorter
	// than its own, so only the word holding the bit must exist.
	one := make([]uint64, cpu/64+1)
	one[cpu/64] = 1 << (cpu % 64)
	syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(one)*8), uintptr(unsafe.Pointer(&one[0])))
}
