package par

import (
	"testing"
	"time"
)

// TestTeamStats pins the activity counters: every Run is one region,
// busy time accumulates at least the slept wall time, and a fresh
// team reads zero.
func TestTeamStats(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	if s := tm.Stats(); s.Regions != 0 || s.Busy != 0 {
		t.Fatalf("fresh team stats = %+v", s)
	}
	const regions = 3
	for i := 0; i < regions; i++ {
		tm.Run(func(int) { time.Sleep(time.Millisecond) })
	}
	s := tm.Stats()
	if s.Regions != regions {
		t.Errorf("Regions = %d, want %d", s.Regions, regions)
	}
	if s.Busy < regions*time.Millisecond {
		t.Errorf("Busy = %v, want >= %v", s.Busy, regions*time.Millisecond)
	}
}

// TestTeamStatsCountsForStatic: ForStatic runs through Run, so it is
// one region too.
func TestTeamStatsCountsForStatic(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	tm.ForStatic(8, func(lo, hi, w int) {})
	if s := tm.Stats(); s.Regions != 1 {
		t.Errorf("Regions = %d, want 1", s.Regions)
	}
}
