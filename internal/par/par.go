// Package par is the shared-memory threading runtime used where the
// original study used OpenMP. It provides parallel-for loops over index
// ranges with the three classic schedules (static, dynamic, guided),
// persistent worker teams with barriers (Team), pinned teams whose
// workers are locked to OS threads (NewPinnedTeam, the analogue of
// OMP_PROC_BIND, which the NUMA placement probe in internal/mem builds
// on), and parallel reductions.
//
// The design mirrors an OpenMP runtime closely enough that scheduling
// effects measured by the benchmarks (static imbalance vs dynamic
// overhead, guided's tapering chunks) reproduce the shapes seen on a real
// OpenMP implementation, while being pure Go underneath.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Schedule selects how loop iterations are assigned to workers.
type Schedule int

const (
	// Static divides the iteration space into one contiguous block per
	// worker up-front (OpenMP schedule(static)). Lowest overhead; load
	// imbalance if iteration costs vary.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter
	// (OpenMP schedule(dynamic,chunk)). Balances load at the cost of
	// one atomic per chunk.
	Dynamic
	// Guided hands out exponentially shrinking chunks, proportional to
	// the remaining work divided by the worker count
	// (OpenMP schedule(guided)).
	Guided
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// DefaultThreads returns the default worker count, analogous to
// OMP_NUM_THREADS defaulting to the hardware concurrency.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Options configures a parallel loop.
type Options struct {
	Threads  int      // worker count; <=0 means DefaultThreads()
	Schedule Schedule // iteration schedule; default Static
	Chunk    int      // chunk size for Dynamic/Guided; <=0 means 1 (dynamic) / auto (guided)
}

func (o Options) normalize(n int) Options {
	if o.Threads <= 0 {
		o.Threads = DefaultThreads()
	}
	if o.Threads > n && n > 0 {
		o.Threads = n
	}
	if o.Chunk <= 0 {
		o.Chunk = 1
	}
	return o
}

// For executes body(i) for every i in [0, n) using the default options
// (static schedule, DefaultThreads workers). It blocks until all
// iterations complete.
func For(n int, body func(i int)) {
	ForOpt(n, Options{}, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForOpt executes body over chunks of [0, n) according to opts. The body
// receives a half-open index range [lo, hi) plus the worker id in
// [0, Threads), which callers use for per-thread accumulators.
func ForOpt(n int, opts Options, body func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	opts = opts.normalize(n)
	if opts.Threads == 1 {
		body(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(opts.Threads)
	switch opts.Schedule {
	case Static:
		// Contiguous blocks, remainder spread over the first workers,
		// exactly as schedule(static) does.
		base := n / opts.Threads
		rem := n % opts.Threads
		lo := 0
		for w := 0; w < opts.Threads; w++ {
			size := base
			if w < rem {
				size++
			}
			hi := lo + size
			go func(lo, hi, w int) {
				defer wg.Done()
				if lo < hi {
					body(lo, hi, w)
				}
			}(lo, hi, w)
			lo = hi
		}
	case Dynamic:
		var next int64
		chunk := opts.Chunk
		for w := 0; w < opts.Threads; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					body(lo, hi, w)
				}
			}(w)
		}
	case Guided:
		var next int64
		minChunk := opts.Chunk
		for w := 0; w < opts.Threads; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					for {
						cur := atomic.LoadInt64(&next)
						if int(cur) >= n {
							return
						}
						remaining := n - int(cur)
						chunk := remaining / opts.Threads
						if chunk < minChunk {
							chunk = minChunk
						}
						if chunk > remaining {
							chunk = remaining
						}
						if atomic.CompareAndSwapInt64(&next, cur, cur+int64(chunk)) {
							body(int(cur), int(cur)+chunk, w)
							break
						}
					}
				}
			}(w)
		}
	default:
		panic(fmt.Sprintf("par: unknown schedule %v", opts.Schedule))
	}
	wg.Wait()
}

// ReduceFloat64 runs a parallel reduction: body is called over index
// chunks with a per-worker accumulator seeded with identity, and the
// per-worker results are combined with combine. The combine function must
// be associative and commutative with respect to identity.
func ReduceFloat64(n int, opts Options, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	if n <= 0 {
		return identity
	}
	opts = opts.normalize(n)
	partial := make([]float64, opts.Threads)
	for i := range partial {
		partial[i] = identity
	}
	ForOpt(n, opts, func(lo, hi, w int) {
		partial[w] = body(lo, hi, partial[w])
	})
	out := identity
	for _, p := range partial {
		out = combine(out, p)
	}
	return out
}

// Sum is a convenience wrapper: parallel sum of f(i) over [0, n).
func Sum(n int, opts Options, f func(i int) float64) float64 {
	return ReduceFloat64(n, opts, 0,
		func(lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += f(i)
			}
			return acc
		},
		func(a, b float64) float64 { return a + b })
}
