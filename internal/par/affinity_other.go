//go:build !linux

package par

// NUMANodes reports 1 off Linux: without a portable topology source,
// every machine is treated as a single node.
func NUMANodes() int { return 1 }

// pinToCPU is a no-op off Linux: pinned teams still lock workers to OS
// threads, but per-CPU affinity is not portable, so placement there is
// whatever the OS scheduler does with the locked threads.
func pinToCPU(int) {}
