//go:build linux

package par

import (
	"runtime"
	"syscall"
	"testing"
	"unsafe"
)

// threadAffinityCount returns how many CPUs the calling OS thread may
// run on, or -1 if the mask cannot be read. It reports instead of
// failing — it runs on team worker goroutines, where t.Fatal would
// leave the other worker stuck at the team barrier.
func threadAffinityCount() int {
	mask := getAffinityMask()
	if mask == nil {
		return -1
	}
	n := 0
	for _, m := range mask {
		for ; m != 0; m &= m - 1 {
			n++
		}
	}
	return n
}

// canSetAffinity reports whether sched_setaffinity works at all here
// (sandboxes and seccomp profiles may deny it), by re-applying the
// current thread's own mask.
func canSetAffinity() bool {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	mask := getAffinityMask()
	if mask == nil {
		return false
	}
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	return errno == 0
}

func TestParseCPUList(t *testing.T) {
	cases := map[string][]int{
		"0-3\n":      {0, 1, 2, 3},
		"0-1,4,6-7":  {0, 1, 4, 6, 7},
		"5":          {5},
		"":           nil,
		"\n":         nil,
		"bogus,2-3":  {2, 3},
		"1-x,0":      {0},
		"0-15,32-33": append(seq(0, 15), 32, 33),
	}
	for in, want := range cases {
		got := parseCPUList(in)
		if len(got) != len(want) {
			t.Errorf("parseCPUList(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("parseCPUList(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
}

func seq(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// TestNUMANodesSane asserts the topology reader yields a usable node
// count on any Linux host: at least one node, and never more nodes
// than allowed CPUs (one worker per node must be placeable).
func TestNUMANodesSane(t *testing.T) {
	n := NUMANodes()
	if n < 1 {
		t.Fatalf("NUMANodes() = %d", n)
	}
	if a := len(allowedCPUs()); a > 0 && n > a {
		t.Errorf("NUMANodes() = %d exceeds %d allowed CPUs", n, a)
	}
}

// TestPinnedTeamBindsCPUs asserts each pinned worker's OS thread ends
// up bound to exactly one CPU — the property that keeps the NUMA
// probe's faulting and chasing threads from migrating across sockets.
// Environments that deny the affinity syscalls skip: pinToCPU
// documents that failure degrades to plain LockOSThread behavior.
func TestPinnedTeamBindsCPUs(t *testing.T) {
	team := NewPinnedTeam(2)
	defer team.Close()
	counts := make([]int, team.Size())
	team.Run(func(w int) { counts[w] = threadAffinityCount() })
	for w, n := range counts {
		if n == 1 {
			continue
		}
		if n < 0 || !canSetAffinity() {
			t.Skipf("affinity syscalls unavailable here (worker %d count %d); pinning degrades to LockOSThread as documented", w, n)
		}
		t.Errorf("pinned worker %d runnable on %d CPUs, want 1", w, n)
	}
}
