package par

import (
	"fmt"
	"sync"
)

// Team is a persistent group of workers, the analogue of an OpenMP
// parallel region that is entered repeatedly. Creating goroutines per
// loop is cheap in Go but not free; STREAM-style kernels that time
// sub-millisecond loops use a Team to keep workers hot and measure only
// the loop body plus a barrier, matching how OpenMP runtimes behave.
type Team struct {
	n       int
	work    []chan func(worker int)
	done    chan struct{}
	wg      sync.WaitGroup
	barrier *Barrier
	once    sync.Once
}

// NewTeam starts a team of n workers (n<=0 means DefaultThreads()).
// The caller must Close the team when finished with it.
func NewTeam(n int) *Team {
	if n <= 0 {
		n = DefaultThreads()
	}
	t := &Team{
		n:       n,
		work:    make([]chan func(int), n),
		done:    make(chan struct{}),
		barrier: NewBarrier(n),
	}
	for w := 0; w < n; w++ {
		t.work[w] = make(chan func(int))
		t.wg.Add(1)
		go t.worker(w)
	}
	return t
}

func (t *Team) worker(w int) {
	defer t.wg.Done()
	for {
		select {
		case f := <-t.work[w]:
			f(w)
		case <-t.done:
			return
		}
	}
}

// Size returns the number of workers in the team.
func (t *Team) Size() int { return t.n }

// Run executes body(worker) on every worker and blocks until all return.
// Panics in the body are re-raised on the calling goroutine.
func (t *Team) Run(body func(worker int)) {
	var wg sync.WaitGroup
	wg.Add(t.n)
	panics := make([]any, t.n)
	for w := 0; w < t.n; w++ {
		t.work[w] <- func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			body(w)
		}
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: worker panicked: %v", p))
		}
	}
}

// Barrier returns the team-wide barrier for use inside Run bodies.
func (t *Team) Barrier() *Barrier { return t.barrier }

// ForStatic runs a statically scheduled loop over [0, n) on the team.
func (t *Team) ForStatic(n int, body func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	base := n / t.n
	rem := n % t.n
	t.Run(func(w int) {
		lo := w*base + min(w, rem)
		size := base
		if w < rem {
			size++
		}
		if size > 0 {
			body(lo, lo+size, w)
		}
	})
}

// Close shuts the team down. It is safe to call multiple times.
func (t *Team) Close() {
	t.once.Do(func() {
		close(t.done)
		t.wg.Wait()
	})
}

// Barrier is a reusable cyclic barrier for n participants, the analogue
// of "#pragma omp barrier". It uses a phase flag plus condition variable;
// the two-phase design avoids the lost-wakeup problem when the barrier is
// reused immediately.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase uint64
}

// NewBarrier creates a barrier for n participants; n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: barrier size must be >= 1")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n goroutines have called Wait for the current phase.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
