package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Team is a persistent group of workers, the analogue of an OpenMP
// parallel region that is entered repeatedly. Creating goroutines per
// loop is cheap in Go but not free; STREAM-style kernels that time
// sub-millisecond loops use a Team to keep workers hot and measure only
// the loop body plus a barrier, matching how OpenMP runtimes behave.
type Team struct {
	n       int
	pinned  bool
	work    []chan func(worker int)
	done    chan struct{}
	wg      sync.WaitGroup
	barrier *Barrier
	once    sync.Once

	regions atomic.Int64 // parallel regions entered (Run calls)
	busyNS  atomic.Int64 // wall time spent inside Run, nanoseconds
}

// TeamStats is a snapshot of a team's activity — the worker-pool
// counters the observability layer attributes probe time with: how
// many parallel regions ran and the wall time spent inside them
// (region entry to last-worker exit, the OpenMP-region analogue).
type TeamStats struct {
	Regions int64
	Busy    time.Duration
}

// Stats returns the team's activity counters. Safe to call
// concurrently with Run; a region in flight is counted only once it
// completes.
func (t *Team) Stats() TeamStats {
	return TeamStats{
		Regions: t.regions.Load(),
		Busy:    time.Duration(t.busyNS.Load()),
	}
}

// NewTeam starts a team of n workers (n<=0 means DefaultThreads()).
// The caller must Close the team when finished with it.
func NewTeam(n int) *Team { return newTeam(n, false) }

// NewPinnedTeam starts a team whose workers are locked to their OS
// threads (runtime.LockOSThread) for the team's lifetime and, on
// Linux, bound round-robin to distinct allowed CPUs
// (sched_setaffinity) — the Go analogue of OpenMP thread pinning
// (OMP_PROC_BIND). Pinning is what makes NUMA placement observable: on
// first-touch operating systems a page stays on the node of the thread
// that faulted it in, so a probe that first-touches from one pinned
// worker and chases from another measures a stable local/remote
// relationship instead of whichever core the scheduler migrated the
// thread onto. Off Linux (or when setting affinity fails) workers are
// thread-locked but not CPU-bound, so placement is best-effort. See
// mem.NUMAChase for the probe this was built for.
func NewPinnedTeam(n int) *Team { return newTeam(n, true) }

func newTeam(n int, pinned bool) *Team {
	if n <= 0 {
		n = DefaultThreads()
	}
	t := &Team{
		n:       n,
		pinned:  pinned,
		work:    make([]chan func(int), n),
		done:    make(chan struct{}),
		barrier: NewBarrier(n),
	}
	for w := 0; w < n; w++ {
		t.work[w] = make(chan func(int))
		t.wg.Add(1)
		go t.worker(w)
	}
	return t
}

func (t *Team) worker(w int) {
	defer t.wg.Done()
	if t.pinned {
		// Lock for the worker's whole lifetime, and deliberately never
		// unlock: pinToCPU narrows this OS thread's affinity to one
		// CPU, and exiting the goroutine while still locked makes the
		// runtime destroy the thread rather than return it — with the
		// single-CPU mask intact — to the scheduler pool, where it
		// would silently confine unrelated goroutines after Close.
		runtime.LockOSThread()
		pinToCPU(w)
	}
	for {
		select {
		case f := <-t.work[w]:
			f(w)
		case <-t.done:
			return
		}
	}
}

// Size returns the number of workers in the team.
func (t *Team) Size() int { return t.n }

// Pinned reports whether the team's workers are locked to OS threads.
func (t *Team) Pinned() bool { return t.pinned }

// Run executes body(worker) on every worker and blocks until all return.
// Panics in the body are re-raised on the calling goroutine.
func (t *Team) Run(body func(worker int)) {
	t0 := time.Now()
	defer func() {
		t.busyNS.Add(int64(time.Since(t0)))
		t.regions.Add(1)
	}()
	var wg sync.WaitGroup
	wg.Add(t.n)
	panics := make([]any, t.n)
	for w := 0; w < t.n; w++ {
		t.work[w] <- func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			body(w)
		}
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: worker panicked: %v", p))
		}
	}
}

// Barrier returns the team-wide barrier for use inside Run bodies.
func (t *Team) Barrier() *Barrier { return t.barrier }

// ForStatic runs a statically scheduled loop over [0, n) on the team.
func (t *Team) ForStatic(n int, body func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	base := n / t.n
	rem := n % t.n
	t.Run(func(w int) {
		lo := w*base + min(w, rem)
		size := base
		if w < rem {
			size++
		}
		if size > 0 {
			body(lo, lo+size, w)
		}
	})
}

// Close shuts the team down. It is safe to call multiple times.
func (t *Team) Close() {
	t.once.Do(func() {
		close(t.done)
		t.wg.Wait()
	})
}

// Barrier is a reusable cyclic barrier for n participants, the analogue
// of "#pragma omp barrier". It uses a phase flag plus condition variable;
// the two-phase design avoids the lost-wakeup problem when the barrier is
// reused immediately.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase uint64
}

// NewBarrier creates a barrier for n participants; n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: barrier size must be >= 1")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n goroutines have called Wait for the current phase.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
