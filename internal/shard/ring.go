// Package shard scales the results service horizontally: a
// consistent-hash router (cmd/charhpc-router) fronts a pool of
// charhpcd workers, partitioning the platform-qualified cache key
// space (id, scale, platform) so each shard's memory and disk cache
// stays hot for its own slice of the keys.
//
// The pieces:
//
//   - Ring: a consistent-hash ring with virtual nodes. Owner(key)
//     names the shard a key lives on; Successors(key, n) is the
//     failover order — the next distinct shards clockwise, which is
//     also where a key remaps when its owner leaves.
//   - Router: the http.Handler. It validates run requests locally
//     (reusing internal/serve's CheckRunRequest, so rejections are
//     byte-identical to a shard's), reverse-proxies the blocking GET,
//     the async job API with its SSE event streams, and the
//     /platforms resource, fans custom-platform registrations out to
//     every shard, health-checks the pool, and re-routes a failed
//     request to the next live ring successor.
//   - Warm: the fan-out warm-up — the registry × platform plan
//     partitioned by ring ownership, so each shard fills exactly its
//     own slice (run the shards with -warm=false and let the router
//     drive the partitioned warm-up).
//
// Routing hashes only the key string, never the result, so any shard
// can in principle serve any key — ownership is a cache-locality
// optimization, not a correctness requirement. That is what makes
// failover sound: re-running a key on the ring successor produces the
// same bytes (and the same strong ETag) the owner would have served.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per shard when a Ring (or a
// Router Config) leaves it zero. More virtual nodes smooth the key
// distribution (imbalance shrinks roughly with 1/sqrt(vnodes)) at the
// cost of a larger sorted point list; 128 keeps an 8-shard pool's
// shares within a few percent of even.
const DefaultVNodes = 128

// Key builds the ring key for one platform-qualified cache slot —
// the same (id, scale, platform) triple internal/diskcache names its
// entries by, so a shard's disk cache accumulates exactly the keys
// the ring assigns it.
func Key(id, scale, platform string) string {
	return id + "@" + scale + "@" + platform
}

// Ring is a consistent-hash ring over named shards. Each shard is
// inserted at vnodes pseudo-random points; a key belongs to the first
// shard point at or after its own hash, wrapping around. Adding or
// removing one shard remaps only the keys adjacent to that shard's
// points — about 1/n of the space — which is the property that keeps
// the other shards' caches hot across pool changes (pinned by the
// remap test in ring_test.go).
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point  // sorted by hash
	shards []string // insertion order, for stable iteration
}

// point is one virtual node: a position on the ring and the shard it
// maps to.
type point struct {
	h     uint64
	shard string
}

// NewRing builds an empty ring with the given virtual-node count per
// shard (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes}
}

// hash64 positions a string on the ring: the first 8 bytes of its
// SHA-256. A cryptographic hash is overkill for distribution alone,
// but it is dependency-free, stable across processes and Go versions
// (routing must agree between a router and its tests, and between two
// router replicas), and immune to engineered collisions in
// caller-controlled platform names.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a shard at vnodes points. Adding a shard twice is a
// no-op.
func (r *Ring) Add(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.shards {
		if s == shard {
			return
		}
	}
	r.shards = append(r.shards, shard)
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash64(fmt.Sprintf("%s#%d", shard, i)), shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
}

// Remove deletes a shard's points. Removing an absent shard is a
// no-op.
func (r *Ring) Remove(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.shards {
		if s == shard {
			r.shards = append(r.shards[:i], r.shards[i+1:]...)
			break
		}
	}
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards returns the shard names in insertion order.
func (r *Ring) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.shards...)
}

// Owner returns the shard that owns key, false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return "", false
	}
	return s[0], true
}

// Successors returns up to n distinct shards in ring order starting
// at key's owner. Element 0 is the owner; the rest are the failover
// order — the shards the key would remap to if the ones before them
// left the pool.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(j int) bool { return r.points[j].h >= h })
	seen := make(map[string]bool, n)
	var out []string
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
