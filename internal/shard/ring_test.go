package shard

import (
	"fmt"
	"testing"
)

// syntheticKeys builds a key population shaped like real traffic:
// experiment IDs × scales × a platform axis.
func syntheticKeys(n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		keys = append(keys, Key(fmt.Sprintf("E%d", i%97), "quick", fmt.Sprintf("plat-%d", i)))
	}
	return keys
}

func ringOf(n, vnodes int) (*Ring, []string) {
	r := NewRing(vnodes)
	shards := make([]string, n)
	for i := range shards {
		shards[i] = fmt.Sprintf("http://shard-%d:8080", i)
		r.Add(shards[i])
	}
	return r, shards
}

// TestRingBalance pins the distribution quality the vnode count buys:
// across 8 shards, every shard's share of a large key population must
// stay within a tolerance band around the even 1/8 share. The band
// (0.5×..1.6× of even) is loose enough to be hash-stable and tight
// enough to catch a broken ring (one shard owning half the space
// blows through it instantly).
func TestRingBalance(t *testing.T) {
	const nShards, nKeys = 8, 20000
	r, shards := ringOf(nShards, 0)
	counts := map[string]int{}
	for _, k := range syntheticKeys(nKeys) {
		owner, ok := r.Owner(k)
		if !ok {
			t.Fatal("no owner on a populated ring")
		}
		counts[owner]++
	}
	even := float64(nKeys) / nShards
	for _, s := range shards {
		share := float64(counts[s]) / even
		if share < 0.5 || share > 1.6 {
			t.Errorf("shard %s owns %d keys (%.2f× the even share; want 0.5×..1.6×)", s, counts[s], share)
		}
	}
	if len(counts) != nShards {
		t.Errorf("only %d of %d shards own keys", len(counts), nShards)
	}
}

// TestRingRemapFraction pins the consistent-hashing contract: adding
// one shard to n remaps about 1/(n+1) of the keys, and removing it
// restores the original assignment exactly (so only the leaver's keys
// moved). A modulo router would remap ~87% here — the band catches
// any regression toward that.
func TestRingRemapFraction(t *testing.T) {
	const nShards, nKeys = 7, 20000
	r, _ := ringOf(nShards, 0)
	keys := syntheticKeys(nKeys)
	before := make(map[string]string, nKeys)
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	joined := "http://shard-new:8080"
	r.Add(joined)
	moved, movedToJoined := 0, 0
	for _, k := range keys {
		owner, _ := r.Owner(k)
		if owner != before[k] {
			moved++
			if owner == joined {
				movedToJoined++
			}
		}
	}
	want := float64(nKeys) / (nShards + 1)
	if f := float64(moved) / want; f < 0.5 || f > 1.6 {
		t.Errorf("join remapped %d keys, want ≈%.0f (1/n of %d)", moved, want, nKeys)
	}
	if movedToJoined != moved {
		t.Errorf("%d of %d remapped keys moved to a shard other than the joiner", moved-movedToJoined, moved)
	}

	r.Remove(joined)
	for _, k := range keys {
		if owner, _ := r.Owner(k); owner != before[k] {
			t.Fatalf("key %q did not return to its pre-join owner after the joiner left", k)
		}
	}
}

// TestRingSuccessors pins the failover order: distinct shards, owner
// first, and n capped at the pool size.
func TestRingSuccessors(t *testing.T) {
	r, _ := ringOf(4, 0)
	key := Key("T1", "quick", "")
	succ := r.Successors(key, 10)
	if len(succ) != 4 {
		t.Fatalf("got %d successors, want all 4 shards", len(succ))
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate shard %s in successor order %v", s, succ)
		}
		seen[s] = true
	}
	owner, _ := r.Owner(key)
	if succ[0] != owner {
		t.Errorf("successor[0] = %s, owner = %s", succ[0], owner)
	}
	// Failover contract: dropping the owner promotes successor[1].
	r.Remove(owner)
	if next, _ := r.Owner(key); next != succ[1] {
		t.Errorf("after owner left, key moved to %s, want ring successor %s", next, succ[1])
	}
}

// TestRingStability pins that routing is a pure function of the key
// and pool — two independently built rings agree — which is what lets
// tests, router replicas, and restarts route identically.
func TestRingStability(t *testing.T) {
	a, _ := ringOf(5, 64)
	b, _ := ringOf(5, 64)
	for _, k := range syntheticKeys(500) {
		ao, _ := a.Owner(k)
		bo, _ := b.Owner(k)
		if ao != bo {
			t.Fatalf("rings disagree on %q: %s vs %s", k, ao, bo)
		}
	}
}

func TestRingEmptyAndDefaults(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Error("empty ring claims an owner")
	}
	if r.vnodes != DefaultVNodes {
		t.Errorf("vnodes = %d, want DefaultVNodes", r.vnodes)
	}
	r.Add("a")
	r.Add("a") // duplicate add is a no-op
	if got := r.Shards(); len(got) != 1 {
		t.Errorf("shards after duplicate add: %v", got)
	}
	if owner, ok := r.Owner("k"); !ok || owner != "a" {
		t.Errorf("single-shard ring owner = %q, %v", owner, ok)
	}
	r.Remove("absent") // no-op
	r.Remove("a")
	if _, ok := r.Owner("k"); ok {
		t.Error("drained ring claims an owner")
	}
}
