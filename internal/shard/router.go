// The Router: an http.Handler that fronts a pool of charhpcd shards
// behind the single-daemon API. Requests for one cache key always
// land on the same shard (consistent hashing on (id, scale,
// platform)), so each shard's memory/disk cache stays hot for its
// slice; a request whose shard fails at the transport is re-routed to
// the next live ring successor and re-run there (the failover
// counter records it). Responses are proxied byte-for-byte — body,
// status, ETags — so a client cannot tell the router from a single
// daemon.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Router-side envelope codes, extending internal/serve's vocabulary
// for failures only a fronting tier can have. Documented in the serve
// README's code table alongside the shard codes.
const (
	codeNoLiveShard    = "no_live_shard"
	codeUpstreamFailed = "upstream_failed"
	codeBadRequest     = "bad_request"
)

// DefaultMaxJobRoutes bounds the router's job→shard routing table
// when Config leaves it zero. Entries past it evict oldest-first; an
// evicted (or never-seen) job is re-located by probing the live
// shards, so the bound trades a little lookup latency for memory, not
// correctness.
const DefaultMaxJobRoutes = 4096

// maxRunBody bounds a POST /runs body (the run parameters travel in
// the query string or a small form body; anything larger is abuse).
const maxRunBody = 64 << 10

// Config parameterizes a Router.
type Config struct {
	// Shards are the base URLs of the charhpcd workers, e.g.
	// "http://10.0.0.1:8080". A bare host:port gets http://. At least
	// one is required.
	Shards []string

	// VNodes is the virtual-node count per shard on the hash ring;
	// 0 means DefaultVNodes.
	VNodes int

	// ScaleLimit mirrors the shards' -scale-limit so the router
	// rejects over-limit requests without a round trip. The zero
	// value limits to Quick, matching charhpcd's default.
	ScaleLimit core.Scale

	// HealthInterval and HealthTimeout parameterize the periodic
	// /healthz probes; zero means the Default* constants.
	HealthInterval time.Duration
	HealthTimeout  time.Duration

	// Client is the proxy transport. Nil gets a client with no global
	// timeout (blocking GETs and SSE streams legitimately run long)
	// over a transport with enough idle connections per shard to keep
	// a hot pool's connections alive.
	Client *http.Client

	// MaxJobRoutes bounds the job→shard routing table; 0 means
	// DefaultMaxJobRoutes.
	MaxJobRoutes int

	// MaxPlatformBody bounds POST /platforms request bodies in bytes;
	// 0 means serve.DefaultMaxPlatformBody — the same limit the
	// shards enforce.
	MaxPlatformBody int64

	// Metrics, when non-nil, is the registry the router's instruments
	// live in. Nil gets a private registry. GET /metrics serves it
	// either way.
	Metrics *obs.Registry

	// AccessLog, when non-nil, receives one structured line per
	// routed request. A nil *obs.Logger is also safe.
	AccessLog *obs.Logger
}

// Router fronts the shard pool. It implements http.Handler.
type Router struct {
	cfg    Config
	ring   *Ring
	hc     *health
	client *http.Client
	mux    *http.ServeMux
	jobs   *jobTable
	log    *obs.Logger
	start  time.Time

	reg           *obs.Registry
	failovers     *obs.Counter
	warmPlanned   *obs.Gauge
	warmCompleted *obs.Gauge
	warmRunning   *obs.Gauge
}

// Stats is a snapshot of the router's own counters, for embedding
// binaries and tests; /metrics exposes the same numbers.
type Stats struct {
	ShardsUp    int
	ShardsTotal int
	Failovers   int64
}

// Stats returns the current snapshot.
func (rt *Router) Stats() Stats {
	return Stats{
		ShardsUp:    rt.hc.upCount(),
		ShardsTotal: len(rt.ring.Shards()),
		Failovers:   rt.failovers.Value(),
	}
}

// Registry returns the router's metric registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// New builds a Router over the given shard pool and starts its health
// loop; Close stops it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: no shards configured")
	}
	var shards []string
	seen := map[string]bool{}
	for _, s := range cfg.Shards {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s == "" {
			continue
		}
		if !strings.Contains(s, "://") {
			s = "http://" + s
		}
		u, err := url.Parse(s)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("shard: bad shard URL %q", s)
		}
		if !seen[s] {
			seen[s] = true
			shards = append(shards, s)
		}
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no shards configured")
	}

	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	interval := cfg.HealthInterval
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	timeout := cfg.HealthTimeout
	if timeout <= 0 {
		timeout = DefaultHealthTimeout
	}
	maxRoutes := cfg.MaxJobRoutes
	if maxRoutes <= 0 {
		maxRoutes = DefaultMaxJobRoutes
	}

	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		client: client,
		mux:    http.NewServeMux(),
		jobs:   newJobTable(maxRoutes),
		log:    cfg.AccessLog,
		start:  time.Now(),
		reg:    reg,
		failovers: reg.Counter("charhpc_router_failovers_total",
			"requests re-routed to a ring successor after their shard failed"),
		warmPlanned: reg.Gauge("charhpc_router_warm_planned",
			"fan-out warm-up keys planned across the shard pool"),
		warmCompleted: reg.Gauge("charhpc_router_warm_completed",
			"fan-out warm-up keys resolved (warmed or failed)"),
		warmRunning: reg.Gauge("charhpc_router_warm_running",
			"1 while a fan-out warm-up is in flight"),
	}
	for _, s := range shards {
		rt.ring.Add(s)
	}
	rt.hc = newHealth(shards, client, interval, timeout, func(shard string, up bool) {
		rt.log.Info("shard health change", "shard", shard, "up", up)
	})
	for _, s := range shards {
		s := s
		reg.GaugeFunc("charhpc_router_shard_up",
			"1 while the labeled shard answers health probes",
			func() float64 {
				if rt.hc.isUp(s) {
					return 1
				}
				return 0
			}, obs.L("shard", s))
	}
	reg.GaugeFunc("charhpc_router_uptime_seconds", "seconds since the router was built",
		func() float64 { return time.Since(rt.start).Seconds() })

	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /experiments", rt.handleAny)
	rt.mux.HandleFunc("GET /experiments/{id}", rt.handleExperiment)
	rt.mux.HandleFunc("GET /platforms", rt.handleAny)
	rt.mux.HandleFunc("GET /platforms/{name}", rt.handleAny)
	rt.mux.HandleFunc("POST /platforms", rt.handlePlatformRegister)
	rt.mux.HandleFunc("POST /runs", rt.handleSubmitRun)
	rt.mux.HandleFunc("GET /runs", rt.handleJobList)
	rt.mux.HandleFunc("GET /runs/{job}", rt.handleJob)
	rt.mux.HandleFunc("DELETE /runs/{job}", rt.handleJob)
	rt.mux.HandleFunc("GET /runs/{job}/events", rt.handleJob)
	rt.mux.HandleFunc("GET /debug/traces", rt.handleAny)
	rt.hc.start()
	return rt, nil
}

// Close stops the health loop.
func (rt *Router) Close() { rt.hc.close() }

// ServeHTTP implements http.Handler: request-ID handling (an inbound
// X-Request-ID is reused on the shard hop — never re-minted — so one
// ID greps across both the router's and the shard's access logs),
// then the routed handler, then metrics and one access-log line.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	rid := r.Header.Get("X-Request-ID")
	if rid == "" {
		rid = obs.NewRequestID()
		// Stamped onto the inbound request so the proxy's header copy
		// carries it to the shard — the one place the ID is minted.
		r.Header.Set("X-Request-ID", rid)
	}
	w.Header().Set("X-Request-ID", rid)
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	rt.mux.ServeHTTP(sw, r)

	handler := handlerLabel(r.URL.Path)
	elapsed := time.Since(t0)
	rt.reg.Counter("charhpc_router_requests_total", "requests routed, by handler and status code",
		obs.L("handler", handler), obs.L("code", strconv.Itoa(sw.code))).Inc()
	rt.reg.Histogram("charhpc_router_proxy_seconds", "routed request latency, shard hop included", nil,
		obs.L("handler", handler)).Observe(elapsed.Seconds())
	rt.log.Info("routed",
		"request_id", rid,
		"method", r.Method,
		"path", r.URL.RequestURI(),
		"status", sw.code,
		"bytes", sw.bytes,
		"elapsed_ms", float64(elapsed.Microseconds())/1e3,
		"remote", r.RemoteAddr,
	)
}

// handleHealthz aggregates the pool's health on one line: first token
// "ok" while at least one shard is up, then counters (the CI smoke
// parses shards_up/shards_total), then one token per shard.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	shards := rt.ring.Shards()
	up := rt.hc.upCount()
	status := "ok"
	if up == 0 {
		status = "down"
	}
	fmt.Fprintf(w, "%s shards_up=%d shards_total=%d failovers=%d uptime_seconds=%d",
		status, up, len(shards), rt.failovers.Value(), int(time.Since(rt.start).Seconds()))
	for _, s := range shards {
		state := "down"
		if rt.hc.isUp(s) {
			state = "up"
		}
		fmt.Fprintf(w, " shard[%s]=%s", s, state)
	}
	fmt.Fprintln(w)
}

// handleMetrics serves the router's own Prometheus exposition (the
// shards keep their own /metrics; scrape both).
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WritePrometheus(w)
}

// candidates returns the shards to try for a key: every shard in ring
// order from the owner, live ones first (ring order preserved within
// each group). Down shards stay as last-resort candidates — the
// health view can be stale, and a request that could succeed should
// never 503 on a guess.
func (rt *Router) candidates(key string) []string {
	order := rt.ring.Successors(key, len(rt.ring.Shards()))
	live := make([]string, 0, len(order))
	var down []string
	for _, s := range order {
		if rt.hc.isUp(s) {
			live = append(live, s)
		} else {
			down = append(down, s)
		}
	}
	return append(live, down...)
}

// anyTargets returns the candidate order for requests with no cache
// key (listings, platform reads): every shard, live first, starting
// at a stable point.
func (rt *Router) anyTargets() []string {
	return rt.candidates("")
}

// handleAny proxies a keyless read to any live shard.
func (rt *Router) handleAny(w http.ResponseWriter, r *http.Request) {
	rt.proxy(w, r, rt.anyTargets(), nil, nil)
}

// handleExperiment validates the blocking GET locally — 404/400/403
// without a shard round trip, byte-identical envelopes via
// serve.CheckRunRequest — then routes it by its cache key.
func (rt *Router) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	_, req, apiErr := serve.CheckRunRequest(id, q.Get("scale"), q.Get("platform"), rt.cfg.ScaleLimit)
	if apiErr != nil && !rt.deferToShard(apiErr, q.Get("platform")) {
		serve.WriteAPIError(w, r, apiErr)
		return
	}
	key := Key(id, req.Scale.String(), req.Platform)
	rt.proxy(w, r, rt.candidates(key), nil, nil)
}

// deferToShard reports whether a local validation failure should be
// proxied instead of answered: a custom-<hash> platform this router
// process has not seen may still be registered on the shards
// (registered before the router started, or directly on a shard).
// Routing needs only the name, so the owner gets to rule on it — and
// its envelope proxies back byte-identical if it agrees the name is
// unknown.
func (rt *Router) deferToShard(apiErr *serve.APIError, platform string) bool {
	return apiErr.Code == serve.CodeUnknownPlatform && cluster.IsCustomName(platform)
}

// handleSubmitRun validates like the blocking GET, routes the job to
// the key's shard, and records which shard got it so the job's
// status/cancel/events requests follow it there.
func (rt *Router) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRunBody))
	if err != nil {
		serve.WriteAPIError(w, r, &serve.APIError{
			Status: http.StatusBadRequest, Code: codeBadRequest,
			Message: fmt.Sprintf("reading request body: %v", err)})
		return
	}
	id := runParam(r, body, "id")
	_, req, apiErr := serve.CheckRunRequest(id, runParam(r, body, "scale"), runParam(r, body, "platform"), rt.cfg.ScaleLimit)
	if apiErr != nil && !rt.deferToShard(apiErr, runParam(r, body, "platform")) {
		serve.WriteAPIError(w, r, apiErr)
		return
	}
	key := Key(id, req.Scale.String(), req.Platform)
	rt.proxy(w, r, rt.candidates(key), body, func(target string, status int, respBody []byte) {
		if status != http.StatusAccepted {
			return
		}
		var sub struct {
			Job string `json:"job"`
		}
		if json.Unmarshal(respBody, &sub) == nil && sub.Job != "" {
			rt.jobs.put(sub.Job, target)
		}
	})
}

// runParam reads one POST /runs parameter the way the shard's
// FormValue does: query first, then an urlencoded form body.
func runParam(r *http.Request, body []byte, name string) string {
	if v := r.URL.Query().Get(name); v != "" {
		return v
	}
	if strings.Contains(r.Header.Get("Content-Type"), "application/x-www-form-urlencoded") {
		if vals, err := url.ParseQuery(string(body)); err == nil {
			return vals.Get(name)
		}
	}
	return ""
}

// handleJob routes a job subresource (status, cancel, events) to the
// shard that owns the job. Jobs are shard-local: a job whose shard
// died is gone, so there is no failover hop here — a dead owner
// answers 502 rather than a misleading 404 from a shard that never
// saw the job.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	job := r.PathValue("job")
	target, ok := rt.jobs.get(job)
	if !ok {
		target, ok = rt.findJob(r.Context(), job)
	}
	if !ok {
		// No live shard knows it: any shard's own 404 envelope is the
		// canonical answer, byte-identical to the single-daemon one.
		rt.proxy(w, r, rt.anyTargets(), nil, nil)
		return
	}
	rt.proxy(w, r, []string{target}, nil, nil)
}

// findJob locates a job the routing table has no entry for (the
// table evicted it, or another router replica accepted the submit) by
// asking each live shard for its status.
func (rt *Router) findJob(ctx context.Context, job string) (string, bool) {
	for _, s := range rt.anyTargets() {
		if !rt.hc.isUp(s) {
			continue
		}
		probeCtx, cancel := context.WithTimeout(ctx, rt.probeTimeout())
		req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, s+"/runs/"+url.PathEscape(job), nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		cancel()
		if resp.StatusCode == http.StatusOK {
			rt.jobs.put(job, s)
			return s, true
		}
	}
	return "", false
}

func (rt *Router) probeTimeout() time.Duration {
	if rt.cfg.HealthTimeout > 0 {
		return rt.cfg.HealthTimeout
	}
	return DefaultHealthTimeout
}

// handleJobList merges every live shard's GET /runs into one JSON
// array (shard order; each shard's own newest-first order preserved).
func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	all := []json.RawMessage{}
	for _, s := range rt.anyTargets() {
		if !rt.hc.isUp(s) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, s+"/runs", nil)
		if err != nil {
			continue
		}
		req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.hc.set(s, false)
			continue
		}
		var list []json.RawMessage
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&list)
		resp.Body.Close()
		if err != nil {
			continue
		}
		all = append(all, list...)
	}
	b, err := json.Marshal(all)
	if err != nil {
		serve.WriteAPIError(w, r, &serve.APIError{
			Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// handlePlatformRegister fans a custom-platform registration out to
// every shard, so any shard can serve any custom: the first live
// shard's response (201 on first sighting, 200 on an idempotent
// re-POST, 400 on an invalid spec — all byte-identical to the
// single-daemon responses) answers the client; on success the spec is
// then registered on the remaining shards and in the router's own
// process, so later ?platform= validation resolves the name locally.
func (rt *Router) handlePlatformRegister(w http.ResponseWriter, r *http.Request) {
	limit := rt.cfg.MaxPlatformBody
	if limit <= 0 {
		limit = serve.DefaultMaxPlatformBody
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		serve.WriteAPIError(w, r, &serve.APIError{
			Status: http.StatusRequestEntityTooLarge, Code: "body_too_large",
			Message: fmt.Sprintf("platform spec exceeds the %d-byte limit", limit)})
		return
	}
	rt.proxy(w, r, rt.anyTargets(), body, func(target string, status int, respBody []byte) {
		if status != http.StatusCreated && status != http.StatusOK {
			return
		}
		// Mirror the registration into this process (router-side
		// validation of future requests naming the custom)...
		if spec, err := cluster.ParseSpec(body); err == nil {
			cluster.RegisterCustom(spec)
		}
		// ...and onto every other shard, best-effort: a shard that
		// misses the fan-out rejects requests for the custom until it
		// is re-POSTed, it does not serve wrong bytes.
		for _, s := range rt.ring.Shards() {
			if s == target || !rt.hc.isUp(s) {
				continue
			}
			if err := rt.fanOutPlatform(r, s, body); err != nil {
				rt.log.Error("platform fan-out failed", "shard", s, "error", err.Error())
			}
		}
	})
}

// fanOutPlatform re-POSTs one platform spec to one shard.
func (rt *Router) fanOutPlatform(r *http.Request, target string, body []byte) error {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, target+"/platforms", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.hc.set(target, false)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard answered %s", resp.Status)
	}
	return nil
}

// proxy forwards the request to the first candidate that answers,
// re-routing to the next on transport failure (the failover path; a
// response from a shard — any status — is final and copied through
// byte-for-byte). body, when non-nil, is the replayable request body.
// onResponse, when non-nil, buffers the response to observe it before
// writing (used to learn job→shard routes); leave it nil on paths
// that stream.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, targets []string, body []byte, onResponse func(target string, status int, body []byte)) {
	if len(targets) == 0 {
		serve.WriteAPIError(w, r, &serve.APIError{
			Status: http.StatusServiceUnavailable, Code: codeNoLiveShard,
			Message: "no shard is configured to serve this request",
			Hint:    "GET /healthz reports per-shard liveness"})
		return
	}
	var lastErr error
	for i, target := range targets {
		resp, err := rt.send(r, target, body)
		if err != nil {
			// A canceled client is not a shard failure: stop, don't
			// fail the pool over it.
			if r.Context().Err() != nil {
				return
			}
			lastErr = err
			rt.routed(target, "error")
			rt.hc.set(target, false)
			if i+1 < len(targets) {
				rt.failovers.Inc()
				rt.log.Info("failover", "shard", target, "error", err.Error(), "next", targets[i+1])
			}
			continue
		}
		rt.routed(target, "ok")
		rt.copyResponse(w, resp, onResponse, target)
		return
	}
	serve.WriteAPIError(w, r, &serve.APIError{
		Status: http.StatusBadGateway, Code: codeUpstreamFailed,
		Message: fmt.Sprintf("every candidate shard failed (last: %v)", lastErr),
		Hint:    "GET /healthz reports per-shard liveness"})
}

// send builds and performs the outbound request for one target. The
// inbound headers — X-Request-ID included — are copied through, so
// the shard logs the same request ID the router did.
func (rt *Router) send(r *http.Request, target string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	for k, vv := range r.Header {
		for _, v := range vv {
			out.Header.Add(k, v)
		}
	}
	return rt.client.Do(out)
}

// routed counts one routed request by shard and outcome.
func (rt *Router) routed(target, outcome string) {
	rt.reg.Counter("charhpc_router_routed_total",
		"requests sent to each shard, by outcome (ok = shard answered, error = transport failure)",
		obs.L("shard", target), obs.L("outcome", outcome)).Inc()
}

// copyResponse relays one shard response: headers, status, body. SSE
// bodies are flushed per chunk so progress frames reach the client as
// the shard emits them, never held in a proxy buffer.
func (rt *Router) copyResponse(w http.ResponseWriter, resp *http.Response, onResponse func(string, int, []byte), target string) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		// Ours is already set from the inbound request — same value,
		// since the shard echoes what the router sent.
		if http.CanonicalHeaderKey(k) == "X-Request-Id" {
			continue
		}
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	if onResponse != nil {
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return
		}
		onResponse(target, resp.StatusCode, body)
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return
	}
	w.WriteHeader(resp.StatusCode)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		flushCopy(w, resp.Body)
		return
	}
	io.Copy(w, resp.Body)
}

// flushCopy streams body to w, flushing after every chunk — the
// proxied half of the SSE contract (the shard flushes per event, so
// chunks arrive event-aligned).
func flushCopy(w http.ResponseWriter, body io.Reader) {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// jobTable is the bounded job→shard routing memory: which shard
// accepted each submitted job, evicted oldest-first past max. A miss
// is recoverable (findJob), so eviction is safe.
type jobTable struct {
	mu    sync.Mutex
	m     map[string]string
	order []string
	max   int
}

func newJobTable(max int) *jobTable {
	return &jobTable{m: make(map[string]string), max: max}
}

func (t *jobTable) put(job, shard string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[job]; !ok {
		t.order = append(t.order, job)
	}
	t.m[job] = shard
	for len(t.order) > t.max {
		delete(t.m, t.order[0])
		t.order = t.order[1:]
	}
}

func (t *jobTable) get(job string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[job]
	return s, ok
}

// statusWriter captures the status code and body size for the
// router's metrics and access log, passing Flush through for SSE.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handlerLabel maps a request path to a bounded metric label (the
// same vocabulary internal/serve uses, so dashboards join across the
// tiers).
func handlerLabel(path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	case strings.HasPrefix(path, "/debug/"):
		return "debug"
	case path == "/experiments":
		return "experiments_list"
	case strings.HasPrefix(path, "/experiments/"):
		return "experiment_get"
	case strings.HasPrefix(path, "/platforms"):
		return "platforms"
	case path == "/runs":
		return "runs"
	case strings.HasPrefix(path, "/runs/") && strings.HasSuffix(path, "/events"):
		return "run_events"
	case strings.HasPrefix(path, "/runs/"):
		return "run_get"
	default:
		return "other"
	}
}
