// Per-shard health checking: a background loop probes every shard's
// GET /healthz on a configurable interval with a per-probe timeout,
// and the router additionally marks a shard down passively the moment
// a proxied request fails at the transport — routing never waits for
// the next probe tick to stop sending traffic at a dead worker. A
// down shard keeps being probed and comes back the first time a probe
// succeeds.
package shard

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// Health-check defaults when Config leaves the knobs zero.
const (
	DefaultHealthInterval = 2 * time.Second
	DefaultHealthTimeout  = 1 * time.Second
)

// health tracks each shard's liveness.
type health struct {
	client   *http.Client
	interval time.Duration
	timeout  time.Duration
	onChange func(shard string, up bool) // called outside the lock

	mu sync.Mutex
	up map[string]bool

	stop chan struct{}
	done chan struct{}
}

func newHealth(shards []string, client *http.Client, interval, timeout time.Duration, onChange func(string, bool)) *health {
	h := &health{
		client:   client,
		interval: interval,
		timeout:  timeout,
		onChange: onChange,
		up:       make(map[string]bool, len(shards)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// Optimistic until the first probe lands: a router that starts a
	// beat before its shards should try them, not 503 its first
	// requests. A dead shard is discovered by the first probe or the
	// first proxied request, whichever comes first.
	for _, s := range shards {
		h.up[s] = true
	}
	return h
}

// start launches the probe loop (one immediate pass, then one per
// interval).
func (h *health) start() {
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		h.probeAll()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.probeAll()
			}
		}
	}()
}

// close stops the probe loop and waits for it to exit.
func (h *health) close() {
	close(h.stop)
	<-h.done
}

// probeAll probes every shard concurrently and records the outcomes.
func (h *health) probeAll() {
	h.mu.Lock()
	shards := make([]string, 0, len(h.up))
	for s := range h.up {
		shards = append(shards, s)
	}
	h.mu.Unlock()
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			h.set(shard, h.probe(shard))
		}(s)
	}
	wg.Wait()
}

// probe reports whether one shard answers /healthz with 200 within
// the timeout.
func (h *health) probe(shard string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// set records a shard's state, firing onChange on transitions.
func (h *health) set(shard string, up bool) {
	h.mu.Lock()
	changed := h.up[shard] != up
	h.up[shard] = up
	h.mu.Unlock()
	if changed && h.onChange != nil {
		h.onChange(shard, up)
	}
}

// isUp reports a shard's last known state.
func (h *health) isUp(shard string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.up[shard]
}

// upCount reports how many shards are up.
func (h *health) upCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, up := range h.up {
		if up {
			n++
		}
	}
	return n
}
