// Router tests: byte-identity of routed vs direct responses, routing
// stickiness, health-checked failover, request-ID propagation, job
// and platform fan-out, the fan-out warm-up's ring partition, and the
// SSE proxy contract.
package shard

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/serve"
)

// testPool is a set of in-process shards behind a Router.
type testPool struct {
	router *Router
	proxy  *httptest.Server // the router, listening
	shards []*httptest.Server
	urls   []string
	runs   []*runLog // per-shard record of executed (id, platform)
}

// runLog records which keys one shard actually executed.
type runLog struct {
	mu   sync.Mutex
	keys []string
}

func (l *runLog) add(k string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.keys = append(l.keys, k)
}

func (l *runLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.keys...)
}

// stubRun produces a deterministic result for any (experiment,
// request) — same bytes on every shard, so re-running a key on a
// failover target yields the owner's exact response.
func stubRun(log *runLog) func(core.Experiment, core.Request) core.Result {
	return func(e core.Experiment, r core.Request) core.Result {
		if log != nil {
			log.add(Key(e.ID, r.Scale.String(), r.Platform))
		}
		rec := report.NewRecorder()
		tbl := report.NewTable("stub "+e.ID, "key", "value")
		tbl.AddRow("id", e.ID)
		tbl.AddRow("platform", r.Platform)
		tbl.Fprint(rec)
		return core.Result{Experiment: e, Req: r, Rec: rec, Elapsed: time.Millisecond}
	}
}

// newTestPool starts n stub shards and a router over them. mw, when
// non-nil, wraps each shard's handler (for observing proxied
// requests).
func newTestPool(t *testing.T, n int, cfg Config, mw func(i int, next http.Handler) http.Handler) *testPool {
	t.Helper()
	p := &testPool{}
	for i := 0; i < n; i++ {
		log := &runLog{}
		h := http.Handler(serve.New(serve.Config{RunFunc: stubRun(log)}))
		if mw != nil {
			h = mw(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		p.shards = append(p.shards, ts)
		p.urls = append(p.urls, ts.URL)
		p.runs = append(p.runs, log)
	}
	cfg.Shards = p.urls
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	if cfg.HealthTimeout == 0 {
		cfg.HealthTimeout = 250 * time.Millisecond
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	p.router = rt
	p.proxy = httptest.NewServer(rt)
	t.Cleanup(p.proxy.Close)
	return p
}

// mirror builds an independent ring over the pool's shard URLs — ring
// hashing is stable, so it must agree with the router's own routing.
func (p *testPool) mirror(vnodes int) *Ring {
	r := NewRing(vnodes)
	for _, u := range p.urls {
		r.Add(u)
	}
	return r
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestRoutedByteIdentity pins the transparency contract: for blocking
// GETs in every negotiated shape — and for the error envelopes — the
// routed response is byte-identical to the owning shard's direct
// one: status, Content-Type, ETag, body.
func TestRoutedByteIdentity(t *testing.T) {
	p := newTestPool(t, 2, Config{}, nil)
	paths := []string{
		"/experiments/T1?scale=quick",
		"/experiments/M3",
		"/experiments",
		"/platforms",
		"/experiments/nope",                            // 404 unknown_experiment
		"/experiments/T1?scale=mega",                   // 400 invalid_scale
		"/experiments/T1?scale=full",                   // 403 scale_limit
		"/experiments/T1?platform=nope",                // 400 unknown_platform
		"/experiments/T1?platform=custom-000000000000", // unknown custom → deferred to shard, same 400
	}
	accepts := []string{"", "application/json", "text/csv"}
	for _, path := range paths {
		for _, accept := range accepts {
			hdr := map[string]string{}
			if accept != "" {
				hdr["Accept"] = accept
			}
			routed, routedBody := get(t, p.proxy.URL+path, hdr)
			// The stub shards are deterministic, so shard 0's direct
			// answer is canonical whichever shard owns the key.
			direct, directBody := get(t, p.urls[0]+path, hdr)
			if routed.StatusCode != direct.StatusCode {
				t.Errorf("%s [%s]: routed %d, direct %d", path, accept, routed.StatusCode, direct.StatusCode)
				continue
			}
			if string(routedBody) != string(directBody) {
				t.Errorf("%s [%s]: routed body differs from direct:\nrouted: %q\ndirect: %q",
					path, accept, routedBody, directBody)
			}
			for _, h := range []string{"Content-Type", "ETag"} {
				if routed.Header.Get(h) != direct.Header.Get(h) {
					t.Errorf("%s [%s]: %s routed %q, direct %q",
						path, accept, h, routed.Header.Get(h), direct.Header.Get(h))
				}
			}
		}
	}
}

// TestRoutingIsSticky pins cache locality: every request for one key
// executes on exactly one shard — the ring owner — and a repeat GET
// is served from that shard's cache without a second run.
func TestRoutingIsSticky(t *testing.T) {
	p := newTestPool(t, 4, Config{}, nil)
	ring := p.mirror(0)
	ids := []string{"T1", "T2", "T3", "M3", "M4"}
	for _, id := range ids {
		for i := 0; i < 3; i++ {
			resp, body := get(t, p.proxy.URL+"/experiments/"+id, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: %d %s", id, resp.StatusCode, body)
			}
		}
	}
	for _, id := range ids {
		key := Key(id, "quick", "")
		owner, _ := ring.Owner(key)
		for i, u := range p.urls {
			ran := 0
			for _, k := range p.runs[i].list() {
				if k == key {
					ran++
				}
			}
			switch {
			case u == owner && ran != 1:
				t.Errorf("%s: owner %s ran it %d times, want exactly 1 (cache miss then hits)", id, u, ran)
			case u != owner && ran != 0:
				t.Errorf("%s: non-owner %s ran it %d times, want 0", id, u, ran)
			}
		}
	}
}

// TestFailover pins the failover path: kill a key's owning shard, and
// the routed request is re-served — same bytes — by the ring
// successor, the failover counter moves, and the aggregated healthz
// reports the dead shard.
func TestFailover(t *testing.T) {
	p := newTestPool(t, 2, Config{}, nil)
	ring := p.mirror(0)
	key := Key("T1", "quick", "")
	owner, _ := ring.Owner(key)

	resp, before := get(t, p.proxy.URL+"/experiments/T1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-failover GET: %d", resp.StatusCode)
	}
	for i, u := range p.urls {
		if u == owner {
			p.shards[i].Close()
		}
	}
	resp, after := get(t, p.proxy.URL+"/experiments/T1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failover GET: %d %s", resp.StatusCode, after)
	}
	if string(after) != string(before) {
		t.Errorf("failover changed the response bytes:\nbefore: %q\nafter:  %q", before, after)
	}
	st := p.router.Stats()
	if st.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", st.Failovers)
	}
	if st.ShardsUp != 1 || st.ShardsTotal != 2 {
		t.Errorf("shards up/total = %d/%d, want 1/2", st.ShardsUp, st.ShardsTotal)
	}
	hresp, hbody := get(t, p.proxy.URL+"/healthz", nil)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
	for _, want := range []string{"ok ", "shards_up=1", "shards_total=2"} {
		if !strings.Contains(string(hbody), want) {
			t.Errorf("healthz %q missing %q", hbody, want)
		}
	}
	mresp, mbody := get(t, p.proxy.URL+"/metrics", nil)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mresp.StatusCode)
	}
	if !strings.Contains(string(mbody), "charhpc_router_failovers_total") {
		t.Error("metrics exposition missing charhpc_router_failovers_total")
	}
}

// TestAllShardsDown pins the end of the failover chain: every
// candidate failing yields the router's 502 upstream_failed envelope
// in the service's error shape.
func TestAllShardsDown(t *testing.T) {
	p := newTestPool(t, 2, Config{HealthInterval: time.Hour}, nil)
	for _, s := range p.shards {
		s.Close()
	}
	resp, body := get(t, p.proxy.URL+"/experiments/T1", map[string]string{"Accept": "application/json"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502; body %s", resp.StatusCode, body)
	}
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
		Hint  string `json:"hint"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("502 body is not the JSON envelope: %v (%s)", err, body)
	}
	if env.Code != "upstream_failed" || env.Error == "" || env.Hint == "" {
		t.Errorf("envelope = %+v, want code upstream_failed with message and hint", env)
	}
}

// TestRequestIDPropagation pins the cross-hop contract: an inbound
// X-Request-ID is reused on the shard hop — never re-minted — so the
// same ID appears at the client, the router, and the shard; absent
// one, the router mints exactly one.
func TestRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	seen := map[int][]string{}
	p := newTestPool(t, 2, Config{}, func(i int, next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			seen[i] = append(seen[i], r.Header.Get("X-Request-ID"))
			mu.Unlock()
			next.ServeHTTP(w, r)
		})
	})

	resp, _ := get(t, p.proxy.URL+"/experiments/T1", map[string]string{"X-Request-ID": "req-pinned-1"})
	if got := resp.Header.Values("X-Request-Id"); len(got) != 1 || got[0] != "req-pinned-1" {
		t.Errorf("response X-Request-ID = %v, want exactly [req-pinned-1]", got)
	}
	mu.Lock()
	var shardSaw []string
	for _, ids := range seen {
		for _, id := range ids {
			if id != "" && !strings.HasPrefix(id, "probe") {
				shardSaw = append(shardSaw, id)
			}
		}
	}
	mu.Unlock()
	found := false
	for _, id := range shardSaw {
		if id == "req-pinned-1" {
			found = true
		}
	}
	if !found {
		t.Errorf("no shard saw the inbound request ID; shards saw %v", shardSaw)
	}

	// No inbound ID: the router mints one and the shard sees that same
	// minted value.
	mu.Lock()
	seen = map[int][]string{}
	mu.Unlock()
	resp, _ = get(t, p.proxy.URL+"/experiments/T2", nil)
	minted := resp.Header.Get("X-Request-Id")
	if minted == "" {
		t.Fatal("router did not mint a request ID")
	}
	mu.Lock()
	found = false
	for _, ids := range seen {
		for _, id := range ids {
			if id == minted {
				found = true
			}
		}
	}
	mu.Unlock()
	if !found {
		t.Errorf("shard did not receive the minted ID %q", minted)
	}
}

// TestJobsThroughRouter drives the async API end to end through the
// router: submit, status, SSE events to the terminal frame, result
// hand-off — and the SSE proxy must preserve the anti-buffering
// headers the shard sets.
func TestJobsThroughRouter(t *testing.T) {
	p := newTestPool(t, 2, Config{}, nil)

	resp, err := http.Post(p.proxy.URL+"/runs?id=T1&scale=quick", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub struct {
		Job       string `json:"job"`
		StatusURL string `json:"status_url"`
		EventsURL string `json:"events_url"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.Job == "" {
		t.Fatalf("bad 202 body %s: %v", body, err)
	}

	evResp, err := http.Get(p.proxy.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if evResp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", evResp.StatusCode)
	}
	if ct := evResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("events Content-Type = %q", ct)
	}
	if got := evResp.Header.Get("X-Accel-Buffering"); got != "no" {
		t.Errorf("routed SSE X-Accel-Buffering = %q, want no", got)
	}
	if got := evResp.Header.Get("Cache-Control"); got != "no-cache" {
		t.Errorf("routed SSE Cache-Control = %q, want no-cache", got)
	}
	var terminal map[string]string
	sc := bufio.NewScanner(evResp.Body)
	deadline := time.After(10 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			data, ok := strings.CutPrefix(sc.Text(), "data: ")
			if !ok {
				continue
			}
			var ev struct {
				Type string            `json:"type"`
				Data map[string]string `json:"data"`
			}
			if json.Unmarshal([]byte(data), &ev) != nil {
				continue
			}
			if ev.Type == "done" || ev.Type == "failed" || ev.Type == "canceled" {
				terminal = ev.Data
				terminal["_type"] = ev.Type
				return
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("no terminal SSE event within 10s")
	}
	if terminal["_type"] != "done" {
		t.Fatalf("job ended %q: %v", terminal["_type"], terminal)
	}

	// Status via the router follows the job to its shard.
	sresp, sbody := get(t, p.proxy.URL+sub.StatusURL, nil)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d %s", sresp.StatusCode, sbody)
	}
	// The terminal event's hand-off URL serves the cached result with
	// the ETag the event promised.
	rresp, _ := get(t, p.proxy.URL+terminal["url"], nil)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("hand-off: %d", rresp.StatusCode)
	}
	if got := rresp.Header.Get("ETag"); got != terminal["etag"] {
		t.Errorf("hand-off ETag %q, event promised %q", got, terminal["etag"])
	}
	// The merged job listing includes the job.
	lresp, lbody := get(t, p.proxy.URL+"/runs", nil)
	if lresp.StatusCode != http.StatusOK || !strings.Contains(string(lbody), sub.Job) {
		t.Errorf("merged GET /runs (%d) missing job %s: %s", lresp.StatusCode, sub.Job, lbody)
	}

	// A second router with a cold routing table still finds the job by
	// probing the pool (a restarted router keeps serving old jobs).
	rt2, err := New(Config{Shards: p.urls, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	proxy2 := httptest.NewServer(rt2)
	defer proxy2.Close()
	s2resp, s2body := get(t, proxy2.URL+sub.StatusURL, nil)
	if s2resp.StatusCode != http.StatusOK {
		t.Fatalf("cold-table status lookup: %d %s", s2resp.StatusCode, s2body)
	}

	// Unknown jobs keep the shard's own 404 envelope.
	uresp, ubody := get(t, p.proxy.URL+"/runs/nope", map[string]string{"Accept": "application/json"})
	dresp, dbody := get(t, p.urls[0]+"/runs/nope", map[string]string{"Accept": "application/json"})
	if uresp.StatusCode != http.StatusNotFound || uresp.StatusCode != dresp.StatusCode {
		t.Errorf("unknown job: routed %d, direct %d", uresp.StatusCode, dresp.StatusCode)
	}
	if string(ubody) != string(dbody) {
		t.Errorf("unknown-job envelope differs: routed %q, direct %q", ubody, dbody)
	}
}

// TestPlatformFanout pins custom-platform registration through the
// router: the client gets the shard's own 201/200 bytes, and the spec
// reaches every shard (counted at each shard's front door) so any
// shard can serve the custom immediately.
func TestPlatformFanout(t *testing.T) {
	var mu sync.Mutex
	posts := map[int]int{}
	p := newTestPool(t, 3, Config{}, func(i int, next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/platforms" {
				mu.Lock()
				posts[i]++
				mu.Unlock()
			}
			next.ServeHTTP(w, r)
		})
	})

	resp, err := http.Post(p.proxy.URL+"/platforms", "application/json", strings.NewReader(fanoutSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var reg struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &reg); err != nil || !strings.HasPrefix(reg.Name, "custom-") {
		t.Fatalf("bad register body %s: %v", body, err)
	}
	mu.Lock()
	for i := range p.urls {
		if posts[i] == 0 {
			t.Errorf("shard %d never received the platform registration", i)
		}
	}
	mu.Unlock()

	// The custom now routes and runs like a preset, through the router.
	gresp, gbody := get(t, p.proxy.URL+"/experiments/T1?platform="+url.QueryEscape(reg.Name), nil)
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("GET with registered custom: %d %s", gresp.StatusCode, gbody)
	}
}

// fanoutSpec is a minimal-but-complete custom machine (same shape the
// serve tests use), unique to this test via its label.
const fanoutSpec = `{
  "label": "shard-test quad",
  "topology": {"nodes": 4, "sockets_per_node": 2, "cores_per_socket": 4},
  "links": {
    "self":         {"latency_s": 1e-7, "overhead_s": 1e-7, "gap_s": 1e-8, "bandwidth_bytes_per_s": 12e9},
    "intra_socket": {"latency_s": 3e-7, "overhead_s": 2e-7, "gap_s": 2e-8, "bandwidth_bytes_per_s": 6e9},
    "intra_node":   {"latency_s": 6e-7, "overhead_s": 2e-7, "gap_s": 3e-8, "bandwidth_bytes_per_s": 4e9},
    "inter_node":   {"latency_s": 2e-5, "overhead_s": 1e-6, "gap_s": 1e-6, "bandwidth_bytes_per_s": 1.2e8}
  },
  "mem_bw_per_socket_bytes_per_s": 6.4e9,
  "mem_bw_per_core_bytes_per_s": 2.5e9,
  "flops_per_core": 9.6e9,
  "mem": {
    "name": "shard-test-mem",
    "levels": [
      {"name": "L1", "capacity_bytes": 32768, "latency_s": 1.2e-9},
      {"name": "L2", "capacity_bytes": 262144, "latency_s": 4.5e-9},
      {"name": "L3", "capacity_bytes": 8388608, "latency_s": 1.4e-8}
    ],
    "mem_latency_s": 7.5e-8,
    "tlb": {"entries": 512, "miss_cost_s": 2.2e-8},
    "page_bytes": 4096,
    "large_page_bytes": 2097152,
    "page_fault_cost_s": 1.5e-6,
    "numa": {"nodes": 2, "remote_latency_s": 1.25e-7, "remote_tlb_cost_s": 3e-8}
  }
}`

// TestWarmPartition pins the fan-out warm-up's central claim: the
// registry × default-platform plan is partitioned by ring ownership —
// every compatible key runs exactly once, on exactly the shard the
// ring routes it to.
func TestWarmPartition(t *testing.T) {
	p := newTestPool(t, 4, Config{HealthInterval: time.Hour}, nil)
	ring := p.mirror(0)

	n := p.router.Warm(nil, nil, nil, 4)
	want := len(core.All())
	if n != want {
		t.Errorf("warmed %d keys, want every registered experiment (%d)", n, want)
	}
	ranTotal := 0
	for i, u := range p.urls {
		for _, k := range p.runs[i].list() {
			ranTotal++
			if owner, _ := ring.Owner(k); owner != u {
				t.Errorf("warm-up ran %q on %s, ring owner is %s", k, u, owner)
			}
		}
	}
	if ranTotal != want {
		t.Errorf("pool executed %d runs, want %d (each key exactly once)", ranTotal, want)
	}

	// Post-warm-up, a routed GET is a cache hit: no shard runs again.
	for _, e := range core.All() {
		resp, _ := get(t, p.proxy.URL+"/experiments/"+e.ID, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-warm GET %s: %d", e.ID, resp.StatusCode)
		}
	}
	after := 0
	for i := range p.urls {
		after += len(p.runs[i].list())
	}
	if after != ranTotal {
		t.Errorf("routed GETs after warm-up re-ran %d keys; warm partition and routing disagree", after-ranTotal)
	}
}

// TestRouterConfigValidation pins constructor errors and URL
// normalization.
func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no shards succeeded")
	}
	if _, err := New(Config{Shards: []string{"   ", ""}}); err == nil {
		t.Error("New with blank shards succeeded")
	}
	if _, err := New(Config{Shards: []string{"http://%zz"}}); err == nil {
		t.Error("New with an unparseable URL succeeded")
	}
	rt, err := New(Config{Shards: []string{"host1:8080/", "http://host1:8080", "host2:8080"}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := rt.Stats().ShardsTotal; got != 2 {
		t.Errorf("normalized pool size %d, want 2 (scheme added, slash trimmed, dup removed)", got)
	}
}

// TestJobTableEviction pins the bounded routing memory: entries past
// the cap evict oldest-first and re-resolve via the pool probe.
func TestJobTableEviction(t *testing.T) {
	tb := newJobTable(2)
	tb.put("a", "s1")
	tb.put("b", "s2")
	tb.put("a", "s3") // update, not a new entry
	if s, _ := tb.get("a"); s != "s3" {
		t.Errorf("a -> %s, want s3", s)
	}
	tb.put("c", "s4") // evicts a (oldest)
	if _, ok := tb.get("a"); ok {
		t.Error("oldest entry survived past the cap")
	}
	for job, want := range map[string]string{"b": "s2", "c": "s4"} {
		if s, ok := tb.get(job); !ok || s != want {
			t.Errorf("%s -> %s,%v want %s", job, s, ok, want)
		}
	}
}
