// Fan-out warm-up: the same registry × platform plan charhpcd's -warm
// builds for one daemon, partitioned across the pool by ring
// ownership — each shard is asked to fill exactly the keys the ring
// routes to it, so a completed warm-up leaves every shard's cache hot
// for precisely its own traffic. Run the shards with -warm=false and
// let the router drive the partitioned warm-up instead; double
// warming is harmless (the shard's single-flight coalesces) but
// wastes the pool's startup time.
package shard

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/core"
)

// Warm fills the pool's quick-scale caches for the given experiment
// IDs (nil means every registered experiment) across the given
// platform axis (nil means the default platform set only; "" in the
// list is the default set). Incompatible (experiment, platform) pairs
// are skipped, mirroring serve.(*Server).Warm. Each key is requested
// from its ring owner — with the usual failover order if the owner is
// down — by a pool of workers issuing the ordinary blocking GET, so a
// warmed key lands in exactly the cache that will serve it. Returns
// the number of keys warmed successfully.
func (rt *Router) Warm(ctx context.Context, ids []string, platforms []string, workers int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	if ids == nil {
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	}
	if platforms == nil {
		platforms = []string{""}
	}
	if workers <= 0 {
		workers = 1
	}

	type task struct{ id, platform string }
	var plan []task
	for _, platform := range platforms {
		for _, id := range ids {
			e, ok := core.Get(id)
			if !ok || e.CheckPlatform(platform) != nil {
				continue
			}
			plan = append(plan, task{id, platform})
		}
	}
	rt.warmRunning.Set(1)
	defer rt.warmRunning.Set(0)
	rt.warmPlanned.Set(int64(len(plan)))
	rt.warmCompleted.Set(0)

	tasks := make(chan task)
	var wg sync.WaitGroup
	var warmed int64
	var mu sync.Mutex
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				ok := rt.warmOne(ctx, t.id, t.platform)
				mu.Lock()
				if ok {
					warmed++
				}
				mu.Unlock()
				rt.warmCompleted.Add(1)
			}
		}()
	}
loop:
	for _, t := range plan {
		select {
		case tasks <- t:
		case <-ctx.Done():
			break loop
		}
	}
	close(tasks)
	wg.Wait()
	return int(warmed)
}

// warmOne fills one key on its owning shard by issuing the blocking
// GET through the usual candidate order (owner first, ring successors
// on failure). The response body is drained and discarded — the point
// is the side effect on the shard's cache.
func (rt *Router) warmOne(ctx context.Context, id, platform string) bool {
	target := fmt.Sprintf("/experiments/%s?scale=quick", url.PathEscape(id))
	if platform != "" {
		target += "&platform=" + url.QueryEscape(platform)
	}
	key := Key(id, core.Quick.String(), platform)
	for _, s := range rt.candidates(key) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, s+target, nil)
		if err != nil {
			return false
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return false
			}
			rt.hc.set(s, false)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true
		}
		rt.log.Error("warm-up request rejected", "shard", s, "id", id, "platform", platform, "status", resp.Status)
		return false
	}
	return false
}
