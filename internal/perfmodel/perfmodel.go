// Package perfmodel extracts analytic communication-model parameters
// from measured micro-benchmark curves — the classic closing step of a
// platform characterization: fit the Hockney (alpha-beta) model to the
// ping-pong sweep, derive LogGP-style parameters, and report how well
// the model explains the measurements (experiment F13 compares fitted
// parameters against the simulator's configured truth).
package perfmodel

import (
	"errors"
	"math"

	"repro/internal/osu"
	"repro/internal/stats"
)

// Hockney holds the fitted alpha-beta model T(s) = Alpha + s*Beta.
type Hockney struct {
	Alpha float64 // startup latency (s)
	Beta  float64 // transfer time per byte (s/byte)
	R2    float64 // goodness of the linear fit
}

// Bandwidth returns the asymptotic bandwidth 1/Beta in bytes/s.
func (h Hockney) Bandwidth() float64 {
	if h.Beta <= 0 {
		return math.Inf(1)
	}
	return 1 / h.Beta
}

// Predict returns the modeled one-way time for an s-byte message.
func (h Hockney) Predict(s int) float64 { return h.Alpha + float64(s)*h.Beta }

// ErrTooFewSamples is returned when a fit has fewer than two points.
var ErrTooFewSamples = errors.New("perfmodel: need at least 2 samples")

// FitHockney fits the alpha-beta model to a latency curve
// (osu.Latency output: size -> seconds).
func FitHockney(samples []osu.Sample) (Hockney, error) {
	if len(samples) < 2 {
		return Hockney{}, ErrTooFewSamples
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = float64(s.Size)
		ys[i] = s.Value
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return Hockney{}, err
	}
	h := Hockney{Alpha: fit.Intercept, Beta: fit.Slope, R2: fit.R2}
	if h.Alpha < 0 {
		h.Alpha = 0 // a slightly negative intercept is fit noise
	}
	return h, nil
}

// LogGPFit holds LogGP-style parameters recovered from measurements.
// The ping-pong cannot separate L from 2o, so the sum is reported, as
// measurement studies do.
type LogGPFit struct {
	LPlus2o float64 // small-message one-way time: L + 2o (s)
	G       float64 // per-byte gap from the latency slope (s/byte)
	GapBW   float64 // streaming bandwidth from the bw test (bytes/s)
	R2      float64
}

// FitLogGP recovers parameters from a latency sweep and a bandwidth
// sweep: the latency intercept gives L+2o, its slope gives G, and the
// plateau of the bandwidth curve gives the streaming (gap-limited)
// bandwidth.
func FitLogGP(latency, bandwidth []osu.Sample) (LogGPFit, error) {
	h, err := FitHockney(latency)
	if err != nil {
		return LogGPFit{}, err
	}
	if len(bandwidth) == 0 {
		return LogGPFit{}, ErrTooFewSamples
	}
	// Streaming bandwidth: the mean of the top quartile of the curve
	// (the plateau), robust to the ramp-up region.
	vals := make([]float64, len(bandwidth))
	for i, s := range bandwidth {
		vals[i] = s.Value
	}
	q3, err := stats.Quantile(vals, 0.75)
	if err != nil {
		return LogGPFit{}, err
	}
	var plateau []float64
	for _, v := range vals {
		if v >= q3 {
			plateau = append(plateau, v)
		}
	}
	return LogGPFit{
		LPlus2o: h.Alpha,
		G:       h.Beta,
		GapBW:   stats.Mean(plateau),
		R2:      h.R2,
	}, nil
}

// RelErr returns |got-want|/|want|, the metric the F13 experiment
// reports for each recovered parameter.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
