package perfmodel

// NUMA split recovery: the placement-axis extension of FitHierarchy.
// One latency ladder cannot separate local from remote memory latency —
// its final plateau is whatever mix the placement policy produced. Two
// ladders measured under opposite policies can: the FirstTouch ladder's
// memory plateau is the local latency, the Remote ladder's is the
// remote latency, and their ratio is the NUMA factor. Experiment M5
// runs this recovery against each modeled platform's configured truth,
// exactly as M4 does for the cache levels.

import (
	"fmt"

	"repro/internal/mem"
)

// NUMASplit is the local/remote memory-latency split recovered from a
// pair of placement-controlled ladders.
type NUMASplit struct {
	Local  float64 // memory plateau of the first-touch (all-local) ladder, seconds
	Remote float64 // memory plateau of the remote-placed ladder, seconds
	Ratio  float64 // Remote / Local, the NUMA factor
	R2     float64 // the weaker of the two underlying hierarchy fits
}

// FitNUMASplit recovers the local/remote memory-latency split from two
// ladders swept over the same machine under opposite placement
// policies: local chased over first-touch-placed pages, remote over
// remote-placed pages. Each ladder is segmented independently with
// FitHierarchy (maxLevels bounds each fit's cache-level search); the
// split is the pair of recovered memory plateaus. On a UMA machine the
// two plateaus coincide and Ratio is ~1.
func FitNUMASplit(local, remote []mem.Sample, maxLevels int) (NUMASplit, error) {
	fl, err := FitHierarchy(local, maxLevels)
	if err != nil {
		return NUMASplit{}, fmt.Errorf("perfmodel: local ladder: %w", err)
	}
	fr, err := FitHierarchy(remote, maxLevels)
	if err != nil {
		return NUMASplit{}, fmt.Errorf("perfmodel: remote ladder: %w", err)
	}
	if fl.MemLatency <= 0 || fr.MemLatency <= 0 {
		return NUMASplit{}, fmt.Errorf("perfmodel: non-positive memory plateau (local %g, remote %g)",
			fl.MemLatency, fr.MemLatency)
	}
	s := NUMASplit{
		Local:  fl.MemLatency,
		Remote: fr.MemLatency,
		Ratio:  fr.MemLatency / fl.MemLatency,
		R2:     fl.R2,
	}
	if fr.R2 < s.R2 {
		s.R2 = fr.R2
	}
	return s, nil
}

// FitNUMASplitFromModel runs the canonical split-recovery protocol
// against an analytic model's own ladders — the one recipe experiment
// M5 and `membench -model -numa` both follow, kept here so the CLI
// cannot silently diverge from the experiment it reproduces: big-memory
// mode (the TLB term would blur the memory plateaus), a sweep from
// 4 KiB to 8x the last cache level's capacity, one ladder under
// FirstTouch and one under Remote, fitted with maxLevels one above the
// configured level count.
func FitNUMASplitFromModel(m *mem.Model, pointsPerOctave int) (NUMASplit, error) {
	if m == nil || len(m.Levels) == 0 {
		return NUMASplit{}, fmt.Errorf("perfmodel: model without cache levels")
	}
	big := m.WithMode(mem.BigMemory)
	maxBytes := 8 * big.Levels[len(big.Levels)-1].Capacity
	local := big.WithPlacement(mem.FirstTouch).Ladder(4<<10, maxBytes, pointsPerOctave)
	remote := big.WithPlacement(mem.Remote).Ladder(4<<10, maxBytes, pointsPerOctave)
	return FitNUMASplit(local, remote, len(big.Levels)+1)
}
