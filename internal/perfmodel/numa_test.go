package perfmodel

import (
	"math"
	"testing"

	"repro/internal/mem"
)

func numaTestModel() *mem.Model {
	return &mem.Model{
		Name: "numa-test",
		Levels: []mem.Level{
			{Name: "L1", Capacity: 32 << 10, Latency: 1.5e-9},
			{Name: "L2", Capacity: 4 << 20, Latency: 6e-9},
		},
		MemLatency:     80e-9,
		TLB:            mem.TLB{Entries: 512, MissCost: 20e-9},
		PageBytes:      4 << 10,
		LargePageBytes: 1 << 30,
		Mode:           mem.BigMemory, // reach covers the sweep: clean plateaus
		NUMA:           mem.NUMA{Nodes: 2, RemoteLatency: 150e-9, RemoteTLBCost: 25e-9},
	}
}

// TestFitNUMASplitRecoversModel closes the M5 loop in isolation: the
// split fitted from a model's own first-touch and remote ladders must
// recover the configured local/remote latencies within a few percent.
func TestFitNUMASplitRecoversModel(t *testing.T) {
	m := numaTestModel()
	maxBytes := 8 * m.Levels[len(m.Levels)-1].Capacity
	local := m.WithPlacement(mem.FirstTouch).Ladder(4<<10, maxBytes, 4)
	remote := m.WithPlacement(mem.Remote).Ladder(4<<10, maxBytes, 4)
	s, err := FitNUMASplit(local, remote, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := RelErr(s.Local, m.MemLatency); e > 0.05 {
		t.Errorf("local %.3gns vs true %.3gns (err %.1f%%)", s.Local*1e9, m.MemLatency*1e9, e*100)
	}
	if e := RelErr(s.Remote, m.NUMA.RemoteLatency); e > 0.05 {
		t.Errorf("remote %.3gns vs true %.3gns (err %.1f%%)", s.Remote*1e9, m.NUMA.RemoteLatency*1e9, e*100)
	}
	trueRatio := m.NUMA.RemoteLatency / m.MemLatency
	if math.Abs(s.Ratio-trueRatio) > 0.1 {
		t.Errorf("ratio %.3f vs true %.3f", s.Ratio, trueRatio)
	}
	if s.R2 < 0.9 {
		t.Errorf("R2 = %.3f, want >= 0.9", s.R2)
	}
}

// On a UMA machine the two ladders coincide and the fitted ratio is 1.
func TestFitNUMASplitUMA(t *testing.T) {
	m := numaTestModel()
	m.NUMA = mem.NUMA{}
	maxBytes := 8 * m.Levels[len(m.Levels)-1].Capacity
	local := m.WithPlacement(mem.FirstTouch).Ladder(4<<10, maxBytes, 4)
	remote := m.WithPlacement(mem.Remote).Ladder(4<<10, maxBytes, 4)
	s, err := FitNUMASplit(local, remote, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ratio != 1 {
		t.Errorf("UMA ratio = %g, want exactly 1 (identical ladders)", s.Ratio)
	}
}

func TestFitNUMASplitErrors(t *testing.T) {
	good := numaTestModel().Ladder(4<<10, 32<<20, 4)
	short := good[:2]
	if _, err := FitNUMASplit(short, good, 3); err == nil {
		t.Error("short local ladder accepted")
	}
	if _, err := FitNUMASplit(good, short, 3); err == nil {
		t.Error("short remote ladder accepted")
	}
	bad := append([]mem.Sample(nil), good...)
	bad[0].Seconds = -1
	if _, err := FitNUMASplit(bad, good, 3); err == nil {
		t.Error("non-positive sample accepted")
	}
}
