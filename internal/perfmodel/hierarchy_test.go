package perfmodel

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/rng"
)

func ladderModel() *mem.Model {
	return &mem.Model{
		Name: "fit-test",
		Levels: []mem.Level{
			{Name: "L1", Capacity: 32 << 10, Latency: 1.5e-9},
			{Name: "L2", Capacity: 6 << 20, Latency: 5.5e-9},
		},
		MemLatency:     90e-9,
		TLB:            mem.TLB{Entries: 256, MissCost: 20e-9},
		PageBytes:      4 << 10,
		LargePageBytes: 2 << 20,
		Mode:           mem.BigMemory,
	}
}

// checkRecovery asserts the fit finds every true level within tol
// relative error on both capacity and latency.
func checkRecovery(t *testing.T, m *mem.Model, h Hierarchy, tol float64) {
	t.Helper()
	if len(h.Levels) < len(m.Levels) {
		t.Fatalf("recovered %d levels, want >= %d: %+v", len(h.Levels), len(m.Levels), h)
	}
	for _, truth := range m.Levels {
		bestCap, bestLat := 0.0, 0.0
		first := true
		for _, f := range h.Levels {
			ce := RelErr(float64(f.Capacity), float64(truth.Capacity))
			if first || ce < bestCap {
				bestCap, bestLat = ce, RelErr(f.Latency, truth.Latency)
				first = false
			}
		}
		if bestCap > tol {
			t.Errorf("level %s capacity off by %.0f%% (truth %d): %+v", truth.Name, bestCap*100, truth.Capacity, h.Levels)
		}
		if bestLat > tol {
			t.Errorf("level %s latency off by %.0f%% (truth %g): %+v", truth.Name, bestLat*100, truth.Latency, h.Levels)
		}
	}
}

func TestFitHierarchyRecoversModelTruth(t *testing.T) {
	m := ladderModel()
	samples := m.Ladder(4<<10, 64<<20, 4)
	h, err := FitHierarchy(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovery(t, m, h, 0.25)
	if RelErr(h.MemLatency, m.MemLatency) > 0.25 {
		t.Errorf("memory latency = %g, truth %g", h.MemLatency, m.MemLatency)
	}
	if h.R2 < 0.95 {
		t.Errorf("R2 = %g, want >= 0.95", h.R2)
	}
}

func TestFitHierarchyNoisy(t *testing.T) {
	m := ladderModel()
	samples := m.Ladder(4<<10, 64<<20, 4)
	// Multiplicative jitter of up to +/-5%, deterministic.
	r := rng.NewSplitMix64(42)
	for i := range samples {
		samples[i].Seconds *= 1 + 0.10*(r.Float64()-0.5)
	}
	h, err := FitHierarchy(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovery(t, m, h, 0.35)
}

func TestFitHierarchyThreeLevels(t *testing.T) {
	m := &mem.Model{
		Name: "three",
		Levels: []mem.Level{
			{Name: "L1", Capacity: 32 << 10, Latency: 1.4e-9},
			{Name: "L2", Capacity: 256 << 10, Latency: 4.0e-9},
			{Name: "L3", Capacity: 8 << 20, Latency: 13e-9},
		},
		MemLatency:     95e-9,
		TLB:            mem.TLB{Entries: 512, MissCost: 22e-9},
		PageBytes:      4 << 10,
		LargePageBytes: 1 << 30,
		Mode:           mem.BigMemory,
	}
	samples := m.Ladder(4<<10, 128<<20, 4)
	h, err := FitHierarchy(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovery(t, m, h, 0.25)
}

func TestFitHierarchySingleLevel(t *testing.T) {
	// A flat ladder (everything fits in one level) must not invent
	// levels.
	samples := make([]mem.Sample, 0, 12)
	for sz := 4 << 10; sz <= 8<<12; sz += 2 << 10 {
		samples = append(samples, mem.Sample{Bytes: sz, Seconds: 1.5e-9})
	}
	h, err := FitHierarchy(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 0 {
		t.Errorf("flat ladder produced levels: %+v", h.Levels)
	}
	if h.R2 != 1 {
		t.Errorf("flat ladder R2 = %g, want 1", h.R2)
	}
}

func TestFitHierarchyTooFew(t *testing.T) {
	if _, err := FitHierarchy([]mem.Sample{{Bytes: 1, Seconds: 1}}, 2); err == nil {
		t.Error("tiny input accepted")
	}
}
