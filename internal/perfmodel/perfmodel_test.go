package perfmodel

import (
	"math"
	"testing"

	"repro/internal/osu"
)

func synthLatency(alpha, beta float64, sizes []int) []osu.Sample {
	out := make([]osu.Sample, len(sizes))
	for i, s := range sizes {
		out[i] = osu.Sample{Size: s, Value: alpha + float64(s)*beta}
	}
	return out
}

func TestFitHockneyRecoversExact(t *testing.T) {
	alpha, beta := 2e-6, 1e-9
	samples := synthLatency(alpha, beta, []int{8, 64, 512, 4096, 65536})
	h, err := FitHockney(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Alpha-alpha) > 1e-12 || math.Abs(h.Beta-beta) > 1e-15 {
		t.Errorf("fit = %+v, want alpha %v beta %v", h, alpha, beta)
	}
	if h.R2 < 0.999 {
		t.Errorf("R2 = %v", h.R2)
	}
	if math.Abs(h.Bandwidth()-1e9) > 1 {
		t.Errorf("Bandwidth = %v", h.Bandwidth())
	}
	if math.Abs(h.Predict(1000)-(alpha+1000*beta)) > 1e-12 {
		t.Errorf("Predict wrong")
	}
}

func TestFitHockneyClampsNegativeAlpha(t *testing.T) {
	// A noisy curve can fit a negative intercept; it must be clamped.
	samples := []osu.Sample{
		{Size: 100, Value: 5e-8}, {Size: 200, Value: 2e-7}, {Size: 400, Value: 5e-7},
	}
	h, err := FitHockney(samples)
	if err != nil {
		t.Fatal(err)
	}
	if h.Alpha < 0 {
		t.Errorf("alpha = %v, want clamped >= 0", h.Alpha)
	}
}

func TestFitHockneyTooFew(t *testing.T) {
	if _, err := FitHockney(nil); err != ErrTooFewSamples {
		t.Errorf("err = %v", err)
	}
	if _, err := FitHockney([]osu.Sample{{Size: 1, Value: 1}}); err != ErrTooFewSamples {
		t.Errorf("err = %v", err)
	}
}

func TestHockneyZeroBetaBandwidth(t *testing.T) {
	h := Hockney{Alpha: 1e-6, Beta: 0}
	if !math.IsInf(h.Bandwidth(), 1) {
		t.Error("zero beta should give infinite bandwidth")
	}
}

func TestFitLogGP(t *testing.T) {
	lat := synthLatency(3e-6, 2e-9, []int{8, 64, 1024, 8192, 65536})
	// Bandwidth curve ramping to a 0.9 GB/s plateau.
	bw := []osu.Sample{
		{Size: 1024, Value: 2e8}, {Size: 8192, Value: 6e8},
		{Size: 65536, Value: 8.8e8}, {Size: 262144, Value: 9e8},
		{Size: 1 << 20, Value: 9.02e8}, {Size: 4 << 20, Value: 9e8},
	}
	fit, err := FitLogGP(lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	if RelErr(fit.LPlus2o, 3e-6) > 0.01 {
		t.Errorf("L+2o = %v", fit.LPlus2o)
	}
	if RelErr(fit.G, 2e-9) > 0.01 {
		t.Errorf("G = %v", fit.G)
	}
	if fit.GapBW < 8.8e8 || fit.GapBW > 9.1e8 {
		t.Errorf("plateau bw = %v", fit.GapBW)
	}
}

func TestFitLogGPValidation(t *testing.T) {
	lat := synthLatency(1e-6, 1e-9, []int{8, 64})
	if _, err := FitLogGP(lat, nil); err != ErrTooFewSamples {
		t.Errorf("err = %v", err)
	}
	if _, err := FitLogGP(nil, nil); err == nil {
		t.Error("nil latency accepted")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Errorf("RelErr(11,10) = %v", RelErr(11, 10))
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) should be 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be Inf")
	}
}
