package perfmodel

// Memory-hierarchy recovery: the latency-ladder analogue of the Hockney
// fit. A pointer-chase ladder (internal/mem) is a staircase in
// log-working-set space — one plateau per cache level plus a final
// memory plateau, with knees at the level capacities. FitHierarchy
// recovers the staircase by optimal piecewise-constant segmentation
// (dynamic programming over the sorted samples), reports the goodness of
// the piecewise model as R^2 like FitHockney does, and experiment M4
// compares the recovered levels against a mem.Model's configured truth.

import (
	"errors"
	"math"
	"sort"

	"repro/internal/mem"
)

// ErrNonPositiveSample is returned when a latency ladder contains a
// non-positive measurement (the hierarchy fit works in log space).
var ErrNonPositiveSample = errors.New("perfmodel: non-positive latency sample")

// FittedLevel is one recovered hierarchy level.
type FittedLevel struct {
	Capacity int     // estimated capacity in bytes (knee position)
	Latency  float64 // estimated hit latency in seconds (plateau height)
}

// Hierarchy is the result of fitting a latency ladder.
type Hierarchy struct {
	// Levels are the recovered cache levels in ascending capacity
	// order. The final plateau of the ladder is reported separately as
	// MemLatency, not as a level: its capacity knee is beyond the sweep.
	Levels     []FittedLevel
	MemLatency float64 // latency of the last plateau (main memory)
	R2         float64 // goodness of the piecewise-constant fit
}

// minSegLen is the minimum samples per plateau: a single stray point in
// a knee transition must not become its own "level".
const minSegLen = 2

// distinctRatio is the minimum relative latency step between adjacent
// plateaus for them to count as separate levels; closer plateaus are
// merged (they are fit noise or knee-transition samples).
const distinctRatio = 1.30

// FitHierarchy recovers cache levels from a latency ladder. maxLevels
// bounds the number of cache levels searched for (the segmentation uses
// up to maxLevels+1 plateaus, the extra one being main memory). The fit
// needs at least 2*(maxLevels+1) samples; sweeps should span from well
// under the smallest expected capacity to well past the largest.
func FitHierarchy(samples []mem.Sample, maxLevels int) (Hierarchy, error) {
	if maxLevels < 1 {
		maxLevels = 1
	}
	if len(samples) < 2*minSegLen {
		return Hierarchy{}, ErrTooFewSamples
	}
	sorted := make([]mem.Sample, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Bytes < sorted[j].Bytes })

	// Segment in log-latency space: hierarchy levels are separated by
	// latency *ratios* (L1 to L2 is ~4x, LLC to memory ~10x), so a
	// linear-space objective would spend all its segments on the memory
	// step and never resolve the cache-to-cache knees.
	ys := make([]float64, len(sorted))
	for i, s := range sorted {
		if s.Seconds <= 0 {
			return Hierarchy{}, ErrNonPositiveSample
		}
		ys[i] = math.Log(s.Seconds)
	}

	// Optimal segmentation for each plateau count, then pick the
	// largest count that still earns its keep: each added plateau must
	// cut the residual substantially, or it is fitting the knees.
	maxSegs := maxLevels + 1
	if m := len(ys) / minSegLen; maxSegs > m {
		maxSegs = m
	}
	best := segmentBounds(ys, 1)
	for k := 2; k <= maxSegs; k++ {
		next := segmentBounds(ys, k)
		if sse(ys, next) < 0.5*sse(ys, best) {
			best = next
		} else {
			break
		}
	}
	best = mergeClose(ys, best)

	// Plateau heights: medians are robust to the knee-transition
	// samples at segment edges.
	heights := make([]float64, len(best))
	for i, seg := range best {
		heights[i] = median(ys[seg.lo : seg.hi+1])
	}

	h := Hierarchy{MemLatency: math.Exp(heights[len(heights)-1])}
	for i := 0; i < len(best)-1; i++ {
		// The knee sits between the last sample of this plateau and
		// the first of the next; the geometric mean is the natural
		// estimate on a log-size sweep.
		lo := float64(sorted[best[i].hi].Bytes)
		hi := float64(sorted[best[i+1].lo].Bytes)
		h.Levels = append(h.Levels, FittedLevel{
			Capacity: int(math.Sqrt(lo*hi) + 0.5),
			Latency:  math.Exp(heights[i]),
		})
	}

	// R^2 of the piecewise-constant model against the (log) samples.
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i, seg := range best {
		for j := seg.lo; j <= seg.hi; j++ {
			d := ys[j] - heights[i]
			ssRes += d * d
			dt := ys[j] - mean
			ssTot += dt * dt
		}
	}
	if ssTot > 0 {
		h.R2 = 1 - ssRes/ssTot
	} else {
		h.R2 = 1
	}
	return h, nil
}

// segment is an inclusive index range [lo, hi] of one plateau.
type segment struct{ lo, hi int }

// segmentBounds computes the optimal partition of ys into k contiguous
// segments (each at least minSegLen long) minimizing within-segment
// squared error — textbook 1-D dynamic programming over prefix sums.
func segmentBounds(ys []float64, k int) []segment {
	n := len(ys)
	// Prefix sums for O(1) segment cost.
	sum := make([]float64, n+1)
	sq := make([]float64, n+1)
	for i, y := range ys {
		sum[i+1] = sum[i] + y
		sq[i+1] = sq[i] + y*y
	}
	cost := func(lo, hi int) float64 { // inclusive range SSE about its mean
		cnt := float64(hi - lo + 1)
		s := sum[hi+1] - sum[lo]
		return (sq[hi+1] - sq[lo]) - s*s/cnt
	}

	const inf = math.MaxFloat64
	// dp[j][i]: best cost of splitting ys[0..i] into j segments.
	dp := make([][]float64, k+1)
	cut := make([][]int, k+1)
	for j := range dp {
		dp[j] = make([]float64, n)
		cut[j] = make([]int, n)
		for i := range dp[j] {
			dp[j][i] = inf
		}
	}
	for i := minSegLen - 1; i < n; i++ {
		dp[1][i] = cost(0, i)
	}
	for j := 2; j <= k; j++ {
		for i := j*minSegLen - 1; i < n; i++ {
			for c := (j-1)*minSegLen - 1; i-c >= minSegLen; c++ {
				if dp[j-1][c] == inf {
					continue
				}
				if v := dp[j-1][c] + cost(c+1, i); v < dp[j][i] {
					dp[j][i] = v
					cut[j][i] = c
				}
			}
		}
	}
	if dp[k][n-1] == inf {
		return []segment{{0, n - 1}}
	}
	segs := make([]segment, k)
	hi := n - 1
	for j := k; j >= 1; j-- {
		lo := 0
		if j > 1 {
			lo = cut[j][hi] + 1
		}
		segs[j-1] = segment{lo, hi}
		hi = lo - 1
	}
	return segs
}

// sse returns the total within-segment squared error of a partition.
func sse(ys []float64, segs []segment) float64 {
	total := 0.0
	for _, seg := range segs {
		cnt := float64(seg.hi - seg.lo + 1)
		var s, sq float64
		for j := seg.lo; j <= seg.hi; j++ {
			s += ys[j]
			sq += ys[j] * ys[j]
		}
		total += sq - s*s/cnt
	}
	return total
}

// mergeClose coalesces adjacent plateaus whose medians are within
// distinctRatio of each other — such a pair is one level split by knee
// samples, not two levels. ys are log latencies, so the ratio test is a
// difference test.
func mergeClose(ys []float64, segs []segment) []segment {
	out := append([]segment(nil), segs...)
	for i := 0; i+1 < len(out); {
		a := median(ys[out[i].lo : out[i].hi+1])
		b := median(ys[out[i+1].lo : out[i+1].hi+1])
		d := b - a
		if d < 0 {
			d = -d
		}
		if d < math.Log(distinctRatio) {
			out[i] = segment{out[i].lo, out[i+1].hi}
			out = append(out[:i+1], out[i+2:]...)
			if i > 0 {
				i-- // the merged plateau may now sit close to its left neighbour
			}
		} else {
			i++
		}
	}
	return out
}

// median returns the median of a (non-empty) slice without mutating it.
func median(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
