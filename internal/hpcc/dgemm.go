package hpcc

import (
	"fmt"
	"time"

	"repro/internal/linalg"
)

// DGEMMConfig configures the local matrix-multiply benchmark.
type DGEMMConfig struct {
	// N is the (square) matrix order.
	N int
	// Threads parallelizes the multiply.
	Threads int
	// Reps is the number of timed repetitions; the best is reported,
	// as HPCC's single-process DGEMM does.
	Reps int
	// Seed selects the operands.
	Seed uint64
}

// DGEMMResult reports one DGEMM run.
type DGEMMResult struct {
	N       int
	Threads int
	Seconds float64 // best repetition
	GFlops  float64
}

// DGEMM measures C = alpha*A*B + beta*C on one process with the blocked
// kernel in internal/linalg. This is wall-clock real compute (the Sim
// fabric has no role here): the host machine plays the part of one node
// of the platform.
func DGEMM(cfg DGEMMConfig) (DGEMMResult, error) {
	if cfg.N <= 0 {
		return DGEMMResult{}, fmt.Errorf("hpcc: DGEMM order %d", cfg.N)
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 3
	}
	a := linalg.New(cfg.N, cfg.N)
	b := linalg.New(cfg.N, cfg.N)
	cm := linalg.New(cfg.N, cfg.N)
	a.FillRandom(cfg.Seed)
	b.FillRandom(cfg.Seed + 1)
	cm.FillRandom(cfg.Seed + 2)

	best := -1.0
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if err := linalg.Gemm(1.0, a, b, 0.5, cm, cfg.Threads); err != nil {
			return DGEMMResult{}, err
		}
		dt := time.Since(t0).Seconds()
		if best < 0 || dt < best {
			best = dt
		}
	}
	return DGEMMResult{
		N:       cfg.N,
		Threads: cfg.Threads,
		Seconds: best,
		GFlops:  linalg.GemmFlops(cfg.N, cfg.N, cfg.N) / best / 1e9,
	}, nil
}
