package hpcc

import (
	"fmt"

	"repro/internal/mp"
	"repro/internal/rng"
)

// RingResult reports a b_eff-style ring test.
type RingResult struct {
	Size      int     // message size in bytes
	AvgTime   float64 // seconds per ring step, max over ranks
	Bandwidth float64 // aggregate bytes/s across the ring (both directions)
}

const ringTag = 7300

// NaturalRing runs the HPCC b_eff natural-ring test: every rank
// simultaneously exchanges size-byte messages with both neighbours of
// the rank-order ring for iters steps. Returns the per-step time and
// the aggregate ring bandwidth.
func NaturalRing(c *mp.Comm, size, warmup, iters int) (RingResult, error) {
	perm := make([]int, c.Size())
	for i := range perm {
		perm[i] = i
	}
	return ringOn(c, perm, size, warmup, iters)
}

// RandomRing runs the b_eff random-ring test: the ring order is a
// deterministic pseudo-random permutation, so most neighbours are
// off-node on a clustered platform. The gap between natural-ring and
// random-ring bandwidth exposes the network hierarchy.
func RandomRing(c *mp.Comm, size, warmup, iters int, seed uint64) (RingResult, error) {
	p := c.Size()
	perm := make([]int, p)
	for i := range perm {
		perm[i] = i
	}
	// Fisher-Yates with the shared seed: all ranks compute the same
	// permutation with no communication.
	s := rng.NewSplitMix64(seed)
	for i := p - 1; i > 0; i-- {
		j := int(s.Uint64() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return ringOn(c, perm, size, warmup, iters)
}

// ringOn runs the ring exchange over the given rank permutation.
func ringOn(c *mp.Comm, perm []int, size, warmup, iters int) (RingResult, error) {
	if iters < 1 {
		return RingResult{}, fmt.Errorf("hpcc: ring iters %d", iters)
	}
	p := c.Size()
	if p < 2 {
		return RingResult{}, fmt.Errorf("hpcc: ring needs >= 2 ranks")
	}
	// Find my position and neighbours in the permuted ring.
	pos := -1
	for i, r := range perm {
		if r == c.Rank() {
			pos = i
			break
		}
	}
	if pos < 0 {
		return RingResult{}, fmt.Errorf("hpcc: rank %d missing from permutation", c.Rank())
	}
	right := perm[(pos+1)%p]
	left := perm[(pos-1+p)%p]

	sbuf := make([]byte, size)
	rbuf := make([]byte, size)
	sbuf2 := make([]byte, size)
	rbuf2 := make([]byte, size)

	if err := c.Barrier(); err != nil {
		return RingResult{}, err
	}
	var t0 float64
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			if err := c.Barrier(); err != nil {
				return RingResult{}, err
			}
			t0 = c.Time()
		}
		// Both directions per step, as b_eff does: send right/recv
		// left, then send left/recv right.
		if _, err := c.SendRecv(right, ringTag, sbuf, left, ringTag, rbuf); err != nil {
			return RingResult{}, err
		}
		if _, err := c.SendRecv(left, ringTag+1, sbuf2, right, ringTag+1, rbuf2); err != nil {
			return RingResult{}, err
		}
	}
	local := (c.Time() - t0) / float64(iters)
	worst, err := c.AllreduceScalar(mp.OpMax, local)
	if err != nil {
		return RingResult{}, err
	}
	// Each step moves 2 messages per rank (one each direction).
	agg := 2 * float64(size) * float64(p) / worst
	return RingResult{Size: size, AvgTime: worst, Bandwidth: agg}, nil
}
