package hpcc

import "repro/internal/bytesview"

// Byte views over numeric slices for the byte-oriented transport; see
// internal/bytesview.
func f64b(xs []float64) []byte     { return bytesview.F64(xs) }
func u64b(xs []uint64) []byte      { return bytesview.U64(xs) }
func c128b(xs []complex128) []byte { return bytesview.C128(xs) }

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
