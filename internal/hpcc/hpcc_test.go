package hpcc

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mp"
)

func inproc() mp.Config { return mp.Config{Fabric: mp.InProc} }

func sim() mp.Config { return mp.Config{Fabric: mp.Sim, Model: cluster.BigIBCluster()} }

func TestColumnDistributionHelpers(t *testing.T) {
	const nb, p = 4, 3
	// Global cols 0-3 -> rank 0, 4-7 -> rank 1, 8-11 -> rank 2,
	// 12-15 -> rank 0 again.
	if colOwner(0, nb, p) != 0 || colOwner(5, nb, p) != 1 || colOwner(13, nb, p) != 0 {
		t.Error("colOwner wrong")
	}
	if localCol(13, nb, p) != 5 { // second block on rank 0, offset 1
		t.Errorf("localCol(13) = %d, want 5", localCol(13, nb, p))
	}
	if globalCol(5, nb, p, 0) != 13 {
		t.Errorf("globalCol(5) = %d, want 13", globalCol(5, nb, p, 0))
	}
	// Round-trip property over a full matrix.
	n := 37
	counts := make([]int, p)
	for j := 0; j < n; j++ {
		r := colOwner(j, nb, p)
		lj := localCol(j, nb, p)
		if globalCol(lj, nb, p, r) != j {
			t.Fatalf("round trip failed for col %d", j)
		}
		counts[r]++
	}
	for r := 0; r < p; r++ {
		if counts[r] != localCols(n, nb, p, r) {
			t.Errorf("rank %d: counted %d cols, localCols says %d", r, counts[r], localCols(n, nb, p, r))
		}
	}
}

func TestHPLResidualSmall(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, n := range []int{16, 33, 64} {
			t.Run(fmt.Sprintf("p=%d/n=%d", p, n), func(t *testing.T) {
				err := mp.Run(p, inproc(), func(c *mp.Comm) error {
					res, err := HPL(c, HPLConfig{N: n, NB: 8, Seed: 42})
					if err != nil {
						return err
					}
					if res.Residual < 0 || res.Residual > 16 {
						return fmt.Errorf("residual %v out of [0,16]", res.Residual)
					}
					if res.GFlops <= 0 || res.Seconds <= 0 {
						return fmt.Errorf("bad metrics %+v", res)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestHPLOddBlockAndSize(t *testing.T) {
	// n not divisible by nb, p=3 (odd), exercises remainder blocks.
	err := mp.Run(3, inproc(), func(c *mp.Comm) error {
		res, err := HPL(c, HPLConfig{N: 50, NB: 7, Seed: 9})
		if err != nil {
			return err
		}
		if res.Residual > 16 {
			return fmt.Errorf("residual %v", res.Residual)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHPLOnSimFabric(t *testing.T) {
	err := mp.Run(4, sim(), func(c *mp.Comm) error {
		res, err := HPL(c, HPLConfig{N: 32, NB: 8, Seed: 1, ComputeRate: 1e9})
		if err != nil {
			return err
		}
		if res.Residual > 16 {
			return fmt.Errorf("residual %v", res.Residual)
		}
		if res.Seconds <= 0 {
			return fmt.Errorf("virtual time %v", res.Seconds)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHPLSkipCheck(t *testing.T) {
	err := mp.Run(2, inproc(), func(c *mp.Comm) error {
		res, err := HPL(c, HPLConfig{N: 16, NB: 4, Seed: 3, SkipCheck: true})
		if err != nil {
			return err
		}
		if res.Residual != -1 {
			return fmt.Errorf("expected skipped residual, got %v", res.Residual)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHPLRejectsBadOrder(t *testing.T) {
	err := mp.Run(1, inproc(), func(c *mp.Comm) error {
		if _, err := HPL(c, HPLConfig{N: 0}); err == nil {
			return fmt.Errorf("N=0 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGUPSVerifies(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := mp.Run(p, inproc(), func(c *mp.Comm) error {
				res, err := RandomAccess(c, GUPSConfig{TableBits: 12, Verify: true, Chunk: 256})
				if err != nil {
					return err
				}
				if res.Errors != 0 {
					return fmt.Errorf("%d verification errors", res.Errors)
				}
				if res.GUPS <= 0 {
					return fmt.Errorf("GUPS %v", res.GUPS)
				}
				if res.Updates != 4<<12 {
					return fmt.Errorf("updates %d", res.Updates)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGUPSValidation(t *testing.T) {
	err := mp.Run(3, inproc(), func(c *mp.Comm) error {
		if _, err := RandomAccess(c, GUPSConfig{TableBits: 10}); err == nil {
			return fmt.Errorf("non-power-of-two ranks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mp.Run(1, inproc(), func(c *mp.Comm) error {
		if _, err := RandomAccess(c, GUPSConfig{TableBits: 0}); err == nil {
			return fmt.Errorf("TableBits=0 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGUPSOnSim(t *testing.T) {
	err := mp.Run(4, sim(), func(c *mp.Comm) error {
		res, err := RandomAccess(c, GUPSConfig{TableBits: 10, Verify: true, Chunk: 128, ComputeRate: 1e8})
		if err != nil {
			return err
		}
		if res.Errors != 0 {
			return fmt.Errorf("%d errors", res.Errors)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPTRANSVerifies(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := mp.Run(p, inproc(), func(c *mp.Comm) error {
				res, err := PTRANS(c, PTRANSConfig{N: 32, Seed: 5, Verify: true})
				if err != nil {
					return err
				}
				if res.MaxErr != 0 {
					return fmt.Errorf("max error %v", res.MaxErr)
				}
				if res.GBps <= 0 {
					return fmt.Errorf("GBps %v", res.GBps)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPTRANSValidation(t *testing.T) {
	err := mp.Run(3, inproc(), func(c *mp.Comm) error {
		if _, err := PTRANS(c, PTRANSConfig{N: 32}); err == nil {
			return fmt.Errorf("non-divisible order accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistFFTVerifies(t *testing.T) {
	cases := []struct{ p, n1, n2 int }{
		{1, 8, 8}, {2, 8, 16}, {4, 16, 16}, {4, 4, 32},
	}
	for _, cs := range cases {
		t.Run(fmt.Sprintf("p=%d/%dx%d", cs.p, cs.n1, cs.n2), func(t *testing.T) {
			err := mp.Run(cs.p, inproc(), func(c *mp.Comm) error {
				res, err := DistFFT(c, FFTConfig{N1: cs.n1, N2: cs.n2, Seed: 11, Verify: true})
				if err != nil {
					return err
				}
				if res.MaxErr > 1e-9*float64(res.N) {
					return fmt.Errorf("max error %v", res.MaxErr)
				}
				if res.GFlops <= 0 {
					return fmt.Errorf("GFlops %v", res.GFlops)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDistFFTValidation(t *testing.T) {
	err := mp.Run(2, inproc(), func(c *mp.Comm) error {
		if _, err := DistFFT(c, FFTConfig{N1: 6, N2: 8}); err == nil {
			return fmt.Errorf("non-pow2 accepted")
		}
		if _, err := DistFFT(c, FFTConfig{N1: 1, N2: 8}); err == nil {
			return fmt.Errorf("indivisible dims accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNaturalRing(t *testing.T) {
	err := mp.Run(4, sim(), func(c *mp.Comm) error {
		res, err := NaturalRing(c, 1024, 2, 10)
		if err != nil {
			return err
		}
		if res.AvgTime <= 0 || res.Bandwidth <= 0 {
			return fmt.Errorf("bad ring result %+v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomRingSlowerOnCluster(t *testing.T) {
	// On a multi-node model with block placement, the random ring has
	// more inter-node hops than the natural ring, so it must be slower.
	m := cluster.IBCluster()
	n := m.Topo.TotalCores()
	var nat, rnd RingResult
	err := mp.Run(n, mp.Config{Fabric: mp.Sim, Model: m}, func(c *mp.Comm) error {
		var err error
		nr, err := NaturalRing(c, 4096, 2, 20)
		if err != nil {
			return err
		}
		rr, err := RandomRing(c, 4096, 2, 20, 12345)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			nat, rnd = nr, rr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Bandwidth >= nat.Bandwidth {
		t.Errorf("random ring bw %v not below natural ring %v", rnd.Bandwidth, nat.Bandwidth)
	}
}

func TestRingValidation(t *testing.T) {
	err := mp.Run(1, inproc(), func(c *mp.Comm) error {
		if _, err := NaturalRing(c, 8, 1, 5); err == nil {
			return fmt.Errorf("1-rank ring accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mp.Run(2, inproc(), func(c *mp.Comm) error {
		if _, err := NaturalRing(c, 8, 1, 0); err == nil {
			return fmt.Errorf("iters=0 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDGEMM(t *testing.T) {
	res, err := DGEMM(DGEMMConfig{N: 64, Threads: 2, Reps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFlops <= 0 || res.Seconds <= 0 {
		t.Errorf("bad DGEMM result %+v", res)
	}
	if _, err := DGEMM(DGEMMConfig{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
}
