package hpcc

import (
	"fmt"

	"repro/internal/mp"
	"repro/internal/rng"
)

// GUPSConfig configures the RandomAccess benchmark.
type GUPSConfig struct {
	// TableBits sets the global table to 1<<TableBits uint64 words.
	TableBits int
	// UpdatesPerWord is the update multiple (HPCC uses 4).
	UpdatesPerWord int
	// Chunk is the number of updates each rank generates per exchange
	// round (default 4096). Larger chunks amortize message overhead —
	// exactly the bucket-size trade-off the real benchmark has.
	Chunk int
	// Verify re-applies the full update stream (XOR is an involution)
	// and counts table words that fail to return to their initial
	// value; HPCC tolerates <1%, this implementation must produce 0.
	Verify bool
	// ComputeRate, if positive, charges virtual time per table update
	// on the Sim fabric.
	ComputeRate float64
}

// GUPSResult reports one RandomAccess run.
type GUPSResult struct {
	TableWords int64
	Updates    int64
	Seconds    float64
	GUPS       float64 // giga-updates per second
	Errors     int64   // verification mismatches (-1 when not verified)
}

// RandomAccess runs the HPCC RandomAccess benchmark: a table of
// 1<<TableBits words distributed evenly over the ranks, updated at
// positions drawn from the HPCC LFSR stream. Remote updates are
// bucketed per destination and exchanged in rounds. The rank count must
// be a power of two dividing the table size.
func RandomAccess(c *mp.Comm, cfg GUPSConfig) (GUPSResult, error) {
	p := c.Size()
	if !isPow2(p) {
		return GUPSResult{}, fmt.Errorf("hpcc: RandomAccess needs power-of-two ranks, got %d", p)
	}
	if cfg.TableBits < 1 || cfg.TableBits > 40 {
		return GUPSResult{}, fmt.Errorf("hpcc: TableBits %d out of range", cfg.TableBits)
	}
	tableWords := int64(1) << cfg.TableBits
	if int64(p) > tableWords {
		return GUPSResult{}, fmt.Errorf("hpcc: more ranks (%d) than table words (%d)", p, tableWords)
	}
	upw := cfg.UpdatesPerWord
	if upw <= 0 {
		upw = 4
	}
	chunk := cfg.Chunk
	if chunk <= 0 {
		chunk = 4096
	}

	perRank := tableWords / int64(p)
	base := int64(c.Rank()) * perRank
	table := make([]uint64, perRank)
	for i := range table {
		table[i] = uint64(base + int64(i)) // HPCC initial contents
	}

	totalUpdates := int64(upw) * tableWords
	myUpdates := totalUpdates / int64(p)
	res := GUPSResult{TableWords: tableWords, Updates: totalUpdates, Errors: -1}

	if err := c.Barrier(); err != nil {
		return res, err
	}
	t0 := c.Time()
	if err := gupsPass(c, cfg, table, base, perRank, myUpdates, chunk); err != nil {
		return res, err
	}
	if err := c.Barrier(); err != nil {
		return res, err
	}
	res.Seconds = c.Time() - t0
	res.GUPS = float64(totalUpdates) / res.Seconds / 1e9

	if cfg.Verify {
		if err := gupsPass(c, cfg, table, base, perRank, myUpdates, chunk); err != nil {
			return res, err
		}
		var bad float64
		for i := range table {
			if table[i] != uint64(base+int64(i)) {
				bad++
			}
		}
		total, err := c.AllreduceScalar(mp.OpSum, bad)
		if err != nil {
			return res, err
		}
		res.Errors = int64(total)
	}
	return res, nil
}

// gupsPass applies this rank's slice of the global update stream once.
func gupsPass(c *mp.Comm, cfg GUPSConfig, table []uint64, base, perRank, myUpdates int64, chunk int) error {
	p := c.Size()
	mask := uint64(int64(len(table))*int64(p) - 1)
	stream := rng.NewGUPSStream(myUpdates * int64(c.Rank()))
	buckets := make([][]uint64, p)
	for i := range buckets {
		buckets[i] = make([]uint64, 0, chunk)
	}
	apply := func(v uint64) {
		idx := int64(v&mask) - base
		table[idx] ^= v
	}

	done := int64(0)
	const tag = 7200
	rbuf := make([]uint64, chunk)
	counts := make([]float64, 1)
	for {
		// Generate one chunk and bucket by owner.
		gen := int64(chunk)
		if remaining := myUpdates - done; remaining < gen {
			gen = remaining
		}
		for i := int64(0); i < gen; i++ {
			v := stream.Next()
			owner := int((int64(v&mask) / perRank))
			if owner == c.Rank() {
				apply(v)
			} else {
				buckets[owner] = append(buckets[owner], v)
			}
		}
		done += gen
		charge(c, cfg.ComputeRate, float64(gen))

		// Every rank participates in every round until all ranks are
		// done; a rank with no work still exchanges (possibly empty)
		// buckets, keeping the rounds aligned.
		remainingAll, err := c.AllreduceScalar(mp.OpMax, float64(myUpdates-done))
		if err != nil {
			return err
		}

		// Rotation exchange: in step i, send bucket to rank+i, receive
		// from rank-i. Counts go first so the receive size is known.
		for i := 1; i < p; i++ {
			dst := (c.Rank() + i) % p
			src := (c.Rank() - i + p) % p
			counts[0] = float64(len(buckets[dst]))
			var in [1]float64
			if _, err := c.SendRecv(dst, tag, f64b(counts), src, tag, f64b(in[:])); err != nil {
				return err
			}
			nIn := int(in[0])
			if cap(rbuf) < nIn {
				rbuf = make([]uint64, nIn)
			}
			rb := rbuf[:nIn]
			if _, err := c.SendRecv(dst, tag+1, u64b(buckets[dst]), src, tag+1, u64b(rb)); err != nil {
				return err
			}
			for _, v := range rb {
				apply(v)
			}
			charge(c, cfg.ComputeRate, float64(nIn))
			buckets[dst] = buckets[dst][:0]
		}

		if remainingAll <= 0 {
			return nil
		}
	}
}
