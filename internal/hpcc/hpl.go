// Package hpcc reimplements the HPC Challenge benchmark kernels on the
// internal/mp runtime: HPL (distributed LU), DGEMM, PTRANS (distributed
// transpose), RandomAccess (GUPS), a distributed six-step FFT, and the
// b_eff-style ring latency/bandwidth tests. Each kernel stresses a
// different machine axis — compute, memory, bisection bandwidth, small
// message rate — which together form the HPCC summary table the
// characterization reproduces (experiment T3).
package hpcc

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/mp"
	"repro/internal/rng"
)

// HPLConfig configures the distributed LU benchmark.
type HPLConfig struct {
	// N is the global matrix order.
	N int
	// NB is the block-cyclic panel width (default linalg.DefaultLUBlock).
	NB int
	// Seed selects the deterministic test matrix.
	Seed uint64
	// Threads parallelizes each rank's local trailing update.
	Threads int
	// ComputeRate, if positive, charges flops/ComputeRate seconds of
	// virtual time per local flop block (Sim fabric only; no-op
	// elsewhere).
	ComputeRate float64
	// SkipCheck skips the residual validation (benchmark loops).
	SkipCheck bool
}

// HPLResult reports one HPL run.
type HPLResult struct {
	N, NB, P int
	Seconds  float64
	GFlops   float64
	Residual float64 // scaled residual; <16 passes (NaN when skipped)
}

// colOwner returns the rank owning global column j under 1-D
// block-cyclic distribution with block nb over p ranks.
func colOwner(j, nb, p int) int { return (j / nb) % p }

// localCol maps global column j to its local column index on its owner.
func localCol(j, nb, p int) int { return (j/nb/p)*nb + j%nb }

// localCols returns how many columns rank r stores for a global order n.
func localCols(n, nb, p, r int) int {
	full := n / nb // complete blocks
	cols := (full / p) * nb
	if full%p > r {
		cols += nb
	} else if full%p == r {
		cols += n % nb
	}
	// Note: remainder block belongs to rank full%p.
	return cols
}

// fillColumn writes the deterministic HPL test column j into dst
// (length n): uniform [-0.5, 0.5) from a per-column stream, so any rank
// can regenerate any column without communication.
func fillColumn(dst []float64, j int, seed uint64) {
	s := rng.NewSplitMix64(seed ^ (uint64(j)+1)*0x9e3779b97f4a7c15)
	for i := range dst {
		dst[i] = s.Sym()
	}
}

// HPL factorizes a deterministic N x N system with 1-D column
// block-cyclic LU (panel factorization on the owning rank, panel
// broadcast, distributed row swaps and trailing update), then gathers
// the factors to rank 0 for the O(n^2) triangular solve and residual
// check. The timed region is the factorization, whose 2n^3/3 flops
// dominate, as in HPL.
func HPL(c *mp.Comm, cfg HPLConfig) (HPLResult, error) {
	p := c.Size()
	n := cfg.N
	nb := cfg.NB
	if nb <= 0 {
		nb = linalg.DefaultLUBlock
	}
	if nb > n {
		nb = n
	}
	if n <= 0 {
		return HPLResult{}, fmt.Errorf("hpcc: HPL order %d", n)
	}
	res := HPLResult{N: n, NB: nb, P: p}

	// Local storage: n rows x lc columns.
	lc := localCols(n, nb, p, c.Rank())
	local := linalg.New(n, maxInt(lc, 1))
	local.Cols = lc
	colBuf := make([]float64, n)
	for j := 0; j < n; j++ {
		if colOwner(j, nb, p) != c.Rank() {
			continue
		}
		fillColumn(colBuf, j, cfg.Seed)
		lj := localCol(j, nb, p)
		for i := 0; i < n; i++ {
			local.Set(i, lj, colBuf[i])
		}
	}

	pivAll := make([]int, n)
	panelBuf := make([]float64, 0, n*nb)
	pivBuf := make([]float64, nb)

	if err := c.Barrier(); err != nil {
		return res, err
	}
	t0 := c.Time()

	for k := 0; k < n; k += nb {
		jb := minInt(nb, n-k)
		owner := colOwner(k, nb, p)
		rows := n - k

		// 1. Panel factorization on the owner.
		panelBuf = panelBuf[:rows*jb]
		if c.Rank() == owner {
			lk := localCol(k, nb, p)
			panel := local.View(k, lk, rows, jb)
			piv := make([]int, jb)
			if err := factorPanel(panel, piv); err != nil {
				return res, fmt.Errorf("hpcc: HPL panel at %d: %w", k, err)
			}
			for t := 0; t < jb; t++ {
				pivBuf[t] = float64(piv[t] + k) // absolute row index
			}
			packPanel(panel, panelBuf)
			charge(c, cfg.ComputeRate, panelFlops(rows, jb))
		}

		// 2. Broadcast pivots and the factored panel.
		if err := c.Bcast(owner, f64b(pivBuf[:jb])); err != nil {
			return res, err
		}
		if err := c.Bcast(owner, f64b(panelBuf)); err != nil {
			return res, err
		}
		for t := 0; t < jb; t++ {
			pivAll[k+t] = int(pivBuf[t])
		}

		// 3. Apply the panel's row swaps to every local column outside
		// the panel block (the owner's panel columns were swapped in
		// place during factorization).
		for t := 0; t < jb; t++ {
			pr := pivAll[k+t]
			if pr == k+t {
				continue
			}
			for ljc := 0; ljc < lc; ljc++ {
				gj := globalCol(ljc, nb, p, c.Rank())
				if gj >= k && gj < k+jb && c.Rank() == owner {
					continue // already swapped in the panel
				}
				a, b := local.At(k+t, ljc), local.At(pr, ljc)
				local.Set(k+t, ljc, b)
				local.Set(pr, ljc, a)
			}
		}

		if k+jb >= n {
			break
		}

		// 4. Trailing update on each rank's local columns right of the
		// panel, block by block.
		panel := linalg.New(rows, jb)
		unpackPanel(panelBuf, panel)
		l11 := panel.View(0, 0, jb, jb)
		var l21 *linalg.Matrix
		if rows > jb {
			l21 = panel.View(jb, 0, rows-jb, jb)
		}
		var updFlops float64
		for gb := k/nb + 1; gb*nb < n; gb++ {
			if colOwner(gb*nb, nb, p) != c.Rank() {
				continue
			}
			w := minInt(nb, n-gb*nb)
			ljc := localCol(gb*nb, nb, p)
			u12 := local.View(k, ljc, jb, w)
			if err := linalg.TrsmLowerUnitLeft(l11, u12); err != nil {
				return res, err
			}
			if l21 != nil {
				a22 := local.View(k+jb, ljc, rows-jb, w)
				if err := linalg.Gemm(-1, l21, u12, 1, a22, cfg.Threads); err != nil {
					return res, err
				}
			}
			updFlops += float64(jb)*float64(jb)*float64(w) + // trsm
				linalg.GemmFlops(rows-jb, w, jb)
		}
		charge(c, cfg.ComputeRate, updFlops)
	}

	if err := c.Barrier(); err != nil {
		return res, err
	}
	res.Seconds = c.Time() - t0
	res.GFlops = linalg.LUFlops(n) / res.Seconds / 1e9

	if cfg.SkipCheck {
		res.Residual = -1
		return res, nil
	}

	// Gather the factors to rank 0, solve, validate.
	full, err := gatherColumns(c, local, n, nb)
	if err != nil {
		return res, err
	}
	status := make([]float64, 1)
	if c.Rank() == 0 {
		b := make([]float64, n)
		s := rng.NewSplitMix64(cfg.Seed ^ 0xb5ad4eceda1ce2a9)
		for i := range b {
			b[i] = s.Sym()
		}
		x := append([]float64(nil), b...)
		if err := linalg.Getrs(full, pivAll, x); err != nil {
			return res, err
		}
		orig := linalg.New(n, n)
		col := make([]float64, n)
		for j := 0; j < n; j++ {
			fillColumn(col, j, cfg.Seed)
			for i := 0; i < n; i++ {
				orig.Set(i, j, col[i])
			}
		}
		r, err := linalg.HPLResidual(orig, x, b)
		if err != nil {
			return res, err
		}
		status[0] = r
	}
	if err := c.Bcast(0, f64b(status)); err != nil {
		return res, err
	}
	res.Residual = status[0]
	return res, nil
}

// factorPanel is getrfPanel re-exported into this package's flow: it
// factors the m x jb panel in place with partial pivoting, pivots
// relative to the panel top.
func factorPanel(panel *linalg.Matrix, piv []int) error {
	// Reuse the library's blocked factorization with a single block:
	// Getrf on an m x jb matrix factors exactly the panel.
	return linalg.Getrf(panel, piv, panel.Cols, 1)
}

// panelFlops approximates the panel factorization flop count.
func panelFlops(m, jb int) float64 {
	return float64(m) * float64(jb) * float64(jb)
}

func packPanel(panel *linalg.Matrix, buf []float64) {
	idx := 0
	for i := 0; i < panel.Rows; i++ {
		row := panel.Data[i*panel.Stride : i*panel.Stride+panel.Cols]
		idx += copy(buf[idx:], row)
	}
}

func unpackPanel(buf []float64, panel *linalg.Matrix) {
	idx := 0
	for i := 0; i < panel.Rows; i++ {
		row := panel.Data[i*panel.Stride : i*panel.Stride+panel.Cols]
		idx += copy(row, buf[idx:idx+panel.Cols])
	}
}

// globalCol maps a local column index back to its global column.
func globalCol(lj, nb, p, r int) int {
	block := lj / nb
	return (block*p+r)*nb + lj%nb
}

// gatherColumns assembles the distributed matrix on rank 0.
func gatherColumns(c *mp.Comm, local *linalg.Matrix, n, nb int) (*linalg.Matrix, error) {
	p := c.Size()
	var full *linalg.Matrix
	if c.Rank() == 0 {
		full = linalg.New(n, n)
	}
	const tag = 7100
	buf := make([]float64, n*nb)
	for gb := 0; gb*nb < n; gb++ {
		j := gb * nb
		w := minInt(nb, n-j)
		owner := colOwner(j, nb, p)
		switch {
		case owner == c.Rank() && c.Rank() == 0:
			lj := localCol(j, nb, p)
			for i := 0; i < n; i++ {
				for t := 0; t < w; t++ {
					full.Set(i, j+t, local.At(i, lj+t))
				}
			}
		case owner == c.Rank():
			lj := localCol(j, nb, p)
			blk := buf[:n*w]
			idx := 0
			for i := 0; i < n; i++ {
				for t := 0; t < w; t++ {
					blk[idx] = local.At(i, lj+t)
					idx++
				}
			}
			if err := c.Send(0, tag, f64b(blk)); err != nil {
				return nil, err
			}
		case c.Rank() == 0:
			blk := buf[:n*w]
			if _, err := c.Recv(owner, tag, f64b(blk)); err != nil {
				return nil, err
			}
			idx := 0
			for i := 0; i < n; i++ {
				for t := 0; t < w; t++ {
					full.Set(i, j+t, blk[idx])
					idx++
				}
			}
		}
	}
	return full, nil
}

// charge adds flops/rate seconds of virtual compute time (no-op when
// rate <= 0 or on real-time fabrics).
func charge(c *mp.Comm, rate, flops float64) {
	if rate > 0 {
		c.Compute(flops / rate)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
