package hpcc

import (
	"fmt"
	"math"

	"repro/internal/mp"
	"repro/internal/rng"
)

// PTRANSConfig configures the parallel transpose benchmark.
type PTRANSConfig struct {
	// N is the global matrix order; must be divisible by the rank
	// count.
	N int
	// Seed selects the deterministic test matrix.
	Seed uint64
	// Verify checks the result against the closed-form expectation.
	Verify bool
	// MemRate, if positive, charges local pack/unpack traffic to the
	// virtual clock at this many bytes/s (Sim fabric; no-op elsewhere).
	// Without it a single-rank run has zero modeled time.
	MemRate float64
}

// PTRANSResult reports one PTRANS run.
type PTRANSResult struct {
	N       int
	Seconds float64
	GBps    float64 // N*N*8 bytes moved across the transpose / time
	MaxErr  float64 // verification error (-1 when not verified)
}

// ptransElem is the deterministic test matrix: a closed-form function of
// (i, j) so any rank can verify any element without communication.
func ptransElem(i, j int, seed uint64) float64 {
	s := rng.NewSplitMix64(seed ^ (uint64(i)<<32 | uint64(uint32(j))))
	return s.Sym()
}

// PTRANS computes A := A^T + A on a row-block distributed N x N matrix
// (rank r owns rows [r*N/p, (r+1)*N/p)), exchanging blocks with a
// single all-to-all — the bisection-bandwidth stressor of the HPCC
// suite.
func PTRANS(c *mp.Comm, cfg PTRANSConfig) (PTRANSResult, error) {
	p := c.Size()
	n := cfg.N
	if n <= 0 || n%p != 0 {
		return PTRANSResult{}, fmt.Errorf("hpcc: PTRANS order %d not divisible by %d ranks", n, p)
	}
	rows := n / p
	r0 := c.Rank() * rows
	res := PTRANSResult{N: n, MaxErr: -1}

	// Local rows, row-major n columns.
	local := make([]float64, rows*n)
	for i := 0; i < rows; i++ {
		for j := 0; j < n; j++ {
			local[i*n+j] = ptransElem(r0+i, j, cfg.Seed)
		}
	}

	// Pack: destination rank d gets my rows x its column range, stored
	// block-row-major so the all-to-all moves one contiguous block per
	// destination.
	sendBuf := make([]float64, rows*n)
	recvBuf := make([]float64, rows*n)
	blockWords := rows * rows

	if err := c.Barrier(); err != nil {
		return res, err
	}
	t0 := c.Time()

	for d := 0; d < p; d++ {
		dst := sendBuf[d*blockWords : (d+1)*blockWords]
		c0 := d * rows
		for i := 0; i < rows; i++ {
			copy(dst[i*rows:(i+1)*rows], local[i*n+c0:i*n+c0+rows])
		}
	}
	if cfg.MemRate > 0 {
		// Pack reads + writes the local panel once.
		c.Compute(2 * 8 * float64(rows) * float64(n) / cfg.MemRate)
	}
	if err := c.Alltoall(f64b(sendBuf), f64b(recvBuf)); err != nil {
		return res, err
	}
	// Unpack: the block from rank s holds A[s-rows, my cols]; its
	// transpose lands in my rows at column range of s. Result:
	// local := local + transpose-part.
	for s := 0; s < p; s++ {
		blk := recvBuf[s*blockWords : (s+1)*blockWords]
		c0 := s * rows
		for i := 0; i < rows; i++ {
			for j := 0; j < rows; j++ {
				// A^T(r0+i, c0+j) = A(c0+j, r0+i) = blk[j*rows+i].
				local[i*n+c0+j] += blk[j*rows+i]
			}
		}
	}

	if cfg.MemRate > 0 {
		// Unpack transposes + adds: ~3 passes over the local panel.
		c.Compute(3 * 8 * float64(rows) * float64(n) / cfg.MemRate)
	}
	if err := c.Barrier(); err != nil {
		return res, err
	}
	res.Seconds = c.Time() - t0
	if res.Seconds > 0 {
		res.GBps = float64(n) * float64(n) * 8 / res.Seconds / 1e9
	}

	if cfg.Verify {
		var maxErr float64
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				want := ptransElem(r0+i, j, cfg.Seed) + ptransElem(j, r0+i, cfg.Seed)
				if d := math.Abs(local[i*n+j] - want); d > maxErr {
					maxErr = d
				}
			}
		}
		total, err := c.AllreduceScalar(mp.OpMax, maxErr)
		if err != nil {
			return res, err
		}
		res.MaxErr = total
	}
	return res, nil
}
