package hpcc

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/mp"
	"repro/internal/rng"
)

// FFTConfig configures the distributed FFT benchmark.
type FFTConfig struct {
	// N1, N2 factor the transform length N = N1*N2; both must be
	// powers of two divisible by the rank count.
	N1, N2 int
	// Seed selects the deterministic input signal.
	Seed uint64
	// Verify gathers the result and compares with a serial transform
	// (only use at test sizes).
	Verify bool
	// ComputeRate, if positive, charges virtual time for local
	// butterfly work on the Sim fabric.
	ComputeRate float64
}

// FFTResult reports one distributed FFT run.
type FFTResult struct {
	N       int
	Seconds float64
	GFlops  float64 // 5 N log2 N / time
	MaxErr  float64 // -1 when not verified
}

// DistFFT computes a 1-D complex DFT of length N1*N2 with the six-step
// algorithm: three distributed transposes (all-to-all) around two local
// FFT sweeps plus a twiddle scaling. Input element j (natural order,
// viewed as an N1 x N2 row-major matrix distributed by rows) is
// generated deterministically from cfg.Seed.
func DistFFT(c *mp.Comm, cfg FFTConfig) (FFTResult, error) {
	p := c.Size()
	n1, n2 := cfg.N1, cfg.N2
	n := n1 * n2
	res := FFTResult{N: n, MaxErr: -1}
	if !fft.IsPow2(n1) || !fft.IsPow2(n2) {
		return res, fft.ErrNotPow2
	}
	if n1%p != 0 || n2%p != 0 {
		return res, fmt.Errorf("hpcc: FFT dims (%d,%d) not divisible by %d ranks", n1, n2, p)
	}

	myRows1 := n1 / p // rows held in n1 x n2 orientation
	myRows2 := n2 / p // rows held in n2 x n1 orientation
	local := make([]complex128, myRows1*n2)
	s := rng.NewSplitMix64(cfg.Seed + uint64(c.Rank())*0x9e3779b97f4a7c15)
	for i := range local {
		local[i] = complex(s.Sym(), s.Sym())
	}
	var input []complex128
	if cfg.Verify {
		input = append([]complex128(nil), local...)
	}

	if err := c.Barrier(); err != nil {
		return res, err
	}
	t0 := c.Time()

	// Step 1: transpose n1 x n2 -> n2 x n1.
	t1, err := distTranspose(c, local, n1, n2)
	if err != nil {
		return res, err
	}
	// Step 2: local FFTs of length n1 over my n2/p rows.
	for r := 0; r < myRows2; r++ {
		if err := fft.Forward(t1[r*n1 : (r+1)*n1]); err != nil {
			return res, err
		}
	}
	charge(c, cfg.ComputeRate, float64(myRows2)*fft.Flops(n1))
	// Step 3: twiddle; global row index offsets into the n2 x n1 view.
	rowOff := c.Rank() * myRows2
	nf := float64(n)
	for r := 0; r < myRows2; r++ {
		base := -2 * math.Pi * float64(rowOff+r) / nf
		row := t1[r*n1 : (r+1)*n1]
		for cc := range row {
			row[cc] *= cmplx.Exp(complex(0, base*float64(cc)))
		}
	}
	// Step 4: transpose back to n1 x n2.
	t2, err := distTranspose(c, t1, n2, n1)
	if err != nil {
		return res, err
	}
	// Step 5: local FFTs of length n2.
	for r := 0; r < myRows1; r++ {
		if err := fft.Forward(t2[r*n2 : (r+1)*n2]); err != nil {
			return res, err
		}
	}
	charge(c, cfg.ComputeRate, float64(myRows1)*fft.Flops(n2))
	// Step 6: final transpose to natural output order (n2 x n1 view).
	out, err := distTranspose(c, t2, n1, n2)
	if err != nil {
		return res, err
	}

	if err := c.Barrier(); err != nil {
		return res, err
	}
	res.Seconds = c.Time() - t0
	res.GFlops = fft.Flops(n) / res.Seconds / 1e9

	if cfg.Verify {
		maxErr, err := verifyFFT(c, input, out, n1, n2)
		if err != nil {
			return res, err
		}
		res.MaxErr = maxErr
	}
	return res, nil
}

// distTranspose globally transposes an R x C row-major matrix
// distributed by rows (R/p rows per rank) into a C x R matrix
// distributed by rows (C/p per rank), using one all-to-all.
func distTranspose(c *mp.Comm, local []complex128, r, cols int) ([]complex128, error) {
	p := c.Size()
	myR := r / p
	myC := cols / p
	if len(local) != myR*cols {
		return nil, fmt.Errorf("hpcc: transpose local size %d, want %d", len(local), myR*cols)
	}
	blockWords := myR * myC
	sendBuf := make([]complex128, myR*cols)
	recvBuf := make([]complex128, cols/p*r)
	// Pack: destination d receives my rows x its column range.
	for d := 0; d < p; d++ {
		dst := sendBuf[d*blockWords : (d+1)*blockWords]
		c0 := d * myC
		for i := 0; i < myR; i++ {
			copy(dst[i*myC:(i+1)*myC], local[i*cols+c0:i*cols+c0+myC])
		}
	}
	if err := c.Alltoall(c128b(sendBuf), c128b(recvBuf)); err != nil {
		return nil, err
	}
	// Unpack with local transpose: block from rank s holds
	// orig(rows of s, my cols); transposed it lands at my rows (the
	// original columns) x column range of s.
	out := make([]complex128, myC*r)
	for s := 0; s < p; s++ {
		blk := recvBuf[s*blockWords : (s+1)*blockWords]
		c0 := s * myR
		for i := 0; i < myR; i++ { // i: row within block (src row)
			for j := 0; j < myC; j++ { // j: my output row
				out[j*r+c0+i] = blk[i*myC+j]
			}
		}
	}
	return out, nil
}

// verifyFFT gathers input and output to rank 0, runs the serial FFT on
// the input and returns the max elementwise error (broadcast to all).
func verifyFFT(c *mp.Comm, input, output []complex128, n1, n2 int) (float64, error) {
	n := n1 * n2
	fullIn := make([]complex128, n)
	fullOut := make([]complex128, n)
	if err := c.Allgather(c128b(input), c128b(fullIn)); err != nil {
		return 0, err
	}
	if err := c.Allgather(c128b(output), c128b(fullOut)); err != nil {
		return 0, err
	}
	want := append([]complex128(nil), fullIn...)
	if err := fft.Forward(want); err != nil {
		return 0, err
	}
	var maxErr float64
	for i := range want {
		if d := cmplx.Abs(fullOut[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	return maxErr, nil
}
