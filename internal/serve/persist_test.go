package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskcache"
)

func openStore(t *testing.T, dir, fp string) *diskcache.Store {
	t.Helper()
	st, err := diskcache.Open(dir, diskcache.Fingerprints{Global: fp}, 0)
	if err != nil {
		t.Fatalf("diskcache.Open: %v", err)
	}
	return st
}

// TestDiskPersistAcrossRestart is the acceptance scenario: a second
// daemon over a warm cache directory serves a previously cached
// (id, scale) byte-identically without re-executing the experiment.
func TestDiskPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int32
	run := stubRun(&runs, time.Millisecond)

	ts1 := newTestServer(t, Config{RunFunc: run, Store: openStore(t, dir, "fpA")})
	resp, body1 := doGet(t, ts1.URL+"/experiments/T1", "application/json", "")
	if resp.StatusCode != 200 {
		t.Fatalf("first get: %d %s", resp.StatusCode, body1)
	}
	etag1 := resp.Header.Get("ETag")
	elapsed1 := resp.Header.Get("X-Experiment-Elapsed")
	if runs.Load() != 1 {
		t.Fatalf("first daemon ran %d times, want 1", runs.Load())
	}

	// "Restart": a fresh server and store handle over the same dir.
	srv2 := New(Config{RunFunc: run, Store: openStore(t, dir, "fpA")})
	ts2 := newHTTPTestServer(t, srv2)
	resp, body2 := doGet(t, ts2.URL+"/experiments/T1", "application/json", "")
	if resp.StatusCode != 200 {
		t.Fatalf("post-restart get: %d %s", resp.StatusCode, body2)
	}
	if runs.Load() != 1 {
		t.Errorf("restart re-ran the experiment (runs=%d, want 1)", runs.Load())
	}
	if body2 != body1 || resp.Header.Get("ETag") != etag1 {
		t.Error("restarted daemon served different bytes or ETag")
	}
	if got := resp.Header.Get("X-Experiment-Elapsed"); got != elapsed1 {
		t.Errorf("original wall time lost across restart: %q want %q", got, elapsed1)
	}
	if st := srv2.Stats(); st.Runs != 0 || st.DiskLoads != 1 {
		t.Errorf("restart stats = %+v, want Runs=0 DiskLoads=1", st)
	}

	// Every representation survives, each with its own ETag.
	respText, _ := doGet(t, ts2.URL+"/experiments/T1", "text/plain", "")
	respCSV, _ := doGet(t, ts2.URL+"/experiments/T1", "text/csv", "")
	if respText.StatusCode != 200 || respCSV.StatusCode != 200 {
		t.Errorf("text/csv after restart: %d/%d", respText.StatusCode, respCSV.StatusCode)
	}
	if runs.Load() != 1 {
		t.Errorf("negotiation after restart re-ran (runs=%d)", runs.Load())
	}
}

// newHTTPTestServer hosts an already-built Server (newTestServer
// builds its own, which hides the *Server needed for Stats and Warm).
func newHTTPTestServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestWarmLoadsFromDiskWithoutRunning(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int32
	run := stubRun(&runs, 0)

	srv1 := New(Config{RunFunc: run, Store: openStore(t, dir, "fpA")})
	if n := srv1.Warm(context.Background(), []string{"T1", "T4"}, nil, 2); n != 2 {
		t.Fatalf("first warm ran %d, want 2", n)
	}

	srv2 := New(Config{RunFunc: run, Store: openStore(t, dir, "fpA")})
	if n := srv2.Warm(context.Background(), []string{"T1", "T4"}, nil, 2); n != 0 {
		t.Errorf("second warm ran %d, want 0 (all from disk)", n)
	}
	if st := srv2.Stats(); st.Runs != 0 || st.DiskLoads != 2 {
		t.Errorf("second warm stats = %+v, want Runs=0 DiskLoads=2", st)
	}
	// And the loaded entries actually serve.
	ts := newHTTPTestServer(t, srv2)
	resp, body := doGet(t, ts.URL+"/experiments/T4", "", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "answer") {
		t.Errorf("disk-warmed entry not served: %d %q", resp.StatusCode, body)
	}
	if runs.Load() != 2 {
		t.Errorf("serving disk-warmed entries re-ran (runs=%d, want 2)", runs.Load())
	}
}

func TestFingerprintChangeInvalidatesStore(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int32
	run := stubRun(&runs, 0)

	ts1 := newTestServer(t, Config{RunFunc: run, Store: openStore(t, dir, "fpA")})
	doGet(t, ts1.URL+"/experiments/T1", "", "")
	if runs.Load() != 1 {
		t.Fatalf("setup ran %d, want 1", runs.Load())
	}

	// A new binary/registry generation opens the same directory.
	srv2 := New(Config{RunFunc: run, Store: openStore(t, dir, "fpB")})
	ts2 := newHTTPTestServer(t, srv2)
	resp, _ := doGet(t, ts2.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 {
		t.Fatalf("get after invalidation: %d", resp.StatusCode)
	}
	if runs.Load() != 2 {
		t.Errorf("stale entry served across fingerprint change (runs=%d, want 2)", runs.Load())
	}
	if st := srv2.Stats(); st.DiskLoads != 0 {
		t.Errorf("disk_loads=%d after invalidation, want 0", st.DiskLoads)
	}
}

func TestPartialDiskEntrySetReadsAsMiss(t *testing.T) {
	// Negotiation needs all representations from one execution; if
	// one was evicted or corrupted, the whole key re-runs rather than
	// serving a mixed generation.
	dir := t.TempDir()
	var runs atomic.Int32
	run := stubRun(&runs, 0)
	store := openStore(t, dir, "fpA")

	ts1 := newTestServer(t, Config{RunFunc: run, Store: store})
	doGet(t, ts1.URL+"/experiments/T1", "", "")

	// Drop one of the three representations.
	if _, ok := store.Get(diskcache.Key{ID: "T1", Scale: "quick", ContentType: "text/csv"}); !ok {
		t.Fatal("csv entry not persisted")
	}
	if err := store.Purge(); err != nil {
		t.Fatal(err)
	}
	// Re-persist only two of three by round-tripping Get/Put.
	res := run(mustGetExp(t, "T1"), core.Request{Scale: core.Quick})
	reps, elapsed, err := renderResult(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, ct := range []string{ctText, ctJSON} {
		rp := reps[ct]
		if err := store.Put(storeKey("T1", core.Request{Scale: core.Quick}, ct),
			diskcache.Entry{ETag: rp.etag, Elapsed: elapsed, Body: rp.body}); err != nil {
			t.Fatal(err)
		}
	}
	runs.Store(0)

	srv2 := New(Config{RunFunc: run, Store: openStore(t, dir, "fpA")})
	ts2 := newHTTPTestServer(t, srv2)
	doGet(t, ts2.URL+"/experiments/T1", "", "")
	if runs.Load() != 1 {
		t.Errorf("partial disk set served without a re-run (runs=%d, want 1)", runs.Load())
	}
}

func TestMixedGenerationDiskSetReadsAsMiss(t *testing.T) {
	// Two writers racing on one directory can interleave their three
	// Puts (last writer wins per file). Each file validates alone, so
	// only the shared run stamp can reject the mixed set — without
	// it, a nondeterministic experiment's JSON could disagree with
	// its text rendering after a restart.
	dir := t.TempDir()
	var runs atomic.Int32
	store := openStore(t, dir, "fpA")

	// Two "executions" with different output bytes.
	mkReps := func(tag string) map[string]rep {
		res := stubRun(&runs, 0)(mustGetExp(t, "T1"), core.Request{Scale: core.Quick})
		res.Rec.Write([]byte(tag + "\n")) // perturb the rendered bytes
		reps, _, err := renderResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return reps
	}
	repsA, repsB := mkReps("run A"), mkReps("run B")

	put := func(reps map[string]rep, ct string) {
		t.Helper()
		rp := reps[ct]
		if err := store.Put(storeKey("T1", core.Request{Scale: core.Quick}, ct),
			diskcache.Entry{ETag: rp.etag, RunID: runIDOf(reps), Elapsed: time.Millisecond, Body: rp.body}); err != nil {
			t.Fatal(err)
		}
	}
	// Interleaving: A writes text, B overwrites json and csv.
	put(repsA, ctText)
	put(repsB, ctJSON)
	put(repsB, ctCSV)

	runs.Store(0)
	srv := New(Config{RunFunc: stubRun(&runs, 0), Store: store})
	ts := newHTTPTestServer(t, srv)
	doGet(t, ts.URL+"/experiments/T1", "", "")
	if runs.Load() != 1 {
		t.Errorf("mixed-generation disk set served without a re-run (runs=%d, want 1)", runs.Load())
	}
	if st := srv.Stats(); st.DiskLoads != 0 {
		t.Errorf("mixed-generation set counted as a disk load (%d)", st.DiskLoads)
	}

	// LoadResult applies the same guard on its text+json pair.
	store2 := openStore(t, t.TempDir(), "fpA")
	res := stubRun(&runs, 0)(mustGetExp(t, "T1"), core.Request{Scale: core.Quick})
	if err := StoreResult(store2, res); err != nil {
		t.Fatal(err)
	}
	rp := repsB[ctJSON]
	if err := store2.Put(storeKey("T1", core.Request{Scale: core.Quick}, ctJSON),
		diskcache.Entry{ETag: rp.etag, RunID: runIDOf(repsB), Elapsed: time.Millisecond, Body: rp.body}); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadResult(store2, mustGetExp(t, "T1"), core.Request{Scale: core.Quick}); ok {
		t.Error("LoadResult accepted a mixed-generation text+json pair")
	}
}

func mustGetExp(t *testing.T, id string) core.Experiment {
	t.Helper()
	e, ok := core.Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	return e
}

func TestWarmCanceledPromptly(t *testing.T) {
	var runs atomic.Int32
	srv := New(Config{RunFunc: stubRun(&runs, 0)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n := srv.Warm(ctx, []string{"T1", "T4"}, nil, 1); n != 0 {
		t.Errorf("canceled warm ran %d, want 0", n)
	}
	if runs.Load() != 0 {
		t.Errorf("canceled warm executed %d experiments", runs.Load())
	}
	// Canceled claims were released: a later request runs and serves.
	ts := newHTTPTestServer(t, srv)
	resp, body := doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "answer") {
		t.Errorf("request after canceled warm: %d %q", resp.StatusCode, body)
	}
	if runs.Load() != 1 {
		t.Errorf("request after canceled warm ran %d, want 1", runs.Load())
	}
}

func TestHealthzCounters(t *testing.T) {
	var runs atomic.Int32
	srv := New(Config{RunFunc: stubRun(&runs, 0)})
	ts := newHTTPTestServer(t, srv)
	doGet(t, ts.URL+"/experiments/T1", "", "")
	doGet(t, ts.URL+"/experiments/T1", "", "")
	resp, body := doGet(t, ts.URL+"/healthz", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if !strings.Contains(body, "ok runs=1 mem_hits=1 disk_loads=0 disk_errs=0") {
		t.Errorf("healthz counters = %q", body)
	}
}

// TestStoreLoadResultRoundTrip covers the charhpc path: a Result
// persisted with StoreResult and reconstructed with LoadResult
// re-renders every representation byte-identically (ETags included),
// via report.Rebuild.
func TestStoreLoadResultRoundTrip(t *testing.T) {
	store := openStore(t, t.TempDir(), "fpA")
	var runs atomic.Int32
	res := stubRun(&runs, 2*time.Millisecond)(mustGetExp(t, "T1"), core.Request{Scale: core.Quick})
	if err := StoreResult(store, res); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}

	got, ok := LoadResult(store, mustGetExp(t, "T1"), core.Request{Scale: core.Quick})
	if !ok {
		t.Fatal("LoadResult missed a stored result")
	}
	if got.Elapsed != res.Elapsed {
		t.Errorf("elapsed %v, want %v", got.Elapsed, res.Elapsed)
	}
	if got.Rec.Text() != res.Rec.Text() {
		t.Errorf("text round trip:\n got %q\nwant %q", got.Rec.Text(), res.Rec.Text())
	}
	wantReps, _, err := renderResult(res)
	if err != nil {
		t.Fatal(err)
	}
	gotReps, _, err := renderResult(got)
	if err != nil {
		t.Fatal(err)
	}
	for _, ct := range offered {
		if string(gotReps[ct].body) != string(wantReps[ct].body) || gotReps[ct].etag != wantReps[ct].etag {
			t.Errorf("representation %s not byte-identical after round trip", ct)
		}
	}

	// Unstored results miss.
	if _, ok := LoadResult(store, mustGetExp(t, "T4"), core.Request{Scale: core.Quick}); ok {
		t.Error("LoadResult hit an unstored experiment")
	}
}

// TestDiskWriteFailureStillServes: a read-only cache directory can't
// absorb writes, but the request still succeeds from memory and the
// failure is counted.
func TestDiskWriteFailureStillServes(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir, "fpA")
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Skipf("cannot make dir read-only: %v", err)
	}
	defer os.Chmod(dir, 0o755)
	// Root (CI containers) bypasses permission bits; the failure
	// can't be injected there.
	if f, err := os.CreateTemp(dir, "probe-*"); err == nil {
		f.Close()
		os.Remove(f.Name())
		os.Chmod(dir, 0o755)
		t.Skip("permissions not enforced for this user (running as root)")
	}

	var runs atomic.Int32
	srv := New(Config{RunFunc: stubRun(&runs, 0), Store: store})
	ts := newHTTPTestServer(t, srv)
	resp, _ := doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 {
		t.Fatalf("get with failing store: %d", resp.StatusCode)
	}
	if st := srv.Stats(); st.DiskErrs == 0 {
		t.Error("failed disk writes not counted")
	}
}

// TestNewExperimentIDsFlowThroughCache asserts the registry is the
// single source of truth end to end: an experiment family added to
// internal/core (here M5/M6, the NUMA placement experiments) is
// listed, served, disk-persisted, and replayed across a restart with
// no serve- or cache-layer changes — and, because core.Fingerprint()
// hashes the registry shape, a store written before the family existed
// could never be replayed into it.
func TestNewExperimentIDsFlowThroughCache(t *testing.T) {
	dir := t.TempDir()
	fp := core.Fingerprint()

	srv1 := New(Config{Store: openStore(t, dir, fp)}) // real core.Run
	ts1 := newHTTPTestServer(t, srv1)
	for _, id := range []string{"M5", "M6"} {
		resp, body := doGet(t, ts1.URL+"/experiments/"+id, "application/json", "")
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %d %s", id, resp.StatusCode, body)
		}
		if !strings.Contains(body, "NUMA") {
			t.Errorf("%s body does not look like a NUMA experiment: %.80q", id, body)
		}
	}
	if st := srv1.Stats(); st.Runs != 2 || st.DiskLoads != 0 {
		t.Fatalf("cold stats = %+v, want Runs=2 DiskLoads=0", st)
	}
	etag1 := func(id string) string {
		resp, _ := doGet(t, ts1.URL+"/experiments/"+id, "application/json", "")
		return resp.Header.Get("ETag")
	}

	srv2 := New(Config{Store: openStore(t, dir, fp)})
	ts2 := newHTTPTestServer(t, srv2)
	for _, id := range []string{"M5", "M6"} {
		resp, _ := doGet(t, ts2.URL+"/experiments/"+id, "application/json", "")
		if resp.StatusCode != 200 {
			t.Fatalf("%s after restart: %d", id, resp.StatusCode)
		}
		if got := resp.Header.Get("ETag"); got != etag1(id) {
			t.Errorf("%s ETag changed across restart: %q vs %q", id, got, etag1(id))
		}
	}
	if st := srv2.Stats(); st.Runs != 0 || st.DiskLoads != 2 {
		t.Errorf("restart stats = %+v, want Runs=0 DiskLoads=2 (fingerprint-valid replay)", st)
	}
}
