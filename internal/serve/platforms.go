// The platform resource: discovery of every platform the service can
// model (GET /platforms, GET /platforms/{name}) and registration of
// user-defined machines as data (POST /platforms). A registered custom
// is a first-class platform — it resolves through the same
// cluster.Lookup, carries the same structure-derived capability tags,
// and qualifies the same (id, scale, platform) cache keys as a preset,
// under its content-hash name custom-<hash12>.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/report"
)

// DefaultMaxPlatformBody bounds POST /platforms request bodies when
// Config leaves MaxPlatformBody 0. A platform spec is a page of JSON;
// a megabyte is generous.
const DefaultMaxPlatformBody = 1 << 20

// platformInfo is one row of the platform listing: identity, the
// structure-derived capability tags, and the experiments the platform
// can answer — computed from the same Needs masks core enforces, so
// the listing can never advertise a pair the service would reject.
type platformInfo struct {
	Name        string   `json:"name"`
	Kind        string   `json:"kind"` // "preset" or "custom"
	Label       string   `json:"label,omitempty"`
	Topology    string   `json:"topology"`
	Caps        []string `json:"caps"`
	Experiments []string `json:"experiments"`
}

// infoFor builds the listing row for one resolvable platform.
func infoFor(name string) (platformInfo, bool) {
	m, ok := cluster.Lookup(name)
	if !ok {
		return platformInfo{}, false
	}
	kind := "preset"
	label := ""
	if cluster.IsCustomName(name) {
		kind = "custom"
		if s, ok := cluster.CustomSpec(name); ok {
			label = s.Label
		}
	}
	caps := m.Caps().List()
	if caps == nil {
		caps = []string{}
	}
	var exps []string
	for _, e := range core.All() {
		if !e.NoPlatform && m.Has(e.Needs) {
			exps = append(exps, e.ID)
		}
	}
	if exps == nil {
		exps = []string{}
	}
	return platformInfo{
		Name:        name,
		Kind:        kind,
		Label:       label,
		Topology:    m.Topo.String(),
		Caps:        caps,
		Experiments: exps,
	}, true
}

// platformList builds the full listing: presets in registry order,
// then customs in name order.
func platformList() []platformInfo {
	names := append(cluster.Names(), cluster.CustomNames()...)
	out := make([]platformInfo, 0, len(names))
	for _, n := range names {
		if info, ok := infoFor(n); ok {
			out = append(out, info)
		}
	}
	return out
}

// handlePlatformList serves the platform listing in the negotiated
// content type. Unlike the experiment listing the body is built per
// request — registrations change it — but it still carries a strong
// ETag so pollers revalidate cheaply.
func (s *Server) handlePlatformList(w http.ResponseWriter, r *http.Request) {
	ct := negotiate(r.Header.Get("Accept"))
	if ct == "" {
		writeError(w, r, http.StatusNotAcceptable, codeNotAcceptable,
			"acceptable types: text/plain, text/csv, application/json", "")
		return
	}
	list := platformList()
	var body []byte
	switch ct {
	case ctJSON:
		b, _ := json.Marshal(list)
		body = append(b, '\n')
	default:
		t := report.NewTable("platforms", "name", "kind", "topology", "caps", "experiments")
		for _, p := range list {
			caps := strings.Join(p.Caps, "+")
			if caps == "" {
				caps = "any"
			}
			t.AddRow(p.Name, p.Kind, p.Topology, caps, strings.Join(p.Experiments, ","))
		}
		rec := report.NewRecorder()
		t.Fprint(rec)
		if ct == ctCSV {
			var csvb strings.Builder
			rec.Document().CSV(&csvb)
			body = []byte(csvb.String())
		} else {
			body = rec.Bytes()
		}
	}
	etag := etagOf(body)
	w.Header().Set("Vary", "Accept")
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Write(body)
}

// platformDetail is the GET /platforms/{name} body: the listing row
// plus, for customs, the canonical spec the name hashes — what a
// client needs to re-register the identical machine elsewhere.
type platformDetail struct {
	platformInfo
	Spec json.RawMessage `json:"spec,omitempty"`
}

// handlePlatformGet serves one platform's detail as JSON.
func (s *Server) handlePlatformGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok := infoFor(name)
	if !ok {
		writeError(w, r, http.StatusNotFound, codeUnknownPlatform,
			fmt.Sprintf("unknown platform %q", name),
			"GET /platforms lists every preset and registered custom platform")
		return
	}
	d := platformDetail{platformInfo: info}
	if spec, ok := cluster.CustomSpec(name); ok {
		d.Spec = spec.Canonical()
	}
	b, _ := json.Marshal(d)
	w.Header().Set("Content-Type", ctJSON)
	w.Write(append(b, '\n'))
}

// registerResponse is the POST /platforms body: the canonical
// content-hash name plus the row a listing would show, so the client
// learns compatibility without a second round trip.
type registerResponse struct {
	platformInfo
	Existed bool `json:"existed"`
}

// handlePlatformRegister accepts one JSON platform spec, validates it
// through cluster.ParseSpec (the same Validate the presets pass), and
// registers it under its content-hash name. Registration is
// idempotent: re-POSTing the same machine — whatever the field order
// or formatting — answers 200 with the same name; a first sighting
// answers 201 + Location. Oversized bodies are cut off at
// MaxPlatformBody with 413 before parsing.
func (s *Server) handlePlatformRegister(w http.ResponseWriter, r *http.Request) {
	limit := s.cfg.MaxPlatformBody
	if limit <= 0 {
		limit = DefaultMaxPlatformBody
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.m.customRejected.Inc()
			writeError(w, r, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("platform spec exceeds the %d-byte limit", limit), "")
			return
		}
		s.m.customRejected.Inc()
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("reading request body: %v", err), "")
		return
	}
	spec, err := cluster.ParseSpec(body)
	if err != nil {
		s.m.customRejected.Inc()
		writeError(w, r, http.StatusBadRequest, codeInvalidPlatform, err.Error(),
			"see the bring-your-own-machine section of the README for the spec schema")
		return
	}
	name, existed := cluster.RegisterCustom(spec)
	if existed {
		s.m.customDuplicate.Inc()
	} else {
		s.m.customRegistered.Inc()
		s.persistPlatform(name, spec)
	}
	info, _ := infoFor(name)
	w.Header().Set("Content-Type", ctJSON)
	w.Header().Set("Location", "/platforms/"+name)
	if existed {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusCreated)
	}
	b, _ := json.Marshal(registerResponse{platformInfo: info, Existed: existed})
	w.Write(append(b, '\n'))
}

// persistPlatform writes a newly registered spec's canonical bytes to
// the platform dir, so a restarted daemon reloads it and its
// disk-cached results stay addressable. Best-effort, like the result
// store: a failed write is logged, the registration stands.
func (s *Server) persistPlatform(name string, spec *cluster.Spec) {
	if s.cfg.PlatformDir == "" {
		return
	}
	if err := os.MkdirAll(s.cfg.PlatformDir, 0o755); err != nil {
		s.accessLog.Error("platform dir create failed", "dir", s.cfg.PlatformDir, "error", err.Error())
		return
	}
	path := filepath.Join(s.cfg.PlatformDir, name+".json")
	if err := os.WriteFile(path, append(spec.Canonical(), '\n'), 0o644); err != nil {
		s.accessLog.Error("platform persist failed", "platform", name, "error", err.Error())
	}
}

// loadPlatformDir registers every *.json spec in the platform dir at
// startup — the daemon's preload path, and the other half of
// persistPlatform's restart round trip. Files are data, not truth: an
// unparseable spec is logged and skipped, never fatal, and the
// content-hash naming means a file registered under a stale filename
// still gets its correct canonical name.
func (s *Server) loadPlatformDir() int {
	if s.cfg.PlatformDir == "" {
		return 0
	}
	ents, err := os.ReadDir(s.cfg.PlatformDir)
	if err != nil {
		if !os.IsNotExist(err) {
			s.accessLog.Error("platform dir unreadable", "dir", s.cfg.PlatformDir, "error", err.Error())
		}
		return 0
	}
	n := 0
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		path := filepath.Join(s.cfg.PlatformDir, ent.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			s.accessLog.Error("platform file unreadable", "file", path, "error", err.Error())
			continue
		}
		spec, err := cluster.ParseSpec(b)
		if err != nil {
			s.accessLog.Error("platform file invalid", "file", path, "error", err.Error())
			continue
		}
		if _, existed := cluster.RegisterCustom(spec); !existed {
			n++
		}
	}
	return n
}
