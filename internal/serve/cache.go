package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
)

// key identifies one cached result: which experiment at which scale
// on which platform preset ("" = the experiment's default set).
type key struct {
	id  string
	req core.Request
}

// rep is one negotiated representation of a result: the rendered body
// and its strong ETag (hash of exactly those bytes).
type rep struct {
	body []byte
	etag string
}

// entry is one cache slot. done is closed when the fill completes;
// until then, requests for the same key wait on it instead of
// re-running the experiment. reps, elapsed and err are written before
// close(done) and never mutated after, so waiters read them without
// further locking.
type entry struct {
	done    chan struct{}
	reps    map[string]rep // content type → representation
	elapsed time.Duration
	err     error
}

// cache is the per-(id, scale, platform) result store with
// single-flight fills: a cold key requested by N goroutines triggers exactly one
// execution; the other N-1 wait on the winner's entry. Failed fills
// are not retained, so a later request retries.
//
// Custom-platform keys live in their own LRU namespace: completed
// entries whose platform is a custom-<hash> name count against
// maxCustom, and the least recently used is dropped past it. Preset
// and default-platform keys are never in that namespace, so a churn of
// hostile or throwaway custom registrations can fill only its own
// quota — it can never evict a preset result.
type cache struct {
	mu      sync.Mutex
	entries map[key]*entry

	// customOrder holds the completed custom-platform keys, least
	// recently used first; maxCustom bounds it (0 = unbounded).
	customOrder []key
	maxCustom   int

	// waits, when set, records how long hits blocked on an entry's
	// done channel: ~0 for filled entries, the remaining run time for
	// in-flight ones. Nil-safe (obs instruments no-op on nil).
	waits *obs.Histogram
}

func newCache(maxCustom int) *cache {
	return &cache{entries: map[key]*entry{}, maxCustom: maxCustom}
}

// noteCustom records a completed custom-platform entry as most
// recently used and evicts past the namespace quota. Only successful,
// finished entries are ever noted, so eviction never drops an
// in-flight fill out from under its waiters.
func (c *cache) noteCustom(k key) {
	if !cluster.IsCustomName(k.req.Platform) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, o := range c.customOrder {
		if o == k {
			c.customOrder = append(c.customOrder[:i], c.customOrder[i+1:]...)
			break
		}
	}
	c.customOrder = append(c.customOrder, k)
	if c.maxCustom <= 0 {
		return
	}
	for len(c.customOrder) > c.maxCustom {
		victim := c.customOrder[0]
		c.customOrder = c.customOrder[1:]
		delete(c.entries, victim)
	}
}

// get returns the entry for k, running fill exactly once if the key
// is cold no matter how many goroutines ask concurrently. hit reports
// whether the entry already existed (filled or in flight) — i.e. this
// call did not trigger the fill.
func (c *cache) get(k key, fill func() (map[string]rep, time.Duration, error)) (_ *entry, hit bool, _ error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.mu.Unlock()
		t0 := time.Now()
		<-e.done
		c.waits.ObserveSince(t0)
		if e.err != nil {
			return nil, true, e.err
		}
		c.noteCustom(k)
		return e, true, nil
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	c.mu.Unlock()

	e.reps, e.elapsed, e.err = safeFill(fill)
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, k)
		c.mu.Unlock()
	}
	close(e.done)
	if e.err != nil {
		return nil, false, e.err
	}
	c.noteCustom(k)
	return e, false, nil
}

// safeFill converts a panicking fill into an error, so the entry is
// always completed — a hung, never-closed done channel would block
// every future request for the key (net/http recovers handler panics
// and keeps the process serving).
func safeFill(fill func() (map[string]rep, time.Duration, error)) (reps map[string]rep, elapsed time.Duration, err error) {
	defer func() {
		if r := recover(); r != nil {
			reps, elapsed, err = nil, 0, fmt.Errorf("experiment run panicked: %v", r)
		}
	}()
	return fill()
}

// len reports the number of cached entries, in-flight fills included.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// claim reserves k if it is cold, returning the unfilled entry and
// true. A reserved entry behaves like an in-flight fill to get():
// concurrent requests wait on it. The caller must complete it with
// finish(). Used by warm-up to batch cold keys through one worker
// pool without losing the single-flight guarantee.
func (c *cache) claim(k key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return nil, false
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	return e, true
}

// finish completes a claimed entry, dropping it from the cache on
// error so later requests retry.
func (c *cache) finish(k key, e *entry, reps map[string]rep, elapsed time.Duration, err error) {
	e.reps, e.elapsed, e.err = reps, elapsed, err
	if err != nil {
		c.mu.Lock()
		delete(c.entries, k)
		c.mu.Unlock()
	}
	close(e.done)
	if err == nil {
		c.noteCustom(k)
	}
}
