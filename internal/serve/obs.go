// The service's observability surface: the metric instruments, the
// request middleware (request IDs, access logs, per-handler latency),
// and the GET /metrics, GET /debug/traces, and /debug/pprof handlers.
// Metric names and label sets are documented in this package's README;
// the CI smoke test greps them, so renames are breaking changes.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/diskcache"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// ctProm is the Prometheus text exposition content type.
const ctProm = "text/plain; version=0.0.4; charset=utf-8"

// telemetry bundles the server's instruments. All of them live in one
// obs.Registry (scraped by GET /metrics); the handles are cached here
// so hot paths skip the registry's name lookup.
type telemetry struct {
	reg *obs.Registry

	// Cache-tier counters: how each request's result was produced.
	runTotal  *obs.Counter // tier="run": experiment executions started
	memHits   *obs.Counter // tier="mem": answered by a warm/in-flight memory entry
	diskLoads *obs.Counter // tier="disk": cold keys filled from the disk store
	diskErrs  *obs.Counter // failed disk-store writes

	sfWait *obs.Histogram // time requests spent waiting on the single-flight entry

	warmPlanned   *obs.Gauge // warm-up jobs planned (experiments × platforms, compatible)
	warmCompleted *obs.Gauge // warm-up jobs resolved (loaded, run, or canceled)
	warmRunning   *obs.Gauge // 1 while a Warm call is in flight

	// Async job counters (POST /runs): submissions and terminal states.
	jobsSubmitted *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsCanceled  *obs.Counter
	jobEvents     *obs.Counter // progress events appended across all job logs

	// Custom-platform registration counters (POST /platforms).
	customRegistered *obs.Counter // state="registered": first sighting of a machine
	customDuplicate  *obs.Counter // state="duplicate": idempotent re-POST
	customRejected   *obs.Counter // state="rejected": invalid or oversized spec
}

// newTelemetry registers the server's instruments on reg and, when a
// disk store is configured, wires its operation metrics too.
func newTelemetry(reg *obs.Registry, store *diskcache.Store) *telemetry {
	m := &telemetry{reg: reg}
	tier := func(t string) *obs.Counter {
		return reg.Counter("charhpc_cache_requests_total",
			"results produced per cache tier (run = executed, mem = memory hit, disk = store load)",
			obs.L("tier", t))
	}
	m.runTotal = tier("run")
	m.memHits = tier("mem")
	m.diskLoads = tier("disk")
	m.diskErrs = reg.Counter("charhpc_cache_errors_total",
		"failed cache operations (the entry still serves from memory)", obs.L("tier", "disk"))
	m.sfWait = reg.Histogram("charhpc_singleflight_wait_seconds",
		"time requests waited on an in-flight or cached single-flight entry", nil)
	m.warmPlanned = reg.Gauge("charhpc_warmup_planned",
		"warm-up jobs planned (compatible experiment x platform pairs)")
	m.warmCompleted = reg.Gauge("charhpc_warmup_completed",
		"warm-up jobs resolved: loaded from disk, executed, or canceled")
	m.warmRunning = reg.Gauge("charhpc_warmup_running",
		"1 while a warm-up pass is in flight")
	jobState := func(st string) *obs.Counter {
		return reg.Counter("charhpc_jobs_total",
			"async run jobs by lifecycle edge (submitted) and terminal state (done, failed, canceled)",
			obs.L("state", st))
	}
	m.jobsSubmitted = jobState("submitted")
	m.jobsDone = jobState("done")
	m.jobsFailed = jobState("failed")
	m.jobsCanceled = jobState("canceled")
	m.jobEvents = reg.Counter("charhpc_job_events_total",
		"progress events appended across all job event logs")
	customState := func(st string) *obs.Counter {
		return reg.Counter("charhpc_custom_platforms",
			"custom-platform registrations by outcome (registered, duplicate, rejected)",
			obs.L("state", st))
	}
	m.customRegistered = customState("registered")
	m.customDuplicate = customState("duplicate")
	m.customRejected = customState("rejected")
	if store != nil {
		op := func(o string) *obs.Histogram {
			return reg.Histogram("charhpc_diskcache_op_seconds",
				"disk store operation latency", nil, obs.L("op", o))
		}
		by := func(o string) *obs.Counter {
			return reg.Counter("charhpc_diskcache_bytes_total",
				"result body bytes moved through the disk store", obs.L("op", o))
		}
		inval := func(reason string) *obs.Counter {
			return reg.Counter("charhpc_cache_invalidated_total",
				"disk entries invalidated, by reason (experiment = fingerprint delta, format = entry version, checksum = corruption)",
				obs.L("reason", reason))
		}
		store.SetMetrics(diskcache.Metrics{
			GetSeconds: op("get"),
			PutSeconds: op("put"),
			GetBytes:   by("get"),
			PutBytes:   by("put"),
			Evictions: reg.Counter("charhpc_diskcache_evictions_total",
				"disk store entry files evicted by the LRU byte budget"),
			InvalidatedExperiment: inval(diskcache.ReasonExperiment),
			InvalidatedFormat:     inval(diskcache.ReasonFormat),
			InvalidatedChecksum:   inval(diskcache.ReasonChecksum),
		})
	}
	return m
}

// registerScrapeGauges adds the computed-at-scrape gauges that need
// the fully built server: uptime, cache entry counts, build identity.
func (s *Server) registerScrapeGauges() {
	reg := s.m.reg
	reg.GaugeFunc("charhpc_uptime_seconds", "seconds since the server was built",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("charhpc_cache_entries", "entries per cache tier",
		func() float64 { return float64(s.cache.len()) }, obs.L("tier", "mem"))
	if s.cfg.Store != nil {
		reg.GaugeFunc("charhpc_cache_entries", "entries per cache tier",
			func() float64 { return float64(s.cfg.Store.Len()) }, obs.L("tier", "disk"))
	}
	reg.GaugeFunc("charhpc_build_info", "constant 1, labeled with the registry fingerprint",
		func() float64 { return 1 }, obs.L("fingerprint", s.fp))
	reg.GaugeFunc("charhpc_jobs_active", "async run jobs currently executing",
		func() float64 { return float64(s.jobs.Counts()[jobs.Running]) })
	reg.GaugeFunc("charhpc_jobs_queued", "async run jobs waiting for a worker slot",
		func() float64 { return float64(s.jobs.Counts()[jobs.Pending]) })
}

// Registry returns the server's metric registry, so embedding binaries
// can add their own instruments to the same GET /metrics scrape.
func (s *Server) Registry() *obs.Registry { return s.m.reg }

// Traces returns the server's trace ring — the last N completed run
// traces, newest first. GET /debug/traces renders the same data.
func (s *Server) Traces(n int) []*obs.Span { return s.traces.Recent(n) }

// handleMetrics serves the Prometheus text exposition of every
// registered instrument.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ctProm)
	s.m.reg.WritePrometheus(w)
}

// handleTraces serves the last N run traces as a JSON array, newest
// first. ?n= bounds the count (default: the ring size); values above
// the ring capacity are clamped rather than rejected — the ring can
// never hold more anyway.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i < 1 {
			writeError(w, r, http.StatusBadRequest, codeBadRequest,
				fmt.Sprintf("bad n %q (want a positive integer)", v), "")
			return
		}
		if i > s.traceCap {
			i = s.traceCap
		}
		n = i
	}
	spans := s.traces.Recent(n)
	if spans == nil {
		spans = []*obs.Span{}
	}
	b, err := json.Marshal(spans)
	if err != nil {
		writeJSONInternal(w, err)
		return
	}
	w.Header().Set("Content-Type", ctJSON)
	w.Write(append(b, '\n'))
}

// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/ on
// the server's own mux (the daemon's -pprof flag; off by default — the
// profile endpoints can pause the process and belong behind an
// operator's explicit choice, never on an internet-facing default).
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// statusWriter captures the status code and body size a handler
// produced, for the request metrics and access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush passes the streaming capability through the wrapper — without
// it the SSE handler would see no http.Flusher and refuse to stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handlerLabel maps a request path to a bounded metric label — never
// the raw path, whose cardinality is caller-controlled.
func handlerLabel(path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	case path == "/debug/traces":
		return "debug_traces"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "pprof"
	case path == "/experiments":
		return "experiments_list"
	case strings.HasPrefix(path, "/experiments/"):
		return "experiment_get"
	case path == "/platforms":
		return "platforms"
	case strings.HasPrefix(path, "/platforms/"):
		return "platform_get"
	case path == "/runs":
		return "runs"
	case strings.HasPrefix(path, "/runs/") && strings.HasSuffix(path, "/events"):
		return "run_events"
	case strings.HasPrefix(path, "/runs/"):
		return "run_get"
	default:
		return "other"
	}
}

// observe records one finished request into the metrics and the
// access log.
func (s *Server) observe(r *http.Request, sw *statusWriter, rid string, t0 time.Time) {
	handler := handlerLabel(r.URL.Path)
	elapsed := time.Since(t0)
	s.m.reg.Counter("charhpc_requests_total", "HTTP requests served",
		obs.L("handler", handler), obs.L("code", strconv.Itoa(sw.code))).Inc()
	s.m.reg.Histogram("charhpc_request_seconds", "HTTP request latency", nil,
		obs.L("handler", handler)).Observe(elapsed.Seconds())
	s.accessLog.Info("request",
		"request_id", rid,
		"method", r.Method,
		"path", r.URL.RequestURI(),
		"status", sw.code,
		"bytes", sw.bytes,
		"elapsed_ms", float64(elapsed.Microseconds())/1e3,
		"remote", r.RemoteAddr,
	)
}
