// The async run surface: POST /runs submits an experiment execution
// as a job and returns 202 immediately; GET /runs/{job}/events streams
// its progress as Server-Sent Events while the run is still going.
//
// Event sources are the instrumentation the run already produces:
// core.Run's span tree emits a "phase" event as each probe phase or
// per-platform pass opens and closes, and report.Recorder's section
// tee emits a "section" event as each table/figure completes. The
// terminal event carries the result's strong ETags, so a client hands
// off to the (now cached) synchronous GET /experiments/{id} — async
// jobs fill the same single-flight memory/disk cache path as blocking
// requests, so a job and a GET for the same (id, scale, platform)
// coalesce into one execution.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/report"
)

// ctSSE is the Server-Sent Events content type.
const ctSSE = "text/event-stream"

// JobRegistry exposes the server's job table, so embedding binaries
// can inspect or submit jobs without going through HTTP.
func (s *Server) JobRegistry() *jobs.Registry { return s.jobs }

// submitResponse is the 202 body for POST /runs.
type submitResponse struct {
	Job       string `json:"job"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// handleSubmitRun validates the request through the same
// parseRunRequest as the blocking GET — same checks, same order, same
// envelope codes; nothing is accepted that could never run — then
// submits the job and answers 202 with its ID and URLs.
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	e, req, ok := s.parseRunRequest(w, r, r.FormValue("id"), r.FormValue("scale"), r.FormValue("platform"))
	if !ok {
		return
	}

	j := s.jobs.Submit(
		jobs.Spec{Experiment: e.ID, Scale: req.Scale.String(), Platform: req.Platform},
		func(ctx context.Context, j *jobs.Job) jobs.Outcome {
			return s.runJob(ctx, j, e, req)
		})

	w.Header().Set("Content-Type", ctJSON)
	w.Header().Set("Location", "/runs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	b, _ := json.Marshal(submitResponse{
		Job:       j.ID,
		State:     string(j.State()),
		StatusURL: "/runs/" + j.ID,
		EventsURL: "/runs/" + j.ID + "/events",
	})
	w.Write(append(b, '\n'))
}

// runJob executes one job's experiment through the shared results
// cache: the fill coalesces with blocking requests and warm-up via
// single-flight, loads from the disk store when warm there, and
// writes fresh runs through — an async job leaves the cache exactly
// as a synchronous GET would, and the result bytes/ETags are
// byte-identical to the blocking path's. Only a fill this job owns
// produces live phase/section events; a coalesced wait on someone
// else's fill yields just the terminal event (tier "mem").
//
// Cancellation is checked at the edges: the shared fill itself is
// never abandoned (another waiter may need it), so a cancel mid-run
// detaches the job while the run completes into the cache.
func (s *Server) runJob(ctx context.Context, j *jobs.Job, e core.Experiment, req core.Request) jobs.Outcome {
	if err := ctx.Err(); err != nil {
		return jobs.Outcome{Err: err}
	}
	tier := "run"
	ent, hit, err := s.cache.get(key{e.ID, req}, func() (map[string]rep, time.Duration, error) {
		reps, elapsed, t, err := s.fill(e, req, jobHooks(j))
		tier = t
		return reps, elapsed, err
	})
	if hit {
		tier = "mem"
		s.m.memHits.Inc()
	}
	if err != nil {
		return jobs.Outcome{Err: err}
	}
	if err := ctx.Err(); err != nil {
		// Canceled mid-run: the result is cached for the next caller,
		// but this job ends canceled, not done.
		return jobs.Outcome{Err: err}
	}
	return jobs.Outcome{Data: map[string]string{
		"etag":            ent.reps[ctText].etag,
		"etag_csv":        ent.reps[ctCSV].etag,
		"etag_json":       ent.reps[ctJSON].etag,
		"elapsed_seconds": fmt.Sprintf("%.6f", ent.elapsed.Seconds()),
		"tier":            tier,
		"url":             "/experiments/" + e.ID + "?scale=" + req.Scale.String() + platformQuery(req),
	}}
}

// platformQuery renders the ?platform= suffix for a request's
// hand-off URL.
func platformQuery(req core.Request) string {
	if req.Platform == "" {
		return ""
	}
	return "&platform=" + req.Platform
}

// handleJobList serves the status of every retained job, newest
// first, as a JSON array.
func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	list := s.jobs.Jobs()
	if list == nil {
		list = []jobs.Status{}
	}
	b, err := json.Marshal(list)
	if err != nil {
		writeJSONInternal(w, err)
		return
	}
	w.Header().Set("Content-Type", ctJSON)
	w.Write(append(b, '\n'))
}

// jobFor resolves the {job} path value, answering the 404 itself.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	j, ok := s.jobs.Get(r.PathValue("job"))
	if !ok {
		writeError(w, r, http.StatusNotFound, codeUnknownJob,
			fmt.Sprintf("unknown job %q", r.PathValue("job")),
			"GET /runs lists the retained jobs")
	}
	return j, ok
}

// handleJobGet serves one job's status: state, timing, platform, and
// — once terminal — the result data (ETags, cache tier).
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	b, err := json.Marshal(j.Status())
	if err != nil {
		writeJSONInternal(w, err)
		return
	}
	w.Header().Set("Content-Type", ctJSON)
	w.Write(append(b, '\n'))
}

// handleJobCancel cancels a job (prompt in any state; see
// jobs.Job.Cancel) and returns its settled status.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	j.Cancel()
	b, _ := json.Marshal(j.Status())
	w.Header().Set("Content-Type", ctJSON)
	w.Write(append(b, '\n'))
}

// handleJobEvents streams a job's event log as Server-Sent Events:
// every logged event is replayed first (so a subscriber arriving
// after completion still gets the full, ordered stream), then live
// events as they land, ending with the terminal event. The event seq
// is the SSE event ID; a reconnecting client resumes where it left
// off via the standard Last-Event-ID header.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, codeInternal,
			"streaming unsupported by this connection", "")
		return
	}
	from := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			from = n + 1
		}
	}
	w.Header().Set("Content-Type", ctSSE)
	w.Header().Set("Cache-Control", "no-cache")
	// Tell buffering intermediaries (nginx and compatibles) to pass
	// each event through as it is flushed — a buffered progress stream
	// defeats its purpose. The shard router's proxy path honors the
	// same contract by flushing per chunk.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		evs, changed := j.EventsSince(from)
		for _, ev := range evs {
			from = ev.Seq + 1
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b)
			if ev.Terminal() {
				fl.Flush()
				return
			}
		}
		fl.Flush()
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// jobHooks builds the RunHooks that turn one run's instrumentation
// into the owning job's progress events: span transitions become
// "phase" events, completed report sections become "section" events,
// and the run's trace is stamped with the job ID so /debug/traces
// ties back to /runs/{id}.
func jobHooks(j *jobs.Job) core.RunHooks {
	return core.RunHooks{
		SpanAttrs: map[string]string{"job": j.ID},
		Section: func(sec report.Section) {
			j.Emit(jobs.EventSection, map[string]string{
				"title": sec.Title,
				"kind":  sec.Kind,
				"rows":  strconv.Itoa(len(sec.Rows)),
			})
		},
		SpanStarted: func(sp *obs.Span) {
			j.Emit(jobs.EventPhase, map[string]string{
				"name": sp.Name, "state": "start",
			})
		},
		SpanEnded: func(sp *obs.Span) {
			j.Emit(jobs.EventPhase, map[string]string{
				"name":            sp.Name,
				"state":           "end",
				"elapsed_seconds": fmt.Sprintf("%.6f", sp.Duration().Seconds()),
			})
		},
	}
}
