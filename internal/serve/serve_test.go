package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// doGet performs a GET with optional Accept and If-None-Match headers
// and returns the response with its body read.
func doGet(t *testing.T, url, accept, ifNoneMatch string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := doGet(t, ts.URL+"/healthz", "", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestListJSON(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := doGet(t, ts.URL+"/experiments", "application/json", "")
	if resp.StatusCode != 200 {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != ctJSON {
		t.Errorf("content type %q", got)
	}
	var list []listEntry
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(list) != len(core.All()) {
		t.Errorf("listed %d experiments, registry has %d", len(list), len(core.All()))
	}
	found := false
	for _, e := range list {
		if e.ID == "T1" && e.Kind == "table" && e.Title != "" {
			found = true
		}
	}
	if !found {
		t.Error("T1 missing from listing")
	}
}

func TestListTextAndCSV(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := doGet(t, ts.URL+"/experiments", "", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "== experiments ==") {
		t.Errorf("text list: %d %q", resp.StatusCode, body[:min(len(body), 80)])
	}
	resp, body = doGet(t, ts.URL+"/experiments", "text/csv", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "id,kind,title") {
		t.Errorf("csv list: %d %q", resp.StatusCode, body[:min(len(body), 80)])
	}
}

func TestGetTextDefault(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 {
		t.Fatalf("get T1: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != ctText {
		t.Errorf("content type %q", got)
	}
	if !strings.Contains(body, "ib-8n") {
		t.Errorf("T1 text missing platform rows: %q", body)
	}
	if resp.Header.Get("ETag") == "" {
		t.Error("no ETag on result")
	}
	if resp.Header.Get("X-Experiment-Elapsed") == "" {
		t.Error("no elapsed header")
	}
}

func TestGetNegotiation(t *testing.T) {
	ts := newTestServer(t, Config{})

	resp, body := doGet(t, ts.URL+"/experiments/T1?scale=quick", "application/json", "")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != ctJSON {
		t.Fatalf("json get: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var doc resultJSON
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad result JSON: %v", err)
	}
	if doc.ID != "T1" || doc.Scale != "quick" || len(doc.Sections) == 0 {
		t.Errorf("result JSON wrong: id=%s scale=%s sections=%d", doc.ID, doc.Scale, len(doc.Sections))
	}
	if len(doc.Sections[0].Rows) == 0 {
		t.Error("result JSON has no rows")
	}

	resp, body = doGet(t, ts.URL+"/experiments/T1", "text/csv", "")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != ctCSV {
		t.Fatalf("csv get: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "# ") || !strings.Contains(body, ",") {
		t.Errorf("csv body looks wrong: %q", body[:min(len(body), 120)])
	}

	// q-values: prefer csv over plain when the client says so.
	resp, _ = doGet(t, ts.URL+"/experiments/T1", "text/plain;q=0.3, text/csv", "")
	if resp.Header.Get("Content-Type") != ctCSV {
		t.Errorf("q-value negotiation chose %q, want csv", resp.Header.Get("Content-Type"))
	}

	// Wildcard falls back to the server preference, text/plain.
	resp, _ = doGet(t, ts.URL+"/experiments/T1", "*/*", "")
	if resp.Header.Get("Content-Type") != ctText {
		t.Errorf("*/* chose %q, want text", resp.Header.Get("Content-Type"))
	}

	// Nothing acceptable -> 406.
	resp, _ = doGet(t, ts.URL+"/experiments/T1", "image/png", "")
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Errorf("image/png got %d, want 406", resp.StatusCode)
	}
}

func TestETagRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := doGet(t, ts.URL+"/experiments/T4", "application/json", "")
	if resp.StatusCode != 200 {
		t.Fatalf("get: %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("ETag not a quoted strong validator: %q", etag)
	}

	// Matching If-None-Match -> 304 with no body, ETag still present.
	resp, body = doGet(t, ts.URL+"/experiments/T4", "application/json", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match match got %d, want 304", resp.StatusCode)
	}
	if body != "" {
		t.Errorf("304 carried a body: %q", body)
	}
	if resp.Header.Get("ETag") != etag {
		t.Errorf("304 lost the ETag")
	}

	// If-None-Match uses weak comparison: a weakened validator with
	// the same opaque tag still revalidates (RFC 9110 §13.1.2).
	resp, _ = doGet(t, ts.URL+"/experiments/T4", "application/json", "W/"+etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("weak If-None-Match got %d, want 304", resp.StatusCode)
	}

	// A stale validator still gets the full response.
	resp, body = doGet(t, ts.URL+"/experiments/T4", "application/json", `"deadbeef"`)
	if resp.StatusCode != 200 || body == "" {
		t.Errorf("stale If-None-Match got %d", resp.StatusCode)
	}

	// Different representations have different ETags.
	respText, _ := doGet(t, ts.URL+"/experiments/T4", "text/plain", "")
	if respText.Header.Get("ETag") == etag {
		t.Error("text and JSON share an ETag")
	}

	// A repeat request is a cache hit with the same validator.
	resp, _ = doGet(t, ts.URL+"/experiments/T4", "application/json", "")
	if resp.Header.Get("ETag") != etag {
		t.Error("cached result changed its ETag")
	}
}

func TestUnknownExperiment404(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, _ := doGet(t, ts.URL+"/experiments/Z9", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown ID got %d, want 404", resp.StatusCode)
	}
}

func TestBadScale400(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, _ := doGet(t, ts.URL+"/experiments/T1?scale=huge", "", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scale got %d, want 400", resp.StatusCode)
	}
}

func TestScaleLimit403(t *testing.T) {
	// Default config limits the server to quick scale.
	ts := newTestServer(t, Config{})
	resp, body := doGet(t, ts.URL+"/experiments/T1?scale=full", "", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("full on quick-limited server got %d, want 403: %s", resp.StatusCode, body)
	}
}

// stubRun returns a RunFunc that counts executions and sleeps long
// enough for concurrent requests to pile onto a cold cache entry.
func stubRun(runs *atomic.Int32, delay time.Duration) func(core.Experiment, core.Request) core.Result {
	return func(e core.Experiment, r core.Request) core.Result {
		runs.Add(1)
		time.Sleep(delay)
		rec := report.NewRecorder()
		tbl := report.NewTable("stub", "k", "v")
		tbl.AddRow("answer", 42)
		tbl.Fprint(rec)
		return core.Result{Experiment: e, Req: r, Rec: rec, Elapsed: delay}
	}
}

func TestSingleFlight(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 50*time.Millisecond)})

	const clients = 12
	etags := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := doGet(t, ts.URL+"/experiments/T1", "", "")
			if resp.StatusCode != 200 || !strings.Contains(body, "answer") {
				t.Errorf("client %d: %d %q", i, resp.StatusCode, body)
			}
			etags[i] = resp.Header.Get("ETag")
		}(i)
	}
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Errorf("cold cache ran the experiment %d times, want exactly 1", got)
	}
	for i := 1; i < clients; i++ {
		if etags[i] != etags[0] {
			t.Errorf("client %d saw a different ETag", i)
		}
	}

	// Distinct scales are distinct cache keys... but full is limited;
	// a second id instead.
	doGet(t, ts.URL+"/experiments/T4", "", "")
	if got := runs.Load(); got != 2 {
		t.Errorf("second id reused the first id's cache entry (runs=%d)", got)
	}
}

func TestFailedRunNotCached(t *testing.T) {
	var runs atomic.Int32
	fail := true
	var mu sync.Mutex
	cfg := Config{RunFunc: func(e core.Experiment, req core.Request) core.Result {
		runs.Add(1)
		mu.Lock()
		f := fail
		mu.Unlock()
		r := core.Run(e, req)
		if f {
			r.Err = io.ErrUnexpectedEOF
		}
		return r
	}}
	ts := newTestServer(t, cfg)

	resp, _ := doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed run got %d, want 500", resp.StatusCode)
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	resp, _ = doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 {
		t.Errorf("retry after failure got %d, want 200", resp.StatusCode)
	}
	if runs.Load() != 2 {
		t.Errorf("expected the failure not to be cached (runs=%d)", runs.Load())
	}
}

func TestPanickingRunDoesNotWedgeCache(t *testing.T) {
	// A fill that panics must complete the cache entry (as an error)
	// rather than leaving every future request blocked on it.
	var runs atomic.Int32
	cfg := Config{RunFunc: func(e core.Experiment, req core.Request) core.Result {
		if runs.Add(1) == 1 {
			panic("experiment blew up")
		}
		return core.Run(e, req)
	}}
	ts := newTestServer(t, cfg)

	resp, body := doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(body, "panicked") {
		t.Fatalf("panicking run got %d %q, want 500 mentioning the panic", resp.StatusCode, body)
	}
	// The failed fill was dropped, so a retry runs and succeeds.
	resp, _ = doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 {
		t.Errorf("request after panic got %d, want 200", resp.StatusCode)
	}
}

func TestWarmSurvivesPanicAndSparseStubs(t *testing.T) {
	// A panicking run during warm-up must not kill the process, and a
	// stub RunFunc that doesn't echo back Result.Experiment must
	// still land in the right cache slot.
	var runs atomic.Int32
	srv := New(Config{RunFunc: func(e core.Experiment, req core.Request) core.Result {
		if runs.Add(1) == 1 {
			panic("warm-up blew up")
		}
		rec := report.NewRecorder()
		tbl := report.NewTable("sparse", "k", "v")
		tbl.AddRow("answer", 42)
		tbl.Fprint(rec)
		return core.Result{Rec: rec} // no Experiment/Request stamped
	}})
	// One worker makes the panicking run deterministic: it is T1's.
	if n := srv.Warm(context.Background(), []string{"T1", "T4"}, nil, 1); n != 2 {
		t.Errorf("Warm ran %d, want 2", n)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// T4's sparse-stub result was cached under the right key.
	resp, body := doGet(t, ts.URL+"/experiments/T4", "", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "answer") {
		t.Errorf("sparse-stub warm result not served: %d %q", resp.StatusCode, body)
	}
	// T1's panicking fill was dropped; the retry runs the stub again.
	resp, body = doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "answer") {
		t.Errorf("retry after warm panic: %d %q", resp.StatusCode, body)
	}
	// The envelope identity comes from the job, not the stub.
	_, jbody := doGet(t, ts.URL+"/experiments/T4", "application/json", "")
	var doc resultJSON
	if err := json.Unmarshal([]byte(jbody), &doc); err != nil {
		t.Fatalf("bad result JSON: %v", err)
	}
	if doc.ID != "T4" || doc.Scale != "quick" {
		t.Errorf("envelope identity = %s/%s, want T4/quick", doc.ID, doc.Scale)
	}
}

func TestWarmFillsCache(t *testing.T) {
	srv := New(Config{})
	n := srv.Warm(context.Background(), []string{"T1", "T4"}, nil, 2)
	if n != 2 {
		t.Errorf("Warm ran %d, want 2", n)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 {
		t.Fatalf("warmed get: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "ib-8n") {
		t.Errorf("warmed body is not the real T1 output: %q", body[:min(len(body), 80)])
	}

	// Re-warming the same ids is a no-op.
	if n := srv.Warm(context.Background(), []string{"T1", "T4"}, nil, 2); n != 0 {
		t.Errorf("re-warm ran %d experiments, want 0", n)
	}
}

func TestWarmUsesCustomRunFunc(t *testing.T) {
	// A custom RunFunc (limits, instrumentation, stubs) must produce
	// the warmed results too, so the cache never holds output the
	// wrapper didn't make.
	var runs atomic.Int32
	srv := New(Config{RunFunc: stubRun(&runs, 0)})
	if n := srv.Warm(context.Background(), []string{"T1", "T4"}, nil, 2); n != 2 {
		t.Errorf("Warm ran %d, want 2", n)
	}
	if runs.Load() != 2 {
		t.Errorf("warm-up drove the custom RunFunc %d times, want 2", runs.Load())
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "answer") {
		t.Errorf("warmed get did not serve the stub result: %d %q", resp.StatusCode, body)
	}
	if runs.Load() != 2 {
		t.Errorf("warmed request re-ran the experiment (runs=%d)", runs.Load())
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   string
	}{
		{"", ctText},
		{"text/plain", ctText},
		{"application/json", ctJSON},
		{"text/csv", ctCSV},
		{"*/*", ctText},
		{"text/*", ctText},
		{"application/*", ctJSON},
		{"text/html", ""},
		{"text/html, */*;q=0.1", ctText},
		{"text/csv;q=0.9, application/json", ctJSON},
		{"text/plain;q=0, application/json", ctJSON},
		{"application/json;q=0.4, text/csv;q=0.5", ctCSV},
		// Media types compare case-insensitively (RFC 9110 §12.5.1).
		{"Application/JSON", ctJSON},
		{"TEXT/CSV", ctCSV},
	}
	for _, c := range cases {
		if got := negotiate(c.accept); got != c.want {
			t.Errorf("negotiate(%q) = %q, want %q", c.accept, got, c.want)
		}
	}
}

func TestPlatformParam(t *testing.T) {
	ts := newTestServer(t, Config{})

	// Explicit platform restricts the output to that preset.
	resp, body := doGet(t, ts.URL+"/experiments/T1?platform=gige-8n", "", "")
	if resp.StatusCode != 200 {
		t.Fatalf("T1?platform=gige-8n: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "gige-8n") || strings.Contains(body, "ib-8n") {
		t.Errorf("platform-qualified T1 body wrong: %q", body)
	}
	etagPlat := resp.Header.Get("ETag")

	// The default-platform entry is a distinct cache key with a
	// distinct ETag (it renders the whole canonical set).
	resp, _ = doGet(t, ts.URL+"/experiments/T1", "", "")
	if resp.Header.Get("ETag") == etagPlat {
		t.Error("default and platform-qualified T1 share an ETag")
	}

	// The JSON envelope names the platform only when explicit.
	_, jbody := doGet(t, ts.URL+"/experiments/T1?platform=gige-8n", "application/json", "")
	var doc resultJSON
	if err := json.Unmarshal([]byte(jbody), &doc); err != nil {
		t.Fatalf("bad result JSON: %v", err)
	}
	if doc.Platform != "gige-8n" {
		t.Errorf("envelope platform = %q, want gige-8n", doc.Platform)
	}
	_, jbody = doGet(t, ts.URL+"/experiments/T1", "application/json", "")
	var defDoc resultJSON
	if err := json.Unmarshal([]byte(jbody), &defDoc); err != nil {
		t.Fatalf("bad result JSON: %v", err)
	}
	if defDoc.Platform != "" {
		t.Errorf("default envelope platform = %q, want empty", defDoc.Platform)
	}
	if strings.Contains(jbody, `"platform":`) {
		t.Error("default envelope carries a platform key (breaks pre-axis byte compatibility)")
	}
}

func TestPlatformParam400(t *testing.T) {
	ts := newTestServer(t, Config{})
	// The error code, not the message prose, is the contract clients
	// branch on: each platform failure class draws its own.
	cases := []struct {
		path string
		code string
	}{
		// Unknown name.
		{"/experiments/T1?platform=cray-1", codeUnknownPlatform},
		// Known preset incompatible with the experiment (F1 needs a
		// multi-node fabric; smp-1n has one node).
		{"/experiments/F1?platform=smp-1n", codeIncompatiblePlatform},
		// Host-only experiments reject every explicit platform.
		{"/experiments/T2?platform=ib-8n", codeNoPlatformAxis},
	}
	for _, c := range cases {
		resp, body := doGet(t, ts.URL+c.path, "application/json", "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s got %d, want 400", c.path, resp.StatusCode)
			continue
		}
		env := decodeErrorEnvelope(t, body)
		if env.Code != c.code {
			t.Errorf("%s code = %q, want %q", c.path, env.Code, c.code)
		}
		if env.Error == "" || env.Hint == "" {
			t.Errorf("%s envelope missing message or hint: %+v", c.path, env)
		}
	}
	// Text clients see the same code in the one-line rendering.
	resp, body := doGet(t, ts.URL+"/experiments/T1?platform=cray-1", "", "")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "["+codeUnknownPlatform+"]") {
		t.Errorf("text error rendering got %d %q, want the [%s] code", resp.StatusCode, body, codeUnknownPlatform)
	}
	if !strings.HasPrefix(body, "error: ") {
		t.Errorf("text error rendering lost its prefix: %q", body)
	}
}

func TestPlatformKeysAreDistinctCacheSlots(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})
	doGet(t, ts.URL+"/experiments/T1", "", "")
	doGet(t, ts.URL+"/experiments/T1?platform=gige-8n", "", "")
	doGet(t, ts.URL+"/experiments/T1?platform=ib-8n", "", "")
	if got := runs.Load(); got != 3 {
		t.Errorf("three distinct platform keys ran %d times, want 3", got)
	}
	// Repeats hit the warm entries.
	doGet(t, ts.URL+"/experiments/T1?platform=gige-8n", "", "")
	if got := runs.Load(); got != 3 {
		t.Errorf("repeat platform request re-ran (runs=%d)", got)
	}
}

func TestListAdvertisesPlatforms(t *testing.T) {
	ts := newTestServer(t, Config{})
	_, body := doGet(t, ts.URL+"/experiments", "application/json", "")
	var list []listEntry
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	byID := map[string]listEntry{}
	for _, e := range list {
		byID[e.ID] = e
	}
	if got := byID["T1"].Platforms; len(got) != 6 {
		t.Errorf("T1 advertises %v, want all six presets", got)
	}
	if got := byID["M5"].Platforms; len(got) != 2 {
		t.Errorf("M5 advertises %v, want the two NUMA presets", got)
	}
	if got := byID["T2"].Platforms; got != nil {
		t.Errorf("host-only T2 advertises %v, want none", got)
	}
	for _, p := range byID["F1"].Platforms {
		if p == "smp-1n" || p == "fat-1n" {
			t.Errorf("F1 advertises single-node preset %s", p)
		}
	}
	// The text listing carries the platforms column too.
	_, tbody := doGet(t, ts.URL+"/experiments", "", "")
	if !strings.Contains(tbody, "platforms") || !strings.Contains(tbody, "gige-8n") {
		t.Errorf("text listing missing platform column: %q", tbody[:min(len(tbody), 200)])
	}
}

func TestWarmPlatformAxis(t *testing.T) {
	var runs atomic.Int32
	srv := New(Config{RunFunc: stubRun(&runs, 0)})
	// T1 warms on both axes; F1 is incompatible with smp-1n and must
	// be skipped there, not error the warm-up.
	n := srv.Warm(context.Background(), []string{"T1", "F1"}, []string{"", "gige-8n", "smp-1n"}, 2)
	want := 2 /* default */ + 2 /* gige */ + 1 /* smp: T1 only */
	if n != want {
		t.Errorf("Warm ran %d, want %d", n, want)
	}
	ts := newHTTPTestServer(t, srv)
	doGet(t, ts.URL+"/experiments/T1?platform=gige-8n", "", "")
	if got := runs.Load(); int(got) != want {
		t.Errorf("warmed platform entry re-ran (runs=%d, want %d)", got, want)
	}
}
