package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// metricValue extracts the sample value of the exactly matching series
// line (name + label set) from a Prometheus exposition body, or "".
func metricValue(body, series string) string {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest
		}
	}
	return ""
}

func TestMetricsEndpoint(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})

	doGet(t, ts.URL+"/experiments/T1", "", "") // cold: one run
	doGet(t, ts.URL+"/experiments/T1", "", "") // warm: one memory hit

	resp, body := doGet(t, ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != ctProm {
		t.Errorf("content type %q, want %q", got, ctProm)
	}
	for series, want := range map[string]string{
		`charhpc_cache_requests_total{tier="mem"}`:                    "1",
		`charhpc_cache_requests_total{tier="run"}`:                    "1",
		`charhpc_cache_errors_total{tier="disk"}`:                     "0",
		`charhpc_requests_total{code="200",handler="experiment_get"}`: "2",
		`charhpc_cache_entries{tier="mem"}`:                           "1",
	} {
		if got := metricValue(body, series); got != want {
			t.Errorf("%s = %q, want %q\n%s", series, got, want, body)
		}
	}
	// Histograms expose the full bucket/sum/count triple.
	for _, want := range []string{
		`charhpc_request_seconds_bucket{handler="experiment_get",le="+Inf"} 2`,
		`charhpc_request_seconds_count{handler="experiment_get"} 2`,
		`charhpc_singleflight_wait_seconds_count 1`,
		"# TYPE charhpc_request_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !regexp.MustCompile(`charhpc_build_info\{fingerprint="[0-9a-f]+"\} 1`).MatchString(body) {
		t.Errorf("exposition missing build_info:\n%s", body)
	}
	if metricValue(body, "charhpc_uptime_seconds") == "" {
		t.Error("exposition missing uptime gauge")
	}
}

func TestMetricsDisabled(t *testing.T) {
	ts := newTestServer(t, Config{DisableMetrics: true})
	resp, _ := doGet(t, ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled metrics endpoint: %d, want 404", resp.StatusCode)
	}
}

// TestDebugTraces drives a real core.Run (the default RunFunc) so the
// Recorder carries a span, then asserts /debug/traces returns it as a
// JSON tree, newest first.
func TestDebugTraces(t *testing.T) {
	ts := newTestServer(t, Config{})

	resp, body := doGet(t, ts.URL+"/debug/traces", "", "")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty ring: %d %q, want 200 []", resp.StatusCode, body)
	}

	doGet(t, ts.URL+"/experiments/T1", "", "")
	resp, body = doGet(t, ts.URL+"/debug/traces", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces: %d %s", resp.StatusCode, body)
	}
	var spans []struct {
		Name     string  `json:"name"`
		Elapsed  float64 `json:"elapsed_seconds"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children,omitempty"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Name != "T1" {
		t.Fatalf("spans = %+v, want one root named T1", spans)
	}
	if spans[0].Elapsed <= 0 {
		t.Errorf("root span has no duration: %+v", spans[0])
	}

	for _, bad := range []string{"?n=0", "?n=-1", "?n=x"} {
		if resp, _ := doGet(t, ts.URL+"/debug/traces"+bad, "", ""); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("traces%s: %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	ts := newTestServer(t, Config{})

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chose-this" {
		t.Errorf("echoed request id %q, want the caller's", got)
	}

	resp, _ = doGet(t, ts.URL+"/healthz", "", "")
	if got := resp.Header.Get("X-Request-ID"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("minted request id %q, want 16 hex chars", got)
	}
}

func TestHealthzEnriched(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})
	doGet(t, ts.URL+"/experiments/T1", "", "")
	_, body := doGet(t, ts.URL+"/healthz", "", "")
	for _, want := range []string{
		"ok runs=1 mem_hits=0 disk_loads=0 disk_errs=0", // legacy prefix: CI smoke parses it
		"fingerprint=", "uptime_seconds=", "mem_entries=1", "disk_entries=0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("healthz missing %q: %q", want, body)
		}
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var runs atomic.Int32
	ts := newTestServer(t, Config{
		RunFunc:   stubRun(&runs, 0),
		AccessLog: obs.NewLogger(&buf, obs.FormatJSON),
	})
	req, _ := http.NewRequest("GET", ts.URL+"/experiments/T1", nil)
	req.Header.Set("X-Request-ID", "rid-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log is not JSON: %v\n%q", err, line)
	}
	for k, want := range map[string]any{
		"msg": "request", "request_id": "rid-123",
		"method": "GET", "path": "/experiments/T1", "status": float64(200),
	} {
		if rec[k] != want {
			t.Errorf("access log %s = %v, want %v", k, rec[k], want)
		}
	}
	if rec["bytes"].(float64) <= 0 || rec["elapsed_ms"].(float64) < 0 {
		t.Errorf("access log sizes/timing: %v", rec)
	}
}

// TestPprofGated: the profile endpoints exist only after EnablePprof.
func TestPprofGated(t *testing.T) {
	srv := New(Config{})
	ts := newHTTPTestServer(t, srv)
	if resp, _ := doGet(t, ts.URL+"/debug/pprof/", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof on by default: %d", resp.StatusCode)
	}
	srv.EnablePprof()
	if resp, body := doGet(t, ts.URL+"/debug/pprof/", "", ""); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("pprof index after EnablePprof: %d", resp.StatusCode)
	}
}

// TestWarmupGauges: after a warm pass the planned/completed gauges
// agree and running has returned to zero.
func TestWarmupGauges(t *testing.T) {
	var runs atomic.Int32
	srv := New(Config{RunFunc: stubRun(&runs, 0)})
	srv.Warm(nil, []string{"T1", "T4"}, nil, 2)
	var buf bytes.Buffer
	srv.Registry().WritePrometheus(&buf)
	body := buf.String()
	for series, want := range map[string]string{
		"charhpc_warmup_planned":   "2",
		"charhpc_warmup_completed": "2",
		"charhpc_warmup_running":   "0",
	} {
		if got := metricValue(body, series); got != want {
			t.Errorf("%s = %q, want %q", series, got, want)
		}
	}
}
