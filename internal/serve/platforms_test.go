// Tests for the platform resource (GET/POST /platforms), the error
// envelope, the canonical request-validation order, and the custom
// platform's end-to-end path through the caches.
package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// serveCustomSpec is a fully capable user-defined machine: multi-node,
// memory hierarchy, NUMA — compatible with every platform-axis
// experiment.
const serveCustomSpec = `{
  "label": "serve-test quad",
  "topology": {"nodes": 4, "sockets_per_node": 2, "cores_per_socket": 4},
  "links": {
    "self":         {"latency_s": 1e-7, "overhead_s": 1e-7, "gap_s": 1e-8, "bandwidth_bytes_per_s": 12e9},
    "intra_socket": {"latency_s": 3e-7, "overhead_s": 2e-7, "gap_s": 2e-8, "bandwidth_bytes_per_s": 6e9},
    "intra_node":   {"latency_s": 6e-7, "overhead_s": 2e-7, "gap_s": 3e-8, "bandwidth_bytes_per_s": 4e9},
    "inter_node":   {"latency_s": 2e-5, "overhead_s": 1e-6, "gap_s": 1e-6, "bandwidth_bytes_per_s": 1.2e8}
  },
  "mem_bw_per_socket_bytes_per_s": 6.4e9,
  "mem_bw_per_core_bytes_per_s": 2.5e9,
  "flops_per_core": 9.6e9,
  "mem": {
    "name": "serve-test-mem",
    "levels": [
      {"name": "L1", "capacity_bytes": 32768, "latency_s": 1.2e-9},
      {"name": "L2", "capacity_bytes": 262144, "latency_s": 4.5e-9},
      {"name": "L3", "capacity_bytes": 8388608, "latency_s": 1.4e-8}
    ],
    "mem_latency_s": 7.5e-8,
    "tlb": {"entries": 512, "miss_cost_s": 2.2e-8},
    "page_bytes": 4096,
    "large_page_bytes": 2097152,
    "page_fault_cost_s": 1.5e-6,
    "numa": {"nodes": 2, "remote_latency_s": 1.25e-7, "remote_tlb_cost_s": 3e-8}
  }
}`

// serveNoMemSpec is multi-node but carries no memory hierarchy, so
// mem-model experiments (M1-M4) must reject it as incompatible.
const serveNoMemSpec = `{
  "label": "serve-test fabric only",
  "topology": {"nodes": 8, "sockets_per_node": 1, "cores_per_socket": 4},
  "links": {
    "self":         {"latency_s": 1e-7, "overhead_s": 1e-7, "gap_s": 1e-8, "bandwidth_bytes_per_s": 10e9},
    "intra_socket": {"latency_s": 3e-7, "overhead_s": 2e-7, "gap_s": 2e-8, "bandwidth_bytes_per_s": 5e9},
    "intra_node":   {"latency_s": 6e-7, "overhead_s": 2e-7, "gap_s": 3e-8, "bandwidth_bytes_per_s": 3e9},
    "inter_node":   {"latency_s": 5e-5, "overhead_s": 2e-6, "gap_s": 2e-6, "bandwidth_bytes_per_s": 1e8}
  },
  "mem_bw_per_socket_bytes_per_s": 5e9,
  "mem_bw_per_core_bytes_per_s": 2e9,
  "flops_per_core": 8e9
}`

func decodeErrorEnvelope(t *testing.T, body string) errorEnvelope {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("not an error envelope: %v (%q)", err, body)
	}
	return env
}

// doReq performs one request with an optional Accept header and body,
// returning the response with its body read.
func doReq(t *testing.T, method, url, accept, contentType, body string) (*http.Response, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func postSpec(t *testing.T, tsURL, spec string) (*http.Response, registerResponse) {
	t.Helper()
	resp, body := doReq(t, "POST", tsURL+"/platforms", "application/json", "application/json", spec)
	var reg registerResponse
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal([]byte(body), &reg); err != nil {
			t.Fatalf("bad register response: %v (%q)", err, body)
		}
	}
	return resp, reg
}

func TestPlatformRegisterLifecycle(t *testing.T) {
	t.Cleanup(cluster.PurgeCustoms)
	ts := newTestServer(t, Config{})

	resp, reg := postSpec(t, ts.URL, serveCustomSpec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first POST got %d, want 201", resp.StatusCode)
	}
	if !cluster.IsCustomName(reg.Name) || reg.Kind != "custom" || reg.Existed {
		t.Fatalf("register response wrong: %+v", reg)
	}
	if got := resp.Header.Get("Location"); got != "/platforms/"+reg.Name {
		t.Errorf("Location = %q, want /platforms/%s", got, reg.Name)
	}
	if len(reg.Caps) == 0 || len(reg.Experiments) == 0 {
		t.Errorf("register response missing caps or compatible experiments: %+v", reg)
	}

	// Re-POSTing the same machine — different formatting, same content —
	// is idempotent: 200, existed, the same content-hash name.
	reposted := strings.ReplaceAll(serveCustomSpec, "\n", " ")
	resp2, reg2 := postSpec(t, ts.URL, reposted)
	if resp2.StatusCode != http.StatusOK || !reg2.Existed || reg2.Name != reg.Name {
		t.Errorf("re-POST got %d existed=%v name=%q, want 200/true/%q",
			resp2.StatusCode, reg2.Existed, reg2.Name, reg.Name)
	}

	// The listing carries presets and the new custom, caps included.
	_, lbody := doGet(t, ts.URL+"/platforms", "application/json", "")
	var list []platformInfo
	if err := json.Unmarshal([]byte(lbody), &list); err != nil {
		t.Fatalf("bad platform listing: %v", err)
	}
	if len(list) != len(cluster.Names())+1 {
		t.Errorf("listing has %d platforms, want %d presets + 1 custom", len(list), len(cluster.Names()))
	}
	found := false
	for _, p := range list {
		if p.Name == reg.Name {
			found = true
			if p.Kind != "custom" || p.Label != "serve-test quad" {
				t.Errorf("custom listing row wrong: %+v", p)
			}
		}
		if p.Caps == nil || p.Experiments == nil {
			t.Errorf("listing row %s has null caps or experiments", p.Name)
		}
	}
	if !found {
		t.Errorf("custom %s missing from the listing", reg.Name)
	}

	// The detail view returns the canonical spec for re-registration.
	_, dbody := doGet(t, ts.URL+"/platforms/"+reg.Name, "application/json", "")
	var detail platformDetail
	if err := json.Unmarshal([]byte(dbody), &detail); err != nil {
		t.Fatalf("bad platform detail: %v", err)
	}
	if len(detail.Spec) == 0 {
		t.Error("custom detail carries no spec")
	}
	respec, err := cluster.ParseSpec(detail.Spec)
	if err != nil {
		t.Fatalf("detail spec does not re-parse: %v", err)
	}
	if respec.Name() != reg.Name {
		t.Errorf("detail spec re-registers as %q, want %q", respec.Name(), reg.Name)
	}

	// Preset details work too, without a spec.
	resp3, pbody := doGet(t, ts.URL+"/platforms/gige-8n", "application/json", "")
	if resp3.StatusCode != 200 || strings.Contains(pbody, `"spec"`) {
		t.Errorf("preset detail: %d %q", resp3.StatusCode, pbody)
	}

	// Unknown names 404 with the envelope code.
	resp4, ebody := doGet(t, ts.URL+"/platforms/custom-000000000000", "application/json", "")
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown platform detail got %d, want 404", resp4.StatusCode)
	}
	if env := decodeErrorEnvelope(t, ebody); env.Code != codeUnknownPlatform {
		t.Errorf("unknown platform detail code = %q", env.Code)
	}

	// healthz counts the registration.
	_, hbody := doGet(t, ts.URL+"/healthz", "", "")
	if !strings.Contains(hbody, "custom_platforms=1") {
		t.Errorf("healthz does not count the custom: %q", hbody)
	}
}

func TestPlatformRegisterRejects(t *testing.T) {
	t.Cleanup(cluster.PurgeCustoms)
	ts := newTestServer(t, Config{MaxPlatformBody: 256})

	// An invalid spec draws invalid_platform, not a bare 400.
	resp, body := doReq(t, "POST", ts.URL+"/platforms", "application/json", "application/json",
		`{"topology": {"nodes": 0}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec got %d, want 400", resp.StatusCode)
	}
	if env := decodeErrorEnvelope(t, body); env.Code != codeInvalidPlatform {
		t.Errorf("invalid spec code = %q, want %q", env.Code, codeInvalidPlatform)
	}

	// A body past MaxPlatformBody is cut off with 413 before parsing.
	big := `{"pad": "` + strings.Repeat("x", 512) + `"}`
	resp, body = doReq(t, "POST", ts.URL+"/platforms", "application/json", "application/json", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec got %d, want 413", resp.StatusCode)
	}
	if env := decodeErrorEnvelope(t, body); env.Code != codeBodyTooLarge {
		t.Errorf("oversized spec code = %q, want %q", env.Code, codeBodyTooLarge)
	}

	// Nothing slipped into the registry.
	if n := cluster.CustomCount(); n != 0 {
		t.Errorf("rejected specs registered %d platforms", n)
	}
}

// TestValidationOrderCanonical pins the one validation precedence every
// run entry point applies: experiment existence, then scale syntax,
// then the platform axis, then the server's scale limit. The blocking
// GET and the async POST /runs must draw identical codes from
// identical bad requests.
func TestValidationOrderCanonical(t *testing.T) {
	ts := newTestServer(t, Config{}) // quick-limited
	cases := []struct {
		name                string
		id, scale, platform string
		status              int
		code                string
	}{
		{"experiment before scale and platform", "Z9", "huge", "cray-1",
			http.StatusNotFound, codeUnknownExperiment},
		{"scale syntax before platform", "T1", "huge", "cray-1",
			http.StatusBadRequest, codeInvalidScale},
		{"platform before scale limit", "T1", "full", "cray-1",
			http.StatusBadRequest, codeUnknownPlatform},
		{"incompatibility before scale limit", "F1", "full", "smp-1n",
			http.StatusBadRequest, codeIncompatiblePlatform},
		{"scale limit last", "T1", "full", "gige-8n",
			http.StatusForbidden, codeScaleLimit},
		{"scale limit without platform", "T1", "full", "",
			http.StatusForbidden, codeScaleLimit},
	}
	for _, c := range cases {
		get := ts.URL + "/experiments/" + c.id + "?scale=" + c.scale + "&platform=" + c.platform
		post := ts.URL + "/runs?id=" + c.id + "&scale=" + c.scale + "&platform=" + c.platform
		for entry, u := range map[string]string{"GET": get, "POST /runs": post} {
			method := "GET"
			if entry != "GET" {
				method = "POST"
			}
			resp, body := doReq(t, method, u, "application/json", "", "")
			if resp.StatusCode != c.status {
				t.Errorf("%s, %s: status %d, want %d", c.name, entry, resp.StatusCode, c.status)
				continue
			}
			if env := decodeErrorEnvelope(t, body); env.Code != c.code {
				t.Errorf("%s, %s: code %q, want %q", c.name, entry, env.Code, c.code)
			}
		}
	}
}

func TestCustomPlatformServesResults(t *testing.T) {
	t.Cleanup(cluster.PurgeCustoms)
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})

	_, reg := postSpec(t, ts.URL, serveCustomSpec)
	_, noMem := postSpec(t, ts.URL, serveNoMemSpec)

	// A registered custom qualifies requests like a preset: a mem-model
	// experiment runs on the full machine...
	resp, jbody := doGet(t, ts.URL+"/experiments/M3?platform="+reg.Name, "application/json", "")
	if resp.StatusCode != 200 {
		t.Fatalf("M3 on %s: %d %s", reg.Name, resp.StatusCode, jbody)
	}
	var doc resultJSON
	if err := json.Unmarshal([]byte(jbody), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Platform != reg.Name {
		t.Errorf("envelope platform = %q, want %q", doc.Platform, reg.Name)
	}
	// ...and is a distinct cache key from the default entry.
	doGet(t, ts.URL+"/experiments/M3", "", "")
	if runs.Load() != 2 {
		t.Errorf("custom and default M3 share a cache slot (runs=%d, want 2)", runs.Load())
	}
	doGet(t, ts.URL+"/experiments/M3?platform="+reg.Name, "", "")
	if runs.Load() != 2 {
		t.Errorf("repeat custom request re-ran (runs=%d)", runs.Load())
	}

	// The mem-less custom is rejected for M3 — by capability, with the
	// same code a preset mismatch draws.
	resp, ebody := doGet(t, ts.URL+"/experiments/M3?platform="+noMem.Name, "application/json", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("M3 on mem-less custom got %d, want 400", resp.StatusCode)
	}
	if env := decodeErrorEnvelope(t, ebody); env.Code != codeIncompatiblePlatform {
		t.Errorf("mem-less custom code = %q, want %q", env.Code, codeIncompatiblePlatform)
	}
	// But a fabric experiment accepts it.
	resp, _ = doGet(t, ts.URL+"/experiments/F1?platform="+noMem.Name, "", "")
	if resp.StatusCode != 200 {
		t.Errorf("F1 on mem-less custom got %d, want 200", resp.StatusCode)
	}
}

func TestCustomCacheNamespaceEviction(t *testing.T) {
	t.Cleanup(cluster.PurgeCustoms)
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0), CustomCacheEntries: 1})

	_, regA := postSpec(t, ts.URL, serveCustomSpec)
	_, regB := postSpec(t, ts.URL, serveNoMemSpec)

	// Fill a default and a preset entry, then churn two custom keys
	// through a one-entry custom namespace.
	doGet(t, ts.URL+"/experiments/T1", "", "")
	doGet(t, ts.URL+"/experiments/T1?platform=gige-8n", "", "")
	doGet(t, ts.URL+"/experiments/T1?platform="+regA.Name, "", "")
	doGet(t, ts.URL+"/experiments/T1?platform="+regB.Name, "", "")
	if runs.Load() != 4 {
		t.Fatalf("setup ran %d, want 4", runs.Load())
	}

	// Preset and default entries were never the churn's victims.
	doGet(t, ts.URL+"/experiments/T1", "", "")
	doGet(t, ts.URL+"/experiments/T1?platform=gige-8n", "", "")
	if runs.Load() != 4 {
		t.Errorf("custom churn evicted a preset or default entry (runs=%d, want 4)", runs.Load())
	}
	// The most recent custom survived; the older one was evicted and
	// re-runs on demand.
	doGet(t, ts.URL+"/experiments/T1?platform="+regB.Name, "", "")
	if runs.Load() != 4 {
		t.Errorf("most recent custom entry was evicted (runs=%d, want 4)", runs.Load())
	}
	doGet(t, ts.URL+"/experiments/T1?platform="+regA.Name, "", "")
	if runs.Load() != 5 {
		t.Errorf("evicted custom entry did not re-run (runs=%d, want 5)", runs.Load())
	}
}

// TestPlatformDirRestartRoundTrip is the acceptance scenario for
// customs as durable platforms: a daemon that persisted a registered
// spec and its results serves the same custom-<hash> request after a
// restart from disk alone — same ETag, zero executions.
func TestPlatformDirRestartRoundTrip(t *testing.T) {
	t.Cleanup(cluster.PurgeCustoms)
	pdir, cdir := t.TempDir(), t.TempDir()
	var runs atomic.Int32
	run := stubRun(&runs, time.Millisecond)

	srv1 := New(Config{RunFunc: run, Store: openStore(t, cdir, "fpA"), PlatformDir: pdir})
	ts1 := newHTTPTestServer(t, srv1)
	_, reg := postSpec(t, ts1.URL, serveCustomSpec)
	resp, body1 := doGet(t, ts1.URL+"/experiments/M3?platform="+reg.Name, "application/json", "")
	if resp.StatusCode != 200 {
		t.Fatalf("first get: %d %s", resp.StatusCode, body1)
	}
	etag1 := resp.Header.Get("ETag")
	if runs.Load() != 1 {
		t.Fatalf("first daemon ran %d, want 1", runs.Load())
	}

	// "Restart": the in-process registry empties (a new process knows
	// nothing), then a fresh server reloads the platform dir.
	cluster.PurgeCustoms()
	srv2 := New(Config{RunFunc: run, Store: openStore(t, cdir, "fpA"), PlatformDir: pdir})
	ts2 := newHTTPTestServer(t, srv2)

	resp, body2 := doGet(t, ts2.URL+"/experiments/M3?platform="+reg.Name, "application/json", "")
	if resp.StatusCode != 200 {
		t.Fatalf("post-restart get: %d %s", resp.StatusCode, body2)
	}
	if body2 != body1 || resp.Header.Get("ETag") != etag1 {
		t.Error("restarted daemon served different bytes or ETag for the custom key")
	}
	if runs.Load() != 1 {
		t.Errorf("restart re-ran the custom-platform experiment (runs=%d, want 1)", runs.Load())
	}
	if st := srv2.Stats(); st.Runs != 0 || st.DiskLoads != 1 {
		t.Errorf("restart stats = %+v, want Runs=0 DiskLoads=1", st)
	}
	// The reloaded custom is listed again too.
	_, lbody := doGet(t, ts2.URL+"/platforms/"+reg.Name, "application/json", "")
	if !strings.Contains(lbody, reg.Name) {
		t.Errorf("reloaded custom missing from detail: %q", lbody)
	}
}

func TestListingLinksToPlatforms(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, _ := doGet(t, ts.URL+"/experiments", "application/json", "")
	if got := resp.Header.Get("Link"); !strings.Contains(got, "</platforms>") {
		t.Errorf("listing Link header = %q, want a /platforms link", got)
	}
}

func TestPlatformListTextAndETag(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := doGet(t, ts.URL+"/platforms", "", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "gige-8n") || !strings.Contains(body, "preset") {
		t.Errorf("text platform listing: %d %q", resp.StatusCode, body[:min(len(body), 120)])
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("platform listing has no ETag")
	}
	resp, _ = doGet(t, ts.URL+"/platforms", "", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation got %d, want 304", resp.StatusCode)
	}
}
