// The service's one error shape: every non-2xx response serve produces
// carries a machine-readable code alongside the human message, so
// clients branch on codes instead of substring-matching prose (which
// the tests now assert too). JSON clients get the structured envelope;
// text clients keep a one-line rendering of the same fields. The code
// vocabulary is part of the compatibility surface documented in this
// package's README — removing or renaming a code is a breaking change.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// The error-code vocabulary. Codes name the class of failure, not the
// HTTP status — a client retrying on invalid_scale is wrong whatever
// the status says.
const (
	codeNotAcceptable        = "not_acceptable"
	codeUnknownExperiment    = "unknown_experiment"
	codeInvalidScale         = "invalid_scale"
	codeScaleLimit           = "scale_limit"
	codeUnknownPlatform      = "unknown_platform"
	codeIncompatiblePlatform = "incompatible_platform"
	codeNoPlatformAxis       = "no_platform_axis"
	codeInvalidPlatform      = "invalid_platform"
	codeBodyTooLarge         = "body_too_large"
	codeUnknownJob           = "unknown_job"
	codeBadRequest           = "bad_request"
	codeRunFailed            = "run_failed"
	codeInternal             = "internal"
)

// Exported aliases for the envelope codes a fronting router (see
// internal/shard) branches on or re-emits. The unexported names stay
// the package-internal vocabulary; these are the compatibility
// surface a sibling package may depend on.
const (
	CodeUnknownExperiment = codeUnknownExperiment
	CodeUnknownPlatform   = codeUnknownPlatform
)

// APIError is one request-validation failure in the service's error
// vocabulary: the HTTP status, the stable machine-readable code, the
// human message, and an optional hint. It is the exported face of the
// envelope so a fronting router can validate requests locally and
// still produce byte-identical error responses (see CheckRunRequest
// and WriteAPIError).
type APIError struct {
	Status  int
	Code    string
	Message string
	Hint    string
}

// Error implements the error interface with the human message.
func (e *APIError) Error() string { return e.Message }

// WriteAPIError renders e exactly as serve's own handlers render the
// same failure — negotiated envelope, same codes, same bytes — so
// clients cannot tell a router-side rejection from a shard-side one.
func WriteAPIError(w http.ResponseWriter, r *http.Request, e *APIError) {
	writeError(w, r, e.Status, e.Code, e.Message, e.Hint)
}

// errorEnvelope is the JSON error body: the message, the stable code,
// and an optional hint pointing at the endpoint that resolves the
// failure.
type errorEnvelope struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	Hint  string `json:"hint,omitempty"`
}

// writeError renders one failure in the client's negotiated shape:
// the JSON envelope when the Accept header resolves to JSON, otherwise
// a one-line text rendering carrying the same code and hint. (CSV has
// no error shape; CSV clients read the text line.)
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg, hint string) {
	if negotiate(r.Header.Get("Accept")) == ctJSON {
		w.Header().Set("Content-Type", ctJSON)
		w.WriteHeader(status)
		b, _ := json.Marshal(errorEnvelope{Error: msg, Code: code, Hint: hint})
		w.Write(append(b, '\n'))
		return
	}
	w.Header().Set("Content-Type", ctText)
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	if hint != "" {
		fmt.Fprintf(w, "error: %s (%s) [%s]\n", msg, hint, code)
		return
	}
	fmt.Fprintf(w, "error: %s [%s]\n", msg, code)
}

// writeJSONInternal renders a marshal failure on an always-JSON
// endpoint (the job API) in the envelope, skipping negotiation — the
// response was going to be JSON regardless.
func writeJSONInternal(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", ctJSON)
	w.WriteHeader(http.StatusInternalServerError)
	b, _ := json.Marshal(errorEnvelope{Error: err.Error(), Code: codeInternal})
	w.Write(append(b, '\n'))
}

// platformError classifies a core platform-validation failure into the
// envelope's vocabulary via the typed sentinels, so every handler that
// calls CheckPlatform renders the same code for the same failure.
func platformError(err error) (status int, code, hint string) {
	switch {
	case errors.Is(err, core.ErrUnknownPlatform):
		return http.StatusBadRequest, codeUnknownPlatform,
			"GET /platforms lists every preset and registered custom platform"
	case errors.Is(err, core.ErrIncompatiblePlatform):
		return http.StatusBadRequest, codeIncompatiblePlatform,
			"GET /platforms/{name} lists the experiments a platform supports"
	case errors.Is(err, core.ErrNoPlatformAxis):
		return http.StatusBadRequest, codeNoPlatformAxis,
			"omit the platform parameter for this experiment"
	default:
		return http.StatusBadRequest, codeBadRequest, ""
	}
}
