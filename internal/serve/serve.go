// Package serve exposes the experiment registry over HTTP — the first
// layer of the system that faces traffic rather than a terminal.
//
// Endpoints:
//
//	GET /healthz                          liveness probe
//	GET /experiments                      registry listing (incl. valid platforms)
//	GET /experiments/{id}?scale=quick|full&platform=NAME
//	                                      one experiment's results
//
// The platform query parameter selects a preset from
// internal/cluster's registry; omitted, the experiment runs on its
// canonical platform set. Unknown or incompatible platform names are
// rejected with 400 before anything runs — the listing advertises the
// valid presets per experiment.
//
// Results are rendered in the content type negotiated via the Accept
// header — text/plain (the report table format), text/csv, or
// application/json (structured rows) — all three from a single cached
// execution per (id, scale, platform). Responses carry strong ETags
// and honor If-None-Match with 304; a cold key requested by N clients
// concurrently executes the experiment exactly once (single-flight).
//
// With a diskcache.Store configured, the in-memory cache is a
// write-through front for a disk-persistent one: cold keys load from
// disk before they run, fills persist atomically, and a restarted
// server serves previously cached results byte-identically (same
// ETags) without re-executing — see the README's persistence section.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/report"
)

// The three offered content types, in server preference order for
// wildcard Accept matches. Negotiation compares media types only;
// the charset parameter rides along on responses.
const (
	ctText = "text/plain; charset=utf-8"
	ctCSV  = "text/csv; charset=utf-8"
	ctJSON = "application/json"
)

var offered = []string{ctText, ctJSON, ctCSV}

// Config parameterizes a Server.
type Config struct {
	// ScaleLimit is the largest scale the server will run; requests
	// above it are rejected with 403. The zero value limits the
	// server to Quick; set Full to also allow paper-scale runs.
	ScaleLimit core.Scale

	// RunFunc executes one experiment request; nil means core.Run
	// (with live hooks on the async job path). Tests substitute it to
	// count or stub executions; a stubbed run produces no live
	// phase/section events, only the job's lifecycle ones.
	RunFunc func(core.Experiment, core.Request) core.Result

	// Jobs bounds how many async run jobs (POST /runs) execute
	// concurrently; 0 means jobs.DefaultWorkers. Queued jobs wait in
	// state "pending".
	Jobs int

	// JobsHistory bounds how many finished jobs GET /runs retains for
	// inspection; 0 means jobs.DefaultHistory.
	JobsHistory int

	// Store, when non-nil, persists filled cache entries to disk and
	// makes the in-memory cache a write-through front: a cold key
	// loads from the store before it runs, and every successful fill
	// is written back. The store must have been opened with
	// core.Fingerprint() so entries from other binaries or registry
	// shapes are rejected (see internal/diskcache).
	Store *diskcache.Store

	// Metrics, when non-nil, is the registry the server's instruments
	// live in — pass one to share a scrape with the embedding binary's
	// own metrics. Nil gets a private registry. GET /metrics always
	// serves the server's registry either way, unless DisableMetrics.
	Metrics *obs.Registry

	// DisableMetrics leaves GET /metrics unregistered (charhpcd
	// -metrics=false). Instruments still record; only the scrape
	// endpoint is withheld.
	DisableMetrics bool

	// AccessLog, when non-nil, receives one structured line per
	// request (request ID, method, path, status, bytes, latency).
	// Nil disables access logging; a nil *obs.Logger is also safe.
	AccessLog *obs.Logger

	// TraceCapacity bounds the ring of recent run traces served by
	// GET /debug/traces; 0 means DefaultTraceCapacity.
	TraceCapacity int

	// PlatformDir, when non-empty, is where custom platform specs
	// live: every *.json file in it is registered at startup, and
	// POST /platforms persists new registrations into it — so a
	// restarted daemon resolves the same custom-<hash> names and its
	// disk-cached custom results stay addressable.
	PlatformDir string

	// CustomCacheEntries bounds how many custom-platform results the
	// in-memory cache retains (its own LRU namespace — preset entries
	// are never evicted, however many customs churn). 0 means
	// DefaultCustomCacheEntries; negative means unbounded.
	CustomCacheEntries int

	// MaxPlatformBody bounds POST /platforms request bodies in bytes;
	// 0 means DefaultMaxPlatformBody.
	MaxPlatformBody int64
}

// DefaultCustomCacheEntries is the memory cache's custom-platform
// namespace quota when Config leaves it 0.
const DefaultCustomCacheEntries = 128

// DefaultTraceCapacity is the trace-ring size when Config leaves it 0.
const DefaultTraceCapacity = 32

// Job pool defaults, re-exported so binaries can use them as flag
// defaults without importing internal/jobs directly.
const (
	DefaultJobWorkers = jobs.DefaultWorkers
	DefaultJobHistory = jobs.DefaultHistory
)

// Server is the HTTP results service. It implements http.Handler.
type Server struct {
	cfg      Config
	listReps map[string]rep // registry listing per content type, fixed at init
	cache    *cache
	jobs     *jobs.Registry
	mux      *http.ServeMux

	m         *telemetry
	traces    *obs.TraceBuffer
	traceCap  int
	accessLog *obs.Logger
	start     time.Time

	// fp is core.Fingerprint() captured at construction. The registry
	// and fingerprint salts are fixed for the life of a process, and
	// recomputing means re-hashing every experiment's material — too
	// much work to redo on every /healthz scrape.
	fp string
}

// Stats is a snapshot of the server's cache counters, also rendered
// on /healthz so operators (and the CI smoke test) can assert cache
// behavior across restarts. GET /metrics exposes the same counters as
// charhpc_cache_requests_total{tier=...}.
type Stats struct {
	Runs      int64 // experiment executions started
	MemHits   int64 // requests served from the in-memory cache
	DiskLoads int64 // entries loaded from the disk store
	DiskErrs  int64 // failed disk-store writes
}

// Stats returns the current counter snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		Runs:      s.m.runTotal.Value(),
		MemHits:   s.m.memHits.Value(),
		DiskLoads: s.m.diskLoads.Value(),
		DiskErrs:  s.m.diskErrs.Value(),
	}
}

// New builds a Server over the process-wide experiment registry.
func New(cfg Config) *Server {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	traceCap := cfg.TraceCapacity
	if traceCap <= 0 {
		traceCap = DefaultTraceCapacity
	}
	maxCustom := cfg.CustomCacheEntries
	if maxCustom == 0 {
		maxCustom = DefaultCustomCacheEntries
	}
	if maxCustom < 0 {
		maxCustom = 0 // unbounded
	}
	s := &Server{
		cfg:       cfg,
		listReps:  buildListReps(),
		cache:     newCache(maxCustom),
		jobs:      jobs.New(cfg.Jobs, cfg.JobsHistory),
		mux:       http.NewServeMux(),
		m:         newTelemetry(reg, cfg.Store),
		traces:    obs.NewTraceBuffer(traceCap),
		traceCap:  traceCap,
		accessLog: cfg.AccessLog,
		start:     time.Now(),
		fp:        core.Fingerprint(),
	}
	s.cache.waits = s.m.sfWait
	s.jobs.SetMetrics(jobs.Metrics{
		Submitted: s.m.jobsSubmitted,
		Done:      s.m.jobsDone,
		Failed:    s.m.jobsFailed,
		Canceled:  s.m.jobsCanceled,
		Events:    s.m.jobEvents,
	})
	s.registerScrapeGauges()
	s.loadPlatformDir()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /experiments", s.handleList)
	s.mux.HandleFunc("GET /experiments/{id}", s.handleGet)
	s.mux.HandleFunc("GET /platforms", s.handlePlatformList)
	s.mux.HandleFunc("POST /platforms", s.handlePlatformRegister)
	s.mux.HandleFunc("GET /platforms/{name}", s.handlePlatformGet)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("POST /runs", s.handleSubmitRun)
	s.mux.HandleFunc("GET /runs", s.handleJobList)
	s.mux.HandleFunc("GET /runs/{job}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /runs/{job}", s.handleJobCancel)
	s.mux.HandleFunc("GET /runs/{job}/events", s.handleJobEvents)
	if !cfg.DisableMetrics {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	return s
}

// ServeHTTP implements http.Handler: request-ID propagation (an
// incoming X-Request-ID is honored, otherwise one is minted; the ID is
// always echoed on the response), then the routed handler, then the
// request metrics and one access-log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	rid := r.Header.Get("X-Request-ID")
	if rid == "" {
		rid = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", rid)
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.observe(r, sw, rid, t0)
}

// handleHealthz reports liveness plus identity: the cache counters the
// smoke test asserts, the registry fingerprint (so a shard router can
// check it is fronting compatible binaries, not just live ones),
// process uptime, and per-tier cache entry counts.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ctText)
	st := s.Stats()
	diskEntries := 0
	var stalePurged int64
	if s.cfg.Store != nil {
		diskEntries = s.cfg.Store.Len()
		stalePurged = s.cfg.Store.StalePurged()
	}
	jc := s.jobs.Counts()
	fmt.Fprintf(w, "ok runs=%d mem_hits=%d disk_loads=%d disk_errs=%d fingerprint=%s uptime_seconds=%d mem_entries=%d disk_entries=%d jobs_active=%d jobs_queued=%d jobs_done=%d custom_platforms=%d stale_purged=%d\n",
		st.Runs, st.MemHits, st.DiskLoads, st.DiskErrs,
		s.fp, int(time.Since(s.start).Seconds()),
		s.cache.len(), diskEntries,
		jc[jobs.Running], jc[jobs.Pending], jc[jobs.Done],
		cluster.CustomCount(), stalePurged)
}

// listEntry is one row of the JSON registry listing. Platforms names
// the presets the experiment accepts via ?platform=; empty means the
// experiment has no platform axis (host-only).
type listEntry struct {
	ID        string   `json:"id"`
	Kind      string   `json:"kind"`
	Title     string   `json:"title"`
	Platforms []string `json:"platforms,omitempty"`
}

// buildListReps renders the registry listing in all three content
// types once — the registry is immutable after init, so the bodies
// and their ETags never change for the life of the process.
func buildListReps() map[string]rep {
	all := core.All()

	entries := make([]listEntry, len(all))
	for i, e := range all {
		entries[i] = listEntry{ID: e.ID, Kind: e.Kind, Title: e.Title, Platforms: e.Platforms()}
	}
	jsonb, _ := json.Marshal(entries)
	jsonb = append(jsonb, '\n')

	t := report.NewTable("experiments", "id", "kind", "title", "platforms")
	for _, e := range all {
		platforms := strings.Join(e.Platforms(), ",")
		if platforms == "" {
			platforms = "-"
		}
		t.AddRow(e.ID, e.Kind, e.Title, platforms)
	}
	rec := report.NewRecorder()
	t.Fprint(rec)
	var csvb strings.Builder
	rec.Document().CSV(&csvb)

	return map[string]rep{
		ctText: {body: rec.Bytes(), etag: etagOf(rec.Bytes())},
		ctCSV:  {body: []byte(csvb.String()), etag: etagOf([]byte(csvb.String()))},
		ctJSON: {body: jsonb, etag: etagOf(jsonb)},
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ct := negotiate(r.Header.Get("Accept"))
	if ct == "" {
		writeError(w, r, http.StatusNotAcceptable, codeNotAcceptable,
			"acceptable types: text/plain, text/csv, application/json", "")
		return
	}
	rp := s.listReps[ct]
	w.Header().Set("Vary", "Accept")
	w.Header().Set("ETag", rp.etag)
	// The platform axis is its own resource; the listing links rather
	// than inlines it, so these prebuilt bodies stay byte-stable as
	// customs register.
	w.Header().Set("Link", `</platforms>; rel="platforms"`)
	if etagMatch(r.Header.Get("If-None-Match"), rp.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Write(rp.body)
}

// CheckRunRequest validates one run request the way every entry point
// must: experiment existence (404), then scale syntax (400), then the
// platform axis (400 — an invalid request is invalid whatever the
// server's policy), and only then the given scale limit (403). The
// blocking GET and the async POST /runs both go through here, and the
// table test in serve_test.go pins the precedence, so the same bad
// request can never draw different codes from different entry points.
// It is exported for the shard router, which validates against the
// same rules before any shard round trip and writes the returned
// APIError through WriteAPIError — byte-identical to a shard's own
// rejection of the same request.
func CheckRunRequest(id, scaleV, platformV string, limit core.Scale) (core.Experiment, core.Request, *APIError) {
	e, ok := core.Get(id)
	if !ok {
		return e, core.Request{}, &APIError{
			Status: http.StatusNotFound, Code: codeUnknownExperiment,
			Message: fmt.Sprintf("unknown experiment %q", id),
			Hint:    "GET /experiments lists every registered experiment"}
	}
	req := core.Request{Scale: core.Quick}
	switch scaleV {
	case "", "quick":
	case "full":
		req.Scale = core.Full
	default:
		return e, req, &APIError{
			Status: http.StatusBadRequest, Code: codeInvalidScale,
			Message: fmt.Sprintf("unknown scale %q (want quick or full)", scaleV)}
	}
	req.Platform = platformV
	if err := e.CheckPlatform(req.Platform); err != nil {
		status, code, hint := platformError(err)
		return e, req, &APIError{Status: status, Code: code, Message: err.Error(), Hint: hint}
	}
	if req.Scale > limit {
		return e, req, &APIError{
			Status: http.StatusForbidden, Code: codeScaleLimit,
			Message: fmt.Sprintf("scale %s disabled on this server (limit %s)", req.Scale, limit),
			Hint:    "this server was started without full-scale runs enabled"}
	}
	return e, req, nil
}

// parseRunRequest is CheckRunRequest bound to this server's scale
// limit, answering the error itself.
func (s *Server) parseRunRequest(w http.ResponseWriter, r *http.Request, id, scaleV, platformV string) (core.Experiment, core.Request, bool) {
	e, req, apiErr := CheckRunRequest(id, scaleV, platformV, s.cfg.ScaleLimit)
	if apiErr != nil {
		WriteAPIError(w, r, apiErr)
		return e, req, false
	}
	return e, req, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	e, req, ok := s.parseRunRequest(w, r, id, q.Get("scale"), q.Get("platform"))
	if !ok {
		return
	}
	ct := negotiate(r.Header.Get("Accept"))
	if ct == "" {
		writeError(w, r, http.StatusNotAcceptable, codeNotAcceptable,
			"acceptable types: text/plain, text/csv, application/json", "")
		return
	}

	ent, hit, err := s.cache.get(key{id, req}, func() (map[string]rep, time.Duration, error) {
		reps, elapsed, _, err := s.fill(e, req, core.RunHooks{})
		return reps, elapsed, err
	})
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, codeRunFailed,
			fmt.Sprintf("experiment %s failed: %v", id, err), "")
		return
	}
	// Waiters on a failed fill got a 500, not a cached result — only
	// a successful wait counts as a hit.
	if hit {
		s.m.memHits.Inc()
	}

	rp := ent.reps[ct]
	w.Header().Set("Vary", "Accept")
	w.Header().Set("ETag", rp.etag)
	w.Header().Set("X-Experiment-Elapsed", ent.elapsed.String())
	if etagMatch(r.Header.Get("If-None-Match"), rp.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Write(rp.body)
}

// resultJSON is the JSON envelope for one experiment's results.
// Platform is present only for explicit-platform requests, so default
// envelopes are byte-identical to the pre-platform-axis format.
type resultJSON struct {
	ID             string           `json:"id"`
	Kind           string           `json:"kind"`
	Title          string           `json:"title"`
	Scale          string           `json:"scale"`
	Platform       string           `json:"platform,omitempty"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Sections       []report.Section `json:"sections"`
}

// renderResult turns one captured execution into all three negotiable
// representations, each with the strong ETag of its exact bytes.
func renderResult(res core.Result) (map[string]rep, time.Duration, error) {
	if res.Err != nil {
		return nil, 0, res.Err
	}
	if res.Rec == nil {
		return nil, 0, fmt.Errorf("run produced no output recorder")
	}
	doc := res.Rec.Document()

	text := append([]byte(nil), res.Rec.Bytes()...)

	var csvb strings.Builder
	if err := doc.CSV(&csvb); err != nil {
		return nil, 0, err
	}

	sections := doc.Sections
	if sections == nil {
		sections = []report.Section{}
	}
	jsonb, err := json.Marshal(resultJSON{
		ID:             res.Experiment.ID,
		Kind:           res.Experiment.Kind,
		Title:          res.Experiment.Title,
		Scale:          res.Req.Scale.String(),
		Platform:       res.Req.Platform,
		ElapsedSeconds: res.Elapsed.Seconds(),
		Sections:       sections,
	})
	if err != nil {
		return nil, 0, err
	}
	jsonb = append(jsonb, '\n')

	reps := map[string]rep{
		ctText: {body: text, etag: etagOf(text)},
		ctCSV:  {body: []byte(csvb.String()), etag: etagOf([]byte(csvb.String()))},
		ctJSON: {body: jsonb, etag: etagOf(jsonb)},
	}
	return reps, res.Elapsed, nil
}

// fill produces the representations for one cold (id, scale,
// platform): load from the disk store when a valid entry generation
// exists there, otherwise execute the experiment — observed through h
// on the async job path — and write the rendering through to the
// store. This is the only path that fills the in-memory cache, so the
// memory layer is strictly a write-through front for the store. tier
// reports how the result was produced ("disk" or "run"), for job
// terminal events and the cache-tier metrics.
func (s *Server) fill(e core.Experiment, req core.Request, h core.RunHooks) (map[string]rep, time.Duration, string, error) {
	if reps, elapsed, ok := s.loadStore(e.ID, req); ok {
		s.m.diskLoads.Inc()
		return reps, elapsed, "disk", nil
	}
	reps, elapsed, err := renderResult(s.safeRun(e, req, h))
	if err == nil {
		s.saveStore(e.ID, req, reps, elapsed)
	}
	return reps, elapsed, "run", err
}

// Warm fills the quick-scale cache for the given experiment IDs (nil
// means every registered experiment) across the given platform axis
// (nil means the default platform set only; "" in the list is the
// default set). Incompatible (experiment, platform) pairs are skipped,
// so warming the whole registry across explicit presets never errors.
// Entries with a valid disk-store generation are loaded without
// running; the rest execute on a core.RunParallel worker pool driven
// through the server's RunFunc. Cold keys are claimed up front so
// requests arriving mid-warm wait on the in-flight entry instead of
// re-running — the single-flight guarantee holds across warm-up and
// traffic. Already cached or in-flight keys are skipped.
//
// Canceling ctx stops the warm-up promptly: jobs not yet started are
// skipped (their claims are released so later requests retry), and
// only in-flight experiment runs are waited out. Returns the number of
// experiments it actually executed — disk loads and canceled jobs
// don't count.
func (s *Server) Warm(ctx context.Context, ids []string, platforms []string, workers int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	if ids == nil {
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	}
	if platforms == nil {
		platforms = []string{""}
	}
	// Progress gauges: planned counts every claimed key (disk loads
	// included), completed counts each as it resolves — loaded,
	// executed, or canceled — so an operator watching /metrics sees
	// warm-up advance and finish (warmup_running drops to 0).
	s.m.warmRunning.Set(1)
	defer s.m.warmRunning.Set(0)
	total := 0
	for _, platform := range platforms {
		req := core.Request{Scale: core.Quick, Platform: platform}
		claimed := map[string]*entry{}
		var cold []string
		for _, id := range ids {
			e, ok := core.Get(id)
			if !ok || e.CheckPlatform(platform) != nil {
				continue
			}
			ent, ok := s.cache.claim(key{id, req})
			if !ok {
				continue
			}
			s.m.warmPlanned.Add(1)
			if reps, elapsed, lok := s.loadStore(id, req); lok {
				s.m.diskLoads.Inc()
				s.cache.finish(key{id, req}, ent, reps, elapsed, nil)
				s.m.warmCompleted.Add(1)
				continue
			}
			claimed[id] = ent
			cold = append(cold, id)
		}
		if len(cold) == 0 {
			continue
		}
		// Unknown IDs and incompatible pairs were filtered above, so
		// the pool cannot fail before running; each claimed entry is
		// finished as its run completes. Driving the pool through
		// safeRun keeps warm-up behind the same wrapper (limits,
		// instrumentation, test stubs) as traffic, with the same panic
		// containment — and guarantees r.Experiment.ID is the job's
		// own, so every claimed entry is found and finished.
		var ran atomic.Int64
		run := func(e core.Experiment, rq core.Request) core.Result {
			if err := ctx.Err(); err != nil {
				return core.Result{Experiment: e, Req: rq,
					Err: fmt.Errorf("warm-up canceled: %w", err)}
			}
			ran.Add(1)
			return s.safeRun(e, rq, core.RunHooks{})
		}
		core.RunParallelWith(cold, req, workers, run, func(r core.Result) {
			k := key{r.Experiment.ID, req}
			reps, elapsed, err := renderResult(r)
			if err == nil {
				s.saveStore(r.Experiment.ID, req, reps, elapsed)
			}
			s.cache.finish(k, claimed[r.Experiment.ID], reps, elapsed, err)
			s.m.warmCompleted.Add(1)
		})
		total += int(ran.Load())
	}
	return total
}

// safeRun drives one execution with the safety net both paths need: a
// panicking run becomes an error Result instead of killing a worker
// goroutine (and with it the process, on the Warm path), and the
// job's own identity is stamped on the result so cache keys and JSON
// envelopes never depend on what a wrapper echoed back. A configured
// RunFunc (test stubs, wrappers) takes precedence and ignores the
// hooks; the default path runs core.RunWithHooks so async jobs see
// live phase/section events.
func (s *Server) safeRun(e core.Experiment, req core.Request, h core.RunHooks) (res core.Result) {
	s.m.runTotal.Inc()
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{Err: fmt.Errorf("experiment run panicked: %v", r)}
		}
		res.Experiment, res.Req = e, req
		// A real run carries its timing tree on the Recorder (core.Run
		// attached it); retain it for GET /debug/traces. Disk loads and
		// rebuilt cache entries have no span and are skipped.
		if res.Rec != nil {
			if sp := res.Rec.Span(); sp != nil {
				s.traces.Add(sp)
			}
		}
	}()
	if s.cfg.RunFunc != nil {
		return s.cfg.RunFunc(e, req)
	}
	return core.RunWithHooks(e, req, h)
}

// storeKey maps one in-memory cache slot + offered content type to
// the disk store's key space. Keys carry the bare media type — the
// charset parameter is a response detail, not part of the identity.
func storeKey(id string, req core.Request, ct string) diskcache.Key {
	return diskcache.Key{ID: id, Scale: req.Scale.String(), Platform: req.Platform, ContentType: mediaType(ct)}
}

// mediaType strips any parameters (";charset=...") from a content type.
func mediaType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct)
}

// runIDOf stamps one execution's generation: a hash over every
// representation's ETag. Entries written by one fill share it, so a
// set mixed across two concurrent executions (last-writer-wins per
// file, and nondeterministic experiments render different bytes per
// run) is detectable on load even though each file validates alone.
func runIDOf(reps map[string]rep) string {
	h := sha256.New()
	for _, ct := range offered {
		fmt.Fprintln(h, reps[ct].etag)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// loadStore fetches all offered representations of (id, scale,
// platform) from the disk store. It is all-or-nothing: negotiation
// needs every content type from the same execution, so a partial set —
// or one whose entries carry different run stamps because two writers
// raced — reads as a miss and the caller re-runs.
func (s *Server) loadStore(id string, req core.Request) (map[string]rep, time.Duration, bool) {
	if s.cfg.Store == nil {
		return nil, 0, false
	}
	reps := make(map[string]rep, len(offered))
	var elapsed time.Duration
	var runID string
	for i, ct := range offered {
		ent, ok := s.cfg.Store.Get(storeKey(id, req, ct))
		if !ok {
			return nil, 0, false
		}
		if i == 0 {
			runID = ent.RunID
		} else if ent.RunID != runID {
			return nil, 0, false
		}
		reps[ct] = rep{body: ent.Body, etag: ent.ETag}
		elapsed = ent.Elapsed
	}
	return reps, elapsed, true
}

// putReps persists one fill's representations — runID-stamped so a
// reader can reject a set mixed across racing writers. Both persist
// paths (the daemon's write-through and the CLI's StoreResult) go
// through here, so the entry layout can never diverge between them.
// The first failed write is returned; the rest are still attempted.
func putReps(st *diskcache.Store, id string, req core.Request, reps map[string]rep, elapsed time.Duration) error {
	runID := runIDOf(reps)
	var firstErr error
	for _, ct := range offered {
		rp := reps[ct]
		err := st.Put(storeKey(id, req, ct),
			diskcache.Entry{ETag: rp.etag, RunID: runID, Elapsed: elapsed, Body: rp.body})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// saveStore writes a filled entry's representations through to the
// disk store. Persistence is best-effort: a failed write leaves the
// in-memory entry serving and bumps the disk_errs counter.
func (s *Server) saveStore(id string, req core.Request, reps map[string]rep, elapsed time.Duration) {
	if s.cfg.Store == nil {
		return
	}
	if err := putReps(s.cfg.Store, id, req, reps, elapsed); err != nil {
		s.m.diskErrs.Inc()
	}
}

// StoreResult renders one captured execution into all negotiable
// representations and persists them under the store layout the daemon
// reads — how charhpc -cache-dir shares a store with charhpcd. A
// failed result is not persisted.
func StoreResult(st *diskcache.Store, res core.Result) error {
	reps, elapsed, err := renderResult(res)
	if err != nil {
		return err
	}
	return putReps(st, res.Experiment.ID, res.Req, reps, elapsed)
}

// LoadResult reconstructs a cached execution of e for request req from
// the disk store: the text representation replays the byte stream and
// the JSON envelope's sections rebuild the structured document, so
// the returned Result behaves like a live run (report.Rebuild is the
// round-trip's other half). Elapsed is the original run's wall time.
// Missing or invalid entries return ok=false.
func LoadResult(st *diskcache.Store, e core.Experiment, req core.Request) (core.Result, bool) {
	text, ok := st.Get(storeKey(e.ID, req, ctText))
	if !ok {
		return core.Result{}, false
	}
	jent, ok := st.Get(storeKey(e.ID, req, ctJSON))
	if !ok || jent.RunID != text.RunID {
		return core.Result{}, false
	}
	var env resultJSON
	if err := json.Unmarshal(jent.Body, &env); err != nil {
		return core.Result{}, false
	}
	return core.Result{
		Experiment: e,
		Req:        req,
		Rec:        report.Rebuild(text.Body, env.Sections),
		Elapsed:    text.Elapsed,
	}, true
}

// etagOf returns the strong ETag of a representation: the quoted
// SHA-256 of its exact bytes.
func etagOf(b []byte) string {
	return fmt.Sprintf("%q", fmt.Sprintf("%x", sha256.Sum256(b)))
}

// etagMatch reports whether an If-None-Match header value matches the
// given ETag. Per RFC 9110 §13.1.2 If-None-Match uses weak
// comparison: a W/ prefix on the presented validator is ignored.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		tok = strings.TrimPrefix(tok, "W/")
		if tok == "*" || tok == etag {
			return true
		}
	}
	return false
}

// negotiate picks the response content type from an Accept header,
// honoring q-values and wildcards. An empty header means text/plain;
// "" is returned when nothing offered is acceptable (406).
func negotiate(accept string) string {
	if strings.TrimSpace(accept) == "" {
		return ctText
	}
	// Media types compare case-insensitively (RFC 9110 §12.5.1); the
	// offered types are already lowercase.
	accept = strings.ToLower(accept)
	bestQ := -1.0
	bestSpec := -1
	best := ""
	for _, offer := range offered {
		media := offer
		if i := strings.IndexByte(media, ';'); i >= 0 {
			media = strings.TrimSpace(media[:i])
		}
		q, spec := acceptQ(accept, media)
		// Higher q wins; at equal q a more specific match wins; at
		// equal specificity the server preference order (offered)
		// stands.
		if q > 0 && (q > bestQ || (q == bestQ && spec > bestSpec)) {
			bestQ, bestSpec, best = q, spec, offer
		}
	}
	return best
}

// acceptQ returns the quality value the Accept header assigns to a
// media type, and the specificity of the clause that matched
// (2 exact, 1 type/*, 0 */*). q is 0 when no clause matches.
func acceptQ(accept, media string) (q float64, spec int) {
	typ := media[:strings.IndexByte(media, '/')]
	spec = -1
	for _, clause := range strings.Split(accept, ",") {
		parts := strings.Split(clause, ";")
		pat := strings.TrimSpace(parts[0])
		cq := 1.0
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if v, ok := strings.CutPrefix(p, "q="); ok {
				if f, err := parseQ(v); err == nil {
					cq = f
				}
			}
		}
		var cs int
		switch pat {
		case media:
			cs = 2
		case typ + "/*":
			cs = 1
		case "*/*":
			cs = 0
		default:
			continue
		}
		// The most specific matching clause determines q (RFC 9110).
		if cs > spec {
			spec, q = cs, cq
		}
	}
	if spec < 0 {
		return 0, -1
	}
	return q, spec
}

// parseQ parses a qvalue (0 to 1, up to three decimals).
func parseQ(s string) (float64, error) {
	var f float64
	if _, err := fmt.Sscanf(s, "%f", &f); err != nil {
		return 0, err
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f, nil
}
