// The deploy-upgrade test harness: table-driven "simulated deploy"
// tests that warm a disk store under one registry generation, mutate
// exactly ONE fingerprint dependency (an experiment's identity, one
// preset's parameters, the scale defs, the build identity) via the
// core salt hooks, restart the stack over the same directory, and
// assert the invalidation is exact — every affected key re-runs,
// every other key replays from disk with its original ETag and
// runs=0. A wrong fingerprint silently serves stale science, so the
// harness is as load-bearing as the code it tests.
package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/report"
)

// The warm matrix: chosen so every mutation axis splits it
// non-trivially. T1 and M3 can run on gige-8n; M5 needs NUMA and
// cannot, so a gige-8n parameter change must leave M5 alone. M5 also
// has no gige-8n key of its own — its default-set entry surviving is
// what proves invalidation is per-experiment-dependency, not
// per-requested-platform.
var (
	deployIDs       = []string{"T1", "M3", "M5"}
	deployPlatforms = []string{"", "gige-8n"}
)

type deployKey struct{ id, platform string }

func (k deployKey) String() string {
	if k.platform == "" {
		return k.id
	}
	return k.id + "@" + k.platform
}

// deployMatrix returns the compatible (id, platform) keys Warm will
// actually fill.
func deployMatrix(t *testing.T) []deployKey {
	t.Helper()
	var keys []deployKey
	for _, id := range deployIDs {
		e, ok := core.Get(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		for _, p := range deployPlatforms {
			if e.CheckPlatform(p) == nil {
				keys = append(keys, deployKey{id, p})
			}
		}
	}
	return keys
}

// recordingStub is stubRun plus a record of which (id, platform) keys
// executed — the ground truth the harness asserts against.
func recordingStub(ran *sync.Map, runs *atomic.Int32) func(core.Experiment, core.Request) core.Result {
	return func(e core.Experiment, r core.Request) core.Result {
		runs.Add(1)
		ran.Store(deployKey{e.ID, r.Platform}, true)
		rec := report.NewRecorder()
		tbl := report.NewTable("stub", "k", "v")
		tbl.AddRow("answer", 42)
		tbl.Fprint(rec)
		return core.Result{Experiment: e, Req: r, Rec: rec, Elapsed: time.Millisecond}
	}
}

// openDeployStore opens the store the way the daemon does: real
// per-experiment fingerprints from core, so the salt hooks flow
// through the same code path a production deploy exercises.
func openDeployStore(t *testing.T, dir string) *diskcache.Store {
	t.Helper()
	st, err := diskcache.Open(dir,
		diskcache.Fingerprints{Global: core.Fingerprint(), PerID: core.Fingerprints()}, 0)
	if err != nil {
		t.Fatalf("diskcache.Open: %v", err)
	}
	return st
}

// captureETags reads every representation's ETag for the given keys
// straight from the disk store.
func captureETags(t *testing.T, st *diskcache.Store, keys []deployKey) map[deployKey]map[string]string {
	t.Helper()
	out := map[deployKey]map[string]string{}
	for _, k := range keys {
		req := core.Request{Scale: core.Quick, Platform: k.platform}
		out[k] = map[string]string{}
		for _, ct := range offered {
			ent, ok := st.Get(storeKey(k.id, req, ct))
			if !ok {
				t.Fatalf("key %s (%s) missing from warmed store", k, ct)
			}
			out[k][ct] = ent.ETag
		}
	}
	return out
}

func sortedKeys(m map[deployKey]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}

// TestSimulatedDeployMatrix is the headline deliverable: one
// dependency mutated per case, exact invalidation asserted per key.
func TestSimulatedDeployMatrix(t *testing.T) {
	keys := deployMatrix(t)
	if len(keys) < 4 {
		t.Fatalf("deploy matrix too small (%d keys) to split meaningfully", len(keys))
	}
	canRunOn := func(id, preset string) bool {
		e, _ := core.Get(id)
		for _, p := range e.Platforms() {
			if p == preset {
				return true
			}
		}
		return false
	}

	cases := []struct {
		name     string
		env      string // the salted dependency axis
		affected func(deployKey) bool
	}{
		{
			// Axis 1: one experiment's identity/Needs.
			name:     "experiment needs",
			env:      "CHARHPC_FP_SALT_EXP_T1",
			affected: func(k deployKey) bool { return k.id == "T1" },
		},
		{
			// Axis 2: one preset's link parameters. Affects every
			// experiment that CAN run on the preset — including their
			// default-set keys, whose result set includes that preset —
			// and no experiment that can't.
			name:     "preset link params",
			env:      "CHARHPC_FP_SALT_PLATFORM_gige-8n",
			affected: func(k deployKey) bool { return canRunOn(k.id, "gige-8n") },
		},
		{
			// Axis 3: the scale definitions — a dependency of everyone.
			name:     "scale defs",
			env:      "CHARHPC_FP_SALT_SCALE",
			affected: func(deployKey) bool { return true },
		},
		{
			// Axis 4: the build identity — also global.
			name:     "build identity",
			env:      "CHARHPC_FP_SALT_BUILD",
			affected: func(deployKey) bool { return true },
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			wantAffected := map[deployKey]bool{}
			for _, k := range keys {
				if tc.affected(k) {
					wantAffected[k] = true
				}
			}
			if len(wantAffected) == 0 {
				t.Fatal("case affects nothing — the mutation axis is dead")
			}

			// Deploy A: warm the full matrix under the unsalted
			// generation and record every entry's ETag.
			var ranA sync.Map
			var runsA atomic.Int32
			srvA := New(Config{RunFunc: recordingStub(&ranA, &runsA), Store: openDeployStore(t, dir)})
			srvA.Warm(context.Background(), deployIDs, deployPlatforms, 4)
			if got := int(runsA.Load()); got != len(keys) {
				t.Fatalf("baseline warm ran %d, want %d", got, len(keys))
			}
			etagsA := captureETags(t, srvA.cfg.Store, keys)

			// Deploy B: same directory, one dependency mutated. The env
			// salt flows through core.Fingerprints into Open exactly as
			// a code change would on a real redeploy.
			t.Setenv(tc.env, "deploy-b")
			var ranB sync.Map
			var runsB atomic.Int32
			stB := openDeployStore(t, dir)
			srvB := New(Config{RunFunc: recordingStub(&ranB, &runsB), Store: stB})
			srvB.Warm(context.Background(), deployIDs, deployPlatforms, 4)

			// Open purged exactly the affected keys' entries.
			if got, want := stB.StalePurged(), int64(len(wantAffected)*len(offered)); got != want {
				t.Errorf("StalePurged = %d, want %d (%d keys x %d representations)",
					got, want, len(wantAffected), len(offered))
			}

			// Exactly the affected keys re-ran.
			gotRan := map[deployKey]bool{}
			ranB.Range(func(k, _ any) bool { gotRan[k.(deployKey)] = true; return true })
			if got, want := sortedKeys(gotRan), sortedKeys(wantAffected); !equalStrings(got, want) {
				t.Errorf("re-ran %v, want exactly %v", got, want)
			}
			st := srvB.Stats()
			if got, want := st.Runs, int64(len(wantAffected)); got != want {
				t.Errorf("runs = %d after simulated deploy, want %d", got, want)
			}
			if got, want := st.DiskLoads, int64(len(keys)-len(wantAffected)); got != want {
				t.Errorf("disk_loads = %d, want %d (the surviving keys)", got, want)
			}

			// Every surviving key replays its original ETag — on disk
			// and over HTTP from the warmed deploy-B server itself.
			ts := httptest.NewServer(srvB)
			t.Cleanup(ts.Close)
			for _, k := range keys {
				if wantAffected[k] {
					continue
				}
				req := core.Request{Scale: core.Quick, Platform: k.platform}
				for _, ct := range offered {
					ent, ok := stB.Get(storeKey(k.id, req, ct))
					if !ok {
						t.Errorf("surviving key %s (%s) missing after deploy", k, ct)
						continue
					}
					if ent.ETag != etagsA[k][ct] {
						t.Errorf("surviving key %s (%s): ETag %s != original %s", k, ct, ent.ETag, etagsA[k][ct])
					}
				}
				url := ts.URL + "/experiments/" + k.id
				if k.platform != "" {
					url += "?platform=" + k.platform
				}
				resp, body := doGet(t, url, "application/json", "")
				if resp.StatusCode != 200 {
					t.Errorf("GET %s after deploy: %d %s", k, resp.StatusCode, body)
					continue
				}
				if got := resp.Header.Get("ETag"); got != etagsA[k][ctJSON] {
					t.Errorf("GET %s: ETag %s != original %s", k, got, etagsA[k][ctJSON])
				}
			}

			// /healthz reports the purge.
			resp, body := doGet(t, ts.URL+"/healthz", "", "")
			if resp.StatusCode != 200 {
				t.Fatalf("healthz: %d", resp.StatusCode)
			}
			if want := fmt.Sprintf("stale_purged=%d", len(wantAffected)*len(offered)); !strings.Contains(body, want) {
				t.Errorf("healthz %q does not report %q", strings.TrimSpace(body), want)
			}

			// And the affected keys were re-persisted under the new
			// generation: a third open (same salt) purges nothing.
			stC := openDeployStore(t, dir)
			if got := stC.StalePurged(); got != 0 {
				t.Errorf("third open purged %d entries; deploy B left the store dirty", got)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNoOpRedeployLoadsEverything pins the fast path around the
// matrix: an unchanged registry reopens with zero purges, zero runs,
// all disk loads.
func TestNoOpRedeployLoadsEverything(t *testing.T) {
	dir := t.TempDir()
	keys := deployMatrix(t)
	var ran sync.Map
	var runs atomic.Int32
	srvA := New(Config{RunFunc: recordingStub(&ran, &runs), Store: openDeployStore(t, dir)})
	srvA.Warm(context.Background(), deployIDs, deployPlatforms, 4)
	etagsA := captureETags(t, srvA.cfg.Store, keys)

	var runsB atomic.Int32
	stB := openDeployStore(t, dir)
	srvB := New(Config{RunFunc: recordingStub(&ran, &runsB), Store: stB})
	srvB.Warm(context.Background(), deployIDs, deployPlatforms, 4)
	if got := stB.StalePurged(); got != 0 {
		t.Errorf("no-op redeploy purged %d entries", got)
	}
	if got := runsB.Load(); got != 0 {
		t.Errorf("no-op redeploy ran %d experiments, want 0", got)
	}
	if got, want := srvB.Stats().DiskLoads, int64(len(keys)); got != want {
		t.Errorf("disk_loads = %d, want %d", got, want)
	}
	for k, etags := range captureETags(t, stB, keys) {
		for ct, etag := range etags {
			if etag != etagsA[k][ct] {
				t.Errorf("%s (%s): ETag changed across a no-op redeploy", k, ct)
			}
		}
	}
}

// TestWarmDiskLoadsEmitNoTraces pins the /debug/traces interaction:
// a delta warm-up's disk loads replay persisted bytes without
// executing anything, so they must not append spans — empty or
// otherwise — to the trace ring. Only real executions trace.
func TestWarmDiskLoadsEmitNoTraces(t *testing.T) {
	dir := t.TempDir()
	// Deploy A: a REAL run (RunFunc nil -> core.Run), which traces.
	srvA := New(Config{Store: openDeployStore(t, dir)})
	if n := srvA.Warm(context.Background(), []string{"T1"}, nil, 2); n != 1 {
		t.Fatalf("baseline warm executed %d, want 1", n)
	}
	if got := len(srvA.Traces(0)); got != 1 {
		t.Fatalf("executed warm-up produced %d traces, want 1", got)
	}

	// Deploy B, nothing changed: the whole warm-up is disk loads.
	srvB := New(Config{Store: openDeployStore(t, dir)})
	if n := srvB.Warm(context.Background(), []string{"T1"}, nil, 2); n != 0 {
		t.Fatalf("delta warm executed %d, want 0 (all from disk)", n)
	}
	if got := srvB.Stats().DiskLoads; got != 1 {
		t.Fatalf("delta warm disk_loads = %d, want 1", got)
	}
	if got := srvB.Traces(0); len(got) != 0 {
		t.Errorf("disk-load warm-up emitted %d span trees into the trace ring, want 0", len(got))
	}
	// Serving the loaded entry over HTTP stays trace-free too: replays
	// execute nothing.
	ts := httptest.NewServer(srvB)
	t.Cleanup(ts.Close)
	doGet(t, ts.URL+"/experiments/T1", "application/json", "")
	if got := srvB.Traces(0); len(got) != 0 {
		t.Errorf("replay added %d traces, want 0", len(got))
	}
}
