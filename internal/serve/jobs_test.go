package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
)

// submitJob POSTs /runs with the given query and decodes the 202 body.
func submitJob(t *testing.T, base, query string) submitResponse {
	t.Helper()
	resp, err := http.Post(base+"/runs?"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs?%s: %d, want 202", query, resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job == "" || sub.EventsURL != "/runs/"+sub.Job+"/events" {
		t.Fatalf("submit response = %+v", sub)
	}
	if loc := resp.Header.Get("Location"); loc != "/runs/"+sub.Job {
		t.Errorf("Location = %q, want /runs/%s", loc, sub.Job)
	}
	return sub
}

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	ID    int
	Event string
	Data  jobs.Event
}

// drainSSE reads the events stream until its terminal event (the
// server closes the stream after it) and returns every frame in order.
// lastEventID, when non-empty, resumes via the standard header.
func drainSSE(t *testing.T, url, lastEventID string) []sseEvent {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ctSSE {
		t.Fatalf("events content type = %q, want %q", ct, ctSSE)
	}
	var (
		out []sseEvent
		cur sseEvent
	)
	cur.ID = -1
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				out = append(out, cur)
			}
			cur = sseEvent{ID: -1}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.ID)
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJobStreamRealRun drives the whole async contract against a real
// experiment execution: POST /runs, drain the SSE stream, and verify
// it is ordered, carries live phase and section events from the run's
// own instrumentation, and ends with a terminal event whose ETag is
// exactly what the blocking GET serves (304 on If-None-Match) — the
// job filled the same cache the synchronous path reads.
func TestJobStreamRealRun(t *testing.T) {
	ts := newTestServer(t, Config{}) // nil RunFunc: real runs with hooks
	sub := submitJob(t, ts.URL, "id=T1")

	evs := drainSSE(t, ts.URL+sub.EventsURL, "")
	if len(evs) < 4 {
		t.Fatalf("stream has %d events, want at least pending/running/phase/terminal: %+v", len(evs), evs)
	}
	phases, sections := 0, 0
	for i, ev := range evs {
		if ev.ID != i || ev.Data.Seq != i {
			t.Errorf("event %d: id=%d seq=%d — stream must be dense and ordered", i, ev.ID, ev.Data.Seq)
		}
		switch ev.Event {
		case jobs.EventPhase:
			phases++
		case jobs.EventSection:
			sections++
		}
	}
	if phases < 1 || sections < 1 {
		t.Errorf("stream carried %d phase and %d section events, want >=1 of each", phases, sections)
	}
	last := evs[len(evs)-1]
	if last.Event != string(jobs.Done) || !last.Data.Terminal() {
		t.Fatalf("last event = %+v, want done terminal", last)
	}
	if last.Data.Data["tier"] != "run" {
		t.Errorf("terminal tier = %q, want run", last.Data.Data["tier"])
	}
	etag := last.Data.Data["etag"]
	if etag == "" {
		t.Fatal("terminal event has no etag")
	}

	// Hand-off: the blocking GET serves the job's cached result.
	resp, body := doGet(t, ts.URL+last.Data.Data["url"], "", "")
	if resp.StatusCode != 200 || resp.Header.Get("ETag") != etag {
		t.Fatalf("handoff GET: %d etag=%q, want 200 with %q", resp.StatusCode, resp.Header.Get("ETag"), etag)
	}
	if !strings.Contains(body, "ib-8n") {
		t.Errorf("handoff body is not the real T1 output: %q", body[:min(len(body), 80)])
	}
	if resp, _ := doGet(t, ts.URL+last.Data.Data["url"], "", etag); resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match with job etag: %d, want 304", resp.StatusCode)
	}

	// Resuming mid-stream replays only the tail.
	tail := drainSSE(t, ts.URL+sub.EventsURL, "1")
	if len(tail) != len(evs)-2 || tail[0].ID != 2 {
		t.Errorf("resume from id 1: got %d events starting at %d, want %d starting at 2",
			len(tail), tail[0].ID, len(evs)-2)
	}

	// The run executed exactly once even though the job and the GET
	// both wanted it.
	if st := parseHealthz(t, ts.URL); st["runs"] != "1" || st["jobs_done"] != "1" {
		t.Errorf("healthz after job+get = %v, want runs=1 jobs_done=1", st)
	}
}

// parseHealthz splits the healthz line into its k=v tokens.
func parseHealthz(t *testing.T, base string) map[string]string {
	t.Helper()
	_, body := doGet(t, base+"/healthz", "", "")
	out := map[string]string{}
	for _, tok := range strings.Fields(strings.TrimSpace(body)) {
		if k, v, ok := strings.Cut(tok, "="); ok {
			out[k] = v
		}
	}
	return out
}

// TestJobCoalescesWithBlockingGet: a job for an already cached key is
// answered from the memory tier without re-running.
func TestJobCoalescesWithBlockingGet(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})
	doGet(t, ts.URL+"/experiments/T1", "", "") // warm the key

	sub := submitJob(t, ts.URL, "id=T1")
	evs := drainSSE(t, ts.URL+sub.EventsURL, "")
	last := evs[len(evs)-1]
	if last.Event != string(jobs.Done) || last.Data.Data["tier"] != "mem" {
		t.Fatalf("terminal = %+v, want done from tier mem", last)
	}
	if runs.Load() != 1 {
		t.Errorf("experiment ran %d times, want 1 (job coalesced)", runs.Load())
	}
}

// TestSubmitValidation: POST /runs rejects exactly what the blocking
// GET rejects, with the same codes.
func TestSubmitValidation(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})
	cases := []struct {
		query string
		want  int
	}{
		{"id=NOPE", http.StatusNotFound},
		{"id=T1&scale=medium", http.StatusBadRequest},
		{"id=T1&scale=full", http.StatusForbidden}, // zero ScaleLimit = quick only
		{"id=T1&platform=not-a-platform", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/runs?"+tc.query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST /runs?%s = %d, want %d", tc.query, resp.StatusCode, tc.want)
		}
	}
	if runs.Load() != 0 {
		t.Errorf("rejected submissions ran %d experiments", runs.Load())
	}
}

// TestJobListAndStatus: GET /runs lists newest first; GET /runs/{id}
// serves one status; unknown IDs 404.
func TestJobListAndStatus(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})

	resp, body := doGet(t, ts.URL+"/runs", "", "")
	if resp.StatusCode != 200 || strings.TrimSpace(body) != "[]" {
		t.Errorf("empty listing: %d %q, want 200 []", resp.StatusCode, body)
	}

	sub := submitJob(t, ts.URL, "id=T1")
	drainSSE(t, ts.URL+sub.EventsURL, "")

	resp, body = doGet(t, ts.URL+"/runs/"+sub.Job, "", "")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /runs/%s: %d %s", sub.Job, resp.StatusCode, body)
	}
	var st jobs.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != sub.Job || st.State != jobs.Done || st.Experiment != "T1" ||
		st.Scale != "quick" || st.Result["etag"] == "" {
		t.Errorf("status = %+v", st)
	}

	_, body = doGet(t, ts.URL+"/runs", "", "")
	var list []jobs.Status
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sub.Job {
		t.Errorf("listing = %+v", list)
	}

	if resp, _ := doGet(t, ts.URL+"/runs/nope", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestJobCancelViaDelete: DELETE /runs/{id} cancels a running job
// promptly; the SSE stream ends with the canceled terminal event even
// though the detached run never finishes.
func TestJobCancelViaDelete(t *testing.T) {
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	running := make(chan struct{})
	ts := newTestServer(t, Config{RunFunc: func(e core.Experiment, r core.Request) core.Result {
		close(running)
		<-block
		return core.Result{}
	}})
	sub := submitJob(t, ts.URL, "id=T1")
	<-running

	req, _ := http.NewRequest("DELETE", ts.URL+"/runs/"+sub.Job, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || st.State != jobs.Canceled {
		t.Fatalf("DELETE: %d state=%s, want 200 canceled", resp.StatusCode, st.State)
	}

	evs := drainSSE(t, ts.URL+sub.EventsURL, "")
	if last := evs[len(evs)-1]; last.Event != string(jobs.Canceled) {
		t.Errorf("last event = %+v, want canceled terminal", last)
	}
}

// TestJobMetricsSurface: the job counters and gauges land on
// GET /metrics under their documented names.
func TestJobMetricsSurface(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})
	sub := submitJob(t, ts.URL, "id=T1")
	drainSSE(t, ts.URL+sub.EventsURL, "")

	_, body := doGet(t, ts.URL+"/metrics", "", "")
	for _, want := range []string{
		`charhpc_jobs_total{state="submitted"} 1`,
		`charhpc_jobs_total{state="done"} 1`,
		`charhpc_jobs_total{state="failed"} 0`,
		`charhpc_jobs_total{state="canceled"} 0`,
		`charhpc_jobs_active 0`,
		`charhpc_jobs_queued 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// pending + running + done at minimum.
	if !strings.Contains(body, "charhpc_job_events_total 3") {
		t.Errorf("metrics missing charhpc_job_events_total 3:\n%s", grepMetrics(body, "job_events"))
	}
}

// grepMetrics filters an exposition body to lines containing substr,
// for failure messages.
func grepMetrics(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestJobQueueVisibility: with one worker slot held, a second job sits
// pending and is visible on healthz and the queue gauge.
func TestJobQueueVisibility(t *testing.T) {
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	started := make(chan struct{}, 2)
	srvCfg := Config{Jobs: 1, RunFunc: func(e core.Experiment, r core.Request) core.Result {
		started <- struct{}{}
		<-block
		return core.Result{}
	}}
	ts := newTestServer(t, srvCfg)
	submitJob(t, ts.URL, "id=T1")
	<-started
	submitJob(t, ts.URL, "id=T4")

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := parseHealthz(t, ts.URL)
		if st["jobs_active"] == "1" && st["jobs_queued"] == "1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never showed 1 active / 1 queued: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, body := doGet(t, ts.URL+"/metrics", "", "")
	if !strings.Contains(body, "charhpc_jobs_active 1") || !strings.Contains(body, "charhpc_jobs_queued 1") {
		t.Errorf("gauges:\n%s", grepMetrics(body, "charhpc_jobs_"))
	}
}

// TestEventStreamAntiBufferingHeaders pins the SSE hardening
// contract: the events response must carry Cache-Control: no-cache
// and X-Accel-Buffering: no, so neither a shared cache nor a
// buffering reverse proxy (nginx, or this repo's own shard router)
// holds progress frames back from the client.
func TestEventStreamAntiBufferingHeaders(t *testing.T) {
	var runs atomic.Int32
	ts := newTestServer(t, Config{RunFunc: stubRun(&runs, 0)})
	sub := submitJob(t, ts.URL, "id=T1")

	resp, err := http.Get(ts.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != ctSSE {
		t.Errorf("Content-Type = %q, want %q", got, ctSSE)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", got)
	}
	if got := resp.Header.Get("X-Accel-Buffering"); got != "no" {
		t.Errorf("X-Accel-Buffering = %q, want no", got)
	}
}
