// Structured-row capture: the emitter behind re-renderable results.
// A Recorder passed as the writer to an experiment captures both the
// exact rendered text and, for every table and figure printed through
// this package, a structured Section of rows — so a single run can be
// re-rendered as plain text, CSV, or JSON without re-executing the
// experiment. This is what lets the HTTP results service negotiate
// content types over one cached execution.
package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// Section is the structured form of one rendered table or figure:
// column names plus string-formatted rows, exactly the cells the text
// rendering shows. Figures flatten to long format with the columns
// (series, x-label, y-label), one row per point.
type Section struct {
	Title   string     `json:"title"`
	Kind    string     `json:"kind"` // "table" or "figure"
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// SectionWriter is implemented by writers that want the structured
// rows behind rendered output. Table.Fprint and Figure.Fprint probe
// their writer for it and, when present, hand over a Section in
// addition to the plain text.
type SectionWriter interface {
	WriteSection(Section)
}

// Document is an ordered collection of captured sections — one
// experiment's worth of tables and figures.
type Document struct {
	Sections []Section `json:"sections"`
}

// JSON writes the document as a single JSON object.
func (d *Document) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// CSV writes every section as an RFC-4180 row block introduced by a
// "# title (kind)" comment line, blocks separated by a blank line —
// the same one-file-many-tables convention the figure text format
// already uses.
func (d *Document) CSV(w io.Writer) error {
	for i, s := range d.Sections {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s (%s)\n", s.Title, s.Kind); err != nil {
			return err
		}
		if err := writeCSVRow(w, s.Columns); err != nil {
			return err
		}
		for _, row := range s.Rows {
			if err := writeCSVRow(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSVRow(w io.Writer, cells []string) error {
	for i, c := range cells {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, csvEscape(c)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Recorder is an io.Writer that tees an experiment's output into two
// forms: the byte-exact text stream, and the structured sections of
// every table/figure rendered through this package. Not safe for
// concurrent use; each experiment run gets its own Recorder.
type Recorder struct {
	buf       bytes.Buffer
	doc       Document
	span      *obs.Span     // active run span; see timing.go
	onSection func(Section) // live tee; see SetSectionHook
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Write appends to the text capture.
func (r *Recorder) Write(p []byte) (int, error) { return r.buf.Write(p) }

// WriteSection appends a structured section (implements SectionWriter)
// and tees it to the section hook, if one is set.
func (r *Recorder) WriteSection(s Section) {
	r.doc.Sections = append(r.doc.Sections, s)
	if r.onSection != nil {
		r.onSection(s)
	}
}

// SetSectionHook installs a live tee: fn is invoked with each section
// as the experiment renders it, while the run is still going — the
// feed behind streamed per-section progress events. The captured
// Document is unaffected; like the span (timing.go), the hook lives
// beside the recorded output, never in it.
func (r *Recorder) SetSectionHook(fn func(Section)) { r.onSection = fn }

// Text returns the captured text output.
func (r *Recorder) Text() string { return r.buf.String() }

// Bytes returns the captured text output without copying.
func (r *Recorder) Bytes() []byte { return r.buf.Bytes() }

// Document returns the captured structured sections.
func (r *Recorder) Document() *Document { return &r.doc }

// Rebuild reconstructs a Recorder from previously captured text and
// sections — the inverse of a recorded run. A cached execution loaded
// from disk passes back through here so callers holding the rebuilt
// Recorder can re-render every representation (text, CSV, JSON)
// exactly as if the run had just happened.
func Rebuild(text []byte, sections []Section) *Recorder {
	r := NewRecorder()
	r.buf.Write(text)
	r.doc.Sections = append(r.doc.Sections, sections...)
	return r
}

// section builds the structured form of a table, defensively copying
// the header and row slices so later AddRow calls can't alias.
func (t *Table) section() Section {
	rows := make([][]string, len(t.rows))
	for i, row := range t.rows {
		rows[i] = append([]string(nil), row...)
	}
	return Section{
		Title:   t.title,
		Kind:    "table",
		Columns: append([]string(nil), t.headers...),
		Rows:    rows,
	}
}

// section flattens the figure to long format: one row per point,
// columns (series, x-label, y-label), values formatted exactly as the
// text rendering formats them.
func (f *Figure) section() Section {
	var rows [][]string
	for _, s := range f.Series {
		for i := range s.X {
			rows = append(rows, []string{s.Name, formatFloat(s.X[i]), formatFloat(s.Y[i])})
		}
	}
	return Section{
		Title:   f.Title,
		Kind:    "figure",
		Columns: []string{"series", f.XLabel, f.YLabel},
		Rows:    rows,
	}
}
