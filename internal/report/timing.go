// Run-timing capture: the Recorder carries the active run's span tree
// alongside the text and structured-row captures. The timing tree is
// deliberately NOT part of Document — report bodies (text, CSV, JSON)
// must stay byte-identical whether or not tracing is wired up — so it
// rides as its own machine-readable section, queryable via the serving
// layer's GET /debug/traces and printable via charhpc -trace.
package report

import "repro/internal/obs"

// SetSpan attaches the active run span to the Recorder. core.Run calls
// this before handing the Recorder to an experiment; experiments (and
// core's phase helper) retrieve it through Span to open child spans
// per platform and per probe phase.
func (r *Recorder) SetSpan(s *obs.Span) { r.span = s }

// Span returns the attached run span, nil when tracing is not wired
// (plain Recorders, rebuilt cache entries). All obs.Span methods are
// nil-safe, so callers use the result unconditionally.
func (r *Recorder) Span() *obs.Span { return r.span }

// Timing returns the run's timing tree — the machine-readable timing
// section of a recorded run. It is an alias of Span under the name the
// serving layer's trace endpoint documents.
func (r *Recorder) Timing() *obs.Span { return r.span }
