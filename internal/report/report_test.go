package report

import (
	"strings"
	"testing"
)

func TestTableFprintAligned(t *testing.T) {
	tb := NewTable("Demo", "name", "value", "unit")
	tb.AddRow("latency", 1.2345678, "us")
	tb.AddRow("bw", 118.0, "MB/s")
	var b strings.Builder
	if err := tb.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "latency") {
		t.Error("missing content")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines: %q", len(lines), out)
	}
	if tb.NRows() != 2 {
		t.Errorf("NRows = %d", tb.NRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", 2.0)
	tb.AddRow(`has"quote`, "with,comma")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header wrong: %q", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote escaping wrong: %q", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma escaping wrong: %q", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5000",
		123.456: "123.5",
		1e9:     "1.000e+09",
		2.5e-7:  "2.500e-07",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFigure(t *testing.T) {
	f := NewFigure("Latency", "bytes", "seconds")
	s1 := f.AddSeries("intra")
	s1.Add(8, 1e-6)
	s1.Add(64, 2e-6)
	s2 := f.AddSeries("inter")
	s2.Add(8, 4e-5)
	var b strings.Builder
	if err := f.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== Latency ==") || !strings.Contains(out, "# series, bytes, seconds") {
		t.Errorf("header wrong: %q", out)
	}
	if strings.Count(out, "intra,") != 2 || strings.Count(out, "inter,") != 1 {
		t.Errorf("points wrong: %q", out)
	}
	if len(f.Series) != 2 {
		t.Errorf("series count %d", len(f.Series))
	}
}
