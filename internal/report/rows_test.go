package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("latency", "platform", "ns")
	t.AddRow("ib-8n", 1.5)
	t.AddRow("gige-8n", 55.0)
	return t
}

func TestRecorderCapturesTableSection(t *testing.T) {
	rec := NewRecorder()
	tbl := sampleTable()
	if err := tbl.Fprint(rec); err != nil {
		t.Fatal(err)
	}

	// Text capture must be byte-identical to a plain Fprint.
	var plain bytes.Buffer
	sampleTable().Fprint(&plain)
	if rec.Text() != plain.String() {
		t.Errorf("Recorder text differs from plain Fprint:\n%q\nvs\n%q", rec.Text(), plain.String())
	}

	doc := rec.Document()
	if len(doc.Sections) != 1 {
		t.Fatalf("got %d sections, want 1", len(doc.Sections))
	}
	s := doc.Sections[0]
	if s.Title != "latency" || s.Kind != "table" {
		t.Errorf("section header wrong: %+v", s)
	}
	if len(s.Columns) != 2 || s.Columns[0] != "platform" {
		t.Errorf("columns wrong: %v", s.Columns)
	}
	if len(s.Rows) != 2 || s.Rows[0][0] != "ib-8n" || s.Rows[0][1] != "1.5000" {
		t.Errorf("rows wrong: %v", s.Rows)
	}
}

func TestRecorderCapturesFigureSection(t *testing.T) {
	rec := NewRecorder()
	fig := NewFigure("bw", "bytes", "MB/s")
	s1 := fig.AddSeries("ib")
	s1.Add(8, 100)
	s1.Add(16, 200)
	fig.AddSeries("gige").Add(8, 10)
	if err := fig.Fprint(rec); err != nil {
		t.Fatal(err)
	}
	sec := rec.Document().Sections[0]
	if sec.Kind != "figure" || sec.Title != "bw" {
		t.Errorf("section header wrong: %+v", sec)
	}
	want := []string{"series", "bytes", "MB/s"}
	for i, c := range want {
		if sec.Columns[i] != c {
			t.Errorf("columns = %v, want %v", sec.Columns, want)
			break
		}
	}
	if len(sec.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(sec.Rows))
	}
	if sec.Rows[2][0] != "gige" || sec.Rows[2][1] != "8.0000" {
		t.Errorf("last row wrong: %v", sec.Rows[2])
	}
	// The text form must still match a plain figure print.
	var plain bytes.Buffer
	fig2 := NewFigure("bw", "bytes", "MB/s")
	p1 := fig2.AddSeries("ib")
	p1.Add(8, 100)
	p1.Add(16, 200)
	fig2.AddSeries("gige").Add(8, 10)
	fig2.Fprint(&plain)
	if rec.Text() != plain.String() {
		t.Errorf("figure text differs:\n%q\nvs\n%q", rec.Text(), plain.String())
	}
}

func TestRecorderMultipleSections(t *testing.T) {
	rec := NewRecorder()
	sampleTable().Fprint(rec)
	fig := NewFigure("f", "x", "y")
	fig.AddSeries("s").Add(1, 2)
	fig.Fprint(rec)
	if n := len(rec.Document().Sections); n != 2 {
		t.Fatalf("got %d sections, want 2", n)
	}
	if rec.Document().Sections[1].Kind != "figure" {
		t.Error("second section should be the figure")
	}
}

func TestDocumentJSONRoundTrip(t *testing.T) {
	rec := NewRecorder()
	sampleTable().Fprint(rec)
	var b bytes.Buffer
	if err := rec.Document().JSON(&b); err != nil {
		t.Fatal(err)
	}
	var got Document
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(got.Sections) != 1 || got.Sections[0].Title != "latency" {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.Sections[0].Rows[1][0] != "gige-8n" {
		t.Errorf("round trip lost rows: %v", got.Sections[0].Rows)
	}
}

func TestDocumentCSV(t *testing.T) {
	rec := NewRecorder()
	tbl := NewTable("t1", "name", "value")
	tbl.AddRow(`quo"ted`, "a,b")
	tbl.Fprint(rec)
	fig := NewFigure("f1", "x", "y")
	fig.AddSeries("s").Add(1, 2)
	fig.Fprint(rec)

	var b strings.Builder
	if err := rec.Document().CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# t1 (table)\n",
		"name,value\n",
		"\"quo\"\"ted\",\"a,b\"\n",
		"\n# f1 (figure)\n",
		"series,x,y\n",
		"s,1.0000,2.0000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q in:\n%s", want, out)
		}
	}
}

func TestSectionCopyIsDefensive(t *testing.T) {
	rec := NewRecorder()
	tbl := sampleTable()
	tbl.Fprint(rec)
	tbl.AddRow("later", 9.0)
	if n := len(rec.Document().Sections[0].Rows); n != 2 {
		t.Errorf("captured section grew with the table: %d rows", n)
	}
}

func TestRebuildRoundTrip(t *testing.T) {
	// A recorded run, serialized (as the disk cache stores it) and
	// rebuilt, must be indistinguishable from the original: same text
	// bytes, same sections, same re-rendered CSV.
	rec := NewRecorder()
	sampleTable().Fprint(rec)
	fig := NewFigure("fit", "size", "ns")
	s := fig.AddSeries("measured")
	s.Add(1, 1.5)
	s.Add(2, 2.5)
	fig.Fprint(rec)

	var secJSON bytes.Buffer
	if err := rec.Document().JSON(&secJSON); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(secJSON.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	got := Rebuild(rec.Bytes(), doc.Sections)
	if got.Text() != rec.Text() {
		t.Errorf("text differs after rebuild:\n got %q\nwant %q", got.Text(), rec.Text())
	}
	var wantCSV, gotCSV bytes.Buffer
	if err := rec.Document().CSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if err := got.Document().CSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if gotCSV.String() != wantCSV.String() {
		t.Errorf("CSV differs after rebuild:\n got %q\nwant %q", gotCSV.String(), wantCSV.String())
	}
	if len(got.Document().Sections) != 2 {
		t.Errorf("rebuilt document has %d sections, want 2", len(got.Document().Sections))
	}
}

func TestRebuildEmpty(t *testing.T) {
	got := Rebuild(nil, nil)
	if got.Text() != "" || len(got.Document().Sections) != 0 {
		t.Errorf("empty rebuild not empty: %q, %d sections", got.Text(), len(got.Document().Sections))
	}
}
