// Package report renders the characterization's tables and figure data:
// aligned plain-text tables for the terminal (the "paper table" format)
// and CSV series for the figures, one row per point, ready for any
// plotting tool.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, float64 compactly.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	case string:
		return v
	default:
		return fmt.Sprintf("%v", c)
	}
}

// formatFloat renders measurement values compactly: 4 significant
// digits, scientific only when far from unit scale.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return strconv.FormatFloat(v, 'e', 3, 64)
	case av >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	default:
		return strconv.FormatFloat(v, 'f', 4, 64)
	}
}

// NRows returns the number of data rows added.
func (t *Table) NRows() int { return len(t.rows) }

// Bytes renders a byte count in the largest exact binary unit
// ("4KiB", "6MiB", "1GiB"), falling back to a plain byte count — the
// format capacity columns read naturally in.
func Bytes(b int) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return strconv.Itoa(b>>30) + "GiB"
	case b >= 1<<20 && b%(1<<20) == 0:
		return strconv.Itoa(b>>20) + "MiB"
	case b >= 1<<10 && b%(1<<10) == 0:
		return strconv.Itoa(b>>10) + "KiB"
	default:
		return strconv.Itoa(b) + "B"
	}
}

// Fprint writes the aligned table. If w also implements
// SectionWriter (see Recorder), the table's structured rows are
// handed to it as well, so one rendering pass captures both forms.
func (t *Table) Fprint(w io.Writer) error {
	if sw, ok := w.(SectionWriter); ok {
		sw.WriteSection(t.section())
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as CSV (RFC-4180 quoting for cells containing
// commas or quotes).
func (t *Table) CSV(w io.Writer) error {
	if err := writeCSVRow(w, t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Series is one curve of a figure: named (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, attaches and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Fprint writes the figure as a long-format data listing: one row per
// point with the series name, which is both human-readable and directly
// loadable for plotting. If w also implements SectionWriter (see
// Recorder), the flattened points are handed to it as well.
func (f *Figure) Fprint(w io.Writer) error {
	if sw, ok := w.(SectionWriter); ok {
		sw.WriteSection(f.section())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "# series, %s, %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s, %s, %s\n", s.Name, formatFloat(s.X[i]), formatFloat(s.Y[i]))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
