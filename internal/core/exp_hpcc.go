package core

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/hpcc"
	"repro/internal/mp"
	"repro/internal/report"
)

func init() {
	register(Experiment{ID: "F8", Kind: "figure", Run: runF8, Needs: cluster.CapMultiNode,
		Title: "HPL GFLOP/s vs process count (strong + weak scaling)"})
	register(Experiment{ID: "F9", Kind: "figure", Run: runF9, Needs: cluster.CapMultiNode,
		Title: "RandomAccess GUPS vs process count"})
	register(Experiment{ID: "F10", Kind: "figure", Run: runF10, Needs: cluster.CapMultiNode,
		Title: "PTRANS bandwidth vs process count"})
	register(Experiment{ID: "F11", Kind: "figure", Run: runF11, Needs: cluster.CapMultiNode,
		Title: "Distributed FFT GFLOP/s vs transform size"})
	register(Experiment{ID: "T3", Kind: "table", Run: runT3, Needs: cluster.CapMultiNode,
		Title: "HPCC suite summary (IB platform, p=8)"})
	register(Experiment{ID: "F16", Kind: "figure", Run: runF16, Needs: cluster.CapMultiNode,
		Title: "HPL block-size (NB) ablation"})
}

func hpccProcs(s Scale) []int {
	if s == Full {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 4}
}

// hpccPlatforms resolves the scaling figures' platform axis: the two
// canonical fabrics, or the requested preset, cyclic-placed so one
// rank lands per node and the fabric dominates.
func hpccPlatforms(r Request) ([]*cluster.Model, error) {
	ms, err := platformsFor(r, cluster.IBCluster, cluster.GigECluster)
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		m.Placement = cluster.Cyclic
	}
	return ms, nil
}

func runF8(w io.Writer, r Request) error {
	ms, err := hpccPlatforms(r)
	if err != nil {
		return err
	}
	n := 192
	nb := 32
	if r.Scale == Full {
		n = 768
		nb = 64
	}
	fig := report.NewFigure(fmt.Sprintf("HPL scaling (strong: N=%d; weak: N grows as sqrt(p); NB=%d)", n, nb),
		"processes", "GFLOP/s")
	runOne := func(m *cluster.Model, p, order int) (float64, error) {
		var g float64
		cfg := mp.Config{Fabric: mp.Sim, Model: m}
		err := mp.Run(p, cfg, func(c *mp.Comm) error {
			res, err := hpcc.HPL(c, hpcc.HPLConfig{
				N: order, NB: nb, Seed: 7, Threads: 1,
				ComputeRate: m.FlopsPerCore, SkipCheck: true,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				g = res.GFlops
			}
			return nil
		})
		return g, err
	}
	for _, m := range ms {
		strong := fig.AddSeries(m.Name + "/strong")
		weak := fig.AddSeries(m.Name + "/weak")
		for _, p := range hpccProcs(r.Scale) {
			if p > m.Topo.Nodes {
				continue
			}
			g, err := runOne(m, p, n)
			if err != nil {
				return fmt.Errorf("HPL strong %s p=%d: %w", m.Name, p, err)
			}
			strong.Add(float64(p), g)
			// Weak scaling: constant memory per rank, N ~ n*sqrt(p),
			// rounded to a multiple of NB.
			wn := int(float64(n)*math.Sqrt(float64(p))+0.5) / nb * nb
			g, err = runOne(m, p, wn)
			if err != nil {
				return fmt.Errorf("HPL weak %s p=%d: %w", m.Name, p, err)
			}
			weak.Add(float64(p), g)
		}
	}
	return fig.Fprint(w)
}

// runF16 ablates the HPL panel width: small NB means frequent
// small-panel broadcasts (latency-bound); large NB means poor
// load balance and a long unblocked panel factorization. The sweet spot
// in between is exactly the NB-tuning exercise every HPL run starts
// with.
func runF16(w io.Writer, r Request) error {
	ms, err := hpccPlatforms(r)
	if err != nil {
		return err
	}
	n := 256
	nbs := []int{8, 16, 32, 64, 128}
	if r.Scale == Full {
		n = 768
		nbs = []int{8, 16, 32, 64, 128, 256}
	}
	fig := report.NewFigure(fmt.Sprintf("HPL GFLOP/s vs block size (N=%d, p=4)", n),
		"NB", "GFLOP/s")
	for _, m := range ms {
		series := fig.AddSeries(m.Name)
		for _, nb := range nbs {
			var g float64
			cfg := mp.Config{Fabric: mp.Sim, Model: m}
			err := mp.Run(4, cfg, func(c *mp.Comm) error {
				res, err := hpcc.HPL(c, hpcc.HPLConfig{
					N: n, NB: nb, Seed: 7, ComputeRate: m.FlopsPerCore, SkipCheck: true,
				})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					g = res.GFlops
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("HPL %s NB=%d: %w", m.Name, nb, err)
			}
			series.Add(float64(nb), g)
		}
	}
	return fig.Fprint(w)
}

func runF9(w io.Writer, r Request) error {
	ms, err := hpccPlatforms(r)
	if err != nil {
		return err
	}
	bits := 12
	if r.Scale == Full {
		bits = 16
	}
	fig := report.NewFigure(fmt.Sprintf("RandomAccess GUPS vs processes (2^%d table)", bits),
		"processes", "GUPS")
	for _, m := range ms {
		series := fig.AddSeries(m.Name)
		for _, p := range hpccProcs(r.Scale) {
			if p&(p-1) != 0 || p > m.Topo.Nodes {
				continue
			}
			var g float64
			cfg := mp.Config{Fabric: mp.Sim, Model: m}
			err := mp.Run(p, cfg, func(c *mp.Comm) error {
				res, err := hpcc.RandomAccess(c, hpcc.GUPSConfig{
					TableBits: bits, Chunk: 1024, ComputeRate: 2e8,
				})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					g = res.GUPS
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("GUPS %s p=%d: %w", m.Name, p, err)
			}
			series.Add(float64(p), g)
		}
	}
	return fig.Fprint(w)
}

func runF10(w io.Writer, r Request) error {
	ms, err := hpccPlatforms(r)
	if err != nil {
		return err
	}
	n := 128
	if r.Scale == Full {
		n = 512
	}
	fig := report.NewFigure(fmt.Sprintf("PTRANS bandwidth vs processes (N=%d)", n),
		"processes", "GB/s")
	for _, m := range ms {
		series := fig.AddSeries(m.Name)
		for _, p := range hpccProcs(r.Scale) {
			if n%p != 0 || p > m.Topo.Nodes {
				continue
			}
			var g float64
			cfg := mp.Config{Fabric: mp.Sim, Model: m}
			err := mp.Run(p, cfg, func(c *mp.Comm) error {
				res, err := hpcc.PTRANS(c, hpcc.PTRANSConfig{N: n, Seed: 5, MemRate: m.MemBWPerCore})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					g = res.GBps
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("PTRANS %s p=%d: %w", m.Name, p, err)
			}
			series.Add(float64(p), g)
		}
	}
	return fig.Fprint(w)
}

func runF11(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.IBCluster)
	if err != nil {
		return err
	}
	m := ms[0]
	m.Placement = cluster.Cyclic
	fig := report.NewFigure(fmt.Sprintf("Distributed FFT (p=4, %s) vs transform size", m.Name),
		"points", "GFLOP/s")
	dims := [][2]int{{64, 64}, {128, 128}, {256, 256}}
	if r.Scale == Full {
		dims = append(dims, [2]int{512, 512}, [2]int{1024, 1024})
	}
	series := fig.AddSeries(m.Name)
	for _, d := range dims {
		var g float64
		cfg := mp.Config{Fabric: mp.Sim, Model: m}
		err := mp.Run(4, cfg, func(c *mp.Comm) error {
			res, err := hpcc.DistFFT(c, hpcc.FFTConfig{
				N1: d[0], N2: d[1], Seed: 3, ComputeRate: m.FlopsPerCore / 4,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				g = res.GFlops
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("FFT %dx%d: %w", d[0], d[1], err)
		}
		series.Add(float64(d[0]*d[1]), g)
	}
	return fig.Fprint(w)
}

func runT3(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.IBCluster)
	if err != nil {
		return err
	}
	m := ms[0]
	p := 8
	if total := m.Topo.TotalCores(); p > total {
		p = total
	}
	hplN, bits, ptransN := 128, 12, 128
	fftD := 128
	if r.Scale == Full {
		hplN, bits, ptransN, fftD = 512, 16, 512, 512
	}
	t := report.NewTable(fmt.Sprintf("HPCC summary (%s, p=%d)", m.Name, p),
		"kernel", "metric", "value")

	cfg := mp.Config{Fabric: mp.Sim, Model: m}
	err = mp.Run(p, cfg, func(c *mp.Comm) error {
		hpl, err := hpcc.HPL(c, hpcc.HPLConfig{
			N: hplN, NB: 32, Seed: 7, ComputeRate: m.FlopsPerCore, SkipCheck: true,
		})
		if err != nil {
			return err
		}
		g, err := hpcc.RandomAccess(c, hpcc.GUPSConfig{TableBits: bits, Chunk: 1024, ComputeRate: 2e8})
		if err != nil {
			return err
		}
		pt, err := hpcc.PTRANS(c, hpcc.PTRANSConfig{N: ptransN, Seed: 5, MemRate: m.MemBWPerCore})
		if err != nil {
			return err
		}
		ff, err := hpcc.DistFFT(c, hpcc.FFTConfig{N1: fftD, N2: fftD, Seed: 3, ComputeRate: m.FlopsPerCore / 4})
		if err != nil {
			return err
		}
		nat, err := hpcc.NaturalRing(c, 2048, 3, 20)
		if err != nil {
			return err
		}
		rnd, err := hpcc.RandomRing(c, 2048, 3, 20, 99)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			t.AddRow("HPL", "GFLOP/s", hpl.GFlops)
			t.AddRow("RandomAccess", "GUPS", g.GUPS)
			t.AddRow("PTRANS", "GB/s", pt.GBps)
			t.AddRow("FFT", "GFLOP/s", ff.GFlops)
			t.AddRow("RandomRing", "MB/s", rnd.Bandwidth/1e6)
			t.AddRow("NaturalRing", "MB/s", nat.Bandwidth/1e6)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// DGEMM and STREAM run on the host (real compute), one node's worth.
	dg, err := hpcc.DGEMM(hpcc.DGEMMConfig{N: dgemmN(r.Scale), Threads: runtime.GOMAXPROCS(0), Reps: 3, Seed: 1})
	if err != nil {
		return err
	}
	t.AddRow("DGEMM (host)", "GFLOP/s", dg.GFlops)
	return t.Fprint(w)
}

func dgemmN(s Scale) int {
	if s == Full {
		return 512
	}
	return 128
}
