package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/mp"
	"repro/internal/nas"
	"repro/internal/osu"
	"repro/internal/report"
	"repro/internal/sparse"
	"repro/internal/stencil"
)

func init() {
	register(Experiment{ID: "F14", Kind: "figure", Run: runF14, Needs: cluster.CapMultiNode,
		Title: "Rank placement ablation: block vs cyclic latency distribution"})
	register(Experiment{ID: "F15", Kind: "table", Run: runF15, Needs: cluster.CapMultiNode,
		Title: "Application kernels (EP, IS, stencil, CG) across fabrics"})
}

// runF14 measures the p2p latency between consecutive rank pairs under
// both placement policies: block placement keeps neighbours on-node
// (until the node boundary), cyclic forces every pair off-node. The
// same job, placed differently, sees a different latency distribution —
// the placement lever every MPI launcher exposes.
func runF14(w io.Writer, r Request) error {
	iters := 30
	if r.Scale == Full {
		iters = 200
	}
	ms, err := platformsFor(r, cluster.IBCluster)
	if err != nil {
		return err
	}
	m := ms[0]
	fig := report.NewFigure("8B latency between ranks (r, r+1), by placement",
		"first rank of pair", "microseconds")
	for _, placement := range []cluster.Placement{cluster.Block, cluster.Cyclic} {
		m.Placement = placement
		n := m.Topo.TotalCores()
		series := fig.AddSeries(m.Name + "/" + placement.String())
		step := 3
		if r.Scale == Full {
			step = 1
		}
		for a := 0; a+1 < n; a += step {
			opts := osu.Options{Sizes: []int{8}, Warmup: 3, Iters: iters, Window: 8,
				PairA: a, PairB: a + 1}
			samples, err := runP2PCurve(m, a, a+1, opts, osu.Latency)
			if err != nil {
				return err
			}
			series.Add(float64(a), samples[0].Value*1e6)
		}
	}
	return fig.Fprint(w)
}

// runF15 runs the application-level workloads on every requested
// fabric: EP (compute-only: fabric-insensitive), IS (one alltoallv:
// bisection-bound), CG (allgather+allreduce per iteration:
// latency-bound). Their contrast is the application-level summary of
// the platform characterization. The trailing ratio column compares
// the last platform against the first and is dropped for a
// single-platform request.
func runF15(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.GigECluster, cluster.IBCluster)
	if err != nil {
		return err
	}
	p := 8
	pairsPerRank := 20000
	keysPerRank := 20000
	cgN := 512
	if r.Scale == Full {
		pairsPerRank = 200000
		keysPerRank = 200000
		cgN = 2048
	}

	stencilN := 64
	if r.Scale == Full {
		stencilN = 256
	}

	cols := []string{"kernel", "metric"}
	for _, m := range ms {
		cols = append(cols, m.Name)
	}
	compare := len(ms) > 1
	if compare {
		cols = append(cols, fmt.Sprintf("%s/%s",
			shortName(ms[len(ms)-1].Name), shortName(ms[0].Name)))
	}
	t := report.NewTable(fmt.Sprintf("Application kernels (p=%d, one rank/node)", p), cols...)

	type row struct{ ep, is, st, cg float64 }
	results := make([]row, len(ms))
	for i, m := range ms {
		m.Placement = cluster.Cyclic
		var rr row
		cfg := mp.Config{Fabric: mp.Sim, Model: m}
		err := mp.Run(p, cfg, func(c *mp.Comm) error {
			ep, err := nas.EP(c, nas.EPConfig{
				PairsPerRank: pairsPerRank, Seed: 1, ComputeRate: m.FlopsPerCore / 50,
			})
			if err != nil {
				return err
			}
			is, err := nas.IS(c, nas.ISConfig{
				KeysPerRank: keysPerRank, MaxKey: 1 << 20, Seed: 2,
			})
			if err != nil {
				return err
			}
			_, st, err := stencil.Jacobi(c, stencil.Config{
				NX: stencilN, NY: stencilN, Iters: 50, ComputeRate: 1e9,
			})
			if err != nil {
				return err
			}
			cgTime, err := runCG(c, cgN, p)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				rr = row{ep: ep.MopsPerS, is: is.MKeysPerS, st: st.CellsPerS, cg: cgTime}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("platform %s: %w", m.Name, err)
		}
		results[i] = rr
	}
	add := func(kernel, metric string, pick func(row) float64, scale float64, lowerBetter bool) {
		cells := []any{kernel, metric}
		for _, rr := range results {
			cells = append(cells, pick(rr)*scale)
		}
		if compare {
			first, last := pick(results[0]), pick(results[len(results)-1])
			if lowerBetter {
				cells = append(cells, ratio(first, last))
			} else {
				cells = append(cells, ratio(last, first))
			}
		}
		t.AddRow(cells...)
	}
	add("EP", "Mpairs/s", func(r row) float64 { return r.ep }, 1, false)
	add("IS", "Mkeys/s", func(r row) float64 { return r.is }, 1, false)
	add("Stencil", "Mcells/s", func(r row) float64 { return r.st }, 1e-6, false)
	add("CG", "time (ms)", func(r row) float64 { return r.cg }, 1e3, true)
	return t.Fprint(w)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// runCG runs one distributed CG solve and returns the modeled solve
// time on rank 0.
func runCG(c *mp.Comm, n, p int) (float64, error) {
	a, err := sparse.RandomSPD(n, 5, 77)
	if err != nil {
		return 0, err
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i) / 3)
	}
	b := make([]float64, n)
	if err := a.MatVec(xTrue, b); err != nil {
		return 0, err
	}
	counts := make([]int, p)
	for i := range counts {
		counts[i] = n / p
	}
	counts[p-1] += n % p
	lo := c.Rank() * (n / p)
	hi := lo + counts[c.Rank()]
	aLoc, err := a.RowSlice(lo, hi)
	if err != nil {
		return 0, err
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	t0 := c.Time()
	_, res, err := sparse.DistCG(c, aLoc, b[lo:hi], counts, 5*n, 1e-9)
	if err != nil {
		return 0, err
	}
	if !res.Converged {
		return 0, fmt.Errorf("core: CG did not converge: %+v", res)
	}
	return c.Time() - t0, nil
}
