package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenIDs is the deterministic experiment set: fully modeled, no
// host measurement, no fabric-scheduling nondeterminism. Their
// default-platform quick-scale output is pinned byte-for-byte against
// testdata captured BEFORE the platform-registry refactor, proving
// Request{Platform: ""} reproduces the hardwired-constructor output
// exactly.
var goldenIDs = []string{"T1", "M3", "M4", "M5", "M6"}

// TestGoldenDefaultPlatformOutput is the refactor's acceptance gate:
// for every deterministic experiment, the default request renders the
// same bytes the pre-refactor code did. Regenerate a golden only for
// an intentional output change:
//
//	go test ./internal/core -run TestGoldenDefaultPlatformOutput -update-golden
//
// (then eyeball the diff — a golden update IS an output change).
func TestGoldenDefaultPlatformOutput(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			var b bytes.Buffer
			if err := e.Run(&b, Request{Scale: Quick}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			path := filepath.Join("testdata", "golden", id+"_quick.txt")
			if *updateGolden {
				if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(b.Bytes(), want) {
				t.Errorf("%s default-platform output diverged from pre-refactor golden\n got %d bytes\nwant %d bytes\n--- got ---\n%s\n--- want ---\n%s",
					id, b.Len(), len(want), b.String(), want)
			}
		})
	}
}

// TestGoldenStableAcrossRuns guards the premise of the golden set:
// each listed experiment must render identical bytes twice in a row.
// If one picks up a nondeterministic source it must leave the set.
func TestGoldenStableAcrossRuns(t *testing.T) {
	for _, id := range goldenIDs {
		e, _ := Get(id)
		var a, b bytes.Buffer
		if err := e.Run(&a, Request{Scale: Quick}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := e.Run(&b, Request{Scale: Quick}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s is not deterministic and cannot be golden-tested", id)
		}
	}
}
