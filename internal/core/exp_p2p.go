package core

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/mp"
	"repro/internal/osu"
	"repro/internal/perfmodel"
	"repro/internal/report"
)

func init() {
	register(Experiment{ID: "F1", Kind: "figure", Run: runF1, Needs: cluster.CapMultiNode,
		Title: "Point-to-point latency vs message size, by path class"})
	register(Experiment{ID: "F2", Kind: "figure", Run: runF2, Needs: cluster.CapMultiNode,
		Title: "Point-to-point bandwidth vs message size"})
	register(Experiment{ID: "F3", Kind: "figure", Run: runF3, Needs: cluster.CapMultiNode,
		Title: "Bidirectional bandwidth vs message size"})
	register(Experiment{ID: "F4", Kind: "figure", Run: runF4, Needs: cluster.CapMultiNode,
		Title: "Multi-pair aggregate bandwidth (shared NIC saturation)"})
	register(Experiment{ID: "F12", Kind: "figure", Run: runF12, Needs: cluster.CapMultiNode,
		Title: "Eager vs rendezvous protocol crossover (ablation)"})
	register(Experiment{ID: "F13", Kind: "table", Run: runF13, Needs: cluster.CapMultiNode,
		Title: "LogGP parameters fitted from measurements vs configured truth"})
}

// sweepSizes returns the message-size sweep for a scale.
func sweepSizes(s Scale) []int {
	if s == Full {
		return osu.DefaultSizes()
	}
	return []int{0, 8, 256, 4096, 65536, 1 << 20}
}

func sweepOpts(s Scale) osu.Options {
	o := osu.Options{Sizes: sweepSizes(s), Warmup: 5, Iters: 50, Window: 32}
	if s == Full {
		o.Iters = 200
		o.Window = 64
	}
	return o
}

// pairForClass returns a rank pair of the given path class on the
// model under block placement.
func pairForClass(m *cluster.Model, n int, pc cluster.PathClass) (int, int) {
	switch pc {
	case cluster.IntraSocket:
		return 0, 1
	case cluster.IntraNode:
		return 0, m.Topo.CoresPerSocket
	default:
		return 0, n - 1
	}
}

// pathClassesOf returns the path classes a model actually has: a
// single-socket node collapses intra-node onto the fabric, so only
// multi-socket models get the intra-node pair.
func pathClassesOf(m *cluster.Model, classes []cluster.PathClass) []cluster.PathClass {
	var out []cluster.PathClass
	for _, pc := range classes {
		if pc == cluster.IntraNode && m.Topo.SocketsPerNode < 2 {
			continue
		}
		if pc == cluster.IntraSocket && m.Topo.CoresPerSocket < 2 {
			continue
		}
		out = append(out, pc)
	}
	return out
}

// runP2PCurve runs fn inside an mp.Run on the model's full rank count
// and returns the measured samples for the given pair.
func runP2PCurve(m *cluster.Model, pairA, pairB int, opts osu.Options,
	bench func(*mp.Comm, osu.Options) ([]osu.Sample, error)) ([]osu.Sample, error) {

	n := m.Topo.TotalCores()
	opts.PairA, opts.PairB = pairA, pairB
	var out []osu.Sample
	cfg := mp.Config{Fabric: mp.Sim, Model: m}
	err := mp.Run(n, cfg, func(c *mp.Comm) error {
		s, err := bench(c, opts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = s
		}
		return nil
	})
	return out, err
}

func runF1(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.IBCluster, cluster.GigECluster)
	if err != nil {
		return err
	}
	fig := report.NewFigure("P2P latency vs message size", "bytes", "microseconds")
	for _, m := range ms {
		n := m.Topo.TotalCores()
		classes := []cluster.PathClass{cluster.IntraSocket, cluster.IntraNode, cluster.InterNode}
		for _, pc := range pathClassesOf(m, classes) {
			a, b := pairForClass(m, n, pc)
			samples, err := runP2PCurve(m, a, b, sweepOpts(r.Scale), osu.Latency)
			if err != nil {
				return err
			}
			series := fig.AddSeries(fmt.Sprintf("%s/%s", m.Name, pc))
			for _, smp := range samples {
				series.Add(float64(smp.Size), smp.Value*1e6)
			}
		}
	}
	return fig.Fprint(w)
}

func runF2(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.IBCluster, cluster.GigECluster)
	if err != nil {
		return err
	}
	fig := report.NewFigure("P2P bandwidth vs message size", "bytes", "MB/s")
	for _, m := range ms {
		n := m.Topo.TotalCores()
		classes := []cluster.PathClass{cluster.IntraSocket, cluster.InterNode}
		for _, pc := range pathClassesOf(m, classes) {
			a, b := pairForClass(m, n, pc)
			samples, err := runP2PCurve(m, a, b, sweepOpts(r.Scale), osu.Bandwidth)
			if err != nil {
				return err
			}
			series := fig.AddSeries(fmt.Sprintf("%s/%s", m.Name, pc))
			for _, smp := range samples {
				series.Add(float64(smp.Size), smp.Value/1e6)
			}
		}
	}
	return fig.Fprint(w)
}

func runF3(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.IBCluster, cluster.GigECluster)
	if err != nil {
		return err
	}
	fig := report.NewFigure("Bidirectional bandwidth vs message size", "bytes", "MB/s")
	for _, m := range ms {
		n := m.Topo.TotalCores()
		a, b := pairForClass(m, n, cluster.InterNode)
		uni, err := runP2PCurve(m, a, b, sweepOpts(r.Scale), osu.Bandwidth)
		if err != nil {
			return err
		}
		bi, err := runP2PCurve(m, a, b, sweepOpts(r.Scale), osu.BiBandwidth)
		if err != nil {
			return err
		}
		su := fig.AddSeries(m.Name + "/unidirectional")
		for _, smp := range uni {
			su.Add(float64(smp.Size), smp.Value/1e6)
		}
		sb := fig.AddSeries(m.Name + "/bidirectional")
		for _, smp := range bi {
			sb.Add(float64(smp.Size), smp.Value/1e6)
		}
	}
	return fig.Fprint(w)
}

// narrowNode reshapes a platform to 4-core single-socket nodes so that
// a multi-pair run under block placement puts all senders on one node:
// their traffic shares one NIC, producing the saturation curve F4
// shows. The fabric and node parameters are the preset's own.
func narrowNode(m *cluster.Model) *cluster.Model {
	m.Name += "-narrow"
	m.Topo = cluster.Topology{Nodes: 8, SocketsPerNode: 1, CoresPerSocket: 4}
	return m
}

func runF4(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.IBCluster)
	if err != nil {
		return err
	}
	m := narrowNode(ms[0])
	fig := report.NewFigure("Multi-pair aggregate bandwidth (senders share a NIC)",
		"pairs", "MB/s")
	sizes := []int{4096, 65536, 1 << 20}
	if r.Scale == Quick {
		sizes = []int{65536}
	}
	for _, size := range sizes {
		series := fig.AddSeries(fmt.Sprintf("msg=%dB", size))
		for _, pairs := range []int{1, 2, 4} {
			opts := osu.Options{Sizes: []int{size}, Warmup: 2, Iters: 20, Window: 16}
			var agg float64
			cfg := mp.Config{Fabric: mp.Sim, Model: m}
			err := mp.Run(8, cfg, func(c *mp.Comm) error {
				r, err := osu.MultiPairBandwidth(c, pairs, opts)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					agg = r[0].Value
				}
				return nil
			})
			if err != nil {
				return err
			}
			series.Add(float64(pairs), agg/1e6)
		}
	}
	return fig.Fprint(w)
}

func runF12(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.IBCluster)
	if err != nil {
		return err
	}
	m := ms[0]
	n := m.Topo.TotalCores()
	fig := report.NewFigure("Eager vs rendezvous latency (inter-node)", "bytes", "microseconds")
	sizes := []int{64, 1024, 8192, 65536, 262144, 1 << 20}
	if r.Scale == Full {
		sizes = nil
		for sz := 64; sz <= 4<<20; sz <<= 1 {
			sizes = append(sizes, sz)
		}
	}
	for _, mode := range []struct {
		name   string
		thresh int
	}{
		{"always-eager", 1 << 30},
		{"always-rendezvous", -1},
		{"default-8KiB", 0},
	} {
		opts := osu.Options{Sizes: sizes, Warmup: 3, Iters: 30, Window: 8,
			PairA: 0, PairB: n - 1}
		var samples []osu.Sample
		cfg := mp.Config{Fabric: mp.Sim, Model: m, EagerThreshold: mode.thresh}
		err := mp.Run(n, cfg, func(c *mp.Comm) error {
			sm, err := osu.Latency(c, opts)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				samples = sm
			}
			return nil
		})
		if err != nil {
			return err
		}
		series := fig.AddSeries(mode.name)
		for _, smp := range samples {
			series.Add(float64(smp.Size), smp.Value*1e6)
		}
	}
	return fig.Fprint(w)
}

func runF13(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.GigECluster)
	if err != nil {
		return err
	}
	m := ms[0]
	n := m.Topo.TotalCores()
	a, b := pairForClass(m, n, cluster.InterNode)
	opts := sweepOpts(r.Scale)
	// Fit the latency model over the linear region only (small
	// messages are pure eager; keep within the eager threshold).
	var latSizes []int
	for _, sz := range opts.Sizes {
		if sz >= 8 && sz <= 8192 {
			latSizes = append(latSizes, sz)
		}
	}
	latOpts := opts
	latOpts.Sizes = latSizes
	lat, err := runP2PCurve(m, a, b, latOpts, osu.Latency)
	if err != nil {
		return err
	}
	bw, err := runP2PCurve(m, a, b, opts, osu.Bandwidth)
	if err != nil {
		return err
	}
	fit, err := perfmodel.FitLogGP(lat, bw)
	if err != nil {
		return err
	}
	truth := m.Links.InterNode
	t := report.NewTable(fmt.Sprintf("LogGP fit vs configured truth (%s inter-node)", m.Name),
		"parameter", "truth", "fitted", "rel.err")
	trueLat := truth.TransferTime(0)
	t.AddRow("L+2o (us)", trueLat*1e6, fit.LPlus2o*1e6, perfmodel.RelErr(fit.LPlus2o, trueLat))
	t.AddRow("G (ns/byte)", truth.GB*1e9, fit.G*1e9, perfmodel.RelErr(fit.G, truth.GB))
	t.AddRow("stream BW (MB/s)", truth.Bandwidth()/1e6, fit.GapBW/1e6, perfmodel.RelErr(fit.GapBW, truth.Bandwidth()))
	t.AddRow("fit R^2", 1.0, fit.R2, 0.0)
	return t.Fprint(w)
}
