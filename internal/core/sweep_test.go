package core

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from the current output")

// TestPlatformSweep runs every registered experiment on every preset
// its capability declaration accepts, at Quick scale — the presets ×
// experiments matrix the registry refactor unlocked. Each cell must
// succeed, produce output, and (for platform-consuming experiments)
// mention the preset it ran on. Cells run in parallel; the whole sweep
// is a few registry smokes' worth of work, not one per preset.
func TestPlatformSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("platform sweep skipped in -short mode")
	}
	// Experiments whose output never echoes the platform name: F4
	// renames its model ("-narrow"), F12's series are protocol modes.
	nameless := map[string]bool{"F4": true, "F12": true}
	for _, e := range All() {
		for _, platform := range e.Platforms() {
			e, platform := e, platform
			t.Run(e.ID+"/"+platform, func(t *testing.T) {
				t.Parallel()
				var b bytes.Buffer
				if err := e.Run(&b, Request{Scale: Quick, Platform: platform}); err != nil {
					t.Fatalf("%s on %s: %v", e.ID, platform, err)
				}
				if b.Len() == 0 {
					t.Fatalf("%s on %s produced no output", e.ID, platform)
				}
				if !nameless[e.ID] && !strings.Contains(b.String(), platform) {
					t.Errorf("%s on %s: output never names the platform:\n%s", e.ID, platform, b.String())
				}
			})
		}
	}
}
