package core

import (
	"regexp"
	"testing"
)

func TestFingerprintStableWithinProcess(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a != b {
		t.Errorf("Fingerprint not stable: %s vs %s", a, b)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(a) {
		t.Errorf("Fingerprint %q is not a hex SHA-256", a)
	}
}

func TestFingerprintTracksRegistry(t *testing.T) {
	before := Fingerprint()

	// Grow the registry: the fingerprint must change, because a cache
	// written by a binary with a different experiment set cannot be
	// trusted.
	const id = "ZZ99-fingerprint-test"
	registry[id] = Experiment{ID: id, Kind: "table", Title: "fingerprint probe"}
	defer delete(registry, id)
	grown := Fingerprint()
	if grown == before {
		t.Error("Fingerprint unchanged after adding an experiment")
	}

	// A title change alone must also shift it — same IDs, different
	// meaning.
	registry[id] = Experiment{ID: id, Kind: "table", Title: "different title"}
	if retitled := Fingerprint(); retitled == grown {
		t.Error("Fingerprint unchanged after retitling an experiment")
	}

	delete(registry, id)
	if after := Fingerprint(); after != before {
		t.Errorf("Fingerprint not restored after registry restore: %s vs %s", after, before)
	}
}
