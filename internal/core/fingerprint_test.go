package core

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestFingerprintStableWithinProcess(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a != b {
		t.Errorf("Fingerprint not stable: %s vs %s", a, b)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(a) {
		t.Errorf("Fingerprint %q is not a hex SHA-256", a)
	}
}

func TestFingerprintTracksRegistry(t *testing.T) {
	before := Fingerprint()

	// Grow the registry: the fingerprint must change, because a cache
	// written by a binary with a different experiment set cannot be
	// trusted.
	const id = "ZZ99-fingerprint-test"
	registry[id] = Experiment{ID: id, Kind: "table", Title: "fingerprint probe"}
	defer delete(registry, id)
	grown := Fingerprint()
	if grown == before {
		t.Error("Fingerprint unchanged after adding an experiment")
	}

	// A title change alone must also shift it — same IDs, different
	// meaning.
	registry[id] = Experiment{ID: id, Kind: "table", Title: "different title"}
	if retitled := Fingerprint(); retitled == grown {
		t.Error("Fingerprint unchanged after retitling an experiment")
	}

	delete(registry, id)
	if after := Fingerprint(); after != before {
		t.Errorf("Fingerprint not restored after registry restore: %s vs %s", after, before)
	}
}

// changedIDs diffs two per-experiment fingerprint maps and returns the
// ids whose fingerprint moved (or appeared/disappeared).
func changedIDs(before, after map[string]string) map[string]bool {
	out := map[string]bool{}
	for id, fp := range after {
		if before[id] != fp {
			out[id] = true
		}
	}
	for id := range before {
		if _, ok := after[id]; !ok {
			out[id] = true
		}
	}
	return out
}

// TestFingerprintForIsolatesExperimentChange is the per-experiment
// independence property the whole PR rests on: mutating ONE
// experiment's identity moves that experiment's fingerprint and
// nobody else's, while the global Fingerprint still notices.
func TestFingerprintForIsolatesExperimentChange(t *testing.T) {
	before := Fingerprints()
	globalBefore := Fingerprint()

	orig := registry["T1"]
	mut := orig
	mut.Needs = orig.Needs ^ cluster.CapMemModel // flip one capability bit
	registry["T1"] = mut
	defer func() { registry["T1"] = orig }()

	after := Fingerprints()
	changed := changedIDs(before, after)
	if !changed["T1"] {
		t.Error("T1's fingerprint unchanged after mutating its Needs")
	}
	if len(changed) != 1 {
		t.Errorf("Needs change on T1 moved %d fingerprints %v, want only T1", len(changed), changed)
	}
	if Fingerprint() == globalBefore {
		t.Error("global Fingerprint unchanged after a per-experiment change")
	}
}

// TestRevBumpInvalidatesExactlyOneExperiment: the behavior revision
// is the lever an implementation-only change pulls (VCS stamps are
// excluded from the build identity), so bumping one experiment's Rev
// must move that experiment's fingerprint and nobody else's.
func TestRevBumpInvalidatesExactlyOneExperiment(t *testing.T) {
	before := Fingerprints()

	orig := registry["T1"]
	mut := orig
	mut.Rev++
	registry["T1"] = mut
	defer func() { registry["T1"] = orig }()

	changed := changedIDs(before, Fingerprints())
	if !changed["T1"] {
		t.Error("T1's fingerprint unchanged after bumping its Rev")
	}
	if len(changed) != 1 {
		t.Errorf("Rev bump on T1 moved %d fingerprints %v, want only T1", len(changed), changed)
	}
}

// TestPinVCSFoldsStampsIntoBuildIdentity: the CHARHPC_FP_PIN_VCS
// opt-out of cross-commit reuse changes the build identity (and so
// every fingerprint) whenever it is toggled — and keeps the VCS lines
// out of the golden material, which must stay environment-stable.
func TestPinVCSFoldsStampsIntoBuildIdentity(t *testing.T) {
	before := Fingerprints()
	t.Setenv(pinVCSEnv, "1")
	for id := range registry {
		material, _ := FingerprintMaterial(id)
		for _, line := range material {
			if strings.Contains(line, "vcs.") {
				t.Fatalf("%s material contains VCS line %q — stamps belong in the build identity", id, line)
			}
		}
	}
	// Test binaries carry no vcs.* build settings, so the fingerprints
	// only move when stamps exist; assert the salt-independence either
	// way: toggling the env never changes WHICH experiments agree.
	after := Fingerprints()
	if len(after) != len(before) {
		t.Fatalf("experiment count changed under pin-VCS: %d vs %d", len(after), len(before))
	}
}

// TestPresetShapeChangeInvalidatesExactlyDependents: perturbing one
// preset's shape (as a link-parameter change would) moves exactly the
// fingerprints of experiments that can run on that preset.
func TestPresetShapeChangeInvalidatesExactlyDependents(t *testing.T) {
	const preset = "gige-8n"
	before := Fingerprints()

	orig := fpPresetShape
	fpPresetShape = func(name string) (string, bool) {
		shape, ok := orig(name)
		if ok && name == preset {
			shape += " params=mutated"
		}
		return shape, ok
	}
	defer func() { fpPresetShape = orig }()

	after := Fingerprints()
	changed := changedIDs(before, after)
	for id, e := range registry {
		dependsOnPreset := false
		for _, p := range e.Platforms() {
			if p == preset {
				dependsOnPreset = true
			}
		}
		if dependsOnPreset && !changed[id] {
			t.Errorf("%s can run on %s but its fingerprint did not move", id, preset)
		}
		if !dependsOnPreset && changed[id] {
			t.Errorf("%s cannot run on %s but its fingerprint moved", id, preset)
		}
	}
	if len(changed) == 0 {
		t.Fatalf("no experiment depends on %s — the test proves nothing", preset)
	}
}

// TestScaleDefChangeInvalidatesEverything: the scale definitions are a
// dependency of every experiment, so redefining them moves every
// fingerprint.
func TestScaleDefChangeInvalidatesEverything(t *testing.T) {
	before := Fingerprints()
	orig := fpScales
	fpScales = func() []Scale { return []Scale{Quick} } // Full dropped
	defer func() { fpScales = orig }()
	after := Fingerprints()
	changed := changedIDs(before, after)
	if len(changed) != len(registry) {
		t.Errorf("scale-def change moved %d of %d fingerprints", len(changed), len(registry))
	}
}

// Salt hooks: the env-driven stand-ins the deploy-upgrade harness and
// the CI smoke job use to simulate each mutation axis without editing
// source. Each salt must perturb exactly the slice its axis owns.
func TestSaltHooks(t *testing.T) {
	depsOf := func(preset string) map[string]bool {
		out := map[string]bool{}
		for id, e := range registry {
			for _, p := range e.Platforms() {
				if p == preset {
					out[id] = true
				}
			}
		}
		return out
	}
	allIDs := func() map[string]bool {
		out := map[string]bool{}
		for id := range registry {
			out[id] = true
		}
		return out
	}

	cases := []struct {
		name string
		env  string
		want map[string]bool // ids whose fingerprint must move
	}{
		{"experiment", saltExpEnv + "T1", map[string]bool{"T1": true}},
		{"build", saltBuildEnv, allIDs()},
		{"scale", saltScaleEnv, allIDs()},
		{"platform", saltPlatformEnv + "gige-8n", depsOf("gige-8n")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := Fingerprints()
			t.Setenv(tc.env, "deploy-simulation")
			changed := changedIDs(before, Fingerprints())
			for id := range tc.want {
				if !changed[id] {
					t.Errorf("salt %s: %s's fingerprint did not move", tc.env, id)
				}
			}
			for id := range changed {
				if !tc.want[id] {
					t.Errorf("salt %s: %s's fingerprint moved but should not have", tc.env, id)
				}
			}
		})
	}
}

// TestFingerprintForUnregistered pins the empty-string contract.
func TestFingerprintForUnregistered(t *testing.T) {
	if fp := FingerprintFor("no-such-experiment"); fp != "" {
		t.Errorf("FingerprintFor(unregistered) = %q, want empty", fp)
	}
	if _, ok := FingerprintMaterial("no-such-experiment"); ok {
		t.Error("FingerprintMaterial(unregistered) reported ok")
	}
}

// TestFingerprintsAgreeWithFingerprintFor: the bulk map and the
// single-id path must be the same hash.
func TestFingerprintsAgreeWithFingerprintFor(t *testing.T) {
	fps := Fingerprints()
	if len(fps) != len(registry) {
		t.Fatalf("Fingerprints has %d entries for %d experiments", len(fps), len(registry))
	}
	for id, fp := range fps {
		if one := FingerprintFor(id); one != fp {
			t.Errorf("%s: Fingerprints()=%s but FingerprintFor=%s", id, fp[:12], one[:12])
		}
	}
}
