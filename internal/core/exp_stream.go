package core

import (
	"io"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/stream"
)

func init() {
	register(Experiment{ID: "F7", Kind: "figure", Run: runF7,
		Title: "STREAM Triad bandwidth vs thread count (measured + model)"})
	register(Experiment{ID: "T2", Kind: "table", Run: runT2, NoPlatform: true,
		Title: "STREAM Copy/Scale/Add/Triad bandwidth table"})
}

func streamN(s Scale) int {
	if s == Full {
		return 8 << 20 // 64 MiB per array: beats any LLC
	}
	return 1 << 18
}

func runF7(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.SMPNode)
	if err != nil {
		return err
	}
	fig := report.NewFigure("STREAM Triad bandwidth vs threads", "threads", "MB/s")
	maxT := runtime.GOMAXPROCS(0)
	threads := []int{1}
	for t := 2; t <= maxT; t *= 2 {
		threads = append(threads, t)
	}
	ntimes := 5
	if r.Scale == Full {
		ntimes = 10
	}

	for _, ft := range []bool{true, false} {
		name := "measured/first-touch"
		if !ft {
			name = "measured/serial-init"
		}
		series := fig.AddSeries(name)
		for _, t := range threads {
			res, err := stream.Run(stream.Config{
				N: streamN(r.Scale), NTimes: ntimes, Threads: t, FirstTouch: ft,
			})
			if err != nil {
				return err
			}
			series.Add(float64(t), res[3].MBps()) // Triad
		}
	}

	// Model curve from the platform's node parameters.
	for _, m := range ms {
		series := fig.AddSeries("model/" + m.Name)
		for _, t := range threads {
			bw := stream.ModelTriadRate(t, m.Topo.CoresPerSocket, m.MemBWPerCore, m.MemBWPerSocket)
			series.Add(float64(t), bw/1e6)
		}
	}
	return fig.Fprint(w)
}

func runT2(w io.Writer, r Request) error {
	res, err := stream.Run(stream.Config{
		N: streamN(r.Scale), NTimes: 10, FirstTouch: true,
	})
	if err != nil {
		return err
	}
	t := report.NewTable("STREAM results (best rate)",
		"kernel", "MB/s", "avg time (s)", "min time (s)", "max time (s)")
	for _, r := range res {
		t.AddRow(r.Kernel.String(), r.MBps(), r.AvgTime, r.MinTime, r.MaxTime)
	}
	return t.Fprint(w)
}
