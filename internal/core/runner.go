// The execution layer of the registry: run experiments off-terminal
// into Recorders, serially or on a worker pool. Experiments already
// write to whatever writer they are handed and share no mutable
// state, so independent runs compose freely across goroutines; the
// pool here is what fills a cold results cache concurrently and what
// cmd/charhpc's -j flag drives.
package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// Result is one experiment execution captured off-terminal: the
// Recorder holds the byte-exact text a serial run would have produced
// plus the structured sections behind it, so the output can be
// re-rendered (text, CSV, JSON) without re-running.
type Result struct {
	Experiment Experiment
	Req        Request
	Rec        *report.Recorder
	Elapsed    time.Duration
	Err        error
}

// Run executes one experiment against a fresh Recorder and times it.
// An invalid platform for this experiment fails before anything runs;
// a failing experiment still returns whatever output it produced
// before the error.
//
// Every run opens an obs.Span attached to the Recorder (see
// report.Recorder.Span); experiments hang child spans off it per
// platform and per probe phase via the phase helper, so the finished
// Result carries a queryable timing tree without perturbing a single
// output byte — the span lives beside the report body, never in it.
func Run(e Experiment, r Request) Result {
	return RunWithHooks(e, r, RunHooks{})
}

// RunHooks observes one execution live, while the experiment is still
// producing output — the feed behind the async job API's progress
// stream. All fields are optional; the zero value makes RunWithHooks
// identical to Run. Callbacks fire on the goroutine driving the run
// (spans of concurrent children may fire from theirs) and must not
// write to the experiment's output.
type RunHooks struct {
	// SpanAttrs are stamped on the run's root span in addition to the
	// standard identity attrs — e.g. the owning job ID, so a run's
	// trace in /debug/traces can be tied back to its job.
	SpanAttrs map[string]string
	// Section fires as each table/figure lands on the Recorder.
	Section func(report.Section)
	// SpanStarted/SpanEnded observe the run's span tree as it grows:
	// one Started per child span (per-platform passes, probe phases),
	// one Ended per span including the root.
	SpanStarted func(*obs.Span)
	SpanEnded   func(*obs.Span)
}

// RunWithHooks is Run with live observation: sections and span
// transitions are reported through h as they happen. The Result —
// output bytes, structured sections, ETag-relevant content — is
// byte-identical to Run's; hooks only watch.
func RunWithHooks(e Experiment, r Request, h RunHooks) Result {
	rec := report.NewRecorder()
	if err := e.CheckPlatform(r.Platform); err != nil {
		return Result{Experiment: e, Req: r, Rec: rec, Err: err}
	}
	sp := obs.StartSpan(e.ID)
	sp.SetAttr("id", e.ID)
	sp.SetAttr("kind", e.Kind)
	sp.SetAttr("scale", r.Scale.String())
	if r.Platform != "" {
		sp.SetAttr("platform", r.Platform)
	}
	for k, v := range h.SpanAttrs {
		sp.SetAttr(k, v)
	}
	if h.SpanStarted != nil || h.SpanEnded != nil {
		sp.Observe(obs.ObserverFuncs{Started: h.SpanStarted, Ended: h.SpanEnded})
	}
	if h.Section != nil {
		rec.SetSectionHook(h.Section)
	}
	rec.SetSpan(sp)
	t0 := time.Now()
	err := e.Run(rec, r)
	sp.End()
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	return Result{Experiment: e, Req: r, Rec: rec, Elapsed: time.Since(t0), Err: err}
}

// spanCarrier is the writer capability the tracing helpers probe for;
// report.Recorder implements it.
type spanCarrier interface{ Span() *obs.Span }

// spanOf returns the active run span when w carries one, else nil.
// All obs.Span methods are nil-safe, so callers never need to branch.
func spanOf(w io.Writer) *obs.Span {
	if c, ok := w.(spanCarrier); ok {
		return c.Span()
	}
	return nil
}

// phase opens a child span named name under w's run span and returns
// its closer — the one-liner experiments use around probe phases and
// per-platform model passes:
//
//	done := phase(w, "measure/ladder")
//	...
//	done()
//
// On a plain writer (RunAll to stdout, tests) both the span and the
// closer are no-ops, so instrumented experiments behave identically
// with or without tracing.
func phase(w io.Writer, name string) func() {
	sp := spanOf(w).StartChild(name)
	return sp.End
}

// resolve maps experiment IDs to registry entries, failing on the
// first unknown ID — or, with an explicit platform, the first ID the
// platform is incompatible with — so nothing runs on a typo.
func resolve(ids []string, r Request) ([]Experiment, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := Get(id)
		if !ok {
			return nil, fmt.Errorf("core: unknown experiment %q", id)
		}
		if err := e.CheckPlatform(r.Platform); err != nil {
			return nil, err
		}
		exps[i] = e
	}
	return exps, nil
}

// runPool executes exps on `workers` goroutines via run, invoking fn
// with the input index as each completes. fn is called from worker
// goroutines and must be safe for concurrent use.
func runPool(exps []Experiment, r Request, workers int, run func(Experiment, Request) Result, fn func(int, Result)) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	type job struct {
		i int
		e Experiment
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				fn(j.i, run(j.e, r))
			}
		}()
	}
	for i, e := range exps {
		jobs <- job{i, e}
	}
	close(jobs)
	wg.Wait()
}

// RunParallel executes the named experiments on a pool of `workers`
// goroutines and returns their results in the order of ids. Per-run
// errors are carried in each Result; the returned error is non-nil
// only for an unknown ID or an incompatible platform, in which case
// nothing runs.
func RunParallel(ids []string, r Request, workers int) ([]Result, error) {
	exps, err := resolve(ids, r)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(exps))
	runPool(exps, r, workers, Run, func(i int, res Result) { out[i] = res })
	return out, nil
}

// RunParallelFunc is the streaming form of RunParallel: fn is invoked
// from worker goroutines as each experiment completes, in completion
// order. It returns only after every run has finished (and its fn
// call returned), or immediately with an error on an unknown ID or
// incompatible platform.
func RunParallelFunc(ids []string, r Request, workers int, fn func(Result)) error {
	return RunParallelWith(ids, r, workers, Run, fn)
}

// RunParallelWith is RunParallelFunc with the per-experiment executor
// swapped out — callers that wrap Run (instrumentation, limits, test
// stubs) get the same worker pool driven through their wrapper.
func RunParallelWith(ids []string, r Request, workers int, run func(Experiment, Request) Result, fn func(Result)) error {
	exps, err := resolve(ids, r)
	if err != nil {
		return err
	}
	runPool(exps, r, workers, run, func(_ int, res Result) { fn(res) })
	return nil
}
