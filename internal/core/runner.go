// The execution layer of the registry: run experiments off-terminal
// into Recorders, serially or on a worker pool. Experiments already
// write to whatever writer they are handed and share no mutable
// state, so independent runs compose freely across goroutines; the
// pool here is what fills a cold results cache concurrently and what
// cmd/charhpc's -j flag drives.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/report"
)

// Result is one experiment execution captured off-terminal: the
// Recorder holds the byte-exact text a serial run would have produced
// plus the structured sections behind it, so the output can be
// re-rendered (text, CSV, JSON) without re-running.
type Result struct {
	Experiment Experiment
	Scale      Scale
	Rec        *report.Recorder
	Elapsed    time.Duration
	Err        error
}

// Run executes one experiment against a fresh Recorder and times it.
// A failing experiment still returns whatever output it produced
// before the error.
func Run(e Experiment, s Scale) Result {
	rec := report.NewRecorder()
	t0 := time.Now()
	err := e.Run(rec, s)
	return Result{Experiment: e, Scale: s, Rec: rec, Elapsed: time.Since(t0), Err: err}
}

// resolve maps experiment IDs to registry entries, failing on the
// first unknown ID so nothing runs on a typo.
func resolve(ids []string) ([]Experiment, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := Get(id)
		if !ok {
			return nil, fmt.Errorf("core: unknown experiment %q", id)
		}
		exps[i] = e
	}
	return exps, nil
}

// runPool executes exps on `workers` goroutines via run, invoking fn
// with the input index as each completes. fn is called from worker
// goroutines and must be safe for concurrent use.
func runPool(exps []Experiment, s Scale, workers int, run func(Experiment, Scale) Result, fn func(int, Result)) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	type job struct {
		i int
		e Experiment
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				fn(j.i, run(j.e, s))
			}
		}()
	}
	for i, e := range exps {
		jobs <- job{i, e}
	}
	close(jobs)
	wg.Wait()
}

// RunParallel executes the named experiments on a pool of `workers`
// goroutines and returns their results in the order of ids. Per-run
// errors are carried in each Result; the returned error is non-nil
// only for an unknown ID, in which case nothing runs.
func RunParallel(ids []string, s Scale, workers int) ([]Result, error) {
	exps, err := resolve(ids)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(exps))
	runPool(exps, s, workers, Run, func(i int, r Result) { out[i] = r })
	return out, nil
}

// RunParallelFunc is the streaming form of RunParallel: fn is invoked
// from worker goroutines as each experiment completes, in completion
// order. It returns only after every run has finished (and its fn
// call returned), or immediately with an error on an unknown ID.
func RunParallelFunc(ids []string, s Scale, workers int, fn func(Result)) error {
	return RunParallelWith(ids, s, workers, Run, fn)
}

// RunParallelWith is RunParallelFunc with the per-experiment executor
// swapped out — callers that wrap Run (instrumentation, limits, test
// stubs) get the same worker pool driven through their wrapper.
func RunParallelWith(ids []string, s Scale, workers int, run func(Experiment, Scale) Result, fn func(Result)) error {
	exps, err := resolve(ids)
	if err != nil {
		return err
	}
	runPool(exps, s, workers, run, func(_ int, r Result) { fn(r) })
	return nil
}
