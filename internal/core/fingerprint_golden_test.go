package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestFingerprintMaterialGolden pins every registered experiment's
// FingerprintFor input material — the dependency lines, NOT the hash
// (the hash folds in the build identity, which legitimately differs
// between environments; the material is what review must see). Any
// change to what some experiment's cached results are allowed to
// depend on — a new dependency, a lost one, a reworded identity line,
// a preset shape reaching more or fewer experiments — shows up as a
// diff against testdata/fingerprint_material.golden and fails here
// until someone regenerates it with -update-golden and a reviewer
// reads exactly what moved. That visibility is the compensating
// control for excluding VCS stamps from the fingerprint: a dependency
// change can never ride along silently inside a deploy.
func TestFingerprintMaterialGolden(t *testing.T) {
	var sb strings.Builder
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		material, ok := FingerprintMaterial(id)
		if !ok {
			t.Fatalf("FingerprintMaterial(%q) not ok for a registered id", id)
		}
		fmt.Fprintf(&sb, "# %s\n", id)
		for _, line := range material {
			sb.WriteString(line) // lines carry their own newline
		}
		sb.WriteString("\n")
	}
	got := sb.String()

	path := filepath.Join("testdata", "fingerprint_material.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("fingerprint material drifted from golden.\n"+
			"An experiment's cache-dependency set changed: diff below, regenerate with\n"+
			"  go test ./internal/core -run TestFingerprintMaterialGolden -update-golden\n"+
			"and have review confirm the new dependencies are intended.\n%s",
			diffLines(string(want), got))
	}
}

// diffLines renders a minimal line diff (golden vs got) — enough to
// see which experiment and which dependency line moved.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&sb, "line %d:\n  golden: %q\n  got:    %q\n", i+1, w, g)
		}
	}
	return sb.String()
}

// TestFingerprintMaterialExcludesEnvironment: the golden material must
// be reproducible on any machine, so it may not leak build identity
// (Go version, GOOS/GOARCH, module stamps) — those hash separately in
// FingerprintFor.
func TestFingerprintMaterialExcludesEnvironment(t *testing.T) {
	for id := range registry {
		material, _ := FingerprintMaterial(id)
		for _, line := range material {
			if strings.HasPrefix(line, "build") {
				t.Errorf("%s material contains a build line %q — build identity must stay out of the golden material", id, line)
			}
		}
	}
}
