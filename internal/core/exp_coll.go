package core

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/mp"
	"repro/internal/osu"
	"repro/internal/report"
)

func init() {
	register(Experiment{ID: "F5", Kind: "figure", Run: runF5, Needs: cluster.CapMultiNode,
		Title: "Collective latency vs process count (bcast/allreduce/alltoall/barrier)"})
	register(Experiment{ID: "F6", Kind: "figure", Run: runF6, Needs: cluster.CapMultiNode,
		Title: "Collective algorithm comparison (ablation)"})
}

// collProcs returns the process-count sweep.
func collProcs(s Scale) []int {
	if s == Full {
		return []int{2, 4, 8, 16, 32, 64}
	}
	return []int{2, 4, 8, 16}
}

// collPlatform resolves the collective experiments' platform: the
// canonical 64-node IB model, or the requested preset, with cyclic
// placement either way so a p-rank job spreads one rank per node
// (wrapping onto further cores once p exceeds the node count) — the
// configuration collective-scaling studies use.
func collPlatform(r Request) (*cluster.Model, error) {
	ms, err := platformsFor(r, cluster.BigIBCluster)
	if err != nil {
		return nil, err
	}
	m := ms[0]
	m.Placement = cluster.Cyclic
	return m, nil
}

// measureColl runs one collective latency measurement at p ranks.
func measureColl(m *cluster.Model, p, warm, iters int, mk func(c *mp.Comm) func() error) (float64, error) {
	var lat float64
	cfg := mp.Config{Fabric: mp.Sim, Model: m}
	err := mp.Run(p, cfg, func(c *mp.Comm) error {
		l, err := osu.CollectiveLatency(c, warm, iters, mk(c))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			lat = l
		}
		return nil
	})
	return lat, err
}

func runF5(w io.Writer, r Request) error {
	m, err := collPlatform(r)
	if err != nil {
		return err
	}
	iters := 30
	if r.Scale == Full {
		iters = 100
	}
	fig := report.NewFigure(fmt.Sprintf("Collective latency vs process count (one rank/node, %s)", m.Name),
		"processes", "microseconds")

	type coll struct {
		name string
		mk   func(c *mp.Comm) func() error
	}
	small := 8
	large := 64 * 1024
	colls := []coll{
		{"barrier", func(c *mp.Comm) func() error {
			return func() error { return c.Barrier() }
		}},
		{fmt.Sprintf("bcast-%dB", small), func(c *mp.Comm) func() error {
			buf := make([]byte, small)
			return func() error { return c.Bcast(0, buf) }
		}},
		{fmt.Sprintf("bcast-%dB", large), func(c *mp.Comm) func() error {
			buf := make([]byte, large)
			return func() error { return c.Bcast(0, buf) }
		}},
		{fmt.Sprintf("allreduce-%dB", small), func(c *mp.Comm) func() error {
			in := make([]float64, small/8)
			out := make([]float64, small/8)
			return func() error { return c.Allreduce(mp.OpSum, in, out) }
		}},
		{fmt.Sprintf("allreduce-%dB", large), func(c *mp.Comm) func() error {
			in := make([]float64, large/8)
			out := make([]float64, large/8)
			return func() error { return c.Allreduce(mp.OpSum, in, out) }
		}},
		{"alltoall-1KiB", func(c *mp.Comm) func() error {
			sb := make([]byte, 1024*c.Size())
			rb := make([]byte, 1024*c.Size())
			return func() error { return c.Alltoall(sb, rb) }
		}},
	}
	for _, cl := range colls {
		series := fig.AddSeries(cl.name)
		for _, p := range collProcs(r.Scale) {
			if p > m.Topo.TotalCores() {
				continue
			}
			lat, err := measureColl(m, p, 5, iters, cl.mk)
			if err != nil {
				return fmt.Errorf("%s @ p=%d: %w", cl.name, p, err)
			}
			series.Add(float64(p), lat*1e6)
		}
	}
	return fig.Fprint(w)
}

func runF6(w io.Writer, r Request) error {
	m, err := collPlatform(r)
	if err != nil {
		return err
	}
	p := 16
	iters := 30
	sizes := []int{64, 4096, 65536, 1 << 20}
	if r.Scale == Full {
		p = 32
		iters = 100
		sizes = []int{8, 64, 512, 4096, 32768, 262144, 1 << 20, 4 << 20}
	}
	if total := m.Topo.TotalCores(); p > total {
		p = total
	}

	fig := report.NewFigure(fmt.Sprintf("Collective algorithms vs message size (p=%d, %s)", p, m.Name),
		"bytes", "microseconds")

	// Broadcast: binomial vs scatter-allgather.
	for _, algo := range []struct {
		name string
		a    mp.BcastAlgo
	}{
		{"bcast-binomial", mp.BcastBinomial},
		{"bcast-scatter-allgather", mp.BcastScatterAllgather},
		{"bcast-pipeline-ring", mp.BcastPipelineRing},
	} {
		series := fig.AddSeries(algo.name)
		for _, size := range sizes {
			var lat float64
			cfg := mp.Config{Fabric: mp.Sim, Model: m, Bcast: algo.a}
			err := mp.Run(p, cfg, func(c *mp.Comm) error {
				buf := make([]byte, size)
				l, err := osu.CollectiveLatency(c, 3, iters, func() error {
					return c.Bcast(0, buf)
				})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					lat = l
				}
				return nil
			})
			if err != nil {
				return err
			}
			series.Add(float64(size), lat*1e6)
		}
	}

	// Allreduce: recursive doubling vs Rabenseifner vs ring.
	for _, algo := range []struct {
		name string
		a    mp.AllreduceAlgo
	}{
		{"allreduce-recdoubling", mp.AllreduceRecursiveDoubling},
		{"allreduce-rabenseifner", mp.AllreduceRabenseifner},
		{"allreduce-ring", mp.AllreduceRing},
	} {
		series := fig.AddSeries(algo.name)
		for _, size := range sizes {
			var lat float64
			cfg := mp.Config{Fabric: mp.Sim, Model: m, Allreduce: algo.a}
			err := mp.Run(p, cfg, func(c *mp.Comm) error {
				in := make([]float64, size/8+1)
				out := make([]float64, size/8+1)
				l, err := osu.CollectiveLatency(c, 3, iters, func() error {
					return c.Allreduce(mp.OpSum, in, out)
				})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					lat = l
				}
				return nil
			})
			if err != nil {
				return err
			}
			series.Add(float64(size), lat*1e6)
		}
	}
	return fig.Fprint(w)
}
