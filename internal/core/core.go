// Package core is the characterization harness — the study's primary
// deliverable. It defines the reconstructed evaluation as a registry of
// experiments, each of which drives the benchmark suites over the
// modeled platforms and renders its table or figure data to a writer.
// Three families are registered: the tables T1-T4, the communication
// and application figures F1-F16 (see DESIGN.md), and the
// memory-hierarchy family M1-M6 (latency ladder, TLB stress, page-size
// comparison, fitted-vs-truth, NUMA placement ladder, placement
// slowdown; see internal/mem). cmd/charhpc runs the whole registry;
// bench_test.go exposes one bench target per experiment.
//
// The platform is a request axis: every experiment runs against a
// Request{Scale, Platform}, where Platform names a preset from
// internal/cluster's registry and "" means the experiment's canonical
// platform set (byte-identical to the pre-registry hardwired output).
// Experiments declare the capabilities a preset must have (Needs), so
// callers can enumerate the valid presets per experiment and reject
// incompatible requests before anything runs.
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/cluster"
)

// Scale selects the sweep sizes: Quick keeps everything small enough
// for unit tests and benchmark iterations; Full reproduces the
// paper-scale sweeps.
type Scale int

const (
	// Quick runs reduced sweeps (seconds).
	Quick Scale = iota
	// Full runs paper-scale sweeps (minutes).
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Request parameterizes one experiment execution: the sweep scale and
// the platform axis. Platform is a preset name from internal/cluster's
// registry; the zero value ("") selects the experiment's canonical
// platform set and reproduces the historical output byte-for-byte.
type Request struct {
	Scale    Scale
	Platform string
}

// String renders the request for cache keys and error messages:
// "quick" for the default platform set, "quick@ib-8n" otherwise.
func (r Request) String() string {
	if r.Platform == "" {
		return r.Scale.String()
	}
	return r.Scale.String() + "@" + r.Platform
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md ("T1", "F5", ...).
	ID string
	// Title describes what the table/figure shows.
	Title string
	// Kind is "table" or "figure".
	Kind string
	// Run produces the experiment's output for one request.
	Run func(w io.Writer, r Request) error
	// Needs is the capability mask a preset must satisfy for this
	// experiment to be meaningful on it (fabric experiments need
	// multi-node models, the M family needs a memory model, M5/M6
	// need NUMA). Zero (cluster.CapAny) accepts every preset.
	Needs cluster.Capability
	// NoPlatform marks experiments with no platform axis at all
	// (host-only measurements such as T2): only the default request
	// is valid for them.
	NoPlatform bool
	// Rev is the experiment's behavior revision. Bump it in the same
	// change whenever the Run implementation's OUTPUT can differ for
	// some request — a fixed formula, a re-tuned model constant, a
	// changed column — so cached results from the previous revision
	// are invalidated. It is the only fingerprint input that captures
	// implementation changes: the build identity deliberately excludes
	// VCS stamps (see fingerprint.go), so without a Rev bump a
	// code-only deploy reuses every cached result. The fingerprint
	// golden test pins each experiment's Rev, which makes a behavior
	// change that forgot the bump at least visible in review whenever
	// the dependency material moves.
	Rev int
}

// Platforms returns the preset names this experiment accepts for an
// explicit Request.Platform, in registry order — what the service
// advertises in its listing. Nil for NoPlatform experiments.
func (e Experiment) Platforms() []string {
	if e.NoPlatform {
		return nil
	}
	return cluster.NamesWith(e.Needs)
}

// Typed platform-validation failures. CheckPlatform and platformsFor
// wrap these with %w so callers (the HTTP layer's error envelope, the
// CLIs) can branch on the class of failure with errors.Is instead of
// substring-matching rendered messages.
var (
	// ErrUnknownPlatform marks a platform name that resolves to neither
	// a preset nor a registered custom.
	ErrUnknownPlatform = errors.New("unknown platform")
	// ErrIncompatiblePlatform marks a platform that exists but lacks a
	// capability the experiment Needs.
	ErrIncompatiblePlatform = errors.New("is incompatible")
	// ErrNoPlatformAxis marks an explicit platform given to an
	// experiment that measures the host and accepts none.
	ErrNoPlatformAxis = errors.New("has no platform axis")
)

// CheckPlatform validates an explicit platform name against the
// experiment's declared needs. The default "" is always valid.
func (e Experiment) CheckPlatform(name string) error {
	if name == "" {
		return nil
	}
	if e.NoPlatform {
		return fmt.Errorf("core: experiment %s %w (it measures the host)", e.ID, ErrNoPlatformAxis)
	}
	m, ok := cluster.Lookup(name)
	if !ok {
		return fmt.Errorf("core: %w %q (presets: %v)", ErrUnknownPlatform, name, cluster.Names())
	}
	if !m.Has(e.Needs) {
		return fmt.Errorf("core: platform %q %w with experiment %s (needs %s; valid: %v)",
			name, ErrIncompatiblePlatform, e.ID, e.Needs, e.Platforms())
	}
	return nil
}

var registry = map[string]Experiment{}

// register adds an experiment at package init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %s", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment in a stable order: tables
// first, then figures, each group sorted by ID with the family letters
// alphabetical and the numeric suffix numeric ("F2" before "F10",
// "F16" before "M1").
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind == "table" && out[j].Kind != "table"
		}
		return idLess(out[i].ID, out[j].ID)
	})
	return out
}

// idLess orders experiment IDs by (letter prefix, numeric suffix), so
// mixed families collate deterministically: F2 < F10 < M1 < T4. IDs
// without a clean numeric suffix sort before numbered siblings of the
// same prefix, then fall back to the full-string comparison.
func idLess(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// splitID splits an ID like "F13" into its letter prefix and number.
// A malformed suffix — empty ("F") or non-numeric tail ("F13x") —
// reports -1, below every well-formed number, instead of silently
// parsing as 0 and colliding with a real "F0".
func splitID(id string) (string, int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	n, err := strconv.Atoi(id[i:])
	if err != nil {
		return id[:i], -1
	}
	return id[:i], n
}

// RunAll executes every experiment serially against w, collecting
// per-experiment errors instead of stopping at the first (matching
// the worker-pool runner's keep-going semantics; see runner.go for
// the concurrent path). With an explicit platform the run covers the
// compatible experiments only — an all-registry sweep on one preset
// is "everything this platform can answer", not an error per
// incompatible ID.
func RunAll(w io.Writer, r Request) error {
	var errs []error
	for _, e := range All() {
		if r.Platform != "" && e.CheckPlatform(r.Platform) != nil {
			continue
		}
		fmt.Fprintf(w, "\n### %s (%s): %s\n", e.ID, e.Kind, e.Title)
		if err := e.Run(w, r); err != nil {
			errs = append(errs, fmt.Errorf("core: experiment %s: %w", e.ID, err))
		}
	}
	return errors.Join(errs...)
}

// platformsFor resolves a request's platform axis for an experiment:
// "" instantiates the canonical constructors; an explicit name becomes
// a one-element list looked up in the preset registry. Every model is
// freshly constructed, so experiments may mutate placement or topology
// without aliasing other runs.
func platformsFor(r Request, canonical ...func() *cluster.Model) ([]*cluster.Model, error) {
	if r.Platform == "" {
		ms := make([]*cluster.Model, len(canonical))
		for i, mk := range canonical {
			ms[i] = mk()
		}
		return ms, nil
	}
	m, ok := cluster.Lookup(r.Platform)
	if !ok {
		return nil, fmt.Errorf("core: %w %q (presets: %v)", ErrUnknownPlatform, r.Platform, cluster.Names())
	}
	return []*cluster.Model{m}, nil
}
