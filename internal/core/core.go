// Package core is the characterization harness — the study's primary
// deliverable. It defines the reconstructed evaluation as a registry of
// experiments, each of which drives the benchmark suites over the
// modeled platforms and renders its table or figure data to a writer.
// Three families are registered: the tables T1-T4, the communication
// and application figures F1-F16 (see DESIGN.md), and the
// memory-hierarchy family M1-M6 (latency ladder, TLB stress, page-size
// comparison, fitted-vs-truth, NUMA placement ladder, placement
// slowdown; see internal/mem). cmd/charhpc runs the whole registry;
// bench_test.go exposes one bench target per experiment.
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Scale selects the sweep sizes: Quick keeps everything small enough
// for unit tests and benchmark iterations; Full reproduces the
// paper-scale sweeps.
type Scale int

const (
	// Quick runs reduced sweeps (seconds).
	Quick Scale = iota
	// Full runs paper-scale sweeps (minutes).
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md ("T1", "F5", ...).
	ID string
	// Title describes what the table/figure shows.
	Title string
	// Kind is "table" or "figure".
	Kind string
	// Run produces the experiment's output.
	Run func(w io.Writer, s Scale) error
}

var registry = map[string]Experiment{}

// register adds an experiment at package init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %s", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment in a stable order: tables
// first, then figures, each group sorted by ID with the family letters
// alphabetical and the numeric suffix numeric ("F2" before "F10",
// "F16" before "M1").
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind == "table" && out[j].Kind != "table"
		}
		return idLess(out[i].ID, out[j].ID)
	})
	return out
}

// idLess orders experiment IDs by (letter prefix, numeric suffix), so
// mixed families collate deterministically: F2 < F10 < M1 < T4.
func idLess(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// splitID splits an ID like "F13" into its letter prefix and number.
func splitID(id string) (string, int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	var n int
	fmt.Sscanf(id[i:], "%d", &n)
	return id[:i], n
}

// RunAll executes every experiment serially against w, collecting
// per-experiment errors instead of stopping at the first (matching
// the worker-pool runner's keep-going semantics; see runner.go for
// the concurrent path).
func RunAll(w io.Writer, s Scale) error {
	var errs []error
	for _, e := range All() {
		fmt.Fprintf(w, "\n### %s (%s): %s\n", e.ID, e.Kind, e.Title)
		if err := e.Run(w, s); err != nil {
			errs = append(errs, fmt.Errorf("core: experiment %s: %w", e.ID, err))
		}
	}
	return errors.Join(errs...)
}
