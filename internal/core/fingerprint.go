// Registry fingerprinting: a stable identity for "this binary serving
// this registry", used by the disk-backed results cache to
// self-invalidate when either changes (see internal/diskcache).
//
// Since the per-experiment split, the fingerprint is decomposed: each
// experiment has its own FingerprintFor(id) hashing only what that
// experiment's result can depend on, and the process-wide Fingerprint()
// is the hash of the whole per-experiment map — equal exactly when
// every experiment's fingerprint is, so stores use it as a cheap
// "nothing changed" check before validating entries one by one. A
// deploy that changes one experiment's dependencies invalidates that
// experiment's cached results and nobody else's.
package core

import (
	"crypto/sha256"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/cluster"
)

// Deploy-simulation hooks: when set, these environment variables salt
// one slice of the fingerprint material, so the deploy-upgrade test
// harness and the CI smoke job can stand in for a real dependency
// change without rebuilding the binary. Unset (the normal case) they
// contribute nothing.
//
//	CHARHPC_FP_SALT_BUILD           salts the build identity (all experiments)
//	CHARHPC_FP_SALT_SCALE           salts the scale definitions (all experiments)
//	CHARHPC_FP_SALT_EXP_<ID>        salts one experiment's identity
//	CHARHPC_FP_SALT_PLATFORM_<NAME> salts one preset's shape (every
//	                                experiment that can run on it)
const (
	saltBuildEnv    = "CHARHPC_FP_SALT_BUILD"
	saltScaleEnv    = "CHARHPC_FP_SALT_SCALE"
	saltExpEnv      = "CHARHPC_FP_SALT_EXP_"
	saltPlatformEnv = "CHARHPC_FP_SALT_PLATFORM_"
)

// pinVCSEnv, when set non-empty, folds the VCS stamps (vcs.revision,
// vcs.time, vcs.modified) back into the build identity: every deploy
// from a new commit then invalidates the whole store, trading the
// cross-deploy reuse this package exists for against zero reliance on
// Experiment.Rev discipline. For operators who prefer conservative
// per-commit invalidation over restart availability.
const pinVCSEnv = "CHARHPC_FP_PIN_VCS"

// Test seams: core's white-box fingerprint tests swap these to prove
// that exactly the dependent experiments react to a preset-shape or
// scale-definition change. Production never touches them.
var (
	fpPresetShape = cluster.PresetShape
	fpScales      = func() []Scale { return []Scale{Quick, Full} }
)

// buildIdentity returns the build-identity lines shared by every
// experiment's fingerprint: the Go toolchain and target platform, the
// main module's path/version/sum, and any -tags the binary was built
// with — the inputs that can change what ANY experiment computes.
//
// The VCS stamps (vcs.revision, vcs.time, vcs.modified) are
// deliberately EXCLUDED by default — that exclusion is what
// per-experiment invalidation exists for: redeploying the same
// registry from a new commit must not cold-start the whole store. A
// commit that changes what an experiment computes must therefore
// announce itself in the registry material instead: bump that
// experiment's Rev (the behavior revision carried in
// FingerprintMaterial) in the same change, or alter its identity, a
// preset's parameters, or a scale definition. The fingerprint-material
// golden test in this package pins that material per experiment so
// dependency changes are visible in review. Operators who would
// rather pay a full cold start per deploy than rely on Rev discipline
// set CHARHPC_FP_PIN_VCS, which folds the VCS stamps back in.
func buildIdentity() []string {
	lines := []string{
		fmt.Sprintln("build", runtime.Version(), runtime.GOOS, runtime.GOARCH),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		lines = append(lines, fmt.Sprintln("build mod", bi.Main.Path, bi.Main.Version, bi.Main.Sum))
		pinVCS := os.Getenv(pinVCSEnv) != ""
		for _, s := range bi.Settings {
			switch {
			case s.Key == "-tags":
				lines = append(lines, fmt.Sprintln("build tags", s.Value))
			case pinVCS && strings.HasPrefix(s.Key, "vcs."):
				lines = append(lines, fmt.Sprintln("build", s.Key, s.Value))
			}
		}
	}
	if salt := os.Getenv(saltBuildEnv); salt != "" {
		lines = append(lines, fmt.Sprintln("build salt", salt))
	}
	return lines
}

// FingerprintMaterial returns the registry-derived dependency material
// of one experiment's fingerprint, one line per dependency: the
// experiment's identity (ID, kind, title, Needs, platform axis), the
// scale definitions it reads, and the canonical shape of each preset
// it can run on. Everything a cached result for id may depend on —
// other than the build identity, which is environment-specific and
// therefore hashed separately — appears here, and ONLY what it may
// depend on: the golden test in fingerprint_golden_test.go pins this
// material for every registered experiment, so unintentional
// dependency growth (or loss) fails review visibly. ok is false for an
// unregistered id.
func FingerprintMaterial(id string) ([]string, bool) {
	e, ok := registry[id]
	if !ok {
		return nil, false
	}
	lines := []string{
		fmt.Sprintln("experiment", e.ID, e.Kind, e.Title, uint32(e.Needs), e.NoPlatform),
		// The behavior revision: authors bump e.Rev when the Run
		// implementation's output changes, which is the only way an
		// implementation-only deploy reaches the fingerprint (VCS
		// stamps are excluded from the build identity by default).
		fmt.Sprintln("experiment rev", e.Rev),
	}
	if salt := os.Getenv(saltExpEnv + e.ID); salt != "" {
		lines = append(lines, fmt.Sprintln("experiment salt", salt))
	}
	for _, s := range fpScales() {
		lines = append(lines, fmt.Sprintln("scale", int(s), s.String()))
	}
	if salt := os.Getenv(saltScaleEnv); salt != "" {
		lines = append(lines, fmt.Sprintln("scale salt", salt))
	}
	// The preset shapes this experiment's results can depend on: every
	// preset satisfying its Needs (which includes the canonical default
	// set — canonical constructors are preset models). Custom platforms
	// are deliberately absent: their identity is content-hashed into
	// the custom-<hash> name itself, so a custom-qualified cache key
	// can never silently mean a different machine.
	presets := e.Platforms()
	sort.Strings(presets)
	for _, name := range presets {
		shape, ok := fpPresetShape(name)
		if !ok {
			continue
		}
		lines = append(lines, fmt.Sprintln("preset", shape))
		if salt := os.Getenv(saltPlatformEnv + name); salt != "" {
			lines = append(lines, fmt.Sprintln("preset salt", name, salt))
		}
	}
	return lines, true
}

// FingerprintFor hashes everything the identified experiment's cached
// results can depend on — the build identity plus the experiment's
// FingerprintMaterial. Two binaries agree on FingerprintFor(id)
// exactly when a result one of them cached for id is still a valid
// answer from the other; the disk cache stores it per entry and
// validates per entry, so a deploy invalidates the delta instead of
// the store. Empty for an unregistered id.
func FingerprintFor(id string) string {
	material, ok := FingerprintMaterial(id)
	if !ok {
		return ""
	}
	return hashExperiment(buildIdentity(), material)
}

// hashExperiment hashes one experiment's build identity + dependency
// material into its fingerprint.
func hashExperiment(build, material []string) string {
	h := sha256.New()
	fmt.Fprintln(h, "experiment-fingerprint/v2")
	for _, line := range build {
		fmt.Fprint(h, line)
	}
	for _, line := range material {
		fmt.Fprint(h, line)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Fingerprints returns every registered experiment's fingerprint,
// keyed by ID — what a diskcache.Store validates entries against.
func Fingerprints() map[string]string {
	build := buildIdentity()
	out := make(map[string]string, len(registry))
	for id := range registry {
		material, _ := FingerprintMaterial(id)
		out[id] = hashExperiment(build, material)
	}
	return out
}

// Fingerprint is the process-wide registry fingerprint: the hash of
// the sorted per-experiment fingerprint map. It changes exactly when
// some experiment's FingerprintFor does (or an experiment appears or
// disappears), so a store whose recorded Fingerprint matches the
// caller's knows every entry is still valid without touching one —
// the cheap "nothing changed" fast path across a no-op redeploy.
func Fingerprint() string {
	fps := Fingerprints()
	ids := make([]string, 0, len(fps))
	for id := range fps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := sha256.New()
	fmt.Fprintln(h, "fingerprint/v2")
	for _, id := range ids {
		fmt.Fprintln(h, id, fps[id])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
