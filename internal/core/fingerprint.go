// Registry fingerprinting: a stable identity for "this binary serving
// this registry", used by the disk-backed results cache to
// self-invalidate when either changes (see internal/diskcache).
package core

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"runtime/debug"

	"repro/internal/cluster"
)

// Fingerprint hashes the build identity of the running binary together
// with the shape of the experiment registry — the sorted experiment
// (ID, kind, title, platform needs) tuples, the scale definitions, and
// the platform preset registry (names, capability tags, topologies).
// Two processes share a fingerprint exactly when they were built from
// the same code and register the same experiments over the same
// presets, which is the precondition for trusting each other's cached
// results: a renamed preset or a changed capability set silently
// changes what a (id, scale, platform) key means, so it must purge
// the store.
//
// Build identity comes from runtime/debug.ReadBuildInfo: the main
// module's path/version/sum and the VCS revision/time/dirty-flag
// stamped into `go build` binaries, plus the Go toolchain version and
// target platform. Binaries built without VCS stamping (go test, go
// run of a dirty tree) still differ once the registry or toolchain
// does; the registry hash is what guards the dominant failure mode —
// an experiment's identity or set changing between writer and reader.
func Fingerprint() string {
	h := sha256.New()
	fmt.Fprintln(h, "fingerprint/v1")
	fmt.Fprintln(h, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if bi, ok := debug.ReadBuildInfo(); ok {
		fmt.Fprintln(h, bi.Main.Path, bi.Main.Version, bi.Main.Sum)
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.time", "vcs.modified", "-tags":
				fmt.Fprintln(h, s.Key, s.Value)
			}
		}
	}
	for _, e := range All() {
		fmt.Fprintln(h, e.ID, e.Kind, e.Title, uint32(e.Needs), e.NoPlatform)
	}
	for _, s := range []Scale{Quick, Full} {
		fmt.Fprintln(h, int(s), s.String())
	}
	for _, line := range cluster.RegistryShape() {
		fmt.Fprintln(h, line)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
