package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment promised in DESIGN.md must be registered.
	want := []string{
		"T1", "T2", "T3", "T4",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7",
		"F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16",
	}
	for _, id := range want {
		e, ok := Get(id)
		if !ok {
			t.Errorf("experiment %s missing from registry", id)
			continue
		}
		if e.ID != id || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s malformed: %+v", id, e)
		}
		if e.Kind != "table" && e.Kind != "figure" {
			t.Errorf("experiment %s has kind %q", id, e.Kind)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllOrdering(t *testing.T) {
	all := All()
	// Tables first.
	sawFigure := false
	for _, e := range all {
		if e.Kind == "figure" {
			sawFigure = true
		} else if sawFigure {
			t.Fatalf("table %s after a figure", e.ID)
		}
	}
	// F2 before F10.
	pos := map[string]int{}
	for i, e := range all {
		pos[e.ID] = i
	}
	if pos["F2"] > pos["F10"] {
		t.Error("numeric ID ordering broken: F2 after F10")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("Z9"); ok {
		t.Error("unknown experiment found")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("Scale strings wrong")
	}
}

// The experiment smoke tests run each experiment at Quick scale and make
// shape assertions on the rendered output — these are the "who wins"
// checks from DESIGN.md.

func runExp(t *testing.T, id string) string {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var b bytes.Buffer
	if err := e.Run(&b, Quick); err != nil {
		t.Fatalf("experiment %s failed: %v", id, err)
	}
	out := b.String()
	if len(out) == 0 {
		t.Fatalf("experiment %s produced no output", id)
	}
	return out
}

func TestT1PlatformTable(t *testing.T) {
	out := runExp(t, "T1")
	for _, want := range []string{"gige-8n", "ib-8n", "intra-socket", "inter-node"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 missing %q", want)
		}
	}
}

func TestF1LatencyShape(t *testing.T) {
	out := runExp(t, "F1")
	if !strings.Contains(out, "ib-8n/intra-socket") || !strings.Contains(out, "gige-8n/inter-node") {
		t.Errorf("F1 missing series: %s", out)
	}
}

func TestF4MultiPair(t *testing.T) {
	out := runExp(t, "F4")
	if !strings.Contains(out, "msg=65536B") {
		t.Errorf("F4 missing series: %s", out)
	}
}

func TestF13FitQuality(t *testing.T) {
	out := runExp(t, "F13")
	if !strings.Contains(out, "L+2o") || !strings.Contains(out, "G (ns/byte)") {
		t.Errorf("F13 missing parameters: %s", out)
	}
}

func TestT2StreamTable(t *testing.T) {
	out := runExp(t, "T2")
	for _, k := range []string{"Copy", "Scale", "Add", "Triad"} {
		if !strings.Contains(out, k) {
			t.Errorf("T2 missing kernel %s", k)
		}
	}
}

func TestF5Collectives(t *testing.T) {
	out := runExp(t, "F5")
	for _, series := range []string{"barrier", "bcast-8B", "allreduce-65536B", "alltoall-1KiB"} {
		if !strings.Contains(out, series) {
			t.Errorf("F5 missing series %s", series)
		}
	}
}

func TestF8HPLScaling(t *testing.T) {
	out := runExp(t, "F8")
	if !strings.Contains(out, "ib-8n") || !strings.Contains(out, "gige-8n") {
		t.Errorf("F8 missing platforms: %s", out)
	}
}

func TestT3Summary(t *testing.T) {
	out := runExp(t, "T3")
	for _, k := range []string{"HPL", "RandomAccess", "PTRANS", "FFT", "DGEMM", "RandomRing"} {
		if !strings.Contains(out, k) {
			t.Errorf("T3 missing kernel %s", k)
		}
	}
}

func TestT4Comparison(t *testing.T) {
	out := runExp(t, "T4")
	// IB must win the latency-sensitive rows.
	if !strings.Contains(out, "8B latency") {
		t.Fatalf("T4 missing latency row: %s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "8B latency") && !strings.HasSuffix(strings.TrimSpace(line), "ib") {
			t.Errorf("T4: GigE won small-message latency: %q", line)
		}
		if strings.Contains(line, "GUPS") && !strings.HasSuffix(strings.TrimSpace(line), "ib") {
			t.Errorf("T4: GigE won GUPS: %q", line)
		}
	}
}

func TestF12EagerRendezvousShape(t *testing.T) {
	out := runExp(t, "F12")
	for _, series := range []string{"always-eager", "always-rendezvous", "default-8KiB"} {
		if !strings.Contains(out, series) {
			t.Errorf("F12 missing series %s", series)
		}
	}
}

func TestF14PlacementSeries(t *testing.T) {
	out := runExp(t, "F14")
	if !strings.Contains(out, "ib-8n/block") || !strings.Contains(out, "ib-8n/cyclic") {
		t.Errorf("F14 missing placement series: %s", out)
	}
}

func TestF15ApplicationKernels(t *testing.T) {
	out := runExp(t, "F15")
	for _, k := range []string{"EP", "IS", "CG"} {
		if !strings.Contains(out, k) {
			t.Errorf("F15 missing kernel %s", k)
		}
	}
}
