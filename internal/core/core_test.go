package core

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment promised in DESIGN.md must be registered.
	want := []string{
		"T1", "T2", "T3", "T4",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7",
		"F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16",
		"M1", "M2", "M3", "M4", "M5", "M6",
	}
	for _, id := range want {
		e, ok := Get(id)
		if !ok {
			t.Errorf("experiment %s missing from registry", id)
			continue
		}
		if e.ID != id || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s malformed: %+v", id, e)
		}
		if e.Kind != "table" && e.Kind != "figure" {
			t.Errorf("experiment %s has kind %q", id, e.Kind)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllOrdering(t *testing.T) {
	all := All()
	// Tables first.
	sawFigure := false
	for _, e := range all {
		if e.Kind == "figure" {
			sawFigure = true
		} else if sawFigure {
			t.Fatalf("table %s after a figure", e.ID)
		}
	}
	// F2 before F10; families collate alphabetically within a kind.
	pos := map[string]int{}
	for i, e := range all {
		pos[e.ID] = i
	}
	if pos["F2"] > pos["F10"] {
		t.Error("numeric ID ordering broken: F2 after F10")
	}
	if pos["F16"] > pos["M1"] {
		t.Error("mixed-family ordering broken: F16 after M1")
	}
	if pos["M3"] > pos["M4"] || pos["M4"] > pos["M5"] {
		t.Error("M-family ordering broken: M3/M4/M5 out of order")
	}
	// M6 is a figure and so sorts with the figure group, after the
	// F-family figures.
	if pos["F16"] > pos["M6"] {
		t.Error("figure-group ordering broken: F16 after M6")
	}
	// M3/M4 are tables and so sort with the table group, before every
	// figure, and alphabetically before the T family.
	if pos["M4"] > pos["T1"] {
		t.Error("table-group ordering broken: M4 after T1")
	}
	if pos["M3"] > pos["F1"] {
		t.Error("kind ordering broken: table M3 after figure F1")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("Z9"); ok {
		t.Error("unknown experiment found")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("Scale strings wrong")
	}
}

// The experiment smoke tests run each experiment at Quick scale and make
// shape assertions on the rendered output — these are the "who wins"
// checks from DESIGN.md.

func runExp(t *testing.T, id string) string {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var b bytes.Buffer
	if err := e.Run(&b, Request{Scale: Quick}); err != nil {
		t.Fatalf("experiment %s failed: %v", id, err)
	}
	out := b.String()
	if len(out) == 0 {
		t.Fatalf("experiment %s produced no output", id)
	}
	return out
}

func TestT1PlatformTable(t *testing.T) {
	out := runExp(t, "T1")
	for _, want := range []string{"gige-8n", "ib-8n", "intra-socket", "inter-node"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 missing %q", want)
		}
	}
}

func TestF1LatencyShape(t *testing.T) {
	out := runExp(t, "F1")
	if !strings.Contains(out, "ib-8n/intra-socket") || !strings.Contains(out, "gige-8n/inter-node") {
		t.Errorf("F1 missing series: %s", out)
	}
}

func TestF4MultiPair(t *testing.T) {
	out := runExp(t, "F4")
	if !strings.Contains(out, "msg=65536B") {
		t.Errorf("F4 missing series: %s", out)
	}
}

func TestF13FitQuality(t *testing.T) {
	out := runExp(t, "F13")
	if !strings.Contains(out, "L+2o") || !strings.Contains(out, "G (ns/byte)") {
		t.Errorf("F13 missing parameters: %s", out)
	}
}

func TestT2StreamTable(t *testing.T) {
	out := runExp(t, "T2")
	for _, k := range []string{"Copy", "Scale", "Add", "Triad"} {
		if !strings.Contains(out, k) {
			t.Errorf("T2 missing kernel %s", k)
		}
	}
}

func TestF5Collectives(t *testing.T) {
	out := runExp(t, "F5")
	for _, series := range []string{"barrier", "bcast-8B", "allreduce-65536B", "alltoall-1KiB"} {
		if !strings.Contains(out, series) {
			t.Errorf("F5 missing series %s", series)
		}
	}
}

func TestF8HPLScaling(t *testing.T) {
	out := runExp(t, "F8")
	if !strings.Contains(out, "ib-8n") || !strings.Contains(out, "gige-8n") {
		t.Errorf("F8 missing platforms: %s", out)
	}
}

func TestT3Summary(t *testing.T) {
	out := runExp(t, "T3")
	for _, k := range []string{"HPL", "RandomAccess", "PTRANS", "FFT", "DGEMM", "RandomRing"} {
		if !strings.Contains(out, k) {
			t.Errorf("T3 missing kernel %s", k)
		}
	}
}

func TestT4Comparison(t *testing.T) {
	out := runExp(t, "T4")
	// IB must win the latency-sensitive rows.
	if !strings.Contains(out, "8B latency") {
		t.Fatalf("T4 missing latency row: %s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "8B latency") && !strings.HasSuffix(strings.TrimSpace(line), "ib") {
			t.Errorf("T4: GigE won small-message latency: %q", line)
		}
		if strings.Contains(line, "GUPS") && !strings.HasSuffix(strings.TrimSpace(line), "ib") {
			t.Errorf("T4: GigE won GUPS: %q", line)
		}
	}
}

func TestF12EagerRendezvousShape(t *testing.T) {
	out := runExp(t, "F12")
	for _, series := range []string{"always-eager", "always-rendezvous", "default-8KiB"} {
		if !strings.Contains(out, series) {
			t.Errorf("F12 missing series %s", series)
		}
	}
}

func TestF14PlacementSeries(t *testing.T) {
	out := runExp(t, "F14")
	if !strings.Contains(out, "ib-8n/block") || !strings.Contains(out, "ib-8n/cyclic") {
		t.Errorf("F14 missing placement series: %s", out)
	}
}

func TestF15ApplicationKernels(t *testing.T) {
	out := runExp(t, "F15")
	for _, k := range []string{"EP", "IS", "CG"} {
		if !strings.Contains(out, k) {
			t.Errorf("F15 missing kernel %s", k)
		}
	}
}

// TestRegistrySmoke runs every registered experiment — whichever
// exp_*.go it lives in — at Quick scale and asserts it succeeds with
// non-empty output, so a broken experiment wiring fails even without a
// dedicated shape test.
func TestRegistrySmoke(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var b bytes.Buffer
			if err := e.Run(&b, Request{Scale: Quick}); err != nil {
				t.Fatalf("experiment %s failed: %v", e.ID, err)
			}
			if b.Len() == 0 {
				t.Fatalf("experiment %s produced no output", e.ID)
			}
		})
	}
}

// TestSplitIDOrdering is the table test for the ID collation,
// including malformed IDs: a digit-less or junk-suffixed ID must sort
// deterministically (before numbered siblings of its prefix) instead
// of silently parsing as 0 and colliding with a real "F0".
func TestSplitIDOrdering(t *testing.T) {
	cases := []struct {
		id         string
		wantPrefix string
		wantNum    int
	}{
		{"F13", "F", 13},
		{"T1", "T", 1},
		{"M6", "M", 6},
		{"F", "F", -1},    // no digits at all
		{"F13x", "F", -1}, // trailing junk: not a clean number
		{"FX", "FX", -1},  // all letters
		{"7", "", 7},      // no prefix
		{"F0", "F", 0},    // zero is a real number, not a parse failure
		{"", "", -1},      // empty
	}
	for _, c := range cases {
		p, n := splitID(c.id)
		if p != c.wantPrefix || n != c.wantNum {
			t.Errorf("splitID(%q) = (%q, %d), want (%q, %d)", c.id, p, n, c.wantPrefix, c.wantNum)
		}
	}

	// Ordering across mixed well-formed and malformed IDs: malformed
	// sorts before numbered IDs of the same prefix (so "F" < "F0"),
	// ties fall back to the string compare, and the classic numeric
	// collation still holds.
	ordered := []string{"F", "F13x", "F0", "F2", "F10", "F13", "FX", "M1", "T1", "T10"}
	for i := 0; i+1 < len(ordered); i++ {
		if !idLess(ordered[i], ordered[i+1]) {
			t.Errorf("idLess(%q, %q) = false, want true", ordered[i], ordered[i+1])
		}
		if idLess(ordered[i+1], ordered[i]) {
			t.Errorf("idLess(%q, %q) = true, want false", ordered[i+1], ordered[i])
		}
	}
}

// TestCheckPlatform covers the request-validation contract: default
// always passes, unknown names and incompatible presets fail with
// messages naming the valid set, and NoPlatform experiments reject
// every explicit platform.
func TestCheckPlatform(t *testing.T) {
	t1, _ := Get("T1") // any preset
	f1, _ := Get("F1") // needs multi-node
	m5, _ := Get("M5") // needs NUMA
	t2, _ := Get("T2") // host-only

	for _, e := range []Experiment{t1, f1, m5, t2} {
		if err := e.CheckPlatform(""); err != nil {
			t.Errorf("%s: default platform rejected: %v", e.ID, err)
		}
	}
	if err := t1.CheckPlatform("no-such"); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := t1.CheckPlatform("bgp-64n"); err != nil {
		t.Errorf("T1 on bgp-64n rejected: %v", err)
	}
	if err := f1.CheckPlatform("smp-1n"); err == nil {
		t.Error("F1 accepted a single-node platform")
	}
	if err := f1.CheckPlatform("gige-8n"); err != nil {
		t.Errorf("F1 on gige-8n rejected: %v", err)
	}
	if err := m5.CheckPlatform("ib-8n"); err == nil {
		t.Error("M5 accepted a non-NUMA platform")
	}
	if err := m5.CheckPlatform("fat-1n"); err != nil {
		t.Errorf("M5 on fat-1n rejected: %v", err)
	}
	if err := t2.CheckPlatform("ib-8n"); err == nil {
		t.Error("host-only T2 accepted an explicit platform")
	}

	if got := t2.Platforms(); got != nil {
		t.Errorf("T2.Platforms() = %v, want nil", got)
	}
	if got := m5.Platforms(); len(got) != 2 {
		t.Errorf("M5.Platforms() = %v, want the two NUMA presets", got)
	}
	if got := t1.Platforms(); len(got) != 6 {
		t.Errorf("T1.Platforms() = %v, want every preset", got)
	}
}

func TestM1LadderSeries(t *testing.T) {
	out := runExp(t, "M1")
	for _, series := range []string{"measured/host", "model/smp-1n", "model/bgp-64n"} {
		if !strings.Contains(out, series) {
			t.Errorf("M1 missing series %s", series)
		}
	}
}

func TestM2TLBSeries(t *testing.T) {
	out := runExp(t, "M2")
	for _, series := range []string{
		"measured/host-4KiB-pages",
		"model/smp-1n/paged", "model/smp-1n/bigmem",
		"model/bgp-64n/paged", "model/bgp-64n/bigmem",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("M2 missing series %s", series)
		}
	}
}

func TestM3BigMemoryWins(t *testing.T) {
	out := runExp(t, "M3")
	for _, want := range []string{"paged", "bigmem", "TLB reach", "first-touch"} {
		if !strings.Contains(out, want) {
			t.Errorf("M3 missing %q", want)
		}
	}
	// Past paged TLB reach, the paged rows must show a slowdown > 1
	// while the bigmem rows stay at 1. Columns: platform mode page
	// reach ws latency slowdown first-touch.
	pagedRows := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) != 8 || f[0] != "bgp-64n" {
			continue
		}
		slowdown, err := strconv.ParseFloat(f[6], 64)
		if err != nil {
			t.Errorf("M3 unparsable slowdown in %q", line)
			continue
		}
		switch f[1] {
		case "paged":
			pagedRows++
			// Every tabulated working set exceeds the 256 KiB paged
			// reach of the BG/P node, so the walk penalty must show.
			if slowdown <= 1 {
				t.Errorf("M3 bgp-64n paged ws=%s slowdown = %v, want > 1", f[4], slowdown)
			}
		case "bigmem":
			if slowdown != 1 {
				t.Errorf("M3 bgp-64n bigmem ws=%s slowdown = %v, want 1", f[4], slowdown)
			}
		}
	}
	if pagedRows != 3 {
		t.Errorf("M3 has %d bgp-64n paged rows, want 3: %s", pagedRows, out)
	}
}

// TestM5PlacementTable asserts the NUMA table covers every placement
// policy on every NUMA platform, that remote placement shows a real
// slowdown at memory-resident working sets, and that the fitted
// local/remote split lands near the configured truth.
func TestM5PlacementTable(t *testing.T) {
	out := runExp(t, "M5")
	for _, want := range []string{
		"fat-1n", "bgp-64n", "first-touch", "interleave", "remote",
		"NUMA split fitted vs truth",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("M5 missing %q", want)
		}
	}
	// Ladder rows: platform mode ws placement latency slowdown.
	remoteRows := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) != 6 || f[0] != "fat-1n" || f[3] != "remote" {
			continue
		}
		remoteRows++
		slowdown, err := strconv.ParseFloat(f[5], 64)
		if err != nil {
			t.Errorf("M5 unparsable slowdown in %q", line)
			continue
		}
		if f[2] == "1GiB" && slowdown <= 1.2 {
			t.Errorf("M5 fat-1n remote %s/%s slowdown = %v, want > 1.2", f[1], f[2], slowdown)
		}
	}
	if remoteRows != 6 { // 2 modes x 3 working sets
		t.Errorf("M5 has %d fat-1n remote rows, want 6: %s", remoteRows, out)
	}
	// Fit rows: platform tl fl tr fr tratio fratio R2 — the recovered
	// ratio must be within 10% of truth on every platform.
	fitRows := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) != 8 || (f[0] != "fat-1n" && f[0] != "bgp-64n") {
			continue
		}
		fitRows++
		trueRatio, err1 := strconv.ParseFloat(f[5], 64)
		fitRatio, err2 := strconv.ParseFloat(f[6], 64)
		if err1 != nil || err2 != nil {
			t.Errorf("M5 unparsable fit row %q", line)
			continue
		}
		if e := (fitRatio - trueRatio) / trueRatio; e > 0.1 || e < -0.1 {
			t.Errorf("M5 %s fitted ratio %v vs truth %v (>10%% off)", f[0], fitRatio, trueRatio)
		}
	}
	if fitRows != 2 {
		t.Errorf("M5 has %d fit rows, want 2: %s", fitRows, out)
	}
}

// TestM6SlowdownShape asserts the slowdown figure has the interleave
// and remote series for every NUMA platform and that remote slowdown
// starts at ~1 for cache-resident sets and ends above interleave's.
func TestM6SlowdownShape(t *testing.T) {
	out := runExp(t, "M6")
	for _, series := range []string{
		"fat-1n/paged/interleave", "fat-1n/paged/remote",
		"bgp-64n/bigmem/interleave", "bgp-64n/bigmem/remote",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("M6 missing series %s", series)
		}
	}
	last := map[string]float64{}
	first := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		parts := strings.Split(line, ",")
		if len(parts) != 3 || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.TrimSpace(parts[0])
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			continue
		}
		if _, ok := first[name]; !ok {
			first[name] = y
		}
		last[name] = y
	}
	for _, series := range []string{"fat-1n/paged/interleave", "fat-1n/paged/remote"} {
		if f := first[series]; f < 0.999 || f > 1.001 {
			t.Errorf("M6 %s starts at %v, want ~1 (cache-resident)", series, f)
		}
	}
	if !(last["fat-1n/paged/remote"] > last["fat-1n/paged/interleave"]) {
		t.Errorf("M6 remote tail %v not above interleave tail %v",
			last["fat-1n/paged/remote"], last["fat-1n/paged/interleave"])
	}
}

// TestM4FitRecovery is the acceptance gate for the hierarchy fit: on
// every modeled platform the fit must recover each configured level's
// capacity and latency within 25%.
func TestM4FitRecovery(t *testing.T) {
	out := runExp(t, "M4")
	lines := strings.Split(out, "\n")
	levelRows := 0
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) < 9 || (f[1] != "L1" && f[1] != "L2" && f[1] != "L3") {
			continue
		}
		levelRows++
		capErr, err1 := strconv.ParseFloat(f[4], 64)
		latErr, err2 := strconv.ParseFloat(f[7], 64)
		if err1 != nil || err2 != nil {
			t.Errorf("M4 unparsable row %q", line)
			continue
		}
		if capErr > 25 {
			t.Errorf("M4 %s/%s capacity error %.1f%% > 25%%", f[0], f[1], capErr)
		}
		if latErr > 25 {
			t.Errorf("M4 %s/%s latency error %.1f%% > 25%%", f[0], f[1], latErr)
		}
	}
	if levelRows < 4 {
		t.Errorf("M4 has %d level rows, want >= 4: %s", levelRows, out)
	}
}
