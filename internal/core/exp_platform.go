package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hpcc"
	"repro/internal/mp"
	"repro/internal/osu"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "T1",
		Title: "Modeled platform parameters (the testbed table)",
		Kind:  "table",
		Run:   runT1,
	})
	register(Experiment{
		ID:    "T4",
		Title: "Cross-platform comparison: GigE-class vs IB-class fabric",
		Kind:  "table",
		Run:   runT4,
		Needs: cluster.CapMultiNode,
	})
}

// shortName abbreviates a preset name to its family prefix for winner
// labels: "gige-8n" -> "gige", "ib-8n" -> "ib".
func shortName(name string) string {
	if i := strings.IndexByte(name, '-'); i > 0 {
		return name[:i]
	}
	return name
}

// runT1 prints the platform inventory: what a measurement paper's
// "experimental setup" table reports, except here the numbers are the
// simulator's configured truth. The default request covers the
// canonical testbed trio; an explicit platform prints that preset's
// rows alone.
func runT1(w io.Writer, r Request) error {
	ms, err := platformsFor(r, cluster.SMPNode, cluster.GigECluster, cluster.IBCluster)
	if err != nil {
		return err
	}
	t := report.NewTable("Platform parameters",
		"platform", "topology", "path", "latency(us)", "bandwidth(MB/s)")
	for _, m := range ms {
		classes := []cluster.PathClass{cluster.IntraSocket, cluster.IntraNode, cluster.InterNode}
		for _, pc := range pathClassesOf(m, classes) {
			if m.Topo.Nodes == 1 && pc == cluster.InterNode {
				continue
			}
			lp := m.Links.For(pc)
			t.AddRow(m.Name, m.Topo.String(), pc.String(),
				lp.TransferTime(8)*1e6, lp.Bandwidth()/1e6)
		}
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	// The canonical node-parameter rows cover the two fabrics only
	// (smp-1n shares their node); an explicit platform shows itself.
	nodeMs := ms
	if r.Platform == "" {
		nodeMs = ms[1:]
	}
	t2 := report.NewTable("Node parameters",
		"platform", "mem BW/socket (GB/s)", "mem BW/core (GB/s)", "peak GFLOP/s/core")
	for _, m := range nodeMs {
		t2.AddRow(m.Name, m.MemBWPerSocket/1e9, m.MemBWPerCore/1e9, m.FlopsPerCore/1e9)
	}
	return t2.Fprint(w)
}

// runT4 runs the same battery on every requested fabric and tabulates
// the head-to-head, the paper's summary comparison. With a single
// explicit platform the winner column (meaningless for one entrant)
// is dropped.
func runT4(w io.Writer, r Request) error {
	type row struct {
		smallLat  float64 // 8B inter-node latency (us)
		peakBW    float64 // 1 MiB p2p bandwidth (MB/s)
		allreduce float64 // 8B allreduce latency @ p (us)
		gups      float64
		ringNat   float64 // natural ring bw (MB/s)
		ringRnd   float64 // random ring bw (MB/s)
	}
	ms, err := platformsFor(r, cluster.GigECluster, cluster.IBCluster)
	if err != nil {
		return err
	}
	p := 8
	tableBits := 14
	iters := 50
	if r.Scale == Quick {
		tableBits = 10
		iters = 10
	}
	results := make([]row, len(ms))
	for i, m := range ms {
		done := phase(w, "platform/"+m.Name)
		// One rank per node: cyclic placement puts neighbours off-node,
		// so the fabric (not shared memory) is what gets compared.
		m.Placement = cluster.Cyclic
		var rr row
		cfg := mp.Config{Fabric: mp.Sim, Model: m}
		err := mp.Run(p, cfg, func(c *mp.Comm) error {
			opts := osu.Options{Sizes: []int{8, 1 << 20}, Warmup: 5, Iters: iters, Window: 32,
				PairA: 0, PairB: p - 1}
			lat, err := osu.Latency(c, opts)
			if err != nil {
				return err
			}
			bw, err := osu.Bandwidth(c, opts)
			if err != nil {
				return err
			}
			buf := make([]float64, 1)
			out := make([]float64, 1)
			ar, err := osu.CollectiveLatency(c, 5, iters, func() error {
				return c.Allreduce(mp.OpSum, buf, out)
			})
			if err != nil {
				return err
			}
			g, err := hpcc.RandomAccess(c, hpcc.GUPSConfig{TableBits: tableBits, Chunk: 1024, ComputeRate: 1e8})
			if err != nil {
				return err
			}
			nat, err := hpcc.NaturalRing(c, 4096, 5, iters)
			if err != nil {
				return err
			}
			rnd, err := hpcc.RandomRing(c, 4096, 5, iters, 99)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				rr = row{
					smallLat:  lat[0].Value * 1e6,
					peakBW:    bw[1].Value / 1e6,
					allreduce: ar * 1e6,
					gups:      g.GUPS,
					ringNat:   nat.Bandwidth / 1e6,
					ringRnd:   rnd.Bandwidth / 1e6,
				}
			}
			return nil
		})
		done()
		if err != nil {
			return fmt.Errorf("platform %s: %w", m.Name, err)
		}
		results[i] = rr
	}
	cols := []string{"metric"}
	for _, m := range ms {
		cols = append(cols, m.Name)
	}
	compare := len(ms) > 1
	if compare {
		cols = append(cols, "winner")
	}
	t := report.NewTable(fmt.Sprintf("Platform comparison (p=%d, one rank/node)", p), cols...)
	add := func(name string, vals []float64, lowerBetter bool) {
		cells := []any{name}
		for _, v := range vals {
			cells = append(cells, v)
		}
		if compare {
			// Later platforms take ties, reproducing the historical
			// gige-vs-ib rule ("ib unless gige is strictly better").
			best, win := vals[0], shortName(ms[0].Name)
			for i := 1; i < len(vals); i++ {
				if (lowerBetter && vals[i] <= best) || (!lowerBetter && vals[i] >= best) {
					best, win = vals[i], shortName(ms[i].Name)
				}
			}
			cells = append(cells, win)
		}
		t.AddRow(cells...)
	}
	pick := func(f func(row) float64) []float64 {
		out := make([]float64, len(results))
		for i, rr := range results {
			out[i] = f(rr)
		}
		return out
	}
	add("8B latency (us)", pick(func(r row) float64 { return r.smallLat }), true)
	add("1MiB p2p BW (MB/s)", pick(func(r row) float64 { return r.peakBW }), false)
	add("8B allreduce (us)", pick(func(r row) float64 { return r.allreduce }), true)
	add("RandomAccess (GUPS)", pick(func(r row) float64 { return r.gups }), false)
	add("natural ring BW (MB/s)", pick(func(r row) float64 { return r.ringNat }), false)
	add("random ring BW (MB/s)", pick(func(r row) float64 { return r.ringRnd }), false)
	return t.Fprint(w)
}
