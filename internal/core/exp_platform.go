package core

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/hpcc"
	"repro/internal/mp"
	"repro/internal/osu"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "T1",
		Title: "Modeled platform parameters (the testbed table)",
		Kind:  "table",
		Run:   runT1,
	})
	register(Experiment{
		ID:    "T4",
		Title: "Cross-platform comparison: GigE-class vs IB-class fabric",
		Kind:  "table",
		Run:   runT4,
	})
}

// runT1 prints the platform inventory: what a measurement paper's
// "experimental setup" table reports, except here the numbers are the
// simulator's configured truth.
func runT1(w io.Writer, _ Scale) error {
	t := report.NewTable("Platform parameters",
		"platform", "topology", "path", "latency(us)", "bandwidth(MB/s)")
	for _, m := range []*cluster.Model{cluster.SMPNode(), cluster.GigECluster(), cluster.IBCluster()} {
		for _, pc := range []cluster.PathClass{cluster.IntraSocket, cluster.IntraNode, cluster.InterNode} {
			if m.Topo.Nodes == 1 && pc == cluster.InterNode {
				continue
			}
			lp := m.Links.For(pc)
			t.AddRow(m.Name, m.Topo.String(), pc.String(),
				lp.TransferTime(8)*1e6, lp.Bandwidth()/1e6)
		}
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	t2 := report.NewTable("Node parameters",
		"platform", "mem BW/socket (GB/s)", "mem BW/core (GB/s)", "peak GFLOP/s/core")
	for _, m := range []*cluster.Model{cluster.GigECluster(), cluster.IBCluster()} {
		t2.AddRow(m.Name, m.MemBWPerSocket/1e9, m.MemBWPerCore/1e9, m.FlopsPerCore/1e9)
	}
	return t2.Fprint(w)
}

// runT4 runs the same battery on both fabrics and tabulates the
// head-to-head, the paper's summary comparison.
func runT4(w io.Writer, s Scale) error {
	type row struct {
		smallLat  float64 // 8B inter-node latency (us)
		peakBW    float64 // 1 MiB p2p bandwidth (MB/s)
		allreduce float64 // 8B allreduce latency @ p (us)
		gups      float64
		ringNat   float64 // natural ring bw (MB/s)
		ringRnd   float64 // random ring bw (MB/s)
	}
	p := 8
	tableBits := 14
	iters := 50
	if s == Quick {
		tableBits = 10
		iters = 10
	}
	results := map[string]row{}
	for _, m := range []*cluster.Model{cluster.GigECluster(), cluster.IBCluster()} {
		m := m
		// One rank per node: cyclic placement puts neighbours off-node,
		// so the fabric (not shared memory) is what gets compared.
		m.Placement = cluster.Cyclic
		var r row
		cfg := mp.Config{Fabric: mp.Sim, Model: m}
		err := mp.Run(p, cfg, func(c *mp.Comm) error {
			opts := osu.Options{Sizes: []int{8, 1 << 20}, Warmup: 5, Iters: iters, Window: 32,
				PairA: 0, PairB: p - 1}
			lat, err := osu.Latency(c, opts)
			if err != nil {
				return err
			}
			bw, err := osu.Bandwidth(c, opts)
			if err != nil {
				return err
			}
			buf := make([]float64, 1)
			out := make([]float64, 1)
			ar, err := osu.CollectiveLatency(c, 5, iters, func() error {
				return c.Allreduce(mp.OpSum, buf, out)
			})
			if err != nil {
				return err
			}
			g, err := hpcc.RandomAccess(c, hpcc.GUPSConfig{TableBits: tableBits, Chunk: 1024, ComputeRate: 1e8})
			if err != nil {
				return err
			}
			nat, err := hpcc.NaturalRing(c, 4096, 5, iters)
			if err != nil {
				return err
			}
			rnd, err := hpcc.RandomRing(c, 4096, 5, iters, 99)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				r = row{
					smallLat:  lat[0].Value * 1e6,
					peakBW:    bw[1].Value / 1e6,
					allreduce: ar * 1e6,
					gups:      g.GUPS,
					ringNat:   nat.Bandwidth / 1e6,
					ringRnd:   rnd.Bandwidth / 1e6,
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("platform %s: %w", m.Name, err)
		}
		results[m.Name] = r
	}
	t := report.NewTable(fmt.Sprintf("Platform comparison (p=%d, one rank/node)", p),
		"metric", "gige-8n", "ib-8n", "winner")
	g, ib := results["gige-8n"], results["ib-8n"]
	add := func(name string, gv, iv float64, lowerBetter bool) {
		win := "ib"
		if (lowerBetter && gv < iv) || (!lowerBetter && gv > iv) {
			win = "gige"
		}
		t.AddRow(name, gv, iv, win)
	}
	add("8B latency (us)", g.smallLat, ib.smallLat, true)
	add("1MiB p2p BW (MB/s)", g.peakBW, ib.peakBW, false)
	add("8B allreduce (us)", g.allreduce, ib.allreduce, true)
	add("RandomAccess (GUPS)", g.gups, ib.gups, false)
	add("natural ring BW (MB/s)", g.ringNat, ib.ringNat, false)
	add("random ring BW (MB/s)", g.ringRnd, ib.ringRnd, false)
	return t.Fprint(w)
}
