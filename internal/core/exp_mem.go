package core

// The M-family: memory-hierarchy characterization, the latency-bound
// complement to the bandwidth-bound STREAM experiments. M1 and M2 are
// the ladder and TLB figures, M3 is the page-size / big-memory
// comparison table, and M4 closes the loop by fitting the analytic
// model's own ladder and reporting recovery error, mirroring the F13
// fitted-vs-truth pattern for LogGP. M5 and M6 add the NUMA axis: the
// placement latency ladder with local/remote split recovery (table)
// and the placement slowdown vs working set (figure). M3-M6 are purely
// modeled and therefore byte-deterministic; M1/M2 include host
// measurements. M1-M4 accept any preset with a memory model; M5/M6
// need the NUMA capability.

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/perfmodel"
	"repro/internal/report"
)

func init() {
	register(Experiment{ID: "M1", Kind: "figure", Run: runM1, Needs: cluster.CapMemModel,
		Title: "Pointer-chase latency ladder vs working set (measured + model)"})
	register(Experiment{ID: "M2", Kind: "figure", Run: runM2, Needs: cluster.CapMemModel,
		Title: "TLB stress: latency vs pages touched (measured + model modes)"})
	register(Experiment{ID: "M3", Kind: "table", Run: runM3, Needs: cluster.CapMemModel,
		Title: "Page-size / big-memory comparison (modeled latency and reach)"})
	register(Experiment{ID: "M4", Kind: "table", Run: runM4, Needs: cluster.CapMemModel,
		Title: "Memory model fitted-vs-truth (hierarchy recovery from ladders)"})
	register(Experiment{ID: "M5", Kind: "table", Run: runM5, Needs: cluster.CapNUMA,
		Title: "NUMA placement latency ladder with local/remote split recovery"})
	register(Experiment{ID: "M6", Kind: "figure", Run: runM6, Needs: cluster.CapNUMA,
		Title: "NUMA placement slowdown vs working set (modeled)"})
}

// memPlatforms resolves the M1-M4 platform axis. The canonical set is
// the commodity SMP node and the big-memory (BG/P-class) node — the
// study's central contrast.
func memPlatforms(r Request) ([]*cluster.Model, error) {
	return platformsFor(r, cluster.SMPNode, cluster.BGPRack)
}

// numaPlatforms resolves the placement experiments' platform axis. The
// canonical set is the presets with a multi-node NUMA structure — the
// fat four-socket node and the dual-controller BG/P node.
func numaPlatforms(r Request) ([]*cluster.Model, error) {
	return platformsFor(r, cluster.FatNUMANode, cluster.BGPRack)
}

// runM1 renders the latency ladder: a measured pointer-chase sweep on
// the host plus each modeled platform's analytic ladder.
func runM1(w io.Writer, r Request) error {
	ms, err := memPlatforms(r)
	if err != nil {
		return err
	}
	fig := report.NewFigure("Pointer-chase latency ladder", "working set (bytes)", "ns/access")

	cfg := mem.LadderConfig{MinBytes: 4 << 10, MaxBytes: 2 << 20,
		PointsPerOctave: 2, Iters: 1 << 14, Trials: 1}
	if r.Scale == Full {
		cfg = mem.LadderConfig{MinBytes: 4 << 10, MaxBytes: 256 << 20,
			PointsPerOctave: 4, Iters: 1 << 20, Trials: 3}
	}
	done := phase(w, "measure/ladder")
	measured, err := mem.Ladder(cfg)
	done()
	if err != nil {
		return err
	}
	msr := fig.AddSeries("measured/host")
	for _, p := range measured {
		msr.Add(float64(p.Bytes), p.Seconds*1e9)
	}

	for _, m := range ms {
		done := phase(w, "model/"+m.Name)
		maxBytes := 4 * m.Mem.Levels[len(m.Mem.Levels)-1].Capacity
		series := fig.AddSeries("model/" + m.Name)
		for _, p := range m.Mem.Ladder(4<<10, maxBytes, 4) {
			series.Add(float64(p.Bytes), p.Seconds*1e9)
		}
		done()
	}
	return fig.Fprint(w)
}

// runM2 renders the TLB figure: measured one-line-per-page latency on
// the host, and each platform model evaluated in both mapping modes so
// the paged-mode walk penalty past TLB reach is visible against the
// big-memory curve.
func runM2(w io.Writer, r Request) error {
	ms, err := memPlatforms(r)
	if err != nil {
		return err
	}
	fig := report.NewFigure("TLB stress latency", "working set (bytes)", "ns/access")

	cfg := mem.TLBConfig{MinPages: 16, MaxPages: 1 << 11, PointsPerOctave: 2,
		Iters: 1 << 13, Trials: 1}
	if r.Scale == Full {
		cfg = mem.TLBConfig{MinPages: 16, MaxPages: 1 << 16, PointsPerOctave: 4,
			Iters: 1 << 19, Trials: 3}
	}
	done := phase(w, "measure/tlb")
	measured, err := mem.TLBStress(cfg)
	done()
	if err != nil {
		return err
	}
	msr := fig.AddSeries("measured/host-4KiB-pages")
	for _, p := range measured {
		msr.Add(float64(p.Pages*4096), p.Seconds*1e9)
	}

	for _, m := range ms {
		done := phase(w, "model/"+m.Name)
		for _, mode := range []mem.Mode{mem.Paged, mem.BigMemory} {
			mm := m.Mem.WithMode(mode)
			// Sweep past the paged-mode reach so the knee shows.
			maxBytes := 16 * m.Mem.WithMode(mem.Paged).TLBReach()
			series := fig.AddSeries(fmt.Sprintf("model/%s/%s", m.Name, mode))
			for _, p := range mm.Ladder(64<<10, maxBytes, 4) {
				series.Add(float64(p.Bytes), p.Seconds*1e9)
			}
		}
		done()
	}
	return fig.Fprint(w)
}

// runM3 tabulates what the mapping mode buys on each platform: page
// size, TLB reach, modeled steady-state latency at representative
// working sets, the paged-over-bigmem slowdown, and the one-time
// demand-paging cost of first touch.
func runM3(w io.Writer, r Request) error {
	ms, err := memPlatforms(r)
	if err != nil {
		return err
	}
	t := report.NewTable("Page-size / big-memory comparison",
		"platform", "mode", "page", "TLB reach", "ws", "latency (ns)",
		"slowdown", "first-touch (ms)")
	workingSets := []int{1 << 20, 64 << 20, 1 << 30}
	for _, m := range ms {
		for _, ws := range workingSets {
			big := m.Mem.WithMode(mem.BigMemory)
			for _, mode := range []mem.Mode{mem.Paged, mem.BigMemory} {
				mm := m.Mem.WithMode(mode)
				lat := mm.LoadLatency(ws)
				t.AddRow(m.Name, mode.String(),
					report.Bytes(mm.PageSize()), report.Bytes(mm.TLBReach()), report.Bytes(ws),
					lat*1e9, lat/big.LoadLatency(ws), mm.FirstTouchCost(ws)*1e3)
			}
		}
	}
	return t.Fprint(w)
}

// runM4 generates a ladder from each platform's analytic model (in
// big-memory mode, so TLB cost does not blur the cache knees), fits the
// hierarchy back with perfmodel.FitHierarchy, and tabulates recovered
// vs configured capacity and latency per level — the M-family analogue
// of F13.
func runM4(w io.Writer, r Request) error {
	ms, err := memPlatforms(r)
	if err != nil {
		return err
	}
	ppo := 4
	if r.Scale == Full {
		ppo = 8
	}
	t := report.NewTable("Hierarchy fit vs model truth",
		"platform", "level", "true cap", "fit cap", "cap err %",
		"true ns", "fit ns", "lat err %", "R2")
	for _, m := range ms {
		done := phase(w, "fit/"+m.Name)
		mm := m.Mem.WithMode(mem.BigMemory)
		maxBytes := 8 * mm.Levels[len(mm.Levels)-1].Capacity
		fit, err := perfmodel.FitHierarchy(mm.Ladder(4<<10, maxBytes, ppo), len(mm.Levels)+1)
		done()
		if err != nil {
			return fmt.Errorf("fit %s: %w", m.Name, err)
		}
		for _, truth := range mm.Levels {
			// Match each true level to the nearest recovered capacity.
			var bestFit perfmodel.FittedLevel
			bestErr := -1.0
			for _, f := range fit.Levels {
				if e := perfmodel.RelErr(float64(f.Capacity), float64(truth.Capacity)); bestErr < 0 || e < bestErr {
					bestErr, bestFit = e, f
				}
			}
			if bestErr < 0 {
				return fmt.Errorf("fit %s: no levels recovered", m.Name)
			}
			t.AddRow(m.Name, truth.Name,
				report.Bytes(truth.Capacity), report.Bytes(bestFit.Capacity), bestErr*100,
				truth.Latency*1e9, bestFit.Latency*1e9,
				perfmodel.RelErr(bestFit.Latency, truth.Latency)*100, fit.R2)
		}
		t.AddRow(m.Name, "memory", "-", "-", "-",
			mm.MemLatency*1e9, fit.MemLatency*1e9,
			perfmodel.RelErr(fit.MemLatency, mm.MemLatency)*100, fit.R2)
	}
	return t.Fprint(w)
}

// runM5 tabulates what page placement costs on each NUMA platform —
// modeled latency and slowdown per (mode, working set, placement) —
// then closes the loop like M4: a first-touch and a remote ladder are
// generated from each model and perfmodel.FitNUMASplit recovers the
// local/remote memory-latency split, compared against configured truth.
func runM5(w io.Writer, r Request) error {
	ms, err := numaPlatforms(r)
	if err != nil {
		return err
	}
	t := report.NewTable("NUMA placement latency ladder",
		"platform", "mode", "ws", "placement", "latency (ns)", "slowdown")
	workingSets := []int{1 << 20, 64 << 20, 1 << 30}
	for _, m := range ms {
		for _, mode := range []mem.Mode{mem.Paged, mem.BigMemory} {
			for _, ws := range workingSets {
				for _, p := range mem.Placements {
					t.AddRow(m.Name, mode.String(), report.Bytes(ws), p.String(),
						m.Mem.Latency(ws, mode, p)*1e9,
						m.Mem.PlacementSlowdown(ws, mode, p))
				}
			}
		}
	}
	if err := t.Fprint(w); err != nil {
		return err
	}

	ppo := 4
	if r.Scale == Full {
		ppo = 8
	}
	ft := report.NewTable("NUMA split fitted vs truth",
		"platform", "true local", "fit local", "true remote", "fit remote",
		"true ratio", "fit ratio", "R2")
	for _, m := range ms {
		done := phase(w, "fit/"+m.Name)
		split, err := perfmodel.FitNUMASplitFromModel(m.Mem, ppo)
		done()
		if err != nil {
			return fmt.Errorf("numa split %s: %w", m.Name, err)
		}
		trueRatio := m.Mem.NUMA.RemoteLatency / m.Mem.MemLatency
		ft.AddRow(m.Name,
			m.Mem.MemLatency*1e9, split.Local*1e9,
			m.Mem.NUMA.RemoteLatency*1e9, split.Remote*1e9,
			trueRatio, split.Ratio, split.R2)
	}
	return ft.Fprint(w)
}

// runM6 renders the placement slowdown curve: for each NUMA platform
// in its default mapping mode, the interleave and remote slowdown
// relative to first-touch as the working set grows. Cache-resident
// sets sit at 1; the curves rise through the capacity knees toward the
// placement's memory-latency ratio.
func runM6(w io.Writer, r Request) error {
	ms, err := numaPlatforms(r)
	if err != nil {
		return err
	}
	fig := report.NewFigure("NUMA placement slowdown",
		"working set (bytes)", "slowdown vs first-touch")
	ppo := 2
	if r.Scale == Full {
		ppo = 4
	}
	for _, m := range ms {
		mm := m.Mem
		maxBytes := 16 * mm.Levels[len(mm.Levels)-1].Capacity
		for _, p := range []mem.Placement{mem.Interleave, mem.Remote} {
			series := fig.AddSeries(fmt.Sprintf("%s/%s/%s", m.Name, mm.Mode, p))
			for _, sz := range mem.SweepSizes(4<<10, maxBytes, ppo, 64) {
				series.Add(float64(sz), mm.PlacementSlowdown(sz, mm.Mode, p))
			}
		}
	}
	return fig.Fprint(w)
}
