package core

// The M-family: memory-hierarchy characterization, the latency-bound
// complement to the bandwidth-bound STREAM experiments. M1 and M2 are
// the ladder and TLB figures, M3 is the page-size / big-memory
// comparison table, and M4 closes the loop by fitting the analytic
// model's own ladder and reporting recovery error, mirroring the F13
// fitted-vs-truth pattern for LogGP.

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/perfmodel"
	"repro/internal/report"
)

func init() {
	register(Experiment{ID: "M1", Kind: "figure", Run: runM1,
		Title: "Pointer-chase latency ladder vs working set (measured + model)"})
	register(Experiment{ID: "M2", Kind: "figure", Run: runM2,
		Title: "TLB stress: latency vs pages touched (measured + model modes)"})
	register(Experiment{ID: "M3", Kind: "table", Run: runM3,
		Title: "Page-size / big-memory comparison (modeled latency and reach)"})
	register(Experiment{ID: "M4", Kind: "table", Run: runM4,
		Title: "Memory model fitted-vs-truth (hierarchy recovery from ladders)"})
}

// memPlatforms returns the presets the M experiments model: the
// commodity SMP node and the big-memory (BG/P-class) node.
func memPlatforms() []*cluster.Model {
	return []*cluster.Model{cluster.SMPNode(), cluster.BGPRack()}
}

// runM1 renders the latency ladder: a measured pointer-chase sweep on
// the host plus each modeled platform's analytic ladder.
func runM1(w io.Writer, s Scale) error {
	fig := report.NewFigure("Pointer-chase latency ladder", "working set (bytes)", "ns/access")

	cfg := mem.LadderConfig{MinBytes: 4 << 10, MaxBytes: 2 << 20,
		PointsPerOctave: 2, Iters: 1 << 14, Trials: 1}
	if s == Full {
		cfg = mem.LadderConfig{MinBytes: 4 << 10, MaxBytes: 256 << 20,
			PointsPerOctave: 4, Iters: 1 << 20, Trials: 3}
	}
	measured, err := mem.Ladder(cfg)
	if err != nil {
		return err
	}
	ms := fig.AddSeries("measured/host")
	for _, p := range measured {
		ms.Add(float64(p.Bytes), p.Seconds*1e9)
	}

	for _, m := range memPlatforms() {
		maxBytes := 4 * m.Mem.Levels[len(m.Mem.Levels)-1].Capacity
		series := fig.AddSeries("model/" + m.Name)
		for _, p := range m.Mem.Ladder(4<<10, maxBytes, 4) {
			series.Add(float64(p.Bytes), p.Seconds*1e9)
		}
	}
	return fig.Fprint(w)
}

// runM2 renders the TLB figure: measured one-line-per-page latency on
// the host, and each platform model evaluated in both mapping modes so
// the paged-mode walk penalty past TLB reach is visible against the
// big-memory curve.
func runM2(w io.Writer, s Scale) error {
	fig := report.NewFigure("TLB stress latency", "working set (bytes)", "ns/access")

	cfg := mem.TLBConfig{MinPages: 16, MaxPages: 1 << 11, PointsPerOctave: 2,
		Iters: 1 << 13, Trials: 1}
	if s == Full {
		cfg = mem.TLBConfig{MinPages: 16, MaxPages: 1 << 16, PointsPerOctave: 4,
			Iters: 1 << 19, Trials: 3}
	}
	measured, err := mem.TLBStress(cfg)
	if err != nil {
		return err
	}
	ms := fig.AddSeries("measured/host-4KiB-pages")
	for _, p := range measured {
		ms.Add(float64(p.Pages*4096), p.Seconds*1e9)
	}

	for _, m := range memPlatforms() {
		for _, mode := range []mem.Mode{mem.Paged, mem.BigMemory} {
			mm := m.Mem.WithMode(mode)
			// Sweep past the paged-mode reach so the knee shows.
			maxBytes := 16 * m.Mem.WithMode(mem.Paged).TLBReach()
			series := fig.AddSeries(fmt.Sprintf("model/%s/%s", m.Name, mode))
			for _, p := range mm.Ladder(64<<10, maxBytes, 4) {
				series.Add(float64(p.Bytes), p.Seconds*1e9)
			}
		}
	}
	return fig.Fprint(w)
}

// runM3 tabulates what the mapping mode buys on each platform: page
// size, TLB reach, modeled steady-state latency at representative
// working sets, the paged-over-bigmem slowdown, and the one-time
// demand-paging cost of first touch.
func runM3(w io.Writer, _ Scale) error {
	t := report.NewTable("Page-size / big-memory comparison",
		"platform", "mode", "page", "TLB reach", "ws", "latency (ns)",
		"slowdown", "first-touch (ms)")
	workingSets := []int{1 << 20, 64 << 20, 1 << 30}
	for _, m := range memPlatforms() {
		for _, ws := range workingSets {
			big := m.Mem.WithMode(mem.BigMemory)
			for _, mode := range []mem.Mode{mem.Paged, mem.BigMemory} {
				mm := m.Mem.WithMode(mode)
				lat := mm.LoadLatency(ws)
				t.AddRow(m.Name, mode.String(),
					report.Bytes(mm.PageSize()), report.Bytes(mm.TLBReach()), report.Bytes(ws),
					lat*1e9, lat/big.LoadLatency(ws), mm.FirstTouchCost(ws)*1e3)
			}
		}
	}
	return t.Fprint(w)
}

// runM4 generates a ladder from each platform's analytic model (in
// big-memory mode, so TLB cost does not blur the cache knees), fits the
// hierarchy back with perfmodel.FitHierarchy, and tabulates recovered
// vs configured capacity and latency per level — the M-family analogue
// of F13.
func runM4(w io.Writer, s Scale) error {
	ppo := 4
	if s == Full {
		ppo = 8
	}
	t := report.NewTable("Hierarchy fit vs model truth",
		"platform", "level", "true cap", "fit cap", "cap err %",
		"true ns", "fit ns", "lat err %", "R2")
	for _, m := range memPlatforms() {
		mm := m.Mem.WithMode(mem.BigMemory)
		maxBytes := 8 * mm.Levels[len(mm.Levels)-1].Capacity
		fit, err := perfmodel.FitHierarchy(mm.Ladder(4<<10, maxBytes, ppo), len(mm.Levels)+1)
		if err != nil {
			return fmt.Errorf("fit %s: %w", m.Name, err)
		}
		for _, truth := range mm.Levels {
			// Match each true level to the nearest recovered capacity.
			var bestFit perfmodel.FittedLevel
			bestErr := -1.0
			for _, f := range fit.Levels {
				if e := perfmodel.RelErr(float64(f.Capacity), float64(truth.Capacity)); bestErr < 0 || e < bestErr {
					bestErr, bestFit = e, f
				}
			}
			if bestErr < 0 {
				return fmt.Errorf("fit %s: no levels recovered", m.Name)
			}
			t.AddRow(m.Name, truth.Name,
				report.Bytes(truth.Capacity), report.Bytes(bestFit.Capacity), bestErr*100,
				truth.Latency*1e9, bestFit.Latency*1e9,
				perfmodel.RelErr(bestFit.Latency, truth.Latency)*100, fit.R2)
		}
		t.AddRow(m.Name, "memory", "-", "-", "-",
			mm.MemLatency*1e9, fit.MemLatency*1e9,
			perfmodel.RelErr(fit.MemLatency, mm.MemLatency)*100, fit.R2)
	}
	return t.Fprint(w)
}
