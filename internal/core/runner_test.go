package core

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// T1 and T4 are fully modeled (no host measurement), so their output
// is deterministic and comparable across runs.
const detTable = "T1"

func TestRunCapturesSerialOutput(t *testing.T) {
	e, _ := Get(detTable)
	var serial bytes.Buffer
	if err := e.Run(&serial, Request{Scale: Quick}); err != nil {
		t.Fatal(err)
	}
	r := Run(e, Request{Scale: Quick})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Rec.Text() != serial.String() {
		t.Errorf("Run capture differs from direct run:\n%q\nvs\n%q", r.Rec.Text(), serial.String())
	}
	if r.Elapsed <= 0 {
		t.Error("Run did not time the experiment")
	}
	if r.Experiment.ID != detTable || r.Req.Scale != Quick || r.Req.Platform != "" {
		t.Errorf("Run metadata wrong: %+v", r)
	}
	if len(r.Rec.Document().Sections) == 0 {
		t.Error("Run captured no structured sections")
	}
}

func TestRunRejectsIncompatiblePlatform(t *testing.T) {
	// Run validates the platform before executing, so a direct caller
	// cannot bypass the compatibility contract.
	f1, _ := Get("F1")
	r := Run(f1, Request{Scale: Quick, Platform: "smp-1n"})
	if r.Err == nil {
		t.Error("Run executed F1 on a single-node platform")
	}
	if r.Elapsed != 0 {
		t.Error("rejected run reported a nonzero elapsed time")
	}
	r = Run(f1, Request{Scale: Quick, Platform: "no-such"})
	if r.Err == nil {
		t.Error("Run executed on an unknown platform")
	}
}

func TestRunExplicitPlatform(t *testing.T) {
	// An explicit single platform restricts the output to that preset.
	t1, _ := Get("T1")
	r := Run(t1, Request{Scale: Quick, Platform: "gige-8n"})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	out := r.Rec.Text()
	if !strings.Contains(out, "gige-8n") {
		t.Errorf("explicit-platform T1 missing its platform: %s", out)
	}
	if strings.Contains(out, "ib-8n") || strings.Contains(out, "smp-1n") {
		t.Errorf("explicit-platform T1 leaked other presets: %s", out)
	}
	// And differs from the default canonical-set output.
	def := Run(t1, Request{Scale: Quick})
	if def.Err != nil {
		t.Fatal(def.Err)
	}
	if def.Rec.Text() == out {
		t.Error("explicit platform output identical to default set output")
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	// Only fully modeled experiments are compared: the fabric-driven
	// ones (T4, F5, ...) are nondeterministic run-to-run even
	// serially, so byte-identity is only meaningful where the
	// underlying experiment is deterministic.
	ids := []string{"T1", "M3", "M4", "M5", "M6"}
	serial := map[string]string{}
	for _, id := range ids {
		e, _ := Get(id)
		var b bytes.Buffer
		if err := e.Run(&b, Request{Scale: Quick}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		serial[id] = b.String()
	}

	results, err := RunParallel(ids, Request{Scale: Quick}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	for i, r := range results {
		if r.Experiment.ID != ids[i] {
			t.Errorf("result %d is %s, want %s (order not preserved)", i, r.Experiment.ID, ids[i])
		}
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.Experiment.ID, r.Err)
		}
		if r.Rec.Text() != serial[r.Experiment.ID] {
			t.Errorf("%s parallel output differs from serial", r.Experiment.ID)
		}
	}
}

func TestRunParallelUnknownID(t *testing.T) {
	if _, err := RunParallel([]string{"T1", "Z9"}, Request{Scale: Quick}, 2); err == nil {
		t.Error("unknown ID did not fail")
	}
	if err := RunParallelFunc([]string{"Z9"}, Request{Scale: Quick}, 1, func(Result) {
		t.Error("fn called despite unknown ID")
	}); err == nil {
		t.Error("unknown ID did not fail")
	}
}

func TestRunParallelIncompatiblePlatform(t *testing.T) {
	// An explicit platform incompatible with any requested ID fails
	// the whole batch up front — nothing runs on a half-valid request.
	err := RunParallelFunc([]string{"T1", "F1"}, Request{Scale: Quick, Platform: "smp-1n"}, 2, func(Result) {
		t.Error("fn called despite incompatible platform")
	})
	if err == nil {
		t.Error("incompatible platform did not fail")
	}
	// The same IDs on a compatible platform run fine.
	results, err := RunParallel([]string{"T1", "F1"}, Request{Scale: Quick, Platform: "gige-8n"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s on gige-8n failed: %v", r.Experiment.ID, r.Err)
		}
		if r.Req.Platform != "gige-8n" {
			t.Errorf("%s result lost the platform: %+v", r.Experiment.ID, r.Req)
		}
	}
}

func TestRunParallelWorkerClamp(t *testing.T) {
	// Degenerate worker counts must still run everything.
	for _, workers := range []int{0, -3, 100} {
		results, err := RunParallel([]string{"T1"}, Request{Scale: Quick}, workers)
		if err != nil || len(results) != 1 || results[0].Err != nil {
			t.Errorf("workers=%d: results=%v err=%v", workers, results, err)
		}
	}
}

func TestRunAllKeepsGoing(t *testing.T) {
	// RunAll shares the keep-going semantics of the pool runner: it
	// must emit every experiment's header even when one fails.
	var b bytes.Buffer
	err := RunAll(&b, Request{Scale: Quick})
	if err != nil {
		t.Fatalf("RunAll at quick scale failed: %v", err)
	}
	for _, id := range []string{"T1", "F1", "M4"} {
		if !strings.Contains(b.String(), "### "+id+" ") {
			t.Errorf("RunAll output missing header for %s", id)
		}
	}
}

func TestRunAllExplicitPlatformSkipsIncompatible(t *testing.T) {
	// An all-registry sweep on one preset covers the compatible
	// experiments and silently skips the rest (host-only T2, the
	// NUMA-needing M5/M6 on a non-NUMA preset, ...).
	var b bytes.Buffer
	if err := RunAll(&b, Request{Scale: Quick, Platform: "ib-8n"}); err != nil {
		t.Fatalf("RunAll on ib-8n failed: %v", err)
	}
	out := b.String()
	for _, id := range []string{"T1", "F1"} {
		if !strings.Contains(out, "### "+id+" ") {
			t.Errorf("RunAll on ib-8n missing compatible experiment %s", id)
		}
	}
	for _, id := range []string{"T2", "M5", "M6"} {
		if strings.Contains(out, "### "+id+" ") {
			t.Errorf("RunAll on ib-8n ran incompatible experiment %s", id)
		}
	}
}

func TestRunParallelWith(t *testing.T) {
	// The custom executor must be the one the pool drives.
	var calls atomic.Int32
	stub := func(e Experiment, r Request) Result {
		calls.Add(1)
		return Run(e, r)
	}
	err := RunParallelWith([]string{"T1", "M3"}, Request{Scale: Quick}, 2, stub, func(Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("custom executor called %d times, want 2", calls.Load())
	}
}

func TestRunParallelFuncCompletionStream(t *testing.T) {
	var calls atomic.Int32
	var mu sync.Mutex
	seen := map[string]bool{}
	ids := []string{"T1", "T4", "M3"}
	err := RunParallelFunc(ids, Request{Scale: Quick}, 2, func(r Result) {
		calls.Add(1)
		mu.Lock()
		seen[r.Experiment.ID] = true
		mu.Unlock()
		if !strings.Contains(r.Rec.Text(), "==") {
			t.Errorf("%s output looks empty: %q", r.Experiment.ID, r.Rec.Text())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != len(ids) {
		t.Errorf("fn called %d times, want %d", calls.Load(), len(ids))
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("no result for %s", id)
		}
	}
}
