package nas

import "repro/internal/bytesview"

// u64view returns xs viewed as bytes (zero-copy, same-process memory).
func u64view(xs []uint64) []byte { return bytesview.U64(xs) }
