// Package nas reimplements two NAS-Parallel-Benchmark-style kernels as
// additional application workloads for the characterization:
//
//   - EP (Embarrassingly Parallel): per-rank Gaussian deviate generation
//     via the Marsaglia polar method with a deterministic per-rank
//     stream, combined only by a final reduction. It bounds the
//     platform's compute-only scaling (no communication in the loop).
//   - IS (Integer Sort): a distributed bucket sort of uniformly
//     distributed integer keys, whose single Alltoallv redistribution is
//     the classic bisection-bandwidth stressor at the application level.
package nas

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mp"
	"repro/internal/rng"
)

// EPConfig configures the embarrassingly parallel kernel.
type EPConfig struct {
	// PairsPerRank is the number of uniform pairs each rank draws.
	PairsPerRank int
	// Seed selects the deterministic streams (rank-jumped).
	Seed uint64
	// ComputeRate, if positive, charges virtual time per pair on the
	// Sim fabric.
	ComputeRate float64
}

// EPResult reports the EP kernel.
type EPResult struct {
	Pairs    int64   // total pairs across ranks
	Accepted int64   // pairs inside the unit circle
	SumX     float64 // sum of Gaussian X deviates
	SumY     float64 // sum of Gaussian Y deviates
	Counts   [10]int64
	Seconds  float64
	MopsPerS float64 // millions of pairs per second
}

// EP runs the kernel: each rank draws PairsPerRank uniform pairs from
// an independent stream, converts accepted pairs to Gaussian deviates
// (Marsaglia polar), tallies ring counts, and the results are combined
// with reductions.
func EP(c *mp.Comm, cfg EPConfig) (EPResult, error) {
	if cfg.PairsPerRank <= 0 {
		return EPResult{}, fmt.Errorf("nas: EP pairs %d", cfg.PairsPerRank)
	}
	gen := rng.NewXoshiro256ss(cfg.Seed)
	for i := 0; i < c.Rank(); i++ {
		gen.Jump()
	}

	if err := c.Barrier(); err != nil {
		return EPResult{}, err
	}
	t0 := c.Time()

	var accepted int64
	var sx, sy float64
	var counts [10]int64
	for i := 0; i < cfg.PairsPerRank; i++ {
		u := 2*gen.Float64() - 1
		v := 2*gen.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		accepted++
		f := math.Sqrt(-2 * math.Log(s) / s)
		x := u * f
		y := v * f
		sx += x
		sy += y
		ring := int(math.Max(math.Abs(x), math.Abs(y)))
		if ring > 9 {
			ring = 9
		}
		counts[ring]++
	}
	if cfg.ComputeRate > 0 {
		c.Compute(float64(cfg.PairsPerRank) / cfg.ComputeRate)
	}

	// Combine: one small allreduce, as in NAS EP.
	local := make([]float64, 13)
	local[0] = float64(accepted)
	local[1] = sx
	local[2] = sy
	for i := 0; i < 10; i++ {
		local[3+i] = float64(counts[i])
	}
	global := make([]float64, 13)
	if err := c.Allreduce(mp.OpSum, local, global); err != nil {
		return EPResult{}, err
	}
	elapsed := c.Time() - t0

	res := EPResult{
		Pairs:    int64(cfg.PairsPerRank) * int64(c.Size()),
		Accepted: int64(global[0]),
		SumX:     global[1],
		SumY:     global[2],
		Seconds:  elapsed,
	}
	for i := 0; i < 10; i++ {
		res.Counts[i] = int64(global[3+i])
	}
	if elapsed > 0 {
		res.MopsPerS = float64(res.Pairs) / elapsed / 1e6
	}
	return res, nil
}

// ISConfig configures the integer sort kernel.
type ISConfig struct {
	// KeysPerRank is the number of keys each rank contributes.
	KeysPerRank int
	// MaxKey bounds key values in [0, MaxKey).
	MaxKey int
	// Seed selects the deterministic key streams.
	Seed uint64
	// Verify checks global sortedness and key conservation.
	Verify bool
}

// ISResult reports the integer sort.
type ISResult struct {
	TotalKeys int64
	Seconds   float64
	MKeysPerS float64
	SortedOK  bool // verification outcome (true when skipped)
}

// IS runs a distributed bucket sort: keys are generated uniformly,
// bucketed by destination rank (key range partition), redistributed
// with one Alltoallv, and sorted locally. Returns this rank's sorted
// bucket via the result of verification only; the benchmark metric is
// keys/second through the redistribution.
func IS(c *mp.Comm, cfg ISConfig) (ISResult, error) {
	p := c.Size()
	if cfg.KeysPerRank <= 0 || cfg.MaxKey <= 0 {
		return ISResult{}, fmt.Errorf("nas: IS config %+v", cfg)
	}
	if cfg.MaxKey < p {
		return ISResult{}, fmt.Errorf("nas: MaxKey %d < ranks %d", cfg.MaxKey, p)
	}
	gen := rng.NewXoshiro256ss(cfg.Seed)
	for i := 0; i < c.Rank(); i++ {
		gen.Jump()
	}
	keys := make([]uint64, cfg.KeysPerRank)
	for i := range keys {
		keys[i] = gen.Uint64() % uint64(cfg.MaxKey)
	}

	// Destination: rank owning the key's range slice.
	rangePer := (cfg.MaxKey + p - 1) / p
	owner := func(k uint64) int {
		d := int(k) / rangePer
		if d >= p {
			d = p - 1
		}
		return d
	}

	if err := c.Barrier(); err != nil {
		return ISResult{}, err
	}
	t0 := c.Time()

	// Bucket locally (stable pass: count, prefix, scatter).
	sendCounts := make([]int, p)
	for _, k := range keys {
		sendCounts[owner(k)]++
	}
	offsets := make([]int, p)
	for i := 1; i < p; i++ {
		offsets[i] = offsets[i-1] + sendCounts[i-1]
	}
	packed := make([]uint64, len(keys))
	pos := append([]int(nil), offsets...)
	for _, k := range keys {
		d := owner(k)
		packed[pos[d]] = k
		pos[d]++
	}

	// Exchange counts (as an alltoall of 8-byte blocks), then keys.
	sendCountBuf := make([]uint64, p)
	recvCountBuf := make([]uint64, p)
	for i, n := range sendCounts {
		sendCountBuf[i] = uint64(n)
	}
	if err := c.Alltoall(u64view(sendCountBuf), u64view(recvCountBuf)); err != nil {
		return ISResult{}, err
	}
	recvCounts := make([]int, p)
	total := 0
	for i, n := range recvCountBuf {
		recvCounts[i] = int(n)
		total += int(n)
	}
	recvKeys := make([]uint64, total)
	sendBytes := make([]int, p)
	recvBytes := make([]int, p)
	for i := range sendCounts {
		sendBytes[i] = sendCounts[i] * 8
		recvBytes[i] = recvCounts[i] * 8
	}
	if err := c.Alltoallv(u64view(packed), sendBytes, u64view(recvKeys), recvBytes); err != nil {
		return ISResult{}, err
	}

	// Local sort of the received range slice.
	sort.Slice(recvKeys, func(i, j int) bool { return recvKeys[i] < recvKeys[j] })

	if err := c.Barrier(); err != nil {
		return ISResult{}, err
	}
	elapsed := c.Time() - t0

	res := ISResult{
		TotalKeys: int64(cfg.KeysPerRank) * int64(p),
		Seconds:   elapsed,
		SortedOK:  true,
	}
	if elapsed > 0 {
		res.MKeysPerS = float64(res.TotalKeys) / elapsed / 1e6
	}

	if cfg.Verify {
		ok, err := verifyIS(c, recvKeys, rangePer, int64(cfg.KeysPerRank)*int64(p))
		if err != nil {
			return res, err
		}
		res.SortedOK = ok
	}
	return res, nil
}

// verifyIS checks three global invariants: each rank's keys lie in its
// range slice and are locally sorted; boundary order holds between
// neighbouring ranks; and the global key count is conserved.
func verifyIS(c *mp.Comm, keys []uint64, rangePer int, wantTotal int64) (bool, error) {
	ok := 1.0
	lo := uint64(c.Rank() * rangePer)
	var hi uint64
	if c.Rank() == c.Size()-1 {
		hi = math.MaxUint64
	} else {
		hi = uint64((c.Rank() + 1) * rangePer)
	}
	for i, k := range keys {
		if k < lo || k >= hi {
			ok = 0
		}
		if i > 0 && keys[i-1] > k {
			ok = 0
		}
	}
	count, err := c.AllreduceScalar(mp.OpSum, float64(len(keys)))
	if err != nil {
		return false, err
	}
	if int64(count) != wantTotal {
		ok = 0
	}
	allOK, err := c.AllreduceScalar(mp.OpMin, ok)
	if err != nil {
		return false, err
	}
	return allOK == 1, nil
}

// ErrNotRun is returned by helpers that need a prior kernel run.
var ErrNotRun = errors.New("nas: kernel has not produced results")
