package nas

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mp"
)

func TestEPStatistics(t *testing.T) {
	// With many pairs, ~pi/4 of them are accepted and the Gaussian
	// sums are near zero relative to the deviate count.
	err := mp.Run(4, mp.Config{}, func(c *mp.Comm) error {
		res, err := EP(c, EPConfig{PairsPerRank: 100000, Seed: 1})
		if err != nil {
			return err
		}
		frac := float64(res.Accepted) / float64(res.Pairs)
		if math.Abs(frac-math.Pi/4) > 0.01 {
			return fmt.Errorf("acceptance fraction %v, want ~%v", frac, math.Pi/4)
		}
		// Mean of the deviates ~ N(0, 1/sqrt(n)); allow 5 sigma.
		n := float64(res.Accepted)
		if math.Abs(res.SumX)/math.Sqrt(n) > 5 || math.Abs(res.SumY)/math.Sqrt(n) > 5 {
			return fmt.Errorf("deviate sums too large: %v %v (n=%v)", res.SumX, res.SumY, n)
		}
		// Ring counts decay: ring 0 (|dev| < 1) must dominate ring 2.
		if res.Counts[0] <= res.Counts[2] {
			return fmt.Errorf("ring counts not decaying: %v", res.Counts)
		}
		var sum int64
		for _, ct := range res.Counts {
			sum += ct
		}
		if sum != res.Accepted {
			return fmt.Errorf("ring counts sum %d != accepted %d", sum, res.Accepted)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEPDeterministicAcrossRankCounts(t *testing.T) {
	// Total statistics must not depend on how work is split because
	// each rank uses a jumped (disjoint) stream — with the SAME total
	// pair budget per rank layout. Here: same per-rank count, p=1 vs
	// p=2 differ in totals, so instead check determinism at fixed p.
	var first EPResult
	for trial := 0; trial < 2; trial++ {
		var res EPResult
		err := mp.Run(3, mp.Config{}, func(c *mp.Comm) error {
			r, err := EP(c, EPConfig{PairsPerRank: 10000, Seed: 7})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				res = r
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res
		} else if first.Accepted != res.Accepted || first.SumX != res.SumX {
			t.Errorf("EP not deterministic: %+v vs %+v", first, res)
		}
	}
}

func TestEPValidation(t *testing.T) {
	err := mp.Run(1, mp.Config{}, func(c *mp.Comm) error {
		if _, err := EP(c, EPConfig{PairsPerRank: 0}); err == nil {
			return fmt.Errorf("zero pairs accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEPOnSimChargesTime(t *testing.T) {
	m := cluster.IBCluster()
	err := mp.Run(4, mp.Config{Fabric: mp.Sim, Model: m}, func(c *mp.Comm) error {
		res, err := EP(c, EPConfig{PairsPerRank: 10000, Seed: 2, ComputeRate: 1e8})
		if err != nil {
			return err
		}
		if res.Seconds <= 0 {
			return fmt.Errorf("no virtual time charged: %v", res.Seconds)
		}
		if res.MopsPerS <= 0 {
			return fmt.Errorf("rate %v", res.MopsPerS)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestISSortsAndConserves(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := mp.Run(p, mp.Config{}, func(c *mp.Comm) error {
				res, err := IS(c, ISConfig{
					KeysPerRank: 5000, MaxKey: 1 << 16, Seed: 3, Verify: true,
				})
				if err != nil {
					return err
				}
				if !res.SortedOK {
					return fmt.Errorf("verification failed")
				}
				if res.TotalKeys != int64(5000*p) {
					return fmt.Errorf("total keys %d", res.TotalKeys)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestISSkewedMaxKey(t *testing.T) {
	// MaxKey not divisible by p: the last rank absorbs the remainder
	// range; conservation and order must still hold.
	err := mp.Run(3, mp.Config{}, func(c *mp.Comm) error {
		res, err := IS(c, ISConfig{KeysPerRank: 1000, MaxKey: 1000, Seed: 9, Verify: true})
		if err != nil {
			return err
		}
		if !res.SortedOK {
			return fmt.Errorf("verification failed with skewed ranges")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestISValidation(t *testing.T) {
	err := mp.Run(4, mp.Config{}, func(c *mp.Comm) error {
		if _, err := IS(c, ISConfig{KeysPerRank: 0, MaxKey: 10}); err == nil {
			return fmt.Errorf("zero keys accepted")
		}
		if _, err := IS(c, ISConfig{KeysPerRank: 10, MaxKey: 2}); err == nil {
			return fmt.Errorf("MaxKey < p accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestISOnSimFasterOnIB(t *testing.T) {
	// The alltoallv redistribution is bisection-bound: IB must beat
	// GigE at equal configuration.
	rate := map[string]float64{}
	for _, mk := range []func() *cluster.Model{cluster.GigECluster, cluster.IBCluster} {
		m := mk()
		m.Placement = cluster.Cyclic
		err := mp.Run(8, mp.Config{Fabric: mp.Sim, Model: m}, func(c *mp.Comm) error {
			res, err := IS(c, ISConfig{KeysPerRank: 20000, MaxKey: 1 << 20, Seed: 5})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				rate[m.Name] = res.MKeysPerS
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if rate["ib-8n"] <= rate["gige-8n"] {
		t.Errorf("IS rate on IB (%v) not above GigE (%v)", rate["ib-8n"], rate["gige-8n"])
	}
}
