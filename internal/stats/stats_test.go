package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.Median != 42 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
	if s.Stddev != 0 {
		t.Errorf("single-sample stddev = %v, want 0", s.Stddev)
	}
}

func TestSummarizeKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if !almostEq(s.Stddev, want, 1e-12) {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Summarize mutated input: %v", xs)
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{1, 2, 3}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) should error")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("Quantile(1.1) should error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("Quantile on empty should return ErrEmpty")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMeanKahan(t *testing.T) {
	// 1e16 + many small values: naive summation loses them.
	xs := make([]float64, 0, 1001)
	xs = append(xs, 1e16)
	for i := 0; i < 1000; i++ {
		xs = append(xs, 1)
	}
	got := Mean(xs)
	want := (1e16 + 1000) / 1001
	if !almostEq(got, want, 1e-15) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g, math.Sqrt(8), 1e-12) {
		t.Errorf("GeoMean = %v, want sqrt(8)", g)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with 0 should error")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Error("GeoMean(nil) should return ErrEmpty")
	}
}

func TestHarmonicMean(t *testing.T) {
	h, err := HarmonicMean([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 / (1 + 0.5 + 0.25)
	if !almostEq(h, want, 1e-12) {
		t.Errorf("HarmonicMean = %v, want %v", h, want)
	}
	if _, err := HarmonicMean([]float64{-1}); err == nil {
		t.Error("HarmonicMean with negative should error")
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100} // 100 is an outlier
	got, err := TrimmedMean(xs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 { // trims 1 and 100, mean of {2,3,4}
		t.Errorf("TrimmedMean = %v, want 3", got)
	}
	if _, err := TrimmedMean(xs, 0.5); err == nil {
		t.Error("trim=0.5 should error")
	}
	if _, err := TrimmedMean(nil, 0.1); err != ErrEmpty {
		t.Error("TrimmedMean(nil) should return ErrEmpty")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	small := make([]float64, 10)
	big := make([]float64, 1000)
	for i := range small {
		small[i] = r.NormFloat64()
	}
	for i := range big {
		big[i] = r.NormFloat64()
	}
	if CI95(big) >= CI95(small) {
		t.Errorf("CI95 did not shrink: n=10 %v vs n=1000 %v", CI95(small), CI95(big))
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	var a Accumulator
	for i := range xs {
		xs[i] = r.ExpFloat64() * 100
		a.Add(xs[i])
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEq(a.Mean(), Mean(xs), 1e-10) {
		t.Errorf("mean: accum %v batch %v", a.Mean(), Mean(xs))
	}
	if !almostEq(a.Variance(), Variance(xs), 1e-9) {
		t.Errorf("variance: accum %v batch %v", a.Variance(), Variance(xs))
	}
	s, _ := Summarize(xs)
	if a.Min() != s.Min || a.Max() != s.Max {
		t.Errorf("min/max mismatch")
	}
}

func TestAccumulatorMergeProperty(t *testing.T) {
	// Property: splitting a stream across two accumulators and merging
	// equals accumulating the whole stream.
	f := func(raw []uint16, split uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 7.0
		}
		k := int(split) % len(xs)
		var whole, left, right Accumulator
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEq(left.Mean(), whole.Mean(), 1e-9) &&
			almostEq(left.Variance(), whole.Variance(), 1e-7) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Error("empty accumulator should report NaN")
	}
	var b Accumulator
	b.Add(5)
	a.Merge(&b) // merge into empty
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge into empty failed: %+v", a)
	}
	var c Accumulator
	b.Merge(&c) // merge empty into non-empty: no-op
	if b.N() != 1 {
		t.Error("merging empty changed N")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 2, 1e-12) || !almostEq(f.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", f)
	}
	if !almostEq(f.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
	if !almostEq(f.Eval(10), 21, 1e-12) {
		t.Errorf("Eval(10) = %v, want 21", f.Eval(10))
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestFitLineConstY(t *testing.T) {
	f, err := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope != 0 || f.Intercept != 5 || f.R2 != 1 {
		t.Errorf("const-y fit = %+v", f)
	}
}

func TestFitPower(t *testing.T) {
	// y = 3 x^1.5
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	a, b, r2, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 3, 1e-9) || !almostEq(b, 1.5, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Errorf("FitPower = %v, %v, %v", a, b, r2)
	}
	if _, _, _, err := FitPower([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Error("FitPower with nonpositive x should error")
	}
}

func TestAmdahlFitRecoversSerialFraction(t *testing.T) {
	s := 0.15
	procs := []float64{1, 2, 4, 8, 16, 32}
	sp := make([]float64, len(procs))
	for i, p := range procs {
		sp[i] = 1 / (s + (1-s)/p)
	}
	got, err := AmdahlFit(procs, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, s, 1e-9) {
		t.Errorf("AmdahlFit = %v, want %v", got, s)
	}
}

func TestAmdahlFitClamps(t *testing.T) {
	// Superlinear speedup => negative s, clamped to 0.
	procs := []float64{1, 2, 4}
	sp := []float64{1, 2.5, 6}
	got, err := AmdahlFit(procs, sp)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("superlinear fit = %v, want clamp to 0", got)
	}
}

func TestAmdahlFitErrors(t *testing.T) {
	if _, err := AmdahlFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := AmdahlFit([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Error("all p==1 should error (degenerate)")
	}
	if _, err := AmdahlFit([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative procs should error")
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(raw []uint32, qraw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q := float64(qraw) / 255
		got, err := Quantile(xs, q)
		if err != nil {
			return false
		}
		s, _ := Summarize(xs)
		return got >= s.Min && got <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
